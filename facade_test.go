package gcolor_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcolor"
)

// TestPublicAPIEndToEnd walks the documented quickstart path through the
// facade: generate, color on the device, verify, inspect the evidence.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := gcolor.RMAT(9, 8, 1)
	if g.NumVertices() != 512 {
		t.Fatalf("RMAT(9) has %d vertices, want 512", g.NumVertices())
	}
	for _, alg := range []gcolor.Algorithm{
		gcolor.AlgBaseline, gcolor.AlgMaxMin, gcolor.AlgJP, gcolor.AlgSpeculative, gcolor.AlgHybrid,
	} {
		dev := gcolor.NewDevice()
		res, err := gcolor.ColorGPU(dev, g, alg, gcolor.Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := gcolor.Verify(g, res.Colors); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
		if res.Cycles <= 0 || res.NumColors <= 0 {
			t.Errorf("%v: empty evidence: cycles=%d colors=%d", alg, res.Cycles, res.NumColors)
		}
	}
}

func TestPublicAPISchedulingPolicies(t *testing.T) {
	g := gcolor.RMAT(10, 8, 1)
	for _, p := range []gcolor.Policy{gcolor.Static, gcolor.RoundRobin, gcolor.Stealing} {
		dev := gcolor.NewDevice()
		dev.Policy = p
		if _, err := gcolor.ColorGPU(dev, g, gcolor.AlgBaseline, gcolor.Options{}); err != nil {
			t.Errorf("policy %v: %v", p, err)
		}
	}
}

func TestPublicAPICPUAlgorithms(t *testing.T) {
	g := gcolor.RandomGraph(300, 1200, 2)
	for _, o := range []gcolor.Ordering{gcolor.Natural, gcolor.LargestFirst, gcolor.SmallestLast, gcolor.RandomOrder} {
		colors := gcolor.ColorGreedy(g, o, 1)
		if err := gcolor.Verify(g, colors); err != nil {
			t.Errorf("greedy %v: %v", o, err)
		}
	}
	jp := gcolor.ColorJonesPlassmann(g, 1, 0)
	if err := gcolor.Verify(g, jp); err != nil {
		t.Errorf("jones-plassmann: %v", err)
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := gcolor.Grid2D(6, 7)
	var buf bytes.Buffer
	if err := gcolor.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := gcolor.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed the graph: %v vs %v", back, g)
	}
}

func TestPublicAPIUncoloredSentinel(t *testing.T) {
	if gcolor.Uncolored != -1 {
		t.Errorf("Uncolored = %d, want -1", gcolor.Uncolored)
	}
	if gcolor.NumColors([]int32{0, 1, 1}) != 2 {
		t.Error("NumColors wrong through facade")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment in -short mode")
	}
	var sb strings.Builder
	if err := gcolor.RunExperiment("T1", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rmat") {
		t.Errorf("T1 output missing datasets:\n%s", sb.String())
	}
	if err := gcolor.RunExperiment("nope", &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestPublicAPIJournal walks the durability path through the facade: open
// a journal, serve a journaled job, crash-free restart on the same
// directory, and check the recovered server answers from its warm cache.
func TestPublicAPIJournal(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := gcolor.OpenJournal(dir, gcolor.JournalOptions{Fsync: gcolor.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 0 || len(rec.Completions) != 0 {
		t.Fatalf("fresh journal recovered state: %d pending, %d completions", len(rec.Pending), len(rec.Completions))
	}

	g, err := gcolor.ParseGraphSpec("grid:8:8")
	if err != nil {
		t.Fatal(err)
	}
	srv := gcolor.NewServer(gcolor.ServeConfig{Devices: 1, Journal: j, Recovery: rec})
	req := &gcolor.ServeRequest{
		Graph:     g,
		RequestID: "facade-1",
		IdemKey:   "facade-idem",
		Wire:      json.RawMessage(`{"gen":"grid:8:8"}`),
	}
	res, err := srv.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors < 2 {
		t.Fatalf("NumColors = %d", res.NumColors)
	}
	srv.Stop()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2, err := gcolor.OpenJournal(dir, gcolor.JournalOptions{Fsync: gcolor.FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec2.Completions) == 0 {
		t.Fatal("restart recovered no completions")
	}
	srv2 := gcolor.NewServer(gcolor.ServeConfig{Devices: 1, Journal: j2, Recovery: rec2})
	defer srv2.Stop()
	<-srv2.RecoveryDone()
	info := srv2.RecoveryInfo()
	if !info.Enabled || info.WarmedCache == 0 || info.WarmedIdem == 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	res2, err := srv2.Submit(context.Background(), &gcolor.ServeRequest{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("recovered server missed its warm cache")
	}
	if res2.NumColors != res.NumColors {
		t.Errorf("answer changed across restart: %d vs %d colors", res2.NumColors, res.NumColors)
	}
}

// TestPublicAPICluster walks the distributed-fleet facade: two workers
// exposed via ServeHandler, a Coordinator fronting them, one routed job
// and one forced scatter-gather through the public wire contract.
func TestPublicAPICluster(t *testing.T) {
	var workers []*httptest.Server
	for i := 0; i < 2; i++ {
		srv := gcolor.NewServer(gcolor.ServeConfig{Devices: 1})
		ts := httptest.NewServer(gcolor.ServeHandler(srv))
		t.Cleanup(func() { ts.Close(); srv.Stop() })
		workers = append(workers, ts)
	}
	coord := gcolor.NewCoordinator(gcolor.ClusterConfig{
		Peers:             []string{workers[0].URL, workers[1].URL},
		HeartbeatInterval: -1, // liveness from static registration; no background probes
		ExpireAfter:       time.Hour,
	})
	defer coord.Close()
	front := httptest.NewServer(gcolor.ClusterHandler(coord))
	defer front.Close()

	post := func(body string) map[string]any {
		resp, err := http.Post(front.URL+"/color", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	routed := post(`{"gen":"grid:12:12","alg":"baseline"}`)
	if routed["worker"] == "" || routed["scattered"] == true {
		t.Fatalf("whole-graph job not routed to one worker: %v", routed)
	}
	scattered := post(`{"gen":"grid:16:16","alg":"baseline","shards":2,"include_colors":true}`)
	if scattered["scattered"] != true {
		t.Fatalf("forced 2-shard job did not scatter: %v", scattered)
	}

	st := coord.Stats()
	if st.Workers != 2 || st.Routed != 1 || st.Scattered != 1 {
		t.Fatalf("stats workers=%d routed=%d scattered=%d, want 2/1/1", st.Workers, st.Routed, st.Scattered)
	}
}
