package gcolor_test

import (
	"bytes"
	"strings"
	"testing"

	"gcolor"
)

// TestPublicAPIEndToEnd walks the documented quickstart path through the
// facade: generate, color on the device, verify, inspect the evidence.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := gcolor.RMAT(9, 8, 1)
	if g.NumVertices() != 512 {
		t.Fatalf("RMAT(9) has %d vertices, want 512", g.NumVertices())
	}
	for _, alg := range []gcolor.Algorithm{
		gcolor.AlgBaseline, gcolor.AlgMaxMin, gcolor.AlgJP, gcolor.AlgSpeculative, gcolor.AlgHybrid,
	} {
		dev := gcolor.NewDevice()
		res, err := gcolor.ColorGPU(dev, g, alg, gcolor.Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if err := gcolor.Verify(g, res.Colors); err != nil {
			t.Errorf("%v: %v", alg, err)
		}
		if res.Cycles <= 0 || res.NumColors <= 0 {
			t.Errorf("%v: empty evidence: cycles=%d colors=%d", alg, res.Cycles, res.NumColors)
		}
	}
}

func TestPublicAPISchedulingPolicies(t *testing.T) {
	g := gcolor.RMAT(10, 8, 1)
	for _, p := range []gcolor.Policy{gcolor.Static, gcolor.RoundRobin, gcolor.Stealing} {
		dev := gcolor.NewDevice()
		dev.Policy = p
		if _, err := gcolor.ColorGPU(dev, g, gcolor.AlgBaseline, gcolor.Options{}); err != nil {
			t.Errorf("policy %v: %v", p, err)
		}
	}
}

func TestPublicAPICPUAlgorithms(t *testing.T) {
	g := gcolor.RandomGraph(300, 1200, 2)
	for _, o := range []gcolor.Ordering{gcolor.Natural, gcolor.LargestFirst, gcolor.SmallestLast, gcolor.RandomOrder} {
		colors := gcolor.ColorGreedy(g, o, 1)
		if err := gcolor.Verify(g, colors); err != nil {
			t.Errorf("greedy %v: %v", o, err)
		}
	}
	jp := gcolor.ColorJonesPlassmann(g, 1, 0)
	if err := gcolor.Verify(g, jp); err != nil {
		t.Errorf("jones-plassmann: %v", err)
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := gcolor.Grid2D(6, 7)
	var buf bytes.Buffer
	if err := gcolor.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := gcolor.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Errorf("round trip changed the graph: %v vs %v", back, g)
	}
}

func TestPublicAPIUncoloredSentinel(t *testing.T) {
	if gcolor.Uncolored != -1 {
		t.Errorf("Uncolored = %d, want -1", gcolor.Uncolored)
	}
	if gcolor.NumColors([]int32{0, 1, 1}) != 2 {
		t.Error("NumColors wrong through facade")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiment in -short mode")
	}
	var sb strings.Builder
	if err := gcolor.RunExperiment("T1", &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rmat") {
		t.Errorf("T1 output missing datasets:\n%s", sb.String())
	}
	if err := gcolor.RunExperiment("nope", &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}
