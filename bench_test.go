// Benchmarks: one per reconstructed table/figure (T-R1, F-R1..F-R9), each
// executing the corresponding experiment harness end to end, plus
// per-algorithm benchmarks on the two structural extremes (scale-free and
// mesh). Benchmarks run the Small dataset scale so `go test -bench=.`
// finishes quickly; `go run ./cmd/gcbench` regenerates the full-scale
// tables recorded in EXPERIMENTS.md.
package gcolor_test

import (
	"testing"

	"gcolor"
	"gcolor/internal/exp"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(id, exp.Config{Scale: exp.Small})
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkT1Datasets regenerates Table R1 (dataset statistics).
func BenchmarkT1Datasets(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkF1BaselineTime regenerates Figure R1 (baseline time per graph).
func BenchmarkF1BaselineTime(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkF2Convergence regenerates Figure R2 (active vertices/iteration).
func BenchmarkF2Convergence(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkF3Imbalance regenerates Figure R3 (intra-wavefront imbalance).
func BenchmarkF3Imbalance(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkF4Utilization regenerates Figure R4 (SIMD utilization).
func BenchmarkF4Utilization(b *testing.B) { benchExperiment(b, "F4") }

// BenchmarkF5Scheduling regenerates Figure R5 (scheduling policies).
func BenchmarkF5Scheduling(b *testing.B) { benchExperiment(b, "F5") }

// BenchmarkF6HybridThreshold regenerates Figure R6 (threshold sweep).
func BenchmarkF6HybridThreshold(b *testing.B) { benchExperiment(b, "F6") }

// BenchmarkF7Headline regenerates Figure R7 (the ~25% headline comparison).
func BenchmarkF7Headline(b *testing.B) { benchExperiment(b, "F7") }

// BenchmarkF8WorkgroupSize regenerates Figure R8 (workgroup-size sweep).
func BenchmarkF8WorkgroupSize(b *testing.B) { benchExperiment(b, "F8") }

// BenchmarkF9Algorithms regenerates Figure R9 (algorithm comparison).
func BenchmarkF9Algorithms(b *testing.B) { benchExperiment(b, "F9") }

// Ablations and extensions (see DESIGN.md).

func BenchmarkA1Labeling(b *testing.B)   { benchExperiment(b, "A1") }
func BenchmarkA2Seeds(b *testing.B)      { benchExperiment(b, "A2") }
func BenchmarkA3StealCost(b *testing.B)  { benchExperiment(b, "A3") }
func BenchmarkA4Coalescing(b *testing.B) { benchExperiment(b, "A4") }
func BenchmarkA5Compaction(b *testing.B) { benchExperiment(b, "A5") }
func BenchmarkA6ReadCache(b *testing.B)  { benchExperiment(b, "A6") }
func BenchmarkX1Distance2(b *testing.B)  { benchExperiment(b, "X1") }
func BenchmarkX2Workloads(b *testing.B)  { benchExperiment(b, "X2") }
func BenchmarkX3CUScaling(b *testing.B)  { benchExperiment(b, "X3") }
func BenchmarkX4HybridBFS(b *testing.B)  { benchExperiment(b, "X4") }

// Per-algorithm benchmarks on the two structural extremes.

func benchAlgorithm(b *testing.B, g *gcolor.Graph, alg gcolor.Algorithm, policy gcolor.Policy) {
	b.Helper()
	b.ReportMetric(float64(g.NumEdges()), "edges")
	for i := 0; i < b.N; i++ {
		dev := gcolor.NewDevice()
		dev.Policy = policy
		res, err := gcolor.ColorGPU(dev, g, alg, gcolor.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "simcycles")
	}
}

func BenchmarkGPUScaleFree(b *testing.B) {
	g := gcolor.RMAT(11, 16, 1)
	for _, alg := range []gcolor.Algorithm{
		gcolor.AlgBaseline, gcolor.AlgMaxMin, gcolor.AlgSpeculative, gcolor.AlgHybrid,
	} {
		b.Run(alg.String(), func(b *testing.B) { benchAlgorithm(b, g, alg, gcolor.Static) })
	}
	b.Run("baseline-stealing", func(b *testing.B) { benchAlgorithm(b, g, gcolor.AlgBaseline, gcolor.Stealing) })
}

func BenchmarkGPUMesh(b *testing.B) {
	g := gcolor.Grid2D(64, 64)
	for _, alg := range []gcolor.Algorithm{
		gcolor.AlgBaseline, gcolor.AlgMaxMin, gcolor.AlgSpeculative, gcolor.AlgHybrid,
	} {
		b.Run(alg.String(), func(b *testing.B) { benchAlgorithm(b, g, alg, gcolor.Static) })
	}
}

// CPU reference benchmarks (real wall time, not simulated cycles).

func BenchmarkCPUGreedy(b *testing.B) {
	g := gcolor.RMAT(13, 16, 1)
	for _, o := range []gcolor.Ordering{gcolor.Natural, gcolor.LargestFirst, gcolor.SmallestLast} {
		b.Run(o.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				colors := gcolor.ColorGreedy(g, o, 0)
				if err := gcolor.Verify(g, colors); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCPUJonesPlassmann(b *testing.B) {
	g := gcolor.RMAT(13, 16, 1)
	for i := 0; i < b.N; i++ {
		colors := gcolor.ColorJonesPlassmann(g, 1, 0)
		if err := gcolor.Verify(g, colors); err != nil {
			b.Fatal(err)
		}
	}
}

// Companion workloads on the simulated device.

func BenchmarkGPUApps(b *testing.B) {
	g := gcolor.RMAT(11, 16, 1)
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gcolor.BFSLevels(gcolor.NewDevice(), g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pagerank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gcolor.PageRankScores(gcolor.NewDevice(), g)
		}
	})
	b.Run("components", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gcolor.ComponentLabels(gcolor.NewDevice(), g)
		}
	})
}
