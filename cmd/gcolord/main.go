// Command gcolord is the graph-coloring daemon: it owns a pool of
// simulated GPU devices and serves coloring requests over HTTP with
// admission control, request coalescing, and a result cache (see
// internal/serve).
//
// Usage:
//
//	gcolord -addr :8421 -devices 4
//	gcolord -devices 2 -cus 14 -queue 128 -shed 0.5 -cache 1024
//	gcolord -devices 4 -chaos -fault-rate 1e-4      # chaos serving
//	gcolord -pprof                                  # + /debug/pprof/ endpoints
//	gcolord -drain-timeout 30s                      # graceful-drain deadline
//	gcolord -shard-auto-vertices 4096 -max-body 8388608   # sharding + body cap
//	gcolord -batch-max-jobs 32 -batch-linger 200us        # small-graph batching
//	gcolord -journal-dir /var/lib/gcolord/wal             # crash-safe serving
//
// With -journal-dir set, every accepted job is journaled before it is
// enqueued and its result journaled on completion. After a crash the
// daemon replays the journal on startup: finished results warm the cache,
// unfinished jobs whose deadlines haven't passed are re-executed, and
// client retries carrying an Idempotency-Key get their original answer.
//
// Endpoints:
//
//	POST /color     submit a job; JSON body, see serve.ColorRequest
//	GET  /healthz   liveness and pool size
//	GET  /metricsz  queue depth, wait/exec latency, cache hit rate,
//	                shed counts, device utilization, per-device health
//	                and breaker state (flat text)
//	GET  /drainz    drain status; POST /drainz requests a graceful drain
//	GET  /recoveryz journal replay / warm-start status after a restart
//
// Shutdown: SIGTERM/SIGINT (or POST /drainz) stops admission, lets queued
// and in-flight jobs finish, and logs a structured summary. If the drain
// exceeds -drain-timeout, still-queued jobs are handed back to their
// callers and gcolord exits with status 7 (drain timeout).
//
// Example request:
//
//	curl -s localhost:8421/color -d '{"gen":"rmat:10:8:1","alg":"hybrid"}'
//
// Cluster roles (see internal/cluster): a coordinator owns no devices and
// fans work out to worker daemons; a worker is a normal daemon that also
// announces itself to a coordinator.
//
//	gcolord -role coordinator -addr :8420 -peers http://h1:8421,http://h2:8421
//	gcolord -role worker -addr :8421 -join http://coord:8420 -advertise http://h1:8421
//	gcolord -standby http://coord:8420 -addr :8420 -journal-dir /shared/wal
//
// A journaled coordinator acquires a fencing epoch from a lease file in
// its journal directory; every dispatch carries the epoch and workers
// reject dispatches from older epochs (409 stale_epoch). A -standby
// process tails the same journal directory, probes the primary, and on
// sustained silence takes over the front-door address at the next epoch,
// re-dispatching accepted-but-unfinished jobs with zero loss.
//
// The coordinator serves the same POST /color contract, plus
// GET /clusterz (membership: per-worker health, breaker state, liveness)
// and POST /cluster/join (worker registration). Small graphs are routed
// whole by rendezvous hashing on the graph fingerprint; large graphs are
// split with the edge-balanced partitioner, scattered across workers, and
// merge-repaired at the coordinator. With -journal-dir, accepted fleet
// jobs survive coordinator crashes and are re-dispatched on restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gcolor/internal/cluster"
	"gcolor/internal/journal"
	"gcolor/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8421", "listen address")
		devices  = flag.Int("devices", 4, "number of pooled devices")
		cus      = flag.Int("cus", 28, "compute units per device")
		wgSize   = flag.Int("wg", 256, "workgroup size per device")
		wave     = flag.Int("wavefront", 64, "wavefront width per device")
		devWkrs  = flag.Int("dev-workers", 0, "simulation goroutines per device (0 = split GOMAXPROCS across the pool)")
		queueCap = flag.Int("queue", 256, "admission queue capacity")
		shed     = flag.Float64("shed", 0.75, "queue occupancy fraction at which sub-high priority work is shed (>=1 disables)")
		cacheSz  = flag.Int("cache", 512, "result cache entries (-1 disables)")
		workers  = flag.Int("workers", 0, "executor goroutines (0 = one per device)")

		chaos     = flag.Bool("chaos", false, "arm a fault injector on every pool device")
		faultRate = flag.Float64("fault-rate", 1e-4, "per-event fault probability for -chaos")
		faultSeed = flag.Uint64("fault-seed", 1, "fault injector seed for -chaos")

		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (heap and CPU profiling of the serving hot path)")

		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on shutdown (0 waits forever)")
		noSelfHeal   = flag.Bool("no-self-heal", false, "disable health scoring, circuit breakers, and hedged re-dispatch")

		journalDir   = flag.String("journal-dir", "", "write-ahead journal directory; accepted jobs and results survive crashes and are replayed on restart (empty = journaling off)")
		journalFsync = flag.String("journal-fsync", "batch", "journal durability mode: always (fsync per append), batch (group commit), none (OS-paced)")
		journalSeg   = flag.Int64("journal-segment-bytes", 0, "journal segment rotation size in bytes (0 = default 4MiB)")
		noJournal    = flag.Bool("no-journal", false, "disable journaling even when -journal-dir is set")

		maxBody   = flag.Int64("max-body", serve.DefaultMaxBodyBytes, "maximum POST /color body bytes; oversized requests get 413 (negative disables the limit)")
		shardK    = flag.Int("shard-k", 0, "shard count for auto-sharded jobs (0 = pool size, capped at 16)")
		shardAutV = flag.Int("shard-auto-vertices", 0, "auto-shard jobs at or above this many vertices (0 = default 8192, negative disables)")
		shardAutE = flag.Int("shard-auto-edges", 0, "auto-shard jobs at or above this many edges (0 = default 262144, negative disables)")
		noShard   = flag.Bool("no-shard", false, "disable sharded execution entirely; every job runs on one device")

		noBatch     = flag.Bool("no-batch", false, "disable block-diagonal batching; every small graph gets its own kernel launch")
		batchJobs   = flag.Int("batch-max-jobs", 0, "max compatible small graphs fused into one batched launch (0 = default 16, below 2 disables)")
		batchVerts  = flag.Int("batch-max-vertices", 0, "max vertices in a batched union CSR (0 = default 16384)")
		batchEdges  = flag.Int("batch-max-edges", 0, "max arcs in a batched union CSR (0 = default 262144)")
		batchLinger = flag.Duration("batch-linger", 0, "how long a lone batch-eligible job waits for company before running solo (0 = batch only from queue depth)")

		role      = flag.String("role", "server", "daemon role: server (standalone), coordinator (fleet front door, no devices), worker (server that joins a coordinator)")
		peers     = flag.String("peers", "", "coordinator: comma-separated static worker base URLs")
		joinURL   = flag.String("join", "", "worker: coordinator base URL to announce to")
		advertise = flag.String("advertise", "", "worker: base URL workers advertise to the coordinator (default http://127.0.0.1:<addr port>)")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "cluster heartbeat/probe interval")
		noScatter = flag.Bool("no-scatter", false, "coordinator: route every job whole, never scatter-gather")

		standbyURL    = flag.String("standby", "", "coordinator standby mode: primary coordinator base URL to watch; tails -journal-dir and takes over on -addr when the primary stops answering")
		standbyMisses = flag.Int("standby-misses", 3, "standby: consecutive missed primary probes before takeover")
		leaseOwner    = flag.String("lease-owner", "", "coordinator/standby: name recorded in the epoch lease file (default the hostname)")
	)
	flag.Parse()

	// Standby mode watches the primary's journal directory with a read-only
	// follower, so it must run before the append-mode journal open below.
	if *standbyURL != "" {
		if *journalDir == "" {
			log.Fatal("gcolord: -standby requires -journal-dir (the primary's journal directory)")
		}
		runStandby(*addr, *standbyURL, *journalDir, *journalFsync, *journalSeg,
			*heartbeat, *standbyMisses, *leaseOwner, *peers, *noScatter, *drainTimeout)
		return
	}

	devCfg := serve.DeviceConfig{
		NumCUs:         *cus,
		WorkgroupSize:  *wgSize,
		WavefrontWidth: *wave,
		Workers:        *devWkrs,
	}
	if *chaos {
		devCfg.FaultRate = *faultRate
		devCfg.FaultSeed = *faultSeed
		log.Printf("chaos: fault injectors armed on all devices, rate %g, seed %d", *faultRate, *faultSeed)
	}

	// Open the write-ahead journal before the server exists: recovery state
	// (pending jobs to replay, completions to warm the cache from) feeds
	// straight into NewServer, so a crashed instance picks up where it died.
	var (
		jrnl *journal.Journal
		rec  *journal.Recovery
	)
	if *journalDir != "" && !*noJournal {
		mode, err := journal.ParseFsyncMode(*journalFsync)
		if err != nil {
			log.Fatalf("gcolord: -journal-fsync: %v", err)
		}
		jrnl, rec, err = journal.Open(*journalDir, journal.Options{
			Fsync:        mode,
			SegmentBytes: *journalSeg,
		})
		if err != nil {
			log.Fatalf("gcolord: journal: %v", err)
		}
		log.Printf("journal: %s (fsync=%s): replayed %d records (%d pending, %d completions, %d torn tails, %d corrupt segments)",
			jrnl.Dir(), *journalFsync, rec.Stats.Records, len(rec.Pending), len(rec.Completions),
			rec.Stats.TornTails, rec.Stats.CorruptSegments)
	}

	switch *role {
	case "coordinator":
		// A journaled coordinator owns an epoch lease: each (re)start bumps
		// the epoch, so workers fence dispatches from any older incarnation
		// (a deposed primary that a standby already replaced).
		var epoch uint64
		if *journalDir != "" && !*noJournal {
			lease, err := cluster.AcquireLease(*journalDir, ownerName(*leaseOwner))
			if err != nil {
				log.Fatalf("gcolord: lease: %v", err)
			}
			epoch = lease.Epoch
			log.Printf("gcolord: coordinator holds epoch %d (lease owner %s)", lease.Epoch, lease.Owner)
		}
		runCoordinator(*addr, *peers, *heartbeat, *noScatter, *drainTimeout, epoch, jrnl, rec)
		return
	case "server", "worker":
	default:
		log.Fatalf("gcolord: unknown -role %q (server | coordinator | worker)", *role)
	}

	srv := serve.NewServer(serve.Config{
		Devices:       *devices,
		Device:        devCfg,
		QueueCapacity: *queueCap,
		ShedFraction:  *shed,
		CacheEntries:  *cacheSz,
		Workers:       *workers,
		SelfHeal:      serve.SelfHealConfig{Disabled: *noSelfHeal},
		Journal:       jrnl,
		Recovery:      rec,
		Shard: serve.ShardConfig{
			Disabled:     *noShard,
			K:            *shardK,
			AutoVertices: *shardAutV,
			AutoEdges:    *shardAutE,
		},
		Batch: serve.BatchConfig{
			Disabled:    *noBatch,
			MaxJobs:     *batchJobs,
			MaxVertices: *batchVerts,
			MaxEdges:    *batchEdges,
			Linger:      *batchLinger,
		},
	})

	// Every worker carries an epoch guard even standalone: it is inert until
	// a fenced coordinator's first dispatch ratchets it.
	guard := &serve.EpochGuard{}
	handler := serve.HandlerWith(srv, serve.HandlerConfig{MaxBodyBytes: *maxBody, Epoch: guard})
	if *pprofOn {
		// Mount the profiling endpoints next to the API so `go tool pprof
		// http://host/debug/pprof/heap` can watch the hot path live; off by
		// default since they expose internals.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof: profiling endpoints enabled at /debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		log.Printf("gcolord: serving on %s (%d devices, queue %d, cache %d)",
			*addr, *devices, *queueCap, *cacheSz)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gcolord: %v", err)
		}
	}()

	// Worker role: announce this daemon to the coordinator until shutdown.
	// Push joins complement the coordinator's pull probes, so a worker is
	// routable even before the first probe round and re-registers itself
	// automatically after a coordinator restart.
	joinCtx, joinCancel := context.WithCancel(context.Background())
	defer joinCancel()
	if *role == "worker" {
		if *joinURL == "" {
			log.Fatal("gcolord: -role worker requires -join <coordinator-url>")
		}
		adv := *advertise
		if adv == "" {
			adv = "http://127.0.0.1" + *addr
		}
		j := &cluster.Joiner{
			CoordinatorURL: *joinURL,
			AdvertiseAddr:  adv,
			Instance:       cluster.NewInstanceID(),
			Interval:       *heartbeat,
			Guard:          guard,
		}
		log.Printf("gcolord: worker joining %s as %s (instance %s)", *joinURL, adv, j.Instance)
		go func() { _ = j.Run(joinCtx) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("gcolord: %v received, draining (timeout %v)", s, *drainTimeout)
	case <-srv.DrainRequested():
		log.Printf("gcolord: drain requested via /drainz, draining (timeout %v)", *drainTimeout)
	}
	joinCancel()

	// Drain first: admission stops immediately, so in-flight HTTP handlers
	// either finish with their job or fail fast with a draining error —
	// then the HTTP shutdown below has nothing left to wait for.
	sum, drainErr := srv.Drain(*drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("gcolord: http shutdown: %v", err)
	}

	if jrnl != nil {
		// Close after drain: the last completions have been journaled, so a
		// restart warms from a snapshot instead of replaying live work.
		if err := jrnl.Close(); err != nil {
			log.Printf("gcolord: journal close: %v", err)
		}
	}

	st := srv.Stats()
	log.Printf("gcolord: drain summary: finished=%d failed=%d handed_off=%d timed_out=%v elapsed=%v",
		sum.Finished, sum.Failed, sum.HandedOff, sum.TimedOut, sum.Elapsed.Round(time.Millisecond))
	fmt.Printf("gcolord: served %d requests (%d completed, %d cached, %d coalesced, %d shed, %d failed, %d hedged, %d quarantines) in %v\n",
		st.Requests, st.Completed, st.CacheHits, st.Coalesced, st.Shed+st.QueueFull, st.Failed, st.Hedges, st.Quarantines, st.Uptime.Round(time.Millisecond))

	var dte *serve.DrainTimeoutError
	if errors.As(drainErr, &dte) {
		log.Printf("gcolord: drain timeout: %v", dte)
		os.Exit(7)
	} else if drainErr != nil {
		log.Printf("gcolord: drain: %v", drainErr)
		os.Exit(1)
	}
}

// runCoordinator is the -role coordinator daemon body: no device pool,
// just the cluster front door with the same signal/drain lifecycle as the
// serving roles.
func runCoordinator(addr, peers string, heartbeat time.Duration, noScatter bool, drainTimeout time.Duration, epoch uint64, jrnl *journal.Journal, rec *journal.Recovery) {
	var peerList []string
	if peers != "" {
		peerList = strings.Split(peers, ",")
	}
	coord := cluster.NewCoordinator(cluster.Config{
		Peers:             peerList,
		HeartbeatInterval: heartbeat,
		NoScatter:         noScatter,
		Epoch:             epoch,
		Journal:           jrnl,
		Recovery:          rec,
	})
	hs := &http.Server{Addr: addr, Handler: cluster.Handler(coord)}
	go func() {
		log.Printf("gcolord: coordinator serving on %s (%d static peers, heartbeat %v, epoch %d)",
			addr, len(peerList), heartbeat, epoch)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gcolord: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("gcolord: coordinator: %v received, draining (timeout %v)", s, drainTimeout)
	case <-coord.DrainRequested():
		log.Printf("gcolord: coordinator: drain requested via /drainz, draining (timeout %v)", drainTimeout)
	}

	dctx := context.Background()
	if drainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, drainTimeout)
		defer cancel()
	}
	left := coord.Drain(dctx)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("gcolord: coordinator: http shutdown: %v", err)
	}
	coord.Close()
	if jrnl != nil {
		if err := jrnl.Close(); err != nil {
			log.Printf("gcolord: coordinator: journal close: %v", err)
		}
	}

	st := coord.Stats()
	fmt.Printf("gcolord: coordinator served %d jobs (%d routed, %d scattered, %d failed, %d failovers, %d redispatches, %d cache hits) across %d workers\n",
		st.Jobs, st.Routed, st.Scattered, st.Failed, st.RouteFailovers, st.Redispatches, st.CacheHits, st.Workers)
	if left > 0 {
		log.Printf("gcolord: coordinator: drain timeout with %d jobs in flight", left)
		os.Exit(7)
	}
}

// runStandby is the warm-standby daemon body: tail the primary's journal,
// probe its healthz, and on sustained silence take over the front-door
// address at a fresh fencing epoch. A SIGTERM/SIGINT before takeover exits
// cleanly; after takeover the promoted coordinator drains like any other.
func runStandby(addr, primaryURL, dir, fsync string, segBytes int64,
	heartbeat time.Duration, misses int, owner, peers string,
	noScatter bool, drainTimeout time.Duration) {
	mode, err := journal.ParseFsyncMode(fsync)
	if err != nil {
		log.Fatalf("gcolord: -journal-fsync: %v", err)
	}
	var peerList []string
	if peers != "" {
		peerList = strings.Split(peers, ",")
	}
	sb := cluster.NewStandby(cluster.StandbyConfig{
		JournalDir:        dir,
		PrimaryURL:        primaryURL,
		TakeoverAddr:      addr,
		HeartbeatInterval: heartbeat,
		MissThreshold:     misses,
		Owner:             ownerName(owner),
		Journal:           journal.Options{Fsync: mode, SegmentBytes: segBytes},
		Cluster: cluster.Config{
			Peers:             peerList,
			HeartbeatInterval: heartbeat,
			NoScatter:         noScatter,
		},
		Logf: log.Printf,
	})

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s, ok := <-sig
		if ok {
			log.Printf("gcolord: standby: %v received before takeover, exiting", s)
			cancel()
		}
	}()

	log.Printf("gcolord: standby watching %s (journal %s, probe %v, %d misses to take over)",
		primaryURL, dir, heartbeat, misses)
	tk, err := sb.Run(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return
		}
		log.Fatalf("gcolord: standby: %v", err)
	}
	signal.Stop(sig)
	close(sig)
	coord := tk.Coordinator

	hs := &http.Server{Handler: cluster.Handler(coord)}
	go func() {
		log.Printf("gcolord: standby promoted: serving on %s at epoch %d (%d pending jobs replaying, takeover %dms)",
			addr, tk.Epoch, tk.Pending, tk.ReadyAt.Sub(tk.DetectedAt).Milliseconds())
		if err := hs.Serve(tk.Listener); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("gcolord: %v", err)
		}
	}()

	sig2 := make(chan os.Signal, 1)
	signal.Notify(sig2, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig2:
		log.Printf("gcolord: coordinator: %v received, draining (timeout %v)", s, drainTimeout)
	case <-coord.DrainRequested():
		log.Printf("gcolord: coordinator: drain requested via /drainz, draining (timeout %v)", drainTimeout)
	}

	dctx := context.Background()
	if drainTimeout > 0 {
		var dcancel context.CancelFunc
		dctx, dcancel = context.WithTimeout(dctx, drainTimeout)
		defer dcancel()
	}
	left := coord.Drain(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("gcolord: coordinator: http shutdown: %v", err)
	}
	coord.Close()
	if err := tk.Journal.Close(); err != nil {
		log.Printf("gcolord: coordinator: journal close: %v", err)
	}
	st := coord.Stats()
	fmt.Printf("gcolord: coordinator served %d jobs (%d routed, %d scattered, %d failed, %d failovers, %d redispatches, %d cache hits) across %d workers\n",
		st.Jobs, st.Routed, st.Scattered, st.Failed, st.RouteFailovers, st.Redispatches, st.CacheHits, st.Workers)
	if left > 0 {
		log.Printf("gcolord: coordinator: drain timeout with %d jobs in flight", left)
		os.Exit(7)
	}
}

// ownerName resolves the lease-owner label: the flag if set, else the
// hostname, else the pid.
func ownerName(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fmt.Sprintf("pid-%d", os.Getpid())
}
