// Distributed-fleet drill (-cluster): spawns one coordinator and
// -cluster-workers worker daemons in-process (real HTTP on loopback),
// then runs three phases:
//
//  1. baseline: the full-scale R-MAT dataset colored through a
//     single-worker fleet (same per-worker resources as the cluster
//     phase, so the comparison measures scale-out, not bigger nodes);
//  2. scatter: the same jobs through the full fleet, where the
//     coordinator partitions each graph and scatter-gathers the shards —
//     gated at >= 2x wall-clock speedup and <= 1.3x the baseline palette,
//     with the merged coloring verified conflict-free;
//  3. kill drill: a concurrent mixed workload (small routed graphs +
//     large scattered graphs) during which one worker is hard-killed —
//     gated at zero lost or failed jobs (the coordinator must absorb the
//     failure with re-dispatches).
//
// Results land in BENCH_PR7.json.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/cluster"
	"gcolor/internal/exp"
	"gcolor/internal/serve"
)

const (
	clusterColorRatioLimit = 1.3
	clusterSpeedupGate     = 2.0
)

type clusterWorkerProc struct {
	addr string
	srv  *serve.Server
	hs   *http.Server
}

// startClusterWorker boots one worker daemon on a loopback port.
// workersPer splits the host's simulation parallelism so N workers
// together consume what the baseline's single worker gets N-fold — each
// in-process "node" stands in for one machine.
func startClusterWorker(workersPer int) (*clusterWorkerProc, error) {
	srv := serve.NewServer(serve.Config{
		Devices: 1,
		Device:  serve.DeviceConfig{Workers: workersPer},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Stop()
		return nil, err
	}
	hs := &http.Server{Handler: serve.Handler(srv)}
	go func() { _ = hs.Serve(ln) }()
	return &clusterWorkerProc{addr: "http://" + ln.Addr().String(), srv: srv, hs: hs}, nil
}

// kill hard-stops the worker: listener and live connections die at once,
// exactly what a crashed node looks like to the coordinator.
func (w *clusterWorkerProc) kill() { _ = w.hs.Close() }

func (w *clusterWorkerProc) stop() {
	_ = w.hs.Close()
	w.srv.Stop()
}

type clusterBenchRow struct {
	Dataset        string  `json:"dataset"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	Jobs           int     `json:"jobs"`
	SingleSeconds  float64 `json:"single_seconds"`
	ClusterSeconds float64 `json:"cluster_seconds"`
	Speedup        float64 `json:"speedup"`
	SingleColors   int     `json:"single_colors"`
	ClusterColors  int     `json:"cluster_colors"`
	ColorRatio     float64 `json:"color_ratio"`
	Shards         int     `json:"shards"`
	Scattered      bool    `json:"scattered"`
}

type clusterDrillOut struct {
	Jobs           int   `json:"jobs"`
	Succeeded      int   `json:"succeeded"`
	Failed         int   `json:"failed"`
	KilledAfter    int   `json:"killed_after_jobs"`
	Redispatches   int64 `json:"redispatches"`
	RouteFailovers int64 `json:"route_failovers"`
	Quarantines    int64 `json:"quarantines"`
	ZeroLost       bool  `json:"zero_lost"`
}

type clusterReport struct {
	Bench           string            `json:"bench"`
	Workers         int               `json:"workers"`
	HostParallelism int               `json:"host_parallelism"`
	SpeedupGate     float64           `json:"speedup_gate"`
	ColorRatioLimit float64           `json:"color_ratio_limit"`
	Rows            []clusterBenchRow `json:"rows"`
	Drill           clusterDrillOut   `json:"drill"`
}

// postColor sends one job to the coordinator and decodes the reply.
func postColor(client *http.Client, coordURL string, cr *serve.ColorRequest) (*serve.ColorResponse, error) {
	body, err := json.Marshal(cr)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(coordURL+"/color", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, fmt.Errorf("http %d (%s): %s", resp.StatusCode, er.Kind, er.Error)
	}
	var out serve.ColorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// startCoordinator boots a coordinator over the given worker addresses on
// a loopback port with a fast heartbeat (drill time scales with it).
func startCoordinator(peers []string) (*cluster.Coordinator, string, func(), error) {
	coord := cluster.NewCoordinator(cluster.Config{
		Peers:             peers,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: cluster.Handler(coord)}
	go func() { _ = hs.Serve(ln) }()
	stop := func() {
		_ = hs.Close()
		coord.Close()
	}
	return coord, "http://" + ln.Addr().String(), stop, nil
}

// timeJobs runs n sequential jobs for spec (distinct seeds defeat every
// cache) and returns the wall clock, the palette of the last job, and its
// response.
func timeJobs(client *http.Client, coordURL, spec string, n int, includeColors bool) (time.Duration, *serve.ColorResponse, error) {
	var last *serve.ColorResponse
	t0 := time.Now()
	for i := 0; i < n; i++ {
		cr := &serve.ColorRequest{
			Gen:           spec,
			Alg:           "hybrid",
			Seed:          uint32(1 + i),
			NoCache:       true,
			IncludeColors: includeColors && i == n-1,
		}
		out, err := postColor(client, coordURL, cr)
		if err != nil {
			return 0, nil, err
		}
		last = out
	}
	return time.Since(t0), last, nil
}

func runClusterBench(jsonPath string, workers, jobs int) error {
	if workers < 2 {
		return fmt.Errorf("-cluster needs at least 2 workers, got %d", workers)
	}
	per := runtime.GOMAXPROCS(0) / workers
	if per < 1 {
		per = 1
	}
	rep := clusterReport{
		Bench:           "cluster-fleet",
		Workers:         workers,
		HostParallelism: runtime.GOMAXPROCS(0),
		SpeedupGate:     clusterSpeedupGate,
		ColorRatioLimit: clusterColorRatioLimit,
	}
	client := cluster.NewWorkerClient(120*time.Second, 0)

	rmat, _ := exp.DatasetByName("rmat")
	g := rmat.Build(exp.Full)
	const spec = "rmat:14:16:1"

	// Phase 1: baseline — one worker behind a coordinator, jobs routed
	// whole (a single-worker fleet cannot scatter).
	single, err := startClusterWorker(per)
	if err != nil {
		return err
	}
	_, singleURL, stopSingle, err := startCoordinator([]string{single.addr})
	if err != nil {
		single.stop()
		return err
	}
	singleDur, singleLast, err := timeJobs(client, singleURL, spec, jobs, false)
	stopSingle()
	single.stop()
	if err != nil {
		return fmt.Errorf("single-worker phase: %w", err)
	}

	// Phase 2: the full fleet — the same jobs now scatter across workers.
	procs := make([]*clusterWorkerProc, workers)
	addrs := make([]string, workers)
	for i := range procs {
		if procs[i], err = startClusterWorker(per); err != nil {
			return err
		}
		addrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	coord, coordURL, stopCoord, err := startCoordinator(addrs)
	if err != nil {
		return err
	}
	defer stopCoord()

	clusterDur, clusterLast, err := timeJobs(client, coordURL, spec, jobs, true)
	if err != nil {
		return fmt.Errorf("cluster phase: %w", err)
	}
	if !clusterLast.Scattered {
		return fmt.Errorf("cluster phase: full-scale R-MAT was not scattered (shards=%d)", clusterLast.Shards)
	}
	// The merged coloring must be proper on the original graph.
	if len(clusterLast.Colors) != g.NumVertices() {
		return fmt.Errorf("cluster phase: got %d colors for %d vertices", len(clusterLast.Colors), g.NumVertices())
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) < u && clusterLast.Colors[v] == clusterLast.Colors[u] {
				return fmt.Errorf("cluster phase: merged coloring has conflict on edge (%d, %d)", v, u)
			}
		}
	}

	row := clusterBenchRow{
		Dataset:        rmat.Name,
		Vertices:       g.NumVertices(),
		Edges:          g.NumEdges(),
		Jobs:           jobs,
		SingleSeconds:  singleDur.Seconds(),
		ClusterSeconds: clusterDur.Seconds(),
		SingleColors:   singleLast.NumColors,
		ClusterColors:  clusterLast.NumColors,
		Shards:         clusterLast.Shards,
		Scattered:      clusterLast.Scattered,
	}
	if row.ClusterSeconds > 0 {
		row.Speedup = row.SingleSeconds / row.ClusterSeconds
	}
	if row.SingleColors > 0 {
		row.ColorRatio = float64(row.ClusterColors) / float64(row.SingleColors)
	}
	rep.Rows = append(rep.Rows, row)
	fmt.Fprintf(os.Stderr, "gcbench: cluster %s %d v %d e  1-worker %.2fs  %d-worker %.2fs  speedup %.2fx  colors %d/%d\n",
		rmat.Name, row.Vertices, row.Edges, row.SingleSeconds, workers, row.ClusterSeconds,
		row.Speedup, row.ClusterColors, row.SingleColors)
	if row.ColorRatio > clusterColorRatioLimit {
		return fmt.Errorf("cluster coloring used %d colors vs %d single-worker (ratio %.2f > %.2f)",
			row.ClusterColors, row.SingleColors, row.ColorRatio, clusterColorRatioLimit)
	}
	if row.Speedup < clusterSpeedupGate {
		return fmt.Errorf("cluster speedup %.2fx below the %.1fx gate", row.Speedup, clusterSpeedupGate)
	}

	// Phase 3: kill drill — concurrent mixed workload, one worker
	// hard-killed after a third of the jobs have finished. The coordinator
	// must deliver every job (failover re-dispatch), losing none.
	drill, err := runKillDrill(client, coord, coordURL, procs, jobs)
	if err != nil {
		return err
	}
	rep.Drill = *drill
	if !drill.ZeroLost {
		return fmt.Errorf("kill drill lost jobs: %d/%d failed", drill.Failed, drill.Jobs)
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gcbench: cluster drill ok: %d/%d jobs, %d redispatches, %d failovers -> %s\n",
		drill.Succeeded, drill.Jobs, drill.Redispatches, drill.RouteFailovers, jsonPath)
	return nil
}

func runKillDrill(client *http.Client, coord *cluster.Coordinator, coordURL string, procs []*clusterWorkerProc, jobs int) (*clusterDrillOut, error) {
	total := 3 * jobs
	killAfter := total / 3

	// Every routed drill job shares one graph (distinct seeds change only
	// the policy), so they all rendezvous onto the same owner. Probe for
	// that owner and kill it — the drill must hit the failover path, not a
	// bystander node the router would never have picked again.
	probe, err := postColor(client, coordURL, &serve.ColorRequest{Gen: "rmat:10:8:1", Alg: "hybrid", Seed: 99, NoCache: true})
	if err != nil {
		return nil, fmt.Errorf("drill probe: %w", err)
	}
	victim := procs[1]
	for _, p := range procs {
		if p.addr == probe.Worker {
			victim = p
			break
		}
	}
	pre := coord.Stats()

	var (
		done   atomic.Int64
		failed atomic.Int64
		killed sync.Once
		wg     sync.WaitGroup
	)
	sem := make(chan struct{}, 4)
	errs := make([]error, total)
	for i := 0; i < total; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cr := &serve.ColorRequest{Alg: "hybrid", Seed: uint32(100 + i), NoCache: true}
			if i%3 == 0 {
				cr.Gen = "rmat:14:16:1" // scattered
			} else {
				cr.Gen = "rmat:10:8:1" // routed whole
			}
			_, err := postColor(client, coordURL, cr)
			if err != nil {
				failed.Add(1)
				errs[i] = err
			}
			if done.Add(1) >= int64(killAfter) {
				killed.Do(func() {
					fmt.Fprintf(os.Stderr, "gcbench: killing worker %s mid-drill\n", victim.addr)
					victim.kill()
				})
			}
		}(i)
	}
	wg.Wait()

	post := coord.Stats()
	out := &clusterDrillOut{
		Jobs:           total,
		Succeeded:      total - int(failed.Load()),
		Failed:         int(failed.Load()),
		KilledAfter:    killAfter,
		Redispatches:   post.Redispatches - pre.Redispatches,
		RouteFailovers: post.RouteFailovers - pre.RouteFailovers,
		Quarantines:    post.Quarantines - pre.Quarantines,
		ZeroLost:       failed.Load() == 0,
	}
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: drill job %d failed: %v\n", i, err)
		}
	}
	return out, nil
}
