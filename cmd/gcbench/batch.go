// Batched-dispatch benchmark (-batch): measures the PR 8 small-graph fast
// path — block-diagonal kernel batching plus the binary CSR wire format —
// and writes BENCH_PR8.json. Four sections:
//
//   - identical: a forced batch of heterogeneous small graphs, each
//     member's coloring compared bit-for-bit against a solo run on a
//     batch-disabled twin server (the correctness contract of
//     gpucolor.PrioritySegments result splitting);
//   - poison: cross-tenant leakage probe — a chromatic-number-12 member
//     is fused with 2-colorable members, and any palette bleed between
//     blocks shows up as extra distinct colors or a failed verify;
//   - throughput: the gcload default mix (same shape as -hostperf:
//     60 requests, 4 devices, concurrency 8) batch-on vs batch-off,
//     gated against the committed BENCH_PR3 baseline;
//   - ingest: steady-state allocations of one binary CSR upload vs the
//     JSON/edge-list path for the same graph through the real HTTP
//     handler, gated at 10%.
//
// The run exits non-zero if any coloring differs, any leak is detected,
// the default-mix gain vs the PR 3 baseline falls below -batch-floor, or
// binary ingest exceeds the allocation ratio.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"slices"
	"sync"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/serve"
)

// pr3MixThroughputRPS is the pooled-server default-mix throughput the
// PR 3 commit's `gcbench -hostperf` recorded (BENCH_PR3.json,
// gcload_default_mix.throughput_rps: 60 requests, 4 devices, conc 8).
const pr3MixThroughputRPS = 276.94

// batchMembers are the graphs fused into the forced batch of the
// identical/poison sections: the default-mix shapes plus deliberately
// clashing structures (a K12 needing 12 colors next to 2-colorable
// stars) so palette bleed between blocks cannot hide.
var batchMembers = []string{
	"grid:40:40",
	"gnm:2000:8000:1",
	"rmat:9:8:1",
	"star:200",
	"complete:12",
	"star:100",
	"grid:20:20",
}

type memberResult struct {
	Graph        string `json:"graph"`
	Seed         uint32 `json:"seed"`
	Batched      bool   `json:"batched"`
	BatchSize    int    `json:"batch_size"`
	NumColors    int    `json:"num_colors"`
	SoloColors   int    `json:"solo_num_colors"`
	BitIdentical bool   `json:"bit_identical"`
	Valid        bool   `json:"valid"`
}

type batchThroughput struct {
	Requests         int     `json:"requests"`
	Devices          int     `json:"devices"`
	Concurrency      int     `json:"concurrency"`
	BatchOffRPS      float64 `json:"batch_off_rps"`
	BatchOnRPS       float64 `json:"batch_on_rps"`
	GainVsOff        float64 `json:"gain_vs_off"`
	PR3ThroughputRPS float64 `json:"pr3_throughput_rps"`
	GainVsPR3        float64 `json:"gain_vs_pr3"`
	Batches          int64   `json:"batches"`
	BatchedJobs      int64   `json:"batched_jobs"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
}

type ingestSection struct {
	Graph        string  `json:"graph"`
	JSONAllocs   uint64  `json:"json_allocs_per_request"`
	BinaryAllocs uint64  `json:"binary_allocs_per_request"`
	Ratio        float64 `json:"binary_to_json_ratio"`
}

type batchReport struct {
	Bench         string          `json:"bench"`
	Members       []memberResult  `json:"identical"`
	PoisonLeaks   int             `json:"poison_leaks"`
	Throughput    batchThroughput `json:"default_mix"`
	Ingest        ingestSection   `json:"binary_ingest"`
	Floor         float64         `json:"floor_gain_vs_pr3"`
	IngestCeiling float64         `json:"ingest_ratio_ceiling"`
	BudgetFile    string          `json:"budget_file,omitempty"`
	Passed        bool            `json:"passed"`
}

// soloResults colors every member on a batch-disabled server: the ground
// truth the batched colorings must match bit-for-bit.
func soloResults(graphs []*graph.Graph) ([]*serve.Response, error) {
	s := serve.NewServer(serve.Config{
		Devices: 1, Workers: 1,
		Batch: serve.BatchConfig{Disabled: true},
	})
	defer s.Stop()
	out := make([]*serve.Response, len(graphs))
	for i, g := range graphs {
		res, err := s.Submit(context.Background(), &serve.Request{
			Graph: g, Seed: uint32(i*7 + 1), NoCache: true,
		})
		if err != nil {
			return nil, fmt.Errorf("solo member %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// batchedResults forces every member into one fused launch: a long job
// pins the single worker while the members queue behind it, so the next
// dequeue gathers them all.
func batchedResults(graphs []*graph.Graph) ([]*serve.Response, error) {
	s := serve.NewServer(serve.Config{Devices: 1, Workers: 1})
	defer s.Stop()
	blocker, err := serve.ParseGraphSpec("rmat:12:16:99")
	if err != nil {
		return nil, err
	}
	blockDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), &serve.Request{Graph: blocker, NoCache: true})
		blockDone <- err
	}()
	// Let the blocker reach the device before the members enqueue.
	time.Sleep(100 * time.Millisecond)

	out := make([]*serve.Response, len(graphs))
	errs := make([]error, len(graphs))
	var wg sync.WaitGroup
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g *graph.Graph) {
			defer wg.Done()
			out[i], errs[i] = s.Submit(context.Background(), &serve.Request{
				Graph: g, Seed: uint32(i*7 + 1), NoCache: true,
			})
		}(i, g)
	}
	wg.Wait()
	if err := <-blockDone; err != nil {
		return nil, fmt.Errorf("blocker: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("batched member %d: %w", i, err)
		}
	}
	return out, nil
}

// mixThroughput replays the -hostperf default mix on a 4-device server
// with the given batch config and reports throughput plus batch counters.
func mixThroughput(batch serve.BatchConfig, n, conc int) (float64, serve.Stats, error) {
	const devices = 4
	specs, graphs, err := servingRequests(n)
	if err != nil {
		return 0, serve.Stats{}, err
	}
	s := serve.NewServer(serve.Config{Devices: devices, Batch: batch})
	defer s.Stop()
	work := make(chan string)
	errc := make(chan error, conc)
	start := time.Now()
	for w := 0; w < conc; w++ {
		go func() {
			for spec := range work {
				if _, err := s.Submit(context.Background(), &serve.Request{
					Graph:     graphs[spec],
					Algorithm: gpucolor.AlgHybrid,
				}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for _, spec := range specs {
		work <- spec
	}
	close(work)
	for w := 0; w < conc; w++ {
		if err := <-errc; err != nil {
			return 0, serve.Stats{}, fmt.Errorf("default mix: %w", err)
		}
	}
	rps := float64(n) / time.Since(start).Seconds()
	return rps, s.Stats(), nil
}

// measureIngest replays one cached request per wire format through the
// real HTTP handler and reports steady-state allocations per request.
func measureIngest() (ingestSection, error) {
	const spec = "gnm:2000:8000:1"
	s := serve.NewServer(serve.Config{Devices: 1})
	defer s.Stop()
	h := serve.Handler(s)
	g, err := serve.ParseGraphSpec(spec)
	if err != nil {
		return ingestSection{}, err
	}
	frame := graph.EncodeWireCSR(g)
	var el bytes.Buffer
	if err := graph.WriteEdgeList(&el, g); err != nil {
		return ingestSection{}, err
	}
	jsonBody, err := json.Marshal(&serve.ColorRequest{Graph: el.String()})
	if err != nil {
		return ingestSection{}, err
	}

	do := func(body []byte, contentType string) error {
		req := httptest.NewRequest(http.MethodPost, "/color", bytes.NewReader(body))
		req.Header.Set("Content-Type", contentType)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			return fmt.Errorf("ingest request: status %d: %s", rw.Code, rw.Body.String())
		}
		return nil
	}
	// Warm both paths and the result cache so the measured runs isolate
	// ingest (body read, decode, request build, response encode).
	if err := do(jsonBody, "application/json"); err != nil {
		return ingestSection{}, err
	}
	if err := do(frame, serve.ContentTypeBinaryCSR); err != nil {
		return ingestSection{}, err
	}
	const runs = 16
	measure := func(body []byte, contentType string) (uint64, error) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < runs; i++ {
			if err := do(body, contentType); err != nil {
				return 0, err
			}
		}
		runtime.ReadMemStats(&after)
		return (after.Mallocs - before.Mallocs) / runs, nil
	}
	sec := ingestSection{Graph: spec}
	if sec.JSONAllocs, err = measure(jsonBody, "application/json"); err != nil {
		return ingestSection{}, err
	}
	if sec.BinaryAllocs, err = measure(frame, serve.ContentTypeBinaryCSR); err != nil {
		return ingestSection{}, err
	}
	if sec.JSONAllocs > 0 {
		sec.Ratio = float64(sec.BinaryAllocs) / float64(sec.JSONAllocs)
	}
	return sec, nil
}

// runBatchBench executes -batch and writes jsonPath; floor is the minimum
// default-mix throughput gain over the PR 3 baseline. A non-empty
// budgetPath reads BENCH_BUDGET.json and tightens the binary-ingest
// allocation gate to its max_binary_ingest_alloc_ratio entry.
func runBatchBench(jsonPath, budgetPath string, floor float64) error {
	ingestCeiling := 0.10
	var budgetFile string
	if budgetPath != "" {
		raw, err := os.ReadFile(budgetPath)
		if err != nil {
			return fmt.Errorf("budget: %w", err)
		}
		var budget allocBudget
		if err := json.Unmarshal(raw, &budget); err != nil {
			return fmt.Errorf("budget %s: %w", budgetPath, err)
		}
		if budget.MaxBinaryIngestRatio > 0 {
			ingestCeiling = budget.MaxBinaryIngestRatio
		}
		budgetFile = budgetPath
	}
	graphs := make([]*graph.Graph, len(batchMembers))
	for i, spec := range batchMembers {
		g, err := serve.ParseGraphSpec(spec)
		if err != nil {
			return fmt.Errorf("member %q: %w", spec, err)
		}
		graphs[i] = g
	}

	solo, err := soloResults(graphs)
	if err != nil {
		return err
	}
	batched, err := batchedResults(graphs)
	if err != nil {
		return err
	}

	rep := batchReport{
		Bench: "batch-pr8", Floor: floor,
		IngestCeiling: ingestCeiling, BudgetFile: budgetFile, Passed: true,
	}
	for i := range graphs {
		m := memberResult{
			Graph: batchMembers[i], Seed: uint32(i*7 + 1),
			Batched: batched[i].Batched, BatchSize: batched[i].BatchSize,
			NumColors: batched[i].NumColors, SoloColors: solo[i].NumColors,
			BitIdentical: slices.Equal(batched[i].Colors, solo[i].Colors),
			Valid:        color.Verify(graphs[i], batched[i].Colors) == nil,
		}
		if !m.Batched || !m.BitIdentical || !m.Valid {
			rep.Passed = false
		}
		// Poison probe: a leak from the K12 block into a 2-colorable
		// neighbor (or vice versa) changes the member's distinct-color
		// count or breaks its verify.
		if m.NumColors != m.SoloColors || !m.Valid {
			rep.PoisonLeaks++
		}
		rep.Members = append(rep.Members, m)
	}

	// The default mix at saturating concurrency: 4 devices, 32 clients.
	// Queue depth is what batching converts into fused launches, so the
	// benchmark drives the overload regime; the batch-off twin runs the
	// identical shape (device-bound, so its throughput matches the conc-8
	// number BENCH_PR3 recorded).
	const mixN, mixConc = 240, 32
	offRPS, _, err := mixThroughput(serve.BatchConfig{Disabled: true}, mixN, mixConc)
	if err != nil {
		return err
	}
	onRPS, onStats, err := mixThroughput(serve.BatchConfig{}, mixN, mixConc)
	if err != nil {
		return err
	}
	tp := batchThroughput{
		Requests: mixN, Devices: 4, Concurrency: mixConc,
		BatchOffRPS: offRPS, BatchOnRPS: onRPS,
		PR3ThroughputRPS: pr3MixThroughputRPS,
		Batches:          onStats.Batches, BatchedJobs: onStats.BatchedJobs,
	}
	if offRPS > 0 {
		tp.GainVsOff = onRPS / offRPS
	}
	tp.GainVsPR3 = onRPS / pr3MixThroughputRPS
	if tp.Batches > 0 {
		tp.MeanBatchSize = float64(tp.BatchedJobs) / float64(tp.Batches)
	}
	rep.Throughput = tp
	if tp.GainVsPR3 < floor {
		rep.Passed = false
	}

	if rep.Ingest, err = measureIngest(); err != nil {
		return err
	}
	if rep.Ingest.Ratio > ingestCeiling {
		rep.Passed = false
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"gcbench: batch %.1f rps on vs %.1f off (%.2fx, %.2fx vs PR3's %.1f); %d batches of mean %.1f; binary ingest %d vs json %d allocs (%.1f%%) -> %s\n",
		onRPS, offRPS, tp.GainVsOff, tp.GainVsPR3, pr3MixThroughputRPS,
		tp.Batches, tp.MeanBatchSize, rep.Ingest.BinaryAllocs, rep.Ingest.JSONAllocs,
		100*rep.Ingest.Ratio, jsonPath)
	if !rep.Passed {
		return fmt.Errorf("batch gates failed: see %s (floor %.2fx vs PR3, leaks %d, ingest ratio %.3f)",
			jsonPath, floor, rep.PoisonLeaks, rep.Ingest.Ratio)
	}
	return nil
}
