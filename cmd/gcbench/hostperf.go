// Host-performance benchmark (-hostperf): measures the PR 3 hot path —
// device memory arena, runner pooling, and fused kernels — and writes
// BENCH_PR3.json. Three host-side request paths run on the same workload:
//
//   - transient: the PR 2 call shape on today's code — a fresh device and
//     a transient gpucolor run per request (cold arena every time);
//   - pooled: a warm single-device serve.Server (the serving hot path);
//   - pooled+fused: the same with the fused assign+flag kernels.
//
// Each section records wall clock, heap allocations, allocated bytes and
// GC pause time per request (runtime.ReadMemStats deltas). The simulated
// side records fused-vs-unfused cycles per seed dataset, which must be
// bit-identical colorings in strictly fewer cycles.
//
// With -budget pointing at BENCH_BUDGET.json, the run fails (exit 1) if
// the pooled path's allocations per request exceed the committed budget —
// the CI regression gate for the zero-allocation hot path.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/serve"
	"gcolor/internal/simt"
)

// pr2Baseline is the same steady-state measurement taken on the PR 2 tree
// (commit "Add gcolord serving layer...", one warm device, NoCache
// requests on rmat:9:8:3): the before side of this PR's before/after.
var pr2Baseline = hostSection{
	Label:          "pr2-serving-path (measured at the PR 2 commit)",
	Requests:       10,
	WallUSPerReq:   21999,
	AllocsPerReq:   180984,
	BytesPerReq:    17232811,
	GCPauseUSTotal: -1, // not recorded at the PR 2 commit
}

// hostperfDatasets are the seed datasets for the fused-vs-unfused cycle
// comparison (the gcload default mix plus the larger rmat the paper
// experiments lean on).
var hostperfDatasets = []string{
	"grid:40:40",
	"gnm:2000:8000:1",
	"rmat:9:8:1",
	"rmat:11:16:1",
}

type hostSection struct {
	Label          string `json:"label"`
	Requests       int    `json:"requests"`
	WallUSPerReq   int64  `json:"wall_us_per_request"`
	AllocsPerReq   int64  `json:"allocs_per_request"`
	BytesPerReq    int64  `json:"bytes_per_request"`
	GCPauseUSTotal int64  `json:"gc_pause_us_total"`
	GCRuns         int64  `json:"gc_runs"`
}

type fusedNumber struct {
	Graph         string  `json:"graph"`
	Algorithm     string  `json:"algorithm"`
	PlainCycles   int64   `json:"plain_cycles"`
	FusedCycles   int64   `json:"fused_cycles"`
	CycleSavings  float64 `json:"cycle_savings_pct"`
	BitIdentical  bool    `json:"bit_identical"`
	FewerLaunches bool    `json:"strictly_fewer_cycles"`
}

type hostperfReport struct {
	Bench            string        `json:"bench"`
	Workload         string        `json:"workload"`
	Fused            []fusedNumber `json:"fused_vs_plain"`
	PR2              hostSection   `json:"pr2_baseline"`
	Transient        hostSection   `json:"transient"`
	Pooled           hostSection   `json:"pooled"`
	PooledFused      hostSection   `json:"pooled_fused"`
	DefaultMix       mixSection    `json:"gcload_default_mix"`
	AllocReduction   float64       `json:"alloc_reduction_vs_pr2"`
	ThroughputGain   float64       `json:"throughput_gain_vs_pr2"`
	BudgetFile       string        `json:"budget_file,omitempty"`
	BudgetAllocs     int64         `json:"budget_allocs_per_request,omitempty"`
	WithinBudget     bool          `json:"within_budget"`
	BudgetHeadroomPC float64       `json:"budget_headroom_pct,omitempty"`
}

// mixSection is the gcload default mix (the -serving workload) replayed
// on the pooled server, compared against the throughput the PR 2 tree
// recorded for the identical benchmark in its committed BENCH_PR2.json.
type mixSection struct {
	Requests         int     `json:"requests"`
	Devices          int     `json:"devices"`
	Concurrency      int     `json:"concurrency"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	PR2ThroughputRPS float64 `json:"pr2_throughput_rps"`
	Gain             float64 `json:"gain_vs_pr2"`
}

// pr2MixThroughputRPS is the pooled-server throughput the PR 2 commit's
// `gcbench -serving` recorded on this exact mix (BENCH_PR2.json,
// serving.throughput_rps: 60 requests, 4 devices, concurrency 8).
const pr2MixThroughputRPS = 172.83

// defaultMixThroughput replays the -serving pooled workload (same mix,
// same server shape) and reports wall-clock throughput.
func defaultMixThroughput() (mixSection, error) {
	const n, devices, conc = 60, 4, 8
	specs, graphs, err := servingRequests(n)
	if err != nil {
		return mixSection{}, err
	}
	s := serve.NewServer(serve.Config{Devices: devices})
	defer s.Stop()
	work := make(chan string)
	errc := make(chan error, conc)
	start := time.Now()
	for w := 0; w < conc; w++ {
		go func() {
			for spec := range work {
				if _, err := s.Submit(context.Background(), &serve.Request{
					Graph:     graphs[spec],
					Algorithm: gpucolor.AlgHybrid,
				}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for _, spec := range specs {
		work <- spec
	}
	close(work)
	for w := 0; w < conc; w++ {
		if err := <-errc; err != nil {
			return mixSection{}, fmt.Errorf("default mix: %w", err)
		}
	}
	m := mixSection{
		Requests:         n,
		Devices:          devices,
		Concurrency:      conc,
		ThroughputRPS:    float64(n) / time.Since(start).Seconds(),
		PR2ThroughputRPS: pr2MixThroughputRPS,
	}
	m.Gain = m.ThroughputRPS / m.PR2ThroughputRPS
	return m, nil
}

type allocBudget struct {
	MaxAllocsPerRequest int64 `json:"max_allocs_per_request"`
	// MaxBinaryIngestRatio caps binary-CSR ingest allocations as a
	// fraction of the JSON path's, enforced by -batch (0 = use the
	// default gate).
	MaxBinaryIngestRatio float64 `json:"max_binary_ingest_alloc_ratio"`
}

// measureHost runs fn n times after a warmup call and returns the
// per-request host-side costs.
func measureHost(label string, n int, fn func() error) (hostSection, error) {
	if err := fn(); err != nil {
		return hostSection{}, fmt.Errorf("%s warmup: %w", label, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(); err != nil {
			return hostSection{}, fmt.Errorf("%s request %d: %w", label, i, err)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return hostSection{
		Label:          label,
		Requests:       n,
		WallUSPerReq:   wall.Microseconds() / int64(n),
		AllocsPerReq:   int64(after.Mallocs-before.Mallocs) / int64(n),
		BytesPerReq:    int64(after.TotalAlloc-before.TotalAlloc) / int64(n),
		GCPauseUSTotal: int64(after.PauseTotalNs-before.PauseTotalNs) / 1000,
		GCRuns:         int64(after.NumGC - before.NumGC),
	}, nil
}

// fusedNumbers runs every dataset fused and unfused and checks the fusion
// contract: identical colorings, strictly fewer simulated cycles.
func fusedNumbers() ([]fusedNumber, error) {
	var out []fusedNumber
	for _, spec := range hostperfDatasets {
		g, err := serve.ParseGraphSpec(spec)
		if err != nil {
			return nil, err
		}
		for _, alg := range []gpucolor.Algorithm{gpucolor.AlgBaseline, gpucolor.AlgMaxMin} {
			plain, err := gpucolor.Color(simt.NewDevice(), g, alg, gpucolor.Options{Seed: 1})
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", spec, alg, err)
			}
			fused, err := gpucolor.Color(simt.NewDevice(), g, alg, gpucolor.Options{Seed: 1, Fused: true})
			if err != nil {
				return nil, fmt.Errorf("%s/%s fused: %w", spec, alg, err)
			}
			fn := fusedNumber{
				Graph:         spec,
				Algorithm:     alg.String(),
				PlainCycles:   plain.Cycles,
				FusedCycles:   fused.Cycles,
				BitIdentical:  slices.Equal(plain.Colors, fused.Colors),
				FewerLaunches: fused.Cycles < plain.Cycles,
			}
			if plain.Cycles > 0 {
				fn.CycleSavings = 100 * float64(plain.Cycles-fused.Cycles) / float64(plain.Cycles)
			}
			if !fn.BitIdentical || !fn.FewerLaunches {
				return nil, fmt.Errorf("%s/%s: fusion contract violated (identical=%v, fused %d vs plain %d cycles)",
					spec, alg, fn.BitIdentical, fused.Cycles, plain.Cycles)
			}
			out = append(out, fn)
		}
	}
	return out, nil
}

// runHostperfBench executes -hostperf and writes jsonPath; budgetPath, if
// non-empty, is the committed allocation budget to enforce.
func runHostperfBench(jsonPath, budgetPath string, n int) error {
	if n < 1 {
		n = 1
	}
	fused, err := fusedNumbers()
	if err != nil {
		return err
	}

	const workload = "rmat:9:8:3"
	g, err := serve.ParseGraphSpec(workload)
	if err != nil {
		return err
	}

	transient, err := measureHost("transient (fresh device per request)", n, func() error {
		_, err := gpucolor.ColorContext(context.Background(), simt.NewDevice(), g,
			gpucolor.AlgBaseline, gpucolor.ResilientOptions{})
		return err
	})
	if err != nil {
		return err
	}

	serveSection := func(label string, fusedReq bool) (hostSection, error) {
		s := serve.NewServer(serve.Config{Devices: 1, Workers: 1})
		defer s.Stop()
		return measureHost(label, n, func() error {
			_, err := s.Submit(context.Background(), &serve.Request{
				Graph: g, NoCache: true, Fused: fusedReq,
			})
			return err
		})
	}
	pooled, err := serveSection("pooled (warm server)", false)
	if err != nil {
		return err
	}
	pooledFused, err := serveSection("pooled+fused (warm server)", true)
	if err != nil {
		return err
	}
	mix, err := defaultMixThroughput()
	if err != nil {
		return err
	}

	rep := hostperfReport{
		Bench:       "hotpath-pr3",
		Workload:    workload,
		Fused:       fused,
		PR2:         pr2Baseline,
		Transient:   transient,
		Pooled:      pooled,
		PooledFused: pooledFused,
		DefaultMix:  mix,
	}
	if pooled.AllocsPerReq > 0 {
		rep.AllocReduction = float64(pr2Baseline.AllocsPerReq) / float64(pooled.AllocsPerReq)
	}
	if pooledFused.WallUSPerReq > 0 {
		rep.ThroughputGain = float64(pr2Baseline.WallUSPerReq) / float64(pooledFused.WallUSPerReq)
	}
	rep.WithinBudget = true
	if budgetPath != "" {
		raw, err := os.ReadFile(budgetPath)
		if err != nil {
			return fmt.Errorf("budget: %w", err)
		}
		var budget allocBudget
		if err := json.Unmarshal(raw, &budget); err != nil {
			return fmt.Errorf("budget %s: %w", budgetPath, err)
		}
		rep.BudgetFile = budgetPath
		rep.BudgetAllocs = budget.MaxAllocsPerRequest
		rep.WithinBudget = pooled.AllocsPerReq <= budget.MaxAllocsPerRequest
		if budget.MaxAllocsPerRequest > 0 {
			rep.BudgetHeadroomPC = 100 * float64(budget.MaxAllocsPerRequest-pooled.AllocsPerReq) /
				float64(budget.MaxAllocsPerRequest)
		}
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"gcbench: pooled %d allocs/req (%.0fx below PR2's %d), %dus/req wall (PR2 %dus); fused saves %.1f%% cycles on %s -> %s\n",
		pooled.AllocsPerReq, rep.AllocReduction, pr2Baseline.AllocsPerReq,
		pooled.WallUSPerReq, pr2Baseline.WallUSPerReq, fused[len(fused)-1].CycleSavings,
		fused[len(fused)-1].Graph, jsonPath)
	if !rep.WithinBudget {
		return fmt.Errorf("allocation budget exceeded: pooled path allocates %d objects per request, budget %d (%s)",
			pooled.AllocsPerReq, rep.BudgetAllocs, budgetPath)
	}
	return nil
}
