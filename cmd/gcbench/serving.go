// Serving benchmark (-serving): measures the gcolord serving layer
// in-process — a serial no-cache baseline versus a pooled serve.Server on
// the same workload mix — plus compact kernel numbers, and writes the
// result as JSON (BENCH_PR2.json by default).
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/serve"
	"gcolor/internal/simt"
)

// servingMix is the default workload: a regular mesh, a uniform random
// graph, and a scale-free graph, weighted toward repeats so the cache
// and coalescing layers see realistic duplicate traffic. A fraction of
// requests get a rewritten seed so some misses always remain.
var servingMix = []struct {
	spec   string
	weight int
}{
	{"grid:40:40", 4},
	{"gnm:2000:8000:1", 3},
	{"rmat:9:8:1", 3},
}

const servingUniqueEvery = 5 // every 5th request gets a fresh seed (20% unique)

type latencySummary struct {
	P50us  int64 `json:"p50_us"`
	P90us  int64 `json:"p90_us"`
	P99us  int64 `json:"p99_us"`
	Meanus int64 `json:"mean_us"`
	Maxus  int64 `json:"max_us"`
}

type kernelNumber struct {
	Graph      string  `json:"graph"`
	Algorithm  string  `json:"algorithm"`
	Colors     int     `json:"colors"`
	Iterations int     `json:"iterations"`
	Cycles     int64   `json:"cycles"`
	SIMDUtil   float64 `json:"simd_util"`
}

type servingReport struct {
	Bench       string         `json:"bench"`
	Requests    int            `json:"requests"`
	Mix         []string       `json:"mix"`
	Kernels     []kernelNumber `json:"kernels"`
	Serial      serialSection  `json:"serial"`
	Serving     servingSection `json:"serving"`
	SpeedupVsX1 float64        `json:"speedup_vs_serial"`
}

type serialSection struct {
	Requests      int            `json:"requests"`
	Seconds       float64        `json:"seconds"`
	ThroughputRPS float64        `json:"throughput_rps"`
	Latency       latencySummary `json:"latency"`
}

type servingSection struct {
	Devices           int            `json:"devices"`
	Concurrency       int            `json:"concurrency"`
	Requests          int            `json:"requests"`
	OK                int            `json:"ok"`
	Failed            int64          `json:"failed"`
	Cached            int64          `json:"cached"`
	Coalesced         int64          `json:"coalesced"`
	Shed              int64          `json:"shed"`
	QueueFull         int64          `json:"queue_full"`
	CacheHitRate      float64        `json:"cache_hit_rate"`
	DeviceUtilization float64        `json:"device_utilization"`
	Seconds           float64        `json:"seconds"`
	ThroughputRPS     float64        `json:"throughput_rps"`
	Latency           latencySummary `json:"latency"`
}

// servingRequests expands the weighted mix into n (spec, graph) pairs.
// Every servingUniqueEvery-th request attempts a seed rewrite, matching
// gcload's reseed semantics: seeded specs (gnm, rmat) become
// never-before-seen graphs, seedless ones (grid) stay duplicates. The
// weights interleave so the unique slots land on both kinds.
func servingRequests(n int) ([]string, map[string]*graph.Graph, error) {
	var ring []string
	for i := 0; len(ring) < servingTotalWeight(); i++ {
		for _, m := range servingMix {
			if i < m.weight {
				ring = append(ring, m.spec)
			}
		}
	}
	specs := make([]string, 0, n)
	graphs := make(map[string]*graph.Graph)
	unique := 0
	for i := 0; i < n; i++ {
		spec := ring[i%len(ring)]
		if i%servingUniqueEvery == servingUniqueEvery-1 {
			unique++
			switch spec {
			case "gnm:2000:8000:1":
				spec = fmt.Sprintf("gnm:2000:8000:%d", 1000+unique)
			case "rmat:9:8:1":
				spec = fmt.Sprintf("rmat:9:8:%d", 1000+unique)
			}
		}
		if _, ok := graphs[spec]; !ok {
			g, err := serve.ParseGraphSpec(spec)
			if err != nil {
				return nil, nil, fmt.Errorf("mix spec %q: %w", spec, err)
			}
			graphs[spec] = g
		}
		specs = append(specs, spec)
	}
	return specs, graphs, nil
}

func servingTotalWeight() int {
	t := 0
	for _, m := range servingMix {
		t += m.weight
	}
	return t
}

func summarizeLatency(us []int64) latencySummary {
	if len(us) == 0 {
		return latencySummary{}
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(us)-1))
		return us[i]
	}
	var sum int64
	for _, v := range us {
		sum += v
	}
	return latencySummary{
		P50us:  at(0.50),
		P90us:  at(0.90),
		P99us:  at(0.99),
		Meanus: sum / int64(len(us)),
		Maxus:  us[len(us)-1],
	}
}

// kernelNumbers records the core per-kernel evidence the earlier PRs
// benchmarked, so BENCH_PR2.json is self-contained: colors, iterations,
// cycles, and SIMD utilization for the baseline and hybrid algorithms.
func kernelNumbers() ([]kernelNumber, error) {
	const spec = "rmat:11:16:1"
	g, err := serve.ParseGraphSpec(spec)
	if err != nil {
		return nil, err
	}
	var out []kernelNumber
	for _, alg := range []gpucolor.Algorithm{gpucolor.AlgBaseline, gpucolor.AlgHybrid} {
		dev := simt.NewDevice()
		res, err := gpucolor.Color(dev, g, alg, gpucolor.Options{Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("kernel %s: %w", alg, err)
		}
		out = append(out, kernelNumber{
			Graph:      spec,
			Algorithm:  alg.String(),
			Colors:     res.NumColors,
			Iterations: res.Iterations,
			Cycles:     res.Cycles,
			SIMDUtil:   res.SIMDUtilization(),
		})
	}
	return out, nil
}

// runServingBench executes the benchmark and writes jsonPath.
func runServingBench(jsonPath string, n, devices, conc int) error {
	specs, graphs, err := servingRequests(n)
	if err != nil {
		return err
	}
	mix := make([]string, 0, len(servingMix))
	for _, m := range servingMix {
		mix = append(mix, fmt.Sprintf("%s=%d", m.spec, m.weight))
	}

	kernels, err := kernelNumbers()
	if err != nil {
		return err
	}

	// Serial baseline: one device, one request at a time, no cache — what a
	// script looping `gcolor` over the same mix would sustain.
	serial := serialSection{Requests: n}
	{
		dev := simt.NewDevice()
		lat := make([]int64, 0, n)
		start := time.Now()
		for _, spec := range specs {
			t0 := time.Now()
			if _, err := gpucolor.ColorContext(context.Background(), dev, graphs[spec],
				gpucolor.AlgHybrid, gpucolor.ResilientOptions{}); err != nil {
				return fmt.Errorf("serial baseline %q: %w", spec, err)
			}
			lat = append(lat, time.Since(t0).Microseconds())
		}
		serial.Seconds = time.Since(start).Seconds()
		serial.ThroughputRPS = float64(n) / serial.Seconds
		serial.Latency = summarizeLatency(lat)
	}

	// Pooled server on the identical request stream.
	sv := servingSection{Devices: devices, Concurrency: conc, Requests: n}
	{
		s := serve.NewServer(serve.Config{Devices: devices})
		var (
			mu  sync.Mutex
			lat = make([]int64, 0, n)
			ok  int
		)
		work := make(chan string)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for spec := range work {
					t0 := time.Now()
					_, err := s.Submit(context.Background(), &serve.Request{
						Graph:     graphs[spec],
						Algorithm: gpucolor.AlgHybrid,
					})
					us := time.Since(t0).Microseconds()
					mu.Lock()
					if err == nil {
						ok++
						lat = append(lat, us)
					}
					mu.Unlock()
				}
			}()
		}
		for _, spec := range specs {
			work <- spec
		}
		close(work)
		wg.Wait()
		sv.Seconds = time.Since(start).Seconds()
		s.Stop()
		st := s.Stats()
		sv.OK = ok
		sv.Failed = st.Failed
		sv.Cached = st.CacheHits
		sv.Coalesced = st.Coalesced
		sv.Shed = st.Shed
		sv.QueueFull = st.QueueFull
		sv.CacheHitRate = st.CacheHitRate
		sv.DeviceUtilization = st.Utilization
		sv.ThroughputRPS = float64(ok) / sv.Seconds
		sv.Latency = summarizeLatency(lat)
	}

	rep := servingReport{
		Bench:    "gcolord-serving",
		Requests: n,
		Mix:      mix,
		Kernels:  kernels,
		Serial:   serial,
		Serving:  sv,
	}
	if serial.ThroughputRPS > 0 {
		rep.SpeedupVsX1 = sv.ThroughputRPS / serial.ThroughputRPS
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"gcbench: serving %.1f req/s vs serial %.1f req/s (%.2fx), cache hit rate %.2f, shed %d -> %s\n",
		sv.ThroughputRPS, serial.ThroughputRPS, rep.SpeedupVsX1, sv.CacheHitRate, sv.Shed+sv.QueueFull, jsonPath)
	return nil
}
