// Partition-tolerance drill (-partition): exercises the control plane's
// failure story end to end and gates it, writing BENCH_PR9.json.
//
// Phase 1 — failover under chaos. A journaled primary coordinator (epoch
// lease acquired from its journal directory) fronts a small fleet in
// which one worker sits behind a netchaos TCP proxy. A warm standby tails
// the same journal directory and probes the primary. Mid-load the proxied
// worker is partitioned, then the primary is hard-killed (listener and
// connections severed, journal left unflushed-clean, no goodbye). Clients
// retry with idempotency keys against the shared front-door address.
// Gates:
//
//   - zero lost jobs: every accepted job completes, through retries;
//   - the standby's takeover (lease, journal tail drain, bind, replay
//     start) finishes within one heartbeat interval;
//   - the accept journaled without a completion is replayed with zero
//     recovery failures;
//   - an idempotent retry across the failover returns the identical
//     coloring computed before the primary died;
//   - fault-window throughput stays >= 70% of the healthy window.
//
// Phase 2 — gray failure. A fresh fleet where one worker answers 2xx but
// ~10x slower (netchaos SlowHost on the coordinator's client). Gates: the
// slow worker loses rendezvous rank (gray demotions > 0) while its
// breaker stays closed (zero quarantines), and the steady-state
// default-mix P99 after demotion stays within 2x the healthy baseline.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/cluster"
	"gcolor/internal/journal"
	"gcolor/internal/netchaos"
	"gcolor/internal/serve"
)

const (
	partHeartbeat       = 150 * time.Millisecond
	partThroughputFloor = 0.70
	partGrayP99Limit    = 2.0
)

type partFailoverOut struct {
	Jobs                int     `json:"jobs"`
	Lost                int     `json:"lost"`
	Retried             int     `json:"retried_jobs"`
	HealthyWindowSec    float64 `json:"healthy_window_seconds"`
	FaultWindowSec      float64 `json:"fault_window_seconds"`
	HealthyJobsPerSec   float64 `json:"healthy_jobs_per_sec"`
	FaultJobsPerSec     float64 `json:"fault_jobs_per_sec"`
	ThroughputRatio     float64 `json:"throughput_ratio"`
	TakeoverMS          int64   `json:"takeover_ms"`
	TakeoverEpoch       uint64  `json:"takeover_epoch"`
	PendingReplayed     int     `json:"pending_replayed"`
	RecoveryFailed      int64   `json:"recovery_failed"`
	ReplayFailed        int64   `json:"replay_failed"` // alias of recovery_failed for gate tooling
	IdempotentIdentical bool    `json:"idempotent_replay_identical"`
	PartitionedWorker   string  `json:"partitioned_worker"`
	ChaosRequests       int64   `json:"chaos_requests"`
}

type partGrayOut struct {
	WarmupJobs     int     `json:"warmup_jobs"`
	MeasuredJobs   int     `json:"measured_jobs"`
	SlowDelayMS    float64 `json:"slow_delay_ms"`
	BaselineP99MS  float64 `json:"baseline_p99_ms"`
	GrayP99MS      float64 `json:"gray_p99_ms"`
	P99Ratio       float64 `json:"p99_ratio"`
	GrayDemotions  int64   `json:"gray_demotions"`
	Quarantines    int64   `json:"quarantines"`
	SlowWorkerGray bool    `json:"slow_worker_gray"`
}

type partitionReport struct {
	Bench           string          `json:"bench"`
	Workers         int             `json:"workers"`
	HeartbeatMS     int64           `json:"heartbeat_ms"`
	ThroughputFloor float64         `json:"throughput_floor"`
	GrayP99Limit    float64         `json:"gray_p99_limit"`
	Failover        partFailoverOut `json:"failover"`
	Gray            partGrayOut     `json:"gray"`
}

func runPartitionBench(jsonPath string, workers int) error {
	if workers < 3 {
		return fmt.Errorf("-partition needs at least 3 workers, got %d", workers)
	}
	rep := partitionReport{
		Bench:           "partition-tolerance",
		Workers:         workers,
		HeartbeatMS:     partHeartbeat.Milliseconds(),
		ThroughputFloor: partThroughputFloor,
		GrayP99Limit:    partGrayP99Limit,
	}

	fo, err := runFailoverDrill(workers)
	if err != nil {
		return fmt.Errorf("failover drill: %w", err)
	}
	rep.Failover = *fo
	if fo.Lost != 0 {
		return fmt.Errorf("failover drill lost %d jobs", fo.Lost)
	}
	if fo.RecoveryFailed != 0 {
		return fmt.Errorf("failover drill: %d replay failures", fo.RecoveryFailed)
	}
	if fo.TakeoverMS > partHeartbeat.Milliseconds() {
		return fmt.Errorf("takeover took %dms, over the %dms heartbeat interval", fo.TakeoverMS, partHeartbeat.Milliseconds())
	}
	if !fo.IdempotentIdentical {
		return fmt.Errorf("idempotent retry across failover was not an identical replay")
	}
	if fo.ThroughputRatio < partThroughputFloor {
		return fmt.Errorf("fault-window throughput %.2f of healthy, below the %.2f floor",
			fo.ThroughputRatio, partThroughputFloor)
	}

	gr, err := runGrayDrill(workers)
	if err != nil {
		return fmt.Errorf("gray drill: %w", err)
	}
	rep.Gray = *gr
	if gr.GrayDemotions == 0 {
		return fmt.Errorf("gray drill: slow worker never lost rendezvous rank")
	}
	if gr.Quarantines != 0 {
		return fmt.Errorf("gray drill: breaker tripped %d times on a slow-but-2xx worker", gr.Quarantines)
	}
	if !gr.SlowWorkerGray {
		return fmt.Errorf("gray drill: slow worker not marked gray in membership")
	}
	if gr.P99Ratio > partGrayP99Limit {
		return fmt.Errorf("gray drill: steady-state P99 %.1fms is %.2fx healthy %.1fms (limit %.1fx)",
			gr.GrayP99MS, gr.P99Ratio, gr.BaselineP99MS, partGrayP99Limit)
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gcbench: partition drill ok: takeover %dms, 0/%d lost, throughput %.2fx, gray P99 %.2fx -> %s\n",
		fo.TakeoverMS, fo.Jobs, fo.ThroughputRatio, gr.P99Ratio, jsonPath)
	return nil
}

// partLoad runs jobs against front until the window closes. Each job is
// idempotency-keyed and retried (with a short backoff) until it succeeds
// or the grace deadline passes — the client-side contract during a
// failover. Returns completed, retried (jobs needing >1 attempt), lost.
func partLoad(client *http.Client, front string, window, grace time.Duration, conc int, seq *atomic.Int64) (completed, retried, lost int) {
	var (
		wg    sync.WaitGroup
		cDone atomic.Int64
		cRet  atomic.Int64
		cLost atomic.Int64
	)
	stop := time.Now().Add(window)
	deadline := stop.Add(grace)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(stop) {
				i := seq.Add(1)
				cr := &serve.ColorRequest{
					Gen:     fmt.Sprintf("rmat:9:8:%d", 1+i%16),
					Alg:     "hybrid",
					Seed:    uint32(i),
					NoCache: true,
				}
				attempts := 0
				for {
					attempts++
					_, err := postColorIdem(client, front, cr, fmt.Sprintf("drill-%d", i))
					if err == nil {
						cDone.Add(1)
						if attempts > 1 {
							cRet.Add(1)
						}
						break
					}
					if time.Now().After(deadline) {
						cLost.Add(1)
						break
					}
					time.Sleep(time.Duration(20+i%30) * time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	return int(cDone.Load()), int(cRet.Load()), int(cLost.Load())
}

// postColorIdem is postColor with an Idempotency-Key, so cross-failover
// retries of the same job are replays rather than recomputes.
func postColorIdem(client *http.Client, coordURL string, cr *serve.ColorRequest, idemKey string) (*serve.ColorResponse, error) {
	body, err := json.Marshal(cr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, coordURL+"/color", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, fmt.Errorf("http %d (%s): %s", resp.StatusCode, er.Kind, er.Error)
	}
	var out serve.ColorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func runFailoverDrill(workers int) (*partFailoverOut, error) {
	per := runtime.GOMAXPROCS(0) / workers
	if per < 1 {
		per = 1
	}
	procs := make([]*clusterWorkerProc, workers)
	peerAddrs := make([]string, workers)
	var err error
	for i := range procs {
		if procs[i], err = startClusterWorker(per); err != nil {
			return nil, err
		}
		peerAddrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()

	// Worker 0 is reached through a chaos TCP proxy: the fleet knows it by
	// the proxy address, and partitioning the proxy's target severs it.
	in := netchaos.New(9)
	victimHost := strings.TrimPrefix(procs[0].addr, "http://")
	proxy, err := netchaos.NewProxy("127.0.0.1:0", victimHost, in)
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	peerAddrs[0] = "http://" + proxy.Addr()

	dir, err := os.MkdirTemp("", "gcbench-partition-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Primary: epoch lease + journal, serving on the fleet's front door.
	lease, err := cluster.AcquireLease(dir, "primary")
	if err != nil {
		return nil, err
	}
	jnl, _, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		return nil, err
	}
	primary := cluster.NewCoordinator(cluster.Config{
		Peers:             peerAddrs,
		HeartbeatInterval: 100 * time.Millisecond,
		Epoch:             lease.Epoch,
		Journal:           jnl,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	frontAddr := ln.Addr().String()
	frontURL := "http://" + frontAddr
	primaryHS := &http.Server{Handler: cluster.Handler(primary)}
	go func() { _ = primaryHS.Serve(ln) }()

	client := &http.Client{Timeout: 30 * time.Second}
	out := &partFailoverOut{PartitionedWorker: peerAddrs[0]}

	// Healthy window: baseline throughput through the live primary.
	var seq atomic.Int64
	healthyWindow := 3 * time.Second
	done, _, lost := partLoad(client, frontURL, healthyWindow, 2*time.Second, 4, &seq)
	if lost != 0 {
		return nil, fmt.Errorf("healthy window lost %d jobs", lost)
	}
	out.HealthyWindowSec = healthyWindow.Seconds()
	out.HealthyJobsPerSec = float64(done) / healthyWindow.Seconds()
	out.Jobs = done

	// Pin one idempotent job pre-failover, and journal one accept with no
	// completion — the signature a crash mid-dispatch leaves behind.
	pin := &serve.ColorRequest{Gen: "grid:12:12", Alg: "baseline", IncludeColors: true}
	res1, err := postColorIdem(client, frontURL, pin, "idem-pin")
	if err != nil {
		return nil, fmt.Errorf("pin job: %w", err)
	}
	wire, _ := json.Marshal(&serve.ColorRequest{Gen: "grid:9:9", Alg: "baseline"})
	if err := jnl.AppendAccept(journal.AcceptRecord{
		ID: "job-lost", IdemKey: "idem-lost",
		AcceptedUnixMS: time.Now().UnixMilli(),
		Wire:           json.RawMessage(wire),
	}); err != nil {
		return nil, err
	}

	// Warm standby: tails the journal directory, probes the front door,
	// takes over the same address when the primary goes silent.
	sbCtx, sbCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer sbCancel()
	sb := cluster.NewStandby(cluster.StandbyConfig{
		JournalDir:        dir,
		PrimaryURL:        frontURL,
		TakeoverAddr:      frontAddr,
		HeartbeatInterval: partHeartbeat,
		MissThreshold:     2,
		Owner:             "standby",
		Journal:           journal.Options{Fsync: journal.FsyncAlways},
		Cluster: cluster.Config{
			Peers:             peerAddrs,
			HeartbeatInterval: 100 * time.Millisecond,
		},
	})
	tkCh := make(chan *cluster.Takeover, 1)
	sbErr := make(chan error, 1)
	go func() {
		tk, err := sb.Run(sbCtx)
		if err != nil {
			sbErr <- err
			return
		}
		go func() { _ = (&http.Server{Handler: cluster.Handler(tk.Coordinator)}).Serve(tk.Listener) }()
		tkCh <- tk
	}()

	// Fault window: partition the proxied worker at +1s, hard-kill the
	// primary at +2s. Load keeps flowing with retries the whole time.
	faultWindow := 8 * time.Second
	go func() {
		time.Sleep(1 * time.Second)
		fmt.Fprintln(os.Stderr, "gcbench: partitioning proxied worker")
		in.Partition(victimHost)
		time.Sleep(1 * time.Second)
		fmt.Fprintln(os.Stderr, "gcbench: hard-killing primary coordinator")
		_ = primaryHS.Close() // listener + live connections die; no drain, no journal close
		primary.Close()       // background probes stop, as a dead process's would
	}()
	fDone, fRetried, fLost := partLoad(client, frontURL, faultWindow, 10*time.Second, 4, &seq)
	out.Jobs += fDone
	out.Retried = fRetried
	out.Lost = fLost
	out.FaultWindowSec = faultWindow.Seconds()
	out.FaultJobsPerSec = float64(fDone) / faultWindow.Seconds()
	if out.HealthyJobsPerSec > 0 {
		out.ThroughputRatio = out.FaultJobsPerSec / out.HealthyJobsPerSec
	}

	var tk *cluster.Takeover
	select {
	case tk = <-tkCh:
	case err := <-sbErr:
		return nil, fmt.Errorf("standby: %w", err)
	case <-time.After(30 * time.Second):
		return nil, fmt.Errorf("standby never took over")
	}
	defer tk.Journal.Close()
	defer tk.Coordinator.Close()
	out.TakeoverEpoch = tk.Epoch
	out.PendingReplayed = tk.Pending

	// The journaled-but-unfinished accept must replay cleanly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := tk.Coordinator.Stats()
		if st.RecoveryDone {
			out.TakeoverMS = st.TakeoverMS
			out.RecoveryFailed = st.RecoveryFailed
			out.ReplayFailed = st.RecoveryFailed
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("takeover recovery never finished: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The idempotent retry of the pinned job must be a replay of the exact
	// pre-failover answer.
	res2, err := postColorIdem(client, frontURL, pin, "idem-pin")
	if err != nil {
		return nil, fmt.Errorf("pin replay: %w", err)
	}
	out.IdempotentIdentical = res2.IdempotentReplay &&
		res2.NumColors == res1.NumColors && len(res2.Colors) == len(res1.Colors)
	if out.IdempotentIdentical {
		for i := range res2.Colors {
			if res2.Colors[i] != res1.Colors[i] {
				out.IdempotentIdentical = false
				break
			}
		}
	}
	out.ChaosRequests = in.Stats().Requests
	return out, nil
}

// runGrayDrill measures the latency cost of one slow-but-2xx worker: the
// coordinator must demote it out of the rendezvous rank (no breaker trip)
// so steady-state tail latency recovers to the healthy baseline.
func runGrayDrill(workers int) (*partGrayOut, error) {
	per := runtime.GOMAXPROCS(0) / workers
	if per < 1 {
		per = 1
	}
	procs := make([]*clusterWorkerProc, workers)
	addrs := make([]string, workers)
	var err error
	for i := range procs {
		if procs[i], err = startClusterWorker(per); err != nil {
			return nil, err
		}
		addrs[i] = procs[i].addr
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()

	mix := func(client *http.Client, coordURL string, n, offset int) ([]float64, error) {
		lats := make([]float64, 0, n)
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, 4)
		errCh := make(chan error, 1)
		for i := 0; i < n; i++ {
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				cr := &serve.ColorRequest{
					Gen:     fmt.Sprintf("rmat:9:8:%d", 1+(offset+i)%16),
					Alg:     "hybrid",
					Seed:    uint32(offset + i),
					NoCache: true,
				}
				t0 := time.Now()
				if _, err := postColor(client, coordURL, cr); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				mu.Lock()
				lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return nil, err
		default:
		}
		return lats, nil
	}
	p := func(lats []float64, q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		s := append([]float64(nil), lats...)
		sort.Float64s(s)
		i := int(q * float64(len(s)-1))
		return s[i]
	}

	const measured = 150
	out := &partGrayOut{WarmupJobs: 60, MeasuredJobs: measured}

	// Healthy baseline: the same fleet, no chaos.
	base := cluster.NewCoordinator(cluster.Config{
		Peers:             addrs,
		HeartbeatInterval: 100 * time.Millisecond,
	})
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		base.Close()
		return nil, err
	}
	hsB := &http.Server{Handler: cluster.Handler(base)}
	go func() { _ = hsB.Serve(lnB) }()
	plain := &http.Client{Timeout: 30 * time.Second}
	baseLats, err := mix(plain, "http://"+lnB.Addr().String(), measured, 0)
	hsB.Close()
	base.Close()
	if err != nil {
		return nil, fmt.Errorf("baseline mix: %w", err)
	}
	out.BaselineP99MS = p(baseLats, 0.99)

	// Gray fleet: worker 0 answers ~10x slower through the coordinator's
	// client (netchaos per-link latency), everything else untouched.
	slowDelay := time.Duration(10*p(baseLats, 0.50)) * time.Millisecond
	if slowDelay < 25*time.Millisecond {
		slowDelay = 25 * time.Millisecond
	}
	out.SlowDelayMS = float64(slowDelay.Milliseconds())
	in := netchaos.New(11)
	in.SlowHost(strings.TrimPrefix(addrs[0], "http://"), slowDelay)
	chaosClient := &http.Client{Transport: in.Transport(http.DefaultTransport), Timeout: 30 * time.Second}

	gray := cluster.NewCoordinator(cluster.Config{
		Peers:             addrs,
		HeartbeatInterval: 100 * time.Millisecond,
		Client:            chaosClient,
	})
	defer gray.Close()
	lnG, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsG := &http.Server{Handler: cluster.Handler(gray)}
	go func() { _ = hsG.Serve(lnG) }()
	defer hsG.Close()
	grayURL := "http://" + lnG.Addr().String()

	// Warmup: enough traffic for the latency EWMA to demote the slow
	// worker. The steady-state window after it is what users feel.
	if _, err := mix(plain, grayURL, out.WarmupJobs, 1000); err != nil {
		return nil, fmt.Errorf("gray warmup: %w", err)
	}
	grayLats, err := mix(plain, grayURL, measured, 2000)
	if err != nil {
		return nil, fmt.Errorf("gray mix: %w", err)
	}
	out.GrayP99MS = p(grayLats, 0.99)
	if out.BaselineP99MS > 0 {
		out.P99Ratio = out.GrayP99MS / out.BaselineP99MS
	}

	st := gray.Stats()
	out.GrayDemotions = st.GrayDemotions
	out.Quarantines = st.Quarantines
	for _, m := range st.Members {
		if m.Addr == addrs[0] && m.Gray {
			out.SlowWorkerGray = true
		}
	}
	fmt.Fprintf(os.Stderr, "gcbench: gray drill: slow +%v, baseline P99 %.1fms, steady-state P99 %.1fms (%.2fx), %d demotions, %d quarantines\n",
		slowDelay, out.BaselineP99MS, out.GrayP99MS, out.P99Ratio, st.GrayDemotions, st.Quarantines)
	return out, nil
}
