// Sharded-coloring benchmark (-shard): for every seed dataset it times the
// hybrid algorithm on one device holding the whole host's simulation
// parallelism against K devices splitting that parallelism evenly, and
// writes the wall-clock speedups and color-quality ratios as JSON
// (BENCH_PR5.json by default). The run fails if any dataset's sharded
// coloring spends more than 1.3x the single-device palette — the quality
// bound the shard tests also enforce.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gcolor/internal/exp"
	"gcolor/internal/gpucolor"
	"gcolor/internal/shard"
	"gcolor/internal/simt"
)

const shardColorRatioLimit = 1.3

type shardRow struct {
	Dataset       string  `json:"dataset"`
	Kind          string  `json:"kind"`
	Vertices      int     `json:"vertices"`
	Edges         int     `json:"edges"`
	SingleSeconds float64 `json:"single_seconds"`
	ShardSeconds  float64 `json:"shard_seconds"`
	Speedup       float64 `json:"speedup"`
	SingleColors  int     `json:"single_colors"`
	ShardColors   int     `json:"shard_colors"`
	ColorRatio    float64 `json:"color_ratio"`
	CutEdges      int     `json:"cut_edges"`
	Conflicts     int     `json:"boundary_conflicts"`
	RepairRounds  int     `json:"repair_rounds"`
	Recolored     int     `json:"recolored"`
	Fallback      bool    `json:"fallback"`
}

type shardReport struct {
	Bench           string     `json:"bench"`
	Shards          int        `json:"shards"`
	Scale           string     `json:"scale"`
	HostParallelism int        `json:"host_parallelism"`
	ColorRatioLimit float64    `json:"color_ratio_limit"`
	Rows            []shardRow `json:"rows"`
	LargestDataset  string     `json:"largest_dataset"`
	LargestSpeedup  float64    `json:"largest_speedup"`
}

// shardDevices builds k devices splitting the host's simulation
// parallelism evenly, so single-device and sharded runs consume the same
// total host resources and the wall-clock comparison is fair.
func shardDevices(k int) []*simt.Device {
	per := runtime.GOMAXPROCS(0) / k
	if per < 1 {
		per = 1
	}
	devs := make([]*simt.Device, k)
	for i := range devs {
		d := simt.NewDevice()
		d.Workers = per
		devs[i] = d
	}
	return devs
}

func runShardBench(jsonPath string, k int, scale exp.Scale) error {
	if k < 2 {
		return fmt.Errorf("-shard needs at least 2 shards, got %d", k)
	}
	scaleName := "full"
	if scale == exp.Small {
		scaleName = "small"
	}
	rep := shardReport{
		Bench:           "sharded-coloring",
		Shards:          k,
		Scale:           scaleName,
		HostParallelism: runtime.GOMAXPROCS(0),
		ColorRatioLimit: shardColorRatioLimit,
	}
	ctx := context.Background()
	largestEdges := -1
	for _, d := range exp.Datasets() {
		g := d.Build(scale)
		row := shardRow{
			Dataset:  d.Name,
			Kind:     d.Kind,
			Vertices: g.NumVertices(),
			Edges:    g.NumEdges(),
		}

		single := simt.NewDevice() // Workers 0: the whole host
		t0 := time.Now()
		out, err := gpucolor.ColorContext(ctx, single, g, gpucolor.AlgHybrid,
			gpucolor.ResilientOptions{Options: gpucolor.Options{Seed: 1}})
		if err != nil {
			return fmt.Errorf("%s single-device: %w", d.Name, err)
		}
		row.SingleSeconds = time.Since(t0).Seconds()
		row.SingleColors = out.NumColors

		t0 = time.Now()
		sres, err := shard.ColorDevices(ctx, shardDevices(k), g, gpucolor.AlgHybrid,
			shard.Options{K: k, Seed: 1},
			gpucolor.ResilientOptions{Options: gpucolor.Options{Seed: 1}})
		if err != nil {
			return fmt.Errorf("%s sharded x%d: %w", d.Name, k, err)
		}
		row.ShardSeconds = time.Since(t0).Seconds()
		row.ShardColors = sres.NumColors
		row.CutEdges = sres.CutEdges
		row.Conflicts = sres.Repair.Conflicts
		row.RepairRounds = sres.Repair.Rounds
		row.Recolored = sres.Repair.Recolored
		row.Fallback = sres.Repair.Fallback
		if row.Fallback {
			return fmt.Errorf("%s: boundary repair fell back to CPU greedy (budget %d rounds exhausted)",
				d.Name, shard.DefaultRepairRounds)
		}
		if row.ShardSeconds > 0 {
			row.Speedup = row.SingleSeconds / row.ShardSeconds
		}
		if row.SingleColors > 0 {
			row.ColorRatio = float64(row.ShardColors) / float64(row.SingleColors)
		}
		if row.ColorRatio > shardColorRatioLimit {
			return fmt.Errorf("%s: sharded coloring used %d colors vs %d single-device (ratio %.2f > %.2f)",
				d.Name, row.ShardColors, row.SingleColors, row.ColorRatio, shardColorRatioLimit)
		}
		if g.NumEdges() > largestEdges {
			largestEdges = g.NumEdges()
			rep.LargestDataset = d.Name
			rep.LargestSpeedup = row.Speedup
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(os.Stderr, "gcbench: %-10s %8d v %9d e  single %6.2fs  x%d %6.2fs  speedup %.2fx  colors %d/%d\n",
			d.Name, row.Vertices, row.Edges, row.SingleSeconds, k, row.ShardSeconds, row.Speedup,
			row.ShardColors, row.SingleColors)
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gcbench: sharded x%d speedup %.2fx on %s -> %s\n",
		k, rep.LargestSpeedup, rep.LargestDataset, jsonPath)
	return nil
}
