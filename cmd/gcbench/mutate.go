// Mutation benchmark (-mutate): drives a delta stream through the serve
// layer's incremental coloring engine and measures it against from-scratch
// recoloring of every successor graph. Each step mutates at most ~1% of
// the edges, the shape where incremental recoloring should win big; the
// bench verifies every returned coloring against the true successor graph
// (zero conflicts is a hard gate), checks the median small-delta latency
// advantage against a floor, and holds the incremental path to the
// BENCH_BUDGET.json per-request allocation budget. Results land in
// BENCH_PR10.json.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/graph"
	"gcolor/internal/serve"
)

const mutateBaseSpec = "rmat:12:16:1"

type mutateReport struct {
	Bench    string `json:"bench"`
	BaseSpec string `json:"base_spec"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Steps    int    `json:"steps"`

	MeanDeltaEdges   float64        `json:"mean_delta_edges"`
	MaxDeltaFraction float64        `json:"max_delta_fraction"`
	DeltaHits        int64          `json:"delta_hits"`
	DeltaFallbacks   int64          `json:"delta_fallbacks"`
	MeanFrontier     float64        `json:"mean_frontier"`
	Conflicts        int            `json:"conflicts"`
	MaxColorsRatio   float64        `json:"max_colors_ratio"`
	DeltaLatency     latencySummary `json:"delta_latency"`
	FullLatency      latencySummary `json:"full_latency"`
	MedianSpeedup    float64        `json:"median_speedup"`
	SpeedupFloor     float64        `json:"speedup_floor"`
	AllocsPerDelta   int64          `json:"allocs_per_delta"`
	BudgetAllocs     int64          `json:"budget_allocs,omitempty"`
	BudgetFile       string         `json:"budget_file,omitempty"`
	Passed           bool           `json:"passed"`
	FailReasons      []string       `json:"fail_reasons,omitempty"`
}

// mutateStep builds one small random delta over the current edge list:
// a mix of removals of existing edges and additions of fresh ones, capped
// at maxFrac of the current edge count.
func mutateStep(rng *rand.Rand, n int, edges [][2]int32, maxFrac float64) *graph.Delta {
	budget := int(maxFrac * float64(len(edges)))
	if budget < 1 {
		budget = 1
	}
	count := 1 + rng.Intn(budget)
	d := &graph.Delta{}
	for i := 0; i < count; i++ {
		if rng.Intn(3) == 0 && len(edges) > 0 {
			d.RemoveEdges = append(d.RemoveEdges, edges[rng.Intn(len(edges))])
		} else {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			d.AddEdges = append(d.AddEdges, [2]int32{int32(u), int32(v)})
		}
	}
	return d
}

// edgeList flattens g's upper-triangle adjacency back to an edge list so
// the next step can pick removal candidates.
func edgeList(g *graph.Graph, buf [][2]int32) [][2]int32 {
	buf = buf[:0]
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				buf = append(buf, [2]int32{v, u})
			}
		}
	}
	return buf
}

// runMutateBench executes the mutation benchmark and writes jsonPath.
// floor is the minimum acceptable median delta-vs-full speedup.
func runMutateBench(jsonPath, budgetPath string, steps int, floor float64) error {
	if steps <= 0 {
		steps = 40
	}
	base, err := serve.ParseGraphSpec(mutateBaseSpec)
	if err != nil {
		return err
	}

	// Two independent servers so the from-scratch comparison can never hit
	// the delta server's forward-updated cache.
	incr := serve.NewServer(serve.Config{Devices: 2})
	defer incr.Stop()
	full := serve.NewServer(serve.Config{Devices: 2})
	defer full.Stop()

	ctx := context.Background()
	res, err := incr.Submit(ctx, &serve.Request{Graph: base, Resident: true})
	if err != nil {
		return fmt.Errorf("resident upload: %w", err)
	}
	fp := res.Fingerprint

	rep := mutateReport{
		Bench:        "gcolord-mutate",
		BaseSpec:     mutateBaseSpec,
		Vertices:     base.NumVertices(),
		Edges:        base.NumEdges(),
		Steps:        steps,
		SpeedupFloor: floor,
		Passed:       true,
	}

	rng := rand.New(rand.NewSource(42))
	g := base
	edges := edgeList(g, nil)
	var (
		deltaUS, fullUS []int64
		totalDeltaEdges int
		totalFrontier   int
	)
	for step := 0; step < steps; step++ {
		d := mutateStep(rng, g.NumVertices(), edges, 0.01)
		ng, wantFp, _, err := graph.ApplyDelta(g, d)
		if err != nil {
			return fmt.Errorf("step %d: apply: %w", step, err)
		}
		nd := len(d.AddEdges) + len(d.RemoveEdges)
		totalDeltaEdges += nd
		if frac := float64(nd) / float64(g.NumEdges()); frac > rep.MaxDeltaFraction {
			rep.MaxDeltaFraction = frac
		}

		t0 := time.Now()
		dres, err := incr.Submit(ctx, &serve.Request{Delta: d, BaseFingerprint: fp})
		if err != nil {
			return fmt.Errorf("step %d: delta submit: %w", step, err)
		}
		deltaUS = append(deltaUS, time.Since(t0).Microseconds())
		if dres.Fingerprint != wantFp {
			return fmt.Errorf("step %d: fingerprint diverged from reference ApplyDelta", step)
		}
		totalFrontier += dres.FrontierSize
		if verr := color.Verify(ng, dres.Colors); verr != nil {
			rep.Conflicts++
		}

		// From-scratch recolor of the identical successor on the isolated
		// server; NoCache so every step really recolors.
		t1 := time.Now()
		fres, err := full.Submit(ctx, &serve.Request{Graph: ng, NoCache: true})
		if err != nil {
			return fmt.Errorf("step %d: full recolor: %w", step, err)
		}
		fullUS = append(fullUS, time.Since(t1).Microseconds())
		if fres.NumColors > 0 {
			if r := float64(dres.NumColors) / float64(fres.NumColors); r > rep.MaxColorsRatio {
				rep.MaxColorsRatio = r
			}
		}

		g, fp = ng, dres.Fingerprint
		edges = edgeList(g, edges)
	}

	st := incr.Stats()
	rep.DeltaHits = st.DeltaHits
	rep.DeltaFallbacks = st.DeltaFallbacks
	rep.MeanDeltaEdges = float64(totalDeltaEdges) / float64(steps)
	rep.MeanFrontier = float64(totalFrontier) / float64(steps)
	rep.DeltaLatency = summarizeLatency(append([]int64(nil), deltaUS...))
	rep.FullLatency = summarizeLatency(append([]int64(nil), fullUS...))
	if rep.DeltaLatency.P50us > 0 {
		rep.MedianSpeedup = float64(rep.FullLatency.P50us) / float64(rep.DeltaLatency.P50us)
	}

	// Allocation discipline: steady-state incremental deltas measured
	// serially, against the serving-path budget.
	rep.AllocsPerDelta, err = measureDeltaAllocs(g, fp, incr)
	if err != nil {
		return err
	}
	if budgetPath != "" {
		raw, err := os.ReadFile(budgetPath)
		if err != nil {
			return fmt.Errorf("budget: %w", err)
		}
		var budget allocBudget
		if err := json.Unmarshal(raw, &budget); err != nil {
			return fmt.Errorf("budget %s: %w", budgetPath, err)
		}
		rep.BudgetFile = budgetPath
		rep.BudgetAllocs = budget.MaxAllocsPerRequest
		if budget.MaxAllocsPerRequest > 0 && rep.AllocsPerDelta > budget.MaxAllocsPerRequest {
			rep.Passed = false
			rep.FailReasons = append(rep.FailReasons,
				fmt.Sprintf("allocs per delta %d exceeds budget %d", rep.AllocsPerDelta, budget.MaxAllocsPerRequest))
		}
	}

	if rep.Conflicts > 0 {
		rep.Passed = false
		rep.FailReasons = append(rep.FailReasons, fmt.Sprintf("%d conflicting colorings", rep.Conflicts))
	}
	if rep.MedianSpeedup < floor {
		rep.Passed = false
		rep.FailReasons = append(rep.FailReasons,
			fmt.Sprintf("median speedup %.2fx below the %.1fx floor", rep.MedianSpeedup, floor))
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"gcbench: mutate %d steps on %s: delta p50 %dus vs full %dus (%.1fx, floor %.1fx), %d hits / %d fallbacks, %d conflicts, %d allocs/delta -> %s\n",
		steps, mutateBaseSpec, rep.DeltaLatency.P50us, rep.FullLatency.P50us,
		rep.MedianSpeedup, floor, rep.DeltaHits, rep.DeltaFallbacks, rep.Conflicts, rep.AllocsPerDelta, jsonPath)
	if !rep.Passed {
		return fmt.Errorf("mutate bench failed: %v", rep.FailReasons)
	}
	return nil
}

// measureDeltaAllocs runs a short serial stream of single-edge deltas
// (the steady-state shape) and returns mean heap allocations per request.
func measureDeltaAllocs(g *graph.Graph, fp uint64, s *serve.Server) (int64, error) {
	const runs = 16
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	n := g.NumVertices()
	// Warm once so pools and LRU structures are populated.
	var before, after runtime.MemStats
	var mallocs uint64
	done := 0
	for done < runs {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		d := &graph.Delta{AddEdges: [][2]int32{{int32(u), int32(v)}}}
		runtime.ReadMemStats(&before)
		res, err := s.Submit(ctx, &serve.Request{Delta: d, BaseFingerprint: fp})
		runtime.ReadMemStats(&after)
		if err != nil {
			return 0, fmt.Errorf("alloc probe: %w", err)
		}
		mallocs += after.Mallocs - before.Mallocs
		fp = res.Fingerprint
		done++
	}
	return int64(mallocs / runs), nil
}
