// Command gcbench regenerates the paper's tables and figures (see DESIGN.md
// for the experiment index and EXPERIMENTS.md for recorded output).
//
// Usage:
//
//	gcbench                 # run everything at full scale
//	gcbench -exp F7         # just the headline comparison
//	gcbench -scale small    # quick pass with small datasets
//	gcbench -serving        # serving-layer benchmark -> BENCH_PR2.json
//	gcbench -hostperf       # hot-path host benchmark -> BENCH_PR3.json
//	gcbench -shard          # sharded multi-device benchmark -> BENCH_PR5.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gcolor/internal/exp"
)

func main() {
	var (
		id     = flag.String("exp", "all", `experiment id: all, T1, F1..F9, A1..A6, X1`)
		scale  = flag.String("scale", "full", "dataset scale: full or small")
		format = flag.String("format", "text", "output format: text or csv")

		serving  = flag.Bool("serving", false, "run the serving-layer benchmark instead of the paper experiments")
		servOut  = flag.String("json", "BENCH_PR2.json", "output file for -serving")
		servN    = flag.Int("serving-requests", 60, "request count for -serving")
		servDevs = flag.Int("serving-devices", 4, "pooled devices for -serving")
		servConc = flag.Int("serving-conc", 8, "client concurrency for -serving")

		hostperf  = flag.Bool("hostperf", false, "run the hot-path host benchmark (arena/pooling/fusion) instead of the paper experiments")
		hostOut   = flag.String("hostperf-json", "BENCH_PR3.json", "output file for -hostperf")
		hostN     = flag.Int("hostperf-requests", 20, "steady-state request count per section for -hostperf")
		budgetArg = flag.String("budget", "", "allocation budget file (BENCH_BUDGET.json); -hostperf fails if the pooled path exceeds it, -batch if binary ingest exceeds its alloc ratio")

		shardBench = flag.Bool("shard", false, "run the sharded multi-device benchmark (single device vs -shard-k shards) instead of the paper experiments")
		shardOut   = flag.String("shard-json", "BENCH_PR5.json", "output file for -shard")
		shardK     = flag.Int("shard-k", 4, "shard/device count for -shard")

		clusterBench = flag.Bool("cluster", false, "run the distributed-fleet drill (coordinator + workers, mid-run worker kill) instead of the paper experiments")
		clusterOut   = flag.String("cluster-json", "BENCH_PR7.json", "output file for -cluster")
		clusterW     = flag.Int("cluster-workers", 3, "worker daemons for -cluster")
		clusterJobs  = flag.Int("cluster-jobs", 3, "timed jobs per phase for -cluster")

		batchBench = flag.Bool("batch", false, "run the batched-dispatch benchmark (block-diagonal batching + binary CSR ingest) instead of the paper experiments")
		batchOut   = flag.String("batch-json", "BENCH_PR8.json", "output file for -batch")
		batchFloor = flag.Float64("batch-floor", 1.5, "minimum default-mix throughput gain vs the PR 3 baseline for -batch")

		partBench = flag.Bool("partition", false, "run the partition-tolerance drill (standby failover under network chaos + gray-failure demotion) instead of the paper experiments")
		partOut   = flag.String("partition-json", "BENCH_PR9.json", "output file for -partition")
		partW     = flag.Int("partition-workers", 3, "worker daemons for -partition")

		mutateBench = flag.Bool("mutate", false, "run the incremental-coloring benchmark (delta stream vs from-scratch recoloring, verified conflict-free) instead of the paper experiments")
		mutateOut   = flag.String("mutate-json", "BENCH_PR10.json", "output file for -mutate")
		mutateSteps = flag.Int("mutate-steps", 40, "mutation steps for -mutate (each <= ~1% of edges)")
		mutateFloor = flag.Float64("mutate-floor", 3.0, "minimum median delta-vs-full speedup for -mutate")
	)
	flag.Parse()

	if *mutateBench {
		if err := runMutateBench(*mutateOut, *budgetArg, *mutateSteps, *mutateFloor); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *partBench {
		if err := runPartitionBench(*partOut, *partW); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *batchBench {
		if err := runBatchBench(*batchOut, *budgetArg, *batchFloor); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clusterBench {
		if err := runClusterBench(*clusterOut, *clusterW, *clusterJobs); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shardBench {
		sc := exp.Full
		if *scale == "small" {
			sc = exp.Small
		}
		if err := runShardBench(*shardOut, *shardK, sc); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serving {
		if err := runServingBench(*servOut, *servN, *servDevs, *servConc); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *hostperf {
		if err := runHostperfBench(*hostOut, *budgetArg, *hostN); err != nil {
			fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := exp.Config{Scale: exp.Full}
	switch *scale {
	case "full":
	case "small":
		cfg.Scale = exp.Small
	default:
		fmt.Fprintf(os.Stderr, "gcbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	emit := func(t *exp.Table) error { return t.Fprint(os.Stdout) }
	switch *format {
	case "text":
	case "csv":
		emit = func(t *exp.Table) error { return t.WriteCSV(os.Stdout) }
	default:
		fmt.Fprintf(os.Stderr, "gcbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	start := time.Now()
	var err error
	ids := []string{*id}
	if *id == "all" {
		ids = ids[:0]
		for _, e := range exp.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, one := range ids {
		if err != nil {
			break
		}
		var tables []*exp.Table
		tables, err = exp.Run(one, cfg)
		for _, t := range tables {
			if err == nil {
				err = emit(t)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gcbench: done in %v\n", time.Since(start))
}
