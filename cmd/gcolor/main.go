// Command gcolor colors a graph on the simulated GPU and reports the
// coloring quality and the simulated performance evidence.
//
// Usage:
//
//	gcolor -in graph.el -alg hybrid -policy stealing -wg 64
//	graphgen -type rmat | gcolor -alg baseline -v
//	graphgen -type rmat | gcolor -alg hybrid -chaos -fault-rate 1e-3
//	graphgen -type rmat | gcolor -alg hybrid -shards 4
//
// Input formats are detected by extension: .col/.dimacs (DIMACS),
// .mtx (MatrixMarket), anything else (edge list).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/metrics"
	"gcolor/internal/shard"
	"gcolor/internal/simt"
	"gcolor/internal/trace"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph file (default stdin, edge-list format)")
		algName   = flag.String("alg", "baseline", "algorithm: baseline, maxmin, jp, speculative, hybrid, hybrid-maxmin, hybrid-jp")
		policy    = flag.String("policy", "static", "workgroup scheduling: static, roundrobin, stealing")
		cus       = flag.Int("cus", 28, "compute units")
		wg        = flag.Int("wg", 256, "workgroup size (multiple of wavefront width)")
		wavefront = flag.Int("wavefront", 64, "wavefront width")
		seed      = flag.Uint("seed", 1, "vertex priority seed")
		threshold = flag.Int("threshold", 0, "hybrid degree threshold (0 = wavefront width)")
		shards    = flag.Int("shards", 1, "color on K devices: K edge-balanced shards in parallel, reconciled by boundary repair (1 = single device)")
		verbose   = flag.Bool("v", false, "print per-kernel and imbalance detail")
		cpu       = flag.Bool("cpu", false, "also report CPU reference colorings")
		traceOut  = flag.String("trace", "", "write a chrome://tracing timeline of the run to this file")

		chaos      = flag.Bool("chaos", false, "arm the fault injector (implies -resilient)")
		faultRate  = flag.Float64("fault-rate", 1e-4, "per-event fault probability for -chaos")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault injector seed for -chaos")
		resilient  = flag.Bool("resilient", false, "run through the resilient driver (repair/retry/CPU-fallback ladder)")
		budget     = flag.Int64("budget", 0, "simulated-cycle budget per attempt for -resilient (0 = unlimited)")
		timeout    = flag.Duration("timeout", 0, "wall-clock deadline for -resilient (0 = none)")
		noFallback = flag.Bool("no-fallback", false, "disable the CPU-greedy fallback rung; exhausted GPU attempts exit with a typed failure code (3=watchdog, 4=budget, 5=max-iterations, 6=canceled)")
	)
	flag.Parse()

	g, err := readGraph(*in)
	if err != nil {
		fatal(err)
	}
	alg, err := gpucolor.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	dev := simt.NewDevice()
	dev.NumCUs = *cus
	dev.WorkgroupSize = *wg
	dev.WavefrontWidth = *wavefront
	switch *policy {
	case "static":
		dev.Policy = simt.Static
	case "roundrobin":
		dev.Policy = simt.RoundRobin
	case "stealing":
		dev.Policy = simt.Stealing
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	st := g.Stats()
	fmt.Printf("graph: n=%d m=%d degrees min/avg/max=%d/%.1f/%d cv=%.2f\n",
		g.NumVertices(), g.NumEdges(), st.Min, st.Mean, st.Max, st.CV)

	opt := gpucolor.Options{
		Seed:            uint32(*seed),
		HybridThreshold: *threshold,
		Trace:           *traceOut != "",
	}
	if *shards > 1 {
		runSharded(g, alg, opt, dev, *shards, *chaos, *faultRate, *faultSeed,
			*budget, *timeout, *noFallback, *traceOut, *cpu, uint32(*seed))
		return
	}
	var res *gpucolor.Result
	if *chaos || *resilient {
		if *chaos {
			dev.Fault = simt.NewFaultInjector(*faultSeed, *faultRate)
			fmt.Printf("chaos: fault injector armed, rate %g, seed %d\n", *faultRate, *faultSeed)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		out, err := gpucolor.ColorContext(ctx, dev, g, alg, gpucolor.ResilientOptions{
			Options:       opt,
			CycleBudget:   *budget,
			NoCPUFallback: *noFallback,
		})
		if err != nil {
			fatalTyped(err)
		}
		fmt.Printf("resilient: recovery=%s attempts=%d", out.Recovery, out.Attempts)
		if out.Repaired > 0 {
			fmt.Printf(" repaired=%d", out.Repaired)
		}
		if inj := out.Faults.Injected(); inj > 0 {
			fmt.Printf(" faults=%d (flips %d, cas %d, aborts %d, stalls %d)",
				inj, out.Faults.BitFlips, out.Faults.CASFails,
				out.Faults.WavefrontAborts, out.Faults.Stalls)
		}
		fmt.Println()
		res = out.Result
	} else {
		var err error
		res, err = gpucolor.Color(dev, g, alg, opt)
		if err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChromeTrace(f, res.Timeline); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d launches written to %s\n", len(res.Timeline), *traceOut)
	}
	fmt.Printf("%s (%s, %d CUs, wg %d): %d colors in %d iterations, %d simulated cycles, SIMD util %.3f\n",
		alg, dev.Policy, dev.NumCUs, dev.WorkgroupSize,
		res.NumColors, res.Iterations, res.Cycles, res.SIMDUtilization())
	if res.Steals > 0 {
		fmt.Printf("work stealing: %d steals\n", res.Steals)
	}

	if *verbose {
		fmt.Println("per-kernel cycles:")
		names := make([]string, 0, len(res.KernelCycles))
		for name := range res.KernelCycles {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-18s %14d\n", name, res.KernelCycles[name])
		}
		wf := metrics.SummarizeInt64(res.WavefrontWork)
		fmt.Printf("wavefront work: %v\n", wf)
		cu := metrics.SummarizeInt64(res.CUBusy)
		fmt.Printf("per-CU busy:    %v\n", cu)
	}

	if *cpu {
		ff := color.Greedy(g, color.Natural, 0)
		sl := color.Greedy(g, color.SmallestLast, 0)
		jp := color.JonesPlassmann(g, uint32(*seed), 0)
		fmt.Printf("cpu references: first-fit %d colors, smallest-last %d colors, jones-plassmann %d colors in %d rounds\n",
			color.NumColors(ff), color.NumColors(sl), color.NumColors(jp.Colors), jp.Rounds)
	}
}

// runSharded colors g across K fresh devices cloned from proto's geometry,
// each holding an equal slice of the host's simulation parallelism, and
// reports the parallel makespan alongside the repair evidence. -trace is a
// single-timeline feature and is rejected here.
func runSharded(g *graph.Graph, alg gpucolor.Algorithm, opt gpucolor.Options, proto *simt.Device,
	k int, chaos bool, faultRate float64, faultSeed uint64,
	budget int64, timeout time.Duration, noFallback bool, traceOut string, cpu bool, seed uint32) {
	if traceOut != "" {
		fatal(errors.New("-trace is not supported with -shards (K independent timelines)"))
	}
	per := runtime.GOMAXPROCS(0) / k
	if per < 1 {
		per = 1
	}
	devs := make([]*simt.Device, k)
	for i := range devs {
		d := simt.NewDevice()
		d.NumCUs = proto.NumCUs
		d.WorkgroupSize = proto.WorkgroupSize
		d.WavefrontWidth = proto.WavefrontWidth
		d.Policy = proto.Policy
		d.Workers = per
		if chaos {
			d.Fault = simt.NewFaultInjector(faultSeed+uint64(i), faultRate)
		}
		devs[i] = d
	}
	if chaos {
		fmt.Printf("chaos: fault injectors armed on %d devices, rate %g, seed %d\n", k, faultRate, faultSeed)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := shard.ColorDevices(ctx, devs, g, alg, shard.Options{
		K:          k,
		Seed:       seed,
		NoFallback: noFallback,
	}, gpucolor.ResilientOptions{
		Options:       opt,
		CycleBudget:   budget,
		NoCPUFallback: noFallback,
	})
	if err != nil {
		fatalTyped(err)
	}
	fmt.Printf("%s sharded x%d (%s, %d CUs, wg %d): %d colors, %d simulated cycles makespan (%d total)\n",
		alg, res.K, proto.Policy, proto.NumCUs, proto.WorkgroupSize,
		res.NumColors, res.Cycles, res.CyclesTotal)
	fmt.Printf("shards: %d cut edges, %d boundary conflicts, repaired in %d rounds (%d recolored)",
		res.CutEdges, res.Repair.Conflicts, res.Repair.Rounds, res.Repair.Recolored)
	if res.Repair.Fallback {
		fmt.Print(", CPU-greedy fallback")
	}
	fmt.Println()
	if cpu {
		ff := color.Greedy(g, color.Natural, 0)
		fmt.Printf("cpu reference: first-fit %d colors\n", color.NumColors(ff))
	}
}

func readGraph(path string) (*graph.Graph, error) {
	var r io.Reader = os.Stdin
	name := "stdin"
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
		name = path
	}
	switch {
	case strings.HasSuffix(name, ".col"), strings.HasSuffix(name, ".dimacs"):
		return graph.ReadDIMACS(r)
	case strings.HasSuffix(name, ".mtx"):
		return graph.ReadMatrixMarket(r)
	default:
		return graph.ReadEdgeList(r)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gcolor: %v\n", err)
	os.Exit(1)
}

// Exit codes of the resilient path, so scripts and load drivers can
// classify failures without parsing messages. 1 stays the generic failure
// code and 2 is flag parsing (the flag package's convention).
const (
	exitWatchdog = 3 // livelock: no cross-iteration progress
	exitBudget   = 4 // simulated-cycle budget exceeded
	exitMaxIters = 5 // iteration safety cap reached
	exitCanceled = 6 // context deadline/cancellation (-timeout)
)

// fatalTyped reports a resilient-run failure with a distinct message and
// exit code per typed error. A run that exhausted several rungs joins all
// attempt errors; classification uses the first typed cause found, in
// severity order.
func fatalTyped(err error) {
	switch {
	case errors.Is(err, gpucolor.ErrWatchdog):
		fmt.Fprintf(os.Stderr, "gcolor: watchdog: livelock, no cross-iteration progress: %v\n", err)
		os.Exit(exitWatchdog)
	case errors.Is(err, gpucolor.ErrBudgetExceeded):
		fmt.Fprintf(os.Stderr, "gcolor: budget: simulated-cycle budget exceeded: %v\n", err)
		os.Exit(exitBudget)
	case errors.Is(err, gpucolor.ErrMaxIterations):
		fmt.Fprintf(os.Stderr, "gcolor: max-iterations: safety cap reached without converging: %v\n", err)
		os.Exit(exitMaxIters)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "gcolor: canceled: %v\n", err)
		os.Exit(exitCanceled)
	default:
		fatal(err)
	}
}
