// Mutation load mode (-mutate): drives a live gcolord (or coordinator)
// with a resident upload followed by a stream of small JSON delta
// requests, chaining each successor fingerprint into the next mutation —
// the serving-side counterpart of gcbench -mutate. An unknown_base reply
// (server restarted, version evicted) exercises the documented client
// recovery: re-upload the full graph as resident and resume the stream.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"time"

	"gcolor/internal/graph"
	"gcolor/internal/serve"
)

type mutateLoadConfig struct {
	addr    string
	spec    string
	steps   int
	edges   int // max mutated edges per step
	seed    int64
	timeout time.Duration
	jsonOut string
}

type mutateLoadSummary struct {
	Mode        string           `json:"mode"`
	Spec        string           `json:"spec"`
	Steps       int              `json:"steps"`
	OK          int64            `json:"ok"`
	DeltaHits   int64            `json:"delta_hits"`
	Fallbacks   int64            `json:"delta_fallbacks"`
	Reuploads   int64            `json:"reuploads"`
	Errors      map[string]int64 `json:"errors,omitempty"`
	LatencyUS   map[string]int64 `json:"latency_us"`
	Throughput  float64          `json:"throughput_rps"`
	DurationSec float64          `json:"duration_sec"`
}

// runMutateLoad streams cfg.steps deltas and returns the process exit
// code. Any hard error (non-retryable, non-unknown_base) fails the run.
func runMutateLoad(client *http.Client, cfg mutateLoadConfig) int {
	g, err := serve.ParseGraphSpec(cfg.spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcload: -mutate spec: %v\n", err)
		return 1
	}
	if err := waitHealthy(client, cfg.addr, 10*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "gcload: %v\n", err)
		return 1
	}

	sum := mutateLoadSummary{Mode: "mutate", Spec: cfg.spec, Steps: cfg.steps, Errors: map[string]int64{}}
	post := func(cr *serve.ColorRequest) (*serve.ColorResponse, string, error) {
		body, _ := json.Marshal(cr)
		req, err := http.NewRequest(http.MethodPost, cfg.addr+"/color", bytes.NewReader(body))
		if err != nil {
			return nil, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, "transport", err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if resp.StatusCode != http.StatusOK {
			var er struct {
				Error string `json:"error"`
				Kind  string `json:"kind"`
			}
			_ = json.Unmarshal(raw, &er)
			if er.Kind == "" {
				er.Kind = fmt.Sprintf("http_%d", resp.StatusCode)
			}
			return nil, er.Kind, fmt.Errorf("%s", er.Error)
		}
		var out serve.ColorResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, "decode", err
		}
		return &out, "", nil
	}

	upload := func() (string, error) {
		res, kind, err := post(&serve.ColorRequest{Gen: cfg.spec, Resident: true, TimeoutMS: cfg.timeout.Milliseconds()})
		if err != nil {
			return "", fmt.Errorf("resident upload (%s): %w", kind, err)
		}
		return res.Fingerprint, nil
	}
	fp, err := upload()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcload: %v\n", err)
		return 1
	}

	rng := rand.New(rand.NewSource(cfg.seed))
	cur := g
	edges := make([][2]int32, 0, cur.NumEdges())
	for v := int32(0); int(v) < cur.NumVertices(); v++ {
		for _, u := range cur.Neighbors(v) {
			if u > v {
				edges = append(edges, [2]int32{v, u})
			}
		}
	}
	var lats []time.Duration
	start := time.Now()
	for step := 0; step < cfg.steps; step++ {
		cr := &serve.ColorRequest{BaseFingerprint: fp, TimeoutMS: cfg.timeout.Milliseconds()}
		for i := 0; i < 1+rng.Intn(cfg.edges); i++ {
			if rng.Intn(3) == 0 && len(edges) > 0 {
				cr.RemoveEdges = append(cr.RemoveEdges, edges[rng.Intn(len(edges))])
			} else {
				u, v := rng.Intn(cur.NumVertices()), rng.Intn(cur.NumVertices())
				if u != v {
					cr.AddEdges = append(cr.AddEdges, [2]int32{int32(u), int32(v)})
				}
			}
		}
		t0 := time.Now()
		res, kind, err := post(cr)
		if err != nil {
			if kind == "unknown_base" {
				// The documented recovery: the server lost the chain;
				// re-upload the current graph state and resume.
				sum.Reuploads++
				if fp, err = upload(); err != nil {
					fmt.Fprintf(os.Stderr, "gcload: step %d: %v\n", step, err)
					return 1
				}
				continue
			}
			sum.Errors[kind]++
			continue
		}
		lats = append(lats, time.Since(t0))
		sum.OK++
		if res.Delta && !res.DeltaFallback {
			sum.DeltaHits++
		}
		if res.DeltaFallback {
			sum.Fallbacks++
		}
		d := &graph.Delta{AddEdges: cr.AddEdges, RemoveEdges: cr.RemoveEdges}
		ng, _, _, aerr := graph.ApplyDelta(cur, d)
		if aerr != nil {
			fmt.Fprintf(os.Stderr, "gcload: step %d: local apply: %v\n", step, aerr)
			return 1
		}
		cur, fp = ng, res.Fingerprint
		edges = edges[:0]
		for v := int32(0); int(v) < cur.NumVertices(); v++ {
			for _, u := range cur.Neighbors(v) {
				if u > v {
					edges = append(edges, [2]int32{v, u})
				}
			}
		}
	}
	elapsed := time.Since(start)
	sum.DurationSec = elapsed.Seconds()
	if sum.DurationSec > 0 {
		sum.Throughput = float64(sum.OK) / sum.DurationSec
	}
	sum.LatencyUS = latQuantiles(lats)

	fmt.Printf("mutate: %d/%d ok (%d hits, %d fallbacks, %d reuploads), %.1f req/s, p50 %s p99 %s\n",
		sum.OK, cfg.steps, sum.DeltaHits, sum.Fallbacks, sum.Reuploads, sum.Throughput,
		us(sum.LatencyUS["p50"]), us(sum.LatencyUS["p99"]))
	for k, v := range sum.Errors {
		fmt.Printf("mutate: error %s: %d\n", k, v)
	}
	if cfg.jsonOut != "" {
		b, err := json.MarshalIndent(&sum, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcload: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gcload: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", cfg.jsonOut)
	}
	if len(sum.Errors) > 0 || sum.OK == 0 {
		return 1
	}
	return 0
}

// latQuantiles summarizes a latency series the same way the main summary
// does, without mutating the caller's slice ordering guarantees.
func latQuantiles(lats []time.Duration) map[string]int64 {
	if len(lats) == 0 {
		return map[string]int64{}
	}
	us := make([]int64, len(lats))
	for i, d := range lats {
		us[i] = d.Microseconds()
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	at := func(q float64) int64 { return us[int(q*float64(len(us)-1))] }
	return map[string]int64{
		"p50": at(0.50),
		"p90": at(0.90),
		"p99": at(0.99),
		"max": us[len(us)-1],
	}
}
