package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gcolor/internal/serve"
)

// crashDrillConfig parameterizes the crash-recovery drill: a real gcolord
// process with a write-ahead journal is killed with SIGKILL mid-load, then
// restarted on the same journal directory, and the drill asserts that no
// accepted job was silently lost and that the warm-started cache answers
// like the pre-crash one.
type crashDrillConfig struct {
	gcolordBin   string // prebuilt binary; "" builds gcolor/cmd/gcolord
	buildFlags   string // extra `go build` flags (e.g. "-race") when building
	devices      int
	conc         int
	overheadGate float64 // max tolerated journal throughput overhead fraction
	outPath      string
}

// drillReport is the JSON written to -json (default BENCH_PR6.json): the
// evidence that serving is crash-safe.
type drillReport struct {
	Devices      int     `json:"devices"`
	Concurrency  int     `json:"concurrency"`
	OverheadGate float64 `json:"overhead_gate"`

	PrimeSpecs  int     `json:"prime_specs"`
	PreHitRate  float64 `json:"pre_crash_hit_rate"`
	PostHitRate float64 `json:"post_crash_hit_rate"`

	CrashSent    int64 `json:"crash_window_sent"`
	CrashOK      int64 `json:"crash_window_ok"`
	CrashUnknown int64 `json:"crash_window_unknown"` // in flight when the daemon died
	CrashErrors  int64 `json:"crash_window_errors"`

	RecoveryWaitMS   int64 `json:"recovery_wait_ms"`
	PendingRecovered int64 `json:"pending_recovered"`
	ReplayCompleted  int64 `json:"replay_completed"`
	ReplayExpired    int64 `json:"replay_expired"`
	ReplayFailed     int64 `json:"replay_failed"`
	WarmedCache      int64 `json:"warmed_cache"`
	WarmedIdem       int64 `json:"warmed_idem"`
	TornTails        int64 `json:"torn_tails"`
	CorruptSegments  int64 `json:"corrupt_segments"`

	RetriesIssued int `json:"retries_issued"`
	RetriesOK     int `json:"retries_ok"`
	IdemReplays   int `json:"idempotent_replays"`
	ResultDrift   int `json:"result_drift"` // retries whose num_colors changed

	JournalOnRPS  float64 `json:"journal_on_rps"`
	JournalOffRPS float64 `json:"journal_off_rps"`
	OverheadFrac  float64 `json:"journal_overhead_frac"`

	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// drillOutcome records one crash-window request so it can be retried with
// the same body and Idempotency-Key against the restarted daemon.
type drillOutcome struct {
	body      []byte
	idemKey   string
	ok        bool
	unknown   bool // transport error: daemon died with the request in flight
	numColors int
}

// daemon is one managed gcolord process.
type daemon struct {
	cmd     *exec.Cmd
	addr    string
	logPath string
	done    chan struct{} // closed once the process has been reaped
}

func startDaemon(bin, addr, logPath string, extra ...string) (*daemon, error) {
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	logf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	d := &daemon{cmd: cmd, addr: "http://" + addr, logPath: logPath, done: make(chan struct{})}
	go func() { // reap on exit so a SIGKILL'd daemon never lingers as a zombie
		_ = cmd.Wait()
		logf.Close()
		close(d.done)
	}()
	return d, nil
}

// kill delivers SIGKILL — the crash under test. No cleanup runs in the
// daemon; whatever the journal holds is all the next generation gets.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	<-d.done
}

// stop asks for a graceful drain and waits for the process to go away.
func (d *daemon) stop() {
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-d.done:
	case <-time.After(20 * time.Second):
		d.kill()
	}
}

func (d *daemon) dumpLog(prefix string) {
	b, err := os.ReadFile(d.logPath)
	if err != nil {
		return
	}
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		fmt.Fprintf(os.Stderr, "%s: %s\n", prefix, line)
	}
}

func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// postDrill is doRequest plus the headers the drill cares about: an
// Idempotency-Key so retries dedupe across the restart, and a request ID
// so the journal entry is traceable from the client side.
func postDrill(client *http.Client, addr string, body []byte, idemKey, reqID string) (serve.ColorResponse, int, error) {
	req, err := http.NewRequest(http.MethodPost, addr+"/color", bytes.NewReader(body))
	if err != nil {
		return serve.ColorResponse{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return serve.ColorResponse{}, 0, err
	}
	defer resp.Body.Close()
	var cr serve.ColorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			return serve.ColorResponse{}, resp.StatusCode, err
		}
	}
	return cr, resp.StatusCode, nil
}

// recoveryzState mirrors the fields of GET /recoveryz the drill asserts on.
type recoveryzState struct {
	Enabled          bool  `json:"enabled"`
	Done             bool  `json:"done"`
	WarmedCache      int64 `json:"warmed_cache"`
	WarmedIdem       int64 `json:"warmed_idem"`
	PendingRecovered int64 `json:"pending_recovered"`
	ReplayCompleted  int64 `json:"replay_completed"`
	ReplayExpired    int64 `json:"replay_expired"`
	ReplayFailed     int64 `json:"replay_failed"`
	Replay           struct {
		Records         int64 `json:"records"`
		TornTails       int64 `json:"torn_tails"`
		CorruptSegments int64 `json:"corrupt_segments"`
	} `json:"replay"`
}

func fetchRecoveryz(client *http.Client, addr string) (recoveryzState, error) {
	var st recoveryzState
	resp, err := client.Get(addr + "/recoveryz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// runCrashDrill executes the drill and returns the process exit code.
//
// Phases:
//  1. build (or reuse) a gcolord binary
//  2. generation 1: journal on; prime a distinct spec set, probe its
//     cache hit rate, then SIGKILL the daemon under concurrent
//     idempotency-keyed load
//  3. generation 2: same journal dir; wait for /recoveryz done, assert
//     every recovered pending job settled with zero replay failures
//  4. retry every crash-window request with its original Idempotency-Key
//     (all must succeed, completed ones must not change answer) and
//     re-probe the prime set (hit rate within 10% of pre-crash)
//  5. A/B throughput with journaling on vs off; overhead gated
func runCrashDrill(cfg crashDrillConfig) int {
	if cfg.devices <= 0 {
		cfg.devices = 2
	}
	if cfg.conc <= 0 {
		cfg.conc = 8
	}
	rep := drillReport{Devices: cfg.devices, Concurrency: cfg.conc, OverheadGate: cfg.overheadGate}
	var failures []string
	check := func(ok bool, format string, a ...any) {
		if !ok {
			failures = append(failures, fmt.Sprintf(format, a...))
		}
	}

	work, err := os.MkdirTemp("", "gcolor-drill-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(work)

	bin := cfg.gcolordBin
	if bin == "" {
		bin = filepath.Join(work, "gcolord")
		args := []string{"build", "-o", bin}
		if cfg.buildFlags != "" {
			args = append(args, strings.Fields(cfg.buildFlags)...)
		}
		args = append(args, "gcolor/cmd/gcolord")
		fmt.Printf("crash-drill: go %s\n", strings.Join(args, " "))
		build := exec.Command("go", args...)
		build.Stdout, build.Stderr = os.Stderr, os.Stderr
		if err := build.Run(); err != nil {
			fatal(fmt.Errorf("building gcolord: %w (run from the module root?)", err))
		}
	}

	journalDir := filepath.Join(work, "wal")
	client := newLoadClient(30*time.Second, cfg.conc)
	journalArgs := []string{
		"-devices", fmt.Sprint(cfg.devices), "-shed", "1",
		"-journal-dir", journalDir, "-journal-fsync", "batch",
	}

	// ---- Generation 1: prime, probe, crash under load ----
	addr1, err := freeAddr()
	if err != nil {
		fatal(err)
	}
	gen1, err := startDaemon(bin, addr1, filepath.Join(work, "gen1.log"), journalArgs...)
	if err != nil {
		fatal(err)
	}
	defer gen1.kill()
	if err := waitHealthy(client, gen1.addr, 15*time.Second); err != nil {
		gen1.dumpLog("gen1")
		fatal(err)
	}
	fmt.Printf("crash-drill: generation 1 up at %s (journal %s)\n", gen1.addr, journalDir)

	primes := make([][]byte, 0, 16)
	for i := 0; i < 16; i++ {
		b, _ := json.Marshal(&serve.ColorRequest{Gen: fmt.Sprintf("grid:%d:16", 12+i), Alg: "baseline", TimeoutMS: 30_000})
		primes = append(primes, b)
	}
	rep.PrimeSpecs = len(primes)
	probeHitRate := func(d *daemon, label string) float64 {
		hits := 0
		for i, b := range primes {
			cr, code, err := postDrill(client, d.addr, b, "", fmt.Sprintf("%s-prime-%d", label, i))
			if err != nil || code != http.StatusOK {
				check(false, "%s prime probe %d: status %d err %v", label, i, code, err)
				continue
			}
			if cr.Cached {
				hits++
			}
		}
		return float64(hits) / float64(len(primes))
	}
	for i, b := range primes { // first pass populates the cache
		if _, code, err := postDrill(client, gen1.addr, b, "", fmt.Sprintf("prime-%d", i)); err != nil || code != http.StatusOK {
			gen1.dumpLog("gen1")
			fatal(fmt.Errorf("priming request %d failed: status %d err %v", i, code, err))
		}
	}
	rep.PreHitRate = probeHitRate(gen1, "pre")
	fmt.Printf("crash-drill: primed %d specs, pre-crash hit rate %.2f\n", len(primes), rep.PreHitRate)

	// Crash-window load: unique graphs (every request executes and is
	// journaled) with per-request idempotency keys, recorded for replay
	// verification. The SIGKILL lands while these are in flight.
	var (
		outMu    sync.Mutex
		outcomes []drillOutcome
		seq      atomic.Int64
	)
	loadCtx, stopLoad := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for loadCtx.Err() == nil {
				n := seq.Add(1)
				body, _ := json.Marshal(&serve.ColorRequest{
					Gen: fmt.Sprintf("rmat:9:8:%d", 5000+n), Alg: "baseline", TimeoutMS: 30_000,
				})
				o := drillOutcome{body: body, idemKey: fmt.Sprintf("drill-%d", n)}
				cr, code, err := postDrill(client, gen1.addr, body, o.idemKey, "drill-req-"+o.idemKey)
				switch {
				case err != nil:
					o.unknown = true // daemon died underneath the request
				case code == http.StatusOK:
					o.ok, o.numColors = true, cr.NumColors
				}
				outMu.Lock()
				outcomes = append(outcomes, o)
				outMu.Unlock()
				if o.unknown {
					return // the daemon is dead; one in-flight casualty per worker is the interesting case
				}
			}
		}()
	}
	time.Sleep(500 * time.Millisecond)
	fmt.Println("crash-drill: SIGKILL generation 1 mid-load")
	gen1.kill()
	time.Sleep(200 * time.Millisecond) // let in-flight requests fail against the corpse
	stopLoad()
	wg.Wait()

	for _, o := range outcomes {
		rep.CrashSent++
		switch {
		case o.ok:
			rep.CrashOK++
		case o.unknown:
			rep.CrashUnknown++
		default:
			rep.CrashErrors++
		}
	}
	fmt.Printf("crash-drill: crash window: %d sent, %d ok, %d in flight at kill, %d errors\n",
		rep.CrashSent, rep.CrashOK, rep.CrashUnknown, rep.CrashErrors)
	check(rep.CrashOK > 0, "crash window completed no requests; drill did not exercise the journal")

	// ---- Generation 2: restart on the same journal ----
	addr2, err := freeAddr()
	if err != nil {
		fatal(err)
	}
	gen2, err := startDaemon(bin, addr2, filepath.Join(work, "gen2.log"), journalArgs...)
	if err != nil {
		fatal(err)
	}
	defer gen2.stop()
	if err := waitHealthy(client, gen2.addr, 15*time.Second); err != nil {
		gen2.dumpLog("gen2")
		fatal(err)
	}

	recStart := time.Now()
	var rz recoveryzState
	for {
		rz, err = fetchRecoveryz(client, gen2.addr)
		if err == nil && rz.Done {
			break
		}
		if time.Since(recStart) > 60*time.Second {
			check(false, "recovery did not finish within 60s (pending %d, completed %d)", rz.PendingRecovered, rz.ReplayCompleted)
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	rep.RecoveryWaitMS = time.Since(recStart).Milliseconds()
	rep.PendingRecovered = rz.PendingRecovered
	rep.ReplayCompleted = rz.ReplayCompleted
	rep.ReplayExpired = rz.ReplayExpired
	rep.ReplayFailed = rz.ReplayFailed
	rep.WarmedCache = rz.WarmedCache
	rep.WarmedIdem = rz.WarmedIdem
	rep.TornTails = rz.Replay.TornTails
	rep.CorruptSegments = rz.Replay.CorruptSegments
	fmt.Printf("crash-drill: generation 2 recovered in %dms: %d pending replayed (%d completed, %d expired, %d failed), warm cache %d, warm idem %d, %d torn tails\n",
		rep.RecoveryWaitMS, rz.PendingRecovered, rz.ReplayCompleted, rz.ReplayExpired, rz.ReplayFailed, rz.WarmedCache, rz.WarmedIdem, rep.TornTails)

	check(rz.Enabled, "generation 2 reports recovery disabled; journal flags not wired?")
	check(rz.ReplayFailed == 0, "replay_failed = %d, want 0", rz.ReplayFailed)
	settled := rz.ReplayCompleted + rz.ReplayExpired + rz.ReplayFailed
	check(settled >= rz.PendingRecovered,
		"accepted-job loss: %d pending recovered but only %d settled", rz.PendingRecovered, settled)
	check(rz.Replay.CorruptSegments == 0, "corrupt_segments = %d after a plain SIGKILL, want 0", rz.Replay.CorruptSegments)
	check(rz.WarmedCache > 0, "warm start loaded nothing into the result cache")

	// Probe the warm cache before the retry flood below churns the LRU:
	// the prime set must answer from the journal-warmed cache.
	rep.PostHitRate = probeHitRate(gen2, "post")
	check(rep.PostHitRate >= rep.PreHitRate-0.10,
		"post-crash hit rate %.2f below pre-crash %.2f - 0.10", rep.PostHitRate, rep.PreHitRate)
	fmt.Printf("crash-drill: post-crash hit rate %.2f (pre-crash %.2f)\n", rep.PostHitRate, rep.PreHitRate)

	// Retry every crash-window request with its original idempotency key:
	// none may fail, and ones that completed pre-crash must not change
	// their answer.
	for _, o := range outcomes {
		rep.RetriesIssued++
		cr, code, err := postDrill(client, gen2.addr, o.body, o.idemKey, "retry-"+o.idemKey)
		if err != nil || code != http.StatusOK {
			check(false, "retry %s: status %d err %v", o.idemKey, code, err)
			continue
		}
		rep.RetriesOK++
		if cr.IdempotentReplay {
			rep.IdemReplays++
		}
		if o.ok && cr.NumColors != o.numColors {
			rep.ResultDrift++
			check(false, "retry %s changed answer: %d colors pre-crash, %d after", o.idemKey, o.numColors, cr.NumColors)
		}
	}
	check(rep.RetriesOK == rep.RetriesIssued, "retries: %d/%d succeeded", rep.RetriesOK, rep.RetriesIssued)
	check(rep.IdemReplays > 0, "no retry was served as an idempotent replay; idempotency map did not survive the crash")
	fmt.Printf("crash-drill: retried %d requests: %d ok, %d idempotent replays, %d answer drift\n",
		rep.RetriesIssued, rep.RetriesOK, rep.IdemReplays, rep.ResultDrift)
	gen2.stop()

	// ---- A/B: journal overhead ----
	// Unique-seed requests so every one executes; same binary, same mix,
	// journal on (fresh dir) vs off. The off run is the pre-journal serving
	// baseline regime.
	abRun := func(label string, extra ...string) float64 {
		addr, err := freeAddr()
		if err != nil {
			fatal(err)
		}
		args := append([]string{"-devices", fmt.Sprint(cfg.devices), "-shed", "1"}, extra...)
		d, err := startDaemon(bin, addr, filepath.Join(work, label+".log"), args...)
		if err != nil {
			fatal(err)
		}
		defer d.stop()
		if err := waitHealthy(client, d.addr, 15*time.Second); err != nil {
			d.dumpLog(label)
			fatal(err)
		}
		mix, err := parseMix("rmat:8:8:1=1")
		if err != nil {
			fatal(err)
		}
		gen := newReqGen(mix, 1.0, "baseline", "static", "normal", 30_000, 7)
		sum := runClosed(client, d.addr, gen, cfg.conc, 300, 0)
		fmt.Printf("crash-drill: %s throughput %.1f req/s (%d ok / %d sent)\n", label, sum.Throughput, sum.OK, sum.Requests)
		return sum.Throughput
	}
	// Best of two interleaved runs per mode: machine-level drift across a
	// multi-second window is the same order as the effect being measured.
	for i := 0; i < 2; i++ {
		on := abRun(fmt.Sprintf("journal-on-%d", i),
			"-journal-dir", filepath.Join(work, fmt.Sprintf("wal-ab-%d", i)), "-journal-fsync", "batch")
		off := abRun(fmt.Sprintf("journal-off-%d", i))
		if on > rep.JournalOnRPS {
			rep.JournalOnRPS = on
		}
		if off > rep.JournalOffRPS {
			rep.JournalOffRPS = off
		}
	}
	if rep.JournalOffRPS > 0 {
		rep.OverheadFrac = 1 - rep.JournalOnRPS/rep.JournalOffRPS
		if rep.OverheadFrac < 0 {
			rep.OverheadFrac = 0
		}
	}
	check(rep.OverheadFrac <= cfg.overheadGate,
		"journal overhead %.1f%% exceeds gate %.1f%% (on %.1f vs off %.1f req/s)",
		rep.OverheadFrac*100, cfg.overheadGate*100, rep.JournalOnRPS, rep.JournalOffRPS)

	rep.Failures = failures
	rep.Pass = len(failures) == 0
	if cfg.outPath != "" {
		b, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(cfg.outPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("crash-drill: wrote %s\n", cfg.outPath)
	}
	if !rep.Pass {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "crash-drill: FAIL: %s\n", f)
		}
		return 1
	}
	fmt.Printf("crash-drill: PASS (0 lost of %d recovered, hit rate %.2f -> %.2f, overhead %.1f%%)\n",
		rep.PendingRecovered, rep.PreHitRate, rep.PostHitRate, rep.OverheadFrac*100)
	return 0
}
