package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/serve"
)

// chaosSoakConfig parameterizes the self-healing soak. Durations are per
// phase; the whole soak runs in bounded time (roughly 4 phases plus the
// quarantine/re-admission waits, each capped at 10 phases).
type chaosSoakConfig struct {
	devices   int
	conc      int
	faultRate float64
	phase     time.Duration
	mix       string
	outPath   string
}

// soakReport is the JSON written to -json (default BENCH_PR4.json): the
// evidence that the fleet self-heals around a sick device.
type soakReport struct {
	Devices   int     `json:"devices"`
	Victim    int     `json:"victim"`
	FaultRate float64 `json:"fault_rate"`
	PhaseSec  float64 `json:"phase_sec"`

	BaselineRPS     float64 `json:"baseline_rps"`
	BaselineErrRate float64 `json:"baseline_err_rate"`
	FaultRPS        float64 `json:"fault_rps"`
	FaultErrRate    float64 `json:"fault_err_rate"`
	RecoveryRPS     float64 `json:"recovery_rps"`
	RecoveryErrRate float64 `json:"recovery_err_rate"`
	ThroughputRatio float64 `json:"throughput_ratio"` // fault / baseline

	QuarantineMS int64 `json:"time_to_quarantine_ms"`
	ReadmitMS    int64 `json:"time_to_readmit_ms"`

	Quarantines int64 `json:"quarantines_total"`
	Readmitted  int64 `json:"readmitted_total"`
	Probes      int64 `json:"probes_total"`
	ProbeFails  int64 `json:"probe_failures_total"`
	Hedges      int64 `json:"hedges_total"`
	HedgeWins   int64 `json:"hedge_wins_total"`

	VictimHealthSick      float64 `json:"victim_health_sick"`
	VictimHealthRecovered float64 `json:"victim_health_recovered"`

	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// soakCounters is one phase's windowed tally; workers add to the current
// window, phases snapshot-and-reset.
type soakCounters struct {
	ok  atomic.Int64
	err atomic.Int64
}

func (c *soakCounters) reset() (ok, errs int64) {
	return c.ok.Swap(0), c.err.Swap(0)
}

// runChaosSoak stands up an in-process 4-device server behind a real HTTP
// listener, drives closed-loop load through it, then sickens one device
// mid-run and asserts the fleet heals: the victim is quarantined, the
// survivors keep throughput at >= 70% of baseline, and after the fault
// clears the victim is re-admitted through half-open probes with the
// error rate back at baseline. Returns the process exit code.
func runChaosSoak(cfg chaosSoakConfig) int {
	if cfg.devices < 2 {
		cfg.devices = 4
	}
	victim := 1 % cfg.devices

	devCfgs := make([]serve.DeviceConfig, cfg.devices)
	for i := range devCfgs {
		devCfgs[i] = serve.DeviceConfig{
			// Small devices keep per-request sim time low so phases see
			// hundreds of requests.
			NumCUs:        8,
			FaultRate:     cfg.faultRate,
			FaultSeed:     uint64(i + 1),
			FaultDisarmed: true,
		}
	}
	srv := serve.NewServer(serve.Config{
		DeviceConfigs: devCfgs,
		QueueCapacity: 256,
		ShedFraction:  1, // no early shedding; the soak measures healing, not admission
		CacheEntries:  -1,
		SelfHeal: serve.SelfHealConfig{
			// Fast-reacting tuning so the soak converges in seconds: trip
			// after 3 consecutive failures, half-open after 500ms, re-admit
			// after 3 clean probes.
			Alpha:            0.35,
			FailureThreshold: 3,
			OpenBelow:        0.30,
			Cooldown:         500 * time.Millisecond,
			MaxCooldown:      2 * time.Second,
			ProbeSuccesses:   3,
			HedgeMinSamples:  32,
			HedgeFloor:       time.Millisecond,
		},
	})
	defer srv.Stop()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: serve.Handler(srv)}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	addr := "http://" + ln.Addr().String()

	mix, err := parseMix(cfg.mix)
	if err != nil {
		fatal(err)
	}
	gen := newReqGen(mix, 0, "baseline", "static", "normal", 2000, 1)
	// Every request executes (no cache), and a faulted run fails fast (no
	// retries, no CPU fallback) so the sick device's outcomes reach its
	// breaker undiluted.
	gen.body.NoCache = true
	gen.body.NoCPUFallback = true
	gen.body.MaxRetries = -1

	client := newLoadClient(10*time.Second, cfg.conc)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var counters soakCounters
	var wg sync.WaitGroup
	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				r := doRequest(client, addr, gen.next())
				if r.ok {
					counters.ok.Add(1)
				} else {
					counters.err.Add(1)
				}
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	rep := soakReport{
		Devices:   cfg.devices,
		Victim:    victim,
		FaultRate: cfg.faultRate,
		PhaseSec:  cfg.phase.Seconds(),
	}
	measure := func(d time.Duration) (rps, errRate float64) {
		counters.reset()
		time.Sleep(d)
		ok, errs := counters.reset()
		total := ok + errs
		if total > 0 {
			errRate = float64(errs) / float64(total)
		}
		return float64(ok) / d.Seconds(), errRate
	}
	waitBreaker := func(want serve.BreakerState, deadline time.Duration) (time.Duration, bool) {
		start := time.Now()
		for time.Since(start) < deadline {
			if srv.Pool().BreakerState(victim) == want {
				return time.Since(start), true
			}
			time.Sleep(20 * time.Millisecond)
		}
		return deadline, false
	}

	fmt.Printf("chaos-soak: %d devices, victim %d, fault rate %g, phase %v\n",
		cfg.devices, victim, cfg.faultRate, cfg.phase)

	// Phase A: healthy baseline.
	rep.BaselineRPS, rep.BaselineErrRate = measure(cfg.phase)
	fmt.Printf("chaos-soak: baseline %.1f req/s (err rate %.3f)\n", rep.BaselineRPS, rep.BaselineErrRate)

	// Phase B: sicken the victim mid-run and wait for quarantine.
	srv.Pool().FaultInjector(victim).Arm()
	fmt.Printf("chaos-soak: fault injector armed on device %d\n", victim)
	quarantineWait, quarantined := waitBreaker(serve.BreakerOpen, 10*cfg.phase)
	rep.QuarantineMS = quarantineWait.Milliseconds()
	rep.VictimHealthSick = srv.Pool().HealthScore(victim)
	if quarantined {
		fmt.Printf("chaos-soak: device %d quarantined after %v (health %.3f)\n",
			victim, quarantineWait.Round(time.Millisecond), rep.VictimHealthSick)
	}

	// Fault-phase throughput: measured with the victim quarantined, the
	// regime the fleet settles into while the fault persists.
	rep.FaultRPS, rep.FaultErrRate = measure(cfg.phase)
	fmt.Printf("chaos-soak: faulted fleet %.1f req/s (err rate %.3f)\n", rep.FaultRPS, rep.FaultErrRate)

	// Phase C: clear the fault and wait for re-admission via probes.
	srv.Pool().FaultInjector(victim).Disarm()
	fmt.Printf("chaos-soak: fault injector disarmed on device %d\n", victim)
	readmitWait, readmitted := waitBreaker(serve.BreakerClosed, 10*cfg.phase)
	rep.ReadmitMS = readmitWait.Milliseconds()
	if readmitted {
		fmt.Printf("chaos-soak: device %d re-admitted after %v\n", victim, readmitWait.Round(time.Millisecond))
	}

	// Phase D: post-recovery window.
	rep.RecoveryRPS, rep.RecoveryErrRate = measure(cfg.phase)
	rep.VictimHealthRecovered = srv.Pool().HealthScore(victim)
	fmt.Printf("chaos-soak: recovered fleet %.1f req/s (err rate %.3f, victim health %.3f)\n",
		rep.RecoveryRPS, rep.RecoveryErrRate, rep.VictimHealthRecovered)

	cancel()
	wg.Wait()

	st := srv.Stats()
	rep.Quarantines = st.Quarantines
	rep.Readmitted = st.Readmitted
	rep.Probes = st.Probes
	rep.ProbeFails = st.ProbeFailures
	rep.Hedges = st.Hedges
	rep.HedgeWins = st.HedgeWins
	if rep.BaselineRPS > 0 {
		rep.ThroughputRatio = rep.FaultRPS / rep.BaselineRPS
	}

	// Assertions: the acceptance criteria of the soak.
	check := func(ok bool, format string, a ...any) {
		if !ok {
			rep.Failures = append(rep.Failures, fmt.Sprintf(format, a...))
		}
	}
	check(quarantined, "victim was never quarantined (breaker open) within %v", 10*cfg.phase)
	check(readmitted, "victim was never re-admitted (breaker closed) within %v", 10*cfg.phase)
	check(rep.ThroughputRatio >= 0.70,
		"faulted-fleet throughput %.1f req/s is %.0f%% of baseline %.1f (need >= 70%%)",
		rep.FaultRPS, rep.ThroughputRatio*100, rep.BaselineRPS)
	check(st.Readmitted >= 1, "readmitted_total = %d, want >= 1", st.Readmitted)
	check(st.Probes >= 1, "probes_total = %d, want >= 1", st.Probes)
	// Post-recovery error rate must return to baseline (allow 1% absolute
	// slack for requests that straddled the re-admission boundary).
	check(rep.RecoveryErrRate <= rep.BaselineErrRate+0.01,
		"post-recovery error rate %.3f above baseline %.3f", rep.RecoveryErrRate, rep.BaselineErrRate)
	rep.Pass = len(rep.Failures) == 0

	if cfg.outPath != "" {
		b, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(cfg.outPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("chaos-soak: wrote %s\n", cfg.outPath)
	}
	if !rep.Pass {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "chaos-soak: FAIL: %s\n", f)
		}
		return 1
	}
	fmt.Printf("chaos-soak: PASS (quarantine %v, readmit %v, throughput ratio %.2f, %d hedges)\n",
		time.Duration(rep.QuarantineMS)*time.Millisecond,
		time.Duration(rep.ReadmitMS)*time.Millisecond,
		rep.ThroughputRatio, rep.Hedges)
	return 0
}
