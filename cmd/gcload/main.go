// Command gcload drives a gcolord daemon with a configurable request mix
// and reports throughput and latency — the serving-side counterpart of
// gcbench.
//
// Closed loop (default): -conc workers each keep one request in flight.
// Open loop: requests fire at a fixed -rate regardless of completions,
// which is what pushes the daemon into its shedding regime.
//
// Usage:
//
//	gcload -addr http://localhost:8421 -conc 8 -duration 10s
//	gcload -mode open -rate 200 -duration 5s -mix "grid:40:40=3,rmat:9:8:1=1"
//	gcload -baseline -conc 8 -n 200 -json load.json
//	gcload -wire binary -conc 8 -duration 10s  # binary CSR frames, options in query
//	gcload -crash-drill -json BENCH_PR6.json   # kill -9 / restart / replay drill
//
// The mix is spec=weight pairs (specs as in serve.ParseGraphSpec); -unique
// rewrites the seed of that fraction of requests so they miss every cache,
// controlling the duplicate share of the workload. With -baseline the tool
// first measures serial one-at-a-time no-cache throughput on the same mix
// (the cmd/gcolor regime) and reports the serving speedup over it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/graph"
	"gcolor/internal/serve"
)

type mixEntry struct {
	spec   string
	weight int
}

type summary struct {
	Mode        string                  `json:"mode"`
	Concurrency int                     `json:"concurrency,omitempty"`
	RatePerSec  float64                 `json:"rate_per_sec,omitempty"`
	DurationSec float64                 `json:"duration_sec"`
	Requests    int64                   `json:"requests"`
	OK          int64                   `json:"ok"`
	Cached      int64                   `json:"cached"`
	Coalesced   int64                   `json:"coalesced"`
	Errors      map[string]int64        `json:"errors,omitempty"`
	Retried     int64                   `json:"retried,omitempty"`    // requests that needed >= 1 retry
	Retries     int64                   `json:"retries,omitempty"`    // total extra attempts
	BackoffMS   int64                   `json:"backoff_ms,omitempty"` // total time slept between attempts
	Throughput  float64                 `json:"throughput_rps"`
	LatencyUS   map[string]int64        `json:"latency_us"`
	Endpoints   map[string]endpointStat `json:"endpoints,omitempty"`
	Server      map[string]float64      `json:"server,omitempty"`
	BaselineRPS float64                 `json:"baseline_rps,omitempty"`
	Speedup     float64                 `json:"speedup,omitempty"`
}

// endpointStat is the per-endpoint latency breakdown gcload reports when
// the target is a cluster coordinator: one row per worker that served
// whole-graph jobs, plus a "scatter" row for fan-out jobs (whose latency
// is the slowest shard, not any single worker) and a "coordinator" row
// for requests answered locally (cache hits, idempotent replays).
type endpointStat struct {
	Requests int64 `json:"requests"`
	P50US    int64 `json:"p50_us"`
	P99US    int64 `json:"p99_us"`
	MeanUS   int64 `json:"mean_us"`
	MaxUS    int64 `json:"max_us"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8421", "gcolord base URL")
		mode     = flag.String("mode", "closed", "load mode: closed (fixed concurrency) or open (fixed rate)")
		conc     = flag.Int("conc", 8, "closed-loop concurrent workers")
		rate     = flag.Float64("rate", 100, "open-loop request rate (req/s)")
		duration = flag.Duration("duration", 10*time.Second, "run length (ignored when -n > 0)")
		count    = flag.Int("n", 0, "total request count (0 = run for -duration)")
		mixFlag  = flag.String("mix", "grid:40:40=4,gnm:2000:8000:1=3,rmat:9:8:1=3", "workload mix: spec=weight pairs, comma separated")
		unique   = flag.Float64("unique", 0.2, "fraction of requests rewritten to a unique seed (cache-busting)")
		alg      = flag.String("alg", "baseline", "algorithm for every request")
		policy   = flag.String("policy", "static", "scheduling policy for every request")
		priority = flag.String("priority", "normal", "priority for every request")
		wire     = flag.String("wire", "json", "request wire format: json (ColorRequest body) or binary (application/x-gcolor-csr CSR frame, options in the query string; graphs are generated client-side)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")

		retries   = flag.Int("retries", 3, "retry attempts after a retryable failure (transport, 429, 5xx); 0 disables")
		retryBase = flag.Duration("retry-base", 100*time.Millisecond, "full-jitter backoff base delay")
		retryCap  = flag.Duration("retry-cap", 5*time.Second, "backoff delay ceiling (also caps honored Retry-After hints)")

		seed     = flag.Int64("seed", 1, "workload RNG seed")
		baseline = flag.Bool("baseline", false, "first measure serial no-cache throughput on the same mix and report speedup")
		jsonOut  = flag.String("json", "", "also write the summary as JSON to this file")

		crashDrill        = flag.Bool("crash-drill", false, "run the crash-recovery drill: start gcolord with a journal, SIGKILL it mid-load, restart it, and assert zero accepted-job loss and a warm cache (ignores -addr)")
		drillGcolord      = flag.String("drill-gcolord", "", "prebuilt gcolord binary for -crash-drill (empty = `go build gcolor/cmd/gcolord` from the module root)")
		drillBuildFlags   = flag.String("drill-buildflags", "", "extra go build flags when -crash-drill builds gcolord, e.g. -race")
		drillOverheadGate = flag.Float64("drill-overhead-gate", 0.05, "max tolerated journal throughput overhead fraction in the -crash-drill A/B")
		drillDevices      = flag.Int("drill-devices", 2, "-crash-drill daemon pool size")

		mutateLoad  = flag.Bool("mutate", false, "stream a resident upload plus chained delta requests against -addr and exit")
		mutateSpec  = flag.String("mutate-spec", "rmat:11:16:1", "base graph spec for -mutate")
		mutateSteps = flag.Int("mutate-steps", 200, "delta requests for -mutate")
		mutateEdges = flag.Int("mutate-edges", 32, "max mutated edges per -mutate step")

		chaosSoak     = flag.Bool("chaos-soak", false, "run the self-healing chaos soak against an in-process server (ignores -addr) and exit")
		soakFaultRate = flag.Float64("soak-fault-rate", 0.02, "per-event fault probability armed on the chaos-soak victim")
		soakPhase     = flag.Duration("soak-phase", 3*time.Second, "chaos-soak phase length (baseline / fault / recovery windows)")
		soakDevices   = flag.Int("soak-devices", 4, "chaos-soak pool size")
		soakMix       = flag.String("soak-mix", "grid:24:24=2,rmat:8:8:1=1", "chaos-soak workload mix (small graphs keep phases dense)")
	)
	flag.Parse()

	if *crashDrill {
		out := *jsonOut
		if out == "" {
			out = "BENCH_PR6.json"
		}
		os.Exit(runCrashDrill(crashDrillConfig{
			gcolordBin:   *drillGcolord,
			buildFlags:   *drillBuildFlags,
			devices:      *drillDevices,
			conc:         *conc,
			overheadGate: *drillOverheadGate,
			outPath:      out,
		}))
	}

	if *mutateLoad {
		os.Exit(runMutateLoad(newLoadClient(*timeout+5*time.Second, 2), mutateLoadConfig{
			addr:    *addr,
			spec:    *mutateSpec,
			steps:   *mutateSteps,
			edges:   *mutateEdges,
			seed:    *seed,
			timeout: *timeout,
			jsonOut: *jsonOut,
		}))
	}

	if *chaosSoak {
		out := *jsonOut
		if out == "" {
			out = "BENCH_PR4.json"
		}
		os.Exit(runChaosSoak(chaosSoakConfig{
			devices:   *soakDevices,
			conc:      *conc,
			faultRate: *soakFaultRate,
			phase:     *soakPhase,
			mix:       *soakMix,
			outPath:   out,
		}))
	}

	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}
	if *mode != "closed" && *mode != "open" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	if *retries > 0 {
		retryPol = retryPolicy{max: *retries, base: *retryBase, cap: *retryCap}
		if retryPol.base <= 0 {
			retryPol.base = 100 * time.Millisecond
		}
		if retryPol.cap < retryPol.base {
			retryPol.cap = retryPol.base
		}
	}
	client := newLoadClient(*timeout+5*time.Second, *conc)
	if err := waitHealthy(client, *addr, 10*time.Second); err != nil {
		fatal(err)
	}

	sum := summary{Mode: *mode, Errors: map[string]int64{}}
	gen := newReqGen(mix, *unique, *alg, *policy, *priority, timeout.Milliseconds(), *seed)
	switch *wire {
	case "json":
	case "binary":
		gen.useBinaryWire()
	default:
		fatal(fmt.Errorf("unknown wire format %q (json | binary)", *wire))
	}

	if *baseline {
		n := *count
		if n == 0 {
			n = 50
		}
		if n > 200 {
			n = 200
		}
		base := runClosed(client, *addr, gen.baselineVariant(), 1, n, 0)
		sum.BaselineRPS = base.Throughput
		fmt.Printf("baseline: %d serial no-cache requests, %.1f req/s (p50 %s)\n",
			base.Requests, base.Throughput, us(base.LatencyUS["p50"]))
	}

	var run summary
	switch *mode {
	case "closed":
		run = runClosed(client, *addr, gen, *conc, *count, *duration)
		run.Concurrency = *conc
	case "open":
		run = runOpen(client, *addr, gen, *rate, *count, *duration)
		run.RatePerSec = *rate
	}
	run.Mode, run.BaselineRPS = sum.Mode, sum.BaselineRPS
	if run.BaselineRPS > 0 {
		run.Speedup = run.Throughput / run.BaselineRPS
	}
	run.Server = fetchServerMetrics(client, *addr)
	printSummary(&run)

	if *jsonOut != "" {
		b, err := json.MarshalIndent(&run, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if run.Requests > 0 && run.OK == 0 {
		os.Exit(1)
	}
}

// newLoadClient builds the single pooled HTTP client every gcload mode
// shares for the whole run. The default transport keeps only two idle
// connections per host, so a -conc 8 closed loop would churn TCP dials
// (and, against a coordinator, measure handshakes instead of the fleet);
// sizing the keep-alive pool to the worker count means every in-flight
// lane holds a warm connection.
func newLoadClient(timeout time.Duration, conc int) *http.Client {
	if conc < 4 {
		conc = 4
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        4 * conc,
			MaxIdleConnsPerHost: conc,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// loadReq is one prepared request: the body plus the wire framing it
// needs. A zero contentType means the JSON ColorRequest wire.
type loadReq struct {
	body        []byte
	contentType string
	query       string // binary wire only: options as query parameters
}

// reqGen produces the request stream: weighted spec choice plus
// cache-busting unique-seed rewrites. It is safe for concurrent use.
type reqGen struct {
	mu       sync.Mutex
	rng      *rand.Rand
	mix      []mixEntry
	total    int
	unique   float64
	uniqueID atomic.Int64
	body     serve.ColorRequest

	// Binary wire mode: requests ship graph.EncodeWireCSR frames with
	// options in the query string instead of JSON envelopes. Frames are
	// generated client-side and memoized per spec.
	binary   bool
	binQuery string
	frames   map[string][]byte
}

func newReqGen(mix []mixEntry, unique float64, alg, policy, priority string, timeoutMS int64, seed int64) *reqGen {
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	return &reqGen{
		rng: rand.New(rand.NewSource(seed)), mix: mix, total: total, unique: unique,
		body: serve.ColorRequest{Alg: alg, Policy: policy, Priority: priority, TimeoutMS: timeoutMS},
	}
}

// baselineVariant returns a generator over the same mix whose requests
// bypass cache and coalescing — the serial cmd/gcolor regime.
func (g *reqGen) baselineVariant() *reqGen {
	b := newReqGen(g.mix, g.unique, g.body.Alg, g.body.Policy, g.body.Priority, g.body.TimeoutMS, g.rng.Int63())
	b.body.NoCache = true
	if g.binary {
		b.useBinaryWire()
	}
	return b
}

// useBinaryWire switches the generator to the binary CSR wire format:
// every request body becomes an application/x-gcolor-csr frame and the
// option fields move into a query string built once here.
func (g *reqGen) useBinaryWire() {
	g.binary = true
	g.frames = make(map[string][]byte)
	q := url.Values{}
	for k, v := range map[string]string{
		"alg": g.body.Alg, "policy": g.body.Policy, "priority": g.body.Priority,
	} {
		if v != "" {
			q.Set(k, v)
		}
	}
	if g.body.TimeoutMS > 0 {
		q.Set("timeout_ms", strconv.FormatInt(g.body.TimeoutMS, 10))
	}
	if g.body.NoCache {
		q.Set("no_cache", "true")
	}
	g.binQuery = q.Encode()
}

// next returns one prepared request for the configured wire format.
func (g *reqGen) next() loadReq {
	g.mu.Lock()
	pick := g.rng.Intn(g.total)
	uniq := g.rng.Float64() < g.unique
	g.mu.Unlock()
	spec := ""
	for _, m := range g.mix {
		if pick < m.weight {
			spec = m.spec
			break
		}
		pick -= m.weight
	}
	if uniq {
		spec = reseedSpec(spec, g.uniqueID.Add(1))
	}
	if g.binary {
		return loadReq{body: g.frameFor(spec), contentType: serve.ContentTypeBinaryCSR, query: g.binQuery}
	}
	body := g.body
	body.Gen = spec
	b, _ := json.Marshal(&body)
	return loadReq{body: b}
}

// frameFor returns the memoized binary CSR frame for spec, generating it
// on first use. Cache-busting unique seeds make the spec space unbounded,
// so the memo resets past a residency cap instead of growing forever.
func (g *reqGen) frameFor(spec string) []byte {
	g.mu.Lock()
	if f, ok := g.frames[spec]; ok {
		g.mu.Unlock()
		return f
	}
	g.mu.Unlock()
	gr, err := serve.ParseGraphSpec(spec)
	if err != nil {
		fatal(fmt.Errorf("generate %q: %v", spec, err))
	}
	f := graph.EncodeWireCSR(gr)
	g.mu.Lock()
	if len(g.frames) >= 4096 {
		g.frames = make(map[string][]byte)
	}
	g.frames[spec] = f
	g.mu.Unlock()
	return f
}

// reseedSpec swaps the trailing seed field of a seeded spec for id, making
// the graph (and so its fingerprint) unique. Specs without a seed field
// (grid, complete, ...) are returned unchanged.
func reseedSpec(spec string, id int64) string {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "rmat", "gnm", "ba": // kind:a:b[:seed]
		if len(parts) >= 4 {
			parts = parts[:3]
		}
	case "ws": // ws:n:k:beta[:seed]
		if len(parts) >= 5 {
			parts = parts[:4]
		}
	default:
		return spec
	}
	return strings.Join(parts, ":") + ":" + strconv.FormatInt(1000+id, 10)
}

type reqResult struct {
	lat        time.Duration
	ok         bool
	kind       string
	status     int           // HTTP status of the last attempt (0 = transport failure)
	retryAfter time.Duration // server's Retry-After hint, when it sent one
	cached     bool
	coalesced  bool
	worker     string // cluster only: worker that served a routed job
	scattered  bool   // cluster only: job was scatter-gathered across workers

	retries int           // extra attempts this request needed
	backoff time.Duration // total time slept between attempts
}

// retryPolicy is the client-side backoff discipline: full-jitter
// exponential delays, overridden upward by the server's Retry-After hint
// when it sends one (the server knows its queue; the client only knows
// its attempt count). Zero max means single-attempt (the pre-backoff
// behaviour, kept for the drills that manage retries themselves).
type retryPolicy struct {
	max  int           // retry attempts after the first try
	base time.Duration // first-retry delay ceiling
	cap  time.Duration // per-delay ceiling
}

// retryPol is set once from flags before any load runs.
var retryPol retryPolicy

// retryable reports whether another attempt could succeed: transport
// failures, overload rejections, and server-side errors. 4xx other than
// 429 would fail identically every time.
func (r reqResult) retryable() bool {
	return r.status == 0 || r.status == http.StatusTooManyRequests || r.status >= 500
}

// delay computes the sleep before retry #attempt (0-based): full jitter
// over an exponentially growing window, floored by the server's hint.
func (p retryPolicy) delay(attempt int, hint time.Duration) time.Duration {
	window := p.base << attempt
	if window > p.cap || window <= 0 {
		window = p.cap
	}
	d := time.Duration(rand.Int63n(int64(window) + 1))
	if hint > 0 {
		if hint > p.cap {
			hint = p.cap
		}
		if d < hint {
			d = hint
		}
	}
	return d
}

// doWithRetry runs one logical request through the retry policy. The
// reported latency is the last attempt's alone; the time spent backing
// off is accounted separately so overload windows show up as backoff,
// not as phantom tail latency.
func doWithRetry(client *http.Client, addr string, lr loadReq) reqResult {
	var backoff time.Duration
	for attempt := 0; ; attempt++ {
		r := doRequest(client, addr, lr)
		r.retries, r.backoff = attempt, backoff
		if r.ok || attempt >= retryPol.max || !r.retryable() {
			return r
		}
		d := retryPol.delay(attempt, r.retryAfter)
		time.Sleep(d)
		backoff += d
	}
}

// endpoint buckets a successful response for the per-endpoint report.
// Empty means the target is a plain gcolord (no Worker/Scattered fields),
// and the report is suppressed entirely.
func (r reqResult) endpoint() string {
	switch {
	case r.scattered:
		return "scatter"
	case r.worker != "":
		return r.worker
	case r.cached:
		return "coordinator"
	}
	return ""
}

func doRequest(client *http.Client, addr string, lr loadReq) reqResult {
	url := addr + "/color"
	if lr.query != "" {
		url += "?" + lr.query
	}
	ct := lr.contentType
	if ct == "" {
		ct = "application/json"
	}
	start := time.Now()
	resp, err := client.Post(url, ct, bytes.NewReader(lr.body))
	r := reqResult{lat: time.Since(start)}
	if err != nil {
		r.kind = "transport"
		return r
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var cr serve.ColorResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			r.kind = "decode"
			return r
		}
		r.lat = time.Since(start)
		r.ok, r.cached, r.coalesced = true, cr.Cached, cr.Coalesced
		r.worker, r.scattered = cr.Worker, cr.Scattered
		return r
	}
	var er struct {
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Kind == "" {
		er.Kind = fmt.Sprintf("http_%d", resp.StatusCode)
	}
	r.lat = time.Since(start)
	r.kind = er.Kind
	r.status = resp.StatusCode
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			r.retryAfter = time.Duration(secs) * time.Second
		}
	}
	return r
}

// runClosed keeps conc requests in flight until n requests have been sent
// (n > 0) or d has elapsed.
func runClosed(client *http.Client, addr string, gen *reqGen, conc, n int, d time.Duration) summary {
	var sent atomic.Int64
	results := make(chan reqResult, 1024)
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if n > 0 {
					if sent.Add(1) > int64(n) {
						return
					}
				} else if !time.Now().Before(stop) {
					return
				}
				results <- doWithRetry(client, addr, gen.next())
			}
		}()
	}
	done := make(chan struct{})
	var sum summary
	var lats []time.Duration
	eps := map[string][]time.Duration{}
	go func() {
		defer close(done)
		for r := range results {
			collect(&sum, &lats, eps, r)
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	<-done
	finalize(&sum, lats, eps, elapsed)
	return sum
}

// runOpen fires requests at a fixed rate, never waiting for completions
// (in-flight count is unbounded up to the daemon's admission control).
func runOpen(client *http.Client, addr string, gen *reqGen, rate float64, n int, d time.Duration) summary {
	if rate <= 0 {
		fatal(fmt.Errorf("open-loop rate must be > 0"))
	}
	interval := time.Duration(float64(time.Second) / rate)
	results := make(chan reqResult, 4096)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(d)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	fired := 0
	for now := range tick.C {
		if n > 0 && fired >= n {
			break
		}
		if n == 0 && now.After(stop) {
			break
		}
		fired++
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- doWithRetry(client, addr, gen.next())
		}()
	}
	done := make(chan struct{})
	var sum summary
	var lats []time.Duration
	eps := map[string][]time.Duration{}
	go func() {
		defer close(done)
		for r := range results {
			collect(&sum, &lats, eps, r)
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	<-done
	finalize(&sum, lats, eps, elapsed)
	return sum
}

func collect(sum *summary, lats *[]time.Duration, eps map[string][]time.Duration, r reqResult) {
	sum.Requests++
	if r.retries > 0 {
		sum.Retried++
		sum.Retries += int64(r.retries)
		sum.BackoffMS += r.backoff.Milliseconds()
	}
	if r.ok {
		sum.OK++
		if r.cached {
			sum.Cached++
		}
		if r.coalesced {
			sum.Coalesced++
		}
		*lats = append(*lats, r.lat)
		if ep := r.endpoint(); ep != "" {
			eps[ep] = append(eps[ep], r.lat)
		}
		return
	}
	if sum.Errors == nil {
		sum.Errors = map[string]int64{}
	}
	sum.Errors[r.kind]++
}

func finalize(sum *summary, lats []time.Duration, eps map[string][]time.Duration, elapsed time.Duration) {
	sum.DurationSec = elapsed.Seconds()
	if elapsed > 0 {
		sum.Throughput = float64(sum.OK) / elapsed.Seconds()
	}
	sum.LatencyUS = map[string]int64{}
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	pct := func(p float64) int64 {
		i := int(p * float64(len(lats)-1))
		return lats[i].Microseconds()
	}
	sum.LatencyUS["p50"] = pct(0.50)
	sum.LatencyUS["p90"] = pct(0.90)
	sum.LatencyUS["p99"] = pct(0.99)
	sum.LatencyUS["mean"] = (total / time.Duration(len(lats))).Microseconds()
	sum.LatencyUS["max"] = lats[len(lats)-1].Microseconds()

	// The per-endpoint breakdown only exists against a cluster coordinator:
	// a plain gcolord never stamps Worker/Scattered, so the sole possible
	// bucket is "coordinator" (cache hits) and the report is suppressed.
	onlyLocal := true
	for k := range eps {
		if k != "coordinator" {
			onlyLocal = false
			break
		}
	}
	if len(eps) == 0 || onlyLocal {
		return
	}
	sum.Endpoints = make(map[string]endpointStat, len(eps))
	for ep, el := range eps {
		sort.Slice(el, func(i, j int) bool { return el[i] < el[j] })
		var t time.Duration
		for _, l := range el {
			t += l
		}
		sum.Endpoints[ep] = endpointStat{
			Requests: int64(len(el)),
			P50US:    el[int(0.50*float64(len(el)-1))].Microseconds(),
			P99US:    el[int(0.99*float64(len(el)-1))].Microseconds(),
			MeanUS:   (t / time.Duration(len(el))).Microseconds(),
			MaxUS:    el[len(el)-1].Microseconds(),
		}
	}
}

// fetchServerMetrics scrapes the daemon's /metricsz into a flat map.
func fetchServerMetrics(client *http.Client, addr string) map[string]float64 {
	resp, err := client.Get(addr + "/metricsz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(b), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out
}

func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			w, err = strconv.Atoi(wstr)
			if err != nil || w < 1 {
				return nil, fmt.Errorf("gcload: bad mix weight in %q", part)
			}
		}
		if _, err := serve.ParseGraphSpec(spec); err != nil {
			return nil, fmt.Errorf("gcload: bad mix spec %q: %v", spec, err)
		}
		mix = append(mix, mixEntry{spec: spec, weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("gcload: empty mix")
	}
	return mix, nil
}

func waitHealthy(client *http.Client, addr string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("gcload: %s/healthz not healthy after %v (last error: %v)", addr, d, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func us(v int64) string { return (time.Duration(v) * time.Microsecond).String() }

// trimScheme shortens endpoint keys for the console report.
func trimScheme(s string) string {
	s = strings.TrimPrefix(s, "http://")
	return strings.TrimPrefix(s, "https://")
}

func printSummary(s *summary) {
	fmt.Printf("\n%-22s %s\n", "mode", s.Mode)
	fmt.Printf("%-22s %.2fs\n", "duration", s.DurationSec)
	fmt.Printf("%-22s %d (%d ok, %d cached, %d coalesced)\n", "requests", s.Requests, s.OK, s.Cached, s.Coalesced)
	if len(s.Errors) > 0 {
		keys := make([]string, 0, len(s.Errors))
		for k := range s.Errors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%-22s %d\n", "errors."+k, s.Errors[k])
		}
	}
	if s.Retried > 0 {
		fmt.Printf("%-22s %d requests retried (%d extra attempts, %s backing off)\n",
			"backoff", s.Retried, s.Retries, time.Duration(s.BackoffMS)*time.Millisecond)
	}
	fmt.Printf("%-22s %.1f req/s\n", "throughput", s.Throughput)
	for _, q := range []string{"p50", "p90", "p99", "mean", "max"} {
		if v, ok := s.LatencyUS[q]; ok {
			fmt.Printf("%-22s %s\n", "latency."+q, us(v))
		}
	}
	if len(s.Endpoints) > 0 {
		eps := make([]string, 0, len(s.Endpoints))
		for ep := range s.Endpoints {
			eps = append(eps, ep)
		}
		sort.Strings(eps)
		for _, ep := range eps {
			st := s.Endpoints[ep]
			fmt.Printf("%-22s %d reqs  p50 %s  p99 %s  mean %s\n",
				"endpoint."+trimScheme(ep), st.Requests, us(st.P50US), us(st.P99US), us(st.MeanUS))
		}
	}
	for _, k := range []string{
		"cache_hit_rate", "shed_total", "queue_full_total", "device_utilization",
		"coalesced_total", "deadline_expired_total", "shed_expired",
		"hedges_total", "hedge_wins_total", "hedge_losses_total",
		"quarantines_total", "readmitted_total", "probes_total", "quarantined",
		"cluster_workers", "cluster_alive_workers", "cluster_jobs_total",
		"cluster_routed_total", "cluster_scattered_total", "cluster_failed_total",
		"cluster_route_failovers_total", "cluster_redispatches_total",
		"cluster_quarantines_total", "cluster_cache_hits_total",
	} {
		if v, ok := s.Server[k]; ok {
			fmt.Printf("%-22s %g\n", "server."+k, v)
		}
	}
	// Per-device self-healing lines, in device order.
	for i := 0; ; i++ {
		h, ok := s.Server[fmt.Sprintf("device_health_%d", i)]
		if !ok {
			break
		}
		b := s.Server[fmt.Sprintf("device_breaker_%d", i)]
		fmt.Printf("%-22s %.3f (breaker %s)\n", fmt.Sprintf("server.device_%d", i), h, breakerName(int(b)))
	}
	if s.BaselineRPS > 0 {
		fmt.Printf("%-22s %.1f req/s\n", "baseline", s.BaselineRPS)
		fmt.Printf("%-22s %.2fx\n", "speedup", s.Speedup)
	}
}

func breakerName(v int) string {
	switch v {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	}
	return "unknown"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gcload: %v\n", err)
	os.Exit(2)
}
