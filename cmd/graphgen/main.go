// Command graphgen generates the synthetic graphs used throughout the
// evaluation and writes them in edge-list or DIMACS format.
//
// Usage:
//
//	graphgen -type rmat -scale 14 -edgefactor 16 -o rmat14.el
//	graphgen -type grid2d -rows 128 -cols 128 -format dimacs -o grid.col
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
)

func main() {
	var (
		typ        = flag.String("type", "rmat", "graph type: rmat, gnm, grid2d, grid3d, geo, ws, ba, star, path, cycle, complete")
		n          = flag.Int("n", 16384, "vertex count (gnm, geo, ws, ba, star, path, cycle, complete)")
		m          = flag.Int("m", 0, "edge count (gnm; default 12n)")
		scale      = flag.Int("scale", 14, "log2 vertex count (rmat)")
		edgeFactor = flag.Int("edgefactor", 16, "edges per vertex (rmat)")
		rows       = flag.Int("rows", 128, "rows (grid2d)")
		cols       = flag.Int("cols", 128, "cols (grid2d)")
		dimX       = flag.Int("x", 25, "x extent (grid3d)")
		dimY       = flag.Int("y", 25, "y extent (grid3d)")
		dimZ       = flag.Int("z", 25, "z extent (grid3d)")
		avgDeg     = flag.Float64("avgdeg", 10, "target average degree (geo)")
		k          = flag.Int("k", 12, "ring neighbours (ws)")
		beta       = flag.Float64("beta", 0.05, "rewire probability (ws)")
		attach     = flag.Int("attach", 8, "edges per new vertex (ba)")
		seed       = flag.Int64("seed", 1, "generator seed")
		format     = flag.String("format", "edgelist", "output format: edgelist or dimacs")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	// The gen package treats out-of-domain parameters as programmer error
	// and panics (see its package comment); flags are user input, so every
	// precondition is checked here and reported as a normal CLI error.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
		os.Exit(2)
	}
	if *n < 0 || *m < 0 || *rows < 0 || *cols < 0 || *dimX < 0 || *dimY < 0 || *dimZ < 0 {
		fail("sizes must be non-negative")
	}

	var g *graph.Graph
	switch *typ {
	case "rmat":
		if *scale < 0 || *scale > 30 {
			fail("-scale %d out of range [0,30]", *scale)
		}
		if *edgeFactor < 0 {
			fail("-edgefactor must be non-negative")
		}
		g = gen.RMAT(*scale, *edgeFactor, gen.Graph500, *seed)
	case "gnm":
		edges := *m
		if edges == 0 {
			edges = 12 * *n
		}
		if *n == 0 && edges > 0 {
			fail("-n 0 cannot carry edges")
		}
		g = gen.GNM(*n, edges, *seed)
	case "grid2d":
		g = gen.Grid2D(*rows, *cols)
	case "grid3d":
		g = gen.Grid3D(*dimX, *dimY, *dimZ)
	case "geo":
		if *avgDeg <= 0 {
			fail("-avgdeg must be positive")
		}
		r := math.Sqrt(*avgDeg / (math.Pi * float64(*n)))
		g = gen.RandomGeometric(*n, r, *seed)
	case "ws":
		if *k%2 != 0 || *k < 0 {
			fail("-k %d must be even and non-negative", *k)
		}
		if *k >= *n {
			fail("-k %d must be below -n %d", *k, *n)
		}
		if *beta < 0 || *beta > 1 {
			fail("-beta %g must be in [0,1]", *beta)
		}
		g = gen.WattsStrogatz(*n, *k, *beta, *seed)
	case "ba":
		if *attach < 1 || *attach >= *n {
			fail("-attach %d must be in [1,%d)", *attach, *n)
		}
		g = gen.BarabasiAlbert(*n, *attach, *seed)
	case "star":
		g = gen.Star(*n)
	case "path":
		g = gen.Path(*n)
	case "cycle":
		if *n < 3 {
			fail("-n %d too small for a cycle (need >= 3)", *n)
		}
		g = gen.Cycle(*n)
	case "complete":
		g = gen.Complete(*n)
	default:
		fail("unknown type %q", *typ)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "edgelist":
		err = graph.WriteEdgeList(w, g)
	case "dimacs":
		err = graph.WriteDIMACS(w, g)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	st := g.Stats()
	fmt.Fprintf(os.Stderr, "graphgen: %s n=%d m=%d degrees min/avg/max=%d/%.1f/%d cv=%.2f\n",
		*typ, g.NumVertices(), g.NumEdges(), st.Min, st.Mean, st.Max, st.CV)
}
