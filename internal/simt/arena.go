package simt

import (
	"math/bits"
	"sync"
)

// Device memory arena. Repeated kernel launches over same-sized graphs used
// to rebuild every device buffer from scratch — seven O(n) allocations per
// coloring run, plus scan scratch per compaction and stats slices per
// launch — which made the host-side GC the bottleneck of the serving hot
// path. The arena turns AllocInt32 into a size-bucketed free list: Release
// returns a buffer (poisoned, so use-after-release is loud rather than
// subtle), and the next AllocInt32 of any size that fits the bucket reuses
// the backing array after re-zeroing it. Buffers that are never released
// behave exactly as before — pooling is opt-in per buffer, and the arena
// only ever hands out memory that was explicitly given back.
//
// Determinism: a reused buffer gets a fresh id from the device's id
// counter, exactly like a fresh allocation. Segment keys in the coalescing
// and cache models depend on ids only through equality, so arena reuse is
// invisible to the cost model — runs on a warm arena are bit-identical to
// runs on a cold one.

// poisonValue fills released buffers. Any kernel that reads a released
// buffer sees this pattern instead of another job's data; tests assert its
// absence to prove pooled runners do not leak state across jobs.
const poisonValue = int32(-0x21524111) // 0xDEADBEEF

// PoisonValue returns the sentinel written over released arena buffers
// (exposed for leak tests).
func PoisonValue() int32 { return poisonValue }

// ArenaStats is a point-in-time summary of a device arena.
type ArenaStats struct {
	// Allocs counts AllocInt32 calls served by a fresh heap allocation;
	// Reuses those served from the free list; Releases the buffers given
	// back.
	Allocs   int64
	Reuses   int64
	Releases int64
	// PooledBufs and PooledBytes describe the free list right now.
	PooledBufs  int
	PooledBytes int64
}

// arena is the size-bucketed free list behind Device.AllocInt32. Buckets
// are indexed by ceil-log2 of the capacity, so any released buffer serves
// later requests up to its capacity class.
type arena struct {
	mu      sync.Mutex
	buckets [33][]*BufInt32
	stats   ArenaStats
}

// bucketFor returns the bucket index of a capacity (ceil-log2, min 0).
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// take pops a pooled buffer whose capacity fits n, or returns nil.
// The caller re-zeroes and re-slices it.
func (a *arena) take(n int) *BufInt32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	for c := bucketFor(n); c < len(a.buckets); c++ {
		if l := len(a.buckets[c]); l > 0 {
			b := a.buckets[c][l-1]
			a.buckets[c][l-1] = nil
			a.buckets[c] = a.buckets[c][:l-1]
			a.stats.Reuses++
			a.stats.PooledBufs--
			a.stats.PooledBytes -= 4 * int64(cap(b.data))
			return b
		}
	}
	a.stats.Allocs++
	return nil
}

func (a *arena) put(b *BufInt32) {
	c := bucketFor(cap(b.data))
	a.mu.Lock()
	a.buckets[c] = append(a.buckets[c], b)
	a.stats.Releases++
	a.stats.PooledBufs++
	a.stats.PooledBytes += 4 * int64(cap(b.data))
	a.mu.Unlock()
}

func (a *arena) reset() {
	a.mu.Lock()
	for i := range a.buckets {
		a.buckets[i] = nil
	}
	a.stats.PooledBufs = 0
	a.stats.PooledBytes = 0
	a.mu.Unlock()
}

func (a *arena) snapshot() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Release poisons b and returns its backing array to the device arena for
// reuse by a later AllocInt32. Only arena-allocated buffers may be
// released; releasing a bound buffer would poison memory the caller still
// owns (a graph's CSR arrays, say), so that is a panic, as is releasing
// the same buffer twice. After Release the buffer must not be used.
func (d *Device) Release(b *BufInt32) {
	if !b.pooled {
		panic("simt: Release of a buffer not allocated by AllocInt32")
	}
	if b.released {
		panic("simt: double Release of device buffer")
	}
	b.released = true
	full := b.data[:cap(b.data)]
	for i := range full {
		full[i] = poisonValue
	}
	b.data = full
	d.arena.put(b)
}

// ResetArena drops every pooled buffer, returning the memory to the Go
// heap. Outstanding (un-released) buffers are unaffected.
func (d *Device) ResetArena() { d.arena.reset() }

// ArenaStats snapshots the device arena counters.
func (d *Device) ArenaStats() ArenaStats { return d.arena.snapshot() }

// Rebind points an existing bound buffer at a new backing slice, assigning
// a fresh buffer id (the id only needs to be distinct within a launch for
// the coalescing model; a rebound buffer is, for the simulator, a new
// buffer). It exists so long-lived runners can re-target their CSR views at
// a new graph without allocating new buffer headers. Arena-allocated
// buffers cannot be rebound — their backing array belongs to the arena.
func (d *Device) Rebind(b *BufInt32, data []int32) {
	if b.pooled {
		panic("simt: Rebind of an arena-allocated buffer")
	}
	b.id = d.nextBuf.Add(1)
	b.data = data
}

// --- pooled []int64 scratch for launch statistics ---

// i64pool recycles the per-launch int64 slices (GroupCost, WavefrontCost,
// CUBusy/CUFinish) so steady-state kernel launches stop churning the GC.
// Buckets by ceil-log2 capacity, same scheme as the buffer arena.
type i64pool struct {
	mu      sync.Mutex
	buckets [33][][]int64
}

// get returns a zeroed slice of length n (capacity possibly larger).
func (p *i64pool) get(n int) []int64 {
	if n == 0 {
		return nil
	}
	p.mu.Lock()
	for c := bucketFor(n); c < len(p.buckets); c++ {
		if l := len(p.buckets[c]); l > 0 {
			s := p.buckets[c][l-1]
			p.buckets[c][l-1] = nil
			p.buckets[c] = p.buckets[c][:l-1]
			p.mu.Unlock()
			s = s[:n]
			for i := range s {
				s[i] = 0
			}
			return s
		}
	}
	p.mu.Unlock()
	return make([]int64, n, 1<<bucketFor(n))
}

// getCap returns an empty slice with at least the given capacity, for
// append-style accumulation (WavefrontCost).
func (p *i64pool) getCap(c int) []int64 {
	if c == 0 {
		return nil
	}
	return p.get(c)[:0]
}

func (p *i64pool) put(s []int64) {
	if cap(s) == 0 {
		return
	}
	// File under floor-log2 of the capacity: every slice in class c then has
	// cap >= 1<<c, so get can reslice any class-c entry to any n with
	// bucketFor(n) == c. (Ceil-log2 would admit, say, a cap-5 slice into the
	// class that serves n=8.)
	c := bits.Len(uint(cap(s))) - 1
	s = s[:0]
	p.mu.Lock()
	p.buckets[c] = append(p.buckets[c], s)
	p.mu.Unlock()
}

// Recycle returns rr's statistics slices (and the RunResult header itself)
// to the device's launch pools and clears them. Callers that fold a
// launch's numbers into their own accounting and have no further use for
// the RunResult call this to make steady-state launches allocation-free;
// callers that retain RunResults simply never call it and nothing changes.
// The RunResult and its slices must not be used after Recycle.
func (d *Device) Recycle(rr *RunResult) {
	if rr == nil {
		return
	}
	d.i64s.put(rr.Stats.GroupCost)
	d.i64s.put(rr.Stats.WavefrontCost)
	d.i64s.put(rr.Sched.CUBusy)
	d.i64s.put(rr.Sched.CUFinish)
	*rr = RunResult{}
	d.runResults.Put(rr)
}

// getRunResult returns a cleared RunResult header from the device pool.
func (d *Device) getRunResult() *RunResult {
	if v := d.runResults.Get(); v != nil {
		return v.(*RunResult)
	}
	return &RunResult{}
}

// --- pooled phase-A worker scratch ---

// workerScratch is the per-worker execution state of one phase-A worker:
// the wavefront accumulators, the segment cache, and the worker-local
// stats it merges into the launch totals. Pooled per device; entries whose
// geometry no longer matches the device configuration are dropped.
type workerScratch struct {
	width int
	segs  int
	wfs   []*wfAcc // data-parallel kernels use wfs[0]; coop kernels all of them
	cache *segCache
	local KernelStats
	gctx  GroupCtx // reusable cooperative group context
	lds   ldsArena // backing store for AllocLDS, reset per group
}

// getWorkerScratch returns scratch with nWfs wavefront accumulators of the
// device's current width and a segment cache of the current geometry.
func (d *Device) getWorkerScratch(nWfs int) *workerScratch {
	width, segs := d.WavefrontWidth, d.Cost.CacheSegments
	if v := d.workers_.Get(); v != nil {
		ws := v.(*workerScratch)
		if ws.width == width && ws.segs == segs {
			for len(ws.wfs) < nWfs {
				ws.wfs = append(ws.wfs, newWfAcc(width))
			}
			wc := ws.local.WavefrontCost[:0]
			ws.local = KernelStats{width: width, WavefrontCost: wc}
			return ws
		}
	}
	ws := &workerScratch{width: width, segs: segs, cache: newSegCache(segs)}
	ws.local = KernelStats{width: width}
	for len(ws.wfs) < nWfs {
		ws.wfs = append(ws.wfs, newWfAcc(width))
	}
	return ws
}

func (d *Device) putWorkerScratch(ws *workerScratch) {
	d.workers_.Put(ws)
}

