package simt

// Optional read-cache model. When CostModel.CacheSegments > 0, each
// workgroup execution carries a FIFO set of recently touched memory
// segments (approximating the reuse a CU's L1 captures while the group is
// resident); a transaction whose segment is cached costs MemPerHit instead
// of MemPerTransaction. The cache is per workgroup, not per CU, so the
// model stays independent of scheduling (phase A records costs before the
// scheduling policy is simulated — see the package comment).

// segCache is a fixed-capacity FIFO set of segment ids.
type segCache struct {
	cap     int
	ring    []uint64
	next    int
	present map[uint64]int // seg -> count of live ring entries
}

func newSegCache(capacity int) *segCache {
	if capacity <= 0 {
		return nil
	}
	return &segCache{
		cap:     capacity,
		ring:    make([]uint64, 0, capacity),
		present: make(map[uint64]int, capacity),
	}
}

func (c *segCache) reset() {
	if c == nil {
		return
	}
	c.ring = c.ring[:0]
	c.next = 0
	clear(c.present)
}

// touch returns whether seg was cached, inserting it either way.
func (c *segCache) touch(seg uint64) bool {
	if c == nil {
		return false
	}
	if c.present[seg] > 0 {
		return true
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, seg)
	} else {
		old := c.ring[c.next]
		if n := c.present[old] - 1; n > 0 {
			c.present[old] = n
		} else {
			delete(c.present, old)
		}
		c.ring[c.next] = seg
		c.next = (c.next + 1) % c.cap
	}
	c.present[seg]++
	return false
}
