package simt

// Optional read-cache model. When CostModel.CacheSegments > 0, each
// workgroup execution carries a FIFO set of recently touched memory
// segments (approximating the reuse a CU's L1 captures while the group is
// resident); a transaction whose segment is cached costs MemPerHit instead
// of MemPerTransaction. The cache is per workgroup, not per CU, so the
// model stays independent of scheduling (phase A records costs before the
// scheduling policy is simulated — see the package comment).

// segCache is a fixed-capacity FIFO set of segment ids.
//
// Membership is tracked by an open-addressed seg -> ring-slot table rather
// than a Go map: touch runs once per simulated memory transaction, hot
// enough that map hashing dominated serving profiles. A table entry is live
// iff the ring slot it names still holds its key, so FIFO eviction needs no
// table deletion — the evicted segment's entry goes stale on its own and is
// swept by rebuilding from the ring once stale entries fill half the table.
type segCache struct {
	cap  int
	ring []uint64
	next int

	keys  []uint64
	slots []int32 // ring index per key, -1 = empty table slot
	used  int     // occupied table slots, live or stale
	shift uint    // 64 - log2(len(keys)), for the fibonacci hash
}

const segHashMul = 0x9E3779B97F4A7C15 // 2^64 / golden ratio

func newSegCache(capacity int) *segCache {
	if capacity <= 0 {
		return nil
	}
	// Table at least 4x capacity: rebuilds start from <= 25% load, and the
	// 50% rebuild trigger then guarantees an empty slot for every probe.
	tabBits := 3
	for 1<<tabBits < 4*capacity {
		tabBits++
	}
	c := &segCache{
		cap:   capacity,
		ring:  make([]uint64, 0, capacity),
		keys:  make([]uint64, 1<<tabBits),
		slots: make([]int32, 1<<tabBits),
		shift: uint(64 - tabBits),
	}
	for i := range c.slots {
		c.slots[i] = -1
	}
	return c
}

func (c *segCache) reset() {
	if c == nil {
		return
	}
	c.ring = c.ring[:0]
	c.next = 0
	for i := range c.slots {
		c.slots[i] = -1
	}
	c.used = 0
}

// find probes for seg, returning either the slot holding its key (found)
// or the empty slot where it belongs (not found).
func (c *segCache) find(seg uint64) (int, bool) {
	mask := uint64(len(c.keys) - 1)
	i := (seg * segHashMul) >> c.shift
	for {
		if c.slots[i] < 0 {
			return int(i), false
		}
		if c.keys[i] == seg {
			return int(i), true
		}
		i = (i + 1) & mask
	}
}

// rebuild resets the table and reinserts only the segments live in the
// ring, discarding stale entries left behind by FIFO eviction.
func (c *segCache) rebuild() {
	for i := range c.slots {
		c.slots[i] = -1
	}
	c.used = 0
	mask := uint64(len(c.keys) - 1)
	for idx, seg := range c.ring {
		i := (seg * segHashMul) >> c.shift
		for c.slots[i] >= 0 {
			i = (i + 1) & mask
		}
		c.keys[i] = seg
		c.slots[i] = int32(idx)
		c.used++
	}
}

// touch returns whether seg was cached, inserting it either way.
func (c *segCache) touch(seg uint64) bool {
	if c == nil {
		return false
	}
	i, found := c.find(seg)
	if found && c.ring[c.slots[i]] == seg {
		return true
	}
	var ringIdx int32
	if len(c.ring) < c.cap {
		ringIdx = int32(len(c.ring))
		c.ring = append(c.ring, seg)
	} else {
		ringIdx = int32(c.next)
		c.ring[c.next] = seg
		c.next = (c.next + 1) % c.cap
	}
	if found {
		// Stale entry for the same segment: revive it in place.
		c.slots[i] = ringIdx
		return false
	}
	if 2*(c.used+1) > len(c.keys) {
		c.rebuild()
		i, _ = c.find(seg)
	}
	c.keys[i] = seg
	c.slots[i] = ringIdx
	c.used++
	return false
}
