package simt

import (
	"testing"
)

// TestArenaReuse: a released buffer's backing array serves the next
// allocation of any size that fits its capacity class, zeroed.
func TestArenaReuse(t *testing.T) {
	d := NewDevice()
	b := d.AllocInt32(100)
	b.Data()[0] = 42
	first := &b.Data()[:cap(b.Data())][0]
	d.Release(b)

	b2 := d.AllocInt32(80) // smaller, same capacity class (128)
	if &b2.Data()[:cap(b2.Data())][0] != first {
		t.Fatalf("AllocInt32 after Release did not reuse the backing array")
	}
	if b2.Len() != 80 {
		t.Fatalf("reused buffer Len = %d, want 80", b2.Len())
	}
	for i, v := range b2.Data() {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed: [%d] = %d", i, v)
		}
	}
	st := d.ArenaStats()
	if st.Allocs != 1 || st.Reuses != 1 || st.Releases != 1 {
		t.Fatalf("ArenaStats = %+v, want Allocs=1 Reuses=1 Releases=1", st)
	}
	if st.PooledBufs != 0 || st.PooledBytes != 0 {
		t.Fatalf("ArenaStats pool = %+v, want empty after reuse", st)
	}
}

// TestArenaFreshIDs: reused buffers get fresh ids, so the coalescing model
// cannot alias a reused buffer with its previous life.
func TestArenaFreshIDs(t *testing.T) {
	d := NewDevice()
	b := d.AllocInt32(64)
	id1 := b.id
	d.Release(b)
	b2 := d.AllocInt32(64)
	if b2.id == id1 {
		t.Fatalf("reused buffer kept stale id %d", id1)
	}
}

// TestArenaPoison: Release fills the entire capacity with the poison
// pattern, so any use-after-release read is loudly wrong.
func TestArenaPoison(t *testing.T) {
	d := NewDevice()
	b := d.AllocInt32(10)
	data := b.Data()
	for i := range data {
		data[i] = int32(i + 1)
	}
	d.Release(b)
	full := data[:cap(data)]
	for i, v := range full {
		if v != PoisonValue() {
			t.Fatalf("released buffer [%d] = %#x, want poison %#x", i, v, PoisonValue())
		}
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestArenaMisuse: double release, releasing bound buffers, and rebinding
// arena buffers are all programming errors and panic.
func TestArenaMisuse(t *testing.T) {
	d := NewDevice()
	b := d.AllocInt32(8)
	d.Release(b)
	mustPanic(t, "double Release", func() { d.Release(b) })

	bound := d.BindInt32(make([]int32, 8))
	mustPanic(t, "Release of bound buffer", func() { d.Release(bound) })

	pooled := d.AllocInt32(8)
	mustPanic(t, "Rebind of arena buffer", func() { d.Rebind(pooled, make([]int32, 8)) })
}

// TestRebind retargets a bound buffer and refreshes its id.
func TestRebind(t *testing.T) {
	d := NewDevice()
	b := d.BindInt32([]int32{1, 2, 3})
	id1 := b.id
	d.Rebind(b, []int32{4, 5})
	if b.id == id1 {
		t.Fatalf("Rebind kept stale id")
	}
	if b.Len() != 2 || b.Data()[0] != 4 {
		t.Fatalf("Rebind did not retarget data: %v", b.Data())
	}
}

// TestResetArena drops pooled memory without touching live buffers.
func TestResetArena(t *testing.T) {
	d := NewDevice()
	live := d.AllocInt32(16)
	dead := d.AllocInt32(16)
	d.Release(dead)
	d.ResetArena()
	st := d.ArenaStats()
	if st.PooledBufs != 0 || st.PooledBytes != 0 {
		t.Fatalf("ResetArena left pool %+v", st)
	}
	live.Data()[0] = 7 // still usable
	b := d.AllocInt32(16)
	if got := d.ArenaStats().Allocs; got != 3 {
		t.Fatalf("alloc after reset should hit the heap: Allocs = %d, want 3", got)
	}
	_ = b
}

// TestRecycleRoundTrip: a recycled RunResult's slices serve the next launch
// without growing the heap, and results stay correct.
func TestRecycleRoundTrip(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	buf := d.AllocInt32(1024)
	run := func() int64 {
		rr := d.Run("touch", 1024, func(c *Ctx) {
			c.St(buf, c.Global, c.Global)
		})
		cycles := rr.Cycles()
		if len(rr.Stats.GroupCost) != rr.Stats.Groups {
			t.Fatalf("GroupCost len %d, want %d", len(rr.Stats.GroupCost), rr.Stats.Groups)
		}
		d.Recycle(rr)
		return cycles
	}
	first := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != first {
			t.Fatalf("recycled launch %d: cycles %d, want %d", i, got, first)
		}
	}
}

// TestSharedAccessCost: LdShared/StShared cost exactly what Ld/St cost —
// no AtomicOp charge — so fusing kernels onto shared color arrays is never
// penalised by the cost model for using well-defined host atomics.
func TestSharedAccessCost(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	n := 512
	a := d.AllocInt32(n)
	b := d.AllocInt32(n)

	plain := d.Run("plain", n, func(c *Ctx) {
		c.St(b, c.Global, c.Ld(a, c.Global)+1)
	})
	shared := d.Run("shared", n, func(c *Ctx) {
		c.StShared(b, c.Global, c.LdShared(a, c.Global)+1)
	})
	if plain.Cycles() != shared.Cycles() {
		t.Fatalf("shared access cycles = %d, plain = %d; want equal", shared.Cycles(), plain.Cycles())
	}
	if plain.Stats.Atomics != 0 || shared.Stats.Atomics != 0 {
		t.Fatalf("atomics counted: plain %d shared %d, want 0",
			plain.Stats.Atomics, shared.Stats.Atomics)
	}
	for i, v := range b.Data() {
		if v != 1 { // a is zeroed, so every element is 0+1
			t.Fatalf("shared store lost write at %d: %d", i, v)
		}
	}
}

// TestSharedAccessFaults: LdShared under an armed injector keys bit flips
// identically to Ld, and OOB shared accesses follow permissive semantics.
func TestSharedAccessFaults(t *testing.T) {
	da := NewDevice()
	db := NewDevice()
	da.Workers, db.Workers = 1, 1
	fa := NewFaultInjector(7, 0)
	fb := NewFaultInjector(7, 0)
	fa.BitFlipRate, fb.BitFlipRate = 0.5, 0.5
	da.Fault, db.Fault = fa, fb

	n := 256
	srcA, dstA := da.AllocInt32(n), da.AllocInt32(n)
	srcB, dstB := db.AllocInt32(n), db.AllocInt32(n)
	for i := 0; i < n; i++ {
		srcA.Data()[i] = int32(i)
		srcB.Data()[i] = int32(i)
	}
	da.Run("plain", n, func(c *Ctx) { c.St(dstA, c.Global, c.Ld(srcA, c.Global)) })
	db.Run("shared", n, func(c *Ctx) { c.StShared(dstB, c.Global, c.LdShared(srcB, c.Global)) })
	for i := 0; i < n; i++ {
		if dstA.Data()[i] != dstB.Data()[i] {
			t.Fatalf("fault divergence at %d: plain %d shared %d", i, dstA.Data()[i], dstB.Data()[i])
		}
	}

	// OOB shared accesses: poison reads, dropped writes, no panic.
	small := da.AllocInt32(4)
	out := da.AllocInt32(n)
	da.Run("oob", n, func(c *Ctx) {
		c.StShared(out, c.Global, c.LdShared(small, c.Global+1000))
		c.StShared(small, c.Global+1000, 1)
	})
	st := fa.Stats()
	if st.OOBReads == 0 || st.OOBWrites == 0 {
		t.Fatalf("OOB shared accesses not counted: %+v", st)
	}
}
