package simt

import "testing"

func BenchmarkKernelCoalesced(b *testing.B) {
	d := NewDevice()
	data := d.AllocInt32(1 << 16)
	for i := 0; i < b.N; i++ {
		d.Run("coalesced", 1<<16, func(c *Ctx) {
			c.Ld(data, c.Global)
		})
	}
}

func BenchmarkKernelScattered(b *testing.B) {
	d := NewDevice()
	data := d.AllocInt32(1 << 16)
	for i := 0; i < b.N; i++ {
		d.Run("scattered", 1<<16, func(c *Ctx) {
			c.Ld(data, (c.Global*7919)&(1<<16-1))
		})
	}
}

func BenchmarkKernelAtomics(b *testing.B) {
	d := NewDevice()
	ctr := d.AllocInt32(64)
	for i := 0; i < b.N; i++ {
		d.Run("atomics", 1<<14, func(c *Ctx) {
			c.AtomicAdd(ctr, c.Global&63, 1)
		})
	}
}

func BenchmarkCoopReduce(b *testing.B) {
	d := NewDevice()
	data := d.AllocInt32(1 << 14)
	for i := 0; i < b.N; i++ {
		d.RunCoop("reduce", 64, func(g *GroupCtx) {
			g.Any(1<<8, func(c *Ctx, j int32) bool {
				return c.Ld(data, (g.ID()<<8)+j) > 0
			})
		})
	}
}

func BenchmarkStealingSimulation(b *testing.B) {
	d := NewDevice()
	costs := make([]int64, 4096)
	for i := range costs {
		costs[i] = int64(i%97) * 100
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateSchedule(d, costs, Stealing)
	}
}
