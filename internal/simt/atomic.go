package simt

import "sync/atomic"

// Atomic operations. These are the only accesses that may race between
// work-items within one kernel launch (matching OpenCL semantics, and
// keeping the Go memory model happy under the race detector). Each costs a
// memory access plus the per-atomic serialization charge.

func (c *Ctx) atomicAccount(b *BufInt32, i int32) {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	c.wf.lanes[c.laneIdx].atomics++
}

// atomicOK reports whether the accounted atomic may touch memory; with a
// fault injector armed, out-of-range atomics are dropped (the lane sees 0)
// instead of panicking.
func (c *Ctx) atomicOK(b *BufInt32, i int32) bool {
	return c.fi == nil || c.fi.atomicOK(b, i)
}

// AtomicLoad returns element i of b with acquire semantics.
func (c *Ctx) AtomicLoad(b *BufInt32, i int32) int32 {
	c.atomicAccount(b, i)
	if !c.atomicOK(b, i) {
		return 0
	}
	return atomic.LoadInt32(&b.data[i])
}

// AtomicStore writes v to element i of b with release semantics.
func (c *Ctx) AtomicStore(b *BufInt32, i int32, v int32) {
	c.atomicAccount(b, i)
	if !c.atomicOK(b, i) {
		return
	}
	atomic.StoreInt32(&b.data[i], v)
}

// AtomicAdd adds delta to element i of b and returns the previous value
// (OpenCL atomic_add semantics).
func (c *Ctx) AtomicAdd(b *BufInt32, i int32, delta int32) int32 {
	c.atomicAccount(b, i)
	if !c.atomicOK(b, i) {
		return 0
	}
	return atomic.AddInt32(&b.data[i], delta) - delta
}

// AtomicCAS performs compare-and-swap on element i of b, returning the value
// observed before the operation (OpenCL atomic_cmpxchg semantics). With a
// fault injector armed the CAS may spuriously fail: memory is untouched and
// the lane observes the bitwise complement of its expected value.
func (c *Ctx) AtomicCAS(b *BufInt32, i int32, old, new int32) int32 {
	c.atomicAccount(b, i)
	if !c.atomicOK(b, i) {
		return 0
	}
	if c.fi != nil && c.fi.failCAS(c.launch, c.Global, int32(c.wf.lanes[c.laneIdx].atomics)) {
		return ^old
	}
	for {
		cur := atomic.LoadInt32(&b.data[i])
		if cur != old {
			return cur
		}
		if atomic.CompareAndSwapInt32(&b.data[i], old, new) {
			return old
		}
	}
}

// AtomicMax raises element i of b to at least v, returning the previous
// value.
func (c *Ctx) AtomicMax(b *BufInt32, i int32, v int32) int32 {
	c.atomicAccount(b, i)
	if !c.atomicOK(b, i) {
		return 0
	}
	for {
		cur := atomic.LoadInt32(&b.data[i])
		if cur >= v {
			return cur
		}
		if atomic.CompareAndSwapInt32(&b.data[i], cur, v) {
			return cur
		}
	}
}

// AtomicMin lowers element i of b to at most v, returning the previous
// value.
func (c *Ctx) AtomicMin(b *BufInt32, i int32, v int32) int32 {
	c.atomicAccount(b, i)
	if !c.atomicOK(b, i) {
		return 0
	}
	for {
		cur := atomic.LoadInt32(&b.data[i])
		if cur <= v {
			return cur
		}
		if atomic.CompareAndSwapInt32(&b.data[i], cur, v) {
			return cur
		}
	}
}
