package simt

import "sync/atomic"

// Atomic operations. These are the only accesses that may race between
// work-items within one kernel launch (matching OpenCL semantics, and
// keeping the Go memory model happy under the race detector). Each costs a
// memory access plus the per-atomic serialization charge.

func (c *Ctx) atomicAccount(b *BufInt32, i int32) {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	c.wf.lanes[c.laneIdx].atomics++
}

// AtomicLoad returns element i of b with acquire semantics.
func (c *Ctx) AtomicLoad(b *BufInt32, i int32) int32 {
	c.atomicAccount(b, i)
	return atomic.LoadInt32(&b.data[i])
}

// AtomicStore writes v to element i of b with release semantics.
func (c *Ctx) AtomicStore(b *BufInt32, i int32, v int32) {
	c.atomicAccount(b, i)
	atomic.StoreInt32(&b.data[i], v)
}

// AtomicAdd adds delta to element i of b and returns the previous value
// (OpenCL atomic_add semantics).
func (c *Ctx) AtomicAdd(b *BufInt32, i int32, delta int32) int32 {
	c.atomicAccount(b, i)
	return atomic.AddInt32(&b.data[i], delta) - delta
}

// AtomicCAS performs compare-and-swap on element i of b, returning the value
// observed before the operation (OpenCL atomic_cmpxchg semantics).
func (c *Ctx) AtomicCAS(b *BufInt32, i int32, old, new int32) int32 {
	c.atomicAccount(b, i)
	for {
		cur := atomic.LoadInt32(&b.data[i])
		if cur != old {
			return cur
		}
		if atomic.CompareAndSwapInt32(&b.data[i], old, new) {
			return old
		}
	}
}

// AtomicMax raises element i of b to at least v, returning the previous
// value.
func (c *Ctx) AtomicMax(b *BufInt32, i int32, v int32) int32 {
	c.atomicAccount(b, i)
	for {
		cur := atomic.LoadInt32(&b.data[i])
		if cur >= v {
			return cur
		}
		if atomic.CompareAndSwapInt32(&b.data[i], cur, v) {
			return cur
		}
	}
}

// AtomicMin lowers element i of b to at most v, returning the previous
// value.
func (c *Ctx) AtomicMin(b *BufInt32, i int32, v int32) int32 {
	c.atomicAccount(b, i)
	for {
		cur := atomic.LoadInt32(&b.data[i])
		if cur <= v {
			return cur
		}
		if atomic.CompareAndSwapInt32(&b.data[i], cur, v) {
			return cur
		}
	}
}
