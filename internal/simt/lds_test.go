package simt

import "testing"

// ldsDevice: 64-wide wavefronts so bank patterns are classic.
func ldsDevice() *Device {
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	return d
}

func TestLDSRoundTrip(t *testing.T) {
	d := ldsDevice()
	out := d.AllocInt32(64)
	d.RunCoop("lds-rt", 1, func(g *GroupCtx) {
		lds := g.AllocLDS(64)
		g.ForEach(64, func(c *Ctx, i int32) {
			c.LdsSt(lds, i, i*3)
		})
		g.Barrier()
		g.ForEach(64, func(c *Ctx, i int32) {
			c.St(out, i, c.LdsLd(lds, i))
		})
	})
	for i, v := range out.Data() {
		if v != int32(i*3) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
}

func TestLDSConflictFreeStride1(t *testing.T) {
	// 64 lanes, stride 1 over 32 banks: two distinct addresses per bank??
	// No — per *instruction* each lane makes one access; lanes 0..63 hit
	// addresses 0..63, so banks see exactly two distinct addresses each:
	// cost factor 2. A 32-lane wavefront would be conflict-free.
	d := ldsDevice()
	d.WavefrontWidth = 32
	d.WorkgroupSize = 32
	res := d.RunCoop("lds-s1", 1, func(g *GroupCtx) {
		lds := g.AllocLDS(32)
		g.ForEach(32, func(c *Ctx, i int32) {
			c.LdsSt(lds, i, i)
		})
	})
	want := d.Cost.LDSOp // one instruction, conflict-free
	if got := res.Stats.GroupCost[0]; got != want {
		t.Errorf("stride-1 LDS cost = %d, want %d", got, want)
	}
	if res.Stats.LDSAccesses != 32 {
		t.Errorf("LDSAccesses = %d, want 32", res.Stats.LDSAccesses)
	}
}

func TestLDSBankConflictStride32(t *testing.T) {
	// Stride 32 with 32 banks: every lane hits bank 0 at a distinct
	// address — full serialization.
	d := ldsDevice()
	d.WavefrontWidth = 32
	d.WorkgroupSize = 32
	res := d.RunCoop("lds-s32", 1, func(g *GroupCtx) {
		lds := g.AllocLDS(32 * 32)
		g.ForEach(32, func(c *Ctx, i int32) {
			c.LdsSt(lds, i*32, i)
		})
	})
	want := d.Cost.LDSOp * 32
	if got := res.Stats.GroupCost[0]; got != want {
		t.Errorf("stride-32 LDS cost = %d, want %d (full conflict)", got, want)
	}
}

func TestLDSBroadcastIsFree(t *testing.T) {
	// All lanes reading the same address is a broadcast: cost factor 1.
	d := ldsDevice()
	d.WavefrontWidth = 32
	d.WorkgroupSize = 32
	res := d.RunCoop("lds-bcast", 1, func(g *GroupCtx) {
		lds := g.AllocLDS(4)
		g.ForEach(32, func(c *Ctx, i int32) {
			c.LdsLd(lds, 0)
		})
	})
	want := d.Cost.LDSOp
	if got := res.Stats.GroupCost[0]; got != want {
		t.Errorf("broadcast LDS cost = %d, want %d", got, want)
	}
}

func TestLDSIsGroupPrivate(t *testing.T) {
	// Each group allocates its own LDS; writes must not leak across groups.
	d := ldsDevice()
	d.Workers = 2
	out := d.AllocInt32(8)
	d.RunCoop("lds-priv", 8, func(g *GroupCtx) {
		lds := g.AllocLDS(1)
		g.One(func(c *Ctx) {
			c.LdsSt(lds, 0, g.ID()+100)
		})
		g.Barrier()
		g.One(func(c *Ctx) {
			c.St(out, g.ID(), c.LdsLd(lds, 0))
		})
	})
	for i, v := range out.Data() {
		if v != int32(i)+100 {
			t.Fatalf("group %d read %d, want %d (LDS leaked across groups?)", i, v, i+100)
		}
	}
}

func TestLDSCountsTowardUtilization(t *testing.T) {
	// A lone active lane doing only LDS work must still register as busy.
	d := ldsDevice()
	res := d.RunCoop("lds-util", 1, func(g *GroupCtx) {
		lds := g.AllocLDS(4)
		g.One(func(c *Ctx) {
			c.LdsSt(lds, 0, 1)
		})
	})
	if u := res.Stats.SIMDUtilization(); u <= 0 {
		t.Errorf("utilization = %v, want > 0", u)
	}
}
