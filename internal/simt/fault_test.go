package simt

import "testing"

// copyKernel runs a simple elementwise copy of src into dst.
func copyKernel(d *Device, src, dst *BufInt32, n int) *RunResult {
	return d.Run("copy", n, func(c *Ctx) {
		c.St(dst, c.Global, c.Ld(src, c.Global))
	})
}

func faultDevice(rate float64, seed uint64) *Device {
	d := NewDevice()
	d.NumCUs = 4
	d.WorkgroupSize = 64
	d.Fault = NewFaultInjector(seed, rate)
	return d
}

func TestZeroRateInjectorMatchesNil(t *testing.T) {
	const n = 4096
	run := func(fi *FaultInjector) ([]int32, int64) {
		d := NewDevice()
		d.NumCUs = 4
		d.WorkgroupSize = 64
		d.Fault = fi
		src := d.AllocInt32(n)
		for i := range src.Data() {
			src.Data()[i] = int32(i * 3)
		}
		dst := d.AllocInt32(n)
		rr := copyKernel(d, src, dst, n)
		return dst.Data(), rr.Cycles()
	}
	wantData, wantCycles := run(nil)
	gotData, gotCycles := run(NewFaultInjector(7, 0))
	if gotCycles != wantCycles {
		t.Fatalf("zero-rate injector changed cycles: %d vs %d", gotCycles, wantCycles)
	}
	for i := range wantData {
		if gotData[i] != wantData[i] {
			t.Fatalf("zero-rate injector changed data at %d: %d vs %d", i, gotData[i], wantData[i])
		}
	}
}

func TestBitFlipsDeterministicAndCounted(t *testing.T) {
	const n = 1 << 15
	run := func() ([]int32, FaultStats) {
		d := faultDevice(0, 42)
		d.Fault.BitFlipRate = 1e-2
		src := d.AllocInt32(n)
		for i := range src.Data() {
			src.Data()[i] = int32(i)
		}
		dst := d.AllocInt32(n)
		copyKernel(d, src, dst, n)
		return dst.Data(), d.Fault.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if s1.BitFlips == 0 {
		t.Fatalf("rate 1e-2 over %d reads injected no bit flips", n)
	}
	if s1 != s2 {
		t.Fatalf("fault stats not deterministic: %+v vs %+v", s1, s2)
	}
	flipped := 0
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("corrupted data not deterministic at %d: %d vs %d", i, d1[i], d2[i])
		}
		if d1[i] != int32(i) {
			flipped++
			if diff := uint32(d1[i]) ^ uint32(i); diff&^0xFF != 0 {
				t.Fatalf("flip at %d touched high bits: %d -> %d", i, i, d1[i])
			}
		}
	}
	if flipped == 0 {
		t.Fatal("flips counted but no value changed")
	}
}

func TestPermissiveOutOfBounds(t *testing.T) {
	d := faultDevice(0, 1) // armed but zero rates: permissive mode only
	buf := d.AllocInt32(8)
	got := d.AllocInt32(64)
	d.Run("oob", 64, func(c *Ctx) {
		c.St(got, c.Global, c.Ld(buf, c.Global+100)) // read far out of range
		c.St(buf, c.Global+1000, 7)                  // dropped write
		c.AtomicAdd(buf, -5, 1)                      // dropped atomic
	})
	for i, v := range got.Data() {
		if v != 0 {
			t.Fatalf("OOB read returned %d at %d, want poison 0", v, i)
		}
	}
	st := d.Fault.Stats()
	if st.OOBReads != 64 || st.OOBWrites != 64 || st.OOBAtomics != 64 {
		t.Fatalf("OOB counters = %+v, want 64 each", st)
	}
}

func TestWavefrontAbortSkipsWrites(t *testing.T) {
	d := faultDevice(0, 3)
	d.Fault.WavefrontAbortRate = 1 // every wavefront dies
	const n = 256
	dst := d.AllocInt32(n)
	dst.Fill(-1)
	src := d.AllocInt32(n)
	copyKernel(d, src, dst, n)
	for i, v := range dst.Data() {
		if v != -1 {
			t.Fatalf("aborted wavefront still wrote dst[%d] = %d", i, v)
		}
	}
	if st := d.Fault.Stats(); st.WavefrontAborts != int64(n/d.WavefrontWidth) {
		t.Fatalf("aborts = %d, want %d", st.WavefrontAborts, n/d.WavefrontWidth)
	}
}

func TestStallMultipliesGroupCost(t *testing.T) {
	const n = 1024
	clean := func(fi *FaultInjector) int64 {
		d := faultDevice(0, 9)
		d.Fault = fi
		src := d.AllocInt32(n)
		dst := d.AllocInt32(n)
		return copyKernel(d, src, dst, n).Stats.TotalCost()
	}
	base := clean(nil)
	fi := NewFaultInjector(9, 0)
	fi.StallRate = 1
	fi.StallFactor = 64
	stalled := clean(fi)
	if stalled != base*64 {
		t.Fatalf("stalled cost %d, want %d * 64 = %d", stalled, base, base*64)
	}
}

func TestCASSpuriousFailure(t *testing.T) {
	d := faultDevice(0, 11)
	d.Fault.CASFailRate = 1
	buf := d.AllocInt32(1)
	obs := d.AllocInt32(64)
	d.Run("cas", 64, func(c *Ctx) {
		c.St(obs, c.Global, c.AtomicCAS(buf, 0, 0, 5))
	})
	if buf.Data()[0] != 0 {
		t.Fatalf("CAS with rate-1 failure still swapped: got %d", buf.Data()[0])
	}
	for i, v := range obs.Data() {
		if v == 0 {
			t.Fatalf("lane %d observed its expected value %d despite forced failure", i, v)
		}
	}
	if st := d.Fault.Stats(); st.CASFails != 64 {
		t.Fatalf("CAS fails = %d, want 64", st.CASFails)
	}
}

func TestKernelPanicAbsorbed(t *testing.T) {
	d := faultDevice(0, 13)
	// Simulate a panic on corrupted data in group 1 only.
	rr := d.Run("boom", 256, func(c *Ctx) {
		c.Op(1)
		if c.Group == 1 && c.Local == 0 {
			panic("corrupted length")
		}
	})
	if st := d.Fault.Stats(); st.GroupPanics != 1 {
		t.Fatalf("GroupPanics = %d, want 1", st.GroupPanics)
	}
	if got := rr.Stats.GroupCost[1]; got != 0 {
		t.Fatalf("panicked group cost = %d, want 0", got)
	}
	if rr.Stats.GroupCost[0] == 0 {
		t.Fatal("healthy group was not costed")
	}
}

func TestCoopGroupAbortAndPanicAbsorbed(t *testing.T) {
	d := faultDevice(0, 17)
	d.Fault.WavefrontAbortRate = 1
	dst := d.AllocInt32(4)
	dst.Fill(-1)
	d.RunCoop("coop-abort", 4, func(g *GroupCtx) {
		g.One(func(c *Ctx) { c.St(dst, g.ID(), g.ID()) })
	})
	for i, v := range dst.Data() {
		if v != -1 {
			t.Fatalf("aborted coop group %d still wrote %d", i, v)
		}
	}
	d2 := faultDevice(0, 19)
	d2.RunCoop("coop-panic", 2, func(g *GroupCtx) {
		if g.ID() == 0 {
			panic("corrupted")
		}
		g.One(func(c *Ctx) { c.Op(1) })
	})
	if st := d2.Fault.Stats(); st.GroupPanics != 1 {
		t.Fatalf("coop GroupPanics = %d, want 1", st.GroupPanics)
	}
}
