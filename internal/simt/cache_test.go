package simt

import "testing"

func TestSegCacheBasics(t *testing.T) {
	c := newSegCache(2)
	if c.touch(1) {
		t.Error("cold cache reported a hit")
	}
	if !c.touch(1) {
		t.Error("immediate re-touch missed")
	}
	c.touch(2)
	if !c.touch(2) || !c.touch(1) {
		t.Error("both entries should fit in capacity 2")
	}
	c.touch(3) // evicts the oldest (1)
	if c.touch(1) {
		t.Error("evicted entry reported a hit")
	}
}

func TestSegCacheNilIsOff(t *testing.T) {
	var c *segCache
	if c.touch(5) {
		t.Error("nil cache reported a hit")
	}
	c.reset() // must not panic
	if newSegCache(0) != nil {
		t.Error("capacity 0 should disable the cache")
	}
}

func TestSegCacheReset(t *testing.T) {
	c := newSegCache(4)
	c.touch(1)
	c.reset()
	if c.touch(1) {
		t.Error("reset cache reported a hit")
	}
}

func TestCacheModelReducesKernelCost(t *testing.T) {
	run := func(cacheSegs int) (*RunResult, *Device) {
		d := NewDevice()
		d.Workers = 1
		d.WorkgroupSize = 64
		d.Cost.CacheSegments = cacheSegs
		data := d.AllocInt32(64)
		res := d.Run("reread", 64, func(c *Ctx) {
			c.Ld(data, c.Global) // 4 segments, cold
			c.Ld(data, c.Global) // same 4 segments again
		})
		return res, d
	}
	cold, dOff := run(0)
	warm, dOn := run(16)
	if cold.Stats.CacheHits != 0 {
		t.Errorf("cache-off run recorded %d hits", cold.Stats.CacheHits)
	}
	if warm.Stats.CacheHits != 4 {
		t.Errorf("CacheHits = %d, want 4 (second pass over 4 segments)", warm.Stats.CacheHits)
	}
	// Cost difference: 4 transactions at hit price instead of miss price.
	saved := 4 * (dOff.Cost.MemPerTransaction - dOn.Cost.MemPerHit)
	if cold.Stats.WavefrontCost[0]-warm.Stats.WavefrontCost[0] != saved {
		t.Errorf("cost delta = %d, want %d",
			cold.Stats.WavefrontCost[0]-warm.Stats.WavefrontCost[0], saved)
	}
}

func TestCacheIsPerGroup(t *testing.T) {
	// Two groups touching the same segment: each pays a cold miss (the
	// cache resets per workgroup).
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	d.Cost.CacheSegments = 16
	data := d.AllocInt32(4)
	res := d.Run("cross-group", 128, func(c *Ctx) {
		c.Ld(data, 0)
		c.Ld(data, 0)
	})
	// Within each group's wavefront: ordinal 1 cold, ordinal 2 hit -> one
	// hit per wavefront, 2 wavefronts... per group one wavefront of 64:
	// 128 items / 64 wg = 2 groups, each 1 wavefront.
	if res.Stats.CacheHits != 2 {
		t.Errorf("CacheHits = %d, want 2 (one per group, no cross-group reuse)", res.Stats.CacheHits)
	}
}
