// Package simt is a deterministic SIMT GPU simulator: the substrate standing
// in for the AMD Radeon HD 7950 used in the paper. It models the first-order
// performance effects the paper reasons about — wavefronts serializing on
// their slowest lane, memory coalescing per wavefront access, compute units
// serializing their workgroup queues, and workgroup scheduling policies
// including work stealing — while executing kernel bodies as real Go code
// against shared buffers, so results are functionally exact.
//
// Execution is two-phase. Phase A runs every workgroup (optionally in
// parallel across OS threads for wall-clock speed) and records each group's
// simulated cost; kernels must therefore be written so that the result does
// not depend on inter-group ordering, exactly as on a real GPU (communicate
// through atomics, or split phases across kernel launches). Phase B replays
// the recorded costs through a virtual-time scheduling simulation, which is
// what makes work-stealing results deterministic and lets several policies
// be compared on identical work.
package simt

// CostModel holds the simulator's timing constants, in abstract cycles. The
// defaults loosely follow GCN-class ratios; only relative magnitudes matter
// for the reproduction (see DESIGN.md).
type CostModel struct {
	// ALUOp is the cost of one arithmetic/control operation per wavefront
	// (lanes run in lockstep, so a wavefront pays for its busiest lane).
	ALUOp int64
	// MemIssue is the fixed cost of issuing one wavefront-wide memory
	// instruction, and MemPerTransaction the additional cost per distinct
	// memory segment the instruction touches across its active lanes.
	MemIssue          int64
	MemPerTransaction int64
	// SegmentElems is the coalescing granularity in 4-byte elements
	// (16 elements = 64-byte cache line).
	SegmentElems int32
	// CacheSegments enables the per-workgroup read-cache model when > 0:
	// the most recently touched CacheSegments segments are cached and a
	// cached transaction costs MemPerHit instead of MemPerTransaction.
	// The default of 256 segments models the HD 7950's 16 KB per-CU read L1
	// (256 lines of 64 bytes); 0 turns the model off — see ablation A6.
	CacheSegments int
	MemPerHit     int64
	// AtomicOp is charged per atomic operation; atomics from the same
	// wavefront serialize.
	AtomicOp int64
	// Barrier is the cost of a workgroup barrier (charged per wavefront);
	// Collective the cost of a wavefront-wide reduction/ballot.
	Barrier    int64
	Collective int64
	// LDSOp is the cost of one conflict-free LDS access instruction; lanes
	// hitting the same of the LDSBanks banks at distinct addresses
	// serialize (the instruction costs LDSOp times the worst bank's
	// distinct-address count).
	LDSOp    int64
	LDSBanks int32
	// KernelLaunch is the fixed host-side cost added to every kernel.
	KernelLaunch int64
	// StealCost is charged to a compute unit for each steal attempt under
	// the work-stealing scheduling policy.
	StealCost int64
}

// DefaultCostModel returns the calibrated defaults used by the experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		ALUOp:             1,
		MemIssue:          8,
		MemPerTransaction: 16,
		SegmentElems:      16,
		CacheSegments:     256,
		MemPerHit:         2,
		AtomicOp:          60,
		Barrier:           20,
		Collective:        8,
		LDSOp:             2,
		LDSBanks:          32,
		KernelLaunch:      3000,
		StealCost:         400,
	}
}
