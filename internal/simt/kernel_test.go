package simt

import (
	"sync/atomic"
	"testing"
)

// testDevice returns a small deterministic device: 4 CUs, width-4 wavefronts,
// size-8 workgroups, single worker.
func testDevice() *Device {
	d := NewDevice()
	d.NumCUs = 4
	d.WavefrontWidth = 4
	d.WorkgroupSize = 8
	d.Workers = 1
	return d
}

func TestRunExecutesEveryItemOnce(t *testing.T) {
	d := NewDevice()
	d.Workers = 4
	const items = 10_000
	hits := make([]int32, items)
	buf := d.BindInt32(hits)
	res := d.Run("touch", items, func(c *Ctx) {
		c.AtomicAdd(buf, c.Global, 1)
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("item %d executed %d times", i, h)
		}
	}
	if res.Stats.Items != items {
		t.Errorf("Stats.Items = %d, want %d", res.Stats.Items, items)
	}
	wantGroups := (items + d.WorkgroupSize - 1) / d.WorkgroupSize
	if res.Stats.Groups != wantGroups {
		t.Errorf("Stats.Groups = %d, want %d", res.Stats.Groups, wantGroups)
	}
}

func TestRunIDsConsistent(t *testing.T) {
	d := testDevice()
	ok := int32(1)
	d.Run("ids", 20, func(c *Ctx) {
		group := c.Global / int32(d.WorkgroupSize)
		local := c.Global % int32(d.WorkgroupSize)
		if c.Group != group || c.Local != local {
			atomic.StoreInt32(&ok, 0)
		}
	})
	if ok != 1 {
		t.Error("work-item ids inconsistent with global id")
	}
}

func TestRunEmptyGrid(t *testing.T) {
	d := testDevice()
	res := d.Run("empty", 0, func(c *Ctx) { t.Error("body ran for empty grid") })
	if res.Stats.Groups != 0 || res.Cycles() != d.Cost.KernelLaunch {
		t.Errorf("empty kernel: groups=%d cycles=%d, want 0 groups, launch-only cycles",
			res.Stats.Groups, res.Cycles())
	}
}

func TestALUCostLockstep(t *testing.T) {
	d := testDevice()
	// Lane i of the first wavefront does i ALU ops: wavefront pays the max.
	res := d.Run("alu", 4, func(c *Ctx) {
		c.Op(int(c.Global))
	})
	if len(res.Stats.WavefrontCost) != 1 {
		t.Fatalf("wavefronts = %d, want 1", len(res.Stats.WavefrontCost))
	}
	want := 3 * d.Cost.ALUOp // max lane
	if got := res.Stats.WavefrontCost[0]; got != want {
		t.Errorf("wavefront cost = %d, want %d", got, want)
	}
	if res.Stats.ALUOps != 0+1+2+3 {
		t.Errorf("ALUOps = %d, want 6", res.Stats.ALUOps)
	}
}

func TestCoalescedVersusScatteredLoads(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64 // one wavefront per group
	data := d.AllocInt32(64 * 64)

	coal := d.Run("coalesced", 64, func(c *Ctx) {
		c.Ld(data, c.Global) // 64 consecutive elements: 4 segments of 16
	})
	scat := d.Run("scattered", 64, func(c *Ctx) {
		c.Ld(data, c.Global*64) // stride 64: every lane its own segment
	})
	wantCoal := d.Cost.MemIssue + 4*d.Cost.MemPerTransaction
	if got := coal.Stats.WavefrontCost[0]; got != wantCoal {
		t.Errorf("coalesced wavefront cost = %d, want %d", got, wantCoal)
	}
	wantScat := d.Cost.MemIssue + 64*d.Cost.MemPerTransaction
	if got := scat.Stats.WavefrontCost[0]; got != wantScat {
		t.Errorf("scattered wavefront cost = %d, want %d", got, wantScat)
	}
	if coal.Stats.MemTransactions != 4 || scat.Stats.MemTransactions != 64 {
		t.Errorf("transactions = %d/%d, want 4/64",
			coal.Stats.MemTransactions, scat.Stats.MemTransactions)
	}
}

func TestDivergentLoopCost(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	data := d.AllocInt32(64 * 100)
	// Lane 0 performs 100 loads, the rest none: the wavefront still pays one
	// memory instruction per ordinal — the paper's intra-wavefront imbalance.
	res := d.Run("divergent", 64, func(c *Ctx) {
		if c.Global == 0 {
			for i := int32(0); i < 100; i++ {
				c.Ld(data, i*64)
			}
		}
	})
	want := 100 * (d.Cost.MemIssue + d.Cost.MemPerTransaction)
	if got := res.Stats.WavefrontCost[0]; got != want {
		t.Errorf("divergent cost = %d, want %d", got, want)
	}
	// Utilization: one lane busy out of 64.
	if u := res.Stats.SIMDUtilization(); u > 0.02 {
		t.Errorf("utilization = %.3f, want ~1/64", u)
	}
}

func TestUtilizationFullWavefront(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	data := d.AllocInt32(64)
	res := d.Run("uniform", 64, func(c *Ctx) {
		c.Op(5)
		c.Ld(data, c.Global)
	})
	if u := res.Stats.SIMDUtilization(); u != 1 {
		t.Errorf("uniform kernel utilization = %v, want 1", u)
	}
}

func TestGridTailMasking(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	data := d.AllocInt32(64)
	// 3 items in a 64-wide wavefront: inactive lanes contribute nothing.
	res := d.Run("tail", 3, func(c *Ctx) {
		c.Ld(data, c.Global)
	})
	if res.Stats.MemAccesses != 3 {
		t.Errorf("MemAccesses = %d, want 3", res.Stats.MemAccesses)
	}
	if got, want := res.Stats.MemTransactions, int64(1); got != want {
		t.Errorf("MemTransactions = %d, want %d (3 lanes, one segment)", got, want)
	}
}

func TestStoreVisibleAfterKernel(t *testing.T) {
	d := testDevice()
	out := d.AllocInt32(16)
	d.Run("store", 16, func(c *Ctx) {
		c.St(out, c.Global, c.Global*2)
	})
	for i, v := range out.Data() {
		if v != int32(i*2) {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}

func TestAtomicOps(t *testing.T) {
	d := NewDevice()
	d.Workers = 8
	const items = 4096
	ctr := d.AllocInt32(4)
	d.Run("atomics", items, func(c *Ctx) {
		c.AtomicAdd(ctr, 0, 1)
		c.AtomicMax(ctr, 1, c.Global)
		c.AtomicMin(ctr, 2, -c.Global)
		if c.Global == 7 {
			c.AtomicStore(ctr, 3, 99)
		}
	})
	got := ctr.Data()
	if got[0] != items {
		t.Errorf("AtomicAdd total = %d, want %d", got[0], items)
	}
	if got[1] != items-1 {
		t.Errorf("AtomicMax = %d, want %d", got[1], items-1)
	}
	if got[2] != -(items - 1) {
		t.Errorf("AtomicMin = %d, want %d", got[2], -(items - 1))
	}
	if got[3] != 99 {
		t.Errorf("AtomicStore = %d, want 99", got[3])
	}
}

func TestAtomicCAS(t *testing.T) {
	d := testDevice()
	cell := d.AllocInt32(1)
	winners := d.AllocInt32(1)
	d.Run("cas", 100, func(c *Ctx) {
		if c.AtomicCAS(cell, 0, 0, c.Global+1) == 0 {
			c.AtomicAdd(winners, 0, 1)
		}
	})
	if winners.Data()[0] != 1 {
		t.Errorf("CAS winners = %d, want exactly 1", winners.Data()[0])
	}
	if cell.Data()[0] == 0 {
		t.Error("CAS never succeeded")
	}
}

func TestAtomicAddReturnsOldValue(t *testing.T) {
	d := testDevice()
	cell := d.AllocInt32(1)
	seen := d.AllocInt32(1)
	seen.Fill(-1)
	d.Run("old", 1, func(c *Ctx) {
		old := c.AtomicAdd(cell, 0, 5)
		c.AtomicStore(seen, 0, old)
	})
	if seen.Data()[0] != 0 {
		t.Errorf("first AtomicAdd returned %d, want 0", seen.Data()[0])
	}
	if cell.Data()[0] != 5 {
		t.Errorf("cell = %d, want 5", cell.Data()[0])
	}
}

func TestAtomicCostCharged(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	ctr := d.AllocInt32(1)
	res := d.Run("atomic-cost", 64, func(c *Ctx) {
		c.AtomicAdd(ctr, 0, 1)
	})
	// 64 atomics serialize, plus the single shared-segment memory ordinal.
	want := 64*d.Cost.AtomicOp + d.Cost.MemIssue + d.Cost.MemPerTransaction
	if got := res.Stats.WavefrontCost[0]; got != want {
		t.Errorf("atomic wavefront cost = %d, want %d", got, want)
	}
	if res.Stats.Atomics != 64 {
		t.Errorf("Atomics = %d, want 64", res.Stats.Atomics)
	}
}

func TestDeviceCheckPanics(t *testing.T) {
	cases := []func(*Device){
		func(d *Device) { d.NumCUs = 0 },
		func(d *Device) { d.WavefrontWidth = 0 },
		func(d *Device) { d.WorkgroupSize = 0 },
		func(d *Device) { d.WorkgroupSize = 100 }, // not a multiple of 64
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: bad device config did not panic", i)
				}
			}()
			d := NewDevice()
			mutate(d)
			d.Run("bad", 1, func(c *Ctx) {})
		}()
	}
}

func TestBufferBindSharesStorage(t *testing.T) {
	d := testDevice()
	host := []int32{1, 2, 3}
	buf := d.BindInt32(host)
	host[1] = 42
	if buf.Data()[1] != 42 {
		t.Error("BindInt32 copied instead of wrapping")
	}
	if buf.Len() != 3 {
		t.Errorf("Len = %d, want 3", buf.Len())
	}
	buf.Fill(7)
	if host[0] != 7 || host[2] != 7 {
		t.Error("Fill did not write through to host slice")
	}
}

func TestTotalCostSumsGroups(t *testing.T) {
	d := testDevice()
	data := d.AllocInt32(64)
	res := d.Run("sum", 64, func(c *Ctx) { c.Ld(data, c.Global) })
	var want int64
	for _, g := range res.Stats.GroupCost {
		want += g
	}
	if got := res.Stats.TotalCost(); got != want {
		t.Errorf("TotalCost = %d, want %d", got, want)
	}
}
