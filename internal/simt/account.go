package simt

import (
	"math/bits"
	"sync/atomic"
)

// Per-wavefront cost accounting. Lanes of one wavefront execute in lockstep,
// so the wavefront pays for its busiest lane's ALU work, and each memory
// access ordinal (the k-th access issued by each lane) becomes one
// wavefront-wide memory instruction whose cost depends on how many distinct
// memory segments the active lanes touch — the coalescing model.

type laneAcc struct {
	alu       int64 // ALU ops issued by this lane
	atomics   int64 // atomic ops issued by this lane
	nAccess   int32 // global memory accesses issued (its ordinal counter)
	ldsAccess int32 // LDS accesses issued (its LDS ordinal counter)
	active    bool  // lane executed at all (grid tail masking)
}

type ordAcc struct {
	active int      // lanes issuing an access at this ordinal
	segs   []uint64 // distinct segments touched (deduplicated, <= width entries)
	// filter is a 256-bit bloom filter over segs. The FIFO cache model
	// makes cost order-sensitive, so segs must stay in first-touch order
	// and dedup must happen at record time; the filter lets scattered
	// access patterns append without scanning the whole slice.
	filter [4]uint64
}

// wfAcc accumulates one wavefront's activity. It is scratch memory reused
// across wavefronts by each phase-A worker.
type wfAcc struct {
	lanes    []laneAcc
	ords     []ordAcc
	nOrds    int
	ldsOrds  []ldsOrd
	nLdsOrds int

	// ctx is the reusable lane context for data-parallel execution: one
	// Ctx per wavefront accumulator instead of one per work-item, rebuilt
	// by field assignment each lane. Bodies must not retain it past their
	// invocation (the documented Ctx contract).
	ctx Ctx
}

func newWfAcc(width int) *wfAcc {
	return &wfAcc{lanes: make([]laneAcc, width)}
}

func (w *wfAcc) reset() {
	for i := range w.lanes {
		w.lanes[i] = laneAcc{}
	}
	for i := 0; i < w.nOrds; i++ {
		w.ords[i].active = 0
		w.ords[i].segs = w.ords[i].segs[:0]
		w.ords[i].filter = [4]uint64{}
	}
	w.nOrds = 0
	for i := 0; i < w.nLdsOrds; i++ {
		w.ldsOrds[i].active = 0
		w.ldsOrds[i].pairs = w.ldsOrds[i].pairs[:0]
	}
	w.nLdsOrds = 0
}

// record notes that lane l issued a memory access to element idx of buffer
// buf, with the given coalescing granularity.
func (w *wfAcc) record(l int, buf, idx, segElems int32) {
	lane := &w.lanes[l]
	k := int(lane.nAccess)
	lane.nAccess++
	for len(w.ords) <= k {
		w.ords = append(w.ords, ordAcc{})
	}
	if k >= w.nOrds {
		w.nOrds = k + 1
	}
	o := &w.ords[k]
	o.active++
	// SegmentElems is a power of two on every stock cost model, and this
	// runs once per simulated memory access: shift instead of divide.
	var segIdx uint64
	if e := uint32(segElems); e&(e-1) == 0 {
		segIdx = uint64(uint32(idx)) >> uint(bits.TrailingZeros32(e))
	} else {
		segIdx = uint64(uint32(idx)) / uint64(uint32(segElems))
	}
	seg := uint64(uint32(buf))<<40 | segIdx
	// Coalesced fast path: lanes walk memory with spatial locality, so a
	// duplicate segment is overwhelmingly the one just appended.
	if n := len(o.segs); n > 0 && o.segs[n-1] == seg {
		return
	}
	h := (seg * segHashMul) >> 56
	bit := uint64(1) << (h & 63)
	if o.filter[h>>6]&bit != 0 {
		// Possibly seen before (or a filter collision): confirm by scan.
		for i := len(o.segs) - 2; i >= 0; i-- {
			if o.segs[i] == seg {
				return
			}
		}
	}
	o.filter[h>>6] |= bit
	o.segs = append(o.segs, seg)
}

// wfCost is the costed-out summary of one wavefront.
type wfCost struct {
	cycles       int64
	busySum      int64 // sum over lanes of performed operations: utilization numerator
	busyMax      int64 // busiest lane: utilization denominator per wavefront
	aluOps       int64
	accesses     int64
	transactions int64
	atomics      int64
	ldsAccesses  int64
	cacheHits    int64
}

// cost folds the accumulated activity into cycles under cm. cache may be
// nil (model off).
func (w *wfAcc) cost(cm *CostModel, cache *segCache) wfCost {
	var c wfCost
	var aluMax int64
	for i := range w.lanes {
		l := &w.lanes[i]
		if !l.active {
			continue
		}
		busy := l.alu + int64(l.nAccess) + int64(l.ldsAccess)
		c.busySum += busy
		if busy > c.busyMax {
			c.busyMax = busy
		}
		if l.alu > aluMax {
			aluMax = l.alu
		}
		c.aluOps += l.alu
		c.accesses += int64(l.nAccess)
		c.atomics += l.atomics
	}
	c.cycles = aluMax*cm.ALUOp + c.atomics*cm.AtomicOp
	for k := 0; k < w.nOrds; k++ {
		c.cycles += cm.MemIssue
		for _, seg := range w.ords[k].segs {
			c.transactions++
			if cache.touch(seg) {
				c.cacheHits++
				c.cycles += cm.MemPerHit
			} else {
				c.cycles += cm.MemPerTransaction
			}
		}
	}
	ldsCycles, ldsAccesses := w.ldsCost(cm)
	c.cycles += ldsCycles
	c.ldsAccesses = ldsAccesses
	return c
}

// Ctx is the view a single work-item (lane) has of the device while a kernel
// body runs: its ids plus accounted memory and ALU operations. A Ctx is only
// valid for the duration of the kernel body invocation it is passed to.
type Ctx struct {
	// Global, Local and Group are the work-item's global id, id within its
	// workgroup, and workgroup id.
	Global, Local, Group int32

	cm      *CostModel
	wf      *wfAcc
	laneIdx int
	fi      *FaultInjector // nil unless the device has an armed injector
	launch  uint64         // device launch ordinal (fault-decision key)
}

// Op charges n ALU operations to this lane.
func (c *Ctx) Op(n int) { c.wf.lanes[c.laneIdx].alu += int64(n) }

// Ld loads element i of b, accounting one global memory access. With a
// fault injector armed the load may return a bit-flipped value, and an
// out-of-range index returns poison (0) instead of panicking.
func (c *Ctx) Ld(b *BufInt32, i int32) int32 {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	if c.fi != nil {
		return c.fi.ld(c.launch, c.Global, c.wf.lanes[c.laneIdx].nAccess, b, i)
	}
	return b.data[i]
}

// St stores v to element i of b, accounting one global memory access.
// Plain stores must not race with other lanes' accesses to the same element
// within one launch; use the Atomic variants for communication. With a
// fault injector armed an out-of-range store is dropped instead of
// panicking.
func (c *Ctx) St(b *BufInt32, i int32, v int32) {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	if c.fi != nil && !c.fi.stOK(b, i) {
		return
	}
	b.data[i] = v
}

// LdShared is Ld for memory that another work-item may be writing with
// StShared in the same launch: the host access is a relaxed atomic so the
// race is well-defined, but the simulated cost is that of an ordinary
// load — on GCN-class hardware relaxed atomic loads are plain VMEM
// operations, unlike the read-modify-write atomics AtomicAdd et al. model
// (which pay the AtomicOp serialization charge). The fused coloring
// kernels use this to read the live color array while winners publish
// their colors in the same pass.
func (c *Ctx) LdShared(b *BufInt32, i int32) int32 {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	if c.fi != nil {
		return c.fi.ldShared(c.launch, c.Global, c.wf.lanes[c.laneIdx].nAccess, b, i)
	}
	return atomic.LoadInt32(&b.data[i])
}

// StShared is St with a relaxed-atomic host store, the writer side of the
// LdShared contract. Cost accounting is identical to St.
func (c *Ctx) StShared(b *BufInt32, i int32, v int32) {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	if c.fi != nil && !c.fi.stOK(b, i) {
		return
	}
	atomic.StoreInt32(&b.data[i], v)
}
