package simt

import (
	"container/heap"
	"fmt"
)

// Policy selects how workgroups are distributed over compute units.
type Policy int

const (
	// Static assigns contiguous chunks of workgroups to CUs up front —
	// the paper's baseline hardware dispatcher stand-in. Hub-dense id
	// ranges land on one CU, which is what work stealing fixes.
	Static Policy = iota
	// RoundRobin deals workgroups to CUs cyclically.
	RoundRobin
	// Stealing starts from the Static assignment but lets an idle CU steal
	// the back half of the fullest remaining queue, paying StealCost per
	// steal — the paper's task-donation/work-stealing technique.
	Stealing
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static"
	case RoundRobin:
		return "round-robin"
	case Stealing:
		return "stealing"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ScheduleResult describes the outcome of replaying recorded workgroup costs
// through a scheduling policy in virtual time.
type ScheduleResult struct {
	Policy Policy
	// CUBusy[c] is the cycles CU c spent executing workgroups (plus steal
	// charges); CUFinish[c] is its completion time.
	CUBusy   []int64
	CUFinish []int64
	Steals   int64
	// Makespan is the finish time of the slowest CU; Cycles adds the kernel
	// launch overhead and is the simulated end-to-end kernel time.
	Makespan int64
	Cycles   int64
}

// SimulateSchedule replays per-workgroup costs under policy p on device d.
// It is deterministic and can be called repeatedly with different policies
// on the same recorded costs.
func SimulateSchedule(d *Device, groupCost []int64, p Policy) ScheduleResult {
	d.check()
	n := d.NumCUs
	res := ScheduleResult{
		Policy:   p,
		CUBusy:   d.i64s.get(n),
		CUFinish: d.i64s.get(n),
	}
	switch p {
	case Static:
		chunk := (len(groupCost) + n - 1) / n
		for g, c := range groupCost {
			cu := 0
			if chunk > 0 {
				cu = g / chunk
			}
			res.CUBusy[cu] += c
		}
	case RoundRobin:
		for g, c := range groupCost {
			res.CUBusy[g%n] += c
		}
	case Stealing:
		res.Steals = simulateStealing(d, groupCost, res.CUBusy)
	default:
		panic(fmt.Sprintf("simt: unknown policy %d", int(p)))
	}
	copy(res.CUFinish, res.CUBusy)
	for _, f := range res.CUFinish {
		if f > res.Makespan {
			res.Makespan = f
		}
	}
	res.Cycles = res.Makespan + d.Cost.KernelLaunch
	return res
}

// cuState is one compute unit inside the virtual-time stealing simulation.
type cuState struct {
	id    int
	clock int64
	queue []int64 // remaining workgroup costs; front = next to execute
}

// cuHeap orders CUs by clock (ties by id for determinism).
type cuHeap []*cuState

func (h cuHeap) Len() int { return len(h) }
func (h cuHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].id < h[j].id
}
func (h cuHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cuHeap) Push(x any)   { *h = append(*h, x.(*cuState)) }
func (h *cuHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// simulateStealing runs the event loop: the CU with the smallest clock acts
// next — executing from its own queue's front, or stealing the back half of
// the fullest queue when its own is empty. Returns the number of steals and
// fills busy with per-CU finish-relevant work.
func simulateStealing(d *Device, groupCost []int64, busy []int64) int64 {
	n := d.NumCUs
	cus := make([]*cuState, n)
	chunk := (len(groupCost) + n - 1) / n
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(groupCost) {
			lo = len(groupCost)
		}
		if hi > len(groupCost) {
			hi = len(groupCost)
		}
		q := make([]int64, hi-lo)
		copy(q, groupCost[lo:hi])
		cus[i] = &cuState{id: i, queue: q}
	}
	h := make(cuHeap, n)
	copy(h, cus)
	heap.Init(&h)

	var steals int64
	for h.Len() > 0 {
		cu := h[0]
		if len(cu.queue) > 0 {
			cu.clock += cu.queue[0]
			cu.queue = cu.queue[1:]
			heap.Fix(&h, 0)
			continue
		}
		// Steal from the CU with the most queued work. Victims must hold at
		// least two groups: the last item in a deque is the one its owner
		// is about to execute, and letting thieves take it makes a lone
		// expensive group ping-pong between idle CUs forever (each steal
		// charge pushes the holder's clock above the next idler's, so the
		// holder never reaches the front of the event queue). Scanning all
		// CUs is O(n) per steal; n is a few dozen, and steals are rare.
		var victim *cuState
		for _, v := range cus {
			if v == cu || len(v.queue) < 2 {
				continue
			}
			if victim == nil || len(v.queue) > len(victim.queue) ||
				(len(v.queue) == len(victim.queue) && v.id < victim.id) {
				victim = v
			}
		}
		if victim == nil {
			heap.Pop(&h) // nothing left anywhere: this CU is done
			continue
		}
		// Take the back half (at least one group); pay for the attempt.
		take := len(victim.queue) / 2
		if take == 0 {
			take = 1
		}
		split := len(victim.queue) - take
		stolen := make([]int64, take)
		copy(stolen, victim.queue[split:])
		victim.queue = victim.queue[:split]
		cu.queue = append(cu.queue, stolen...)
		cu.clock += d.Cost.StealCost
		steals++
		heap.Fix(&h, 0)
	}
	for i, cu := range cus {
		busy[i] = cu.clock
	}
	return steals
}
