package simt

import (
	"sync/atomic"
	"testing"
)

func TestCoopForEachCoversAllIndices(t *testing.T) {
	d := testDevice() // workgroup size 8, wavefront 4
	const n = 29      // not a multiple of the group size
	hits := make([]int32, n)
	buf := d.BindInt32(hits)
	d.RunCoop("foreach", 1, func(g *GroupCtx) {
		g.ForEach(n, func(c *Ctx, i int32) {
			c.AtomicAdd(buf, i, 1)
		})
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestCoopGroupIDs(t *testing.T) {
	d := testDevice()
	var bad int32
	d.RunCoop("ids", 5, func(g *GroupCtx) {
		if g.ID() < 0 || g.ID() >= 5 || g.Size() != 8 {
			atomic.StoreInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Error("group ids or size wrong")
	}
}

func TestCoopAnyFindsAndEarlyExits(t *testing.T) {
	d := testDevice()
	d.Workers = 1
	var evaluated int64
	var found int32
	d.RunCoop("any", 1, func(g *GroupCtx) {
		// The match is in the first chunk of 8; later chunks must not run.
		ok := g.Any(1000, func(c *Ctx, i int32) bool {
			atomic.AddInt64(&evaluated, 1)
			return i == 3
		})
		if ok {
			atomic.StoreInt32(&found, 1)
		}
	})
	if found != 1 {
		t.Error("Any missed the match")
	}
	if evaluated != 8 {
		t.Errorf("Any evaluated %d items, want 8 (one chunk, early exit)", evaluated)
	}
}

func TestCoopAnyNoMatch(t *testing.T) {
	d := testDevice()
	d.Workers = 1
	var evaluated int64
	var found int32
	res := d.RunCoop("any-none", 1, func(g *GroupCtx) {
		if g.Any(20, func(c *Ctx, i int32) bool {
			atomic.AddInt64(&evaluated, 1)
			return false
		}) {
			atomic.StoreInt32(&found, 1)
		}
	})
	if found != 0 {
		t.Error("Any reported a match on all-false predicate")
	}
	if evaluated != 20 {
		t.Errorf("Any evaluated %d items, want 20", evaluated)
	}
	// 20 items over size-8 chunks = 3 chunks = 3 barriers.
	if res.Stats.Barriers != 3 {
		t.Errorf("Barriers = %d, want 3", res.Stats.Barriers)
	}
	if res.Stats.Collectives == 0 {
		t.Error("no collectives charged for Any")
	}
}

func TestCoopOneRunsSingleLane(t *testing.T) {
	d := testDevice()
	var runs int64
	out := d.AllocInt32(1)
	d.RunCoop("one", 3, func(g *GroupCtx) {
		g.One(func(c *Ctx) {
			atomic.AddInt64(&runs, 1)
			c.AtomicAdd(out, 0, g.ID())
		})
	})
	if runs != 3 {
		t.Errorf("One ran %d times, want 3 (once per group)", runs)
	}
	if out.Data()[0] != 0+1+2 {
		t.Errorf("accumulated %d, want 3", out.Data()[0])
	}
}

func TestCoopBarrierCharged(t *testing.T) {
	d := testDevice()
	d.Workers = 1
	res := d.RunCoop("barrier", 1, func(g *GroupCtx) {
		g.Barrier()
		g.Barrier()
	})
	if res.Stats.Barriers != 2 {
		t.Errorf("Barriers = %d, want 2", res.Stats.Barriers)
	}
	// Cost: 2 barriers x 2 wavefronts x Barrier.
	want := 2 * 2 * d.Cost.Barrier
	if res.Stats.GroupCost[0] != want {
		t.Errorf("group cost = %d, want %d", res.Stats.GroupCost[0], want)
	}
}

func TestCoopCoalescedNeighbourScan(t *testing.T) {
	// A cooperative scan of 64 consecutive elements by a 64-wide group is
	// one fully coalesced ordinal per wavefront: this is the hybrid
	// algorithm's efficiency claim in miniature.
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	data := d.AllocInt32(64)
	res := d.RunCoop("scan", 1, func(g *GroupCtx) {
		g.ForEach(64, func(c *Ctx, i int32) {
			c.Ld(data, i)
		})
	})
	if res.Stats.MemTransactions != 4 {
		t.Errorf("transactions = %d, want 4 (64 elems / 16 per segment)", res.Stats.MemTransactions)
	}
	if u := res.Stats.SIMDUtilization(); u != 1 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestCoopEmpty(t *testing.T) {
	d := testDevice()
	res := d.RunCoop("none", 0, func(g *GroupCtx) { t.Error("body ran") })
	if res.Stats.Groups != 0 {
		t.Errorf("groups = %d, want 0", res.Stats.Groups)
	}
}

func TestCoopChunkedDivergenceCost(t *testing.T) {
	// 12 items on a size-8 group: chunk 1 fills all lanes, chunk 2 only 4.
	d := testDevice()
	d.Workers = 1
	data := d.AllocInt32(1024)
	res := d.RunCoop("chunks", 1, func(g *GroupCtx) {
		g.ForEach(12, func(c *Ctx, i int32) {
			c.Ld(data, i*16) // one segment per access
		})
	})
	// Wavefront 0 (lanes 0-3): 2 ordinals x (issue + 1 seg each)... lanes
	// access distinct segments, so ordinal cost = issue + 4 transactions.
	// Wavefront 1 (lanes 4-7): ordinal 1 full (4 segs), ordinal 2 empty.
	wf0 := 2 * (d.Cost.MemIssue + 4*d.Cost.MemPerTransaction)
	wf1 := (d.Cost.MemIssue + 4*d.Cost.MemPerTransaction)
	if got := res.Stats.GroupCost[0]; got != wf0+wf1 {
		t.Errorf("group cost = %d, want %d", got, wf0+wf1)
	}
}
