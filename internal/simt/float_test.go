package simt

import "testing"

func TestFloatBufferRoundTrip(t *testing.T) {
	d := testDevice()
	f := d.AllocFloat32(16)
	d.Run("float-rt", 16, func(c *Ctx) {
		c.StF(f, c.Global, float32(c.Global)*1.5)
	})
	for i, v := range f.Data() {
		if v != float32(i)*1.5 {
			t.Fatalf("f[%d] = %v, want %v", i, v, float32(i)*1.5)
		}
	}
	sum := float32(0)
	out := d.AllocFloat32(1)
	d.Run("float-read", 1, func(c *Ctx) {
		for i := int32(0); i < 16; i++ {
			sum += c.LdF(f, i)
		}
		c.StF(out, 0, sum)
	})
	if out.Data()[0] != 180 { // 1.5 * (0+..+15) = 1.5*120
		t.Errorf("sum = %v, want 180", out.Data()[0])
	}
}

func TestFloatAccessesAccounted(t *testing.T) {
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	f := d.AllocFloat32(64)
	res := d.Run("float-cost", 64, func(c *Ctx) {
		c.LdF(f, c.Global)
	})
	if res.Stats.MemAccesses != 64 {
		t.Errorf("MemAccesses = %d, want 64", res.Stats.MemAccesses)
	}
	// Same coalescing as int loads: 64 consecutive floats = 4 segments.
	if res.Stats.MemTransactions != 4 {
		t.Errorf("MemTransactions = %d, want 4", res.Stats.MemTransactions)
	}
}

func TestFloatBindShares(t *testing.T) {
	d := testDevice()
	host := []float32{1, 2}
	buf := d.BindFloat32(host)
	host[1] = 9
	if buf.Data()[1] != 9 || buf.Len() != 2 {
		t.Error("BindFloat32 copied instead of wrapping")
	}
	buf.Fill(3)
	if host[0] != 3 {
		t.Error("Fill did not write through")
	}
}

func TestFloatAndIntBuffersDistinctSegments(t *testing.T) {
	// Same index into different buffers must not coalesce together.
	d := NewDevice()
	d.Workers = 1
	d.WorkgroupSize = 64
	fi := d.AllocInt32(64)
	ff := d.AllocFloat32(64)
	res := d.Run("mixed", 64, func(c *Ctx) {
		c.Ld(fi, c.Global)
		c.LdF(ff, c.Global)
	})
	if res.Stats.MemTransactions != 8 {
		t.Errorf("MemTransactions = %d, want 8 (4 per buffer)", res.Stats.MemTransactions)
	}
}
