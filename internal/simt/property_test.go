package simt

import (
	"testing"
	"testing/quick"
)

// Property: for arbitrary little kernels (random per-lane ALU and load
// counts), the simulator's core invariants hold — positive cost for
// non-empty work, utilization in (0, 1], accesses conserved, and total cost
// equals the sum of wavefront costs.
func TestSimulatorInvariantsProperty(t *testing.T) {
	f := func(seed int64, rawItems uint16, rawOps, rawLoads uint8) bool {
		items := int(rawItems)%2000 + 1
		opsMod := int(rawOps)%7 + 1
		loadsMod := int(rawLoads)%5 + 1
		d := NewDevice()
		d.Workers = 2
		data := d.AllocInt32(4096)
		res := d.Run("prop", items, func(c *Ctx) {
			ops := int(c.Global) % opsMod
			loads := int(c.Global) % loadsMod
			c.Op(ops)
			for i := 0; i < loads; i++ {
				// Mix coalesced and scattered addressing.
				c.Ld(data, (c.Global*int32(i+1))&4095)
			}
		})
		if res.Cycles() < d.Cost.KernelLaunch {
			return false
		}
		var wantAccesses int64
		for g := 0; g < items; g++ {
			wantAccesses += int64(g % loadsMod)
		}
		if res.Stats.MemAccesses != wantAccesses {
			return false
		}
		var wfSum int64
		for _, c := range res.Stats.WavefrontCost {
			wfSum += c
		}
		if wfSum != res.Stats.TotalCost() {
			return false
		}
		u := res.Stats.SIMDUtilization()
		if wantAccesses > 0 && (u <= 0 || u > 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: kernel results and costs are identical regardless of the
// phase-A worker count (execution-order independence for race-free
// kernels).
func TestWorkerCountIndependenceProperty(t *testing.T) {
	f := func(rawItems uint16) bool {
		items := int(rawItems)%3000 + 1
		run := func(workers int) (int64, []int32) {
			d := NewDevice()
			d.Workers = workers
			out := d.AllocInt32(items)
			res := d.Run("wcount", items, func(c *Ctx) {
				c.Op(int(c.Global % 5))
				c.St(out, c.Global, c.Global*3)
			})
			return res.Cycles(), out.Data()
		}
		c1, o1 := run(1)
		c4, o4 := run(4)
		if c1 != c4 {
			return false
		}
		for i := range o1 {
			if o1[i] != o4[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
