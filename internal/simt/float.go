package simt

// Float buffers. The cost model is type-blind — a float load is accounted
// exactly like a 4-byte integer load — so BufFloat32 shares the segment and
// coalescing machinery via the same buffer-id space.

// BufFloat32 is a device buffer of 32-bit floats.
type BufFloat32 struct {
	id   int32
	data []float32
}

// AllocFloat32 allocates a zeroed device buffer of n floats.
func (d *Device) AllocFloat32(n int) *BufFloat32 {
	return d.BindFloat32(make([]float32, n))
}

// BindFloat32 wraps an existing slice as a device buffer without copying.
func (d *Device) BindFloat32(data []float32) *BufFloat32 {
	return &BufFloat32{id: d.nextBuf.Add(1), data: data}
}

// Data returns the backing slice (host view) of the buffer.
func (b *BufFloat32) Data() []float32 { return b.data }

// Len returns the element count of the buffer.
func (b *BufFloat32) Len() int { return len(b.data) }

// Fill sets every element to v (a host-side operation, not accounted).
func (b *BufFloat32) Fill(v float32) {
	for i := range b.data {
		b.data[i] = v
	}
}

// LdF loads element i of b, accounting one global memory access.
func (c *Ctx) LdF(b *BufFloat32, i int32) float32 {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	return b.data[i]
}

// StF stores v to element i of b, accounting one global memory access.
// The same no-race rule as St applies.
func (c *Ctx) StF(b *BufFloat32, i int32, v float32) {
	c.wf.record(c.laneIdx, b.id, i, c.cm.SegmentElems)
	b.data[i] = v
}
