package simt

import "sync/atomic"

// Fault injection. A FaultInjector plugged into Device.Fault perturbs
// kernel execution in four hardware-motivated ways:
//
//   - bit flips on buffer reads (transient soft errors on the load path:
//     the value returned to the lane is corrupted, memory is untouched);
//   - spurious atomic CAS failures (the operation reports a mismatching
//     observed value and performs no swap);
//   - wavefront aborts (a wavefront is killed before executing: its lanes
//     perform no work and none of their writes happen);
//   - workgroup stalls (a workgroup's simulated cost is multiplied by
//     StallFactor, modelling a group wedged far past its cycle budget).
//
// Every decision is a pure function of (Seed, launch index, coordinates):
// a read is keyed by its issuing work-item and per-lane access ordinal, an
// abort by its workgroup and wavefront index, a stall by its workgroup.
// Phase A may execute workgroups on any number of OS threads in any order
// and the injected fault set is identical, so faulty runs stay bit-for-bit
// reproducible — the property the chaos suite asserts.
//
// Arming an injector also switches the device to permissive out-of-bounds
// semantics, because corrupted indices must corrupt data, not crash the
// host process: out-of-range reads return 0 (poison), out-of-range writes
// and atomics are dropped, and a workgroup whose kernel body panics on
// corrupted data (e.g. a negative slice length) is aborted and counted
// instead of taking the process down. With Device.Fault == nil none of
// these paths are entered and kernels run exactly as before, at full
// fail-fast strictness.
//
// Bit flips are restricted to the low byte of the loaded value. This keeps
// the blast radius of a corrupted index or loop bound small (offsets move
// by < 256, so a poisoned loop terminates promptly) while still exercising
// every recovery path; it is a pragmatic bound on fault magnitude, not a
// claim about real soft-error physics.

// FaultInjector injects deterministic, seeded faults into kernel
// execution. The zero value injects nothing; set the per-site rates (each
// a probability in [0, 1]) to arm specific fault classes. Rates and seed
// must not be reconfigured while a kernel is running, but Arm/Disarm flip
// an atomic gate and are safe at any time — the chaos-soak harness uses
// them to sicken and heal a serving device mid-run. A disarmed injector
// injects nothing (runs behave exactly as fault-free), while the
// permissive out-of-bounds absorption below stays active, so disarming
// mid-kernel can never turn an already-corrupted index into a crash.
type FaultInjector struct {
	// Seed selects the fault pattern; two runs with equal seeds (on fresh
	// devices) inject identical faults.
	Seed uint64
	// BitFlipRate is the per-read probability of flipping one low-order
	// bit of the loaded value.
	BitFlipRate float64
	// CASFailRate is the per-CAS probability of a spurious failure.
	CASFailRate float64
	// WavefrontAbortRate is the per-wavefront probability (per workgroup
	// for cooperative kernels) of the wavefront being killed before it
	// executes.
	WavefrontAbortRate float64
	// StallRate is the per-workgroup probability of a stall; a stalled
	// group's cost is multiplied by StallFactor (default 64).
	StallRate   float64
	StallFactor int64

	// disarmed gates injection (inverted so the zero value stays armed,
	// preserving the behaviour of injectors built by struct literal).
	disarmed atomic.Bool

	bitFlips   atomic.Int64
	casFails   atomic.Int64
	aborts     atomic.Int64
	stalls     atomic.Int64
	oobReads   atomic.Int64
	oobWrites  atomic.Int64
	oobAtomics atomic.Int64
	panics     atomic.Int64
}

// NewFaultInjector returns an injector with every rate set to rate and the
// default stall factor.
func NewFaultInjector(seed uint64, rate float64) *FaultInjector {
	return &FaultInjector{
		Seed:               seed,
		BitFlipRate:        rate,
		CASFailRate:        rate,
		WavefrontAbortRate: rate,
		StallRate:          rate,
		StallFactor:        64,
	}
}

// Arm enables injection. Safe to call while kernels are running: the
// deterministic fault pattern is a pure function of coordinates, so arming
// mid-run simply starts applying it from the next decision on.
func (f *FaultInjector) Arm() { f.disarmed.Store(false) }

// Disarm disables injection without detaching the injector: subsequent
// runs behave exactly as fault-free while the counters and the permissive
// OOB absorption remain in place. Safe to call while kernels are running.
func (f *FaultInjector) Disarm() { f.disarmed.Store(true) }

// Armed reports whether injection is currently enabled.
func (f *FaultInjector) Armed() bool { return !f.disarmed.Load() }

// FaultStats is a snapshot of the faults injected (and fault side-effects
// absorbed) so far.
type FaultStats struct {
	// Faults injected by the four injection sites.
	BitFlips        int64
	CASFails        int64
	WavefrontAborts int64
	Stalls          int64
	// Fault side-effects absorbed by the permissive execution mode:
	// out-of-bounds accesses served as poison/dropped, and workgroup
	// kernel panics converted to group aborts.
	OOBReads    int64
	OOBWrites   int64
	OOBAtomics  int64
	GroupPanics int64
}

// Injected returns the number of primary faults injected (excluding the
// absorbed side-effect counters).
func (s FaultStats) Injected() int64 {
	return s.BitFlips + s.CASFails + s.WavefrontAborts + s.Stalls
}

// Stats returns a snapshot of the injector's counters.
func (f *FaultInjector) Stats() FaultStats {
	return FaultStats{
		BitFlips:        f.bitFlips.Load(),
		CASFails:        f.casFails.Load(),
		WavefrontAborts: f.aborts.Load(),
		Stalls:          f.stalls.Load(),
		OOBReads:        f.oobReads.Load(),
		OOBWrites:       f.oobWrites.Load(),
		OOBAtomics:      f.oobAtomics.Load(),
		GroupPanics:     f.panics.Load(),
	}
}

// Reset clears the counters (the fault pattern itself is stateless).
func (f *FaultInjector) Reset() {
	f.bitFlips.Store(0)
	f.casFails.Store(0)
	f.aborts.Store(0)
	f.stalls.Store(0)
	f.oobReads.Store(0)
	f.oobWrites.Store(0)
	f.oobAtomics.Store(0)
	f.panics.Store(0)
}

// Domain-separation salts for the decision hash, one per fault class.
const (
	saltFlip uint64 = 0xF11F + iota
	saltCAS
	saltAbort
	saltStall
)

// roll hashes one fault-decision coordinate tuple to a uniform uint64
// (splitmix64 finalizer over the mixed inputs).
func (f *FaultInjector) roll(salt, launch uint64, a, b int64) uint64 {
	x := f.Seed
	x ^= salt * 0x9e3779b97f4a7c15
	x ^= launch * 0xbf58476d1ce4e5b9
	x ^= uint64(a) * 0x94d049bb133111eb
	x ^= uint64(b) * 0xd6e8feb86659fd93
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// threshold maps a probability to the uint64 acceptance bound.
func threshold(rate float64) uint64 {
	if rate <= 0 {
		return 0
	}
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// ld serves a plain buffer load under injection: permissive out-of-bounds
// (poison 0) and a possible low-byte bit flip keyed by the work-item's id
// and per-lane access ordinal.
func (f *FaultInjector) ld(launch uint64, global, ordinal int32, b *BufInt32, i int32) int32 {
	if i < 0 || int(i) >= len(b.data) {
		f.oobReads.Add(1)
		return 0
	}
	v := b.data[i]
	if f.BitFlipRate > 0 && f.Armed() {
		if h := f.roll(saltFlip, launch, int64(global), int64(ordinal)); h < threshold(f.BitFlipRate) {
			f.bitFlips.Add(1)
			v ^= 1 << ((h >> 56) & 7)
		}
	}
	return v
}

// ldShared is ld with a relaxed-atomic host read (the LdShared path); the
// fault decision is keyed identically, so arming an injector perturbs
// fused and unfused kernels the same way.
func (f *FaultInjector) ldShared(launch uint64, global, ordinal int32, b *BufInt32, i int32) int32 {
	if i < 0 || int(i) >= len(b.data) {
		f.oobReads.Add(1)
		return 0
	}
	v := atomic.LoadInt32(&b.data[i])
	if f.BitFlipRate > 0 && f.Armed() {
		if h := f.roll(saltFlip, launch, int64(global), int64(ordinal)); h < threshold(f.BitFlipRate) {
			f.bitFlips.Add(1)
			v ^= 1 << ((h >> 56) & 7)
		}
	}
	return v
}

// stOK reports whether a plain store may proceed (permissive OOB: dropped).
func (f *FaultInjector) stOK(b *BufInt32, i int32) bool {
	if i < 0 || int(i) >= len(b.data) {
		f.oobWrites.Add(1)
		return false
	}
	return true
}

// atomicOK reports whether an atomic op may proceed (permissive OOB:
// dropped, returning 0 to the lane).
func (f *FaultInjector) atomicOK(b *BufInt32, i int32) bool {
	if i < 0 || int(i) >= len(b.data) {
		f.oobAtomics.Add(1)
		return false
	}
	return true
}

// failCAS decides whether this CAS spuriously fails, keyed by the
// work-item and its per-lane atomic ordinal.
func (f *FaultInjector) failCAS(launch uint64, global, ordinal int32) bool {
	if f.CASFailRate <= 0 || !f.Armed() {
		return false
	}
	if f.roll(saltCAS, launch, int64(global), int64(ordinal)) < threshold(f.CASFailRate) {
		f.casFails.Add(1)
		return true
	}
	return false
}

// abortWavefront decides whether wavefront wf of workgroup group is killed
// before executing.
func (f *FaultInjector) abortWavefront(launch uint64, group, wf int32) bool {
	if f.WavefrontAbortRate <= 0 || !f.Armed() {
		return false
	}
	if f.roll(saltAbort, launch, int64(group), int64(wf)) < threshold(f.WavefrontAbortRate) {
		f.aborts.Add(1)
		return true
	}
	return false
}

// stallGroup decides whether workgroup group stalls; the caller multiplies
// its cost by stallFactor.
func (f *FaultInjector) stallGroup(launch uint64, group int32) bool {
	if f.StallRate <= 0 || !f.Armed() {
		return false
	}
	if f.roll(saltStall, launch, int64(group), 0) < threshold(f.StallRate) {
		f.stalls.Add(1)
		return true
	}
	return false
}

func (f *FaultInjector) stallFactor() int64 {
	if f.StallFactor > 0 {
		return f.StallFactor
	}
	return 64
}

// notePanic records a workgroup kernel panic absorbed by the permissive
// execution mode.
func (f *FaultInjector) notePanic() { f.panics.Add(1) }
