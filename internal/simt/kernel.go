package simt

import (
	"sync"
	"sync/atomic"
)

// KernelFunc is the body of a data-parallel kernel, invoked once per
// work-item. Bodies must be safe to run concurrently across workgroups and
// must not depend on inter-group execution order except through atomics.
type KernelFunc func(c *Ctx)

// KernelStats aggregates the simulated activity of one kernel launch.
type KernelStats struct {
	Name   string
	Items  int // work-items launched
	Groups int // workgroups launched

	// GroupCost[g] is the simulated cycles of workgroup g (the input to the
	// scheduling simulation); WavefrontCost lists every wavefront's cycles
	// (the paper's intra-kernel imbalance evidence).
	GroupCost     []int64
	WavefrontCost []int64

	// Utilization accounting: per wavefront, busySum counts lane-operations
	// actually performed and busyMax the busiest lane; utilization is
	// busySum / (width * busyMax) summed over wavefronts.
	laneBusySum    int64
	laneBusyMaxSum int64
	width          int

	ALUOps          int64
	MemAccesses     int64
	MemTransactions int64
	Atomics         int64
	Barriers        int64
	Collectives     int64
	LDSAccesses     int64
	CacheHits       int64
}

// SIMDUtilization returns the fraction of lane slots doing useful work,
// in (0, 1]; 0 for an empty kernel.
func (s *KernelStats) SIMDUtilization() float64 {
	if s.laneBusyMaxSum == 0 {
		return 0
	}
	return float64(s.laneBusySum) / float64(int64(s.width)*s.laneBusyMaxSum)
}

// BusyParts exposes the utilization accounting so callers can aggregate
// utilization across kernel launches: busy is the lane-operations performed,
// busyMax the per-wavefront busiest-lane total; the aggregate utilization of
// launches is sum(busy) / (width * sum(busyMax)).
func (s *KernelStats) BusyParts() (busy, busyMax int64) {
	return s.laneBusySum, s.laneBusyMaxSum
}

// Width returns the wavefront width the stats were collected under.
func (s *KernelStats) Width() int { return s.width }

// TotalCost returns the sum of all workgroup costs (the work, as opposed to
// the makespan, which depends on scheduling).
func (s *KernelStats) TotalCost() int64 {
	var t int64
	for _, c := range s.GroupCost {
		t += c
	}
	return t
}

func (s *KernelStats) addWavefront(c wfCost) {
	s.WavefrontCost = append(s.WavefrontCost, c.cycles)
	s.laneBusySum += c.busySum
	s.laneBusyMaxSum += c.busyMax
	s.ALUOps += c.aluOps
	s.MemAccesses += c.accesses
	s.MemTransactions += c.transactions
	s.Atomics += c.atomics
	s.LDSAccesses += c.ldsAccesses
	s.CacheHits += c.cacheHits
}

// merge folds worker-local stats into s (group-indexed slices are written
// in place by group id, so only scalars and wavefront lists merge here).
func (s *KernelStats) merge(o *KernelStats) {
	s.WavefrontCost = append(s.WavefrontCost, o.WavefrontCost...)
	s.laneBusySum += o.laneBusySum
	s.laneBusyMaxSum += o.laneBusyMaxSum
	s.ALUOps += o.ALUOps
	s.MemAccesses += o.MemAccesses
	s.MemTransactions += o.MemTransactions
	s.Atomics += o.Atomics
	s.Barriers += o.Barriers
	s.Collectives += o.Collectives
	s.LDSAccesses += o.LDSAccesses
	s.CacheHits += o.CacheHits
}

// RunResult pairs a kernel's activity stats with its scheduling outcome.
type RunResult struct {
	Stats KernelStats
	Sched ScheduleResult
}

// Cycles returns the simulated end-to-end kernel time (makespan plus launch
// overhead).
func (r *RunResult) Cycles() int64 { return r.Sched.Cycles }

// Run executes a data-parallel kernel over items work-items using the
// device's workgroup size and scheduling policy.
//
// The returned RunResult (and its slices) come from per-device pools;
// callers that fold the numbers into their own accounting can hand the
// result back with Device.Recycle to make steady-state launches
// allocation-free. Callers that retain results just keep them and the GC
// takes over, exactly as before.
func (d *Device) Run(name string, items int, f KernelFunc) *RunResult {
	rr := d.getRunResult()
	d.execGroups(&rr.Stats, name, items, d.launches.Add(1), f)
	rr.Sched = SimulateSchedule(d, rr.Stats.GroupCost, d.Policy)
	return rr
}

// launchState carries one launch's shared state between the phase-A
// workers, avoiding a per-launch closure and channel.
type launchState struct {
	d      *Device
	stats  *KernelStats
	items  int
	launch uint64
	f      KernelFunc
	next   atomic.Int64 // workgroup grab cursor
	mu     sync.Mutex
	wgrp   sync.WaitGroup
}

func (st *launchState) work() {
	defer st.wgrp.Done()
	d := st.d
	ws := d.getWorkerScratch(1)
	acc, cache, local := ws.wfs[0], ws.cache, &ws.local
	groups := st.stats.Groups
	for {
		g := int(st.next.Add(1)) - 1
		if g >= groups {
			break
		}
		cache.reset()
		cost := d.execOneGroupSafe(g, st.items, st.launch, st.f, acc, cache, local)
		if fi := d.Fault; fi != nil && fi.stallGroup(st.launch, int32(g)) {
			cost *= fi.stallFactor()
		}
		st.stats.GroupCost[g] = cost
	}
	st.mu.Lock()
	st.stats.merge(local)
	st.mu.Unlock()
	d.putWorkerScratch(ws)
}

// execGroups is phase A: execute every workgroup, recording costs into
// stats (which is overwritten).
func (d *Device) execGroups(stats *KernelStats, name string, items int, launch uint64, f KernelFunc) {
	d.check()
	wg := d.WorkgroupSize
	width := d.WavefrontWidth
	groups := (items + wg - 1) / wg
	*stats = KernelStats{
		Name:      name,
		Items:     items,
		Groups:    groups,
		GroupCost: d.i64s.get(groups),
		width:     width,
	}
	if groups == 0 {
		return
	}
	// Every wavefront contributes one WavefrontCost entry; pre-sizing the
	// slice keeps the worker merges from reallocating it.
	stats.WavefrontCost = d.i64s.getCap((items + width - 1) / width)

	workers := d.workers()
	if workers > groups {
		workers = groups
	}
	st, _ := d.launchSt.Get().(*launchState)
	if st == nil {
		st = &launchState{}
	}
	st.d, st.stats, st.items, st.launch, st.f = d, stats, items, launch, f
	st.next.Store(0)
	st.wgrp.Add(workers)
	for w := 1; w < workers; w++ {
		go st.work()
	}
	st.work() // the caller is worker 0
	st.wgrp.Wait()
	st.stats, st.f = nil, nil
	d.launchSt.Put(st)
}

// execOneGroupSafe dispatches to execOneGroup; with a fault injector armed
// it additionally absorbs kernel-body panics (corrupted data can produce
// negative slice lengths and the like), recording the group as aborted.
// The named return keeps whatever cost had accumulated at zero — the
// panicked group simply contributes no further work, deterministically.
func (d *Device) execOneGroupSafe(g, items int, launch uint64, f KernelFunc, acc *wfAcc, cache *segCache, local *KernelStats) (cost int64) {
	if fi := d.Fault; fi != nil {
		defer func() {
			if r := recover(); r != nil {
				fi.notePanic()
				cost = 0
			}
		}()
	}
	return d.execOneGroup(g, items, launch, f, acc, cache, local)
}

// execOneGroup runs workgroup g's work-items lane by lane, wavefront by
// wavefront, and returns the group's simulated cost.
func (d *Device) execOneGroup(g, items int, launch uint64, f KernelFunc, acc *wfAcc, cache *segCache, local *KernelStats) int64 {
	wg := d.WorkgroupSize
	width := d.WavefrontWidth
	base := g * wg
	var groupCost int64
	for wfStart := 0; wfStart < wg; wfStart += width {
		if base+wfStart >= items {
			break // whole wavefront past the grid tail
		}
		if fi := d.Fault; fi != nil && fi.abortWavefront(launch, int32(g), int32(wfStart/width)) {
			continue // wavefront killed: no work, no writes
		}
		acc.reset()
		// One reusable Ctx per wavefront accumulator, rebuilt per lane by
		// field assignment: per-work-item Ctx values would escape into the
		// (unknown) kernel body and dominate heap allocations.
		c := &acc.ctx
		c.cm, c.wf, c.fi, c.launch = &d.Cost, acc, d.Fault, launch
		for l := 0; l < width; l++ {
			gid := base + wfStart + l
			if gid >= items {
				break
			}
			acc.lanes[l].active = true
			c.Global, c.Local, c.Group, c.laneIdx = int32(gid), int32(wfStart+l), int32(g), l
			f(c)
		}
		wc := acc.cost(&d.Cost, cache)
		groupCost += wc.cycles
		local.addWavefront(wc)
	}
	return groupCost
}
