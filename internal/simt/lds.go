package simt

import "slices"

// Local data share (LDS): workgroup-scoped scratch memory with a banked
// cost model. An LDS access instruction completes in one LDSOp when the
// wavefront's lanes hit distinct banks (or broadcast-read the same
// address); lanes hitting the same bank at different addresses serialize,
// so the instruction costs LDSOp times the worst bank's distinct-address
// count — the classic bank-conflict model.

// LDSBuf is a workgroup-local buffer. Allocate one per group inside a
// cooperative kernel with GroupCtx.AllocLDS; it is zeroed and private to
// the group.
type LDSBuf struct {
	data []int32
}

// Data returns the backing storage (group-private).
func (b *LDSBuf) Data() []int32 { return b.data }

// Len returns the element count.
func (b *LDSBuf) Len() int { return len(b.data) }

// AllocLDS allocates a zeroed workgroup-local buffer of n elements. The
// backing memory comes from the executing worker's LDS arena and is
// recycled after the group finishes, so steady-state cooperative kernels
// allocate no LDS on the heap.
func (g *GroupCtx) AllocLDS(n int) *LDSBuf {
	if g.lds == nil {
		return &LDSBuf{data: make([]int32, n)}
	}
	return g.lds.alloc(n)
}

// ldsArena is a worker-owned bump allocator backing AllocLDS. Buffers are
// group-private and dead once the group finishes, so reset() between
// groups recycles everything. Buf headers are recycled too; when the
// header slice grows, previously returned pointers stay valid (they point
// into the old array, whose data slices remain group-private).
type ldsArena struct {
	mem  []int32
	bufs []*LDSBuf
	used int // elements of mem handed out this group
	nb   int // headers handed out this group
}

func (a *ldsArena) reset() { a.used, a.nb = 0, 0 }

func (a *ldsArena) alloc(n int) *LDSBuf {
	if len(a.mem)-a.used < n {
		grown := make([]int32, a.used+n+len(a.mem))
		// Old buffers keep their slices into the old array; only the
		// unhanded-out tail moves.
		a.mem = grown
		a.used = 0
	}
	s := a.mem[a.used : a.used+n]
	for i := range s {
		s[i] = 0
	}
	a.used += n
	if a.nb == len(a.bufs) {
		a.bufs = append(a.bufs, &LDSBuf{})
	}
	b := a.bufs[a.nb]
	a.nb++
	b.data = s
	return b
}

// ldsOrd records the k-th LDS access of a wavefront: which (bank, address)
// pairs its lanes touched.
type ldsOrd struct {
	active int
	// pairs holds bank<<32 | address entries, possibly with duplicates;
	// ldsCost deduplicates by sorting (a repeated address is a broadcast
	// and costs nothing extra). Bank-conflict cost only depends on the set
	// of pairs, not their order, so recording can be append-only.
	pairs []uint64
}

// recordLDS notes that lane l issued an LDS access to element idx.
func (w *wfAcc) recordLDS(l int, idx int32, banks int32) {
	lane := &w.lanes[l]
	k := int(lane.ldsAccess)
	lane.ldsAccess++
	for len(w.ldsOrds) <= k {
		w.ldsOrds = append(w.ldsOrds, ldsOrd{})
	}
	if k >= w.nLdsOrds {
		w.nLdsOrds = k + 1
	}
	o := &w.ldsOrds[k]
	o.active++
	// LDSBanks is a power of two on every stock cost model, and this runs
	// once per simulated LDS access: mask instead of modulo.
	var bank uint64
	if b := uint32(banks); b&(b-1) == 0 {
		bank = uint64(uint32(idx) & (b - 1))
	} else {
		bank = uint64(uint32(idx) % uint32(banks))
	}
	o.pairs = append(o.pairs, bank<<32|uint64(uint32(idx)))
}

// ldsCost folds the wavefront's LDS activity into cycles: per ordinal,
// LDSOp times the worst bank's distinct-address count. Sorting groups each
// bank's pairs together (bank occupies the high bits) with duplicate
// addresses adjacent, so one pass counts the longest distinct run per bank.
func (w *wfAcc) ldsCost(cm *CostModel) (cycles int64, accesses int64) {
	for k := 0; k < w.nLdsOrds; k++ {
		o := &w.ldsOrds[k]
		slices.Sort(o.pairs)
		worst := 1
		run := 0
		prev := ^uint64(0)
		for _, p := range o.pairs {
			if p == prev {
				continue // broadcast: same bank, same address
			}
			if p>>32 == prev>>32 {
				run++
			} else {
				run = 1
			}
			prev = p
			if run > worst {
				worst = run
			}
		}
		cycles += cm.LDSOp * int64(worst)
	}
	for i := range w.lanes {
		accesses += int64(w.lanes[i].ldsAccess)
	}
	return cycles, accesses
}

// LdsLd loads element i of the group-local buffer b, accounting one LDS
// access.
func (c *Ctx) LdsLd(b *LDSBuf, i int32) int32 {
	c.wf.recordLDS(c.laneIdx, i, c.cm.LDSBanks)
	return b.data[i]
}

// LdsSt stores v to element i of the group-local buffer b, accounting one
// LDS access. Stores from different lanes to the same element within one
// phase are a programming error on real hardware too; the simulator keeps
// last-writer-wins semantics.
func (c *Ctx) LdsSt(b *LDSBuf, i int32, v int32) {
	c.wf.recordLDS(c.laneIdx, i, c.cm.LDSBanks)
	b.data[i] = v
}
