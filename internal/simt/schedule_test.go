package simt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func sum64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || RoundRobin.String() != "round-robin" || Stealing.String() != "stealing" {
		t.Error("Policy.String wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Errorf("unknown policy string = %q", Policy(9).String())
	}
}

func TestStaticChunking(t *testing.T) {
	d := testDevice() // 4 CUs
	costs := []int64{1, 1, 1, 1, 10, 10, 10, 10}
	res := SimulateSchedule(d, costs, Static)
	// chunk = 2: CU0 gets {1,1}, CU1 {1,1}, CU2 {10,10}, CU3 {10,10}.
	want := []int64{2, 2, 20, 20}
	for i, w := range want {
		if res.CUBusy[i] != w {
			t.Errorf("CUBusy[%d] = %d, want %d", i, res.CUBusy[i], w)
		}
	}
	if res.Makespan != 20 {
		t.Errorf("Makespan = %d, want 20", res.Makespan)
	}
	if res.Cycles != 20+d.Cost.KernelLaunch {
		t.Errorf("Cycles = %d, want makespan+launch", res.Cycles)
	}
}

func TestRoundRobinDealing(t *testing.T) {
	d := testDevice()
	costs := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	res := SimulateSchedule(d, costs, RoundRobin)
	want := []int64{1 + 5, 2 + 6, 3 + 7, 4 + 8}
	for i, w := range want {
		if res.CUBusy[i] != w {
			t.Errorf("CUBusy[%d] = %d, want %d", i, res.CUBusy[i], w)
		}
	}
}

func TestStealingBalancesSkew(t *testing.T) {
	d := testDevice() // 4 CUs, StealCost from default model
	// All the work in the first chunk: static would serialize on CU0.
	costs := make([]int64, 40)
	for i := 0; i < 10; i++ {
		costs[i] = 1000
	}
	static := SimulateSchedule(d, costs, Static)
	steal := SimulateSchedule(d, costs, Stealing)
	if steal.Steals == 0 {
		t.Fatal("no steals happened on fully skewed input")
	}
	if steal.Makespan >= static.Makespan {
		t.Errorf("stealing makespan %d >= static %d", steal.Makespan, static.Makespan)
	}
	// Work conservation: total busy = total cost + steals*StealCost.
	want := sum64(costs) + steal.Steals*d.Cost.StealCost
	if got := sum64(steal.CUBusy); got != want {
		t.Errorf("stealing busy total = %d, want %d", got, want)
	}
}

func TestStealingUniformNoRegression(t *testing.T) {
	d := testDevice()
	costs := make([]int64, 64)
	for i := range costs {
		costs[i] = 100
	}
	static := SimulateSchedule(d, costs, Static)
	steal := SimulateSchedule(d, costs, Stealing)
	// Balanced input: stealing must not be more than one steal-burst worse.
	if steal.Makespan > static.Makespan+4*d.Cost.StealCost {
		t.Errorf("stealing makespan %d far above static %d on uniform input",
			steal.Makespan, static.Makespan)
	}
}

func TestScheduleEmpty(t *testing.T) {
	d := testDevice()
	for _, p := range []Policy{Static, RoundRobin, Stealing} {
		res := SimulateSchedule(d, nil, p)
		if res.Makespan != 0 {
			t.Errorf("%v: empty schedule makespan = %d", p, res.Makespan)
		}
		if res.Cycles != d.Cost.KernelLaunch {
			t.Errorf("%v: empty schedule cycles = %d", p, res.Cycles)
		}
	}
}

func TestScheduleFewerGroupsThanCUs(t *testing.T) {
	d := NewDevice() // 28 CUs
	costs := []int64{5, 7}
	for _, p := range []Policy{Static, RoundRobin, Stealing} {
		res := SimulateSchedule(d, costs, p)
		base := sum64(res.CUBusy) - res.Steals*d.Cost.StealCost
		if base != 12 {
			t.Errorf("%v: work not conserved: %d", p, base)
		}
		if res.Makespan < 7 {
			t.Errorf("%v: makespan %d below largest group", p, res.Makespan)
		}
	}
}

func TestStealingDeterministic(t *testing.T) {
	d := testDevice()
	rng := rand.New(rand.NewSource(1))
	costs := make([]int64, 100)
	for i := range costs {
		costs[i] = int64(rng.Intn(1000))
	}
	a := SimulateSchedule(d, costs, Stealing)
	b := SimulateSchedule(d, costs, Stealing)
	if a.Steals != b.Steals || a.Makespan != b.Makespan {
		t.Errorf("stealing simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown policy did not panic")
		}
	}()
	SimulateSchedule(testDevice(), []int64{1}, Policy(42))
}

// Properties, all policies: work conservation (modulo steal charges),
// makespan >= max group cost, makespan >= total/NumCUs (lower bound),
// makespan <= total (upper bound for non-stealing; stealing adds charges).
func TestScheduleInvariantsProperty(t *testing.T) {
	d := testDevice()
	f := func(raw []uint16) bool {
		costs := make([]int64, len(raw))
		var total, maxC int64
		for i, r := range raw {
			costs[i] = int64(r)
			total += int64(r)
			if int64(r) > maxC {
				maxC = int64(r)
			}
		}
		for _, p := range []Policy{Static, RoundRobin, Stealing} {
			res := SimulateSchedule(d, costs, p)
			work := sum64(res.CUBusy) - res.Steals*d.Cost.StealCost
			if work != total {
				return false
			}
			if res.Makespan < maxC {
				return false
			}
			lower := total / int64(d.NumCUs)
			if res.Makespan < lower {
				return false
			}
			if p != Stealing && res.Makespan > total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: stealing never loses or duplicates a workgroup — checked via
// conservation above plus the stronger multiset check here on a tagged run.
func TestStealingExecutesAllGroupsProperty(t *testing.T) {
	d := testDevice()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN) % 200
		rng := rand.New(rand.NewSource(seed))
		costs := make([]int64, n)
		// Tag each group with a distinct power contribution so any loss or
		// duplication changes the conserved sum.
		var total int64
		for i := range costs {
			costs[i] = int64(rng.Intn(500)) + 1
			total += costs[i]
		}
		res := SimulateSchedule(d, costs, Stealing)
		return sum64(res.CUBusy)-res.Steals*d.Cost.StealCost == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
