package simt

import "sync"

// CoopFunc is the body of a cooperative kernel: it is invoked once per
// workgroup, and the whole workgroup processes one task together (the
// paper's workgroup-per-vertex kernels). Work is distributed over lanes via
// the GroupCtx collectives below.
type CoopFunc func(g *GroupCtx)

// GroupCtx is a workgroup's view of the device inside a cooperative kernel.
type GroupCtx struct {
	id     int32
	size   int
	width  int
	cm     *CostModel
	wfs    []*wfAcc
	fi     *FaultInjector
	launch uint64

	extraCost   int64 // barrier + collective charges
	barriers    int64
	collectives int64
}

// ID returns the workgroup id (which cooperative kernels use as the task
// id, e.g. the vertex this group processes).
func (g *GroupCtx) ID() int32 { return g.id }

// Size returns the number of work-items in the group.
func (g *GroupCtx) Size() int { return g.size }

func (g *GroupCtx) ctxFor(lane int) Ctx {
	wf := lane / g.width
	l := lane % g.width
	g.wfs[wf].lanes[l].active = true
	return Ctx{
		Global:  g.id*int32(g.size) + int32(lane),
		Local:   int32(lane),
		Group:   g.id,
		cm:      g.cm,
		wf:      g.wfs[wf],
		laneIdx: l,
		fi:      g.fi,
		launch:  g.launch,
	}
}

// ForEach runs body for every i in [0, n), striding the iterations across
// the group's work-items in chunks of Size() — the canonical cooperative
// loop over a vertex's neighbour list.
func (g *GroupCtx) ForEach(n int32, body func(c *Ctx, i int32)) {
	for chunk := int32(0); chunk < n; chunk += int32(g.size) {
		for lane := 0; lane < g.size && chunk+int32(lane) < n; lane++ {
			c := g.ctxFor(lane)
			body(&c, chunk+int32(lane))
		}
	}
}

// Any evaluates pred over [0, n) cooperatively and reports whether any
// invocation returned true. After each chunk of Size() items the group
// reduces its verdict (one collective per wavefront plus a barrier) and
// exits early on success, modelling the ballot-and-break idiom.
func (g *GroupCtx) Any(n int32, pred func(c *Ctx, i int32) bool) bool {
	for chunk := int32(0); chunk < n; chunk += int32(g.size) {
		found := false
		for lane := 0; lane < g.size && chunk+int32(lane) < n; lane++ {
			c := g.ctxFor(lane)
			if pred(&c, chunk+int32(lane)) {
				found = true
			}
		}
		g.reduceCharge(chunk, n)
		if found {
			return true
		}
	}
	return false
}

// reduceCharge accounts a chunk-wide reduction: one collective per wavefront
// that had live lanes in this chunk, plus one barrier across the group.
func (g *GroupCtx) reduceCharge(chunk, n int32) {
	live := n - chunk
	if live > int32(g.size) {
		live = int32(g.size)
	}
	wfsLive := (int(live) + g.width - 1) / g.width
	g.extraCost += int64(wfsLive)*g.cm.Collective + g.cm.Barrier
	g.collectives += int64(wfsLive)
	g.barriers++
}

// One runs body on lane 0 only (the "if (tid == 0)" idiom).
func (g *GroupCtx) One(body func(c *Ctx)) {
	c := g.ctxFor(0)
	body(&c)
}

// Barrier charges a workgroup barrier.
func (g *GroupCtx) Barrier() {
	g.extraCost += g.cm.Barrier * int64(len(g.wfs))
	g.barriers++
}

// RunCoop executes a cooperative kernel with the given number of workgroups,
// each of the device's workgroup size.
func (d *Device) RunCoop(name string, groups int, f CoopFunc) *RunResult {
	stats := d.execCoopGroups(name, groups, d.launches.Add(1), f)
	sched := SimulateSchedule(d, stats.GroupCost, d.Policy)
	return &RunResult{Stats: *stats, Sched: sched}
}

func (d *Device) execCoopGroups(name string, groups int, launch uint64, f CoopFunc) *KernelStats {
	d.check()
	width := d.WavefrontWidth
	size := d.WorkgroupSize
	nWfs := size / width
	stats := &KernelStats{
		Name:      name,
		Items:     groups * size,
		Groups:    groups,
		GroupCost: make([]int64, groups),
		width:     width,
	}
	if groups == 0 {
		return stats
	}
	workers := d.workers()
	if workers > groups {
		workers = groups
	}
	var mu sync.Mutex
	var wgrp sync.WaitGroup
	groupCh := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wgrp.Add(1)
		go func() {
			defer wgrp.Done()
			local := &KernelStats{width: width}
			wfs := make([]*wfAcc, nWfs)
			for i := range wfs {
				wfs[i] = newWfAcc(width)
			}
			cache := newSegCache(d.Cost.CacheSegments)
			for gi := range groupCh {
				cache.reset()
				for _, wf := range wfs {
					wf.reset()
				}
				gc := &GroupCtx{
					id:     int32(gi),
					size:   size,
					width:  width,
					cm:     &d.Cost,
					wfs:    wfs,
					fi:     d.Fault,
					launch: launch,
				}
				cost := d.execCoopGroup(gc, launch, f, cache, local)
				if fi := d.Fault; fi != nil && fi.stallGroup(launch, gc.id) {
					cost *= fi.stallFactor()
				}
				stats.GroupCost[gi] = cost
			}
			mu.Lock()
			stats.merge(local)
			mu.Unlock()
		}()
	}
	for g := 0; g < groups; g++ {
		groupCh <- g
	}
	close(groupCh)
	wgrp.Wait()
	return stats
}

// execCoopGroup runs one cooperative workgroup and costs it out. With a
// fault injector armed, the whole group may be aborted before executing
// (the cooperative analogue of a wavefront abort — the group owns one
// task, so killing part of it is indistinguishable from killing it all),
// and kernel-body panics on corrupted data are absorbed as group panics.
func (d *Device) execCoopGroup(gc *GroupCtx, launch uint64, f CoopFunc, cache *segCache, local *KernelStats) (cost int64) {
	if fi := d.Fault; fi != nil {
		if fi.abortWavefront(launch, gc.id, 0) {
			return 0
		}
		defer func() {
			if r := recover(); r != nil {
				fi.notePanic()
				cost = 0
			}
		}()
	}
	f(gc)
	for _, wf := range gc.wfs {
		wc := wf.cost(&d.Cost, cache)
		cost += wc.cycles
		local.addWavefront(wc)
	}
	cost += gc.extraCost
	local.Barriers += gc.barriers
	local.Collectives += gc.collectives
	return cost
}
