package simt

import (
	"sync"
	"sync/atomic"
)

// CoopFunc is the body of a cooperative kernel: it is invoked once per
// workgroup, and the whole workgroup processes one task together (the
// paper's workgroup-per-vertex kernels). Work is distributed over lanes via
// the GroupCtx collectives below.
type CoopFunc func(g *GroupCtx)

// GroupCtx is a workgroup's view of the device inside a cooperative kernel.
type GroupCtx struct {
	id     int32
	size   int
	width  int
	cm     *CostModel
	wfs    []*wfAcc
	fi     *FaultInjector
	launch uint64
	lds    *ldsArena // worker-owned LDS backing store, reset per group

	extraCost   int64 // barrier + collective charges
	barriers    int64
	collectives int64

	// ctx is the single lane context handed to kernel bodies, rebuilt per
	// lane by ctxFor. Sharing one keeps the per-lane dispatch
	// allocation-free; bodies must not retain it past their invocation
	// (the documented Ctx contract).
	ctx Ctx
}

// ID returns the workgroup id (which cooperative kernels use as the task
// id, e.g. the vertex this group processes).
func (g *GroupCtx) ID() int32 { return g.id }

// Size returns the number of work-items in the group.
func (g *GroupCtx) Size() int { return g.size }

func (g *GroupCtx) ctxFor(lane int) *Ctx {
	wf := lane / g.width
	l := lane % g.width
	g.wfs[wf].lanes[l].active = true
	g.ctx = Ctx{
		Global:  g.id*int32(g.size) + int32(lane),
		Local:   int32(lane),
		Group:   g.id,
		cm:      g.cm,
		wf:      g.wfs[wf],
		laneIdx: l,
		fi:      g.fi,
		launch:  g.launch,
	}
	return &g.ctx
}

// ForEach runs body for every i in [0, n), striding the iterations across
// the group's work-items in chunks of Size() — the canonical cooperative
// loop over a vertex's neighbour list.
func (g *GroupCtx) ForEach(n int32, body func(c *Ctx, i int32)) {
	for chunk := int32(0); chunk < n; chunk += int32(g.size) {
		for lane := 0; lane < g.size && chunk+int32(lane) < n; lane++ {
			body(g.ctxFor(lane), chunk+int32(lane))
		}
	}
}

// Any evaluates pred over [0, n) cooperatively and reports whether any
// invocation returned true. After each chunk of Size() items the group
// reduces its verdict (one collective per wavefront plus a barrier) and
// exits early on success, modelling the ballot-and-break idiom.
func (g *GroupCtx) Any(n int32, pred func(c *Ctx, i int32) bool) bool {
	for chunk := int32(0); chunk < n; chunk += int32(g.size) {
		found := false
		for lane := 0; lane < g.size && chunk+int32(lane) < n; lane++ {
			if pred(g.ctxFor(lane), chunk+int32(lane)) {
				found = true
			}
		}
		g.reduceCharge(chunk, n)
		if found {
			return true
		}
	}
	return false
}

// reduceCharge accounts a chunk-wide reduction: one collective per wavefront
// that had live lanes in this chunk, plus one barrier across the group.
func (g *GroupCtx) reduceCharge(chunk, n int32) {
	live := n - chunk
	if live > int32(g.size) {
		live = int32(g.size)
	}
	wfsLive := (int(live) + g.width - 1) / g.width
	g.extraCost += int64(wfsLive)*g.cm.Collective + g.cm.Barrier
	g.collectives += int64(wfsLive)
	g.barriers++
}

// One runs body on lane 0 only (the "if (tid == 0)" idiom).
func (g *GroupCtx) One(body func(c *Ctx)) {
	body(g.ctxFor(0))
}

// Barrier charges a workgroup barrier.
func (g *GroupCtx) Barrier() {
	g.extraCost += g.cm.Barrier * int64(len(g.wfs))
	g.barriers++
}

// RunCoop executes a cooperative kernel with the given number of workgroups,
// each of the device's workgroup size. Like Run, the result comes from the
// device pools and may be handed back with Device.Recycle.
func (d *Device) RunCoop(name string, groups int, f CoopFunc) *RunResult {
	rr := d.getRunResult()
	d.execCoopGroups(&rr.Stats, name, groups, d.launches.Add(1), f)
	rr.Sched = SimulateSchedule(d, rr.Stats.GroupCost, d.Policy)
	return rr
}

// coopLaunchState mirrors launchState for cooperative kernels.
type coopLaunchState struct {
	d      *Device
	stats  *KernelStats
	size   int
	nWfs   int
	launch uint64
	f      CoopFunc
	next   atomic.Int64
	mu     sync.Mutex
	wgrp   sync.WaitGroup
}

func (st *coopLaunchState) work() {
	defer st.wgrp.Done()
	d := st.d
	ws := d.getWorkerScratch(st.nWfs)
	wfs, cache, local := ws.wfs[:st.nWfs], ws.cache, &ws.local
	groups := st.stats.Groups
	for {
		gi := int(st.next.Add(1)) - 1
		if gi >= groups {
			break
		}
		cache.reset()
		for _, wf := range wfs {
			wf.reset()
		}
		ws.lds.reset()
		// The GroupCtx lives in the worker scratch and is rebuilt per group
		// by assignment: a stack value would escape into the kernel body and
		// allocate per group.
		gc := &ws.gctx
		*gc = GroupCtx{
			id:     int32(gi),
			size:   st.size,
			width:  ws.width,
			cm:     &d.Cost,
			wfs:    wfs,
			fi:     d.Fault,
			launch: st.launch,
			lds:    &ws.lds,
		}
		cost := d.execCoopGroup(gc, st.launch, st.f, cache, local)
		if fi := d.Fault; fi != nil && fi.stallGroup(st.launch, gc.id) {
			cost *= fi.stallFactor()
		}
		st.stats.GroupCost[gi] = cost
	}
	st.mu.Lock()
	st.stats.merge(local)
	st.mu.Unlock()
	d.putWorkerScratch(ws)
}

func (d *Device) execCoopGroups(stats *KernelStats, name string, groups int, launch uint64, f CoopFunc) {
	d.check()
	width := d.WavefrontWidth
	size := d.WorkgroupSize
	nWfs := size / width
	*stats = KernelStats{
		Name:      name,
		Items:     groups * size,
		Groups:    groups,
		GroupCost: d.i64s.get(groups),
		width:     width,
	}
	if groups == 0 {
		return
	}
	stats.WavefrontCost = d.i64s.getCap(groups * nWfs)
	workers := d.workers()
	if workers > groups {
		workers = groups
	}
	st, _ := d.coopSt.Get().(*coopLaunchState)
	if st == nil {
		st = &coopLaunchState{}
	}
	st.d, st.stats, st.size, st.nWfs, st.launch, st.f = d, stats, size, nWfs, launch, f
	st.next.Store(0)
	st.wgrp.Add(workers)
	for w := 1; w < workers; w++ {
		go st.work()
	}
	st.work()
	st.wgrp.Wait()
	st.stats, st.f = nil, nil
	d.coopSt.Put(st)
}

// execCoopGroup runs one cooperative workgroup and costs it out. With a
// fault injector armed, the whole group may be aborted before executing
// (the cooperative analogue of a wavefront abort — the group owns one
// task, so killing part of it is indistinguishable from killing it all),
// and kernel-body panics on corrupted data are absorbed as group panics.
func (d *Device) execCoopGroup(gc *GroupCtx, launch uint64, f CoopFunc, cache *segCache, local *KernelStats) (cost int64) {
	if fi := d.Fault; fi != nil {
		if fi.abortWavefront(launch, gc.id, 0) {
			return 0
		}
		defer func() {
			if r := recover(); r != nil {
				fi.notePanic()
				cost = 0
			}
		}()
	}
	f(gc)
	for _, wf := range gc.wfs {
		wc := wf.cost(&d.Cost, cache)
		cost += wc.cycles
		local.addWavefront(wc)
	}
	cost += gc.extraCost
	local.Barriers += gc.barriers
	local.Collectives += gc.collectives
	return cost
}
