package simt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Device describes one simulated GPU. The zero value is not usable; create
// devices with NewDevice and adjust fields before the first kernel launch.
type Device struct {
	// NumCUs is the number of compute units (default 28, as on the
	// Radeon HD 7950). Each CU executes its assigned workgroups serially.
	NumCUs int
	// WavefrontWidth is the SIMD width in lanes (default 64, GCN wavefront).
	WavefrontWidth int
	// WorkgroupSize is the default work-items per workgroup (default 256);
	// it must be a positive multiple of WavefrontWidth.
	WorkgroupSize int
	// Policy selects the workgroup scheduling policy used by Run
	// (default Static). SimulateSchedule can replay other policies.
	Policy Policy
	// Cost holds the timing constants.
	Cost CostModel
	// Workers bounds phase-A wall-clock parallelism; 0 means GOMAXPROCS.
	// Set 1 for fully deterministic inter-group execution order (only
	// observable by kernels that race through atomics by design).
	Workers int
	// Fault, when non-nil, injects deterministic seeded faults into every
	// kernel launch and switches the device to permissive out-of-bounds
	// semantics (see FaultInjector). nil — the default — costs nothing and
	// changes nothing.
	Fault *FaultInjector

	nextBuf  atomic.Int32
	launches atomic.Uint64

	// arena pools released device buffers (see arena.go); the remaining
	// pools recycle per-launch statistics slices and phase-A worker
	// scratch. All are concurrency-safe and cost nothing until used.
	arena      arena
	i64s       i64pool
	runResults sync.Pool
	workers_   sync.Pool
	launchSt   sync.Pool // *launchState
	coopSt     sync.Pool // *coopLaunchState
}

// NewDevice returns a device with HD 7950-like defaults.
func NewDevice() *Device {
	return &Device{
		NumCUs:         28,
		WavefrontWidth: 64,
		WorkgroupSize:  256,
		Policy:         Static,
		Cost:           DefaultCostModel(),
	}
}

// check panics on malformed configuration; configuration is programmer
// input, not runtime data.
func (d *Device) check() {
	if d.NumCUs < 1 {
		panic(fmt.Sprintf("simt: NumCUs = %d, want >= 1", d.NumCUs))
	}
	if d.WavefrontWidth < 1 {
		panic(fmt.Sprintf("simt: WavefrontWidth = %d, want >= 1", d.WavefrontWidth))
	}
	if d.WorkgroupSize < 1 || d.WorkgroupSize%d.WavefrontWidth != 0 {
		panic(fmt.Sprintf("simt: WorkgroupSize = %d, want positive multiple of wavefront width %d",
			d.WorkgroupSize, d.WavefrontWidth))
	}
}

func (d *Device) workers() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BufInt32 is a device buffer of 32-bit integers. Buffers wrap host slices
// zero-copy (shared virtual memory style); the simulator only needs the
// buffer identity and element index for coalescing analysis.
type BufInt32 struct {
	id   int32
	data []int32
	// pooled marks arena-allocated buffers (the only ones Release accepts);
	// released guards against use of the arena's double-release panic.
	pooled   bool
	released bool
}

// AllocInt32 allocates a zeroed device buffer of n elements. Allocation is
// served from the device arena when a previously Released buffer fits;
// otherwise it falls back to the heap. Either way the caller sees a zeroed
// buffer of exactly n elements, and may later hand it back with Release.
func (d *Device) AllocInt32(n int) *BufInt32 {
	if b := d.arena.take(n); b != nil {
		b.id = d.nextBuf.Add(1)
		b.data = b.data[:cap(b.data)][:n]
		for i := range b.data {
			b.data[i] = 0
		}
		b.released = false
		return b
	}
	b := d.BindInt32(make([]int32, n, 1<<bucketFor(n)))
	b.pooled = true
	return b
}

// BindInt32 wraps an existing slice as a device buffer without copying.
// The slice remains readable/writable from the host between kernel launches.
func (d *Device) BindInt32(data []int32) *BufInt32 {
	return &BufInt32{id: d.nextBuf.Add(1), data: data}
}

// Data returns the backing slice (host view) of the buffer.
func (b *BufInt32) Data() []int32 { return b.data }

// Len returns the element count of the buffer.
func (b *BufInt32) Len() int { return len(b.data) }

// Fill sets every element to v (a host-side operation, not accounted).
func (b *BufInt32) Fill(v int32) {
	for i := range b.data {
		b.data[i] = v
	}
}
