package simt

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Device describes one simulated GPU. The zero value is not usable; create
// devices with NewDevice and adjust fields before the first kernel launch.
type Device struct {
	// NumCUs is the number of compute units (default 28, as on the
	// Radeon HD 7950). Each CU executes its assigned workgroups serially.
	NumCUs int
	// WavefrontWidth is the SIMD width in lanes (default 64, GCN wavefront).
	WavefrontWidth int
	// WorkgroupSize is the default work-items per workgroup (default 256);
	// it must be a positive multiple of WavefrontWidth.
	WorkgroupSize int
	// Policy selects the workgroup scheduling policy used by Run
	// (default Static). SimulateSchedule can replay other policies.
	Policy Policy
	// Cost holds the timing constants.
	Cost CostModel
	// Workers bounds phase-A wall-clock parallelism; 0 means GOMAXPROCS.
	// Set 1 for fully deterministic inter-group execution order (only
	// observable by kernels that race through atomics by design).
	Workers int
	// Fault, when non-nil, injects deterministic seeded faults into every
	// kernel launch and switches the device to permissive out-of-bounds
	// semantics (see FaultInjector). nil — the default — costs nothing and
	// changes nothing.
	Fault *FaultInjector

	nextBuf  atomic.Int32
	launches atomic.Uint64
}

// NewDevice returns a device with HD 7950-like defaults.
func NewDevice() *Device {
	return &Device{
		NumCUs:         28,
		WavefrontWidth: 64,
		WorkgroupSize:  256,
		Policy:         Static,
		Cost:           DefaultCostModel(),
	}
}

// check panics on malformed configuration; configuration is programmer
// input, not runtime data.
func (d *Device) check() {
	if d.NumCUs < 1 {
		panic(fmt.Sprintf("simt: NumCUs = %d, want >= 1", d.NumCUs))
	}
	if d.WavefrontWidth < 1 {
		panic(fmt.Sprintf("simt: WavefrontWidth = %d, want >= 1", d.WavefrontWidth))
	}
	if d.WorkgroupSize < 1 || d.WorkgroupSize%d.WavefrontWidth != 0 {
		panic(fmt.Sprintf("simt: WorkgroupSize = %d, want positive multiple of wavefront width %d",
			d.WorkgroupSize, d.WavefrontWidth))
	}
}

func (d *Device) workers() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BufInt32 is a device buffer of 32-bit integers. Buffers wrap host slices
// zero-copy (shared virtual memory style); the simulator only needs the
// buffer identity and element index for coalescing analysis.
type BufInt32 struct {
	id   int32
	data []int32
}

// AllocInt32 allocates a zeroed device buffer of n elements.
func (d *Device) AllocInt32(n int) *BufInt32 {
	return d.BindInt32(make([]int32, n))
}

// BindInt32 wraps an existing slice as a device buffer without copying.
// The slice remains readable/writable from the host between kernel launches.
func (d *Device) BindInt32(data []int32) *BufInt32 {
	return &BufInt32{id: d.nextBuf.Add(1), data: data}
}

// Data returns the backing slice (host view) of the buffer.
func (b *BufInt32) Data() []int32 { return b.data }

// Len returns the element count of the buffer.
func (b *BufInt32) Len() int { return len(b.data) }

// Fill sets every element to v (a host-side operation, not accounted).
func (b *BufInt32) Fill(v int32) {
	for i := range b.data {
		b.data[i] = v
	}
}
