package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"gcolor/internal/serve"
)

// NewWorkerClient builds the pooled keep-alive HTTP client used for
// worker calls. Distinct from http.DefaultClient on purpose: a
// coordinator scattering K shards to the same worker needs K warm
// connections to that host, and the default transport's per-host idle
// cap (2) would close and re-dial the rest on every job. conc sizes the
// per-host idle pool (0 means a generous default covering MaxShards
// parallel sub-jobs).
func NewWorkerClient(timeout time.Duration, conc int) *http.Client {
	if conc <= 0 {
		conc = 32
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			// A hung worker must never hang the merge barrier: dials and TLS
			// handshakes are bounded here regardless of the request context.
			// ResponseHeaderTimeout is deliberately NOT set — a routed job
			// legitimately computes for seconds before the first header byte,
			// and the per-call context deadline (workerCtx) bounds that.
			DialContext: (&net.Dialer{
				Timeout:   2 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout: 2 * time.Second,
			MaxIdleConns:        4 * conc,
			MaxIdleConnsPerHost: conc,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// newControlClient builds the client for control-plane calls (join,
// heartbeat probes, standby watch). Unlike worker job calls these are
// small and fast, so the response header itself is deadline-bounded: a
// peer that accepts the connection and then wedges is indistinguishable
// from a dead one within timeout.
func newControlClient(timeout time.Duration) *http.Client {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   timeout,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   timeout,
			ResponseHeaderTimeout: timeout,
			MaxIdleConns:          64,
			MaxIdleConnsPerHost:   4,
			IdleConnTimeout:       90 * time.Second,
		},
	}
}

// callWorker POSTs one ColorRequest to a worker's /color and decodes the
// reply. The originating request ID is propagated as X-Request-ID (so the
// worker's journal records the coordinator's correlation ID — the
// cross-hop evidence trail) and idemKey, when non-empty, as
// Idempotency-Key (whole-graph routes only; shard sub-jobs never forward
// it, a single client key fanned out to K shards would collide in the
// workers' idempotency maps). epoch, when non-zero, rides as X-GC-Epoch
// so the worker can fence a deposed coordinator. Any failure returns a
// *WorkerError; a worker's Retry-After hint is preserved on it.
func callWorker(ctx context.Context, client *http.Client, workerURL string, cr *serve.ColorRequest, rid, idemKey string, epoch uint64) (*serve.ColorResponse, error) {
	body, err := json.Marshal(cr)
	if err != nil {
		return nil, &WorkerError{Worker: workerURL, Kind: "encode", Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/color", bytes.NewReader(body))
	if err != nil {
		return nil, &WorkerError{Worker: workerURL, Kind: "request", Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if epoch > 0 {
		req.Header.Set(serve.EpochHeader, strconv.FormatUint(epoch, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, &WorkerError{Worker: workerURL, Kind: "transport", Err: err}
	}
	defer resp.Body.Close()
	// Bounded read: a worker reply is a coloring, not a graph, but a
	// confused or malicious endpoint must not balloon coordinator memory.
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, &WorkerError{Worker: workerURL, Status: resp.StatusCode, Kind: "transport", Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		kind := "failed"
		msg := ""
		var er struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		if json.Unmarshal(raw, &er) == nil && er.Kind != "" {
			kind = er.Kind
			msg = er.Error
		}
		retryAfter := 0
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs > 0 {
				retryAfter = secs
			}
		}
		return nil, &WorkerError{
			Worker:     workerURL,
			Status:     resp.StatusCode,
			Kind:       kind,
			RetryAfter: retryAfter,
			Err:        fmt.Errorf("%s", firstNonEmpty(msg, http.StatusText(resp.StatusCode))),
		}
	}
	var out serve.ColorResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, &WorkerError{Worker: workerURL, Status: resp.StatusCode, Kind: "decode", Err: err}
	}
	return &out, nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
