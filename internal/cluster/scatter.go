package cluster

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"gcolor/internal/graph"
	"gcolor/internal/serve"
	"gcolor/internal/shard"
)

// errScatterUnavailable is the internal "fall back to whole-graph
// routing" signal: the job qualified for scatter but the fleet cannot
// host one right now (fewer than two live workers).
var errScatterUnavailable = errors.New("cluster: scatter unavailable")

// scatter runs one job as a cross-worker scatter-gather: partition with
// the edge-balanced splitter, POST one sub-job per shard to rendezvous-
// chosen workers in parallel, barrier on the gather, and reconcile the
// per-shard colorings with the bounded boundary repair loop — at the
// coordinator, because only the coordinator holds the whole graph.
//
// Failover: a shard whose worker fails retryably is re-dispatched to a
// different worker (exclude-failed), bounded by ShardAttempts — with the
// default 2, exactly one re-dispatch. Sub-jobs are sent no-cache so
// workers do not stash shard fragments under the subgraph's fingerprint;
// the merged result lives only in the coordinator's cache.
func (c *Coordinator) scatter(ctx context.Context, g *graph.Graph, cr *serve.ColorRequest, rid string, fp uint64) (*serve.ColorResponse, error) {
	live := len(c.reg.alive())
	if live < 2 {
		return nil, errScatterUnavailable
	}
	k := c.cfg.ShardK
	if cr.Shards >= 2 {
		k = cr.Shards
	}
	if k <= 0 {
		k = live
	}
	if k > c.cfg.MaxShards {
		k = c.cfg.MaxShards
	}
	if k > g.NumVertices() {
		k = g.NumVertices()
	}
	if k < 2 {
		return nil, errScatterUnavailable
	}
	plan, err := shard.Partition(g, k, true)
	if err != nil {
		return nil, err
	}

	type shardOut struct {
		colors     []int32
		cycles     int64
		iterations int
		attempts   int
		err        error
	}
	outs := make([]shardOut, plan.K)
	// Every shard dispatch is deadline-bounded even when the caller's
	// context is not: a single hung worker must never hang the merge
	// barrier below.
	ctx, wcancel := c.workerCtx(ctx)
	defer wcancel()
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := range plan.Subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			colors, cycles, iters, attempts, err := c.dispatchShard(sctx, plan.Subs[i], cr, rid, fp, i, plan.K)
			outs[i] = shardOut{colors: colors, cycles: cycles, iterations: iters, attempts: attempts, err: err}
			if err != nil {
				cancel() // a lost shard fails the merge; reel the siblings in
			}
		}(i)
	}
	wg.Wait() // merge barrier: every shard decided

	// Prefer the error of the shard that actually failed over siblings
	// that merely observed the cancellation.
	var firstErr error
	redispatched := 0
	for i := range outs {
		if outs[i].attempts > 1 {
			redispatched += outs[i].attempts - 1
		}
		e := outs[i].err
		if e == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(e, context.Canceled)) {
			firstErr = e
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	parts := make([][]int32, plan.K)
	for i := range outs {
		parts[i] = outs[i].colors
	}
	colors, st, err := shard.MergeRepair(g, plan, parts, cr.Seed, c.cfg.MaxRepairRounds, cr.NoCPUFallback)
	if err != nil {
		return nil, err
	}
	res := &serve.ColorResponse{
		Colors:            colors,
		NumColors:         st.NumColors,
		Vertices:          g.NumVertices(),
		Edges:             g.NumEdges(),
		Shards:            plan.K,
		ShardConflicts:    st.Conflicts,
		ShardRepairRounds: st.Rounds,
		ShardRecolored:    st.Recolored,
		Device:            -1, // the job spanned several workers
		Scattered:         true,
		Redispatched:      redispatched,
	}
	for i := range outs {
		res.Cycles += outs[i].cycles // serial-equivalent fleet work
		if outs[i].iterations > res.Iterations {
			res.Iterations = outs[i].iterations
		}
	}
	return res, nil
}

// dispatchShard sends one shard sub-job, failing over across workers up
// to ShardAttempts times. The shard's rendezvous key decorrelates from
// the whole graph's (and from sibling shards') so the K sub-jobs of one
// scatter spread across the fleet instead of piling onto fp's owner.
func (c *Coordinator) dispatchShard(ctx context.Context, sub *graph.Graph, cr *serve.ColorRequest, rid string, fp uint64, i, k int) (colors []int32, cycles int64, iterations, attempts int, err error) {
	// Shards travel as binary CSR frames (base64 in the JSON envelope),
	// not edge-list text: the worker decodes the frame straight into its
	// CSR arrays instead of re-parsing and re-sorting an edge list whose
	// text form is several times the frame size.
	req := serve.ColorRequest{
		GraphCSRB64:   base64.StdEncoding.EncodeToString(graph.EncodeWireCSR(sub)),
		Alg:           cr.Alg,
		Seed:          cr.Seed + uint32(i), // decorrelate per-shard priorities
		Threshold:     cr.Threshold,
		Fused:         cr.Fused,
		CycleBudget:   cr.CycleBudget,
		MaxRetries:    cr.MaxRetries,
		NoCPUFallback: cr.NoCPUFallback,
		NoCache:       true, // only the coordinator caches the merged result
		IncludeColors: true,
	}
	// rid-s<i> keeps the worker journal's evidence trail pointing at the
	// originating coordinator request while keeping shard records distinct.
	shardRID := ""
	if rid != "" {
		shardRID = rid + "-s" + strconv.Itoa(i)
	}
	key := mix64(fp ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	exclude := make(map[int]bool)
	var lastErr error
	for attempt := 0; attempt < c.cfg.ShardAttempts; attempt++ {
		m, probe, err := c.reg.pick(key, exclude)
		if err != nil {
			break // no worker left to try; report the shard's last failure
		}
		m.jobs.Add(1)
		attempts++
		start := time.Now()
		resp, err := callWorker(ctx, c.client, m.addr, &req, shardRID, "", c.epoch)
		exec := time.Since(start)
		if err == nil {
			if len(resp.Colors) != sub.NumVertices() {
				err = &WorkerError{
					Worker: m.addr, Status: 200, Kind: "bad_shard_reply",
					Err: fmt.Errorf("shard %d: got %d colors for %d vertices", i, len(resp.Colors), sub.NumVertices()),
				}
			} else {
				m.seen(time.Now())
				c.reg.observe(m, probe, true, 1, exec)
				return resp.Colors, resp.Cycles, resp.Iterations, attempts, nil
			}
		}
		lastErr = err
		we, _ := err.(*WorkerError)
		if we != nil && we.Status > 0 {
			m.seen(time.Now())
		}
		if c.noteStaleEpoch(we) {
			break // every worker will fence us; stop the shard here
		}
		good, reward := judgeWorkerError(we)
		c.reg.observe(m, probe, good, reward, exec)
		if ctx.Err() != nil {
			return nil, 0, 0, attempts, ctx.Err()
		}
		if we == nil || !we.Retryable() {
			break
		}
		exclude[m.id] = true
		c.redispatches.Add(1)
	}
	if lastErr == nil {
		lastErr = ErrNoWorkers
	}
	return nil, 0, 0, attempts, &ShardError{Shard: i, Shards: k, Attempts: attempts, Err: lastErr}
}
