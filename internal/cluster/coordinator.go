package cluster

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/journal"
	"gcolor/internal/serve"
)

// Coordinator is the fleet's front door: it owns no devices, only the
// worker registry, the merged-result cache, the idempotency map, and —
// when configured — the write-ahead journal. One Coordinator serves many
// concurrent Submit calls.
type Coordinator struct {
	cfg      Config
	epoch    uint64 // fencing epoch, immutable after construction (0 = unfenced)
	reg      *registry
	cache    *resultCache
	idem     *idemCache
	owners   *ownerTable
	specs    *specMemo
	client   *http.Client
	hbClient *http.Client // control-plane client (header-timeout bounded)
	jnl      *journal.Journal

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once
	inflight  atomic.Int64

	stopHB chan struct{}
	hbWG   sync.WaitGroup

	jobs             atomic.Int64 // submitted jobs (post idem/cache)
	deltaJobs        atomic.Int64 // delta submissions routed to version owners
	deltaOwnerHits   atomic.Int64 // delta routes that found an owner hint
	deltaOwnerMisses atomic.Int64 // delta routes that fell back to rendezvous
	routed           atomic.Int64 // jobs forwarded whole
	scattered        atomic.Int64 // jobs scatter-gathered
	failed           atomic.Int64
	shed             atomic.Int64 // submissions refused by the admission cap
	redispatches     atomic.Int64 // shard re-dispatches after a worker failure
	routeFailovers   atomic.Int64 // whole-graph failovers after a worker failure
	joins            atomic.Int64

	// Epoch fencing evidence: fenced flips when a worker (or a worker's
	// join/healthz) proves a newer epoch exists — this coordinator is
	// deposed and drains itself rather than fighting the new primary.
	fenced       atomic.Bool
	staleRejects atomic.Int64 // dispatches a worker refused as stale

	// Takeover provenance, set by Standby on the coordinator it builds.
	takeoverMS   atomic.Int64 // detect→serving latency of the takeover (0 = not a takeover)
	recReplayErr atomic.Int64 // replayed pending jobs that failed

	recWarmCache atomic.Int64
	recWarmIdem  atomic.Int64
	recPending   atomic.Int64
	recReplayed  atomic.Int64
	recDone      atomic.Bool
}

// NewCoordinator builds a coordinator, registers the static peers, starts
// the heartbeat prober (unless disabled), and — when Config.Recovery is
// set — warm-starts the caches from replayed completions and re-dispatches
// the journal's pending jobs in the background.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		epoch:   cfg.Epoch,
		reg:     newRegistry(cfg),
		cache:   newResultCache(cfg.CacheEntries),
		idem:    newIdemCache(cfg.IdemEntries),
		owners:  newOwnerTable(0),
		specs:   newSpecMemo(64),
		client:  cfg.Client,
		jnl:     cfg.Journal,
		drainCh: make(chan struct{}),
		stopHB:  make(chan struct{}),
	}
	c.hbClient = newControlClient(c.probeTimeout())
	for _, p := range cfg.Peers {
		if p = strings.TrimSpace(p); p != "" {
			c.reg.upsert(normalizeAddr(p), "", true)
		}
	}
	if cfg.HeartbeatInterval > 0 {
		c.hbWG.Add(1)
		go c.heartbeatLoop()
	}
	if cfg.Recovery != nil {
		c.applyRecovery(cfg.Recovery)
	} else {
		c.recDone.Store(true)
	}
	return c
}

// normalizeAddr turns "host:port" into a full base URL and strips any
// trailing slash so registry keys are canonical.
func normalizeAddr(a string) string {
	if !strings.Contains(a, "://") {
		a = "http://" + a
	}
	return strings.TrimRight(a, "/")
}

// Join registers (or refreshes) a worker and returns the join reply. A
// join carrying an epoch above this coordinator's proves a newer primary
// exists: the worker is NOT registered, the coordinator fences itself, and
// the typed *StaleEpochError tells the worker to keep its allegiance.
func (c *Coordinator) Join(jr JoinRequest) (JoinResponse, error) {
	if c.epoch > 0 && jr.Epoch > c.epoch {
		c.fenceSelf()
		c.staleRejects.Add(1)
		return JoinResponse{}, &StaleEpochError{Got: c.epoch, Current: jr.Epoch}
	}
	m := c.reg.upsert(normalizeAddr(jr.Addr), jr.ID, false)
	c.joins.Add(1)
	return JoinResponse{Epoch: c.epoch, Member: c.reg.info(m)}, nil
}

// JoinAddr is the legacy single-address join (tests, in-process fleets).
func (c *Coordinator) JoinAddr(addr string) MemberInfo {
	res, _ := c.Join(JoinRequest{Addr: addr})
	return res.Member
}

// Epoch returns the coordinator's fencing epoch (0 = unfenced).
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// Fenced reports whether this coordinator has observed proof of a newer
// epoch and deposed itself.
func (c *Coordinator) Fenced() bool { return c.fenced.Load() }

// fenceSelf deposes this coordinator: a worker (or joining peer) holds a
// higher epoch, so a standby has taken over. The only safe move is to stop
// accepting work — draining refuses new submissions while in-flight jobs
// finish (their dispatches will be individually fenced by workers if the
// new primary got there first).
func (c *Coordinator) fenceSelf() {
	if c.fenced.CompareAndSwap(false, true) {
		c.RequestDrain()
	}
}

// Membership snapshots every registered worker.
func (c *Coordinator) Membership() []MemberInfo {
	ms := c.reg.all()
	out := make([]MemberInfo, len(ms))
	for i, m := range ms {
		out[i] = c.reg.info(m)
	}
	return out
}

// DrainRequested is closed when a drain has been requested (POST /drainz
// or RequestDrain); the daemon watches it to begin graceful shutdown.
func (c *Coordinator) DrainRequested() <-chan struct{} { return c.drainCh }

// RequestDrain flips the coordinator into draining: new submissions are
// refused with serve.ErrDraining while in-flight fleet work finishes.
func (c *Coordinator) RequestDrain() {
	c.drainOnce.Do(func() {
		c.draining.Store(true)
		close(c.drainCh)
	})
}

// Drain waits for in-flight jobs to finish (after RequestDrain) or the
// context to expire; it returns the number of jobs still in flight.
func (c *Coordinator) Drain(ctx context.Context) int {
	c.RequestDrain()
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		n := c.inflight.Load()
		if n == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			return int(c.inflight.Load())
		case <-t.C:
		}
	}
}

// Close stops the heartbeat prober. It does not close the journal (the
// caller owns it) and does not drain.
func (c *Coordinator) Close() {
	select {
	case <-c.stopHB:
	default:
		close(c.stopHB)
	}
	c.hbWG.Wait()
}

// heartbeatLoop probes every registered worker's /healthz on the
// configured interval. A 2xx refreshes liveness and harvests the worker's
// backpressure telemetry (queue depth, device count, exec P50) for the
// fleet-level Retry-After; a failure feeds the hysteresis state machine —
// HeartbeatMisses consecutive failures demote, ReadmitStreak consecutive
// successes re-admit, so a flapping link cannot oscillate membership.
func (c *Coordinator) heartbeatLoop() {
	defer c.hbWG.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case <-t.C:
		}
		members := c.reg.all()
		var wg sync.WaitGroup
		for _, m := range members {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				c.probeMember(m)
			}(m)
		}
		wg.Wait()
	}
}

// workerHealth is the slice of a worker /healthz reply the coordinator
// consumes on heartbeats.
type workerHealth struct {
	Devices    int    `json:"devices"`
	QueueDepth int64  `json:"queue_depth"`
	ExecP50US  int64  `json:"exec_p50_us"`
	Epoch      uint64 `json:"epoch"`
}

// probeMember runs one heartbeat probe and settles it through the
// hysteresis machine.
func (c *Coordinator) probeMember(m *member) {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.addr+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := c.hbClient.Do(req)
	if err != nil {
		if m.missed() {
			c.reg.hbDemotions.Add(1)
		}
		return
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		if m.missed() {
			c.reg.hbDemotions.Add(1)
		}
		return
	}
	var wh workerHealth
	if json.Unmarshal(raw, &wh) == nil {
		m.queueDepth.Store(wh.QueueDepth)
		m.execP50.Store(wh.ExecP50US)
		if wh.Devices > 0 {
			m.devices.Store(int64(wh.Devices))
		}
		// A worker already serving a higher epoch is proof this
		// coordinator was deposed.
		if c.epoch > 0 && wh.Epoch > c.epoch {
			c.fenceSelf()
		}
	}
	if m.seen(time.Now()) {
		c.reg.hbReadmits.Add(1)
	}
}

func (c *Coordinator) probeTimeout() time.Duration {
	to := 2 * c.cfg.HeartbeatInterval
	if to < 250*time.Millisecond {
		to = 250 * time.Millisecond
	}
	if to > 2*time.Second {
		to = 2 * time.Second
	}
	return to
}

// Submit runs one coloring job against the fleet: idempotent replay and
// cache first, then journal-accept, then route-whole or scatter-gather,
// then journal-complete and publish. wire, when non-nil, is the request's
// own JSON (the journal replay payload). The returned response always
// carries full Colors; the HTTP layer strips them per-request.
func (c *Coordinator) Submit(ctx context.Context, cr *serve.ColorRequest, rid, idemKey string, wire []byte) (*serve.ColorResponse, error) {
	if c.draining.Load() {
		return nil, serve.ErrDraining
	}
	// Admission: shed at the edge while the client can still back off
	// cheaply, instead of admitting work that will time out mid-scatter.
	if c.cfg.MaxInflight > 0 && c.inflight.Load() >= int64(c.cfg.MaxInflight) {
		c.shed.Add(1)
		return nil, ErrFleetBusy
	}
	c.inflight.Add(1)
	defer c.inflight.Add(-1)

	// Deltas carry a base fingerprint instead of a graph: they bypass
	// resolve (nothing to parse) and route to the base version's owner.
	if cr.BaseFingerprint != "" {
		return c.submitDelta(ctx, cr, rid, idemKey, wire)
	}

	g, alg, err := c.resolve(cr)
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	fp := g.Fingerprint()
	key := resultKey{fp: fp, policy: policyKey(alg, cr.Seed, cr.Threshold)}

	if res, ok := c.idem.get(idemKey); ok {
		out := *res
		out.RequestID = rid
		out.IdempotentReplay = true
		return &out, nil
	}
	if !cr.NoCache {
		if res, ok := c.cache.get(key); ok {
			out := *res
			out.RequestID = rid
			out.Cached = true
			return &out, nil
		}
	}

	c.jobs.Add(1)
	c.journalAccept(rid, idemKey, key, wire, ctx)

	res, err := c.execute(ctx, g, cr, rid, idemKey, fp)
	c.journalFinish(rid, idemKey, key, cr.NoCache, res, err)
	if err != nil {
		c.failed.Add(1)
		return nil, err
	}
	res.RequestID = rid
	res.Fingerprint = graph.FingerprintString(fp)
	if cr.Resident && res.Worker != "" {
		// The worker pinned this graph in its version store; remember the
		// binding so the first delta of the chain routes straight to it.
		c.owners.put(fp, res.Worker)
	}
	if !cr.NoCache {
		stored := *res
		c.cache.put(key, &stored)
	}
	if idemKey != "" {
		stored := *res
		c.idem.put(idemKey, &stored)
	}
	return res, nil
}

// execute picks the execution shape: scatter-gather for large graphs with
// enough live workers, whole-graph routing otherwise.
func (c *Coordinator) execute(ctx context.Context, g *graph.Graph, cr *serve.ColorRequest, rid, idemKey string, fp uint64) (*serve.ColorResponse, error) {
	if c.shouldScatter(g, cr) {
		res, err := c.scatter(ctx, g, cr, rid, fp)
		if err == nil || err != errScatterUnavailable {
			if err == nil {
				c.scattered.Add(1)
			}
			return res, err
		}
		// Not enough live workers to scatter after all; fall through.
	}
	res, err := c.route(ctx, cr, rid, idemKey, fp)
	if err == nil {
		c.routed.Add(1)
	}
	return res, err
}

// shouldScatter applies the size thresholds and the explicit Shards pin.
func (c *Coordinator) shouldScatter(g *graph.Graph, cr *serve.ColorRequest) bool {
	if c.cfg.NoScatter || cr.Shards == 1 {
		return false
	}
	if cr.Resident {
		// A resident upload must land whole on one worker — shards spread
		// across the fleet leave no single version store holding the graph,
		// so every later delta would 404.
		return false
	}
	if cr.Shards >= 2 {
		return true
	}
	big := (c.cfg.ScatterVertices > 0 && g.NumVertices() >= c.cfg.ScatterVertices) ||
		(c.cfg.ScatterEdges > 0 && g.NumEdges() >= c.cfg.ScatterEdges)
	return big
}

// route forwards the whole job to rendezvous-ranked workers, failing over
// to the next-ranked worker (exclude-failed) up to RouteAttempts times.
func (c *Coordinator) route(ctx context.Context, cr *serve.ColorRequest, rid, idemKey string, fp uint64) (*serve.ColorResponse, error) {
	out := *cr
	out.IncludeColors = true // the coordinator caches full colorings
	ctx, cancel := c.workerCtx(ctx)
	defer cancel()
	exclude := make(map[int]bool)
	var lastErr error
	for attempt := 0; attempt < c.cfg.RouteAttempts; attempt++ {
		m, probe, err := c.reg.pick(fp, exclude)
		if err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		m.jobs.Add(1)
		start := time.Now()
		resp, err := callWorker(ctx, c.client, m.addr, &out, rid, idemKey, c.epoch)
		exec := time.Since(start)
		if err == nil {
			m.seen(time.Now())
			c.reg.observe(m, probe, true, 1, exec)
			resp.Worker = m.addr
			resp.Redispatched = attempt
			return resp, nil
		}
		lastErr = err
		we, _ := err.(*WorkerError)
		if we != nil && we.Status > 0 {
			m.seen(time.Now()) // it answered; sick is not dead
		}
		if c.noteStaleEpoch(we) {
			return nil, err
		}
		good, reward := judgeWorkerError(we)
		c.reg.observe(m, probe, good, reward, exec)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if we == nil || !we.Retryable() {
			return nil, err
		}
		exclude[m.id] = true
		c.routeFailovers.Add(1)
	}
	return nil, fmt.Errorf("cluster: route exhausted %d attempts: %w", c.cfg.RouteAttempts, lastErr)
}

// workerCtx guarantees every worker dispatch carries a deadline: a caller
// context without one is bounded by WorkerTimeout, so a hung worker can
// never hang a route or the scatter merge barrier indefinitely.
func (c *Coordinator) workerCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.cfg.WorkerTimeout)
}

// noteStaleEpoch reacts to a worker fencing one of our dispatches: a newer
// primary exists, so this coordinator deposes itself. Reports whether the
// error was a stale-epoch rejection (which is never failed over — every
// other worker will refuse it too).
func (c *Coordinator) noteStaleEpoch(we *WorkerError) bool {
	if we == nil || we.Kind != "stale_epoch" {
		return false
	}
	c.staleRejects.Add(1)
	c.fenceSelf()
	return true
}

// judgeWorkerError maps a failed worker call to its health observation.
// Overload rejections (429) say "loaded", not "broken": half reward, no
// breaker failure — quarantining a busy worker would shrink the fleet
// exactly when it needs capacity. Everything else retryable is a failure.
func judgeWorkerError(we *WorkerError) (good bool, reward float64) {
	if we != nil && we.Status == http.StatusTooManyRequests {
		return true, 0.5
	}
	if we != nil && !we.Retryable() {
		// The request was bad, not the worker.
		return true, 1
	}
	return false, 0
}

// resolve parses the request's graph (memoizing generator specs) and
// algorithm.
func (c *Coordinator) resolve(cr *serve.ColorRequest) (*graph.Graph, gpucolor.Algorithm, error) {
	var g *graph.Graph
	var err error
	switch {
	case cr.Gen != "" && cr.Graph != "":
		return nil, 0, fmt.Errorf("set exactly one of graph and gen")
	case cr.Gen != "":
		g, err = c.specs.get(cr.Gen)
	case cr.Graph != "":
		g, err = graph.ReadEdgeList(strings.NewReader(cr.Graph))
	default:
		return nil, 0, fmt.Errorf("set exactly one of graph and gen")
	}
	if err != nil {
		return nil, 0, err
	}
	alg := gpucolor.AlgBaseline
	if cr.Alg != "" {
		if alg, err = gpucolor.ParseAlgorithm(cr.Alg); err != nil {
			return nil, 0, err
		}
	}
	return g, alg, nil
}

// BadRequestError marks a submission the coordinator refused before any
// fleet work: unparseable graph, unknown algorithm.
type BadRequestError struct{ Err error }

// Error implements error.
func (e *BadRequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *BadRequestError) Unwrap() error { return e.Err }

// journalAccept writes the accept record before any dispatch, so a
// coordinator crash mid-fleet-work replays the job.
func (c *Coordinator) journalAccept(rid, idemKey string, key resultKey, wire []byte, ctx context.Context) {
	if c.jnl == nil || rid == "" || len(wire) == 0 {
		return
	}
	var deadlineMS int64
	if dl, ok := ctx.Deadline(); ok {
		deadlineMS = dl.UnixMilli()
	}
	_ = c.jnl.AppendAccept(journal.AcceptRecord{
		ID:             rid,
		IdemKey:        idemKey,
		Fingerprint:    key.fp,
		PolicyKey:      key.policy,
		DeadlineUnixMS: deadlineMS,
		AcceptedUnixMS: time.Now().UnixMilli(),
		Wire:           json.RawMessage(wire),
	})
}

// journalFinish writes the completion record for every disposition, so
// replay never re-runs finished work.
func (c *Coordinator) journalFinish(rid, idemKey string, key resultKey, noCache bool, res *serve.ColorResponse, err error) {
	if c.jnl == nil || rid == "" {
		return
	}
	rec := journal.CompleteRecord{
		ID:              rid,
		IdemKey:         idemKey,
		Fingerprint:     key.fp,
		PolicyKey:       key.policy,
		CompletedUnixMS: time.Now().UnixMilli(),
		NoCache:         noCache,
	}
	switch {
	case err == nil:
		rec.Disposition = journal.DispOK
		rec.NumColors = res.NumColors
		rec.ColorsB64 = journal.EncodeColors(res.Colors)
		rec.Cycles = res.Cycles
		rec.Iterations = res.Iterations
		rec.Shards = res.Shards
	case isDeadlineErr(err):
		rec.Disposition = journal.DispExpired
		rec.ErrKind = "deadline"
	default:
		rec.Disposition = journal.DispFailed
		rec.ErrKind = errKind(err)
	}
	_ = c.jnl.AppendComplete(rec)
}

func isDeadlineErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// errKind flattens an error to its journal/metrics kind.
func errKind(err error) string {
	var we *WorkerError
	var se *ShardError
	switch {
	case errors.As(err, &se):
		return "shard_failed"
	case errors.As(err, &we):
		return we.Kind
	case errors.Is(err, ErrNoWorkers):
		return "no_workers"
	default:
		return "failed"
	}
}

// applyRecovery warm-starts the caches from replayed completions and
// re-dispatches pending accepts in the background (bounded parallelism),
// mirroring the serving layer's crash recovery.
func (c *Coordinator) applyRecovery(rec *journal.Recovery) {
	for i := range rec.Completions {
		comp := &rec.Completions[i]
		colors, err := journal.DecodeColors(comp.ColorsB64)
		if err != nil {
			continue
		}
		res := &serve.ColorResponse{
			Fingerprint: graph.FingerprintString(comp.Fingerprint),
			NumColors:   comp.NumColors,
			Colors:      colors,
			Cycles:      comp.Cycles,
			Iterations:  comp.Iterations,
			Shards:      comp.Shards,
			Scattered:   comp.Shards > 1,
		}
		if !comp.NoCache {
			c.cache.put(resultKey{fp: comp.Fingerprint, policy: comp.PolicyKey}, res)
			c.recWarmCache.Add(1)
		}
		if comp.IdemKey != "" {
			c.idem.put(comp.IdemKey, res)
			c.recWarmIdem.Add(1)
		}
	}
	pending := make([]journal.AcceptRecord, len(rec.Pending))
	copy(pending, rec.Pending)
	c.recPending.Store(int64(len(pending)))
	if len(pending) == 0 {
		c.recDone.Store(true)
		return
	}
	go c.replayPending(pending)
}

// replayPending re-dispatches the journal's interrupted jobs through the
// normal Submit path (which re-journals them; replay dedupe collapses the
// duplicate accepts). Jobs whose deadline already passed are expired
// explicitly, never silently dropped.
func (c *Coordinator) replayPending(pending []journal.AcceptRecord) {
	defer c.recDone.Store(true)
	sem := make(chan struct{}, c.cfg.ReplayParallelism)
	var wg sync.WaitGroup
	for i := range pending {
		a := pending[i]
		if c.draining.Load() {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c.replayOne(a)
			c.recReplayed.Add(1)
		}()
	}
	wg.Wait()
}

func (c *Coordinator) replayOne(a journal.AcceptRecord) {
	if a.DeadlineUnixMS > 0 && time.Now().UnixMilli() > a.DeadlineUnixMS {
		if c.jnl != nil {
			_ = c.jnl.AppendComplete(journal.CompleteRecord{
				ID: a.ID, IdemKey: a.IdemKey,
				Fingerprint: a.Fingerprint, PolicyKey: a.PolicyKey,
				Disposition:     journal.DispReplayExpired,
				ErrKind:         "deadline",
				CompletedUnixMS: time.Now().UnixMilli(),
			})
		}
		return
	}
	var cr serve.ColorRequest
	if len(a.Wire) == 0 || json.Unmarshal(a.Wire, &cr) != nil {
		if c.jnl != nil {
			_ = c.jnl.AppendComplete(journal.CompleteRecord{
				ID: a.ID, IdemKey: a.IdemKey,
				Fingerprint: a.Fingerprint, PolicyKey: a.PolicyKey,
				Disposition:     journal.DispFailed,
				ErrKind:         "unreplayable",
				CompletedUnixMS: time.Now().UnixMilli(),
			})
		}
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.WorkerTimeout)
	defer cancel()
	if _, err := c.Submit(ctx, &cr, a.ID, a.IdemKey, a.Wire); err != nil {
		c.recReplayErr.Add(1)
	}
}

// SetTakeoverMS records the detect→serving latency of the standby
// takeover that built this coordinator (surfaced in Stats/metrics so the
// partition drill can gate on it).
func (c *Coordinator) SetTakeoverMS(ms int64) { c.takeoverMS.Store(ms) }

// RetryAfterHint computes the fleet-level Retry-After for a rejected
// request: the policy is serve.ComputeRetryAfter fed with the aggregate
// queue depth, device count, and worst exec P50 the workers reported on
// their heartbeats. The coordinator's own admitted-but-unfinished jobs
// count toward the backlog too — they will land on those same queues.
func (c *Coordinator) RetryAfterHint(kind string) int {
	depth, devices, p50 := c.reg.fleetLoad()
	depth += int(c.inflight.Load())
	return serve.ComputeRetryAfter(kind, depth, devices, p50, c.draining.Load())
}

// Stats is the coordinator's observable state.
type Stats struct {
	Workers      int `json:"workers"`
	AliveWorkers int `json:"alive_workers"`

	Epoch        uint64 `json:"epoch"`
	Fenced       bool   `json:"fenced"`
	StaleRejects int64  `json:"stale_epoch_rejects"`
	TakeoverMS   int64  `json:"takeover_ms,omitempty"`

	Jobs             int64 `json:"jobs"`
	DeltaJobs        int64 `json:"delta_jobs"`
	DeltaOwnerHits   int64 `json:"delta_owner_hits"`
	DeltaOwnerMisses int64 `json:"delta_owner_misses"`
	VersionOwners    int   `json:"version_owners"`
	Routed           int64 `json:"routed"`
	Scattered        int64 `json:"scattered"`
	Failed           int64 `json:"failed"`
	Shed             int64 `json:"shed"`
	RouteFailovers   int64 `json:"route_failovers"`
	Redispatches     int64 `json:"redispatches"`
	Joins            int64 `json:"joins"`

	Quarantines int64 `json:"quarantines"`
	Readmitted  int64 `json:"readmitted"`
	Probes      int64 `json:"probes"`

	GrayDemotions         int64 `json:"gray_demotions"`
	HeartbeatDemotions    int64 `json:"heartbeat_demotions"`
	HeartbeatReadmissions int64 `json:"heartbeat_readmissions"`
	Rebinds               int64 `json:"rebinds"`

	FleetQueueDepth int `json:"fleet_queue_depth"`
	FleetDevices    int `json:"fleet_devices"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheEntries   int   `json:"cache_entries"`
	IdemEntries    int   `json:"idem_entries"`

	Draining bool  `json:"draining"`
	Inflight int64 `json:"inflight"`

	RecoveryDone     bool  `json:"recovery_done"`
	RecoveryPending  int64 `json:"recovery_pending"`
	RecoveryReplayed int64 `json:"recovery_replayed"`
	RecoveryFailed   int64 `json:"recovery_failed"`
	WarmedCache      int64 `json:"warmed_cache"`
	WarmedIdem       int64 `json:"warmed_idem"`

	Members []MemberInfo `json:"members"`
}

// Stats snapshots the coordinator.
func (c *Coordinator) Stats() Stats {
	hits, misses, evict := c.cache.stats()
	depth, devices, _ := c.reg.fleetLoad()
	st := Stats{
		Workers:      c.reg.size(),
		AliveWorkers: len(c.reg.alive()),

		Epoch:        c.epoch,
		Fenced:       c.fenced.Load(),
		StaleRejects: c.staleRejects.Load(),
		TakeoverMS:   c.takeoverMS.Load(),

		Jobs:             c.jobs.Load(),
		DeltaJobs:        c.deltaJobs.Load(),
		DeltaOwnerHits:   c.deltaOwnerHits.Load(),
		DeltaOwnerMisses: c.deltaOwnerMisses.Load(),
		VersionOwners:    c.owners.len(),
		Routed:           c.routed.Load(),
		Scattered:        c.scattered.Load(),
		Failed:           c.failed.Load(),
		Shed:             c.shed.Load(),
		RouteFailovers:   c.routeFailovers.Load(),
		Redispatches:     c.redispatches.Load(),
		Joins:            c.joins.Load(),

		Quarantines: c.reg.quarantines.Load(),
		Readmitted:  c.reg.readmitted.Load(),
		Probes:      c.reg.probes.Load(),

		GrayDemotions:         c.reg.grayDemotions.Load(),
		HeartbeatDemotions:    c.reg.hbDemotions.Load(),
		HeartbeatReadmissions: c.reg.hbReadmits.Load(),
		Rebinds:               c.reg.rebinds.Load(),

		FleetQueueDepth: depth,
		FleetDevices:    devices,

		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evict,
		CacheEntries:   c.cache.len(),
		IdemEntries:    c.idem.len(),

		Draining: c.draining.Load(),
		Inflight: c.inflight.Load(),

		RecoveryDone:     c.recDone.Load(),
		RecoveryPending:  c.recPending.Load(),
		RecoveryReplayed: c.recReplayed.Load(),
		RecoveryFailed:   c.recReplayErr.Load(),
		WarmedCache:      c.recWarmCache.Load(),
		WarmedIdem:       c.recWarmIdem.Load(),

		Members: c.Membership(),
	}
	return st
}

// specMemo is a tiny LRU of generated graphs keyed by generator spec, so
// a hot spec driven by every load-generator worker is built once.
type specMemo struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	byKey map[string]*list.Element
}

type specMemoEntry struct {
	key string
	g   *graph.Graph
}

func newSpecMemo(capacity int) *specMemo {
	return &specMemo{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *specMemo) get(spec string) (*graph.Graph, error) {
	c.mu.Lock()
	if el, ok := c.byKey[spec]; ok {
		c.order.MoveToFront(el)
		g := el.Value.(*specMemoEntry).g
		c.mu.Unlock()
		return g, nil
	}
	c.mu.Unlock()
	g, err := serve.ParseGraphSpec(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.byKey[spec]; !ok {
		c.byKey[spec] = c.order.PushFront(&specMemoEntry{key: spec, g: g})
		for c.order.Len() > c.cap {
			el := c.order.Back()
			c.order.Remove(el)
			delete(c.byKey, el.Value.(*specMemoEntry).key)
		}
	}
	c.mu.Unlock()
	return g, nil
}
