package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/serve"
)

// member is one registered worker. Members are never deleted — a worker
// that stops heartbeating is down, not forgotten, so /clusterz keeps the
// evidence and a returning worker reclaims its id (and its breaker
// history) by address.
type member struct {
	id       int    // index into the registry's health tracker
	addr     string // base URL, e.g. http://10.0.0.7:8421
	addrHash uint64 // fnv1a64(addr), the rendezvous identity
	static   bool   // pinned by -peers (true) or joined at runtime

	brk *serve.Breaker

	mu       sync.Mutex
	lastSeen time.Time  // last successful probe or push heartbeat
	instance string     // worker-supplied stable instance ID ("" until a join carries one)
	hy       hysteresis // heartbeat demotion/re-admission streaks
	lat      latRing    // recent dispatch latencies (µs)

	jobs      atomic.Int64 // jobs dispatched to this worker (routes + shards)
	failures  atomic.Int64 // dispatches that failed on this worker
	probeJobs atomic.Int64 // jobs that rode a half-open probe slot

	// Reported by the worker's /healthz on each heartbeat; the fleet-level
	// Retry-After is computed from these.
	queueDepth atomic.Int64
	devices    atomic.Int64
	execP50    atomic.Int64 // worker-reported exec P50 (µs)
}

// seen marks the member live now; the return reports whether this
// evidence re-admitted a heartbeat-demoted member.
func (m *member) seen(now time.Time) (readmitted bool) {
	m.mu.Lock()
	m.lastSeen = now
	readmitted = m.hy.hit()
	m.mu.Unlock()
	return readmitted
}

// missed records a failed heartbeat probe; the return reports whether this
// miss demoted the member.
func (m *member) missed() (demoted bool) {
	m.mu.Lock()
	demoted = m.hy.miss()
	m.mu.Unlock()
	return demoted
}

// aliveAt reports whether the member has been seen within expire and is
// not heartbeat-demoted.
func (m *member) aliveAt(now time.Time, expire time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.hy.down && now.Sub(m.lastSeen) <= expire
}

// registry is the coordinator's membership table: address-keyed members,
// one shared EWMA health tracker, and one circuit breaker per member.
// All methods are safe for concurrent use.
type registry struct {
	expire        time.Duration
	brkCfg        serve.BreakerConfig
	probation     float64
	grayScore     float64
	missThreshold int
	readmitStreak int

	health *serve.FleetHealth

	mu      sync.Mutex
	members []*member // id-indexed
	byAddr  map[string]*member

	quarantines atomic.Int64
	readmitted  atomic.Int64
	probes      atomic.Int64

	grayDemotions atomic.Int64 // picks where a gray member lost its rendezvous rank
	hbDemotions   atomic.Int64 // heartbeat-miss-streak demotions
	hbReadmits    atomic.Int64 // hit-streak re-admissions
	rebinds       atomic.Int64 // instance IDs re-joining from a new address
}

func newRegistry(cfg Config) *registry {
	return &registry{
		expire:        cfg.ExpireAfter,
		brkCfg:        cfg.Breaker,
		probation:     cfg.ProbationScore,
		grayScore:     cfg.GrayScore,
		missThreshold: cfg.HeartbeatMisses,
		readmitStreak: cfg.ReadmitStreak,
		health:        serve.NewFleetHealth(0, cfg.HealthAlpha, cfg.LatencySlack),
		byAddr:        make(map[string]*member),
	}
}

// upsert registers a worker by address (idempotent: a re-join refreshes
// liveness and returns the existing member, breaker history intact).
// instance, when non-empty, is the worker's stable identity: a join whose
// instance is already bound to a different address means the worker
// restarted on a new port, so the old address is force-expired rather than
// left to linger as a phantom second copy of the same worker.
func (r *registry) upsert(addr, instance string, static bool) *member {
	now := time.Now()
	r.mu.Lock()
	m, ok := r.byAddr[addr]
	if !ok {
		m = &member{
			id:       r.health.AddMember(),
			addr:     addr,
			addrHash: fnv1a64(addr),
			static:   static,
			brk:      serve.NewBreaker(r.brkCfg),
		}
		m.hy.missThreshold = r.missThreshold
		m.hy.readmitStreak = r.readmitStreak
		m.lastSeen = now
		r.members = append(r.members, m)
		r.byAddr[addr] = m
	}
	if instance != "" {
		for _, other := range r.members {
			if other == m {
				continue
			}
			other.mu.Lock()
			stale := other.instance == instance
			if stale {
				// The instance moved: its old address is dead even if its
				// expiry window has not elapsed yet.
				other.instance = ""
				other.lastSeen = time.Time{}
			}
			other.mu.Unlock()
			if stale {
				r.rebinds.Add(1)
			}
		}
		m.mu.Lock()
		m.instance = instance
		m.mu.Unlock()
	}
	r.mu.Unlock()
	if m.seen(now) {
		r.hbReadmits.Add(1)
	}
	return m
}

// all snapshots the member list (the slice is fresh; members are shared).
func (r *registry) all() []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*member, len(r.members))
	copy(out, r.members)
	return out
}

// alive returns the members seen within the expiry window.
func (r *registry) alive() []*member {
	now := time.Now()
	var out []*member
	for _, m := range r.all() {
		if m.aliveAt(now, r.expire) {
			out = append(out, m)
		}
	}
	return out
}

// size returns the number of registered members.
func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.members)
}

// pick selects the worker for key among the live members not in exclude:
// rendezvous order over breaker-closed members whose health clears the
// gray threshold first; then breaker-closed gray members (slow beats
// refused); then a half-open member whose probe slot is free (the job
// doubles as the probe); then rendezvous order over everyone alive (the
// all-open fail-open rule — a fleet that quarantined every worker must
// keep trying rather than refuse all traffic). probe reports that the
// returned member's probe slot was reserved; the caller must settle it
// with observe. ErrNoWorkers means no live non-excluded member exists.
//
// The gray pass is the load-imbalance lesson at fleet granularity: a
// worker that answers 2xx but 10x slower than its peers drags every job it
// owns, and its breaker — which counts failures, not slowness — never
// trips. Its EWMA health (latency-vs-fleet-median penalized) does sag, so
// members below GrayScore lose their rendezvous preference while staying
// in the fleet for overflow and recovery.
func (r *registry) pick(key uint64, exclude map[int]bool) (m *member, probe bool, err error) {
	live := r.alive()
	candidates := live[:0:0]
	for _, mm := range live {
		if !exclude[mm.id] {
			candidates = append(candidates, mm)
		}
	}
	if len(candidates) == 0 {
		return nil, false, ErrNoWorkers
	}
	ranked := rankMembers(key, candidates)
	var gray []*member
	for _, mm := range ranked {
		if !mm.brk.Allow() {
			continue
		}
		if r.grayScore > 0 && len(ranked) > 1 && r.health.Score(mm.id) < r.grayScore {
			gray = append(gray, mm)
			continue
		}
		if len(gray) > 0 {
			// A healthy member is serving a key a gray member ranked higher
			// for: that is the demotion, observable before any breaker state
			// changes.
			r.grayDemotions.Add(1)
		}
		return mm, false, nil
	}
	for _, mm := range gray {
		return mm, false, nil
	}
	for _, mm := range ranked {
		if mm.brk.TryProbe() {
			r.probes.Add(1)
			mm.probeJobs.Add(1)
			return mm, true, nil
		}
	}
	// Fail open: every candidate is quarantined (or probe-busy); the
	// rendezvous owner still gets the job so the fleet degrades to "slow
	// and suspicious" rather than "down".
	return ranked[0], false, nil
}

// observe folds one dispatch outcome into the member's health score and
// breaker. reward follows the serve ladder shape: 1 for a clean answer,
// 0.5 for an overload rejection (the worker is loaded, not broken), 0 for
// a failure. good is what the breaker counts as failure-free.
func (r *registry) observe(m *member, probe, good bool, reward float64, exec time.Duration) {
	score := r.health.Observe(m.id, reward, exec)
	m.mu.Lock()
	m.lat.add(exec.Microseconds())
	m.mu.Unlock()
	if !good {
		m.failures.Add(1)
	}
	if probe {
		tripped, readmitted := m.brk.RecordProbe(good)
		if tripped {
			r.quarantines.Add(1)
		}
		if readmitted {
			r.readmitted.Add(1)
			r.health.Boost(m.id, r.probation)
		}
		return
	}
	if m.brk.Record(good, score) {
		r.quarantines.Add(1)
	}
}

// MemberInfo is the /clusterz (and Stats) view of one worker.
type MemberInfo struct {
	ID         int     `json:"id"`
	Addr       string  `json:"addr"`
	Instance   string  `json:"instance,omitempty"`
	Static     bool    `json:"static"`
	Alive      bool    `json:"alive"`
	Down       bool    `json:"down,omitempty"` // heartbeat-demoted (hysteresis), awaiting a hit streak
	Gray       bool    `json:"gray,omitempty"` // health below the gray threshold; rendezvous-demoted
	Health     float64 `json:"health"`
	Breaker    string  `json:"breaker"`
	Jobs       int64   `json:"jobs"`
	Failures   int64   `json:"failures"`
	ProbeJobs  int64   `json:"probe_jobs"`
	LastSeenMS int64   `json:"last_seen_ms_ago"`
	QueueDepth int64   `json:"queue_depth"`
	ExecP50US  int64   `json:"exec_p50_us"`
	ExecP99US  int64   `json:"exec_p99_us"`
}

// info snapshots one member.
func (r *registry) info(m *member) MemberInfo {
	now := time.Now()
	m.mu.Lock()
	seenAgo := now.Sub(m.lastSeen)
	down := m.hy.down
	instance := m.instance
	p50 := m.lat.quantile(0.50)
	p99 := m.lat.quantile(0.99)
	m.mu.Unlock()
	health := r.health.Score(m.id)
	return MemberInfo{
		ID:         m.id,
		Addr:       m.addr,
		Instance:   instance,
		Static:     m.static,
		Alive:      !down && seenAgo <= r.expire,
		Down:       down,
		Gray:       r.grayScore > 0 && health < r.grayScore,
		Health:     health,
		Breaker:    m.brk.State().String(),
		Jobs:       m.jobs.Load(),
		Failures:   m.failures.Load(),
		ProbeJobs:  m.probeJobs.Load(),
		LastSeenMS: seenAgo.Milliseconds(),
		QueueDepth: m.queueDepth.Load(),
		ExecP50US:  p50,
		ExecP99US:  p99,
	}
}

// fleetLoad aggregates the worker-reported backpressure signals: total
// queued jobs, total devices, and the worst live exec P50 — the inputs to
// the fleet-level Retry-After.
func (r *registry) fleetLoad() (queueDepth, devices int, execP50us int64) {
	for _, m := range r.alive() {
		queueDepth += int(m.queueDepth.Load())
		devices += int(m.devices.Load())
		if p := m.execP50.Load(); p > execP50us {
			execP50us = p
		}
	}
	return queueDepth, devices, execP50us
}
