package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/serve"
)

// member is one registered worker. Members are never deleted — a worker
// that stops heartbeating is down, not forgotten, so /clusterz keeps the
// evidence and a returning worker reclaims its id (and its breaker
// history) by address.
type member struct {
	id       int    // index into the registry's health tracker
	addr     string // base URL, e.g. http://10.0.0.7:8421
	addrHash uint64 // fnv1a64(addr), the rendezvous identity
	static   bool   // pinned by -peers (true) or joined at runtime

	brk *serve.Breaker

	mu       sync.Mutex
	lastSeen time.Time // last successful probe or push heartbeat

	jobs      atomic.Int64 // jobs dispatched to this worker (routes + shards)
	failures  atomic.Int64 // dispatches that failed on this worker
	probeJobs atomic.Int64 // jobs that rode a half-open probe slot
}

// seen marks the member live now.
func (m *member) seen(now time.Time) {
	m.mu.Lock()
	m.lastSeen = now
	m.mu.Unlock()
}

// aliveAt reports whether the member has been seen within expire.
func (m *member) aliveAt(now time.Time, expire time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return now.Sub(m.lastSeen) <= expire
}

// registry is the coordinator's membership table: address-keyed members,
// one shared EWMA health tracker, and one circuit breaker per member.
// All methods are safe for concurrent use.
type registry struct {
	expire    time.Duration
	brkCfg    serve.BreakerConfig
	probation float64

	health *serve.FleetHealth

	mu      sync.Mutex
	members []*member // id-indexed
	byAddr  map[string]*member

	quarantines atomic.Int64
	readmitted  atomic.Int64
	probes      atomic.Int64
}

func newRegistry(cfg Config) *registry {
	return &registry{
		expire:    cfg.ExpireAfter,
		brkCfg:    cfg.Breaker,
		probation: cfg.ProbationScore,
		health:    serve.NewFleetHealth(0, cfg.HealthAlpha, cfg.LatencySlack),
		byAddr:    make(map[string]*member),
	}
}

// upsert registers a worker by address (idempotent: a re-join refreshes
// liveness and returns the existing member, breaker history intact).
func (r *registry) upsert(addr string, static bool) *member {
	now := time.Now()
	r.mu.Lock()
	if m, ok := r.byAddr[addr]; ok {
		r.mu.Unlock()
		m.seen(now)
		return m
	}
	m := &member{
		id:       r.health.AddMember(),
		addr:     addr,
		addrHash: fnv1a64(addr),
		static:   static,
		brk:      serve.NewBreaker(r.brkCfg),
	}
	m.lastSeen = now
	r.members = append(r.members, m)
	r.byAddr[addr] = m
	r.mu.Unlock()
	return m
}

// all snapshots the member list (the slice is fresh; members are shared).
func (r *registry) all() []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*member, len(r.members))
	copy(out, r.members)
	return out
}

// alive returns the members seen within the expiry window.
func (r *registry) alive() []*member {
	now := time.Now()
	var out []*member
	for _, m := range r.all() {
		if m.aliveAt(now, r.expire) {
			out = append(out, m)
		}
	}
	return out
}

// size returns the number of registered members.
func (r *registry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.members)
}

// pick selects the worker for key among the live members not in exclude:
// rendezvous order over breaker-closed members first; failing that, a
// half-open member whose probe slot is free (the job doubles as the
// probe); failing that, rendezvous order over everyone alive (the
// all-open fail-open rule — a fleet that quarantined every worker must
// keep trying rather than refuse all traffic). probe reports that the
// returned member's probe slot was reserved; the caller must settle it
// with observe. ErrNoWorkers means no live non-excluded member exists.
func (r *registry) pick(key uint64, exclude map[int]bool) (m *member, probe bool, err error) {
	live := r.alive()
	candidates := live[:0:0]
	for _, mm := range live {
		if !exclude[mm.id] {
			candidates = append(candidates, mm)
		}
	}
	if len(candidates) == 0 {
		return nil, false, ErrNoWorkers
	}
	ranked := rankMembers(key, candidates)
	for _, mm := range ranked {
		if mm.brk.Allow() {
			return mm, false, nil
		}
	}
	for _, mm := range ranked {
		if mm.brk.TryProbe() {
			r.probes.Add(1)
			mm.probeJobs.Add(1)
			return mm, true, nil
		}
	}
	// Fail open: every candidate is quarantined (or probe-busy); the
	// rendezvous owner still gets the job so the fleet degrades to "slow
	// and suspicious" rather than "down".
	return ranked[0], false, nil
}

// observe folds one dispatch outcome into the member's health score and
// breaker. reward follows the serve ladder shape: 1 for a clean answer,
// 0.5 for an overload rejection (the worker is loaded, not broken), 0 for
// a failure. good is what the breaker counts as failure-free.
func (r *registry) observe(m *member, probe, good bool, reward float64, exec time.Duration) {
	score := r.health.Observe(m.id, reward, exec)
	if !good {
		m.failures.Add(1)
	}
	if probe {
		tripped, readmitted := m.brk.RecordProbe(good)
		if tripped {
			r.quarantines.Add(1)
		}
		if readmitted {
			r.readmitted.Add(1)
			r.health.Boost(m.id, r.probation)
		}
		return
	}
	if m.brk.Record(good, score) {
		r.quarantines.Add(1)
	}
}

// MemberInfo is the /clusterz (and Stats) view of one worker.
type MemberInfo struct {
	ID         int     `json:"id"`
	Addr       string  `json:"addr"`
	Static     bool    `json:"static"`
	Alive      bool    `json:"alive"`
	Health     float64 `json:"health"`
	Breaker    string  `json:"breaker"`
	Jobs       int64   `json:"jobs"`
	Failures   int64   `json:"failures"`
	ProbeJobs  int64   `json:"probe_jobs"`
	LastSeenMS int64   `json:"last_seen_ms_ago"`
	ExecP50US  int64   `json:"exec_p50_us"`
	ExecP99US  int64   `json:"exec_p99_us"`
}

// info snapshots one member.
func (r *registry) info(m *member) MemberInfo {
	now := time.Now()
	m.mu.Lock()
	seenAgo := now.Sub(m.lastSeen)
	m.mu.Unlock()
	return MemberInfo{
		ID:         m.id,
		Addr:       m.addr,
		Static:     m.static,
		Alive:      seenAgo <= r.expire,
		Health:     r.health.Score(m.id),
		Breaker:    m.brk.State().String(),
		Jobs:       m.jobs.Load(),
		Failures:   m.failures.Load(),
		ProbeJobs:  m.probeJobs.Load(),
		LastSeenMS: seenAgo.Milliseconds(),
	}
}
