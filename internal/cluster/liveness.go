package cluster

// Heartbeat hysteresis. A single dropped probe on a lossy link must not
// flip a worker out of membership, and a single lucky probe must not flip
// a genuinely sick worker back in — oscillating membership reshuffles
// rendezvous ownership on every flap, which defeats the cache locality the
// routing exists for. So demotion requires missThreshold consecutive
// misses and re-admission requires readmitStreak consecutive hits, and any
// opposite observation resets the other streak.
//
// hysteresis is a pure state machine (no clocks, no locks) so the flapping
// behavior is table-testable; member wraps it under its mutex.
type hysteresis struct {
	missThreshold int // consecutive misses that demote (>=1)
	readmitStreak int // consecutive hits that re-admit (>=1)

	down   bool
	misses int // consecutive misses while up
	hits   int // consecutive hits while down
}

// hit records a successful probe (or any positive liveness evidence: a
// push join, a job answered). It reports whether this hit re-admitted a
// demoted member.
func (h *hysteresis) hit() (readmitted bool) {
	h.misses = 0
	if !h.down {
		return false
	}
	h.hits++
	if h.hits >= h.readmitStreak {
		h.down = false
		h.hits = 0
		return true
	}
	return false
}

// miss records a failed probe. It reports whether this miss demoted the
// member.
func (h *hysteresis) miss() (demoted bool) {
	h.hits = 0
	if h.down {
		return false
	}
	h.misses++
	if h.misses >= h.missThreshold {
		h.down = true
		h.misses = 0
		return true
	}
	return false
}

// latRing is a small fixed ring of recent per-dispatch latencies (µs) used
// for the /clusterz exec percentiles — the observable that makes a gray
// worker visible before its breaker ever trips.
type latRing struct {
	buf [64]int64
	n   int // filled entries (<= len(buf))
	i   int // next write position
}

func (r *latRing) add(us int64) {
	r.buf[r.i] = us
	r.i = (r.i + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// quantile returns the q-quantile (0..1) of the ring, 0 when empty. The
// ring is tiny, so a copy + insertion sort per call is cheaper than
// maintaining order on the hot path.
func (r *latRing) quantile(q float64) int64 {
	if r.n == 0 {
		return 0
	}
	var tmp [64]int64
	s := tmp[:r.n]
	copy(s, r.buf[:r.n])
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
