package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcolor/internal/cluster"
	"gcolor/internal/journal"
	"gcolor/internal/serve"
)

// testWorker is one in-process fleet node: a real serving stack behind a
// recording wrapper that can inject a single 5xx on demand.
type testWorker struct {
	srv *serve.Server
	ts  *httptest.Server

	mu         sync.Mutex
	colorRIDs  []string
	failSuffix string // fail the next /color whose request ID has this suffix
	failed     int
}

func newTestWorker(t *testing.T, cfg serve.Config) *testWorker {
	t.Helper()
	if cfg.Devices == 0 && len(cfg.DeviceConfigs) == 0 {
		cfg.Devices = 1
	}
	w := &testWorker{srv: serve.NewServer(cfg)}
	inner := serve.Handler(w.srv)
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/color" {
			rid := r.Header.Get("X-Request-ID")
			w.mu.Lock()
			w.colorRIDs = append(w.colorRIDs, rid)
			fail := w.failSuffix != "" && strings.HasSuffix(rid, w.failSuffix)
			if fail {
				w.failSuffix = "" // one-shot
				w.failed++
			}
			w.mu.Unlock()
			if fail {
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(http.StatusInternalServerError)
				fmt.Fprint(rw, `{"error":"injected fault","kind":"boom"}`)
				return
			}
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(func() {
		w.ts.Close()
		w.srv.Stop()
	})
	return w
}

func (w *testWorker) ridCount(rid string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, r := range w.colorRIDs {
		if r == rid {
			n++
		}
	}
	return n
}

func (w *testWorker) armFail(suffix string) {
	w.mu.Lock()
	w.failSuffix = suffix
	w.mu.Unlock()
}

// newTestCoordinator stands up a coordinator over the given workers with
// background probing disabled so tests are deterministic: liveness comes
// from static registration and job outcomes only.
func newTestCoordinator(t *testing.T, cfg cluster.Config, workers ...*testWorker) (*cluster.Coordinator, *httptest.Server) {
	t.Helper()
	for _, w := range workers {
		cfg.Peers = append(cfg.Peers, w.ts.URL)
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = -1
	}
	if cfg.ExpireAfter == 0 {
		cfg.ExpireAfter = time.Hour
	}
	coord := cluster.NewCoordinator(cfg)
	ts := httptest.NewServer(cluster.Handler(coord))
	t.Cleanup(func() {
		ts.Close()
		coord.Close()
	})
	return coord, ts
}

// postColor sends one /color request with optional request-ID and
// idempotency headers and decodes either the response or the typed error.
func postColor(t *testing.T, coordURL string, cr *serve.ColorRequest, rid, idemKey string) (*serve.ColorResponse, int, string) {
	t.Helper()
	body, err := json.Marshal(cr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, coordURL+"/color", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if rid != "" {
		req.Header.Set("X-Request-ID", rid)
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er struct {
			Error string `json:"error"`
			Kind  string `json:"kind"`
		}
		b, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(b, &er)
		return nil, resp.StatusCode, er.Kind
	}
	var cresp serve.ColorResponse
	if err := json.NewDecoder(resp.Body).Decode(&cresp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &cresp, resp.StatusCode, ""
}

// Whole-graph jobs route to one worker; the second identical request is a
// coordinator cache hit and an Idempotency-Key replays without recoloring.
func TestRouteCacheAndIdempotency(t *testing.T) {
	w := newTestWorker(t, serve.Config{})
	coord, ts := newTestCoordinator(t, cluster.Config{}, w)

	cr := &serve.ColorRequest{Gen: "grid:12:12", Alg: "baseline", IncludeColors: true}
	first, code, kind := postColor(t, ts.URL, cr, "route-1", "")
	if first == nil {
		t.Fatalf("first request failed: %d %s", code, kind)
	}
	if first.Worker != w.ts.URL {
		t.Fatalf("Worker = %q, want %q", first.Worker, w.ts.URL)
	}
	if first.Cached || first.Scattered {
		t.Fatalf("first response cached=%v scattered=%v, want neither", first.Cached, first.Scattered)
	}
	if first.NumColors < 2 {
		t.Fatalf("grid coloring used %d colors", first.NumColors)
	}

	second, _, _ := postColor(t, ts.URL, cr, "route-2", "")
	if second == nil || !second.Cached {
		t.Fatalf("second identical request not served from coordinator cache: %+v", second)
	}

	withKey := &serve.ColorRequest{Gen: "grid:13:13", Alg: "baseline", IncludeColors: true}
	a, _, _ := postColor(t, ts.URL, withKey, "idem-1", "key-abc")
	if a == nil {
		t.Fatal("keyed request failed")
	}
	b, _, _ := postColor(t, ts.URL, withKey, "idem-2", "key-abc")
	if b == nil || !b.IdempotentReplay {
		t.Fatalf("repeat with same Idempotency-Key not replayed: %+v", b)
	}

	st := coord.Stats()
	if st.Jobs < 2 || st.Routed < 2 {
		t.Fatalf("stats jobs=%d routed=%d, want >= 2 each", st.Jobs, st.Routed)
	}
	if st.CacheHits < 1 {
		t.Fatalf("stats cache_hits=%d, want >= 1", st.CacheHits)
	}
}

// When the rendezvous owner dies mid-fleet the job fails over to another
// worker instead of failing the client.
func TestRouteFailoverOnDeadWorker(t *testing.T) {
	w1 := newTestWorker(t, serve.Config{})
	w2 := newTestWorker(t, serve.Config{})
	coord, ts := newTestCoordinator(t, cluster.Config{}, w1, w2)

	// Learn which worker owns this fingerprint, then kill exactly that one.
	cr := &serve.ColorRequest{Gen: "grid:10:10", Alg: "baseline", NoCache: true}
	probe, code, kind := postColor(t, ts.URL, cr, "fo-probe", "")
	if probe == nil {
		t.Fatalf("probe failed: %d %s", code, kind)
	}
	victim, survivor := w1, w2
	if probe.Worker == w2.ts.URL {
		victim, survivor = w2, w1
	}
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	got, code, kind := postColor(t, ts.URL, cr, "fo-1", "")
	if got == nil {
		t.Fatalf("post-kill request failed: %d %s", code, kind)
	}
	if got.Worker != survivor.ts.URL {
		t.Fatalf("post-kill job served by %q, want survivor %q", got.Worker, survivor.ts.URL)
	}
	if got.Redispatched < 1 {
		t.Fatalf("Redispatched = %d, want >= 1 (first attempt hit the dead owner)", got.Redispatched)
	}
	if st := coord.Stats(); st.RouteFailovers < 1 {
		t.Fatalf("stats route_failovers = %d, want >= 1", st.RouteFailovers)
	}
}

// A worker answering 5xx mid-scatter gets its shard re-dispatched exactly
// once, to a different worker, and the job still succeeds.
func TestScatterRedispatchExactlyOnce(t *testing.T) {
	w1 := newTestWorker(t, serve.Config{})
	w2 := newTestWorker(t, serve.Config{})
	coord, ts := newTestCoordinator(t, cluster.Config{}, w1, w2)

	cr := &serve.ColorRequest{Gen: "grid:16:16", Alg: "baseline", Shards: 2, NoCache: true, IncludeColors: true}

	// Dry run to learn the (stable) shard-to-worker assignment.
	dry, code, kind := postColor(t, ts.URL, cr, "dry", "")
	if dry == nil || !dry.Scattered {
		t.Fatalf("dry run not scattered: resp=%+v code=%d kind=%s", dry, code, kind)
	}
	owner, other := w1, w2
	if w2.ridCount("dry-s0") == 1 {
		owner, other = w2, w1
	}
	if owner.ridCount("dry-s0") != 1 {
		t.Fatalf("dry run: shard 0 served by neither worker exactly once (w1=%d w2=%d)",
			w1.ridCount("dry-s0"), w2.ridCount("dry-s0"))
	}

	// Same fingerprint, same fleet: shard 0 lands on the same owner, which
	// now rejects it once with a 500.
	owner.armFail("-s0")
	got, code, kind := postColor(t, ts.URL, cr, "redo", "")
	if got == nil {
		t.Fatalf("scatter with injected fault failed: %d %s", code, kind)
	}
	if !got.Scattered {
		t.Fatal("response not scattered")
	}
	if got.Redispatched != 1 {
		t.Fatalf("Redispatched = %d, want exactly 1", got.Redispatched)
	}
	if n := owner.ridCount("redo-s0"); n != 1 {
		t.Fatalf("faulted worker saw shard 0 %d times, want exactly 1", n)
	}
	if n := other.ridCount("redo-s0"); n != 1 {
		t.Fatalf("re-dispatch target saw shard 0 %d times, want exactly 1", n)
	}
	if st := coord.Stats(); st.Redispatches != 1 {
		t.Fatalf("stats redispatches = %d, want exactly 1", st.Redispatches)
	}
}

// Shard sub-jobs are sent no-cache: only the coordinator's LRU may hold
// the merged result, so a re-scatter never reassembles stale shards and
// worker memory is not spent on partial colorings.
func TestScatterNoDoubleCache(t *testing.T) {
	w1 := newTestWorker(t, serve.Config{})
	w2 := newTestWorker(t, serve.Config{})
	coord, ts := newTestCoordinator(t, cluster.Config{}, w1, w2)

	cr := &serve.ColorRequest{Gen: "grid:16:16", Alg: "baseline", Shards: 2, IncludeColors: true}
	got, code, kind := postColor(t, ts.URL, cr, "nc-1", "")
	if got == nil || !got.Scattered {
		t.Fatalf("scatter failed: resp=%+v code=%d kind=%s", got, code, kind)
	}

	st := coord.Stats()
	if st.CacheEntries != 1 {
		t.Fatalf("coordinator cache holds %d entries, want exactly the merged result", st.CacheEntries)
	}
	for i, w := range []*testWorker{w1, w2} {
		if n := w.srv.Stats().CacheEntries; n != 0 {
			t.Fatalf("worker %d cached %d shard sub-results, want 0 (sub-jobs must carry no-cache)", i, n)
		}
	}

	// The repeat is answered from the coordinator cache without touching
	// the fleet again.
	before := w1.ridCount("again-s0") + w2.ridCount("again-s0")
	again, _, _ := postColor(t, ts.URL, cr, "again", "")
	if again == nil || !again.Cached {
		t.Fatalf("repeat scatter not served from coordinator cache: %+v", again)
	}
	after := w1.ridCount("again-s0") + w2.ridCount("again-s0")
	if before != after {
		t.Fatal("cached repeat still dispatched shards to workers")
	}
}

// The originating request ID crosses the coordinator into every worker's
// journal: whole-graph jobs keep the client's ID verbatim, shard sub-jobs
// record it with an -s<i> suffix, and the Idempotency-Key rides along on
// whole-graph routes.
func TestRequestIDPropagatesIntoWorkerJournal(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	j1, _, err := journal.Open(dir1, journal.Options{})
	if err != nil {
		t.Fatalf("open journal 1: %v", err)
	}
	j2, _, err := journal.Open(dir2, journal.Options{})
	if err != nil {
		t.Fatalf("open journal 2: %v", err)
	}
	w1 := newTestWorker(t, serve.Config{Journal: j1})
	w2 := newTestWorker(t, serve.Config{Journal: j2})
	_, ts := newTestCoordinator(t, cluster.Config{}, w1, w2)

	whole := &serve.ColorRequest{Gen: "grid:11:11", Alg: "baseline", NoCache: true}
	if got, code, kind := postColor(t, ts.URL, whole, "req-whole", "idem-xyz"); got == nil {
		t.Fatalf("whole-graph job failed: %d %s", code, kind)
	}
	scat := &serve.ColorRequest{Gen: "grid:16:16", Alg: "baseline", Shards: 2, NoCache: true, IncludeColors: true}
	if got, code, kind := postColor(t, ts.URL, scat, "req-scat", ""); got == nil || !got.Scattered {
		t.Fatalf("scattered job failed: resp=%+v code=%d kind=%s", got, code, kind)
	}

	// Quiesce the workers, close the journals, and replay them cold — the
	// same path a restarted worker would take.
	w1.srv.Stop()
	w2.srv.Stop()
	if err := j1.Close(); err != nil {
		t.Fatalf("close journal 1: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("close journal 2: %v", err)
	}
	ids := map[string]string{} // rid -> idem key, across both worker journals
	for _, dir := range []string{dir1, dir2} {
		j, rec, err := journal.Open(dir, journal.Options{})
		if err != nil {
			t.Fatalf("reopen journal %s: %v", dir, err)
		}
		for _, cmp := range rec.Completions {
			ids[cmp.ID] = cmp.IdemKey
		}
		j.Close()
	}

	if idem, ok := ids["req-whole"]; !ok {
		t.Fatalf("no worker journal recorded the originating request ID %q (have %v)", "req-whole", keys(ids))
	} else if idem != "idem-xyz" {
		t.Fatalf("journal idem key for req-whole = %q, want %q", idem, "idem-xyz")
	}
	for i := 0; i < 2; i++ {
		srid := fmt.Sprintf("req-scat-s%d", i)
		idem, ok := ids[srid]
		if !ok {
			t.Fatalf("no worker journal recorded shard request ID %q (have %v)", srid, keys(ids))
		}
		// Forwarding the client key onto shards would collide K sub-jobs
		// on one idempotency slot; it must stay at the coordinator.
		if idem != "" {
			t.Fatalf("shard %s carried idem key %q, want none", srid, idem)
		}
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Dynamic membership: a fleet of zero rejects with no_workers, a join via
// the HTTP surface brings capacity online without a restart.
func TestJoinGrowsFleet(t *testing.T) {
	coord, ts := newTestCoordinator(t, cluster.Config{})

	cr := &serve.ColorRequest{Gen: "grid:10:10", Alg: "baseline"}
	if got, code, kind := postColor(t, ts.URL, cr, "j-1", ""); got != nil || code != http.StatusServiceUnavailable || kind != "no_workers" {
		t.Fatalf("empty fleet answered resp=%v code=%d kind=%q, want 503 no_workers", got, code, kind)
	}

	w := newTestWorker(t, serve.Config{})
	body, _ := json.Marshal(map[string]string{"addr": w.ts.URL})
	resp, err := http.Post(ts.URL+"/cluster/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status = %d", resp.StatusCode)
	}
	if st := coord.Stats(); st.Workers != 1 || st.Joins != 1 {
		t.Fatalf("after join workers=%d joins=%d, want 1/1", st.Workers, st.Joins)
	}
	if got, code, kind := postColor(t, ts.URL, cr, "j-2", ""); got == nil {
		t.Fatalf("post-join request failed: %d %s", code, kind)
	}
}

// A draining coordinator refuses new work with the same typed error the
// serving layer uses, so rolling restarts look identical fleet-wide.
func TestDrainRefusesNewWork(t *testing.T) {
	w := newTestWorker(t, serve.Config{})
	coord, ts := newTestCoordinator(t, cluster.Config{}, w)

	coord.RequestDrain()
	cr := &serve.ColorRequest{Gen: "grid:10:10", Alg: "baseline"}
	got, code, kind := postColor(t, ts.URL, cr, "d-1", "")
	if got != nil || code != http.StatusServiceUnavailable || kind != "draining" {
		t.Fatalf("draining coordinator answered resp=%v code=%d kind=%q, want 503 draining", got, code, kind)
	}
}

// Crash-safety: a coordinator restarted over its journal warm-starts the
// merged-result cache and answers the repeat without touching the fleet.
func TestCoordinatorJournalWarmStart(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	w := newTestWorker(t, serve.Config{})

	coord1, ts1 := newTestCoordinator(t, cluster.Config{Journal: j, Recovery: rec}, w)
	cr := &serve.ColorRequest{Gen: "grid:12:12", Alg: "baseline", IncludeColors: true}
	if got, code, kind := postColor(t, ts1.URL, cr, "warm-1", ""); got == nil {
		t.Fatalf("seed request failed: %d %s", code, kind)
	}
	ts1.Close()
	coord1.Close()
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	j2, rec2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j2.Close()
	coord2, ts2 := newTestCoordinator(t, cluster.Config{Journal: j2, Recovery: rec2}, w)
	if st := coord2.Stats(); st.WarmedCache < 1 {
		t.Fatalf("restarted coordinator warmed %d cache entries, want >= 1", st.WarmedCache)
	}
	jobsBefore := w.ridCount("warm-2")
	got, _, _ := postColor(t, ts2.URL, cr, "warm-2", "")
	if got == nil || !got.Cached {
		t.Fatalf("repeat after restart not a warm cache hit: %+v", got)
	}
	if w.ridCount("warm-2") != jobsBefore {
		t.Fatal("warm cache hit still dispatched to a worker")
	}
}
