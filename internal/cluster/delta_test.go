package cluster_test

import (
	"net/http"
	"testing"

	"gcolor/internal/cluster"
	"gcolor/internal/serve"
)

// A resident upload routes whole (never scattered) and binds the version
// to one worker; every delta in the mutation chain then lands on that same
// worker's resident store, served by its incremental path.
func TestDeltaRoutesToVersionOwner(t *testing.T) {
	w1 := newTestWorker(t, serve.Config{})
	w2 := newTestWorker(t, serve.Config{})
	w3 := newTestWorker(t, serve.Config{})
	coord, ts := newTestCoordinator(t, cluster.Config{
		// Low thresholds so the resident upload WOULD scatter if the
		// resident pin did not force whole-graph routing.
		ScatterVertices: 10,
	}, w1, w2, w3)

	base, code, kind := postColor(t, ts.URL, &serve.ColorRequest{Gen: "grid:8:8", Resident: true}, "rid-base", "")
	if code != http.StatusOK {
		t.Fatalf("resident upload: %d (%s)", code, kind)
	}
	if base.Scattered {
		t.Fatal("resident upload was scattered; no worker holds the full graph")
	}
	if base.Worker == "" {
		t.Fatal("resident upload reply has no worker attribution")
	}

	d1, code, kind := postColor(t, ts.URL, &serve.ColorRequest{
		BaseFingerprint: base.Fingerprint,
		AddEdges:        [][2]int32{{0, 63}},
	}, "rid-d1", "")
	if code != http.StatusOK {
		t.Fatalf("delta 1: %d (%s)", code, kind)
	}
	if !d1.Delta {
		t.Fatalf("delta 1 was not served by the incremental engine: %+v", d1)
	}
	if d1.Worker != base.Worker {
		t.Fatalf("delta 1 routed to %s, owner is %s", d1.Worker, base.Worker)
	}

	// Chain: the successor's owner binding routes delta 2 to the same
	// worker even though its fingerprint rendezvous-ranks differently.
	d2, code, kind := postColor(t, ts.URL, &serve.ColorRequest{
		BaseFingerprint: d1.Fingerprint,
		AddVertices:     1,
		AddEdges:        [][2]int32{{64, 0}},
	}, "rid-d2", "")
	if code != http.StatusOK {
		t.Fatalf("delta 2: %d (%s)", code, kind)
	}
	if d2.Worker != base.Worker {
		t.Fatalf("delta 2 routed to %s, owner is %s", d2.Worker, base.Worker)
	}

	st := coord.Stats()
	if st.DeltaJobs != 2 {
		t.Fatalf("delta_jobs = %d, want 2", st.DeltaJobs)
	}
	if st.DeltaOwnerHits != 2 {
		t.Fatalf("delta_owner_hits = %d, want 2 (both deltas had owner hints)", st.DeltaOwnerHits)
	}
	if st.Scattered != 0 {
		t.Fatalf("scattered = %d, want 0", st.Scattered)
	}
	if st.VersionOwners < 3 {
		t.Fatalf("version_owners = %d, want >= 3", st.VersionOwners)
	}
}

// A worker's unknown_base rejection passes through the coordinator as the
// same typed 404 — it is the client's signal to re-upload, and it must
// never be failed over (no replica holds the version either).
func TestDeltaUnknownBasePassesThrough(t *testing.T) {
	w := newTestWorker(t, serve.Config{})
	coord, ts := newTestCoordinator(t, cluster.Config{}, w)

	_, code, kind := postColor(t, ts.URL, &serve.ColorRequest{
		BaseFingerprint: "00000000deadbeef",
		AddVertices:     1,
	}, "rid-miss", "")
	if code != http.StatusNotFound || kind != "unknown_base" {
		t.Fatalf("got %d (%s), want 404 (unknown_base)", code, kind)
	}
	if st := coord.Stats(); st.RouteFailovers != 0 {
		t.Fatalf("unknown_base was failed over %d times; it must not be", st.RouteFailovers)
	}

	// Malformed fingerprints are a client error, not fleet work.
	_, code, kind = postColor(t, ts.URL, &serve.ColorRequest{
		BaseFingerprint: "not-hex",
	}, "rid-bad", "")
	if code != http.StatusBadRequest {
		t.Fatalf("bad fingerprint: got %d (%s), want 400", code, kind)
	}
}
