package cluster

import (
	"container/list"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/serve"
)

// Fleet-level delta routing. A delta request carries no graph — only a
// base fingerprint and edit lists — so the coordinator can neither resolve
// nor scatter it. What it CAN do is route it to the one worker whose
// resident version store holds the base: the owner table remembers which
// worker served each version of a mutation chain, so successive deltas
// land on the same worker and hit its incremental path instead of
// round-robining into unknown_base rejections. Version identity is content
// identity (serve's delta engine fingerprints successors by content), so
// the successor fingerprint in a delta reply is the owner-table key for
// the next delta in the chain.

// ownerTable is the bounded LRU mapping resident version fingerprints to
// the worker that holds them. It is a routing hint, not a lease: a wrong
// entry costs one 404 round trip (the worker answers unknown_base, the
// entry is dropped), never a wrong answer.
type ownerTable struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *ownerEntry
	byFp  map[uint64]*list.Element
}

type ownerEntry struct {
	fp   uint64
	addr string
}

func newOwnerTable(capacity int) *ownerTable {
	if capacity <= 0 {
		capacity = 1024
	}
	return &ownerTable{cap: capacity, order: list.New(), byFp: make(map[uint64]*list.Element)}
}

func (t *ownerTable) get(fp uint64) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.byFp[fp]
	if !ok {
		return "", false
	}
	t.order.MoveToFront(el)
	return el.Value.(*ownerEntry).addr, true
}

func (t *ownerTable) put(fp uint64, addr string) {
	if addr == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.byFp[fp]; ok {
		el.Value.(*ownerEntry).addr = addr
		t.order.MoveToFront(el)
		return
	}
	t.byFp[fp] = t.order.PushFront(&ownerEntry{fp: fp, addr: addr})
	for t.order.Len() > t.cap {
		el := t.order.Back()
		t.order.Remove(el)
		delete(t.byFp, el.Value.(*ownerEntry).fp)
	}
}

func (t *ownerTable) drop(fp uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.byFp[fp]; ok {
		t.order.Remove(el)
		delete(t.byFp, fp)
	}
}

func (t *ownerTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.order.Len()
}

// lookup resolves a member by its canonical base URL (owner-table hints
// store addresses, not member IDs, so a worker that re-joins keeps its
// ownership).
func (r *registry) lookup(addr string) *member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byAddr[addr]
}

// submitDelta is the coordinator's delta path, reached from Submit before
// resolve (a delta has no graph to resolve). Idempotent replay is checked
// here; the result cache is not — the successor fingerprint is unknown
// until a worker applies the delta, but the reply is cached under it, so
// a later full upload of the same content hits.
func (c *Coordinator) submitDelta(ctx context.Context, cr *serve.ColorRequest, rid, idemKey string, wire []byte) (*serve.ColorResponse, error) {
	if cr.Gen != "" || cr.Graph != "" || cr.GraphCSRB64 != "" {
		return nil, &BadRequestError{Err: fmt.Errorf("a delta request must not also carry a graph")}
	}
	baseFp, err := serve.ParseFingerprint(cr.BaseFingerprint)
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	alg := gpucolor.AlgBaseline
	if cr.Alg != "" {
		if alg, err = gpucolor.ParseAlgorithm(cr.Alg); err != nil {
			return nil, &BadRequestError{Err: err}
		}
	}

	if res, ok := c.idem.get(idemKey); ok {
		out := *res
		out.RequestID = rid
		out.IdempotentReplay = true
		return &out, nil
	}

	c.jobs.Add(1)
	c.deltaJobs.Add(1)
	key := resultKey{fp: baseFp, policy: policyKey(alg, cr.Seed, cr.Threshold)}
	c.journalAccept(rid, idemKey, key, wire, ctx)

	res, err := c.routeDelta(ctx, cr, rid, idemKey, baseFp)
	if err == nil {
		// Journal and cache under the successor's content fingerprint —
		// that is the identity the coloring belongs to.
		if sfp, perr := serve.ParseFingerprint(res.Fingerprint); perr == nil {
			key.fp = sfp
		}
	}
	c.journalFinish(rid, idemKey, key, cr.NoCache, res, err)
	if err != nil {
		c.failed.Add(1)
		return nil, err
	}
	res.RequestID = rid
	if !cr.NoCache {
		stored := *res
		c.cache.put(key, &stored)
	}
	if idemKey != "" {
		stored := *res
		c.idem.put(idemKey, &stored)
	}
	return res, nil
}

// routeDelta forwards a delta whole, preferring the recorded owner of the
// base version and falling back to rendezvous rank on the base
// fingerprint. An unknown_base rejection drops the stale owner hint and is
// never failed over — no other worker holds the version either; the
// client must re-upload. On success both the base and successor
// fingerprints are (re)bound to the serving worker, keeping the whole
// mutation chain on one resident store.
func (c *Coordinator) routeDelta(ctx context.Context, cr *serve.ColorRequest, rid, idemKey string, baseFp uint64) (*serve.ColorResponse, error) {
	out := *cr
	out.IncludeColors = true // the coordinator caches full colorings
	ctx, cancel := c.workerCtx(ctx)
	defer cancel()
	exclude := make(map[int]bool)
	var lastErr error
	for attempt := 0; attempt < c.cfg.RouteAttempts; attempt++ {
		var m *member
		var probe bool
		if addr, ok := c.owners.get(baseFp); ok && attempt == 0 {
			if om := c.reg.lookup(addr); om != nil && !exclude[om.id] && om.aliveAt(time.Now(), c.reg.expire) {
				m = om
				c.deltaOwnerHits.Add(1)
			}
		}
		if m == nil {
			c.deltaOwnerMisses.Add(1)
			var err error
			m, probe, err = c.reg.pick(baseFp, exclude)
			if err != nil {
				if lastErr != nil {
					return nil, lastErr
				}
				return nil, err
			}
		}
		m.jobs.Add(1)
		start := time.Now()
		resp, err := callWorker(ctx, c.client, m.addr, &out, rid, idemKey, c.epoch)
		exec := time.Since(start)
		if err == nil {
			m.seen(time.Now())
			c.reg.observe(m, probe, true, 1, exec)
			resp.Worker = m.addr
			resp.Redispatched = attempt
			c.owners.put(baseFp, m.addr)
			if sfp, perr := serve.ParseFingerprint(resp.Fingerprint); perr == nil {
				c.owners.put(sfp, m.addr)
			}
			return resp, nil
		}
		lastErr = err
		we, _ := err.(*WorkerError)
		if we != nil && we.Status > 0 {
			m.seen(time.Now()) // it answered; sick is not dead
		}
		if we != nil && we.Status == http.StatusNotFound && we.Kind == "unknown_base" {
			// The hinted worker no longer holds the base (restart, LRU
			// eviction). No replica will do better; surface the typed 404
			// so the client re-uploads, and forget the stale hint.
			c.owners.drop(baseFp)
			c.reg.observe(m, probe, true, 1, exec) // the worker is fine
			return nil, err
		}
		if c.noteStaleEpoch(we) {
			return nil, err
		}
		good, reward := judgeWorkerError(we)
		c.reg.observe(m, probe, good, reward, exec)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if we == nil || !we.Retryable() {
			return nil, err
		}
		exclude[m.id] = true
		c.owners.drop(baseFp) // the owner is down; stop preferring it
		c.routeFailovers.Add(1)
	}
	return nil, fmt.Errorf("cluster: delta route exhausted %d attempts: %w", c.cfg.RouteAttempts, lastErr)
}
