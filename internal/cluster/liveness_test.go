package cluster

import "testing"

// The hysteresis machine is a pure function of the observation sequence,
// so the whole contract is table-testable: N consecutive misses demote,
// M consecutive hits re-admit, and any opposite observation resets the
// other streak — which is exactly why a flapping link cannot oscillate
// membership.
func TestHysteresisTable(t *testing.T) {
	cases := []struct {
		name    string
		seq     string // 'h' = probe hit, 'm' = probe miss
		down    bool   // expected final state
		demos   int    // expected demotion transitions
		readmit int    // expected re-admission transitions
	}{
		{"fresh is up", "", false, 0, 0},
		{"two misses hold", "mm", false, 0, 0},
		{"three misses demote", "mmm", true, 1, 0},
		{"extra misses don't re-demote", "mmmmm", true, 1, 0},
		{"hit resets the miss streak", "mmhmm", false, 0, 0},
		{"flapping never demotes", "mhmhmhmhmhmhmhmhmhmh", false, 0, 0},
		{"two-miss flaps never demote", "mmhmmhmmhmmhmmh", false, 0, 0},
		{"demote then one hit holds down", "mmmh", true, 1, 0},
		{"demote then hit streak re-admits", "mmmhh", false, 1, 1},
		{"miss resets the readmit streak", "mmmhmhmh", true, 1, 0},
		{"full cycle twice", "mmmhhmmmhh", false, 2, 2},
		{"flapping while down stays down", "mmmhmhmhmhmhmhmhmhmh", true, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hy := hysteresis{missThreshold: 3, readmitStreak: 2}
			demos, readmits := 0, 0
			for _, c := range tc.seq {
				switch c {
				case 'h':
					if hy.hit() {
						readmits++
					}
				case 'm':
					if hy.miss() {
						demos++
					}
				}
			}
			if hy.down != tc.down || demos != tc.demos || readmits != tc.readmit {
				t.Fatalf("seq %q: down=%v demotions=%d readmissions=%d, want %v/%d/%d",
					tc.seq, hy.down, demos, readmits, tc.down, tc.demos, tc.readmit)
			}
		})
	}
}

// Single-miss demotion must still work for deployments that want the old
// hair-trigger behaviour.
func TestHysteresisThresholdOne(t *testing.T) {
	hy := hysteresis{missThreshold: 1, readmitStreak: 1}
	if !hy.miss() {
		t.Fatal("first miss did not demote at threshold 1")
	}
	if !hy.hit() {
		t.Fatal("first hit did not re-admit at streak 1")
	}
}
