package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"gcolor/internal/journal"
)

// StandbyConfig sizes a warm-standby coordinator.
type StandbyConfig struct {
	// JournalDir is the primary's journal directory, which the standby
	// tails (shared storage: same filesystem in-box, or a replicated
	// mount across boxes).
	JournalDir string
	// PrimaryURL is the primary coordinator's base URL, probed on the
	// heartbeat cadence.
	PrimaryURL string
	// TakeoverAddr is the listen address the standby binds when it takes
	// over — typically the fleet's front-door address, freed by the dead
	// primary. "" skips binding (the caller owns serving).
	TakeoverAddr string
	// HeartbeatInterval paces both the primary probe and the journal poll
	// (default 500ms).
	HeartbeatInterval time.Duration
	// MissThreshold is the consecutive probe failures that trigger
	// takeover (default 3) — same hysteresis discipline as worker
	// liveness, so one dropped probe on a flaky link does not fork the
	// control plane.
	MissThreshold int
	// BindWindow bounds the takeover's listen retry loop: a SIGKILLed
	// primary's socket may linger briefly (default 5s).
	BindWindow time.Duration
	// Owner names this standby in the lease file (diagnostics only).
	Owner string
	// Journal tunes the journal the takeover coordinator appends to.
	Journal journal.Options
	// Cluster is the coordinator configuration used at takeover; Epoch,
	// Journal, and Recovery are filled in by the takeover itself.
	Cluster Config
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c StandbyConfig) withDefaults() StandbyConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.MissThreshold < 1 {
		c.MissThreshold = 3
	}
	if c.BindWindow <= 0 {
		c.BindWindow = 5 * time.Second
	}
	return c
}

// Takeover is the product of a standby promotion: a live coordinator
// fenced at a fresh epoch, warm-started from the dead primary's journal.
type Takeover struct {
	// Coordinator is serving (replay of pending accepts runs in its
	// background, exactly like a crash-restart recovery).
	Coordinator *Coordinator
	// Journal is the takeover's open journal in the shared directory; the
	// caller owns Close.
	Journal *journal.Journal
	// Epoch is the fencing epoch acquired from the lease.
	Epoch uint64
	// Pending is how many accepted-but-unfinished jobs the takeover
	// re-dispatched.
	Pending int
	// Listener is bound to TakeoverAddr ("" config leaves it nil); the
	// caller serves Handler(Coordinator) on it.
	Listener net.Listener
	// DetectedAt and ReadyAt bracket the takeover: last missed probe to
	// coordinator constructed.
	DetectedAt, ReadyAt time.Time
}

// Standby tails a primary coordinator's journal and takes over when the
// primary stops answering. One Run per Standby.
type Standby struct {
	cfg      StandbyConfig
	follower *journal.Follower
	client   *http.Client
}

// NewStandby builds a standby for the given primary.
func NewStandby(cfg StandbyConfig) *Standby {
	cfg = cfg.withDefaults()
	return &Standby{
		cfg:      cfg,
		follower: journal.NewFollower(cfg.JournalDir),
		client:   newControlClient(cfg.HeartbeatInterval * 2),
	}
}

func (s *Standby) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Run watches the primary until it dies (returning the takeover) or ctx
// ends (returning ctx.Err). The loop interleaves journal polls with
// liveness probes so the follower is always within one flush interval of
// the primary's tail when the takeover happens.
func (s *Standby) Run(ctx context.Context) (*Takeover, error) {
	primary := normalizeAddr(s.cfg.PrimaryURL)
	misses := 0
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
		if n, err := s.follower.Poll(); err != nil {
			s.logf("standby: journal poll: %v", err)
		} else if n > 0 {
			s.logf("standby: followed %d records", n)
		}
		if s.probePrimary(ctx, primary) {
			misses = 0
			continue
		}
		misses++
		s.logf("standby: primary miss %d/%d", misses, s.cfg.MissThreshold)
		if misses >= s.cfg.MissThreshold {
			return s.takeover(ctx)
		}
	}
}

// probePrimary reports whether the primary answered its healthz.
func (s *Standby) probePrimary(ctx context.Context, primary string) bool {
	pctx, cancel := context.WithTimeout(ctx, s.cfg.HeartbeatInterval*2)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, primary+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode < 300
}

// takeover promotes this standby: acquire the next epoch, drain the
// journal tail, open it for appends, bind the front door, and build the
// coordinator with the recovered state. Failure before the lease write is
// retryable by a fresh Run; failure after leaves the lease bumped, which
// is safe — epochs only fence, they reserve nothing.
func (s *Standby) takeover(ctx context.Context) (*Takeover, error) {
	detected := time.Now()
	lease, err := AcquireLease(s.cfg.JournalDir, s.cfg.Owner)
	if err != nil {
		return nil, fmt.Errorf("cluster: standby takeover: %w", err)
	}
	s.logf("standby: taking over at epoch %d", lease.Epoch)
	// One final poll: the primary's last group-commit flush may have
	// landed after our last tick.
	if _, err := s.follower.Poll(); err != nil {
		s.logf("standby: final poll: %v", err)
	}
	rec := s.follower.Recovery()

	jnl, err := journal.OpenAppend(s.cfg.JournalDir, s.cfg.Journal)
	if err != nil {
		return nil, fmt.Errorf("cluster: standby takeover: %w", err)
	}

	var ln net.Listener
	if s.cfg.TakeoverAddr != "" {
		ln, err = bindWithin(ctx, s.cfg.TakeoverAddr, s.cfg.BindWindow)
		if err != nil {
			jnl.Close()
			return nil, fmt.Errorf("cluster: standby takeover: bind %s: %w", s.cfg.TakeoverAddr, err)
		}
	}

	cfg := s.cfg.Cluster
	cfg.Epoch = lease.Epoch
	cfg.Journal = jnl
	cfg.Recovery = rec
	coord := NewCoordinator(cfg)
	ready := time.Now()
	// Floor at 1ms: zero is the "not a takeover" sentinel, and a takeover
	// faster than the clock tick must still read as one.
	ms := ready.Sub(detected).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	coord.SetTakeoverMS(ms)
	s.logf("standby: serving at epoch %d (%d pending replayed, takeover %dms)",
		lease.Epoch, len(rec.Pending), ready.Sub(detected).Milliseconds())
	return &Takeover{
		Coordinator: coord,
		Journal:     jnl,
		Epoch:       lease.Epoch,
		Pending:     len(rec.Pending),
		Listener:    ln,
		DetectedAt:  detected,
		ReadyAt:     ready,
	}, nil
}

// bindWithin retries the listen until it succeeds or the window closes: a
// SIGKILLed primary's port can linger in the kernel for a beat.
func bindWithin(ctx context.Context, addr string, window time.Duration) (net.Listener, error) {
	deadline := time.Now().Add(window)
	var lastErr error
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, lastErr
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
