package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strings"

	"gcolor/internal/serve"
)

// Typed parsing for the cluster's control-plane wire messages (join,
// heartbeat, epoch fencing). Everything here is reachable from untrusted
// bytes, so the contract is: never panic, never accept garbage silently,
// always fail with a typed error the handlers can map to a status code.

// ErrStaleEpoch is the sentinel for epoch-fencing rejections; the concrete
// error is always a *StaleEpochError carrying both epochs.
var ErrStaleEpoch = errors.New("cluster: stale epoch")

// StaleEpochError reports a message carrying an epoch below the observer's
// high-water mark — evidence of a deposed coordinator (or of this
// coordinator being the deposed one, when a worker claims a newer epoch).
type StaleEpochError struct {
	// Got is the epoch the message carried; Current the observer's
	// high-water mark.
	Got, Current uint64
}

// Error implements error.
func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("cluster: stale epoch %d (current %d)", e.Got, e.Current)
}

// Is makes errors.Is(err, ErrStaleEpoch) match.
func (e *StaleEpochError) Is(target error) bool { return target == ErrStaleEpoch }

// BadWireError reports a malformed control-plane message (undecodable
// JSON, missing or unusable fields). Handlers map it to 400.
type BadWireError struct{ Err error }

// Error implements error.
func (e *BadWireError) Error() string { return "cluster: bad wire message: " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *BadWireError) Unwrap() error { return e.Err }

// JoinRequest is the POST /cluster/join body. Addr is required; ID is an
// optional stable worker instance identity (a worker that restarts on a
// new port re-joins with the same ID and rebinds it, so the fleet does not
// double-count one instance under two addresses); Epoch is the highest
// coordinator epoch the worker has observed, letting a deposed coordinator
// learn it was deposed from its own workers.
type JoinRequest struct {
	Addr  string `json:"addr"`
	ID    string `json:"id,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// JoinResponse is the join reply: the coordinator's current epoch plus the
// member's registry view. Workers ratchet their epoch guard from Epoch.
type JoinResponse struct {
	Epoch  uint64     `json:"epoch"`
	Member MemberInfo `json:"member"`
}

// maxJoinAddrBytes bounds an advertised address; anything longer is an
// attack or a bug, not a URL.
const maxJoinAddrBytes = 512

// ParseJoinRequest decodes and validates a join body. It never panics on
// any input; every failure is a *BadWireError.
func ParseJoinRequest(data []byte) (JoinRequest, error) {
	var jr JoinRequest
	if err := json.Unmarshal(data, &jr); err != nil {
		return JoinRequest{}, &BadWireError{Err: err}
	}
	jr.Addr = strings.TrimSpace(jr.Addr)
	if jr.Addr == "" {
		return JoinRequest{}, &BadWireError{Err: errors.New(`join body must set "addr"`)}
	}
	if len(jr.Addr) > maxJoinAddrBytes {
		return JoinRequest{}, &BadWireError{Err: fmt.Errorf("addr exceeds %d bytes", maxJoinAddrBytes)}
	}
	jr.Addr = normalizeAddr(jr.Addr)
	u, err := url.Parse(jr.Addr)
	if err != nil {
		return JoinRequest{}, &BadWireError{Err: fmt.Errorf("addr: %v", err)}
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return JoinRequest{}, &BadWireError{Err: fmt.Errorf("addr %q is not an http(s) base URL", jr.Addr)}
	}
	// IDs travel into headers, logs, and /clusterz; hold them to the same
	// character discipline as request IDs.
	if jr.ID != "" && serve.SanitizeRequestID(jr.ID) == "" {
		return JoinRequest{}, &BadWireError{Err: fmt.Errorf("id %q has unsafe characters", jr.ID)}
	}
	return jr, nil
}

// ValidateEpoch checks a message's epoch against the observer's current
// one. Epoch 0 ("no epoch", pre-HA senders) always passes. A lower epoch
// returns *StaleEpochError; the (possibly advanced) current value is
// returned for ratcheting.
func ValidateEpoch(current, got uint64) (uint64, error) {
	if got == 0 {
		return current, nil
	}
	if got < current {
		return current, &StaleEpochError{Got: got, Current: current}
	}
	return got, nil
}
