package cluster_test

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gcolor/internal/cluster"
	"gcolor/internal/serve"
)

var fuzzCoord struct {
	once sync.Once
	ts   *httptest.Server
}

// fuzzJoinServer is one shared coordinator HTTP endpoint for the whole
// fuzz run; per-input servers would dominate the iteration cost.
func fuzzJoinServer() *httptest.Server {
	fuzzCoord.once.Do(func() {
		c := cluster.NewCoordinator(cluster.Config{
			Epoch:             3,
			HeartbeatInterval: -1,
			ExpireAfter:       time.Hour,
		})
		fuzzCoord.ts = httptest.NewServer(cluster.Handler(c))
	})
	return fuzzCoord.ts
}

// FuzzClusterWire drives arbitrary bytes through the control-plane wire
// parsers and the live join endpoint. Invariants: no input panics, every
// parse failure is a typed error, and the endpoint answers only with the
// documented statuses (200 join, 400 malformed, 409 stale epoch).
func FuzzClusterWire(f *testing.F) {
	f.Add([]byte(`{"addr":"http://10.0.0.7:8421","id":"w-abc123","epoch":3}`))
	f.Add([]byte(`{"addr":"10.0.0.7:8421"}`))
	f.Add([]byte(`{"addr":"http://a","epoch":99}`))             // future epoch: stale coordinator
	f.Add([]byte(`{"addr":"http://a","epoch":1}`))              // past epoch: worker behind
	f.Add([]byte(`{"addr":"","id":""}`))                        // empty
	f.Add([]byte(`{"addr":"ftp://x"}`))                         // bad scheme
	f.Add([]byte(`{"addr":"http://a","id":"has,comma"}`))       // invalid instance ID
	f.Add([]byte(`{"addr":"http://a","id":"dup"}`))             // duplicate instance
	f.Add([]byte(`{"epoch":18446744073709551615}`))             // max epoch, no addr
	f.Add([]byte(`[1,2,3]`))                                    // wrong JSON shape
	f.Add([]byte(`{"addr":` + string(make([]byte, 600)) + `}`)) // oversized garbage
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		jr, err := cluster.ParseJoinRequest(data)
		if err == nil {
			// A request the parser accepted must survive the coordinator's
			// own Join: parse is the only gate for malformed input.
			if jr.Addr == "" {
				t.Fatalf("parsed join with empty addr from %q", data)
			}
		}

		resp, herr := http.Post(fuzzJoinServer().URL+"/cluster/join", "application/json", bytes.NewReader(data))
		if herr != nil {
			t.Fatalf("join post: %v", herr)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusBadRequest, http.StatusConflict:
		default:
			t.Fatalf("join answered http %d for %q", resp.StatusCode, data)
		}
		if err != nil && resp.StatusCode == http.StatusOK {
			// The endpoint reads the same bytes through the same parser; it
			// cannot accept what the parser refused.
			t.Fatalf("parser refused (%v) but endpoint accepted %q", err, data)
		}
	})
}

// FuzzValidateEpoch pins the fencing rule: epochs below current are the
// typed stale error, zero always passes (unfenced legacy workers), and
// nothing panics.
func FuzzValidateEpoch(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(3), uint64(2))
	f.Add(uint64(3), uint64(3))
	f.Add(uint64(3), uint64(0))
	f.Add(uint64(1), ^uint64(0))
	f.Fuzz(func(t *testing.T, current, got uint64) {
		e, err := cluster.ValidateEpoch(current, got)
		stale := got > 0 && got < current
		if stale {
			if err == nil || !errors.Is(err, cluster.ErrStaleEpoch) {
				t.Fatalf("ValidateEpoch(%d, %d) = %v, want ErrStaleEpoch", current, got, err)
			}
			return
		}
		want := got
		if got == 0 {
			want = current // unfenced caller adopts the incumbent epoch
		}
		if err != nil || e != want {
			t.Fatalf("ValidateEpoch(%d, %d) = %d, %v; want %d, nil", current, got, e, err, want)
		}
	})
}

// FuzzParseEpochHeader pins the worker-side header parse: empty means
// unfenced, anything non-numeric is an error, and no input panics or
// ratchets the guard backwards.
func FuzzParseEpochHeader(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("18446744073709551615")
	f.Add("-1")
	f.Add("banana")
	f.Fuzz(func(t *testing.T, h string) {
		e, err := serve.ParseEpoch(h)
		if h == "" && (e != 0 || err != nil) {
			t.Fatalf("ParseEpoch(%q) = %d, %v; want 0, nil", h, e, err)
		}
		g := &serve.EpochGuard{}
		g.Observe(5)
		if err == nil {
			g.Observe(e)
		}
		if g.Current() < 5 {
			t.Fatalf("guard ratcheted down to %d via %q", g.Current(), h)
		}
	})
}
