package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Worker-side membership: a worker is a plain gcolord daemon; its only
// cluster duty is announcing itself. JoinLoop POSTs /cluster/join to the
// coordinator on the heartbeat cadence — push liveness complements the
// coordinator's pull probes, and re-joining after a coordinator restart
// is automatic because every join is idempotent.

// JoinLoop announces advertiseAddr to the coordinator every interval
// until ctx is done. The first join is attempted immediately; failures
// are retried on the same cadence (the coordinator may simply not be up
// yet). It returns ctx.Err.
func JoinLoop(ctx context.Context, client *http.Client, coordinatorURL, advertiseAddr string, interval time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	coordinatorURL = normalizeAddr(coordinatorURL)
	body, _ := json.Marshal(map[string]string{"addr": normalizeAddr(advertiseAddr)})
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		_ = joinOnce(ctx, client, coordinatorURL, body)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

func joinOnce(ctx context.Context, client *http.Client, coordinatorURL string, body []byte) error {
	jctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(jctx, http.MethodPost, coordinatorURL+"/cluster/join", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("cluster: join: http %d", resp.StatusCode)
	}
	return nil
}
