package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"gcolor/internal/serve"
)

// Worker-side membership: a worker is a plain gcolord daemon; its only
// cluster duty is announcing itself. JoinLoop POSTs /cluster/join to the
// coordinator on the heartbeat cadence — push liveness complements the
// coordinator's pull probes, and re-joining after a coordinator restart
// is automatic because every join is idempotent.

// Joiner is the worker-side membership pump configuration.
type Joiner struct {
	// Client is the HTTP client for join calls (default: a bounded
	// control-plane client — a wedged coordinator must not wedge the pump).
	Client *http.Client
	// CoordinatorURL is the coordinator's base URL.
	CoordinatorURL string
	// AdvertiseAddr is this worker's base URL as the coordinator should
	// dial it.
	AdvertiseAddr string
	// Instance is the worker's stable identity across restarts of the
	// pump ("" = generate a random one). When the worker restarts on a new
	// port, the coordinator uses it to retire the old address immediately.
	Instance string
	// Interval paces the joins (default 500ms).
	Interval time.Duration
	// Guard, when set, is ratcheted with the epoch of every join reply, so
	// the worker's /color fences dispatches from coordinators older than
	// the one it most recently joined.
	Guard *serve.EpochGuard
}

// NewInstanceID returns a random stable worker identity ("w-" + 8 random
// bytes, hex).
func NewInstanceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Degraded but functional: identity becomes address-only.
		return ""
	}
	return "w-" + hex.EncodeToString(b[:])
}

// JoinLoop announces advertiseAddr to the coordinator every interval
// until ctx is done. The first join is attempted immediately; failures
// are retried on the same cadence (the coordinator may simply not be up
// yet). It returns ctx.Err. Legacy signature; Run on a Joiner carries the
// instance identity and epoch guard too.
func JoinLoop(ctx context.Context, client *http.Client, coordinatorURL, advertiseAddr string, interval time.Duration) error {
	j := Joiner{
		Client:         client,
		CoordinatorURL: coordinatorURL,
		AdvertiseAddr:  advertiseAddr,
		Interval:       interval,
	}
	return j.Run(ctx)
}

// Run drives the join pump until ctx is done; it returns ctx.Err.
func (j Joiner) Run(ctx context.Context) error {
	client := j.Client
	if client == nil {
		client = newControlClient(0)
	}
	interval := j.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	coordinatorURL := normalizeAddr(j.CoordinatorURL)
	instance := j.Instance
	if instance == "" {
		instance = NewInstanceID()
	}
	jr := JoinRequest{Addr: normalizeAddr(j.AdvertiseAddr), ID: instance}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		// Every join advertises the highest epoch this worker has been
		// governed by — a stale coordinator learns it was deposed from the
		// join itself, before it dispatches anything.
		if j.Guard != nil {
			jr.Epoch = j.Guard.Current()
		}
		body, _ := json.Marshal(jr)
		if res, err := joinOnce(ctx, client, coordinatorURL, body); err == nil && j.Guard != nil {
			j.Guard.Observe(res.Epoch)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

func joinOnce(ctx context.Context, client *http.Client, coordinatorURL string, body []byte) (JoinResponse, error) {
	var out JoinResponse
	jctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(jctx, http.MethodPost, coordinatorURL+"/cluster/join", bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode >= 300 {
		return out, fmt.Errorf("cluster: join: http %d", resp.StatusCode)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return out, fmt.Errorf("cluster: join: decode: %w", err)
	}
	return out, nil
}
