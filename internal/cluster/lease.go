package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// The coordinator lease: a monotonic epoch persisted next to the journal.
// A coordinator serves under the epoch it acquired; a standby taking over
// acquires epoch+1 and workers fence out the old epoch (serve.EpochGuard).
//
// The lease file is NOT a distributed lock — two processes that both
// believe they own the fleet can both write it. It does not need to be:
// correctness comes from epoch fencing at the workers (the higher epoch
// wins every dispatch), the lease only makes epochs durable and monotonic
// across restarts of the same control-plane host.

// leaseFile is the lease's name inside the journal directory.
const leaseFile = "coordinator.lease"

// Lease is the persisted epoch record.
type Lease struct {
	Epoch          uint64 `json:"epoch"`
	Owner          string `json:"owner"`
	AcquiredUnixMS int64  `json:"acquired_unix_ms"`
}

// ReadLease loads the lease from dir. A missing file is a zero Lease, not
// an error (first boot). A corrupt file is an error — guessing an epoch
// risks re-using one.
func ReadLease(dir string) (Lease, error) {
	raw, err := os.ReadFile(filepath.Join(dir, leaseFile))
	if errors.Is(err, fs.ErrNotExist) {
		return Lease{}, nil
	}
	if err != nil {
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(raw, &l); err != nil {
		return Lease{}, fmt.Errorf("cluster: corrupt lease %s: %w", filepath.Join(dir, leaseFile), err)
	}
	return l, nil
}

// AcquireLease advances the persisted epoch by one and returns the new
// lease. The write is atomic (tmp + rename) and fsynced, so a crash
// between acquire and serve never loses the epoch bump.
func AcquireLease(dir, owner string) (Lease, error) {
	prev, err := ReadLease(dir)
	if err != nil {
		return Lease{}, err
	}
	l := Lease{
		Epoch:          prev.Epoch + 1,
		Owner:          owner,
		AcquiredUnixMS: time.Now().UnixMilli(),
	}
	raw, err := json.Marshal(&l)
	if err != nil {
		return Lease{}, err
	}
	tmp := filepath.Join(dir, leaseFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return Lease{}, err
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return Lease{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return Lease{}, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return Lease{}, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, leaseFile)); err != nil {
		os.Remove(tmp)
		return Lease{}, err
	}
	return l, nil
}
