package cluster

import (
	"container/list"
	"sync"

	"gcolor/internal/gpucolor"
	"gcolor/internal/serve"
)

// The coordinator's two result stores, both bounded LRUs:
//
//   - the merged-result cache, keyed by {graph fingerprint, policy key}.
//     Workers are told no-cache on shard sub-jobs, so for a scattered job
//     this is the ONLY cache holding the merged coloring — the
//     coordinator must not double-cache by letting workers store shard
//     fragments that can never be re-assembled.
//   - the idempotency map, keyed by the client's Idempotency-Key, so a
//     retried request is answered with the stored reply instead of
//     re-dispatching fleet work.
//
// Entries store the full ColorResponse including Colors; the HTTP layer
// strips Colors per-request when the client did not ask for them.

// policyKey mirrors serve.Request.policyKey over the wire request: same
// seed constant, same mix, same normalized-threshold rule, Fused excluded.
// The two keyspaces never meet (each cache is self-consistent), but
// keeping the derivation identical means a coordinator and a worker agree
// on which requests are the same work.
func policyKey(alg gpucolor.Algorithm, seed uint32, threshold int) uint64 {
	k := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		k ^= v
		k *= 0x100000001b3
	}
	mix(uint64(alg))
	mix(uint64(seed))
	mix(uint64(gpucolor.NormalizeHybridThreshold(threshold)))
	return k
}

type resultKey struct {
	fp     uint64
	policy uint64
}

type resultEntry struct {
	key resultKey
	res *serve.ColorResponse
}

// resultCache is the fingerprint-keyed merged-result LRU.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	byKey map[resultKey]*list.Element

	hits      int64
	misses    int64
	evictions int64
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, order: list.New(), byKey: make(map[resultKey]*list.Element)}
}

func (c *resultCache) get(key resultKey) (*serve.ColorResponse, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*resultEntry).res, true
}

func (c *resultCache) put(key resultKey, res *serve.ColorResponse) {
	if c.cap <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*resultEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&resultEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*resultEntry).key)
		c.evictions++
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *resultCache) stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

type idemEntry struct {
	key string
	res *serve.ColorResponse
}

// idemCache is the Idempotency-Key LRU.
type idemCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	byKey map[string]*list.Element

	hits int64
}

func newIdemCache(capacity int) *idemCache {
	return &idemCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *idemCache) get(key string) (*serve.ColorResponse, bool) {
	if c.cap <= 0 || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*idemEntry).res, true
}

func (c *idemCache) put(key string, res *serve.ColorResponse) {
	if c.cap <= 0 || key == "" || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*idemEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&idemEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*idemEntry).key)
	}
}

func (c *idemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
