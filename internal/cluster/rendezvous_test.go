package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testMembers(addrs []string) []*member {
	ms := make([]*member, len(addrs))
	for i, a := range addrs {
		ms[i] = &member{id: i, addr: a, addrHash: fnv1a64(a)}
	}
	return ms
}

func workerAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("http://10.0.0.%d:8421", i+1)
	}
	return addrs
}

// Rankings must be a pure function of (key, member set): identical across
// calls and independent of the order members registered in.
func TestRendezvousDeterministic(t *testing.T) {
	addrs := workerAddrs(7)
	ms := testMembers(addrs)

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		key := rng.Uint64()
		want := rankMembers(key, ms)

		shuffled := append([]*member(nil), ms...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := rankMembers(key, shuffled)

		if len(got) != len(want) {
			t.Fatalf("key %#x: rank length %d != %d", key, len(got), len(want))
		}
		for i := range want {
			if got[i].addr != want[i].addr {
				t.Fatalf("key %#x: rank[%d] = %s after shuffle, want %s", key, i, got[i].addr, want[i].addr)
			}
		}
	}
}

// The defining rendezvous property: adding one worker to an N-worker fleet
// re-owns roughly 1/(N+1) of the keyspace, and every key that moves, moves
// TO the new worker — ownership among the incumbents never reshuffles.
func TestRendezvousStability(t *testing.T) {
	const nWorkers, nKeys = 8, 4000
	before := testMembers(workerAddrs(nWorkers))
	after := testMembers(append(workerAddrs(nWorkers), "http://10.0.1.99:8421"))
	newAddr := after[len(after)-1].addr

	rng := rand.New(rand.NewSource(7))
	moved := 0
	for i := 0; i < nKeys; i++ {
		key := rng.Uint64()
		oldOwner := rankMembers(key, before)[0].addr
		newOwner := rankMembers(key, after)[0].addr
		if newOwner == oldOwner {
			continue
		}
		moved++
		if newOwner != newAddr {
			t.Fatalf("key %#x moved %s -> %s: only the added worker may take ownership", key, oldOwner, newOwner)
		}
	}

	// Expect ~nKeys/(N+1) = ~444 moves; allow generous sampling slack in
	// both directions but fail on anything resembling a full reshuffle.
	expect := nKeys / (nWorkers + 1)
	if moved < expect/2 || moved > expect*2 {
		t.Fatalf("adding 1 of %d workers moved %d/%d keys, want about %d (<= 1/N of the keyspace)",
			nWorkers+1, moved, nKeys, expect)
	}
	t.Logf("moved %d/%d keys (expected about %d)", moved, nKeys, expect)
}

// A key's owner must spread roughly evenly across the fleet (no hash
// clumping from the splitmix64 finalizer over FNV address hashes).
func TestRendezvousBalance(t *testing.T) {
	const nWorkers, nKeys = 5, 5000
	ms := testMembers(workerAddrs(nWorkers))
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < nKeys; i++ {
		counts[rankMembers(rng.Uint64(), ms)[0].addr]++
	}
	mean := nKeys / nWorkers
	for addr, n := range counts {
		if n < mean/2 || n > mean*2 {
			t.Fatalf("worker %s owns %d/%d keys, mean %d: load is clumped", addr, n, nKeys, mean)
		}
	}
}
