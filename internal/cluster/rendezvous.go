package cluster

import (
	"sort"
)

// Rendezvous (highest-random-weight) hashing: every (key, worker) pair
// gets a deterministic pseudo-random score, and a key is owned by the
// worker with the highest score. The property that makes it the routing
// function here is minimal disruption: adding a worker reassigns only the
// keys the new worker now wins (an expected 1/(N+1) of them), and
// removing one reassigns only its own keys — so worker churn barely
// disturbs which node's local result cache is warm for which graph.

// fnv1a64 hashes a string (worker address) with FNV-1a.
func fnv1a64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// turns the xor of two hashes into an independent-looking score.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rendezvousScore is the HRW score of one (key, worker-address) pair.
func rendezvousScore(key uint64, addrHash uint64) uint64 {
	return mix64(key ^ addrHash)
}

// rankMembers orders members by descending HRW score for key; the first
// element is the owner, the rest the failover order. Ties (astronomically
// unlikely) break by address so the order stays deterministic.
func rankMembers(key uint64, ms []*member) []*member {
	ranked := make([]*member, len(ms))
	copy(ranked, ms)
	sort.Slice(ranked, func(i, j int) bool {
		si := rendezvousScore(key, ranked[i].addrHash)
		sj := rendezvousScore(key, ranked[j].addrHash)
		if si != sj {
			return si > sj
		}
		return ranked[i].addr < ranked[j].addr
	})
	return ranked
}
