package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gcolor/internal/serve"
)

// Handler wraps a Coordinator with the gcolord coordinator HTTP API:
//
//	POST /color         submit a job (serve.ColorRequest -> ColorResponse);
//	                    the coordinator routes or scatter-gathers it
//	GET  /healthz       liveness + live worker count
//	GET  /metricsz      flat text metrics (cluster_* counters plus
//	                    per-worker health and breaker state)
//	GET  /clusterz      JSON membership snapshot (per-worker health,
//	                    breaker, job counts, liveness)
//	POST /cluster/join  worker registration: {"addr":"http://host:port"}
//	GET  /drainz        drain status
//	POST /drainz        request a graceful drain
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /color", func(w http.ResponseWriter, r *http.Request) {
		handleColor(c, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Stats()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","role":"coordinator","workers":%d,"alive_workers":%d,"epoch":%d,"fenced":%v,"queue_depth":%d}`+"\n",
			st.Workers, st.AliveWorkers, st.Epoch, st.Fenced, st.FleetQueueDepth)
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Stats()
		var sb strings.Builder
		fmt.Fprintf(&sb, "cluster_workers %d\n", st.Workers)
		fmt.Fprintf(&sb, "cluster_alive_workers %d\n", st.AliveWorkers)
		fmt.Fprintf(&sb, "cluster_jobs_total %d\n", st.Jobs)
		fmt.Fprintf(&sb, "cluster_delta_jobs_total %d\n", st.DeltaJobs)
		fmt.Fprintf(&sb, "cluster_delta_owner_hits_total %d\n", st.DeltaOwnerHits)
		fmt.Fprintf(&sb, "cluster_delta_owner_misses_total %d\n", st.DeltaOwnerMisses)
		fmt.Fprintf(&sb, "cluster_version_owners %d\n", st.VersionOwners)
		fmt.Fprintf(&sb, "cluster_routed_total %d\n", st.Routed)
		fmt.Fprintf(&sb, "cluster_scattered_total %d\n", st.Scattered)
		fmt.Fprintf(&sb, "cluster_failed_total %d\n", st.Failed)
		fmt.Fprintf(&sb, "cluster_route_failovers_total %d\n", st.RouteFailovers)
		fmt.Fprintf(&sb, "cluster_redispatches_total %d\n", st.Redispatches)
		fmt.Fprintf(&sb, "cluster_joins_total %d\n", st.Joins)
		fmt.Fprintf(&sb, "cluster_quarantines_total %d\n", st.Quarantines)
		fmt.Fprintf(&sb, "cluster_readmitted_total %d\n", st.Readmitted)
		fmt.Fprintf(&sb, "cluster_probes_total %d\n", st.Probes)
		fmt.Fprintf(&sb, "cluster_cache_hits_total %d\n", st.CacheHits)
		fmt.Fprintf(&sb, "cluster_cache_misses_total %d\n", st.CacheMisses)
		fmt.Fprintf(&sb, "cluster_cache_evictions_total %d\n", st.CacheEvictions)
		fmt.Fprintf(&sb, "cluster_cache_entries %d\n", st.CacheEntries)
		fmt.Fprintf(&sb, "cluster_idem_entries %d\n", st.IdemEntries)
		fmt.Fprintf(&sb, "cluster_inflight %d\n", st.Inflight)
		fmt.Fprintf(&sb, "cluster_draining %d\n", boolToInt(st.Draining))
		fmt.Fprintf(&sb, "cluster_recovery_done %d\n", boolToInt(st.RecoveryDone))
		fmt.Fprintf(&sb, "cluster_recovery_pending %d\n", st.RecoveryPending)
		fmt.Fprintf(&sb, "cluster_recovery_replayed %d\n", st.RecoveryReplayed)
		fmt.Fprintf(&sb, "cluster_recovery_failed %d\n", st.RecoveryFailed)
		fmt.Fprintf(&sb, "cluster_recovery_warmed_cache %d\n", st.WarmedCache)
		fmt.Fprintf(&sb, "cluster_recovery_warmed_idem %d\n", st.WarmedIdem)
		fmt.Fprintf(&sb, "cluster_epoch %d\n", st.Epoch)
		fmt.Fprintf(&sb, "cluster_fenced %d\n", boolToInt(st.Fenced))
		fmt.Fprintf(&sb, "cluster_stale_epoch_rejects_total %d\n", st.StaleRejects)
		fmt.Fprintf(&sb, "cluster_takeover_ms %d\n", st.TakeoverMS)
		fmt.Fprintf(&sb, "cluster_shed_total %d\n", st.Shed)
		fmt.Fprintf(&sb, "cluster_gray_demotions_total %d\n", st.GrayDemotions)
		fmt.Fprintf(&sb, "cluster_heartbeat_demotions_total %d\n", st.HeartbeatDemotions)
		fmt.Fprintf(&sb, "cluster_heartbeat_readmissions_total %d\n", st.HeartbeatReadmissions)
		fmt.Fprintf(&sb, "cluster_rebinds_total %d\n", st.Rebinds)
		fmt.Fprintf(&sb, "cluster_fleet_queue_depth %d\n", st.FleetQueueDepth)
		fmt.Fprintf(&sb, "cluster_fleet_devices %d\n", st.FleetDevices)
		for _, m := range st.Members {
			fmt.Fprintf(&sb, "cluster_worker_health_%d %.4f\n", m.ID, m.Health)
			fmt.Fprintf(&sb, "cluster_worker_alive_%d %d\n", m.ID, boolToInt(m.Alive))
			fmt.Fprintf(&sb, "cluster_worker_breaker_%d %d\n", m.ID, breakerCode(m.Breaker))
			fmt.Fprintf(&sb, "cluster_worker_jobs_%d %d\n", m.ID, m.Jobs)
			fmt.Fprintf(&sb, "cluster_worker_failures_%d %d\n", m.ID, m.Failures)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, sb.String())
	})
	mux.HandleFunc("GET /clusterz", func(w http.ResponseWriter, r *http.Request) {
		st := c.Stats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("POST /cluster/join", func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
		if err != nil {
			writeClusterErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("read: %v", err), "")
			return
		}
		jr, err := ParseJoinRequest(raw)
		if err != nil {
			writeClusterErr(w, http.StatusBadRequest, "bad_request", err.Error(), "")
			return
		}
		res, err := c.Join(jr)
		if err != nil {
			var stale *StaleEpochError
			if errors.As(err, &stale) {
				writeClusterErr(w, http.StatusConflict, "stale_epoch", err.Error(), "")
				return
			}
			writeClusterErr(w, http.StatusBadRequest, "bad_request", err.Error(), "")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(res)
	})
	drainStatus := func(w http.ResponseWriter) {
		st := c.Stats()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"draining": st.Draining,
			"inflight": st.Inflight,
			"workers":  st.Workers,
		})
	}
	mux.HandleFunc("GET /drainz", func(w http.ResponseWriter, r *http.Request) {
		drainStatus(w)
	})
	mux.HandleFunc("POST /drainz", func(w http.ResponseWriter, r *http.Request) {
		c.RequestDrain()
		w.WriteHeader(http.StatusAccepted)
		drainStatus(w)
	})
	return mux
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func breakerCode(s string) int {
	switch s {
	case "open":
		return 1
	case "half-open":
		return 2
	default:
		return 0
	}
}

// handleColor is the coordinator's /color: same wire contract as a
// worker's /color (a coordinator is a drop-in endpoint for gcload), with
// the colors filtered per-request — the coordinator holds full colorings
// internally for caching and merge verification.
func handleColor(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	rid := serve.RequestIDFor(r)
	w.Header().Set("X-Request-ID", rid)
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.DefaultMaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeClusterErr(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), rid)
			return
		}
		writeClusterErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("read: %v", err), rid)
		return
	}
	var cr serve.ColorRequest
	if err := json.Unmarshal(raw, &cr); err != nil {
		writeClusterErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decode: %v", err), rid)
		return
	}
	idemKey := serve.SanitizeRequestID(r.Header.Get("Idempotency-Key"))
	ctx := r.Context()
	if cr.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(cr.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := c.Submit(ctx, &cr, rid, idemKey, raw)
	if err != nil {
		status, kind := classifyClusterErr(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			// End-to-end backpressure: prefer the failing worker's own hint,
			// else compute one from the fleet's reported queue depths, so the
			// client's backoff reflects actual fleet load either way.
			secs := 0
			var we *WorkerError
			if errors.As(err, &we) {
				secs = we.RetryAfter
			}
			if secs <= 0 {
				secs = c.RetryAfterHint(kind)
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeClusterErr(w, status, kind, err.Error(), rid)
		return
	}
	out := *res
	out.RequestID = rid
	if !cr.IncludeColors {
		out.Colors = nil
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&out)
}

// classifyClusterErr maps coordinator failures to HTTP status + kind. A
// worker's own typed rejection passes through with the worker's status so
// clients see the same contract whether they hit a worker or the fleet.
func classifyClusterErr(err error) (int, string) {
	var bad *BadRequestError
	var we *WorkerError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, serve.ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrFleetBusy):
		return http.StatusTooManyRequests, "fleet_busy"
	case errors.Is(err, ErrNoWorkers):
		return http.StatusServiceUnavailable, "no_workers"
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "deadline"
	case errors.As(err, &we) && we.Status > 0:
		return we.Status, we.Kind
	case errors.As(err, &we):
		return http.StatusBadGateway, "worker_unreachable"
	default:
		return http.StatusBadGateway, "fleet_failed"
	}
}

func writeClusterErr(w http.ResponseWriter, status int, kind, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "kind": kind, "request_id": rid})
}
