package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcolor/internal/cluster"
	"gcolor/internal/journal"
	"gcolor/internal/netchaos"
	"gcolor/internal/serve"
)

// A standby tailing the primary's journal must take over with zero loss
// of accepted jobs: the accept the primary journaled but never finished
// is re-dispatched by the takeover coordinator, and idempotent replay on
// the new primary answers from the recovered state.
func TestStandbyTakeoverZeroLoss(t *testing.T) {
	w1 := newTestWorker(t, serve.Config{})
	w2 := newTestWorker(t, serve.Config{})
	dir := t.TempDir()

	jnl, rec, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 0 {
		t.Fatalf("fresh journal has %d pending", len(rec.Pending))
	}
	lease, err := cluster.AcquireLease(dir, "primary")
	if err != nil {
		t.Fatal(err)
	}
	primary, primaryTS := newTestCoordinator(t, cluster.Config{Journal: jnl, Epoch: lease.Epoch}, w1, w2)

	// One finished job (journaled accept + complete, idempotency-keyed)...
	cr := &serve.ColorRequest{Gen: "grid:12:12", Alg: "baseline", IncludeColors: true}
	res1, code, _ := postColor(t, primaryTS.URL, cr, "job-done", "idem-done")
	if code != http.StatusOK {
		t.Fatalf("primary submit: http %d", code)
	}
	// ...and one accepted-but-unfinished job: the accept record lands in
	// the journal with no completion, exactly what a crash mid-dispatch
	// leaves behind.
	wire, _ := json.Marshal(&serve.ColorRequest{Gen: "grid:9:9", Alg: "baseline"})
	if err := jnl.AppendAccept(journal.AcceptRecord{
		ID: "job-lost", IdemKey: "idem-lost",
		AcceptedUnixMS: time.Now().UnixMilli(),
		Wire:           json.RawMessage(wire),
	}); err != nil {
		t.Fatal(err)
	}

	// The primary dies: server gone, journal closed (flushes everything —
	// FsyncAlways means it already was durable).
	primaryTS.Close()
	primary.Close()
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	sb := cluster.NewStandby(cluster.StandbyConfig{
		JournalDir:        dir,
		PrimaryURL:        primaryTS.URL,
		HeartbeatInterval: 20 * time.Millisecond,
		MissThreshold:     2,
		Owner:             "standby-test",
		Journal:           journal.Options{Fsync: journal.FsyncAlways},
		Cluster: cluster.Config{
			Peers:             []string{w1.ts.URL, w2.ts.URL},
			HeartbeatInterval: -1,
			ExpireAfter:       time.Hour,
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tk, err := sb.Run(ctx)
	if err != nil {
		t.Fatalf("standby run: %v", err)
	}
	defer tk.Journal.Close()
	defer tk.Coordinator.Close()

	if tk.Epoch < 2 {
		t.Fatalf("takeover epoch = %d, want > primary's 1", tk.Epoch)
	}
	if tk.Pending != 1 {
		t.Fatalf("takeover pending = %d, want the 1 lost job", tk.Pending)
	}

	// The lost job replays to completion with no failures.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := tk.Coordinator.Stats()
		if st.RecoveryDone && st.RecoveryReplayed == 1 {
			if st.RecoveryFailed != 0 {
				t.Fatalf("recovery failed %d jobs", st.RecoveryFailed)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Idempotent replay on the new primary returns the answer computed
	// before the failover — identical coloring, no recompute.
	ts2 := httptest.NewServer(cluster.Handler(tk.Coordinator))
	defer ts2.Close()
	res2, code, _ := postColor(t, ts2.URL, cr, "job-done-again", "idem-done")
	if code != http.StatusOK {
		t.Fatalf("replay submit: http %d", code)
	}
	if !res2.IdempotentReplay {
		t.Fatalf("idempotent retry on the takeover recomputed instead of replaying")
	}
	if res2.NumColors != res1.NumColors || len(res2.Colors) != len(res1.Colors) {
		t.Fatalf("replayed answer differs: %d/%d colors vs %d/%d",
			res2.NumColors, len(res2.Colors), res1.NumColors, len(res1.Colors))
	}
	for i := range res2.Colors {
		if res2.Colors[i] != res1.Colors[i] {
			t.Fatalf("color[%d] = %d after failover, was %d", i, res2.Colors[i], res1.Colors[i])
		}
	}
	if st := tk.Coordinator.Stats(); st.TakeoverMS <= 0 {
		t.Fatalf("takeover latency not recorded: %+v", st.TakeoverMS)
	}
}

// Workers fence a deposed coordinator: once a dispatch from the new epoch
// ratchets the worker's guard, the old coordinator's calls come back 409
// stale_epoch, and the old coordinator drains itself on that evidence.
func TestEpochFencingDeposesOldCoordinator(t *testing.T) {
	guard := &serve.EpochGuard{}
	srv := serve.NewServer(serve.Config{Devices: 1})
	defer srv.Stop()
	ts := httptest.NewServer(serve.HandlerWith(srv, serve.HandlerConfig{Epoch: guard}))
	defer ts.Close()

	mk := func(epoch uint64) (*cluster.Coordinator, *httptest.Server) {
		c := cluster.NewCoordinator(cluster.Config{
			Peers:             []string{ts.URL},
			Epoch:             epoch,
			HeartbeatInterval: -1,
			ExpireAfter:       time.Hour,
		})
		h := httptest.NewServer(cluster.Handler(c))
		t.Cleanup(func() { h.Close(); c.Close() })
		return c, h
	}
	oldC, oldTS := mk(1)
	_, newTS := mk(2)

	cr := &serve.ColorRequest{Gen: "grid:8:8", Alg: "baseline", NoCache: true}
	if _, code, _ := postColor(t, oldTS.URL, cr, "pre", ""); code != http.StatusOK {
		t.Fatalf("old coordinator pre-takeover: http %d", code)
	}
	// The new primary dispatches, ratcheting the worker to epoch 2.
	if _, code, _ := postColor(t, newTS.URL, cr, "new", ""); code != http.StatusOK {
		t.Fatalf("new coordinator: http %d", code)
	}
	if got := guard.Current(); got != 2 {
		t.Fatalf("worker epoch = %d, want 2", got)
	}
	// The old primary is now fenced at the worker, and learns it.
	_, code, kind := postColor(t, oldTS.URL, cr, "stale", "")
	if code != http.StatusConflict || kind != "stale_epoch" {
		t.Fatalf("stale dispatch: http %d kind %q, want 409 stale_epoch", code, kind)
	}
	if !oldC.Fenced() {
		t.Fatalf("old coordinator did not fence itself")
	}
	if _, code, kind = postColor(t, oldTS.URL, cr, "post-fence", ""); code != http.StatusServiceUnavailable || kind != "draining" {
		t.Fatalf("fenced coordinator still accepting: http %d kind %q", code, kind)
	}
	// And a stale join is refused with the typed conflict.
	if _, err := oldC.Join(cluster.JoinRequest{Addr: ts.URL, Epoch: 5}); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("higher-epoch join accepted by stale coordinator: %v", err)
	}
}

// A worker that still answers 2xx but 10x slower than its peer must lose
// its rendezvous rank (gray demotion) while its breaker stays closed:
// slowness is load imbalance, not failure.
func TestGrayWorkerLosesRendezvousRank(t *testing.T) {
	fast1 := newTestWorker(t, serve.Config{})
	fast2 := newTestWorker(t, serve.Config{})
	slow := newTestWorker(t, serve.Config{})

	// The gray signal is latency versus the FLEET median, so the fleet
	// needs a fast majority for the slow member to stand out — exactly the
	// production shape (one sick node among healthy peers).
	in := netchaos.New(1)
	in.SlowHost(strings.TrimPrefix(slow.ts.URL, "http://"), 150*time.Millisecond)
	client := &http.Client{Transport: in.Transport(http.DefaultTransport)}

	coord, tsC := newTestCoordinator(t, cluster.Config{Client: client}, fast1, fast2, slow)

	for i := 0; i < 60; i++ {
		cr := &serve.ColorRequest{Gen: fmt.Sprintf("grid:%d:%d", 8+i%8, 9+i%5), Alg: "baseline", NoCache: true}
		if _, code, kind := postColor(t, tsC.URL, cr, fmt.Sprintf("gray-%d", i), ""); code != http.StatusOK {
			t.Fatalf("job %d: http %d %s", i, code, kind)
		}
	}
	st := coord.Stats()
	if st.GrayDemotions == 0 {
		t.Fatalf("no gray demotions after 60 jobs against a slowed worker: %+v", st)
	}
	if st.Quarantines != 0 {
		t.Fatalf("breaker tripped on a slow-but-healthy worker (%d quarantines)", st.Quarantines)
	}
	var sawGray bool
	for _, m := range st.Members {
		if m.Addr == slow.ts.URL && m.Gray {
			sawGray = true
		}
		if (m.Addr == fast1.ts.URL || m.Addr == fast2.ts.URL) && m.Gray {
			t.Fatalf("fast worker marked gray: %+v", m)
		}
	}
	if !sawGray {
		t.Fatalf("slow worker not marked gray: %+v", st.Members)
	}
}

// Overload replies carry a Retry-After the client can act on: a worker's
// own hint passes through verbatim; a coordinator-local rejection
// (draining) computes one from fleet load.
func TestRetryAfterPropagation(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/color" {
			w.Header().Set("Retry-After", "7")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full","kind":"queue_full"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer busy.Close()

	coord := cluster.NewCoordinator(cluster.Config{
		Peers:             []string{busy.URL},
		HeartbeatInterval: -1,
		ExpireAfter:       time.Hour,
		RouteAttempts:     1,
	})
	defer coord.Close()
	tsC := httptest.NewServer(cluster.Handler(coord))
	defer tsC.Close()

	body, _ := json.Marshal(&serve.ColorRequest{Gen: "grid:8:8", Alg: "baseline", NoCache: true})
	resp, err := http.Post(tsC.URL+"/color", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("http %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want the worker's own hint 7", got)
	}

	// Draining: coordinator-local rejection computes its own hint.
	coord.RequestDrain()
	resp, err = http.Post(tsC.URL+"/color", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: http %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatalf("draining reply missing Retry-After")
	}
}
