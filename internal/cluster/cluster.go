// Package cluster turns gcolord into a multi-node fleet: a coordinator
// role that owns no devices but knows every worker, and worker roles that
// are plain gcolord daemons (internal/serve) registered with the
// coordinator.
//
// The paper's load-imbalance lesson, lifted two levels now: hub vertices
// serialize wavefronts inside a device (PR 0), whole graphs on one device
// serialize the pool (PR 5), and whole jobs on one node serialize the
// fleet. The coordinator spreads that load the same way the shard layer
// spreads a graph:
//
//   - membership: workers join over HTTP (POST /cluster/join) or are
//     pinned with -peers; a heartbeat loop probes /healthz, and every
//     routed job's outcome feeds the worker's EWMA health score and
//     circuit breaker — the PR 4 self-healing machinery re-exported by
//     internal/serve, because a worker is just a bigger device.
//   - routing: small graphs are forwarded whole to the worker that wins
//     rendezvous hashing on the graph fingerprint, so repeat traffic for
//     one graph lands on the node whose local cache already holds it,
//     and adding a worker moves only the keys it now wins (~1/N).
//   - scatter-gather: large graphs are split with internal/shard's
//     edge-balanced partitioner, one sub-job per shard POSTed to a
//     distinct worker (no-cache, so only the coordinator caches the
//     merged result), and the merge barrier plus bounded boundary-repair
//     loop run at the coordinator — the distributed shape of Bogle &
//     Slota (arXiv:2107.00075) with Rokos-style repair convergence
//     (arXiv:1505.04086).
//   - failover: a worker failing mid-job (transport error or 5xx) gets
//     its whole-graph route or shard re-dispatched to a different healthy
//     worker, excluded-by-id, with bounded attempts and typed errors.
//   - durability: with a journal attached the coordinator writes accept
//     records before dispatch and completion records after, exactly as
//     the PR 6 serving layer does, so a coordinator crash loses no
//     accepted fleet work.
//
// Coordinator is the in-process API; Handler wraps it for gcolord
// -role coordinator, and JoinLoop is the worker-side membership pump.
package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"gcolor/internal/journal"
	"gcolor/internal/serve"
)

// ErrNoWorkers reports a coordinator with no live worker to route to:
// none ever joined, or every member is expired or quarantined with
// nothing to fail open onto.
var ErrNoWorkers = errors.New("cluster: no live workers")

// ErrFleetBusy reports a submission refused by the coordinator's
// admission cap (Config.MaxInflight); the HTTP layer maps it to 429 with
// a Retry-After computed from worker-reported queue depths.
var ErrFleetBusy = errors.New("cluster: fleet at max inflight")

// WorkerError is the typed failure of one worker call: transport errors
// carry Status 0, HTTP failures the worker's status code and error kind.
type WorkerError struct {
	// Worker is the member's base URL.
	Worker string
	// Status is the HTTP status the worker returned (0 = the call never
	// produced a response: dial/write/read failure, worker died mid-job).
	Status int
	// Kind is the worker's typed error kind ("queue_full", "failed", ...)
	// or "transport".
	Kind string
	// RetryAfter is the worker's Retry-After hint in seconds (0 = none);
	// the coordinator propagates it upstream on 429/503 replies.
	RetryAfter int
	// Err is the underlying error.
	Err error
}

// Error implements error.
func (e *WorkerError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("cluster: worker %s: %v", e.Worker, e.Err)
	}
	return fmt.Sprintf("cluster: worker %s: http %d (%s): %v", e.Worker, e.Status, e.Kind, e.Err)
}

// Unwrap exposes the underlying error.
func (e *WorkerError) Unwrap() error { return e.Err }

// Retryable reports whether another worker might succeed where this one
// failed: transport failures, worker-side 5xx, and overload rejections
// (429) are retryable; request errors (4xx) are not — every replica would
// refuse the same body.
func (e *WorkerError) Retryable() bool {
	return e.Status == 0 || e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// ShardError is the typed failure of one shard of a scatter-gather after
// its dispatch attempts (initial + re-dispatches) were exhausted.
type ShardError struct {
	Shard    int // shard index
	Shards   int // total shards in the job
	Attempts int // dispatch attempts made
	Err      error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d/%d failed after %d attempts: %v", e.Shard, e.Shards, e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's error.
func (e *ShardError) Unwrap() error { return e.Err }

// Config sizes a Coordinator. Zero values take the documented defaults.
type Config struct {
	// Peers are static worker base URLs registered at startup; more
	// workers may join dynamically via POST /cluster/join.
	Peers []string

	// HeartbeatInterval paces the membership probe loop (default 500ms;
	// negative disables probing, leaving liveness to push joins).
	HeartbeatInterval time.Duration
	// ExpireAfter marks a member down when neither a probe nor a join
	// has seen it for this long (default 6x HeartbeatInterval).
	ExpireAfter time.Duration
	// HeartbeatMisses is the consecutive probe failures that demote a
	// member (default 3); ReadmitStreak the consecutive successes that
	// re-admit it (default 2). Hysteresis so a flapping link does not
	// oscillate membership.
	HeartbeatMisses int
	ReadmitStreak   int

	// Epoch is the coordinator's fencing epoch, sent as X-GC-Epoch on
	// every worker call and returned in join replies. Workers reject calls
	// from epochs below their high-water mark, so a deposed primary cannot
	// keep dispatching after a standby takeover. 0 means "no epoch"
	// (single-coordinator deployments; nothing is fenced).
	Epoch uint64

	// GrayScore is the health score below which a member loses its
	// rendezvous preference while its breaker is still closed — the
	// gray-failure demotion (default 0.5; negative disables).
	GrayScore float64

	// MaxInflight caps concurrently admitted jobs at the coordinator;
	// excess submissions are refused with ErrFleetBusy and a Retry-After
	// computed from worker-reported queue depths, so overload sheds at the
	// fleet's edge instead of timing out mid-scatter (default 1024;
	// negative disables).
	MaxInflight int

	// CacheEntries sizes the coordinator's fingerprint-keyed merged-result
	// LRU (default 512; negative disables). Shard sub-jobs are sent
	// no-cache, so this is the only place a scattered result is stored.
	CacheEntries int
	// IdemEntries sizes the Idempotency-Key LRU (default 4096; negative
	// disables idempotent replay at the coordinator).
	IdemEntries int

	// ScatterVertices and ScatterEdges are the graph-size thresholds at
	// or above which a job is scatter-gathered instead of routed whole
	// (defaults 8192 vertices / 262144 edges, the serve.ShardConfig auto
	// thresholds; negative disables that trigger).
	ScatterVertices int
	ScatterEdges    int
	// ShardK is the shard count for scattered jobs (0 = the live worker
	// count, capped at MaxShards).
	ShardK int
	// MaxShards caps the per-job shard count (default 16).
	MaxShards int
	// NoScatter disables scatter-gather entirely; every job is routed
	// whole.
	NoScatter bool
	// MaxRepairRounds bounds the coordinator's boundary repair loop
	// (default shard.DefaultRepairRounds).
	MaxRepairRounds int

	// RouteAttempts bounds the workers tried for one whole-graph job
	// (default 3: initial + 2 failovers).
	RouteAttempts int
	// ShardAttempts bounds the workers tried for one shard sub-job
	// (default 2: initial + exactly one re-dispatch to a different
	// worker).
	ShardAttempts int
	// WorkerTimeout bounds one worker call (default 60s). A request's own
	// deadline still applies when shorter.
	WorkerTimeout time.Duration

	// HealthAlpha and LatencySlack tune the per-worker EWMA health score
	// (serve.FleetHealth defaults: 0.2 and 4).
	HealthAlpha  float64
	LatencySlack float64
	// Breaker tunes the per-worker circuit breakers (serve.BreakerConfig
	// defaults).
	Breaker serve.BreakerConfig
	// ProbationScore is the health score a re-admitted worker restarts at
	// (default 0.6).
	ProbationScore float64

	// Journal, when set, makes the coordinator crash-safe: accepts are
	// journaled before dispatch and completions after, exactly as the
	// serving layer journals (PR 6). The caller owns journal.Close.
	Journal *journal.Journal
	// Recovery, when set, warm-starts the merged-result cache and
	// idempotency map from replayed completions and re-dispatches pending
	// accepts in the background.
	Recovery *journal.Recovery
	// ReplayParallelism bounds concurrent recovery re-dispatches
	// (default 4).
	ReplayParallelism int

	// Client is the HTTP client for worker calls. Defaults to a pooled
	// keep-alive client (NewWorkerClient) sized for the fleet.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.ExpireAfter <= 0 {
		iv := c.HeartbeatInterval
		if iv < 0 {
			iv = 500 * time.Millisecond
		}
		c.ExpireAfter = 6 * iv
	}
	switch {
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	case c.CacheEntries == 0:
		c.CacheEntries = 512
	}
	switch {
	case c.IdemEntries < 0:
		c.IdemEntries = 0
	case c.IdemEntries == 0:
		c.IdemEntries = 4096
	}
	if c.ScatterVertices == 0 {
		c.ScatterVertices = 8192
	}
	if c.ScatterEdges == 0 {
		c.ScatterEdges = 1 << 18
	}
	if c.MaxShards < 1 {
		c.MaxShards = 16
	}
	if c.ShardK > c.MaxShards {
		c.ShardK = c.MaxShards
	}
	if c.RouteAttempts < 1 {
		c.RouteAttempts = 3
	}
	if c.ShardAttempts < 1 {
		c.ShardAttempts = 2
	}
	if c.WorkerTimeout <= 0 {
		c.WorkerTimeout = 60 * time.Second
	}
	if c.ProbationScore <= 0 || c.ProbationScore > 1 {
		c.ProbationScore = 0.6
	}
	if c.HeartbeatMisses < 1 {
		c.HeartbeatMisses = 3
	}
	if c.ReadmitStreak < 1 {
		c.ReadmitStreak = 2
	}
	switch {
	case c.GrayScore < 0:
		c.GrayScore = 0
	case c.GrayScore == 0:
		c.GrayScore = 0.5
	}
	switch {
	case c.MaxInflight < 0:
		c.MaxInflight = 0
	case c.MaxInflight == 0:
		c.MaxInflight = 1024
	}
	if c.ReplayParallelism < 1 {
		c.ReplayParallelism = 4
	}
	if c.Client == nil {
		c.Client = NewWorkerClient(c.WorkerTimeout, 0)
	}
	return c
}
