// Package metrics provides the load-imbalance statistics used throughout the
// evaluation: distribution summaries (CV, max/mean, Gini) and power-of-two
// histograms over per-lane / per-wavefront / per-CU work tallies.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Summary describes the distribution of a non-negative work measure.
type Summary struct {
	N           int
	Min, Max    float64
	Sum, Mean   float64
	StdDev      float64
	CV          float64 // StdDev / Mean; 0 when Mean == 0
	MaxOverMean float64 // the paper's headline imbalance measure; 0 when Mean == 0
	Gini        float64 // 0 = perfectly balanced, ->1 = one worker does everything
}

// Summarize computes a Summary over xs. An empty slice yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sumsq float64
	for _, x := range xs {
		s.Sum += x
		sumsq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	variance := sumsq/float64(s.N) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.StdDev = math.Sqrt(variance)
	if s.Mean > 0 {
		s.CV = s.StdDev / s.Mean
		s.MaxOverMean = s.Max / s.Mean
	}
	s.Gini = gini(xs)
	return s
}

// SummarizeInt64 is Summarize for integer work tallies.
func SummarizeInt64(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// gini computes the Gini coefficient of a non-negative sample (sorted copy).
func gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += x
		weighted += float64(i+1) * x
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}

// String renders the summary compactly for reports.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f max=%.0f cv=%.2f max/mean=%.1f gini=%.2f",
		s.N, s.Mean, s.Max, s.CV, s.MaxOverMean, s.Gini)
}

// Histogram buckets non-negative values by power of two: bucket 0 holds
// value 0, bucket k holds values in [2^(k-1), 2^k). The zero value is an
// empty histogram; all methods are safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts []int64
	total  int64
}

// Add records one observation.
func (h *Histogram) Add(v int64) {
	b := bucketOf(v)
	h.mu.Lock()
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.total++
	h.mu.Unlock()
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return 64 - bitsLeadingZeros64(uint64(v))
}

func bitsLeadingZeros64(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return 64 - n
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Buckets returns (label, count) pairs for all non-empty trailing buckets.
func (h *Histogram) Buckets() []HistBucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistBucket, 0, len(h.counts))
	for i, c := range h.counts {
		lo, hi := bucketBounds(i)
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// recorded values: the inclusive upper edge of the bucket containing that
// rank, or 0 for an empty histogram. Power-of-two buckets make this a
// factor-of-two estimate — good enough for latency reporting.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := int64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			_, hi := bucketBounds(i)
			return hi
		}
	}
	_, hi := bucketBounds(len(h.counts) - 1)
	return hi
}

// HistBucket is one histogram bucket covering [Lo, Hi].
type HistBucket struct {
	Lo, Hi int64
	Count  int64
}

func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	return 1 << (b - 1), 1<<b - 1
}

// String renders an ASCII histogram, one line per bucket, bar scaled to the
// largest bucket.
func (h *Histogram) String() string {
	buckets := h.Buckets()
	var sb strings.Builder
	var maxC int64 = 1
	for _, b := range buckets {
		if b.Count > maxC {
			maxC = b.Count
		}
	}
	for _, b := range buckets {
		if b.Count == 0 {
			continue
		}
		bar := strings.Repeat("#", int(40*b.Count/maxC))
		fmt.Fprintf(&sb, "[%8d,%8d] %10d %s\n", b.Lo, b.Hi, b.Count, bar)
	}
	return sb.String()
}

// Speedup returns base/opt as a multiplicative speedup (how many times
// faster opt is than base); it returns +Inf if opt is 0 and 0 if base is 0.
func Speedup(base, opt float64) float64 {
	if opt == 0 {
		return math.Inf(1)
	}
	return base / opt
}

// PercentImprovement returns the percentage by which opt improves on base
// (positive = faster), the form the paper's "~25%" headline uses.
func PercentImprovement(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - opt) / base
}
