package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Counter.Value = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Gauge.Value = %d, want 7", got)
	}
}

func TestRegistryLookupIsStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("Counter(x) returned different instances")
	}
	if r.Gauge("y") != r.Gauge("y") {
		t.Fatal("Gauge(y) returned different instances")
	}
	if r.Histogram("z") != r.Histogram("z") {
		t.Fatal("Histogram(z) returned different instances")
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(12)
	r.Gauge("queue_depth").Set(3)
	h := r.Histogram("wait_us")
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	out := r.String()
	for _, want := range []string{
		"requests_total 12\n",
		"queue_depth 3\n",
		"wait_us.count 100\n",
		"wait_us.p50 ",
		"wait_us.p99 ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Add(10) // bucket [8,15]
	}
	h.Add(1000) // bucket [512,1023]
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %d, want 15", got)
	}
	if got := h.Quantile(1.0); got != 1023 {
		t.Errorf("Quantile(1.0) = %d, want 1023", got)
	}
}

// TestMetricsConcurrent hammers every mutable metrics type from parallel
// goroutines; run under -race (CI does) it proves the package is safe for
// gcolord's many-worker use.
func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				r.Counter("reqs").Inc()
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("lat").Add(int64(id*perG + j))
				if j%500 == 0 {
					_ = r.Histogram("lat").Quantile(0.9)
					_ = r.Histogram("lat").String()
					_ = r.Snapshot()
					_ = r.String()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("reqs").Value(); got != goroutines*perG {
		t.Fatalf("reqs = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("depth = %d, want 0", got)
	}
	if got := r.Histogram("lat").Total(); got != goroutines*perG {
		t.Fatalf("lat.count = %d, want %d", got, goroutines*perG)
	}
}
