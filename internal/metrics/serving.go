// Serving-side metrics: cheap atomic counters and gauges plus a named
// registry that gcolord renders at /metricsz. The distribution tools in
// metrics.go describe one run after the fact; these types are written on
// every request from many goroutines at once, so everything here is safe
// for concurrent use and wait-free on the hot path.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use; all methods may be called concurrently.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (delta must be >= 0; counters only go up).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, devices busy). The zero
// value is ready to use; all methods may be called concurrently.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of counters, gauges, and histograms with a
// stable text rendering. Lookup methods create on first use, so callers
// never need registration boilerplate; all methods are safe for concurrent
// use.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every scalar metric (counters and gauges) by name, one
// consistent-enough view for JSON export: each value is read atomically,
// though not all at the same instant.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts)+len(r.gauges))
	for name, c := range r.counts {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// WriteText renders the registry in a flat, sorted, line-oriented format
// (name value, histograms as name.p50/p90/p99/count) suitable for /metricsz
// and for grepping in tests.
func (r *Registry) WriteText(sb *strings.Builder) {
	scalars := r.Snapshot()
	names := make([]string, 0, len(scalars))
	for name := range scalars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(sb, "%s %d\n", name, scalars[name])
	}

	r.mu.Lock()
	hnames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hnames = append(hnames, name)
	}
	hists := make([]*Histogram, len(hnames))
	sort.Strings(hnames)
	for i, name := range hnames {
		hists[i] = r.hists[name]
	}
	r.mu.Unlock()
	for i, name := range hnames {
		h := hists[i]
		fmt.Fprintf(sb, "%s.count %d\n", name, h.Total())
		fmt.Fprintf(sb, "%s.p50 %d\n", name, h.Quantile(0.50))
		fmt.Fprintf(sb, "%s.p90 %d\n", name, h.Quantile(0.90))
		fmt.Fprintf(sb, "%s.p99 %d\n", name, h.Quantile(0.99))
	}
}

// String renders the registry via WriteText.
func (r *Registry) String() string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}
