package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.CV != 0 {
		t.Errorf("Summarize(nil) = %+v, want zero", s)
	}
}

func TestSummarizeUniform(t *testing.T) {
	s := Summarize([]float64{5, 5, 5, 5})
	if s.Mean != 5 || s.StdDev != 0 || s.CV != 0 || s.Gini != 0 {
		t.Errorf("uniform summary = %+v, want zero spread", s)
	}
	if s.MaxOverMean != 1 {
		t.Errorf("MaxOverMean = %v, want 1", s.MaxOverMean)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Errorf("summary = %+v", s)
	}
	if !approx(s.StdDev, math.Sqrt(1.25), 1e-12) {
		t.Errorf("StdDev = %v, want sqrt(1.25)", s.StdDev)
	}
	if !approx(s.MaxOverMean, 1.6, 1e-12) {
		t.Errorf("MaxOverMean = %v, want 1.6", s.MaxOverMean)
	}
	// Gini of {1,2,3,4} = 0.25.
	if !approx(s.Gini, 0.25, 1e-12) {
		t.Errorf("Gini = %v, want 0.25", s.Gini)
	}
}

func TestGiniExtreme(t *testing.T) {
	// One worker does everything: Gini -> (n-1)/n.
	s := Summarize([]float64{0, 0, 0, 100})
	if !approx(s.Gini, 0.75, 1e-12) {
		t.Errorf("Gini = %v, want 0.75", s.Gini)
	}
	// All zero work: defined as balanced.
	z := Summarize([]float64{0, 0, 0})
	if z.Gini != 0 || z.CV != 0 {
		t.Errorf("all-zero summary = %+v, want Gini=CV=0", z)
	}
}

func TestSummarizeInt64(t *testing.T) {
	s := SummarizeInt64([]int64{2, 4})
	if s.Mean != 3 || s.Max != 4 {
		t.Errorf("SummarizeInt64 = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	got := Summarize([]float64{1, 3}).String()
	if !strings.Contains(got, "n=2") || !strings.Contains(got, "mean=2.0") {
		t.Errorf("String() = %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 7, 8, 1000} {
		h.Add(v)
	}
	if h.Total() != 9 {
		t.Errorf("Total = %d, want 9", h.Total())
	}
	want := map[[2]int64]int64{
		{0, 0}: 1, {1, 1}: 2, {2, 3}: 2, {4, 7}: 2, {8, 15}: 1, {512, 1023}: 1,
	}
	for _, b := range h.Buckets() {
		if c, ok := want[[2]int64{b.Lo, b.Hi}]; ok {
			if b.Count != c {
				t.Errorf("bucket [%d,%d] = %d, want %d", b.Lo, b.Hi, b.Count, c)
			}
			delete(want, [2]int64{b.Lo, b.Hi})
		} else if b.Count != 0 {
			t.Errorf("unexpected non-empty bucket [%d,%d] = %d", b.Lo, b.Hi, b.Count)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Add(-5)
	if h.Buckets()[0].Count != 1 {
		t.Error("negative value not clamped into bucket 0")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(1)
	h.Add(16)
	s := h.String()
	if !strings.Contains(s, "[       1,       1]") {
		t.Errorf("histogram render missing bucket line:\n%s", s)
	}
	if strings.Count(s, "\n") != 2 {
		t.Errorf("histogram should render exactly 2 non-empty buckets:\n%s", s)
	}
}

func TestSpeedupAndImprovement(t *testing.T) {
	if got := Speedup(200, 100); got != 2 {
		t.Errorf("Speedup = %v, want 2", got)
	}
	if got := Speedup(100, 0); !math.IsInf(got, 1) {
		t.Errorf("Speedup(x,0) = %v, want +Inf", got)
	}
	if got := PercentImprovement(200, 150); got != 25 {
		t.Errorf("PercentImprovement = %v, want 25", got)
	}
	if got := PercentImprovement(0, 10); got != 0 {
		t.Errorf("PercentImprovement(0,·) = %v, want 0", got)
	}
	if got := PercentImprovement(100, 120); got != -20 {
		t.Errorf("slowdown should be negative, got %v", got)
	}
}

// Property: Gini is in [0,1) and scale-invariant; CV is scale-invariant.
func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		if s.Gini < 0 || s.Gini >= 1 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		s2 := Summarize(scaled)
		return approx(s.Gini, s2.Gini, 1e-9) && approx(s.CV, s2.CV, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals number of Adds and each value lands in a
// bucket whose bounds contain it.
func TestHistogramProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Add(int64(v))
		}
		if h.Total() != int64(len(vals)) {
			return false
		}
		var sum int64
		for _, b := range h.Buckets() {
			if b.Lo > b.Hi {
				return false
			}
			sum += b.Count
		}
		return sum == int64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
