package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opt Options) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, rec
}

func acceptRec(id string, fp, pk uint64) AcceptRecord {
	return AcceptRecord{
		ID: id, Fingerprint: fp, PolicyKey: pk,
		AcceptedUnixMS: time.Now().UnixMilli(),
		Wire:           json.RawMessage(`{"gen":"grid:4:4"}`),
	}
}

func completeRec(id string, fp, pk uint64, colors []int32) CompleteRecord {
	return CompleteRecord{
		ID: id, Fingerprint: fp, PolicyKey: pk, Disposition: DispOK,
		NumColors: 2, ColorsB64: EncodeColors(colors),
		CompletedUnixMS: time.Now().UnixMilli(),
	}
}

func TestColorsRoundTrip(t *testing.T) {
	for _, colors := range [][]int32{nil, {}, {0}, {1, 2, 3, -1, 1 << 30}, make([]int32, 1000)} {
		got, err := DecodeColors(EncodeColors(colors))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(got) != len(colors) {
			t.Fatalf("len %d, want %d", len(got), len(colors))
		}
		for i := range colors {
			if got[i] != colors[i] {
				t.Fatalf("colors[%d] = %d, want %d", i, got[i], colors[i])
			}
		}
	}
	if _, err := DecodeColors("!!!"); err == nil {
		t.Fatal("bad base64 decoded")
	}
	if _, err := DecodeColors("AAAA AA"); err == nil {
		t.Fatal("misaligned colors decoded")
	}
	if _, err := DecodeColors("wQUJD"); err == nil {
		t.Fatal("misaligned wide colors decoded")
	}
	if _, err := DecodeColors("zQUJD"); err == nil {
		t.Fatal("unknown codec decoded")
	}
	if s := EncodeColors([]int32{0, 255, 7}); s[0] != 'b' {
		t.Fatalf("narrow palette encoded as %q, want byte codec", s[0])
	}
	if s := EncodeColors([]int32{0, 256}); s[0] != 'w' {
		t.Fatalf("wide palette encoded as %q, want int32 codec", s[0])
	}
}

// TestReplayRoundTrip appends accepts and completions, reopens, and
// checks pending/completed separation survives the restart.
func TestReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	if len(rec.Pending) != 0 || len(rec.Completions) != 0 {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
	// Job a: accepted and completed. Job b: accepted only (the crash
	// victim). Job c: accepted, failed (terminal — must not replay).
	if err := j.AppendAccept(acceptRec("a", 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAccept(acceptRec("b", 2, 20)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendComplete(completeRec("a", 1, 10, []int32{0, 1})); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAccept(acceptRec("c", 3, 30)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendComplete(CompleteRecord{ID: "c", Fingerprint: 3, PolicyKey: 30, Disposition: DispFailed, ErrKind: "failed"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec2 := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer j2.Close()
	if len(rec2.Pending) != 1 || rec2.Pending[0].ID != "b" {
		t.Fatalf("pending = %+v, want [b]", rec2.Pending)
	}
	if len(rec2.Completions) != 1 || rec2.Completions[0].ID != "a" {
		t.Fatalf("completions = %+v, want [a]", rec2.Completions)
	}
	st := rec2.Stats
	if st.Accepts != 3 || st.Completes != 2 || st.TornTails != 0 || st.CorruptSegments != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// Re-accepting b (the replay path) and completing it clears pending
	// on the next open.
	if err := j2.AppendAccept(acceptRec("b", 2, 20)); err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendComplete(completeRec("b", 2, 20, []int32{0})); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, rec3 := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer j3.Close()
	if len(rec3.Pending) != 0 {
		t.Fatalf("pending after replayed completion: %+v", rec3.Pending)
	}
	if len(rec3.Completions) != 2 {
		t.Fatalf("completions = %+v, want a and b", rec3.Completions)
	}
}

// TestAppendCompletesGroup: a grouped completion append settles every
// member on replay exactly as individual appends would, costs one fsync for
// the whole group under FsyncAlways, and an empty group is a no-op.
func TestAppendCompletesGroup(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	var group []CompleteRecord
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("g%d", i)
		if err := j.AppendAccept(acceptRec(id, uint64(i), uint64(10*i))); err != nil {
			t.Fatal(err)
		}
		group = append(group, completeRec(id, uint64(i), uint64(10*i), []int32{int32(i)}))
	}
	before := j.Stats()
	if err := j.AppendCompletes(nil); err != nil {
		t.Fatalf("empty group: %v", err)
	}
	if got := j.Stats(); got.Appends != before.Appends || got.Fsyncs != before.Fsyncs {
		t.Fatalf("empty group touched the journal: %+v -> %+v", before, got)
	}
	if err := j.AppendCompletes(group); err != nil {
		t.Fatal(err)
	}
	after := j.Stats()
	if after.Appends != before.Appends+5 {
		t.Fatalf("appends = %d, want %d", after.Appends, before.Appends+5)
	}
	if after.Fsyncs != before.Fsyncs+1 {
		t.Fatalf("fsyncs = %d, want exactly one for the group (was %d)", after.Fsyncs, before.Fsyncs)
	}
	j.Close()
	_, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	if len(rec.Pending) != 0 {
		t.Fatalf("pending after grouped completions: %+v", rec.Pending)
	}
	if len(rec.Completions) != 5 {
		t.Fatalf("completions = %d, want 5", len(rec.Completions))
	}
}

// TestNewestCompletionWins checks the (fp, pk) dedupe keeps the latest
// result in replay order.
func TestNewestCompletionWins(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("r%d", i)
		if err := j.AppendAccept(acceptRec(id, 7, 70)); err != nil {
			t.Fatal(err)
		}
		c := completeRec(id, 7, 70, []int32{int32(i)})
		if err := j.AppendComplete(c); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	if len(rec.Completions) != 1 || rec.Completions[0].ID != "r2" {
		t.Fatalf("completions = %+v, want just r2", rec.Completions)
	}
}

// TestSegmentRotation drives enough records through a tiny segment size
// to rotate several times, then checks replay sees everything.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{Fsync: FsyncNone, SegmentBytes: 512, CompactAfterSegments: -1})
	const n = 50
	for i := 0; i < n; i++ {
		if err := j.AppendAccept(acceptRec(fmt.Sprintf("job-%d", i), uint64(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Rotations == 0 {
		t.Fatalf("no rotations with 512-byte segments after %d appends", n)
	}
	j.Close()
	j2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer j2.Close()
	if len(rec.Pending) != n {
		t.Fatalf("recovered %d pending, want %d", len(rec.Pending), n)
	}
	if rec.Stats.Segments < 2 {
		t.Fatalf("replayed %d segments, want several", rec.Stats.Segments)
	}
	// Order must be accept order.
	for i, a := range rec.Pending {
		if a.ID != fmt.Sprintf("job-%d", i) {
			t.Fatalf("pending[%d] = %s, out of order", i, a.ID)
		}
	}
}

// TestCompaction registers a source, forces compaction, and checks old
// segments are deleted while replay still reproduces the state.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{Fsync: FsyncNone, SegmentBytes: 256, CompactAfterSegments: 1})
	// Live state the source reports: one pending job, one completion.
	j.SetSource(func() ([]AcceptRecord, []CompleteRecord) {
		return []AcceptRecord{acceptRec("pend", 5, 50)},
			[]CompleteRecord{completeRec("done", 6, 60, []int32{0, 1, 0})}
	})
	for i := 0; i < 80; i++ {
		if err := j.AppendAccept(acceptRec(fmt.Sprintf("x%d", i), uint64(i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := j.Stats(); st.Compactions == 0 {
		t.Fatal("forced Compact did not run")
	}
	j.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, e := range entries {
		if _, ok := parseIndexed(e.Name(), "snap-", ".snap"); ok {
			snaps++
		}
		if _, ok := parseIndexed(e.Name(), "seg-", ".wal"); ok {
			segs++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshots on disk, want 1", snaps)
	}
	if segs > 3 {
		t.Fatalf("%d segments survived compaction, want few", segs)
	}

	_, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	if !rec.Stats.SnapshotLoaded {
		t.Fatal("snapshot not loaded on reopen")
	}
	ids := map[string]bool{}
	for _, a := range rec.Pending {
		ids[a.ID] = true
	}
	if !ids["pend"] {
		t.Fatalf("snapshot pending job lost: %v", ids)
	}
	found := false
	for _, c := range rec.Completions {
		if c.ID == "done" {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot completion lost")
	}
	// Records appended after the compaction boundary replay on top: the
	// accepts in the still-live segments must be present too.
	if len(rec.Pending) < 2 {
		t.Fatalf("post-snapshot accepts lost: %d pending", len(rec.Pending))
	}
}

// TestFsyncModes smoke-tests each mode end to end.
func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			j, _ := mustOpen(t, dir, Options{Fsync: mode, FsyncInterval: time.Millisecond})
			for i := 0; i < 10; i++ {
				if err := j.AppendAccept(acceptRec(fmt.Sprintf("m%d", i), uint64(i), 3)); err != nil {
					t.Fatal(err)
				}
			}
			if mode == FsyncBatch {
				time.Sleep(20 * time.Millisecond) // let group commit fire
				if j.Stats().Fsyncs == 0 {
					t.Fatal("batch mode never fsynced")
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
			if len(rec.Pending) != 10 {
				t.Fatalf("recovered %d records, want 10", len(rec.Pending))
			}
		})
	}
	if st := func() Stats {
		j, _ := mustOpen(t, t.TempDir(), Options{Fsync: FsyncAlways})
		defer j.Close()
		j.AppendAccept(acceptRec("s", 1, 1))
		return j.Stats()
	}(); st.Fsyncs == 0 {
		t.Fatal("always mode never fsynced")
	}
}

func TestParseFsyncMode(t *testing.T) {
	cases := map[string]FsyncMode{"": FsyncBatch, "batch": FsyncBatch, "always": FsyncAlways, "none": FsyncNone, "off": FsyncNone}
	for in, want := range cases {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Error("bad mode accepted")
	}
}

// TestAppendAfterClose fails typed, and counts the error.
func TestAppendAfterClose(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Options{Fsync: FsyncNone})
	j.Close()
	if err := j.AppendAccept(acceptRec("late", 1, 1)); err == nil {
		t.Fatal("append after close succeeded")
	}
	if j.Stats().AppendErrors == 0 {
		t.Fatal("append error not counted")
	}
}

// TestCrashMidCompactionLeftovers simulates a crash that left both the
// snapshot and the segments it covers on disk: replay must not double
// the state.
func TestCrashMidCompactionLeftovers(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{Fsync: FsyncNone, SegmentBytes: 256})
	j.SetSource(func() ([]AcceptRecord, []CompleteRecord) {
		return []AcceptRecord{acceptRec("p", 9, 90)}, nil
	})
	for i := 0; i < 40; i++ {
		j.AppendAccept(acceptRec(fmt.Sprintf("y%d", i), uint64(i), 4))
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	// Resurrect a covered segment as if deletion had not finished.
	leftover := filepath.Join(dir, segmentName(1))
	if err := os.WriteFile(leftover, append(segmentMagic[:], encodeFrame(nil, mustMarshal(t, record{Accept: &AcceptRecord{ID: "stale"}}))...), 0o644); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	for _, a := range rec.Pending {
		if a.ID == "stale" {
			t.Fatal("segment covered by snapshot was replayed")
		}
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatal("covered leftover segment not cleaned up")
	}
}

func mustMarshal(t *testing.T, rec record) []byte {
	t.Helper()
	b, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSettledVersionPairing: resident accepts pair with their DispOK
// completions into Recovery.Settled regardless of arrival order (live
// segments write accept-then-completion; snapshots the reverse), newest
// pair per fingerprint wins, and non-resident or unfinished jobs never
// appear there.
func TestSettledVersionPairing(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{Fsync: FsyncNone})
	res := func(id string, fp uint64) AcceptRecord {
		a := acceptRec(id, fp, 10)
		a.Resident = true
		return a
	}
	// v1: resident, accept then completion (live order).
	if err := j.AppendAccept(res("v1", 100)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendComplete(completeRec("v1", 100, 10, []int32{0, 1})); err != nil {
		t.Fatal(err)
	}
	// v2: resident, completion journaled before the accept (snapshot order).
	if err := j.AppendComplete(completeRec("v2", 200, 10, []int32{1, 0})); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAccept(res("v2", 200)); err != nil {
		t.Fatal(err)
	}
	// v3: resident but never completed — pending, not settled.
	if err := j.AppendAccept(res("v3", 300)); err != nil {
		t.Fatal(err)
	}
	// n1: completed but not resident — completion only.
	if err := j.AppendAccept(acceptRec("n1", 400, 10)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendComplete(completeRec("n1", 400, 10, []int32{0})); err != nil {
		t.Fatal(err)
	}
	// v4 re-settles fingerprint 100: the newer pair must win.
	if err := j.AppendAccept(res("v4", 100)); err != nil {
		t.Fatal(err)
	}
	c4 := completeRec("v4", 100, 10, []int32{1, 2})
	c4.NumColors = 3
	if err := j.AppendComplete(c4); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, rec := mustOpen(t, dir, Options{Fsync: FsyncNone})
	defer j2.Close()
	if len(rec.Settled) != 2 {
		t.Fatalf("settled = %+v, want v2 and v4", rec.Settled)
	}
	byFp := map[uint64]SettledVersion{}
	for _, s := range rec.Settled {
		if s.Accept.ID != s.Complete.ID {
			t.Fatalf("mispaired: accept %q with completion %q", s.Accept.ID, s.Complete.ID)
		}
		byFp[s.Accept.Fingerprint] = s
	}
	if s, ok := byFp[200]; !ok || s.Accept.ID != "v2" {
		t.Errorf("fp 200 settled = %+v, want v2", s)
	}
	if s, ok := byFp[100]; !ok || s.Accept.ID != "v4" || s.Complete.NumColors != 3 {
		t.Errorf("fp 100 settled = %+v, want newest pair v4", s)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].ID != "v3" {
		t.Fatalf("pending = %+v, want [v3]", rec.Pending)
	}
	if !rec.Pending[0].Resident {
		t.Error("pending resident accept lost its Resident flag")
	}
}
