package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment produces a valid segment holding n accept records.
func buildSegment(t *testing.T, n int) []byte {
	t.Helper()
	buf := append([]byte(nil), segmentMagic[:]...)
	for i := 0; i < n; i++ {
		rec := record{Accept: &AcceptRecord{ID: fmt.Sprintf("job-%d", i), Fingerprint: uint64(i), PolicyKey: 1}}
		payload, err := json.Marshal(&rec)
		if err != nil {
			t.Fatal(err)
		}
		buf = encodeFrame(buf, payload)
	}
	return buf
}

// TestReplayCorruption table-drives the damage modes the journal must
// absorb: truncated tails, bit-flipped CRCs, zero-length and bad-magic
// segments. Every case must recover cleanly (Open never errors) with the
// right replay_* counters.
func TestReplayCorruption(t *testing.T) {
	cases := []struct {
		name         string
		mutate       func(t *testing.T, seg []byte) []byte
		wantPending  int
		wantTorn     int
		wantCorrupt  int
		wantShrunken bool // file must be truncated back to valid frames
	}{
		{
			name:        "clean",
			mutate:      func(t *testing.T, seg []byte) []byte { return seg },
			wantPending: 5,
		},
		{
			name: "torn tail mid frame",
			mutate: func(t *testing.T, seg []byte) []byte {
				return seg[:len(seg)-3] // crash mid-write of the last record
			},
			wantPending:  4,
			wantTorn:     1,
			wantShrunken: true,
		},
		{
			name: "torn tail header only",
			mutate: func(t *testing.T, seg []byte) []byte {
				return append(seg, 0x40, 0x00) // partial next header
			},
			wantPending:  5,
			wantTorn:     1,
			wantShrunken: true,
		},
		{
			name: "bit flip in last payload",
			mutate: func(t *testing.T, seg []byte) []byte {
				seg[len(seg)-2] ^= 0x10
				return seg
			},
			wantPending:  4,
			wantTorn:     1,
			wantShrunken: true,
		},
		{
			name: "bit flip in first payload loses the segment body",
			mutate: func(t *testing.T, seg []byte) []byte {
				seg[len(segmentMagic)+frameHeaderBytes+2] ^= 0x01
				return seg
			},
			wantPending:  0,
			wantTorn:     1,
			wantShrunken: true,
		},
		{
			name: "length field points past EOF",
			mutate: func(t *testing.T, seg []byte) []byte {
				binary.LittleEndian.PutUint32(seg[len(segmentMagic):], 1<<31)
				return seg
			},
			wantPending:  0,
			wantTorn:     1,
			wantShrunken: true,
		},
		{
			name:        "zero-length segment",
			mutate:      func(t *testing.T, seg []byte) []byte { return nil },
			wantPending: 0,
			// An empty file is a crash between create and header write:
			// normal, not corrupt.
		},
		{
			name: "bad magic",
			mutate: func(t *testing.T, seg []byte) []byte {
				seg[0] = 'X'
				return seg
			},
			wantPending: 0,
			wantCorrupt: 1,
		},
		{
			name: "shorter than magic",
			mutate: func(t *testing.T, seg []byte) []byte {
				return seg[:4]
			},
			wantPending: 0,
			wantCorrupt: 1,
		},
		{
			name: "valid frame with non-JSON payload is skipped",
			mutate: func(t *testing.T, seg []byte) []byte {
				return encodeFrame(seg, []byte("not json"))
			},
			wantPending: 5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, segmentName(1))
			seg := tc.mutate(t, buildSegment(t, 5))
			if err := os.WriteFile(path, seg, 0o644); err != nil {
				t.Fatal(err)
			}
			j, rec, err := Open(dir, Options{Fsync: FsyncNone})
			if err != nil {
				t.Fatalf("Open must absorb corruption, got %v", err)
			}
			defer j.Close()
			if got := len(rec.Pending); got != tc.wantPending {
				t.Errorf("pending = %d, want %d", got, tc.wantPending)
			}
			if rec.Stats.TornTails != tc.wantTorn {
				t.Errorf("torn_tails = %d, want %d", rec.Stats.TornTails, tc.wantTorn)
			}
			if rec.Stats.CorruptSegments != tc.wantCorrupt {
				t.Errorf("corrupt_segments = %d, want %d", rec.Stats.CorruptSegments, tc.wantCorrupt)
			}
			if tc.wantTorn > 0 && rec.Stats.TruncatedBytes <= 0 {
				t.Error("torn tail reported but truncated_bytes = 0")
			}
			if tc.wantShrunken {
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				if fi.Size() >= int64(len(seg)) {
					t.Errorf("file not truncated: %d >= %d", fi.Size(), len(seg))
				}
				// The truncated file must now replay clean.
				j2, rec2, err := Open(t.TempDir(), Options{Fsync: FsyncNone})
				_ = rec2
				if err != nil {
					t.Fatal(err)
				}
				j2.Close()
				st := newReplayState()
				if len(seg) > len(segmentMagic) && !j2.replayFile(st, path, true) && tc.wantCorrupt == 0 {
					t.Error("truncated file no longer replays")
				}
				if st.stats.TornTails != 0 {
					t.Errorf("second replay of truncated file still torn: %+v", st.stats)
				}
			}
		})
	}
}

// TestReplayAfterCrashAppends reopens a journal whose prior active
// segment has a torn tail and checks appends keep working and a third
// generation sees both the surviving old records and the new ones.
func TestReplayAfterCrashAppends(t *testing.T) {
	dir := t.TempDir()
	seg := buildSegment(t, 3)
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg[:len(seg)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	j, rec, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 2 || rec.Stats.TornTails != 1 {
		t.Fatalf("first recovery: %d pending, %+v", len(rec.Pending), rec.Stats)
	}
	if err := j.AppendAccept(AcceptRecord{ID: "new", Fingerprint: 99, PolicyKey: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, rec2, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(rec2.Pending) != 3 || rec2.Stats.TornTails != 0 {
		t.Fatalf("second recovery: %d pending, %+v", len(rec2.Pending), rec2.Stats)
	}
}

// TestCorruptSnapshotFallsBack damages the snapshot header; replay must
// fall back to the segments still on disk instead of trusting it.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(7)), buildSegment(t, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotName(5)), []byte("garbage snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, rec, err := Open(dir, Options{Fsync: FsyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rec.Stats.SnapshotLoaded {
		t.Error("corrupt snapshot reported as loaded")
	}
	if rec.Stats.CorruptSegments != 1 {
		t.Errorf("corrupt_segments = %d, want 1 (the snapshot)", rec.Stats.CorruptSegments)
	}
	if len(rec.Pending) != 2 {
		t.Errorf("pending = %d, want 2 from the surviving segment", len(rec.Pending))
	}
}
