// Package journal is gcolord's durability layer: an append-only,
// CRC32C-checksummed, length-prefixed write-ahead journal with segment
// rotation, fsync batching, and snapshot compaction.
//
// The serving layer appends an accept record for every admitted job
// before it is enqueued and a completion record when the job finishes
// (whatever the disposition), so process death loses no accepted work:
// on the next Open the journal is replayed, incomplete jobs come back as
// Recovery.Pending for re-execution, and completed results warm-start
// the result cache and the idempotency map. Replay never fails — a torn
// or corrupt tail is truncated and counted, not fatal — because a
// journal that can brick its own restart is worse than no journal.
package journal

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Dispositions of a completion record: how an accepted job left the
// system. Only DispOK carries a result; every other disposition exists
// so replay knows the job needs no re-execution.
const (
	// DispOK is a successful completion with a verified coloring.
	DispOK = "ok"
	// DispFailed is a terminal execution failure (device error after the
	// full resilient ladder); the caller saw the error.
	DispFailed = "failed"
	// DispExpired is a job whose deadline passed (in queue or mid-run);
	// the caller saw a deadline error.
	DispExpired = "expired"
	// DispHandedOff is a job handed back to its caller unrun at a drain
	// deadline; the caller saw a draining error and owns the retry.
	DispHandedOff = "handed_off"
	// DispRejected closes an accept record whose enqueue was refused
	// (queue full / shedding) after the accept was already journaled.
	DispRejected = "rejected"
	// DispReplayExpired is a recovered pending job whose deadline had
	// already passed at replay time: explicitly expired, never silently
	// dropped.
	DispReplayExpired = "replay_expired"
)

// AcceptRecord journals one admitted job before it is enqueued.
type AcceptRecord struct {
	// ID is the per-request ID (X-Request-ID); accept and completion
	// records pair up on it.
	ID string `json:"id"`
	// IdemKey is the client's Idempotency-Key, when one was sent.
	IdemKey string `json:"idem,omitempty"`
	// Fingerprint is the graph content fingerprint; PolicyKey the folded
	// policy knobs plus shard count — together the result-cache key.
	Fingerprint uint64 `json:"fp,string"`
	PolicyKey   uint64 `json:"pk,string"`
	// Priority is the admission priority (serve.Priority as an int).
	Priority int `json:"prio,omitempty"`
	// DeadlineUnixMS is the job's absolute deadline (0 = none); replay
	// expires rather than re-runs jobs whose deadline has passed.
	DeadlineUnixMS int64 `json:"deadline_ms,omitempty"`
	// AcceptedUnixMS is when the job was admitted.
	AcceptedUnixMS int64 `json:"accepted_ms"`
	// Resident marks a job whose result graph must be pinned in the
	// versioned graph store (a delta base). On replay, its settled
	// accept+completion pair rebuilds the version instead of re-running.
	Resident bool `json:"res,omitempty"`
	// Wire is the request's wire form (serve.ColorRequest JSON), enough
	// to rebuild and re-execute the job on replay.
	Wire json.RawMessage `json:"wire,omitempty"`
}

// CompleteRecord journals one finished job. Disposition says how it
// finished; DispOK records carry the compact result that warm-starts the
// cache and answers idempotent retries.
type CompleteRecord struct {
	ID          string `json:"id"`
	IdemKey     string `json:"idem,omitempty"`
	Fingerprint uint64 `json:"fp,string"`
	PolicyKey   uint64 `json:"pk,string"`
	Disposition string `json:"disp"`
	// ErrKind is the typed error kind for non-OK dispositions.
	ErrKind string `json:"err,omitempty"`

	// Compact result (DispOK only). Colors are base64-packed LE int32s:
	// a JSON int array would be ~5x the bytes at journal write rates.
	NumColors  int    `json:"num_colors,omitempty"`
	ColorsB64  string `json:"colors_b64,omitempty"`
	Cycles     int64  `json:"cycles,omitempty"`
	Iterations int    `json:"iters,omitempty"`
	Recovery   int    `json:"recovery,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	// NoCache marks a result that must answer idempotent retries but not
	// re-enter the result cache on warm start.
	NoCache bool `json:"no_cache,omitempty"`

	CompletedUnixMS int64 `json:"completed_ms"`
}

// record is the journal's single wire envelope; exactly one of Accept
// and Complete is set.
type record struct {
	Accept   *AcceptRecord   `json:"a,omitempty"`
	Complete *CompleteRecord `json:"c,omitempty"`
}

// EncodeColors packs a coloring for a journal record. A one-byte codec
// prefix precedes the base64 body: 'b' is one byte per vertex (the common
// case — colorings rarely need more than a few dozen colors, and the 4x
// size cut matters because fsync cost tracks journaled bytes), 'w' is
// little-endian int32 for palettes that overflow a byte.
func EncodeColors(colors []int32) string {
	if len(colors) == 0 {
		return ""
	}
	narrow := true
	for _, c := range colors {
		if c < 0 || c > 0xff {
			narrow = false
			break
		}
	}
	if narrow {
		b := make([]byte, len(colors))
		for i, c := range colors {
			b[i] = byte(c)
		}
		return "b" + base64.StdEncoding.EncodeToString(b)
	}
	b := make([]byte, 4*len(colors))
	for i, c := range colors {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(c))
	}
	return "w" + base64.StdEncoding.EncodeToString(b)
}

// DecodeColors unpacks EncodeColors; it is the inverse for any length.
func DecodeColors(s string) ([]int32, error) {
	if s == "" {
		return nil, nil
	}
	b, err := base64.StdEncoding.DecodeString(s[1:])
	if err != nil {
		return nil, fmt.Errorf("journal: colors: %w", err)
	}
	switch s[0] {
	case 'b':
		colors := make([]int32, len(b))
		for i, c := range b {
			colors[i] = int32(c)
		}
		return colors, nil
	case 'w':
		if len(b)%4 != 0 {
			return nil, fmt.Errorf("journal: colors: %d bytes not a multiple of 4", len(b))
		}
		colors := make([]int32, len(b)/4)
		for i := range colors {
			colors[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
		}
		return colors, nil
	default:
		return nil, fmt.Errorf("journal: colors: unknown codec %q", s[0])
	}
}

// Frame format, shared by journal segments and snapshots:
//
//	segment  := magic record*
//	magic    := "gcwal1\n\x00" (8 bytes)
//	record   := len(uint32 LE) crc32c(uint32 LE, of payload) payload
//	payload  := JSON of record{}
//
// A record is valid only if its full payload is present and the CRC
// matches; anything else at the end of the active segment is a torn
// write from the crash and is truncated on replay.

var segmentMagic = [8]byte{'g', 'c', 'w', 'a', 'l', '1', '\n', 0}

const frameHeaderBytes = 8 // len + crc

// maxRecordBytes caps a single record so a corrupt length field cannot
// drive a multi-gigabyte allocation during replay. Large enough for the
// colors of a 16M-vertex graph.
const maxRecordBytes = 128 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeFrame appends the framed record to buf and returns it.
func encodeFrame(buf []byte, payload []byte) []byte {
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeFrame reads one frame from b. It returns the payload, the total
// frame size consumed, and ok=false when b does not hold one complete,
// checksum-valid frame (a torn or corrupt tail).
func decodeFrame(b []byte) (payload []byte, n int, ok bool) {
	if len(b) < frameHeaderBytes {
		return nil, 0, false
	}
	plen := binary.LittleEndian.Uint32(b[0:])
	crc := binary.LittleEndian.Uint32(b[4:])
	if plen > maxRecordBytes || int(plen) > len(b)-frameHeaderBytes {
		return nil, 0, false
	}
	payload = b[frameHeaderBytes : frameHeaderBytes+int(plen)]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, false
	}
	return payload, frameHeaderBytes + int(plen), true
}
