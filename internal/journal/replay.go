package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
)

// ReplayStats counts what Open found on disk. Corruption is evidence,
// not failure: every counter here feeds the replay_* metrics surfaced at
// /recoveryz.
type ReplayStats struct {
	// Segments is the number of segment files scanned (snapshot included
	// when one was loaded).
	Segments int `json:"segments"`
	// SnapshotLoaded reports that a compacted snapshot seeded the state.
	SnapshotLoaded bool `json:"snapshot_loaded"`
	// Records / Accepts / Completes count the valid records replayed.
	Records   int64 `json:"records"`
	Accepts   int64 `json:"accepts"`
	Completes int64 `json:"completes"`
	// TornTails counts segments that ended in a torn or corrupt frame and
	// were truncated at the last valid record; TruncatedBytes the bytes
	// discarded that way.
	TornTails      int   `json:"torn_tails"`
	TruncatedBytes int64 `json:"truncated_bytes"`
	// CorruptSegments counts files whose header magic was wrong (or that
	// were shorter than a header); their contents are unrecoverable and
	// skipped whole.
	CorruptSegments int `json:"corrupt_segments"`
	// Bytes is the total valid bytes replayed.
	Bytes int64 `json:"bytes"`
}

// Recovery is the replayed journal state Open hands back to the server.
type Recovery struct {
	// Pending holds accepted jobs with no completion record, in accept
	// order: the work a crash interrupted. Jobs whose deadline has passed
	// still appear here — the server expires them explicitly
	// (DispReplayExpired), it does not silently drop them.
	Pending []AcceptRecord
	// Completions holds DispOK completion records in journal order
	// (oldest first), deduplicated by (fingerprint, policy) with the
	// newest record winning. Replaying them through an LRU in order
	// reproduces the pre-crash recency ordering.
	Completions []CompleteRecord
	// Settled holds Resident accepts paired with their DispOK completion,
	// in settlement order: the version chain of the graph store. Pairing
	// is order-insensitive (snapshots write completions before accepts),
	// deduplicated by fingerprint with the newest pair winning.
	Settled []SettledVersion
	// Stats describes the scan.
	Stats ReplayStats
}

// SettledVersion is one resident graph version recovered from the
// journal: the accept carries the wire form (full graph or delta) and the
// completion the coloring, together enough to rebuild the version store
// entry without re-executing anything.
type SettledVersion struct {
	Accept   AcceptRecord
	Complete CompleteRecord
}

// replayState folds records in order into pending/completed state.
// Accept and complete records pair on ID; completions also dedupe — by
// Idempotency-Key when they carry one (each client retry key keeps its
// own newest answer), by cache key (fp, pk) otherwise — so repeated
// snapshots and re-journaled replays collapse instead of accumulating.
type replayState struct {
	pendingByID map[string]int // index into pending; -1 = completed
	pending     []*AcceptRecord
	compByKey   map[string]int // dedupe key -> index into comps
	comps       []*CompleteRecord
	// Version-chain pairing. A resident accept and its DispOK completion
	// can arrive in either order (snapshots write completions first), so
	// each side parks until the other shows up: okByID holds unpaired
	// DispOK completions, resByID unpaired resident accepts.
	okByID      map[string]*CompleteRecord
	resByID     map[string]*AcceptRecord
	settledByFp map[uint64]int // fp -> index into settled; newest wins
	settled     []*SettledVersion
	stats       ReplayStats
}

func newReplayState() *replayState {
	return &replayState{
		pendingByID: make(map[string]int),
		compByKey:   make(map[string]int),
		okByID:      make(map[string]*CompleteRecord),
		resByID:     make(map[string]*AcceptRecord),
		settledByFp: make(map[uint64]int),
	}
}

// settle records a matched resident accept + DispOK completion pair,
// keeping only the newest pair per fingerprint.
func (st *replayState) settle(a *AcceptRecord, c *CompleteRecord) {
	if i, ok := st.settledByFp[c.Fingerprint]; ok {
		st.settled[i] = nil
	}
	st.settledByFp[c.Fingerprint] = len(st.settled)
	st.settled = append(st.settled, &SettledVersion{Accept: *a, Complete: *c})
}

// compDedupeKey is the newest-wins identity of a DispOK completion.
func compDedupeKey(c *CompleteRecord) string {
	if c.IdemKey != "" {
		return "i\x00" + c.IdemKey
	}
	var b [17]byte
	binary.LittleEndian.PutUint64(b[0:], c.Fingerprint)
	binary.LittleEndian.PutUint64(b[8:], c.PolicyKey)
	b[16] = 'k'
	return string(b[:])
}

func (st *replayState) apply(rec *record) {
	switch {
	case rec.Accept != nil:
		a := rec.Accept
		st.stats.Accepts++
		if a.Resident {
			if c, ok := st.okByID[a.ID]; ok {
				st.settle(a, c) // completion replayed first (snapshot order)
			} else {
				st.resByID[a.ID] = a
			}
		}
		if i, ok := st.pendingByID[a.ID]; ok {
			if i >= 0 {
				st.pending[i] = a // duplicate accept (replayed job): newest wins
			}
			return
		}
		st.pendingByID[a.ID] = len(st.pending)
		st.pending = append(st.pending, a)
	case rec.Complete != nil:
		c := rec.Complete
		st.stats.Completes++
		if i, ok := st.pendingByID[c.ID]; ok && i >= 0 {
			st.pending[i] = nil
		}
		st.pendingByID[c.ID] = -1
		if c.Disposition != DispOK {
			return
		}
		st.okByID[c.ID] = c
		if a, ok := st.resByID[c.ID]; ok {
			st.settle(a, c)
			delete(st.resByID, c.ID)
		}
		key := compDedupeKey(c)
		if i, ok := st.compByKey[key]; ok {
			st.comps[i] = nil // newest result for a key wins, at its new position
		}
		st.compByKey[key] = len(st.comps)
		st.comps = append(st.comps, c)
	}
}

func (st *replayState) recovery() *Recovery {
	rec := &Recovery{Stats: st.stats}
	for _, a := range st.pending {
		if a != nil {
			rec.Pending = append(rec.Pending, *a)
		}
	}
	for _, c := range st.comps {
		if c != nil {
			rec.Completions = append(rec.Completions, *c)
		}
	}
	for _, s := range st.settled {
		if s != nil {
			rec.Settled = append(rec.Settled, *s)
		}
	}
	return rec
}

// replayDir scans the journal directory: the newest snapshot first (if
// any), then every segment at or past the snapshot's cover point, in
// index order. Returns the recovered state, the highest file index seen
// (so the new active segment lands past everything), and the snapshot
// index in effect.
func (j *Journal) replayDir() (*Recovery, uint64, uint64, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, 0, 0, err
	}
	segs := listIndexed(entries, "seg-", ".wal")
	snaps := listIndexed(entries, "snap-", ".snap")

	st := newReplayState()
	var snapSeq uint64
	var maxIdx uint64
	if len(snaps) > 0 {
		// Only the newest snapshot counts; older ones are compaction
		// leftovers. A snapshot that fails to load entirely (bad magic)
		// falls back to replaying every segment still on disk.
		snapSeq = snaps[len(snaps)-1]
		if snapSeq > maxIdx {
			maxIdx = snapSeq
		}
		if !j.replayFile(st, filepath.Join(j.dir, snapshotName(snapSeq)), false) {
			snapSeq = 0
		} else {
			st.stats.SnapshotLoaded = true
		}
	}
	for _, s := range segs {
		if s > maxIdx {
			maxIdx = s
		}
		if s < snapSeq {
			// Covered by the snapshot; a finished compaction would have
			// deleted it (a crash mid-compaction can leave it behind).
			_ = os.Remove(filepath.Join(j.dir, segmentName(s)))
			continue
		}
		j.sealed = append(j.sealed, s)
		j.replayFile(st, filepath.Join(j.dir, segmentName(s)), true)
	}
	return st.recovery(), maxIdx, snapSeq, nil
}

// replayFile folds one segment or snapshot into st. truncateTail trims
// a torn/corrupt tail back to the last valid frame (segments only —
// snapshots are written atomically, so a bad tail there is just
// counted). Returns false when the file header itself was unusable.
// Never returns an error: replay must not be able to fail.
func (j *Journal) replayFile(st *replayState, path string, truncateTail bool) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		st.stats.CorruptSegments++
		return false
	}
	st.stats.Segments++
	if len(data) < len(segmentMagic) || !bytes.Equal(data[:len(segmentMagic)], segmentMagic[:]) {
		// A zero-length or header-torn segment: nothing recoverable. An
		// empty file is the normal remains of a crash between create and
		// header write, so only count non-empty ones as corrupt.
		if len(data) > 0 {
			st.stats.CorruptSegments++
		}
		return false
	}
	off := len(segmentMagic)
	for off < len(data) {
		payload, n, ok := decodeFrame(data[off:])
		if !ok {
			// Torn or corrupt from here on. Everything after the last
			// valid frame is discarded: a flipped bit mid-file costs the
			// records behind it in this segment (frames are not
			// self-synchronizing), never the whole journal.
			st.stats.TornTails++
			st.stats.TruncatedBytes += int64(len(data) - off)
			if truncateTail {
				_ = os.Truncate(path, int64(off))
			}
			break
		}
		var rec record
		if err := json.Unmarshal(payload, &rec); err == nil {
			st.apply(&rec)
			st.stats.Records++
		}
		// A CRC-valid frame with undecodable JSON can only be a foreign
		// writer; skip the frame, keep scanning.
		st.stats.Bytes += int64(n)
		off += n
	}
	return true
}
