package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Follower incrementally replays a journal directory that another process
// is still appending to — the standby coordinator's view of the primary's
// write-ahead journal. Each Poll picks up where the last one stopped:
// newly completed frames in the tailed segment, then newly sealed
// segments, folding everything into the same replay state Open uses, so
// Recovery() at any instant is exactly what Open would have recovered had
// the primary died then.
//
// Tail discipline: a frame that does not decode is NOT corruption while
// the segment is still active — the primary's group-commit flusher writes
// on a ~25ms cadence, so a torn tail is usually a frame mid-flush that
// the next Poll will find completed. The follower therefore never
// truncates, and it only writes the segment off as finished once a
// higher-indexed segment exists on disk (the primary seals — flushes and
// fsyncs — a segment before rotating past it, so at that point any
// undecodable tail really is torn and is counted as such).
//
// The follower assumes no concurrent compaction, which holds for
// coordinator journals (they never register a compaction source): only a
// snapshot already on disk at the first Poll is consulted.
//
// A Follower is not safe for concurrent use; the standby owns it.
type Follower struct {
	dir     string
	st      *replayState
	started bool
	seg     uint64 // segment currently being tailed
	off     int    // decoded bytes into that segment (0 = header unverified)
}

// NewFollower tails the journal in dir. No I/O happens until Poll.
func NewFollower(dir string) *Follower {
	return &Follower{dir: dir, st: newReplayState()}
}

// Poll scans for new records and folds them in, returning the number of
// records applied. An empty or absent directory is not an error — the
// primary may not have started yet.
func (f *Follower) Poll() (applied int64, err error) {
	before := f.st.stats.Records
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("journal: follow: %w", err)
	}
	segs := listIndexed(entries, "seg-", ".wal")
	if !f.started {
		f.started = true
		snaps := listIndexed(entries, "snap-", ".snap")
		if len(snaps) > 0 {
			snapSeq := snaps[len(snaps)-1]
			if f.replaySnapshot(filepath.Join(f.dir, snapshotName(snapSeq))) {
				f.st.stats.SnapshotLoaded = true
				f.seg = snapSeq
			}
		}
	}
	for {
		if !contains(segs, f.seg) {
			next, ok := nextAbove(segs, f.seg)
			if !ok {
				break // nothing (new) on disk yet
			}
			f.seg, f.off = next, 0
		}
		data, rerr := os.ReadFile(filepath.Join(f.dir, segmentName(f.seg)))
		if rerr != nil {
			break // transient (primary mid-create); re-poll
		}
		f.drain(data)
		next, ok := nextAbove(segs, f.seg)
		if !ok {
			break // still the active segment; tail it again next Poll
		}
		// The primary rotated past this segment, sealing it fully flushed:
		// whatever did not decode is genuinely torn, not in flight.
		if f.off > 0 && f.off < len(data) {
			f.st.stats.TornTails++
			f.st.stats.TruncatedBytes += int64(len(data) - f.off)
		}
		f.seg, f.off = next, 0
	}
	return f.st.stats.Records - before, nil
}

// drain decodes every complete frame past the current offset.
func (f *Follower) drain(data []byte) {
	if f.off == 0 {
		if len(data) < len(segmentMagic) || !bytes.Equal(data[:len(segmentMagic)], segmentMagic[:]) {
			return // header not flushed yet (or foreign file); re-poll
		}
		f.st.stats.Segments++
		f.off = len(segmentMagic)
	}
	for f.off < len(data) {
		payload, n, ok := decodeFrame(data[f.off:])
		if !ok {
			return // incomplete or torn; decided at seal time
		}
		var rec record
		if json.Unmarshal(payload, &rec) == nil {
			f.st.apply(&rec)
			f.st.stats.Records++
		}
		f.st.stats.Bytes += int64(n)
		f.off += n
	}
}

// replaySnapshot folds a compacted snapshot in (first Poll only).
func (f *Follower) replaySnapshot(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < len(segmentMagic) || !bytes.Equal(data[:len(segmentMagic)], segmentMagic[:]) {
		return false
	}
	f.st.stats.Segments++
	off := len(segmentMagic)
	for off < len(data) {
		payload, n, ok := decodeFrame(data[off:])
		if !ok {
			break // snapshots are written atomically; a bad tail ends it
		}
		var rec record
		if json.Unmarshal(payload, &rec) == nil {
			f.st.apply(&rec)
			f.st.stats.Records++
		}
		f.st.stats.Bytes += int64(n)
		off += n
	}
	return true
}

// Recovery snapshots the follower's current state in the same shape Open
// returns: the pending accepts a takeover must re-dispatch and the
// completions that warm its caches. The follower remains usable after.
func (f *Follower) Recovery() *Recovery {
	return f.st.recovery()
}

// Stats reports the scan counters so far.
func (f *Follower) Stats() ReplayStats { return f.st.stats }

func contains(xs []uint64, v uint64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// nextAbove returns the smallest element of the sorted slice strictly
// above v.
func nextAbove(xs []uint64, v uint64) (uint64, bool) {
	for _, x := range xs {
		if x > v {
			return x, true
		}
	}
	return 0, false
}

// OpenAppend opens the journal in dir for appends only, without replaying
// it: the new active segment lands past every file already present. This
// is the takeover path — the standby has already replayed the primary's
// records through a Follower, and re-reading them here would double the
// work (and race the final Poll).
func OpenAppend(dir string, opt Options) (*Journal, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:         dir,
		opt:         opt,
		stop:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	var maxIdx uint64
	if snaps := listIndexed(entries, "snap-", ".snap"); len(snaps) > 0 {
		j.snapSeq = snaps[len(snaps)-1]
		maxIdx = j.snapSeq
	}
	for _, s := range listIndexed(entries, "seg-", ".wal") {
		if s > maxIdx {
			maxIdx = s
		}
		if s >= j.snapSeq {
			j.sealed = append(j.sealed, s)
		}
	}
	j.seg = maxIdx + 1
	if err := j.openSegment(j.seg); err != nil {
		return nil, err
	}
	if opt.Fsync == FsyncBatch {
		go j.flusher()
	} else {
		close(j.flusherDone)
	}
	return j, nil
}
