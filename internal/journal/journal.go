package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncMode selects when appended records are forced to stable storage.
type FsyncMode int

const (
	// FsyncBatch (the default) marks the journal dirty on append and
	// fsyncs from a background flusher every Options.FsyncInterval: group
	// commit. A crash can lose at most the last interval's records; the
	// idempotency keys of the clients in that window cover the retry.
	FsyncBatch FsyncMode = iota
	// FsyncAlways fsyncs inside every append: no loss window, highest
	// per-request cost.
	FsyncAlways
	// FsyncNone never fsyncs (the OS flushes on its own schedule). For
	// benchmarks and tests; survives process crash, not power loss.
	FsyncNone
)

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParseFsyncMode converts a mode name as printed by String.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "batch", "":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "none", "off":
		return FsyncNone, nil
	}
	return FsyncBatch, fmt.Errorf("journal: unknown fsync mode %q (want always, batch, or none)", s)
}

// Options tunes a Journal. Zero values take the documented defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it crosses this size
	// (default 4 MiB).
	SegmentBytes int64
	// Fsync selects the durability mode (default FsyncBatch).
	Fsync FsyncMode
	// FsyncInterval is the batch-mode group-commit interval (default 25ms).
	// Shorter intervals shrink the crash-loss window but burn measurable
	// CPU in the kernel at high request rates; 25ms keeps journal
	// throughput overhead in the low single digits.
	FsyncInterval time.Duration
	// CompactAfterSegments triggers a snapshot compaction when more than
	// this many sealed segments accumulate behind the active one
	// (default 4; negative disables automatic compaction).
	CompactAfterSegments int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 25 * time.Millisecond
	}
	if o.CompactAfterSegments == 0 {
		o.CompactAfterSegments = 4
	}
	return o
}

// Stats counts a Journal's lifetime work (atomically readable while
// appends continue).
type Stats struct {
	Appends       int64  `json:"appends"`        // records appended
	AppendBytes   int64  `json:"append_bytes"`   // framed bytes appended
	Fsyncs        int64  `json:"fsyncs"`         // fsync calls issued
	Rotations     int64  `json:"rotations"`      // segment rotations
	Compactions   int64  `json:"compactions"`    // snapshot compactions completed
	AppendErrors  int64  `json:"append_errors"`  // appends that failed (disk error); serving continued
	ActiveSegment uint64 `json:"active_segment"`
	LiveSegments  int    `json:"live_segments"` // sealed + active segment files on disk
}

// Journal is an open write-ahead journal rooted at a directory. All
// methods are safe for concurrent use. The caller owns Close.
type Journal struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	seg     uint64 // active segment index
	size    int64  // bytes written to the active segment
	sealed  []uint64
	dirty   bool
	closed  bool
	snapSeq uint64 // highest snapshot index on disk (0 = none)

	source     func() ([]AcceptRecord, []CompleteRecord)
	compacting atomic.Bool

	stop        chan struct{}
	flusherDone chan struct{}

	appends, appendBytes, fsyncs, rotations, compactions, appendErrs atomic.Int64
}

func segmentName(i uint64) string  { return fmt.Sprintf("seg-%08d.wal", i) }
func snapshotName(i uint64) string { return fmt.Sprintf("snap-%08d.snap", i) }

// parseIndexed extracts the index of a "prefix-NNNNNNNN.ext" name.
func parseIndexed(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ext)
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Open replays any existing journal in dir (creating it if absent),
// returns the recovered state, and opens a fresh active segment for
// appends. Replay is tolerant by construction: torn tails are truncated,
// corrupt records counted and skipped, and no input makes Open fail
// other than the directory itself being unusable.
func Open(dir string, opt Options) (*Journal, *Recovery, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:         dir,
		opt:         opt,
		stop:        make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	rec, maxSeg, snapSeq, err := j.replayDir()
	if err != nil {
		return nil, nil, err
	}
	j.snapSeq = snapSeq
	// Appends always go to a fresh segment past everything replayed: the
	// old tail may have been truncated mid-frame, and never appending to
	// a file that predates this process keeps crash forensics simple.
	j.seg = maxSeg + 1
	if err := j.openSegment(j.seg); err != nil {
		return nil, nil, err
	}
	if opt.Fsync == FsyncBatch {
		go j.flusher()
	} else {
		close(j.flusherDone)
	}
	return j, rec, nil
}

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// SetSource registers the state snapshot used by automatic compaction:
// the still-pending accepts plus the completions worth keeping (cache
// contents, idempotency results). Called once by the owning server.
func (j *Journal) SetSource(fn func() ([]AcceptRecord, []CompleteRecord)) {
	j.mu.Lock()
	j.source = fn
	j.mu.Unlock()
}

// Stats returns a snapshot of the journal's lifetime counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	live := len(j.sealed) + 1 // sealed files plus the active segment
	active := j.seg
	j.mu.Unlock()
	return Stats{
		Appends:       j.appends.Load(),
		AppendBytes:   j.appendBytes.Load(),
		Fsyncs:        j.fsyncs.Load(),
		Rotations:     j.rotations.Load(),
		Compactions:   j.compactions.Load(),
		AppendErrors:  j.appendErrs.Load(),
		ActiveSegment: active,
		LiveSegments:  live,
	}
}

// AppendAccept journals an admitted job. It must happen-before the job
// is enqueued so a crash cannot hold work the journal never saw.
func (j *Journal) AppendAccept(r AcceptRecord) error {
	return j.append(record{Accept: &r})
}

// AppendComplete journals a finished job (any disposition).
func (j *Journal) AppendComplete(r CompleteRecord) error {
	return j.append(record{Complete: &r})
}

// AppendCompletes journals a group of finished jobs as one append: every
// record is marshalled and framed up front, then the concatenated frames go
// to the segment under a single lock acquisition — and, under FsyncAlways,
// a single fsync. This is the completion fan-out path for batched kernel
// dispatch, where one launch settles many journaled jobs at once; paying
// one durable write for the group instead of one per member keeps batching
// a win in FsyncAlways deployments. Each record is still an independent
// frame on disk, so replay is indistinguishable from individual appends.
func (j *Journal) AppendCompletes(rs []CompleteRecord) error {
	if len(rs) == 0 {
		return nil
	}
	var frames []byte
	for i := range rs {
		payload, err := json.Marshal(&record{Complete: &rs[i]})
		if err != nil {
			j.appendErrs.Add(1)
			return fmt.Errorf("journal: marshal: %w", err)
		}
		frames = encodeFrame(frames, payload)
	}

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.bw.Write(frames); err != nil {
		j.mu.Unlock()
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frames))
	j.appends.Add(int64(len(rs)))
	j.appendBytes.Add(int64(len(frames)))
	switch j.opt.Fsync {
	case FsyncAlways:
		if err := j.syncLocked(); err != nil {
			j.mu.Unlock()
			j.appendErrs.Add(1)
			return err
		}
	default:
		j.dirty = true
	}
	var rotateErr error
	if j.size >= j.opt.SegmentBytes {
		rotateErr = j.rotateLocked()
	}
	compact := j.shouldCompactLocked()
	j.mu.Unlock()
	if compact {
		go j.runCompaction()
	}
	if rotateErr != nil {
		j.appendErrs.Add(1)
		return rotateErr
	}
	return nil
}

func (j *Journal) append(rec record) error {
	payload, err := json.Marshal(&rec)
	if err != nil {
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: marshal: %w", err)
	}
	frame := encodeFrame(nil, payload)

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.bw.Write(frame); err != nil {
		j.mu.Unlock()
		j.appendErrs.Add(1)
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frame))
	j.appends.Add(1)
	j.appendBytes.Add(int64(len(frame)))
	switch j.opt.Fsync {
	case FsyncAlways:
		if err := j.syncLocked(); err != nil {
			j.mu.Unlock()
			j.appendErrs.Add(1)
			return err
		}
	default:
		j.dirty = true
	}
	var rotateErr error
	if j.size >= j.opt.SegmentBytes {
		rotateErr = j.rotateLocked()
	}
	compact := j.shouldCompactLocked()
	j.mu.Unlock()
	if compact {
		go j.runCompaction()
	}
	if rotateErr != nil {
		j.appendErrs.Add(1)
		return rotateErr
	}
	return nil
}

// syncLocked flushes the buffered writer and fsyncs the active segment.
func (j *Journal) syncLocked() error {
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	if j.opt.Fsync != FsyncNone {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.fsyncs.Add(1)
	}
	j.dirty = false
	return nil
}

func (j *Journal) openSegment(i uint64) error {
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(i)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f = f
	j.bw = bufio.NewWriterSize(f, 64<<10)
	if _, err := j.bw.Write(segmentMagic[:]); err != nil {
		return fmt.Errorf("journal: segment header: %w", err)
	}
	j.size = int64(len(segmentMagic))
	return nil
}

// rotateLocked seals the active segment (flushed and fsynced — a sealed
// segment is always fully durable) and opens the next.
func (j *Journal) rotateLocked() error {
	if err := j.syncLocked(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	j.sealed = append(j.sealed, j.seg)
	j.seg++
	j.rotations.Add(1)
	return j.openSegment(j.seg)
}

// shouldCompactLocked reports whether sealed segments have piled up past
// the threshold and a compaction is not already running.
func (j *Journal) shouldCompactLocked() bool {
	return j.opt.CompactAfterSegments >= 0 &&
		j.source != nil &&
		len(j.sealed) > j.opt.CompactAfterSegments &&
		!j.compacting.Load()
}

// runCompaction writes a snapshot of the owner's live state covering
// every sealed segment, then deletes them. Runs off the append path; a
// failed compaction leaves the sealed segments in place (still correct,
// just un-compacted) and will be retried at the next trigger.
func (j *Journal) runCompaction() {
	if !j.compacting.CompareAndSwap(false, true) {
		return
	}
	defer j.compacting.Store(false)
	j.compactOwned()
}

// compactOwned does the compaction work; the caller holds the
// j.compacting flag.
func (j *Journal) compactOwned() {
	j.mu.Lock()
	source := j.source
	if source == nil || j.closed {
		j.mu.Unlock()
		return
	}
	// The snapshot covers everything before the current active segment.
	// State is snapshotted AFTER this boundary is fixed: any record that
	// lands in the active segment concurrently is replayed on top of the
	// snapshot, and replay is idempotent (later records win).
	cover := j.seg
	sealed := append([]uint64(nil), j.sealed...)
	j.mu.Unlock()

	pending, completions := source()
	if err := j.writeSnapshot(cover, pending, completions); err != nil {
		return
	}

	j.mu.Lock()
	oldSnap := j.snapSeq
	j.snapSeq = cover
	var keep []uint64
	for _, s := range j.sealed {
		if s >= cover {
			keep = append(keep, s)
		}
	}
	j.sealed = keep
	j.mu.Unlock()

	for _, s := range sealed {
		if s < cover {
			_ = os.Remove(filepath.Join(j.dir, segmentName(s)))
		}
	}
	if oldSnap > 0 && oldSnap != cover {
		_ = os.Remove(filepath.Join(j.dir, snapshotName(oldSnap)))
	}
	j.compactions.Add(1)
}

// Compact forces a synchronous compaction from the registered source,
// waiting out any background compaction already in flight.
func (j *Journal) Compact() error {
	j.mu.Lock()
	if j.source == nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: no compaction source registered")
	}
	j.mu.Unlock()
	for !j.compacting.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond)
	}
	defer j.compacting.Store(false)
	j.compactOwned()
	return nil
}

// writeSnapshot writes the compacted state as snap-<cover>.snap in the
// same frame format as a segment, atomically (tmp + fsync + rename).
func (j *Journal) writeSnapshot(cover uint64, pending []AcceptRecord, completions []CompleteRecord) error {
	path := filepath.Join(j.dir, snapshotName(cover))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 256<<10)
	write := func(rec record) error {
		payload, err := json.Marshal(&rec)
		if err != nil {
			return err
		}
		_, err = bw.Write(encodeFrame(nil, payload))
		return err
	}
	if _, err := bw.Write(segmentMagic[:]); err != nil {
		f.Close()
		return err
	}
	for i := range completions {
		if err := write(record{Complete: &completions[i]}); err != nil {
			f.Close()
			return err
		}
	}
	for i := range pending {
		if err := write(record{Accept: &pending[i]}); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// flusher is the batch-mode group-commit loop.
func (j *Journal) flusher() {
	defer close(j.flusherDone)
	t := time.NewTicker(j.opt.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			// Flush under the lock, fsync outside it: holding mu across the
			// fsync would stall every append (and with it the accept and
			// completion paths) for the disk's sync latency each interval.
			j.mu.Lock()
			if j.closed || !j.dirty {
				j.mu.Unlock()
				continue
			}
			if err := j.bw.Flush(); err != nil {
				j.mu.Unlock()
				continue
			}
			j.dirty = false
			f := j.f
			j.mu.Unlock()
			// A concurrent rotation may have closed f; its data was synced by
			// the rotation itself and Sync on a closed *os.File fails safely.
			if f.Sync() == nil {
				j.fsyncs.Add(1)
			}
		}
	}
}

// Close flushes, fsyncs, and closes the journal. Appends after Close
// fail; Close is idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	close(j.stop)
	j.closed = true
	err := j.syncLocked()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.mu.Unlock()
	<-j.flusherDone
	return err
}

// listIndexed returns the sorted indices of dir entries matching
// prefix-NNNNNNNN ext.
func listIndexed(entries []os.DirEntry, prefix, ext string) []uint64 {
	var out []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if v, ok := parseIndexed(e.Name(), prefix, ext); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
