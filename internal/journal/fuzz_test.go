package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay throws arbitrary bytes at replay as both a segment and a
// snapshot. The invariant is absolute: Open never panics and never
// errors, whatever is on disk — a journal that can brick its own restart
// is worse than no journal.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(segmentMagic[:])
	f.Add(buildFuzzSeed())
	seed := buildFuzzSeed()
	f.Add(seed[:len(seed)-3])                      // torn tail
	f.Add(append(seed, 0xff, 0xff, 0xff, 0xff))    // garbage tail
	f.Add(append([]byte("XXXXXXXX"), seed[8:]...)) // bad magic
	flipped := buildFuzzSeed()
	flipped[len(flipped)/2] ^= 0x80
	f.Add(flipped) // bit flip mid-file

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, snapshotName(1)), data, 0o644); err != nil {
			t.Skip()
		}
		j, rec, err := Open(dir, Options{Fsync: FsyncNone})
		if err != nil {
			t.Fatalf("Open failed on fuzzed input: %v", err)
		}
		defer j.Close()
		if rec == nil {
			t.Fatal("nil recovery")
		}
		// Whatever survived must be internally consistent.
		for _, a := range rec.Pending {
			if a.ID == "" {
				continue // foreign/partial records may lack IDs; must not crash
			}
		}
		// The journal must accept appends after any recovery.
		if err := j.AppendAccept(AcceptRecord{ID: "post-fuzz", Fingerprint: 1, PolicyKey: 1}); err != nil {
			t.Fatalf("append after fuzzed recovery: %v", err)
		}
	})
}

func buildFuzzSeed() []byte {
	buf := append([]byte(nil), segmentMagic[:]...)
	buf = encodeFrame(buf, []byte(`{"a":{"id":"x","fp":"1","pk":"2","accepted_ms":1}}`))
	buf = encodeFrame(buf, []byte(`{"c":{"id":"x","fp":"1","pk":"2","disp":"ok","num_colors":2,"completed_ms":2}}`))
	return buf
}
