package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func followAccept(id string) AcceptRecord {
	return AcceptRecord{ID: id, Fingerprint: 7, PolicyKey: 9, Wire: json.RawMessage(`{"gen":"rand:100:0.05:1"}`)}
}

func followComplete(id string) CompleteRecord {
	return CompleteRecord{ID: id, Fingerprint: 7, PolicyKey: 9, Disposition: DispOK, NumColors: 3, ColorsB64: EncodeColors([]int32{0, 1, 2})}
}

// A follower tailing a live journal must converge to exactly the state
// Open would recover: completed jobs out of pending, newest completions
// kept.
func TestFollowerTailsLiveJournal(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFollower(dir)

	// Accepts with no completions: all pending.
	for _, id := range []string{"a", "b", "c"} {
		if err := j.AppendAccept(followAccept(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Recovery().Pending); got != 3 {
		t.Fatalf("pending after accepts = %d, want 3", got)
	}

	// Complete two; the follower must retire them incrementally.
	if err := j.AppendComplete(followComplete("a")); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendComplete(followComplete("c")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	rec := f.Recovery()
	if len(rec.Pending) != 1 || rec.Pending[0].ID != "b" {
		t.Fatalf("pending = %+v, want just b", rec.Pending)
	}

	// Force rotations so the follower crosses sealed segments.
	for i := 0; i < 200; i++ {
		if err := j.AppendAccept(followAccept("bulk")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.AppendComplete(followComplete("bulk")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Poll(); err != nil {
		t.Fatal(err)
	}
	rec = f.Recovery()
	if len(rec.Pending) != 1 || rec.Pending[0].ID != "b" {
		t.Fatalf("pending after bulk = %d records, want just b", len(rec.Pending))
	}
	if f.Stats().Segments < 2 {
		t.Fatalf("segments followed = %d, want rotation coverage", f.Stats().Segments)
	}

	// Cross-check against a fresh Open of the same directory.
	j2, open, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(open.Pending) != len(rec.Pending) {
		t.Fatalf("follower pending %d != Open pending %d", len(rec.Pending), len(open.Pending))
	}
}

// A torn tail on the ACTIVE segment is in-flight data, not corruption:
// the follower must wait it out, then pick the frame up once the writer
// completes it.
func TestFollowerWaitsOutTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, segmentName(1))

	payload, err := json.Marshal(&record{Accept: &AcceptRecord{ID: "x", Wire: json.RawMessage(`{}`)}})
	if err != nil {
		t.Fatal(err)
	}
	frame := encodeFrame(nil, payload)

	full := append([]byte{}, segmentMagic[:]...)
	full = append(full, frame...)
	full = append(full, frame[:len(frame)/2]...) // second frame half-flushed

	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFollower(dir)
	if n, err := f.Poll(); err != nil || n != 1 {
		t.Fatalf("first poll applied %d (%v), want 1", n, err)
	}
	if f.Stats().TornTails != 0 {
		t.Fatalf("active-segment tail counted as torn")
	}

	// The writer finishes the flush; the same bytes now decode.
	if err := os.WriteFile(path, append(append([]byte{}, segmentMagic[:]...), append(frame, frame...)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := f.Poll(); err != nil || n != 1 {
		t.Fatalf("second poll applied %d (%v), want 1", n, err)
	}
}

// OpenAppend must land its active segment past every existing file and
// leave prior records untouched for a later full replay.
func TestOpenAppendDoesNotReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendAccept(followAccept("old")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenAppend(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Stats().ActiveSegment < 2 {
		t.Fatalf("active segment = %d, want past the replayed one", j2.Stats().ActiveSegment)
	}
	if err := j2.AppendAccept(followAccept("new")); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	j3, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(rec.Pending) != 2 {
		t.Fatalf("full replay pending = %d, want both the old and new accepts", len(rec.Pending))
	}
}
