package gpuprim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gcolor/internal/simt"
)

func scanDevice() *simt.Device {
	d := simt.NewDevice()
	d.NumCUs = 4
	d.WavefrontWidth = 8
	d.WorkgroupSize = 16
	d.Workers = 2
	return d
}

func hostExclusiveScan(src []int32) ([]int32, int32) {
	out := make([]int32, len(src))
	var sum int32
	for i, v := range src {
		out[i] = sum
		sum += v
	}
	return out, sum
}

func TestExclusiveScanSingleBlock(t *testing.T) {
	d := scanDevice()
	src := d.BindInt32([]int32{3, 1, 4, 1, 5, 9, 2, 6})
	dst := d.AllocInt32(8)
	total := ExclusiveScan(d, src, dst, 8, nil)
	want, wantTotal := hostExclusiveScan(src.Data())
	if total != wantTotal {
		t.Errorf("total = %d, want %d", total, wantTotal)
	}
	for i := range want {
		if dst.Data()[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst.Data(), want)
		}
	}
}

func TestExclusiveScanMultiBlock(t *testing.T) {
	d := scanDevice() // block 16
	const n = 1000    // 63 blocks -> recursion depth 2
	rng := rand.New(rand.NewSource(5))
	host := make([]int32, n)
	for i := range host {
		host[i] = int32(rng.Intn(10))
	}
	src := d.BindInt32(host)
	dst := d.AllocInt32(n)
	var launches int
	total := ExclusiveScan(d, src, dst, n, func(rr *simt.RunResult) { launches++ })
	want, wantTotal := hostExclusiveScan(host)
	if total != wantTotal {
		t.Fatalf("total = %d, want %d", total, wantTotal)
	}
	for i := range want {
		if dst.Data()[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, dst.Data()[i], want[i])
		}
	}
	if launches < 3 {
		t.Errorf("multi-block scan used %d launches, want >= 3 (block scan, sums scan, add)", launches)
	}
}

func TestExclusiveScanEmptyAndOne(t *testing.T) {
	d := scanDevice()
	dst := d.AllocInt32(4)
	if total := ExclusiveScan(d, d.AllocInt32(4), dst, 0, nil); total != 0 {
		t.Errorf("empty scan total = %d", total)
	}
	src := d.BindInt32([]int32{7})
	if total := ExclusiveScan(d, src, dst, 1, nil); total != 7 || dst.Data()[0] != 0 {
		t.Errorf("one-element scan: total=%d dst0=%d", total, dst.Data()[0])
	}
}

func TestExclusiveScanPanics(t *testing.T) {
	d := scanDevice()
	buf := d.AllocInt32(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range n did not panic")
			}
		}()
		ExclusiveScan(d, buf, buf, 10, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-power-of-two workgroup did not panic")
			}
		}()
		bad := scanDevice()
		bad.WorkgroupSize = 24
		ExclusiveScan(bad, bad.AllocInt32(32), bad.AllocInt32(32), 32, nil)
	}()
}

func TestCompactBasic(t *testing.T) {
	d := scanDevice()
	items := d.BindInt32([]int32{10, 11, 12, 13, 14, 15})
	flags := d.BindInt32([]int32{1, 0, 1, 1, 0, 1})
	out := d.AllocInt32(6)
	scratch := d.AllocInt32(6)
	kept := Compact(d, items, flags, out, scratch, 6, nil)
	if kept != 4 {
		t.Fatalf("kept = %d, want 4", kept)
	}
	want := []int32{10, 12, 13, 15}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("out = %v, want prefix %v", out.Data()[:kept], want)
		}
	}
}

func TestCompactAllAndNone(t *testing.T) {
	d := scanDevice()
	items := d.BindInt32([]int32{1, 2, 3})
	out := d.AllocInt32(3)
	scratch := d.AllocInt32(3)
	all := d.BindInt32([]int32{1, 1, 1})
	if kept := Compact(d, items, all, out, scratch, 3, nil); kept != 3 {
		t.Errorf("all-flags kept = %d", kept)
	}
	none := d.BindInt32([]int32{0, 0, 0})
	if kept := Compact(d, items, none, out, scratch, 3, nil); kept != 0 {
		t.Errorf("no-flags kept = %d", kept)
	}
	if kept := Compact(d, items, all, out, scratch, 0, nil); kept != 0 {
		t.Errorf("n=0 kept = %d", kept)
	}
}

// Property: device scan and compaction match their host references for
// arbitrary inputs and any power-of-two workgroup size.
func TestScanCompactProperty(t *testing.T) {
	f := func(raw []uint8, wgExp uint8) bool {
		d := simt.NewDevice()
		d.NumCUs = 3
		d.WavefrontWidth = 4
		d.WorkgroupSize = 4 << (wgExp % 4) // 4..32
		d.Workers = 2
		n := len(raw)
		host := make([]int32, n)
		flagsHost := make([]int32, n)
		for i, r := range raw {
			host[i] = int32(r % 7)
			flagsHost[i] = int32(r % 2)
		}
		src := d.BindInt32(host)
		dst := d.AllocInt32(n)
		total := ExclusiveScan(d, src, dst, n, nil)
		want, wantTotal := hostExclusiveScan(host)
		if total != wantTotal {
			return false
		}
		for i := range want {
			if dst.Data()[i] != want[i] {
				return false
			}
		}
		// Compaction against the host reference.
		items := d.BindInt32(host)
		flags := d.BindInt32(flagsHost)
		out := d.AllocInt32(n)
		scratch := d.AllocInt32(n)
		kept := Compact(d, items, flags, out, scratch, n, nil)
		var ref []int32
		for i, f := range flagsHost {
			if f != 0 {
				ref = append(ref, host[i])
			}
		}
		if kept != len(ref) {
			return false
		}
		for i, w := range ref {
			if out.Data()[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
