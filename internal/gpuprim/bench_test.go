package gpuprim

import (
	"math/rand"
	"testing"

	"gcolor/internal/simt"
)

func BenchmarkExclusiveScan(b *testing.B) {
	d := simt.NewDevice()
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	host := make([]int32, n)
	for i := range host {
		host[i] = int32(rng.Intn(4))
	}
	src := d.BindInt32(host)
	dst := d.AllocInt32(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExclusiveScan(d, src, dst, n, nil)
	}
}

func BenchmarkCompact(b *testing.B) {
	d := simt.NewDevice()
	const n = 1 << 16
	rng := rand.New(rand.NewSource(2))
	items := make([]int32, n)
	flags := make([]int32, n)
	for i := range items {
		items[i] = int32(i)
		flags[i] = int32(rng.Intn(2))
	}
	itemsB := d.BindInt32(items)
	flagsB := d.BindInt32(flags)
	out := d.AllocInt32(n)
	scratch := d.AllocInt32(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compact(d, itemsB, flagsB, out, scratch, n, nil)
	}
}
