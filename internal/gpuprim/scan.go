// Package gpuprim provides device-side parallel primitives on the SIMT
// simulator: work-efficient exclusive prefix sum (Blelloch scan) and
// flag-based stream compaction. The coloring algorithms use compaction to
// rebuild their worklists each iteration the way real GPU implementations
// do — with properly costed kernels and a deterministic, order-preserving
// result — instead of atomic appends whose output order depends on timing.
package gpuprim

import (
	"fmt"

	"gcolor/internal/simt"
)

// Charger receives every kernel launch a primitive performs so the caller
// can fold the costs into its own accounting.
type Charger func(*simt.RunResult)

// ScanScratch owns the intermediate block-sum buffers a scan needs, one
// pair per recursion level, so repeated scans by a long-lived caller (the
// coloring runner compacts its worklist every iteration) allocate nothing.
// Buffers are kept at the exact length each level needs and re-acquired
// from the device arena when the length changes, which keeps a warm
// scratch bit-identical to a cold one — including under fault injection,
// where buffer bounds are observable. A ScanScratch belongs to one device
// and must not be used concurrently.
type ScanScratch struct {
	dev    *simt.Device
	levels []scanLevel
}

type scanLevel struct {
	sums, offs *simt.BufInt32
}

// NewScanScratch returns an empty scratch for dev; buffers are acquired
// lazily on first use.
func NewScanScratch(dev *simt.Device) *ScanScratch {
	return &ScanScratch{dev: dev}
}

// Release hands every held buffer back to the device arena. The scratch
// remains usable and will re-acquire on next use.
func (s *ScanScratch) Release() {
	for _, l := range s.levels {
		if l.sums != nil {
			s.dev.Release(l.sums)
		}
		if l.offs != nil {
			s.dev.Release(l.offs)
		}
	}
	s.levels = s.levels[:0]
}

// fit returns *pb resized to exactly n elements, zeroed, acquiring or
// re-acquiring from the device arena as needed.
func (s *ScanScratch) fit(pb **simt.BufInt32, n int) *simt.BufInt32 {
	if b := *pb; b != nil {
		if b.Len() == n {
			b.Fill(0)
			return b
		}
		s.dev.Release(b)
	}
	*pb = s.dev.AllocInt32(n)
	return *pb
}

func (s *ScanScratch) level(depth int) *scanLevel {
	for len(s.levels) <= depth {
		s.levels = append(s.levels, scanLevel{})
	}
	return &s.levels[depth]
}

// ExclusiveScan computes the exclusive prefix sum of src[0:n] into dst[0:n]
// on the device and returns the total sum. dst must not alias src. Kernel
// launches are reported to charge (which may be nil). Intermediate buffers
// are drawn from and returned to the device arena per call; callers that
// scan repeatedly should hold a ScanScratch and use ExclusiveScanWith.
//
// The implementation is the classic three-phase approach: block-level
// Blelloch scans in LDS, a recursive scan of the per-block totals, and a
// uniform add of the block offsets.
func ExclusiveScan(dev *simt.Device, src, dst *simt.BufInt32, n int, charge Charger) int32 {
	ss := NewScanScratch(dev)
	defer ss.Release()
	return ExclusiveScanWith(dev, src, dst, n, ss, charge)
}

// ExclusiveScanWith is ExclusiveScan drawing its intermediate buffers from
// scratch, which retains them for the next call.
func ExclusiveScanWith(dev *simt.Device, src, dst *simt.BufInt32, n int, scratch *ScanScratch, charge Charger) int32 {
	if n < 0 || n > src.Len() || n > dst.Len() {
		panic(fmt.Sprintf("gpuprim: scan length %d out of range (src %d, dst %d)", n, src.Len(), dst.Len()))
	}
	if b := dev.WorkgroupSize; b&(b-1) != 0 {
		panic(fmt.Sprintf("gpuprim: Blelloch block scan needs a power-of-two workgroup size, got %d", b))
	}
	if charge == nil {
		charge = func(*simt.RunResult) {}
	}
	if scratch == nil || scratch.dev != dev {
		panic("gpuprim: scan scratch missing or bound to another device")
	}
	return scan(dev, src, dst, n, 0, scratch, charge)
}

func scan(dev *simt.Device, src, dst *simt.BufInt32, n, depth int, scratch *ScanScratch, charge Charger) int32 {
	if n == 0 {
		return 0
	}
	block := dev.WorkgroupSize
	numBlocks := (n + block - 1) / block
	lv := scratch.level(depth)
	blockSums := scratch.fit(&lv.sums, numBlocks)

	charge(blockScanKernel(dev, src, dst, blockSums, n))

	if numBlocks == 1 {
		return blockSums.Data()[0]
	}
	// Scan the block sums (recursively; one level suffices for millions of
	// elements) and add each block's offset to its elements.
	sumOffsets := scratch.fit(&lv.offs, numBlocks)
	total := scan(dev, blockSums, sumOffsets, numBlocks, depth+1, scratch, charge)
	charge(uniformAddKernel(dev, dst, sumOffsets, n))
	return total
}

// blockScanKernel performs an exclusive Blelloch scan of each workgroup-
// sized block in LDS and records the block totals.
func blockScanKernel(dev *simt.Device, src, dst, blockSums *simt.BufInt32, n int) *simt.RunResult {
	block := int32(dev.WorkgroupSize)
	numBlocks := (n + dev.WorkgroupSize - 1) / dev.WorkgroupSize
	return dev.RunCoop("scan-block", numBlocks, func(g *simt.GroupCtx) {
		lds := g.AllocLDS(int(block))
		base := g.ID() * block
		// Load (zero-padded past n).
		g.ForEach(block, func(c *simt.Ctx, i int32) {
			v := int32(0)
			if base+i < int32(n) {
				v = c.Ld(src, base+i)
			}
			c.LdsSt(lds, i, v)
		})
		g.Barrier()
		// Up-sweep (reduce).
		for stride := int32(1); stride < block; stride *= 2 {
			s := stride
			g.ForEach(block/(2*s), func(c *simt.Ctx, i int32) {
				a := 2*s*i + s - 1
				b := 2*s*i + 2*s - 1
				c.Op(1)
				c.LdsSt(lds, b, c.LdsLd(lds, a)+c.LdsLd(lds, b))
			})
			g.Barrier()
		}
		// Record the block total and clear the root.
		g.One(func(c *simt.Ctx) {
			c.St(blockSums, g.ID(), c.LdsLd(lds, block-1))
			c.LdsSt(lds, block-1, 0)
		})
		g.Barrier()
		// Down-sweep.
		for stride := block / 2; stride >= 1; stride /= 2 {
			s := stride
			g.ForEach(block/(2*s), func(c *simt.Ctx, i int32) {
				a := 2*s*i + s - 1
				b := 2*s*i + 2*s - 1
				va := c.LdsLd(lds, a)
				vb := c.LdsLd(lds, b)
				c.Op(1)
				c.LdsSt(lds, a, vb)
				c.LdsSt(lds, b, va+vb)
			})
			g.Barrier()
		}
		// Store.
		g.ForEach(block, func(c *simt.Ctx, i int32) {
			if base+i < int32(n) {
				c.St(dst, base+i, c.LdsLd(lds, i))
			}
		})
	})
}

// uniformAddKernel adds each block's scanned offset to its elements.
func uniformAddKernel(dev *simt.Device, dst, offsets *simt.BufInt32, n int) *simt.RunResult {
	wg := int32(dev.WorkgroupSize)
	return dev.Run("scan-add", n, func(c *simt.Ctx) {
		off := c.Ld(offsets, c.Global/wg)
		c.Op(1)
		c.St(dst, c.Global, c.Ld(dst, c.Global)+off)
	})
}

// Compact copies items[i] (for i in [0, n)) whose flags[i] != 0 into out,
// preserving order, and returns the number kept. scratch must hold at least
// n elements and not alias the other buffers; it receives the scanned
// offsets. Kernel launches are reported to charge (which may be nil).
// Intermediate scan buffers are drawn from and returned to the device
// arena per call; repeated callers should hold a ScanScratch and use
// CompactWith.
func Compact(dev *simt.Device, items, flags, out, scratch *simt.BufInt32, n int, charge Charger) int {
	if n == 0 {
		return 0
	}
	ss := NewScanScratch(dev)
	defer ss.Release()
	return CompactWith(dev, items, flags, out, scratch, n, ss, charge)
}

// CompactWith is Compact drawing the scan's intermediate buffers from ss,
// which retains them for the next call.
func CompactWith(dev *simt.Device, items, flags, out, scratch *simt.BufInt32, n int, ss *ScanScratch, charge Charger) int {
	if n == 0 {
		return 0
	}
	if charge == nil {
		charge = func(*simt.RunResult) {}
	}
	// Flags are documented 0/1; scan them directly.
	kept := ExclusiveScanWith(dev, flags, scratch, n, ss, charge)
	charge(dev.Run("compact-scatter", n, func(c *simt.Ctx) {
		if c.Ld(flags, c.Global) != 0 {
			c.St(out, c.Ld(scratch, c.Global), c.Ld(items, c.Global))
		}
	}))
	return int(kept)
}
