package netchaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestDecideDeterministic(t *testing.T) {
	lh := fnv1a64("10.0.0.7:8421")
	for seed := uint64(1); seed <= 3; seed++ {
		for n := uint64(1); n <= 200; n++ {
			a := decide(seed, classDrop, lh, n, 0.3)
			b := decide(seed, classDrop, lh, n, 0.3)
			if a != b {
				t.Fatalf("decide not deterministic at seed=%d n=%d", seed, n)
			}
		}
	}
	if decide(42, classDrop, lh, 1, 0) {
		t.Fatal("rate 0 fired")
	}
	if !decide(42, classDrop, lh, 1, 1) {
		t.Fatal("rate 1 did not fire")
	}
}

func TestDecideRateRoughlyHonored(t *testing.T) {
	lh := fnv1a64("worker:1")
	hits := 0
	const trials = 20000
	for n := uint64(1); n <= trials; n++ {
		if decide(7, classDrop, lh, n, 0.25) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.20 || got > 0.30 {
		t.Fatalf("drop rate 0.25 observed %.3f", got)
	}
}

func TestInjectorSameSeedSameDecisions(t *testing.T) {
	run := func() []bool {
		in := New(99)
		in.DropRate = 0.5
		out := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			out = append(out, in.traverse("w:1").drop)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded decision stream diverged at %d", i)
		}
	}
}

func TestArmDisarm(t *testing.T) {
	in := New(1)
	in.DropRate = 1
	if !in.Armed() {
		t.Fatal("zero value should be armed")
	}
	if !in.traverse("w:1").drop {
		t.Fatal("armed traversal should drop at rate 1")
	}
	in.Disarm()
	if v := in.traverse("w:1"); v.drop || v.blocked || v.delay != 0 {
		t.Fatalf("disarmed traversal faulted: %+v", v)
	}
	in.Arm()
	if !in.traverse("w:1").drop {
		t.Fatal("re-armed traversal should drop again")
	}
	st := in.Stats()
	if st.Drops != 2 || st.Requests != 2 {
		t.Fatalf("stats = %+v, want 2 drops over 2 armed requests", st)
	}
}

func TestTransportPassThrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	cl := &http.Client{Transport: New(5).Transport(nil)}
	resp, err := cl.Get(srv.URL)
	if err != nil {
		t.Fatalf("healthy link: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q", body)
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.Copy(io.Discard, r.Body)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	in := New(5)
	cl := &http.Client{Transport: in.Transport(nil)}
	in.Partition(host)
	_, err := cl.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	var ue *url.Error
	if !errors.As(err, &ue) || !errors.Is(ue.Err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	if served.Load() != 0 {
		t.Fatal("partitioned request reached the peer")
	}

	in.Heal(host)
	if _, err := cl.Get(srv.URL); err != nil {
		t.Fatalf("healed link: %v", err)
	}
	if in.Stats().Blocked != 1 {
		t.Fatalf("blocked = %d, want 1", in.Stats().Blocked)
	}
}

func TestTransportOneWayPartitionDeliversRequest(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	in := New(5)
	cl := &http.Client{Transport: in.Transport(nil)}
	in.PartitionOneWay(host)
	_, err := cl.Get(srv.URL)
	if err == nil {
		t.Fatal("one-way partitioned response delivered")
	}
	var ue *url.Error
	if !errors.As(err, &ue) || !errors.Is(ue.Err, ErrReset) {
		t.Fatalf("err = %v, want ErrReset", err)
	}
	if served.Load() != 1 {
		t.Fatalf("peer served %d requests, want 1 (request side must pass)", served.Load())
	}
	if in.Stats().Resets != 1 {
		t.Fatalf("resets = %d, want 1", in.Stats().Resets)
	}
}

func TestTransportLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	in := New(5)
	in.SlowHost(host, 60*time.Millisecond)
	cl := &http.Client{Transport: in.Transport(nil)}
	start := time.Now()
	if _, err := cl.Get(srv.URL); err != nil {
		t.Fatalf("slow link: %v", err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("latency not injected: %v", el)
	}
	if in.Stats().Delays != 1 {
		t.Fatalf("delays = %d, want 1", in.Stats().Delays)
	}
	in.SlowHost(host, 0)
	start = time.Now()
	if _, err := cl.Get(srv.URL); err != nil {
		t.Fatalf("restored link: %v", err)
	}
	if el := time.Since(start); el > 40*time.Millisecond {
		t.Fatalf("latency override not cleared: %v", el)
	}
}

func TestProxyForwardsAndPartitions(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")

	in := New(11)
	p, err := NewProxy("127.0.0.1:0", target, in)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	cl := &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	get := func() (string, error) {
		resp, err := cl.Get(fmt.Sprintf("http://%s/", p.Addr()))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	body, err := get()
	if err != nil || body != "pong" {
		t.Fatalf("healthy proxy: body=%q err=%v", body, err)
	}

	in.Partition(target)
	time.Sleep(50 * time.Millisecond) // let the sever loop cut anything live
	if _, err := get(); err == nil {
		t.Fatal("partitioned proxy served a request")
	}

	in.Heal(target)
	body, err = get()
	if err != nil || body != "pong" {
		t.Fatalf("healed proxy: body=%q err=%v", body, err)
	}
}

func TestProxyLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")

	in := New(12)
	in.SlowHost(target, 60*time.Millisecond)
	p, err := NewProxy("127.0.0.1:0", target, in)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	cl := &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	start := time.Now()
	resp, err := cl.Get(fmt.Sprintf("http://%s/", p.Addr()))
	if err != nil {
		t.Fatalf("slow proxy: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("proxy latency not injected: %v", el)
	}
}
