package netchaos

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy carries real TCP connections through the injector so real-process
// drills (gcbench -partition) can fault the wire between a coordinator and
// a worker that live in separate OS processes. The proxy listens on its
// own address; the faulted peer advertises the proxy address to the fleet,
// and the proxy forwards to the peer's real address.
//
// Fault mapping for stream transport:
//
//   - partition (blockRequests): new connections are accepted and
//     immediately closed, and all established connections are severed;
//   - drop: the connection is closed before any bytes are forwarded;
//   - latency: forwarding of each accepted connection is delayed;
//   - one-way partition / reset: client→peer bytes flow (the peer sees and
//     processes the request) but peer→client bytes are discarded and the
//     connection is then severed.
type Proxy struct {
	in     *Injector
	ln     net.Listener
	target string

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on listenAddr (use "127.0.0.1:0" for an
// ephemeral port) forwarding to target ("host:port"). Fault decisions are
// keyed by target, so Injector controls like Partition(target) and
// SlowHost(target) apply to every connection through this proxy.
func NewProxy(listenAddr, target string, in *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{in: in, ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	go p.severLoop()
	return p, nil
}

// Addr returns the proxy's listen address ("host:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target returns the upstream address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// Close stops the proxy and severs all connections through it.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.severAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.serve(c)
	}
}

// severLoop enforces partitions on established connections: a partition
// raised mid-flight must cut flows that are already open, not just refuse
// new ones.
func (p *Proxy) severLoop() {
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for range t.C {
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		if p.in.RequestsBlocked(p.target) {
			p.severAll()
		}
	}
}

func (p *Proxy) severAll() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	defer client.Close()

	v := p.in.traverse(p.target)
	if v.blocked || v.drop {
		return
	}
	if v.delay > 0 {
		p.in.delays.Add(1)
		time.Sleep(v.delay)
	}

	upstream, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		return
	}
	defer upstream.Close()
	if !p.track(client) || !p.track(upstream) {
		return
	}
	defer p.untrack(client)
	defer p.untrack(upstream)

	done := make(chan struct{}, 2)
	// client → upstream: always forwarded (the peer sees the request even
	// under a one-way partition).
	go func() {
		io.Copy(upstream, client)
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// upstream → client: discarded when the response path is cut.
	go func() {
		if v.reset {
			io.Copy(io.Discard, upstream)
			p.in.resets.Add(1)
			client.Close()
		} else {
			buf := make([]byte, 32<<10)
			for {
				if p.in.ResponsesBlocked(p.target) {
					p.in.resets.Add(1)
					client.Close()
					break
				}
				upstream.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
				n, err := upstream.Read(buf)
				if n > 0 {
					if _, werr := client.Write(buf[:n]); werr != nil {
						break
					}
				}
				if err != nil {
					if ne, ok := err.(net.Error); ok && ne.Timeout() {
						continue
					}
					break
				}
			}
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
