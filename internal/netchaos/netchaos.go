// Package netchaos is a deterministic, seeded network fault layer for the
// cluster control plane — the wire-level sibling of simt.FaultInjector.
//
// It injects the failure modes real fleets die from but clean-crash tests
// never exercise: added latency (a gray worker that still answers 2xx),
// request drops (the peer never sees the call), response resets (the peer
// did the work but the caller sees a transport error — the dangerous
// asymmetric case for exactly-once accounting), and full or one-way
// partitions between any coordinator/worker pair.
//
// Mirroring simt.FaultInjector:
//
//   - every probabilistic decision is a pure function of (Seed, link,
//     per-link ordinal), so a run is reproducible given the seed and the
//     order of traversals on each link;
//   - Arm/Disarm is a single atomic gate so faults can be toggled mid-run
//     without locks on the hot path;
//   - every injected fault bumps an atomic counter surfaced by Stats.
//
// Two frontends share one Injector: Transport wraps an http.RoundTripper
// for in-process clients (the coordinator's worker client in tests and the
// gray-failure drill), and Proxy carries real TCP connections for
// real-process drills (gcbench -partition fronts one worker with it).
package netchaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Fault classes, used to salt the per-class decision streams so e.g. the
// drop stream and the reset stream on one link are independent.
const (
	classDrop = iota + 1
	classReset
	classJitter
)

// Errors returned to the caller when a fault fires. They surface through
// http.Client wrapped in *url.Error, so match with errors.Is on the
// unwrapped chain.
var (
	ErrDropped     = errors.New("netchaos: request dropped")
	ErrReset       = errors.New("netchaos: connection reset")
	ErrPartitioned = errors.New("netchaos: link partitioned")
)

// Stats is an atomic snapshot of injected faults.
type Stats struct {
	Requests int64 // traversals observed while armed
	Drops    int64 // requests discarded before reaching the peer
	Resets   int64 // responses discarded after the peer processed the request
	Delays   int64 // traversals that had latency added
	Blocked  int64 // traversals refused by a partition rule
}

// Injected reports the total number of faults injected.
func (s Stats) Injected() int64 { return s.Drops + s.Resets + s.Delays + s.Blocked }

// link holds the per-destination fault state. Links are keyed by the
// destination host:port, created on first traversal, and never removed.
type link struct {
	ordinal        atomic.Uint64 // traversal counter; drives the decision stream
	blockRequests  atomic.Bool   // partition: nothing reaches the peer
	blockResponses atomic.Bool   // asymmetric partition: peer sees the request, caller never sees the reply
	latencyNS      atomic.Int64  // per-link added latency; -1 means "use injector default"
}

// Injector decides, deterministically, what happens to each traversal of
// each link. The zero value is armed with no faults configured; use New to
// get defaulted per-link latency handling.
type Injector struct {
	// Seed decorrelates runs. Two injectors with the same Seed and the same
	// per-link traversal order make identical decisions.
	Seed uint64
	// DropRate is the probability a request is discarded before the peer
	// sees it. DropRate 1.0 drops everything.
	DropRate float64
	// ResetRate is the probability a response is discarded after the peer
	// has fully processed the request.
	ResetRate float64
	// Latency is added to every traversal of every link that has no
	// per-link override. Jitter adds a deterministic extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// disarmed is inverted so the zero value is armed, matching
	// simt.FaultInjector.
	disarmed atomic.Bool

	mu    sync.Mutex
	links map[string]*link

	requests atomic.Int64
	drops    atomic.Int64
	resets   atomic.Int64
	delays   atomic.Int64
	blocked  atomic.Int64
}

// New returns an Injector with the given seed and no faults configured.
// Configure rates/latency directly, or use the per-host controls.
func New(seed uint64) *Injector {
	return &Injector{Seed: seed}
}

// Arm enables fault injection (the initial state).
func (in *Injector) Arm() { in.disarmed.Store(false) }

// Disarm heals the network: all traversals pass through untouched until
// Arm is called again. Partition rules and latency overrides are kept but
// dormant.
func (in *Injector) Disarm() { in.disarmed.Store(true) }

// Armed reports whether faults are live.
func (in *Injector) Armed() bool { return !in.disarmed.Load() }

// Stats returns a snapshot of injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Requests: in.requests.Load(),
		Drops:    in.drops.Load(),
		Resets:   in.resets.Load(),
		Delays:   in.delays.Load(),
		Blocked:  in.blocked.Load(),
	}
}

func (in *Injector) link(host string) *link {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.links == nil {
		in.links = make(map[string]*link)
	}
	l := in.links[host]
	if l == nil {
		l = &link{}
		l.latencyNS.Store(-1)
		in.links[host] = l
	}
	return l
}

// Partition blackholes the link to host in both directions: requests are
// refused and nothing reaches the peer.
func (in *Injector) Partition(host string) {
	l := in.link(host)
	l.blockRequests.Store(true)
	l.blockResponses.Store(true)
}

// PartitionOneWay models the asymmetric failure: requests reach the peer
// and are fully processed, but every response is lost. The caller sees a
// reset; the peer saw a normal request.
func (in *Injector) PartitionOneWay(host string) {
	l := in.link(host)
	l.blockRequests.Store(false)
	l.blockResponses.Store(true)
}

// SlowHost overrides the added latency for one host (the gray-failure
// knob: the peer still answers, just slowly). d <= 0 restores the
// injector-wide default.
func (in *Injector) SlowHost(host string, d time.Duration) {
	l := in.link(host)
	if d <= 0 {
		l.latencyNS.Store(-1)
		return
	}
	l.latencyNS.Store(int64(d))
}

// Heal clears partition rules and latency overrides for one host.
func (in *Injector) Heal(host string) {
	l := in.link(host)
	l.blockRequests.Store(false)
	l.blockResponses.Store(false)
	l.latencyNS.Store(-1)
}

// HealAll clears partition rules and latency overrides on every link.
func (in *Injector) HealAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, l := range in.links {
		l.blockRequests.Store(false)
		l.blockResponses.Store(false)
		l.latencyNS.Store(-1)
	}
}

// RequestsBlocked reports whether new requests to host are currently
// refused by a partition rule (used by Proxy accept loops).
func (in *Injector) RequestsBlocked(host string) bool {
	return in.Armed() && in.link(host).blockRequests.Load()
}

// ResponsesBlocked reports whether responses from host are discarded.
func (in *Injector) ResponsesBlocked(host string) bool {
	return in.Armed() && in.link(host).blockResponses.Load()
}

// mix64 is the splitmix64 finalizer — the same mixer the cluster's
// rendezvous hash uses.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv1a64 hashes the link key (destination host:port).
func fnv1a64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// decide is the pure decision function: true iff the fault of the given
// class fires on the n-th traversal of the link. rate <= 0 never fires;
// rate >= 1 always fires.
func decide(seed uint64, class int, linkHash, ordinal uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	x := mix64(seed ^ linkHash ^ (uint64(class) * 0x9e3779b97f4a7c15) ^ mix64(ordinal))
	// Map the top 53 bits to [0, 1).
	return float64(x>>11)/float64(1<<53) < rate
}

// verdict is what the injector decided for one traversal of one link.
type verdict struct {
	drop    bool // discard before the peer sees it
	reset   bool // deliver, then discard the response
	blocked bool // refused by a partition rule (counts separately from drop)
	delay   time.Duration
}

// traverse consumes one ordinal on the link to host and returns the fate
// of that traversal. Disarmed injectors pass everything through without
// consuming ordinals, so traffic sent while healed does not shift the
// decision stream for later armed traversals.
func (in *Injector) traverse(host string) verdict {
	if !in.Armed() {
		return verdict{}
	}
	in.requests.Add(1)
	l := in.link(host)
	n := l.ordinal.Add(1)
	lh := fnv1a64(host)

	var v verdict
	if l.blockRequests.Load() {
		v.blocked = true
		in.blocked.Add(1)
		return v
	}
	if decide(in.Seed, classDrop, lh, n, in.DropRate) {
		v.drop = true
		in.drops.Add(1)
		return v
	}
	v.reset = l.blockResponses.Load() || decide(in.Seed, classReset, lh, n, in.ResetRate)

	d := in.Latency
	if ov := l.latencyNS.Load(); ov >= 0 {
		d = time.Duration(ov)
	}
	if d > 0 && in.Jitter > 0 {
		j := mix64(in.Seed ^ lh ^ mix64(n) ^ mix64(classJitter))
		d += time.Duration(j % uint64(in.Jitter))
	}
	v.delay = d
	return v
}

// sleep waits for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Transport wraps base so every request through it traverses the injector,
// keyed by the request's destination host. A nil base uses
// http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper. Faults map to the wire-level
// failure the caller of a real network would see:
//
//   - partition/drop: the request body is consumed and discarded, the peer
//     never sees the call, and the caller gets a transport error;
//   - latency: the traversal stalls before the request is forwarded
//     (respecting the request context);
//   - reset / one-way partition: the request is forwarded and fully
//     processed by the peer, then the response is discarded and the caller
//     gets a reset error — the peer and caller now disagree about whether
//     the call happened.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	v := t.in.traverse(req.URL.Host)
	if v.blocked || v.drop {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		if v.blocked {
			return nil, fmt.Errorf("%w: %s", ErrPartitioned, req.URL.Host)
		}
		return nil, fmt.Errorf("%w: %s", ErrDropped, req.URL.Host)
	}
	if v.delay > 0 {
		t.in.delays.Add(1)
		if err := sleep(req.Context(), v.delay); err != nil {
			if req.Body != nil {
				io.Copy(io.Discard, req.Body)
				req.Body.Close()
			}
			return nil, err
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	// Re-check the asymmetric rule after the peer responded, so a
	// partition raised mid-flight still severs the reply.
	if v.reset || t.in.ResponsesBlocked(req.URL.Host) {
		t.in.resets.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: %s", ErrReset, req.URL.Host)
	}
	return resp, nil
}
