package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{Name: "candidate", Cycles: 100, CUBusy: []int64{60, 0, 40}},
		{Name: "assign", Cycles: 50, CUBusy: []int64{25, 25, 0}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 2 kernel events + 2 busy CUs + 2 busy CUs (zero-busy CUs skipped).
	if len(parsed.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(parsed.TraceEvents))
	}
	// Kernel track events are back to back.
	var kernelTS []int64
	for _, e := range parsed.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event phase %q, want X", e.Ph)
		}
		if e.TID == 0 {
			kernelTS = append(kernelTS, e.TS)
		}
	}
	if len(kernelTS) != 2 || kernelTS[0] != 0 || kernelTS[1] != 100 {
		t.Errorf("kernel timestamps = %v, want [0 100]", kernelTS)
	}
	if !strings.Contains(buf.String(), "candidate@cu0") {
		t.Error("per-CU event names missing")
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("empty trace is not valid JSON")
	}
}
