// Package trace exports simulated runs as Chrome trace-event JSON
// (chrome://tracing / Perfetto): one track per compute unit plus a kernel
// track, with durations in simulated cycles (mapped to microseconds). It
// turns a Result's launch timeline into the kind of utilization picture the
// paper draws by hand.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Span is one kernel launch's contribution to the timeline.
type Span struct {
	// Name is the kernel name; Cycles its end-to-end simulated time.
	Name   string
	Cycles int64
	// CUBusy is per-CU busy cycles within the launch.
	CUBusy []int64
}

// event is the chrome trace-event wire format (complete events, "ph": "X").
type event struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// WriteChromeTrace renders the launch timeline to w. Launches are laid out
// back to back (the host serializes them); each launch emits one event on
// the kernel track (tid 0) and one per busy CU (tid = CU index + 1).
func WriteChromeTrace(w io.Writer, spans []Span) error {
	var events []event
	var clock int64
	for _, s := range spans {
		events = append(events, event{
			Name: s.Name, Cat: "kernel", Ph: "X",
			TS: clock, Dur: s.Cycles, PID: 1, TID: 0,
		})
		for cu, busy := range s.CUBusy {
			if busy == 0 {
				continue
			}
			events = append(events, event{
				Name: fmt.Sprintf("%s@cu%d", s.Name, cu), Cat: "cu", Ph: "X",
				TS: clock, Dur: busy, PID: 1, TID: cu + 1,
			})
		}
		clock += s.Cycles
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []event `json:"traceEvents"`
		Unit        string  `json:"displayTimeUnit"`
	}{events, "ns"})
}
