package gpucolor

import (
	"context"
	"slices"
	"testing"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// TestPooledRunnerDeterminism: a Runner cycling through a mixed stream of
// jobs returns bit-identical colors and cycles to a fresh transient run of
// each job — across every algorithm, both compaction modes, and graphs of
// different sizes (which forces buffer release/re-acquire between jobs).
func TestPooledRunnerDeterminism(t *testing.T) {
	graphs := suite()
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	slices.Sort(names)

	for _, mode := range []CompactionMode{CompactionScan, CompactionAtomic} {
		dev := testDev()
		rn := NewRunner(dev)
		for _, alg := range Algorithms() {
			for _, name := range names {
				g := graphs[name]
				opt := Options{Compaction: mode}
				want, werr := Color(testDev(), g, alg, opt)
				got, gerr := rn.Color(g, alg, opt)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s/%v/%v: fresh err %v, pooled err %v", name, alg, mode, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if !slices.Equal(want.Colors, got.Colors) {
					t.Errorf("%s/%v/%v: pooled colors differ from fresh", name, alg, mode)
				}
				if want.Cycles != got.Cycles {
					t.Errorf("%s/%v/%v: pooled cycles %d, fresh %d", name, alg, mode, got.Cycles, want.Cycles)
				}
				if want.NumColors != got.NumColors || want.Iterations != got.Iterations {
					t.Errorf("%s/%v/%v: pooled (colors=%d iters=%d), fresh (colors=%d iters=%d)",
						name, alg, mode, got.NumColors, got.Iterations, want.NumColors, want.Iterations)
				}
			}
		}
		rn.Release()
	}
}

// TestPooledRunnerResultOwnership: a pooled Result survives the Runner
// moving on to another job — the colors are a copy, not a view of the
// runner's buffer.
func TestPooledRunnerResultOwnership(t *testing.T) {
	dev := testDev()
	rn := NewRunner(dev)
	g1 := gen.GNM(300, 1500, 4)
	res1, err := rn.Color(g1, AlgBaseline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := slices.Clone(res1.Colors)

	if _, err := rn.Color(gen.Star(200), AlgMaxMin, Options{}); err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res1.Colors, snapshot) {
		t.Fatalf("first job's colors changed after the runner took another job")
	}
}

// TestRunnerScrubLeavesNoJobData: after Scrub, every byte of the runner's
// held state buffers is the arena poison pattern — no residue of the
// previous job — and the next job still colors correctly.
func TestRunnerScrubLeavesNoJobData(t *testing.T) {
	dev := testDev()
	rn := NewRunner(dev)
	if _, err := rn.Color(gen.GNM(300, 1500, 4), AlgBaseline, Options{}); err != nil {
		t.Fatal(err)
	}
	rn.Scrub()
	p := simt.PoisonValue()
	bufs := map[string]*simt.BufInt32{
		"prio": rn.r.prio, "col": rn.r.col, "win": rn.r.win,
		"wlA": rn.r.wlA, "wlB": rn.r.wlB, "cnt": rn.r.cnt,
		"keep": rn.r.keep, "scr": rn.r.scr,
	}
	for name, b := range bufs {
		if b == nil {
			t.Fatalf("runner buffer %s not held after a run", name)
		}
		for i, v := range b.Data() {
			if v != p {
				t.Fatalf("buffer %s[%d] = %#x after Scrub, want poison", name, i, v)
			}
		}
	}
	g := gen.Grid2D(12, 11)
	got, err := rn.Color(g, AlgBaseline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Color(testDev(), g, AlgBaseline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Colors, want.Colors) || got.Cycles != want.Cycles {
		t.Fatalf("post-Scrub run differs from fresh run")
	}
}

// TestRunnerReleaseReturnsBuffers: Release empties the runner and feeds
// the device arena; the next run reuses the pooled memory.
func TestRunnerReleaseReturnsBuffers(t *testing.T) {
	dev := testDev()
	rn := NewRunner(dev)
	g := gen.GNM(300, 1500, 4)
	if _, err := rn.Color(g, AlgBaseline, Options{}); err != nil {
		t.Fatal(err)
	}
	rn.Release()
	st := dev.ArenaStats()
	if st.PooledBufs == 0 {
		t.Fatalf("Release pooled no buffers: %+v", st)
	}
	if _, err := rn.Color(g, AlgBaseline, Options{}); err != nil {
		t.Fatal(err)
	}
	st2 := dev.ArenaStats()
	if st2.Reuses <= st.Reuses {
		t.Fatalf("run after Release did not reuse arena memory: before %+v after %+v", st, st2)
	}
}

// TestRunnerColorContextMatchesTransient: the pooled resilient ladder is
// bit-identical to the transient one on healthy runs.
func TestRunnerColorContextMatchesTransient(t *testing.T) {
	g := gen.RMAT(9, 8, gen.Graph500, 3)
	opt := ResilientOptions{}
	want, err := ColorContext(context.Background(), testDev(), g, AlgHybrid, opt)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(testDev())
	got, err := rn.ColorContext(context.Background(), g, AlgHybrid, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(want.Colors, got.Colors) || want.Cycles != got.Cycles {
		t.Fatalf("pooled resilient run differs: cycles %d vs %d", got.Cycles, want.Cycles)
	}
	if want.Recovery != got.Recovery || want.Attempts != got.Attempts {
		t.Fatalf("recovery evidence differs: %v/%d vs %v/%d",
			got.Recovery, got.Attempts, want.Recovery, want.Attempts)
	}
}

// TestFusedBitIdenticalAndFaster: for every seed dataset and both
// compaction modes, the fused kernel produces exactly the two-kernel run's
// coloring in strictly fewer simulated cycles (for any graph that launches
// at least one iteration).
func TestFusedBitIdenticalAndFaster(t *testing.T) {
	graphs := suite()
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	slices.Sort(names)

	for _, alg := range []Algorithm{AlgBaseline, AlgMaxMin} {
		for _, mode := range []CompactionMode{CompactionScan, CompactionAtomic} {
			for _, name := range names {
				g := graphs[name]
				plain, err := Color(testDev(), g, alg, Options{Compaction: mode})
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", name, alg, mode, err)
				}
				fused, err := Color(testDev(), g, alg, Options{Compaction: mode, Fused: true})
				if err != nil {
					t.Fatalf("%s/%v/%v fused: %v", name, alg, mode, err)
				}
				if !slices.Equal(plain.Colors, fused.Colors) {
					t.Errorf("%s/%v/%v: fused colors differ", name, alg, mode)
				}
				if plain.Iterations != fused.Iterations {
					t.Errorf("%s/%v/%v: fused iterations %d, plain %d",
						name, alg, mode, fused.Iterations, plain.Iterations)
				}
				if g.NumVertices() == 0 {
					continue
				}
				if fused.Cycles >= plain.Cycles {
					t.Errorf("%s/%v/%v: fused cycles %d, want < plain %d",
						name, alg, mode, fused.Cycles, plain.Cycles)
				}
			}
		}
	}
}

// TestFusedIgnoredWhereUnsound: Jones–Plassmann and the hybrid big-vertex
// path ignore the Fused flag and stay identical to their unfused runs.
func TestFusedIgnoredWhereUnsound(t *testing.T) {
	g := gen.Star(200) // forces the hybrid big-vertex path
	for _, alg := range []Algorithm{AlgJP, AlgHybridJP} {
		plain, err := Color(testDev(), g, alg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fused, err := Color(testDev(), g, alg, Options{Fused: true})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(plain.Colors, fused.Colors) || plain.Cycles != fused.Cycles {
			t.Errorf("%v: Fused changed an algorithm that cannot fuse", alg)
		}
	}
}

// TestFusedKernelCyclesConsistent: fused runs keep the per-kernel
// breakdown invariant (sum of KernelCycles == Cycles).
func TestFusedKernelCyclesConsistent(t *testing.T) {
	g := gen.GNM(300, 1500, 4)
	res, err := Color(testDev(), g, AlgMaxMin, Options{Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range res.KernelCycles {
		sum += c
	}
	if sum != res.Cycles {
		t.Fatalf("kernel cycles sum %d != total %d", sum, res.Cycles)
	}
	if _, ok := res.KernelCycles["fused-maxmin"]; !ok {
		t.Fatalf("fused run missing fused kernel entry: %v", res.KernelCycles)
	}
	if _, ok := res.KernelCycles["candidate-maxmin"]; ok {
		t.Fatalf("fused run still launched the candidate kernel")
	}
}

// TestFusedUnderFaultInjection: with an armed injector the fused path must
// not panic or return unverified colorings (the resilient ladder handles
// failures), mirroring the chaos guarantees of the unfused path.
func TestFusedUnderFaultInjection(t *testing.T) {
	g := gen.GNM(300, 1500, 4)
	for seed := uint64(1); seed <= 3; seed++ {
		dev := testDev()
		dev.Fault = simt.NewFaultInjector(seed, 0.001)
		out, err := ColorContext(context.Background(), dev, g, AlgBaseline,
			ResilientOptions{Options: Options{Fused: true}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if out.Result == nil || len(out.Colors) != g.NumVertices() {
			t.Fatalf("seed %d: missing result", seed)
		}
	}
}

func benchGraph() *graph.Graph { return gen.RMAT(9, 8, gen.Graph500, 3) }

// BenchmarkColorTransient measures the per-run cost of the legacy path: a
// transient runner built and torn down per call (buffers still flow
// through the device arena).
func BenchmarkColorTransient(b *testing.B) {
	dev := testDev()
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Color(dev, g, AlgBaseline, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColorPooled measures the warm-runner hot path.
func BenchmarkColorPooled(b *testing.B) {
	dev := testDev()
	rn := NewRunner(dev)
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Color(g, AlgBaseline, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColorPooledFused is the full PR3 hot path: warm runner plus
// fused kernels.
func BenchmarkColorPooledFused(b *testing.B) {
	dev := testDev()
	rn := NewRunner(dev)
	g := benchGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rn.Color(g, AlgBaseline, Options{Fused: true}); err != nil {
			b.Fatal(err)
		}
	}
}
