package gpucolor

import (
	"fmt"

	"gcolor/internal/color"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// Hybrid colors g with the paper's hybrid algorithm. The vertex set is
// partitioned once by (static) degree: low-degree vertices run through the
// ordinary thread-per-vertex candidate kernel, while vertices with degree at
// or above the threshold are each processed by a whole workgroup — lanes
// stride over the neighbour list with coalesced reads and reduce the verdict
// cooperatively — eliminating the hub-lane serialization that dominates the
// baseline on scale-free graphs. The two populations keep separate active
// worklists; once the high-degree list drains, the iteration degenerates to
// the baseline kernels over the low-degree survivors.
func Hybrid(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	return Color(dev, g, AlgHybrid, opt)
}

// HybridMaxMin combines the hybrid degree split with colorMaxMin selection:
// the cooperative kernel tests local-max and local-min status in one pass
// (no early exit — both verdicts need the full scan), and winners take two
// colors per iteration.
func HybridMaxMin(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	return Color(dev, g, AlgHybridMaxMin, opt)
}

// HybridJP combines the hybrid degree split with Jones–Plassmann
// assignment: selection is identical to Hybrid, but winners take their
// smallest available color.
func HybridJP(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	return Color(dev, g, AlgHybridJP, opt)
}

func (r *runner) runHybrid(mode iterMode) (*Result, error) {
	opt := r.opt
	// NormalizeHybridThreshold keeps the int32 conversion safe: a raw
	// int32(...) of a threshold above MaxInt32 wraps — into a negative
	// (silently replaced by the default) or a tiny positive (silently
	// routing every vertex to the cooperative kernel).
	threshold := int32(NormalizeHybridThreshold(opt.HybridThreshold))
	if threshold <= 0 {
		threshold = int32(r.dev.WavefrontWidth)
	}
	// The host sees the CSR offsets, so checking whether any vertex crosses
	// the threshold is free — when none does (meshes, road networks), the
	// hybrid is exactly the baseline and the partition pass would be pure
	// overhead. The comparison stays in the int domain: int32(MaxDegree())
	// would be its own wrap hazard.
	if r.g.MaxDegree() < int(threshold) {
		return r.runIterative(mode)
	}

	// One-time partition by static degree: re-partitioning per iteration
	// would be pure overhead (an earlier design did exactly that and spent
	// a quarter of its cycles there).
	bigCur, bigNext := r.bigBufs()
	var smallCur, smallNext *simt.BufInt32
	var nSmall, nBig int
	if opt.Compaction == CompactionAtomic {
		smallCur, smallNext = r.wlA, r.wlB
		r.cnt.Data()[1], r.cnt.Data()[2] = 0, 0
		r.launch(r.partitionAtomicKernel(smallCur, bigCur, int(r.n), threshold), false)
		nSmall = clampCount(int(r.cnt.Data()[1]), smallCur.Len())
		nBig = clampCount(int(r.cnt.Data()[2]), bigCur.Len())
		sortWorklist(smallCur, nSmall)
		sortWorklist(bigCur, nBig)
	} else {
		// r.wlA holds the identity list 0..n-1; compact the high-degree
		// flags into the big list, flip, and compact the rest.
		r.launch(r.partitionFlagKernel(int(r.n), threshold, false), false)
		nBig = r.compactInto(r.wlA, bigCur, int(r.n))
		r.launch(r.partitionFlagKernel(int(r.n), threshold, true), false)
		nSmall = r.compactInto(r.wlA, r.wlB, int(r.n))
		smallCur, smallNext = r.wlB, r.wlA
	}

	for iter := 0; nSmall+nBig > 0; iter++ {
		if iter >= opt.maxIters(int(r.n)) {
			return nil, fmt.Errorf("gpucolor: hybrid did not converge after %d iterations: %w", iter, ErrMaxIterations)
		}
		if err := r.checkIter(iter, nSmall+nBig); err != nil {
			return nil, err
		}
		r.res.ActivePerIter = append(r.res.ActivePerIter, nSmall+nBig)
		r.res.Iterations++

		if nSmall > 0 {
			r.launch(r.candidateKernel("candidate-small"+mode.suffix(), smallCur, nSmall, mode), true)
		}
		if nBig > 0 {
			if mode == modeMaxMin {
				r.launch(r.candidateBigMaxMinKernel(bigCur, nBig), true)
			} else {
				r.launch(r.candidateBigKernel(bigCur, nBig), true)
			}
		}

		// Winners of either population take color iter; survivors compact
		// into their population's next worklist.
		if nSmall > 0 {
			nSmall = r.assignAndCompact(smallCur, smallNext, nSmall, int32(iter), mode)
			smallCur, smallNext = smallNext, smallCur
		}
		if nBig > 0 {
			nBig = r.assignAndCompact(bigCur, bigNext, nBig, int32(iter), mode)
			bigCur, bigNext = bigNext, bigCur
		}
	}
	return r.finish()
}

// partitionAtomicKernel splits the full vertex set into low- and
// high-degree worklists with atomic cursors (cnt[1] and cnt[2]).
func (r *runner) partitionAtomicKernel(small, big *simt.BufInt32, count int, threshold int32) *simt.RunResult {
	return r.dev.Run("partition", count, func(c *simt.Ctx) {
		v := c.Global
		deg := c.Ld(r.off, v+1) - c.Ld(r.off, v)
		c.Op(2)
		if deg >= threshold {
			slot := c.AtomicAdd(r.cnt, 2, 1)
			c.St(big, slot, v)
		} else {
			slot := c.AtomicAdd(r.cnt, 1, 1)
			c.St(small, slot, v)
		}
	})
}

// partitionFlagKernel writes per-vertex keep flags for the degree split
// (invert selects the low-degree complement) for scan compaction.
func (r *runner) partitionFlagKernel(count int, threshold int32, invert bool) *simt.RunResult {
	return r.dev.Run("partition", count, func(c *simt.Ctx) {
		v := c.Global
		deg := c.Ld(r.off, v+1) - c.Ld(r.off, v)
		c.Op(2)
		flag := int32(0)
		if (deg >= threshold) != invert {
			flag = 1
		}
		c.St(r.keep, v, flag)
	})
}

// loadHeader stages the vertex header (id, CSR range, priority) in LDS from
// lane 0 and broadcast-reads it into every lane's registers — the standard
// cooperative-kernel idiom (broadcasts are bank-conflict free).
func (r *runner) loadHeader(g *simt.GroupCtx, wl *simt.BufInt32) (v, start, end int32, pv uint32) {
	lds := g.AllocLDS(4)
	g.One(func(c *simt.Ctx) {
		vv := c.Ld(wl, g.ID())
		c.LdsSt(lds, 0, vv)
		c.LdsSt(lds, 1, c.Ld(r.off, vv))
		c.LdsSt(lds, 2, c.Ld(r.off, vv+1))
		c.LdsSt(lds, 3, c.Ld(r.prio, vv))
	})
	g.Barrier()
	g.ForEach(int32(g.Size()), func(c *simt.Ctx, i int32) {
		v = c.LdsLd(lds, 0)
		start = c.LdsLd(lds, 1)
		end = c.LdsLd(lds, 2)
		pv = uint32(c.LdsLd(lds, 3))
	})
	return v, start, end, pv
}

// candidateBigKernel runs one workgroup per high-degree vertex: all lanes
// cooperatively scan the neighbour list (coalesced adjacency reads) looking
// for an uncolored neighbour that outranks it, with chunk-level early exit.
func (r *runner) candidateBigKernel(wl *simt.BufInt32, count int) *simt.RunResult {
	return r.dev.RunCoop("candidate-big", count, func(g *simt.GroupCtx) {
		v, start, end, pv := r.loadHeader(g, wl)
		loses := g.Any(end-start, func(c *simt.Ctx, i int32) bool {
			u := c.Ld(r.adj, start+i)
			if c.Ld(r.col, u) != uncoloredConst {
				return false
			}
			pu := uint32(c.Ld(r.prio, u))
			c.Op(2)
			return color.PriorityGreater(pu, u, pv, v)
		})
		g.One(func(c *simt.Ctx) {
			win := winMax
			if loses {
				win = winNone
			}
			c.Op(1)
			c.St(r.win, v, win)
		})
	})
}

// candidateBigMaxMinKernel tests local-max and local-min status in one full
// cooperative scan: lanes raise LDS flags for each verdict they refute, and
// lane 0 combines them after a barrier. No early exit is possible — the
// min verdict needs every neighbour.
func (r *runner) candidateBigMaxMinKernel(wl *simt.BufInt32, count int) *simt.RunResult {
	return r.dev.RunCoop("candidate-big-maxmin", count, func(g *simt.GroupCtx) {
		v, start, end, pv := r.loadHeader(g, wl)
		flags := g.AllocLDS(2) // [0] not-max, [1] not-min
		g.ForEach(end-start, func(c *simt.Ctx, i int32) {
			u := c.Ld(r.adj, start+i)
			if c.Ld(r.col, u) != uncoloredConst {
				return
			}
			pu := uint32(c.Ld(r.prio, u))
			c.Op(2)
			if color.PriorityGreater(pu, u, pv, v) {
				c.LdsSt(flags, 0, 1)
			} else {
				c.LdsSt(flags, 1, 1)
			}
		})
		g.Barrier()
		g.One(func(c *simt.Ctx) {
			notMax := c.LdsLd(flags, 0)
			notMin := c.LdsLd(flags, 1)
			win := winNone
			switch {
			case notMax == 0:
				win = winMax
			case notMin == 0:
				win = winMin
			}
			c.Op(2)
			c.St(r.win, v, win)
		})
	})
}
