package gpucolor

import (
	"math"
	"strconv"
	"testing"

	"gcolor/internal/gen"
	"gcolor/internal/simt"
)

func TestNormalizeHybridThreshold(t *testing.T) {
	cases := []struct {
		in, want int
	}{
		{0, 0},
		{1, 1},
		{64, 64},
		{math.MaxInt32, math.MaxInt32},
		{-1, 0},
		{-math.MaxInt32, 0},
	}
	for _, tc := range cases {
		if got := NormalizeHybridThreshold(tc.in); got != tc.want {
			t.Errorf("NormalizeHybridThreshold(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if strconv.IntSize >= 64 {
		var shift uint = 32
		for _, in := range []int{1<<31 + 7, 1 << shift, 1<<shift + 5, math.MaxInt64} {
			if got := NormalizeHybridThreshold(in); got != math.MaxInt32 {
				t.Errorf("NormalizeHybridThreshold(%d) = %d, want MaxInt32", in, got)
			}
		}
	}
}

// TestHybridThresholdOverflow is the regression for the bare int32(...)
// truncation in runHybrid: a threshold of 2^32+1 used to wrap to 1 and
// silently route every vertex to the cooperative kernel, while 2^31+k
// wrapped negative and silently fell back to the device default. Both
// must now behave exactly like MaxInt32 — "no vertex is big", which on
// any real graph is bit-identical (colors and cycles) to the baseline.
func TestHybridThresholdOverflow(t *testing.T) {
	if strconv.IntSize < 64 {
		t.Skip("overflowing thresholds need 64-bit int")
	}
	g := gen.RMAT(10, 16, gen.Graph500, 1) // max degree far above any wrap artifact
	run := func(threshold int, alg Algorithm) *Result {
		t.Helper()
		dev := simt.NewDevice()
		dev.Workers = 1
		res, err := Color(dev, g, alg, Options{HybridThreshold: threshold})
		if err != nil {
			t.Fatalf("threshold %d: %v", threshold, err)
		}
		return res
	}
	want := run(math.MaxInt32, AlgHybrid)
	baseline := run(0, AlgBaseline)
	if want.Cycles != baseline.Cycles {
		t.Fatalf("MaxInt32 hybrid should be the baseline: %d vs %d cycles", want.Cycles, baseline.Cycles)
	}
	var shift uint = 32
	for _, threshold := range []int{1<<31 + 7, 1<<shift + 1, math.MaxInt64} {
		got := run(threshold, AlgHybrid)
		if got.Cycles != want.Cycles {
			t.Errorf("threshold %d: %d cycles, want %d (wrapped into the wrong kernel path)",
				threshold, got.Cycles, want.Cycles)
		}
		for v := range got.Colors {
			if got.Colors[v] != want.Colors[v] {
				t.Fatalf("threshold %d: vertex %d colored %d, want %d", threshold, v, got.Colors[v], want.Colors[v])
			}
		}
	}
	// A negative threshold is "unset": identical to the device default.
	def := run(0, AlgHybrid)
	neg := run(-5, AlgHybrid)
	if neg.Cycles != def.Cycles {
		t.Errorf("negative threshold: %d cycles, want default's %d", neg.Cycles, def.Cycles)
	}
}
