package gpucolor

import (
	"fmt"

	"gcolor/internal/color"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// SpeculativeD2 produces a distance-2 coloring on the simulated GPU with
// the snapshot speculation scheme: every active vertex takes the smallest
// color unused within its two-hop neighbourhood (as of the round's
// snapshot), distance-2 conflicts resolve by priority, losers retry.
// Two-hop scans make per-vertex work proportional to the sum of the
// neighbours' degrees, so the load-imbalance pathologies of the distance-1
// kernels appear here squared — a natural extension experiment for the
// paper's techniques.
func SpeculativeD2(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	r := newRunner(dev, g, opt)
	defer r.close()
	return r.runSpeculativeD2()
}

func (r *runner) runSpeculativeD2() (*Result, error) {
	snap := r.snapBuf()
	count := int(r.n)
	cur, next := r.wlA, r.wlB
	for round := 0; count > 0; round++ {
		if round >= r.opt.maxIters(int(r.n)) {
			return nil, fmt.Errorf("gpucolor: speculative-d2 did not converge after %d rounds: %w", round, ErrMaxIterations)
		}
		if err := r.checkIter(round, count); err != nil {
			return nil, err
		}
		r.res.ActivePerIter = append(r.res.ActivePerIter, count)
		r.res.Iterations++

		r.launch(r.snapshotKernel(snap), false)
		r.launch(r.speculateD2Kernel(cur, snap, count), true)

		count = r.flagAndCompact(cur, next, count, r.detectD2Kernel)

		if count > 0 {
			r.launch(r.resetKernel(next, count), false)
		}
		cur, next = next, cur
	}
	r.sealColors()
	res := r.res
	if err := color.VerifyD2(r.g, res.Colors); err != nil {
		return nil, fmt.Errorf("gpucolor: produced invalid distance-2 coloring: %w", err)
	}
	res.NumColors = r.countDistinct(res.Colors)
	return res, nil
}

// speculateD2Kernel assigns each active vertex the smallest color unused in
// its two-hop snapshot neighbourhood. Writes go only to the vertex's own
// slot.
func (r *runner) speculateD2Kernel(wl, snap *simt.BufInt32, count int) *simt.RunResult {
	return r.dev.Run("speculate-d2", count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		start := c.Ld(r.off, v)
		end := c.Ld(r.off, v+1)
		// The two-hop neighbourhood can use at most its own size in colors,
		// so a map-free bitset bounded by that size would need the exact
		// count; a small map keeps the kernel simple (it is private scratch,
		// not device memory).
		forbidden := make(map[int32]bool)
		mark := func(u int32) {
			if cu := c.Ld(snap, u); cu >= 0 {
				forbidden[cu] = true
			}
		}
		for e := start; e < end; e++ {
			u := c.Ld(r.adj, e)
			mark(u)
			us := c.Ld(r.off, u)
			ue := c.Ld(r.off, u+1)
			for f := us; f < ue; f++ {
				w := c.Ld(r.adj, f)
				if w != v {
					mark(w)
				}
			}
		}
		pick := int32(0)
		for forbidden[pick] {
			pick++
		}
		c.Op(len(forbidden) + 1)
		c.St(r.col, v, pick)
	})
}

// detectD2Kernel flags distance-2 conflicts: v loses if any vertex within
// two hops holds v's color and outranks it by priority.
func (r *runner) detectD2Kernel(wl, next *simt.BufInt32, count int) *simt.RunResult {
	return r.dev.Run("detect-d2", count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		cv := c.Ld(r.col, v)
		pv := uint32(c.Ld(r.prio, v))
		start := c.Ld(r.off, v)
		end := c.Ld(r.off, v+1)
		loses := func(u int32) bool {
			if u == v || c.Ld(r.col, u) != cv {
				return false
			}
			pu := uint32(c.Ld(r.prio, u))
			c.Op(2)
			return color.PriorityGreater(pu, u, pv, v)
		}
		lost := int32(0)
	scan:
		for e := start; e < end; e++ {
			u := c.Ld(r.adj, e)
			if loses(u) {
				lost = 1
				break
			}
			us := c.Ld(r.off, u)
			ue := c.Ld(r.off, u+1)
			for f := us; f < ue; f++ {
				if loses(c.Ld(r.adj, f)) {
					lost = 1
					break scan
				}
			}
		}
		if next == nil {
			c.St(r.keep, c.Global, lost)
		} else if lost == 1 {
			slot := c.AtomicAdd(r.cnt, 0, 1)
			c.St(next, slot, v)
		}
	})
}
