package gpucolor

import (
	"strings"
	"testing"
	"testing/quick"

	"gcolor/internal/color"
	"gcolor/internal/gen"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// testDev returns a small deterministic device for functional tests.
func testDev() *simt.Device {
	d := simt.NewDevice()
	d.NumCUs = 4
	d.WavefrontWidth = 16
	d.WorkgroupSize = 64
	return d
}

func suite() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":    graph.FromEdges(0, nil),
		"isolated": graph.FromEdges(7, nil),
		"single":   graph.FromEdges(1, nil),
		"path":     gen.Path(33),
		"cycle":    gen.Cycle(15),
		"star":     gen.Star(200), // hub degree 199 >> workgroup size
		"complete": gen.Complete(10),
		"grid":     gen.Grid2D(12, 11),
		"rmat":     gen.RMAT(9, 8, gen.Graph500, 3),
		"gnm":      gen.GNM(300, 1500, 4),
		"ba":       gen.BarabasiAlbert(250, 4, 5),
	}
}

func TestAllAlgorithmsProduceProperColorings(t *testing.T) {
	for name, g := range suite() {
		for _, alg := range Algorithms() {
			res, err := Color(testDev(), g, alg, Options{})
			if err != nil {
				t.Errorf("%s/%v: %v", name, alg, err)
				continue
			}
			if err := color.Verify(g, res.Colors); err != nil {
				t.Errorf("%s/%v: %v", name, alg, err)
			}
			if res.Cycles <= 0 && g.NumVertices() > 0 {
				t.Errorf("%s/%v: nonpositive cycles %d", name, alg, res.Cycles)
			}
		}
	}
}

func TestEmptyGraphShortCircuits(t *testing.T) {
	g := graph.FromEdges(0, nil)
	for _, alg := range Algorithms() {
		res, err := Color(testDev(), g, alg, Options{})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Iterations != 0 || res.NumColors != 0 {
			t.Errorf("%v: iterations=%d colors=%d, want 0/0", alg, res.Iterations, res.NumColors)
		}
	}
}

func TestBaselineColorsEqualIterations(t *testing.T) {
	g := gen.GNM(200, 1000, 7)
	res, err := Baseline(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// colorMax assigns color i in iteration i, so colors used == iterations.
	if res.NumColors != res.Iterations {
		t.Errorf("colors=%d iterations=%d, want equal", res.NumColors, res.Iterations)
	}
	if len(res.ActivePerIter) != res.Iterations {
		t.Errorf("profile length %d != iterations %d", len(res.ActivePerIter), res.Iterations)
	}
	for i := 1; i < len(res.ActivePerIter); i++ {
		if res.ActivePerIter[i] >= res.ActivePerIter[i-1] {
			t.Errorf("active count not strictly decreasing at iteration %d", i)
			break
		}
	}
}

func TestMaxMinHalvesIterations(t *testing.T) {
	g := gen.GNM(500, 4000, 2)
	base, err := Baseline(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mm, err := MaxMin(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// colorMaxMin colors two independent sets per iteration; allow slack but
	// it must clearly beat the baseline's iteration count.
	if mm.Iterations > base.Iterations*3/4 {
		t.Errorf("maxmin iterations = %d, baseline = %d: expected a large reduction",
			mm.Iterations, base.Iterations)
	}
}

func TestJPColorQualityAndConvergence(t *testing.T) {
	g := gen.RMAT(10, 8, gen.Graph500, 9)
	base, err := Baseline(testDev(), g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	jp, err := JPColor(testDev(), g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Identical independent-set selection: same convergence profile.
	if jp.Iterations != base.Iterations {
		t.Errorf("jp iterations = %d, baseline = %d, want equal", jp.Iterations, base.Iterations)
	}
	// First-fit assignment: bounded by maxdeg+1 and below the baseline's
	// iteration-numbered color count.
	if jp.NumColors > g.MaxDegree()+1 {
		t.Errorf("jp colors = %d > maxdeg+1 = %d", jp.NumColors, g.MaxDegree()+1)
	}
	if jp.NumColors >= base.NumColors {
		t.Errorf("jp colors = %d, baseline = %d: expected fewer", jp.NumColors, base.NumColors)
	}
}

func TestSpeculativeUsesFewerColors(t *testing.T) {
	g := gen.RMAT(10, 8, gen.Graph500, 9)
	base, err := Baseline(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Speculative(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if spec.NumColors >= base.NumColors {
		t.Errorf("speculative colors = %d, baseline = %d: expected fewer",
			spec.NumColors, base.NumColors)
	}
	// First-fit bound holds.
	if spec.NumColors > g.MaxDegree()+1 {
		t.Errorf("speculative used %d colors > maxdeg+1 = %d", spec.NumColors, g.MaxDegree()+1)
	}
}

func TestHybridMatchesBaselineColoring(t *testing.T) {
	// Hybrid changes *where* candidate tests run, not their outcome: the
	// coloring must be identical to the baseline's for the same seed.
	for _, name := range []string{"star", "rmat", "grid", "ba"} {
		g := suite()[name]
		base, err := Baseline(testDev(), g, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		hyb, err := Hybrid(testDev(), g, Options{Seed: 11, HybridThreshold: 32})
		if err != nil {
			t.Fatal(err)
		}
		for v := range base.Colors {
			if base.Colors[v] != hyb.Colors[v] {
				t.Fatalf("%s: hybrid differs from baseline at vertex %d (%d vs %d)",
					name, v, hyb.Colors[v], base.Colors[v])
			}
		}
		if base.Iterations != hyb.Iterations {
			t.Errorf("%s: iteration counts differ: %d vs %d", name, base.Iterations, hyb.Iterations)
		}
	}
}

func TestHybridVariantsMatchTheirBaselines(t *testing.T) {
	// Each hybrid variant changes *where* candidate tests run, never their
	// outcome: colorings must equal the corresponding non-hybrid algorithm.
	g := gen.RMAT(9, 12, gen.Graph500, 7) // maxdeg must cross the threshold
	pairs := []struct {
		hybrid, base Algorithm
	}{
		{AlgHybrid, AlgBaseline},
		{AlgHybridMaxMin, AlgMaxMin},
		{AlgHybridJP, AlgJP},
	}
	for _, p := range pairs {
		h, err := Color(testDev(), g, p.hybrid, Options{Seed: 2, HybridThreshold: 32})
		if err != nil {
			t.Fatalf("%v: %v", p.hybrid, err)
		}
		b, err := Color(testDev(), g, p.base, Options{Seed: 2})
		if err != nil {
			t.Fatalf("%v: %v", p.base, err)
		}
		for v := range b.Colors {
			if h.Colors[v] != b.Colors[v] {
				t.Fatalf("%v differs from %v at vertex %d (%d vs %d)",
					p.hybrid, p.base, v, h.Colors[v], b.Colors[v])
			}
		}
		if h.Iterations != b.Iterations {
			t.Errorf("%v iterations %d != %v %d", p.hybrid, h.Iterations, p.base, b.Iterations)
		}
	}
}

func TestHybridFasterOnHubGraph(t *testing.T) {
	// The headline effect: on a hub-dominated graph, the hybrid must beat
	// the baseline; on a regular grid it must not be dramatically slower.
	dev := simt.NewDevice()
	hub := gen.RMAT(11, 16, gen.Graph500, 1)
	base, err := Baseline(dev, hub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Hybrid(dev, hub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Cycles >= base.Cycles {
		t.Errorf("hybrid %d cycles >= baseline %d on scale-free graph", hyb.Cycles, base.Cycles)
	}

	grid := gen.Grid2D(64, 64)
	gb, err := Baseline(dev, grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gh, err := Hybrid(dev, grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(gh.Cycles) > 1.25*float64(gb.Cycles) {
		t.Errorf("hybrid %d cycles far above baseline %d on a grid", gh.Cycles, gb.Cycles)
	}
}

func TestWorkStealingPolicyReducesCycles(t *testing.T) {
	// Hubs cluster at low ids under R-MAT, so static chunking overloads the
	// first CUs; the stealing policy must shorten the makespan. Workgroups
	// of 64 keep tasks fine-grained enough to migrate (with 256-item groups
	// a single hub group is monolithic and nothing can be stolen — that
	// granularity effect is itself an experiment, F-R8).
	hub := gen.RMAT(12, 16, gen.Graph500, 1)
	devStatic := simt.NewDevice()
	devStatic.WorkgroupSize = 64
	devSteal := simt.NewDevice()
	devSteal.WorkgroupSize = 64
	devSteal.Policy = simt.Stealing
	base, err := Baseline(devStatic, hub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := Baseline(devSteal, hub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Steals == 0 {
		t.Error("no steals recorded under stealing policy")
	}
	if ws.Cycles >= base.Cycles {
		t.Errorf("stealing %d cycles >= static %d", ws.Cycles, base.Cycles)
	}
	// Colorings are identical: scheduling must not change results.
	for v := range base.Colors {
		if base.Colors[v] != ws.Colors[v] {
			t.Fatal("scheduling policy changed the coloring")
		}
	}
}

func TestResultBookkeeping(t *testing.T) {
	g := gen.GNM(200, 1200, 3)
	dev := testDev()
	res, err := Baseline(dev, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fromKernels int64
	for _, c := range res.KernelCycles {
		fromKernels += c
	}
	if fromKernels != res.Cycles {
		t.Errorf("KernelCycles sum %d != Cycles %d", fromKernels, res.Cycles)
	}
	if len(res.CUBusy) != dev.NumCUs {
		t.Errorf("CUBusy length = %d, want %d", len(res.CUBusy), dev.NumCUs)
	}
	if len(res.WavefrontWork) == 0 {
		t.Error("no wavefront work recorded")
	}
	u := res.SIMDUtilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v, want (0,1]", u)
	}
}

func TestTimelineRecording(t *testing.T) {
	g := gen.GNM(100, 400, 1)
	off, err := Baseline(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Timeline) != 0 {
		t.Error("timeline recorded without Options.Trace")
	}
	on, err := Baseline(testDev(), g, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Timeline) == 0 {
		t.Fatal("no timeline recorded with Options.Trace")
	}
	var sum int64
	for _, s := range on.Timeline {
		if s.Name == "" || s.Cycles <= 0 {
			t.Errorf("malformed span %+v", s)
		}
		sum += s.Cycles
	}
	if sum != on.Cycles {
		t.Errorf("timeline cycles %d != total %d", sum, on.Cycles)
	}
}

func TestOptionsDefaults(t *testing.T) {
	if (Options{}).seed() != 1 {
		t.Error("zero seed must map to 1")
	}
	if (Options{Seed: 5}).seed() != 5 {
		t.Error("explicit seed ignored")
	}
	if (Options{}).maxIters(10) != 11 {
		t.Error("default max iterations must be n+1")
	}
	if (Options{MaxIterations: 3}).maxIters(10) != 3 {
		t.Error("explicit max iterations ignored")
	}
}

func TestMaxIterationsAborts(t *testing.T) {
	g := gen.Complete(12) // needs 12 iterations under colorMax
	_, err := Baseline(testDev(), g, Options{MaxIterations: 3})
	if err == nil || !strings.Contains(err.Error(), "convergence") {
		t.Errorf("expected convergence error, got %v", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if Algorithm(99).String() != "algorithm(99)" {
		t.Error("unknown Algorithm.String wrong")
	}
	if _, err := Color(testDev(), gen.Path(3), Algorithm(99), Options{}); err == nil {
		t.Error("Color accepted unknown algorithm")
	}
}

func TestBaselineMatchesCPUReference(t *testing.T) {
	// The GPU baseline must reproduce the sequential colorMax reference
	// bit for bit: same priority hash, same independent sets, same colors.
	for _, name := range []string{"rmat", "grid", "star", "gnm"} {
		g := suite()[name]
		gpu, err := Baseline(testDev(), g, Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		cpu := color.IterativeMax(g, 5)
		for v := range cpu {
			if gpu.Colors[v] != cpu[v] {
				t.Fatalf("%s: vertex %d: gpu %d vs cpu reference %d",
					name, v, gpu.Colors[v], cpu[v])
			}
		}
	}
}

func TestCompactionModesAgree(t *testing.T) {
	// Scan and atomic compaction rebuild the same worklists (scan preserves
	// order; atomic mode is normalized to the same order), so colorings and
	// iteration counts must match exactly; only cycle accounting differs.
	g := gen.RMAT(9, 8, gen.Graph500, 6)
	for _, alg := range Algorithms() {
		scan, err := Color(testDev(), g, alg, Options{Seed: 3})
		if err != nil {
			t.Fatalf("%v/scan: %v", alg, err)
		}
		atomic, err := Color(testDev(), g, alg, Options{Seed: 3, Compaction: CompactionAtomic})
		if err != nil {
			t.Fatalf("%v/atomic: %v", alg, err)
		}
		if scan.Iterations != atomic.Iterations {
			t.Errorf("%v: iterations differ: scan %d vs atomic %d", alg, scan.Iterations, atomic.Iterations)
		}
		for v := range scan.Colors {
			if scan.Colors[v] != atomic.Colors[v] {
				t.Fatalf("%v: colorings differ at vertex %d", alg, v)
			}
		}
		if scan.Cycles == atomic.Cycles {
			t.Logf("%v: identical cycles under both modes (possible but unusual)", alg)
		}
	}
	if CompactionScan.String() != "scan" || CompactionAtomic.String() != "atomic" {
		t.Error("CompactionMode.String wrong")
	}
}

func TestSeedChangesColoring(t *testing.T) {
	g := gen.GNM(300, 2400, 8)
	a, err := Baseline(testDev(), g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Baseline(testDev(), g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical colorings (suspicious)")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g := gen.RMAT(8, 8, gen.Graph500, 4)
	for _, alg := range Algorithms() {
		a, err := Color(testDev(), g, alg, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Color(testDev(), g, alg, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for v := range a.Colors {
			if a.Colors[v] != b.Colors[v] {
				t.Fatalf("%v: nondeterministic at vertex %d", alg, v)
			}
		}
		if a.Cycles != b.Cycles {
			t.Errorf("%v: cycle counts differ across identical runs: %d vs %d", alg, a.Cycles, b.Cycles)
		}
	}
}

// Property: every algorithm yields a proper coloring on arbitrary random
// graphs; independent-set algorithms stay within n colors and speculative
// within maxdeg+1.
func TestAlgorithmsProperProperty(t *testing.T) {
	dev := testDev()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%80 + 1
		g := gen.GNM(n, 4*n, seed)
		for _, alg := range Algorithms() {
			res, err := Color(dev, g, alg, Options{Seed: uint32(seed)})
			if err != nil {
				return false
			}
			if color.Verify(g, res.Colors) != nil {
				return false
			}
			if alg == AlgSpeculative && res.NumColors > g.MaxDegree()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
