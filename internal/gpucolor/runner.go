package gpucolor

import (
	"context"

	"gcolor/internal/gpuprim"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// Runner is a reusable coloring engine bound to one device. Where the
// package-level Color builds and tears down its device buffers per call, a
// Runner keeps them bound across calls: each run rebinds the CSR views to
// the new graph, refills the priority/color/worklist state in place, and
// only touches the device arena when the graph size actually changes. On a
// steady stream of same-shaped jobs — the serving hot path — that makes
// coloring allocation-free on the device side.
//
// Results are identical to the transient path bit for bit (colors, cycles,
// counters): buffers are held at exactly the current graph's length and
// re-initialized to fresh-allocation state on every run. The one
// observable difference is ownership — a Runner's Result carries a copy of
// the colors, so the caller's Result stays valid after the Runner moves on
// to its next job.
//
// A Runner is not safe for concurrent use; serve's device pool leases one
// per device.
type Runner struct {
	dev *simt.Device
	r   *runner
}

// NewRunner returns a Runner for dev. Buffers are acquired lazily on the
// first run.
func NewRunner(dev *simt.Device) *Runner {
	return &Runner{dev: dev}
}

// Device returns the device the Runner is bound to.
func (rn *Runner) Device() *simt.Device { return rn.dev }

// bind points the runner state at a new job, creating it on first use.
func (rn *Runner) bind(g *graph.Graph, opt Options) {
	if rn.r == nil {
		rn.r = &runner{dev: rn.dev, pooled: true, ss: gpuprim.NewScanScratch(rn.dev)}
	}
	rn.r.reset(g, opt)
}

// Color runs the named algorithm on the Runner's warm state.
func (rn *Runner) Color(g *graph.Graph, a Algorithm, opt Options) (*Result, error) {
	if err := checkAlgorithm(a); err != nil {
		return nil, err
	}
	rn.bind(g, opt)
	return rn.r.color(a)
}

// ColorContext runs the resilient recovery ladder (see the package-level
// ColorContext) with every GPU attempt executing on the Runner's warm
// state.
func (rn *Runner) ColorContext(ctx context.Context, g *graph.Graph, a Algorithm, opt ResilientOptions) (*Outcome, error) {
	if err := checkAlgorithm(a); err != nil {
		return nil, err
	}
	return colorResilient(ctx, rn.dev, g, opt, func(o Options) (*Result, error) {
		return rn.Color(g, a, o)
	})
}

// Scrub overwrites every held state buffer with the device arena's poison
// pattern. It is defense in depth for multi-tenant serving: between jobs
// no caller data survives in the Runner, and a job that somehow read state
// the next run failed to re-initialize would see poison, not another
// tenant's graph. The next run re-initializes everything, so Scrub never
// changes results.
func (rn *Runner) Scrub() {
	if rn.r == nil {
		return
	}
	p := simt.PoisonValue()
	for _, b := range []*simt.BufInt32{
		rn.r.prio, rn.r.col, rn.r.win, rn.r.wlA, rn.r.wlB,
		rn.r.cnt, rn.r.keep, rn.r.scr, rn.r.snap, rn.r.bigA, rn.r.bigB,
	} {
		if b != nil {
			b.Fill(p)
		}
	}
}

// Release returns every held buffer to the device arena. The Runner
// remains usable — the next run re-acquires from the (now warm) arena.
func (rn *Runner) Release() {
	if rn.r != nil {
		rn.r.releaseAll()
		rn.r = nil
	}
}
