package gpucolor

import (
	"slices"
	"testing"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
)

// TestBatchedPrioritySegments is the correctness contract behind kernel
// batching: coloring a block-diagonal union with per-member priority
// segments yields, for every member, exactly the colors a solo run of that
// member would produce with the same seed — for every algorithm, fused and
// unfused. The union has no cross-member arcs and every algorithm's
// decisions are local to a vertex's component given its priority, so the
// per-component trajectories are identical by construction; this test keeps
// that property from regressing as kernels evolve.
func TestBatchedPrioritySegments(t *testing.T) {
	members := []*graph.Graph{
		gen.Grid2D(8, 9),
		gen.GNM(120, 480, 2),
		gen.Star(40), // hub vertex exercises the hybrid big-vertex path
		gen.GNM(60, 90, 9),
	}
	seeds := []uint32{0, 7, 1234, 7} // 0 must behave like a solo Seed: 0 run

	union, starts := graph.ConcatDisjoint(members...)
	segs := make([]PrioritySegment, len(members))
	for i := range members {
		segs[i] = PrioritySegment{Start: starts[i], End: starts[i+1], Seed: seeds[i]}
	}

	for _, alg := range Algorithms() {
		for _, fused := range []bool{false, true} {
			batched, err := Color(testDev(), union, alg, Options{Fused: fused, PrioritySegments: segs})
			if err != nil {
				t.Fatalf("%v fused=%v: batched run: %v", alg, fused, err)
			}
			for i, g := range members {
				solo, err := Color(testDev(), g, alg, Options{Seed: seeds[i], Fused: fused})
				if err != nil {
					t.Fatalf("%v fused=%v member %d: solo run: %v", alg, fused, i, err)
				}
				sub := batched.Colors[starts[i]:starts[i+1]]
				if !slices.Equal(sub, solo.Colors) {
					t.Errorf("%v fused=%v member %d: batched colors differ from solo", alg, fused, i)
				}
			}
		}
	}
}

// TestBatchedPooledRunnerMatchesTransient: the pooled runner honours
// PrioritySegments identically to a transient run (the serving batch path
// goes through pooled runners).
func TestBatchedPooledRunnerMatchesTransient(t *testing.T) {
	members := []*graph.Graph{gen.Grid2D(10, 7), gen.GNM(200, 800, 5)}
	union, starts := graph.ConcatDisjoint(members...)
	segs := []PrioritySegment{
		{Start: starts[0], End: starts[1], Seed: 3},
		{Start: starts[1], End: starts[2], Seed: 11},
	}
	opt := Options{Fused: true, PrioritySegments: segs}
	want, err := Color(testDev(), union, AlgBaseline, opt)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(testDev())
	defer rn.Release()
	got, err := rn.Color(union, AlgBaseline, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(want.Colors, got.Colors) || want.Cycles != got.Cycles {
		t.Fatalf("pooled batched run differs from transient (cycles %d vs %d)", got.Cycles, want.Cycles)
	}
}
