// Resilient execution driver: ColorContext wraps the GPU coloring
// algorithms in a recovery ladder so callers always get a verified proper
// coloring or a structured, typed error — even with a fault injector
// flipping bits under the kernels. The ladder, cheapest rung first:
//
//  1. validate — every run is checked by color.Verify (this has always
//     been true; finish() does it);
//  2. repair — a run that completed with a damaged coloring is fixed
//     host-side by color.Repair, recoloring only the offending vertices;
//  3. retry — a run that failed structurally (watchdog, budget, iteration
//     cap, invalid worklists) is re-run with a reseeded priority hash,
//     shifting both the algorithm's choices and the fault pattern's
//     alignment;
//  4. degrade — when the GPU attempts are exhausted, the CPU greedy
//     baseline produces the coloring.
//
// Recovery never changes fault-free behaviour: with Device.Fault == nil a
// first attempt succeeds and returns bit-identical Results (colors and
// cycles) to the plain Color call.
package gpucolor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"gcolor/internal/color"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// repairScratch pools the rung-2 repair buffers so repeated recoveries on
// the serving path stay allocation-free once warm.
var repairScratch = sync.Pool{New: func() any { return new(color.Scratch) }}

// Typed failures, usable with errors.Is / errors.As.
var (
	// ErrMaxIterations reports that a run hit the Options.MaxIterations
	// safety cap without converging.
	ErrMaxIterations = errors.New("iteration limit reached")
	// ErrWatchdog reports livelock: the active-vertex count made no
	// progress for ResilientOptions.StallWindow consecutive iterations.
	ErrWatchdog = errors.New("watchdog: no cross-iteration progress")
	// ErrBudgetExceeded reports that a run overran its simulated-cycle
	// budget.
	ErrBudgetExceeded = errors.New("cycle budget exceeded")
)

// InvalidColoringError reports that a run completed but produced a
// coloring that fails verification. Result carries the damaged result so
// the repair pass can work on it.
type InvalidColoringError struct {
	Result *Result
	Err    error
}

func (e *InvalidColoringError) Error() string {
	return fmt.Sprintf("gpucolor: produced invalid coloring: %v", e.Err)
}

func (e *InvalidColoringError) Unwrap() error { return e.Err }

// FaultError wraps a run failure that happened with a fault injector
// armed, attaching the injector's counters at failure time.
type FaultError struct {
	Stats simt.FaultStats
	Err   error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("gpucolor: failed under fault injection (%d faults injected): %v",
		e.Stats.Injected(), e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// RecoveryLevel records which rung of the recovery ladder produced the
// final coloring.
type RecoveryLevel int

const (
	// RecoveryNone: the first GPU attempt verified clean.
	RecoveryNone RecoveryLevel = iota
	// RecoveryRepair: the GPU coloring was damaged and repaired host-side.
	RecoveryRepair
	// RecoveryRetry: a reseeded GPU re-run succeeded after earlier
	// attempts failed.
	RecoveryRetry
	// RecoveryCPU: all GPU attempts failed; the CPU greedy baseline
	// produced the coloring.
	RecoveryCPU
)

// String implements fmt.Stringer.
func (l RecoveryLevel) String() string {
	switch l {
	case RecoveryNone:
		return "none"
	case RecoveryRepair:
		return "repair"
	case RecoveryRetry:
		return "retry"
	case RecoveryCPU:
		return "cpu-fallback"
	default:
		return fmt.Sprintf("recovery(%d)", int(l))
	}
}

// OutcomeKind is the typed classification of one resilient run, the form
// the serving layer's device-health scorer consumes. It collapses the
// (Outcome, error) pair of ColorContext into a single discriminant: how
// well did the device behave, regardless of whether the request as a whole
// was rescued.
type OutcomeKind int

const (
	// OutcomeSuccess: first GPU attempt verified clean.
	OutcomeSuccess OutcomeKind = iota
	// OutcomeRepaired: the GPU coloring was damaged but repaired host-side.
	OutcomeRepaired
	// OutcomeRetried: a reseeded GPU re-run succeeded after failures.
	OutcomeRetried
	// OutcomeCPUFallback: every GPU attempt failed; the CPU produced the
	// coloring. The request succeeded but the device contributed nothing.
	OutcomeCPUFallback
	// OutcomeWatchdog: the run failed with the livelock watchdog.
	OutcomeWatchdog
	// OutcomeBudget: the run failed by exhausting its cycle budget.
	OutcomeBudget
	// OutcomeCanceled: the caller's context ended the run; says nothing
	// about device health (hedge losers and drained jobs land here).
	OutcomeCanceled
	// OutcomeFailed: any other failure (invalid coloring past repair,
	// iteration cap, fault-wrapped errors).
	OutcomeFailed
)

// String implements fmt.Stringer.
func (k OutcomeKind) String() string {
	switch k {
	case OutcomeSuccess:
		return "success"
	case OutcomeRepaired:
		return "repaired"
	case OutcomeRetried:
		return "retried"
	case OutcomeCPUFallback:
		return "cpu-fallback"
	case OutcomeWatchdog:
		return "watchdog"
	case OutcomeBudget:
		return "budget-exhausted"
	case OutcomeCanceled:
		return "canceled"
	case OutcomeFailed:
		return "failed"
	default:
		return fmt.Sprintf("outcome(%d)", int(k))
	}
}

// Classify maps a ColorContext result pair to its OutcomeKind.
// Cancellation is checked first so a run whose joined attempt errors mix a
// watchdog with a context error is neutral rather than damning: the caller
// gave up, the device was not proven sick.
func Classify(out *Outcome, err error) OutcomeKind {
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			return OutcomeCanceled
		case errors.Is(err, ErrWatchdog):
			return OutcomeWatchdog
		case errors.Is(err, ErrBudgetExceeded):
			return OutcomeBudget
		default:
			return OutcomeFailed
		}
	}
	if out == nil {
		return OutcomeFailed
	}
	switch out.Recovery {
	case RecoveryRepair:
		return OutcomeRepaired
	case RecoveryRetry:
		return OutcomeRetried
	case RecoveryCPU:
		return OutcomeCPUFallback
	default:
		return OutcomeSuccess
	}
}

// ResilientOptions configures ColorContext. The embedded Options configure
// each GPU attempt exactly as for Color.
type ResilientOptions struct {
	Options

	// CycleBudget aborts an attempt once its simulated cycles exceed the
	// budget (checked at iteration boundaries); 0 means unlimited.
	CycleBudget int64
	// StallWindow is the number of consecutive iterations the active
	// count may fail to shrink before the watchdog declares livelock;
	// 0 means 3. Fault-free runs strictly shrink every iteration, so the
	// watchdog never fires on them.
	StallWindow int
	// MaxRetries is the number of reseeded GPU re-runs after the first
	// attempt; 0 means 2, negative means none.
	MaxRetries int
	// NoCPUFallback disables the final degradation to the CPU greedy
	// baseline: exhausted retries return the joined attempt errors
	// instead.
	NoCPUFallback bool
}

func (o ResilientOptions) stallWindow() int {
	if o.StallWindow > 0 {
		return o.StallWindow
	}
	return 3
}

func (o ResilientOptions) retries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	if o.MaxRetries < 0 {
		return 0
	}
	return 2
}

// Outcome is the result of a resilient run: the (always verified) Result
// plus the recovery evidence.
type Outcome struct {
	*Result

	// Attempts is the number of GPU runs performed (0 if the graph went
	// straight to the CPU — not currently possible, but callers should
	// not assume >= 1).
	Attempts int
	// Recovery is the ladder rung that produced Result.
	Recovery RecoveryLevel
	// Repaired is the number of vertices recolored by the repair pass
	// (only non-zero when Recovery == RecoveryRepair).
	Repaired int
	// Faults snapshots the device's fault injector counters at the end of
	// the run (zero when no injector is armed).
	Faults simt.FaultStats
	// AttemptErrors lists the error of every failed GPU attempt, in
	// order; empty on a clean first run.
	AttemptErrors []error
}

// ColorContext colors g with the named algorithm under the resilient
// recovery ladder. It always returns either an Outcome whose coloring
// color.Verify accepts, or a typed error. Cancellation is honoured at
// iteration boundaries and between attempts; the context error is wrapped
// and retrievable with errors.Is.
//
// With dev.Fault == nil and a healthy run, the returned Result is
// bit-identical (colors, cycles, counters) to Color's: the guard hooks add
// no kernels and no cost.
func ColorContext(ctx context.Context, dev *simt.Device, g *graph.Graph, a Algorithm, opt ResilientOptions) (*Outcome, error) {
	if err := checkAlgorithm(a); err != nil {
		return nil, err
	}
	return colorResilient(ctx, dev, g, opt, func(o Options) (*Result, error) {
		return Color(dev, g, a, o)
	})
}

// colorResilient is the recovery ladder over an arbitrary single-attempt
// run function (a transient Color or a pooled Runner.Color).
func colorResilient(ctx context.Context, dev *simt.Device, g *graph.Graph, opt ResilientOptions, run func(Options) (*Result, error)) (*Outcome, error) {
	out := &Outcome{}
	baseSeed := opt.Options.seed()
	for attempt := 0; attempt <= opt.retries(); attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("gpucolor: canceled before attempt %d: %w", attempt+1, err)
		}
		o := opt.Options
		o.Seed = reseed(baseSeed, attempt)
		o.guard = newGuard(ctx, opt)
		res, err := runAttempt(dev, run, o)
		out.Attempts++
		out.Faults = faultStats(dev)
		if err == nil {
			out.Result = res
			if attempt > 0 {
				out.Recovery = RecoveryRetry
			}
			return out, nil
		}

		// Rung 2: a completed-but-damaged coloring is repaired in place.
		var ice *InvalidColoringError
		if errors.As(err, &ice) && ice.Result != nil && len(ice.Result.Colors) == g.NumVertices() {
			sc := repairScratch.Get().(*color.Scratch)
			repaired := color.RepairScratch(g, ice.Result.Colors, uint32(o.Seed), sc)
			repairScratch.Put(sc)
			if verr := color.Verify(g, ice.Result.Colors); verr == nil {
				ice.Result.NumColors = color.NormalizeColors(ice.Result.Colors)
				out.Result = ice.Result
				out.Recovery = RecoveryRepair
				out.Repaired = repaired
				return out, nil
			}
		}

		err = wrapFault(dev, err)
		out.AttemptErrors = append(out.AttemptErrors, fmt.Errorf("attempt %d: %w", attempt+1, err))
		if ctx.Err() != nil {
			return nil, errors.Join(out.AttemptErrors...)
		}
	}

	// Rung 4: graceful degradation to the CPU greedy baseline.
	if opt.NoCPUFallback {
		return nil, errors.Join(out.AttemptErrors...)
	}
	colors := color.Greedy(g, color.Natural, 0)
	if err := color.Verify(g, colors); err != nil {
		// Unreachable for a well-formed graph; surface it rather than
		// returning an unverified coloring.
		out.AttemptErrors = append(out.AttemptErrors, fmt.Errorf("cpu fallback: %w", err))
		return nil, errors.Join(out.AttemptErrors...)
	}
	out.Result = &Result{Colors: colors, NumColors: color.NumColors(colors)}
	out.Recovery = RecoveryCPU
	return out, nil
}

// runAttempt is one GPU run. With a fault injector armed, host-side panics
// on corrupted control data (the device already absorbs kernel-side ones)
// are converted to errors instead of crashing the caller.
func runAttempt(dev *simt.Device, run func(Options) (*Result, error), o Options) (res *Result, err error) {
	if dev.Fault != nil {
		defer func() {
			if p := recover(); p != nil {
				res, err = nil, fmt.Errorf("gpucolor: attempt panicked on corrupted state: %v", p)
			}
		}()
	}
	return run(o)
}

// newGuard builds the iteration-boundary hook enforcing cancellation, the
// cycle budget, and cross-iteration progress (livelock detection).
func newGuard(ctx context.Context, opt ResilientOptions) func(iter, active int, cycles int64) error {
	best := math.MaxInt
	stale := 0
	window := opt.stallWindow()
	budget := opt.CycleBudget
	return func(iter, active int, cycles int64) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("gpucolor: canceled at iteration %d: %w", iter, err)
		}
		if budget > 0 && cycles > budget {
			return fmt.Errorf("gpucolor: %d cycles after %d iterations (budget %d): %w",
				cycles, iter, budget, ErrBudgetExceeded)
		}
		if active < best {
			best = active
			stale = 0
			return nil
		}
		stale++
		if stale >= window {
			return fmt.Errorf("gpucolor: active count stuck at %d for %d iterations: %w",
				active, stale, ErrWatchdog)
		}
		return nil
	}
}

// reseed derives the priority seed of retry attempt k from the base seed;
// attempt 0 keeps the caller's seed so fault-free behaviour is unchanged.
func reseed(base uint32, attempt int) uint32 {
	if attempt == 0 {
		return base
	}
	s := base ^ uint32(attempt)*0x9e3779b9
	if s == 0 {
		s = 1
	}
	return s
}

func faultStats(dev *simt.Device) simt.FaultStats {
	if dev.Fault == nil {
		return simt.FaultStats{}
	}
	return dev.Fault.Stats()
}

// wrapFault attaches the fault counters to a failed attempt's error when
// an injector is armed and has actually fired.
func wrapFault(dev *simt.Device, err error) error {
	if dev.Fault == nil {
		return err
	}
	st := dev.Fault.Stats()
	if st.Injected() == 0 && st.GroupPanics == 0 && st.OOBReads == 0 && st.OOBWrites == 0 && st.OOBAtomics == 0 {
		return err
	}
	return &FaultError{Stats: st, Err: err}
}
