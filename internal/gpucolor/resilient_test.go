package gpucolor

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"testing"

	"gcolor/internal/color"
	"gcolor/internal/gen"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// chaosSuite is the graph set the acceptance criteria name: RMAT, GNM, Grid.
func chaosSuite() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat": gen.RMAT(8, 8, gen.Graph500, 3),
		"gnm":  gen.GNM(300, 1500, 4),
		"grid": gen.Grid2D(12, 11),
	}
}

func faultTestDev(rate float64, seed uint64) *simt.Device {
	d := testDev()
	d.Fault = simt.NewFaultInjector(seed, rate)
	return d
}

// TestColorContextCleanMatchesColor: with no injector, ColorContext's result
// must be bit-identical to Color's — same colors, cycles, and iteration
// profile — with the recovery ladder untouched.
func TestColorContextCleanMatchesColor(t *testing.T) {
	for name, g := range chaosSuite() {
		for _, alg := range Algorithms() {
			want, err := Color(testDev(), g, alg, Options{})
			if err != nil {
				t.Fatalf("%s/%v: baseline: %v", name, alg, err)
			}
			out, err := ColorContext(context.Background(), testDev(), g, alg, ResilientOptions{})
			if err != nil {
				t.Fatalf("%s/%v: ColorContext: %v", name, alg, err)
			}
			if out.Recovery != RecoveryNone || out.Attempts != 1 || len(out.AttemptErrors) != 0 {
				t.Errorf("%s/%v: recovery=%v attempts=%d errs=%d, want clean first run",
					name, alg, out.Recovery, out.Attempts, len(out.AttemptErrors))
			}
			if !slices.Equal(out.Colors, want.Colors) {
				t.Errorf("%s/%v: colors differ from plain Color", name, alg)
			}
			if out.Cycles != want.Cycles || out.Iterations != want.Iterations {
				t.Errorf("%s/%v: cycles/iterations %d/%d, want %d/%d",
					name, alg, out.Cycles, out.Iterations, want.Cycles, want.Iterations)
			}
			if out.Faults != (simt.FaultStats{}) {
				t.Errorf("%s/%v: nonzero fault stats without injector: %+v", name, alg, out.Faults)
			}
		}
	}
}

func TestColorContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ColorContext(ctx, testDev(), gen.GNM(100, 400, 1), AlgBaseline, ResilientOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

// TestGuardCancelMidRun exercises the iteration-boundary guard directly:
// cancellation between iterations surfaces as a typed context error.
func TestGuardCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	guard := newGuard(ctx, ResilientOptions{})
	if err := guard(0, 400, 0); err != nil {
		t.Fatalf("iteration 0: unexpected %v", err)
	}
	cancel()
	if err := guard(1, 350, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

// TestGuardWatchdogAndBudget checks the two remaining guard conditions in
// isolation: stale progress trips ErrWatchdog after the stall window, and a
// cycle overrun trips ErrBudgetExceeded.
func TestGuardWatchdogAndBudget(t *testing.T) {
	guard := newGuard(context.Background(), ResilientOptions{StallWindow: 2})
	if err := guard(0, 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := guard(1, 100, 0); err != nil {
		t.Fatalf("first stale iteration must be tolerated, got %v", err)
	}
	if err := guard(2, 100, 0); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err=%v, want ErrWatchdog", err)
	}
	guard = newGuard(context.Background(), ResilientOptions{CycleBudget: 500})
	if err := guard(0, 100, 400); err != nil {
		t.Fatal(err)
	}
	if err := guard(1, 90, 600); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err=%v, want ErrBudgetExceeded", err)
	}
}

func TestColorContextCycleBudget(t *testing.T) {
	g := gen.GNM(400, 3000, 2)
	// A 1-cycle budget fails every attempt; with fallback disabled the
	// typed error must surface through the join.
	opt := ResilientOptions{CycleBudget: 1, MaxRetries: -1, NoCPUFallback: true}
	_, err := ColorContext(context.Background(), testDev(), g, AlgBaseline, opt)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err=%v, want ErrBudgetExceeded", err)
	}
	// With the fallback enabled the caller still gets a verified coloring.
	opt.NoCPUFallback = false
	out, err := ColorContext(context.Background(), testDev(), g, AlgBaseline, opt)
	if err != nil {
		t.Fatalf("with fallback: %v", err)
	}
	if out.Recovery != RecoveryCPU {
		t.Fatalf("recovery=%v, want cpu-fallback", out.Recovery)
	}
	if err := color.Verify(g, out.Colors); err != nil {
		t.Fatalf("fallback coloring invalid: %v", err)
	}
}

// TestMaxIterationsTyped covers the Options.MaxIterations safety net: every
// algorithm must stop at the cap with an error that errors.Is-matches
// ErrMaxIterations rather than looping or panicking.
func TestMaxIterationsTyped(t *testing.T) {
	g := gen.Complete(12) // needs 12 iterations (6 for maxmin)
	for _, alg := range Algorithms() {
		_, err := Color(testDev(), g, alg, Options{MaxIterations: 2})
		if !errors.Is(err, ErrMaxIterations) {
			t.Errorf("%v: err=%v, want ErrMaxIterations", alg, err)
		}
	}
	_, err := SpeculativeD2(testDev(), g, Options{MaxIterations: 1})
	if !errors.Is(err, ErrMaxIterations) {
		t.Errorf("speculative-d2: err=%v, want ErrMaxIterations", err)
	}
}

// TestMaxIterationsRecoversThroughLadder: an iteration cap too tight for the
// GPU run is a structural failure, so the ladder must end at the CPU rung
// with a verified coloring.
func TestMaxIterationsRecoversThroughLadder(t *testing.T) {
	g := gen.Complete(12)
	opt := ResilientOptions{Options: Options{MaxIterations: 2}}
	out, err := ColorContext(context.Background(), testDev(), g, AlgBaseline, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Recovery != RecoveryCPU {
		t.Fatalf("recovery=%v, want cpu-fallback", out.Recovery)
	}
	if err := color.Verify(g, out.Colors); err != nil {
		t.Fatal(err)
	}
	if len(out.AttemptErrors) != out.Attempts {
		t.Fatalf("%d attempt errors for %d attempts", len(out.AttemptErrors), out.Attempts)
	}
	for _, aerr := range out.AttemptErrors {
		if !errors.Is(aerr, ErrMaxIterations) {
			t.Errorf("attempt error %v does not wrap ErrMaxIterations", aerr)
		}
	}
}

func TestWatchdogNeverFiresCleanRuns(t *testing.T) {
	// Fault-free iterative coloring strictly shrinks the active set, so an
	// aggressive 1-iteration stall window must never trip.
	for name, g := range chaosSuite() {
		for _, alg := range Algorithms() {
			opt := ResilientOptions{StallWindow: 1, MaxRetries: -1, NoCPUFallback: true}
			out, err := ColorContext(context.Background(), testDev(), g, alg, opt)
			if err != nil {
				t.Errorf("%s/%v: %v", name, alg, err)
				continue
			}
			if out.Recovery != RecoveryNone {
				t.Errorf("%s/%v: recovery=%v, want none", name, alg, out.Recovery)
			}
		}
	}
}

// TestChaosVerifiedOrTypedError is the acceptance chaos suite: at fault
// rates up to 1e-3 every outcome is either a coloring Verify accepts or a
// typed error, and reruns with the same (graph, fault seed) are
// bit-for-bit identical.
func TestChaosVerifiedOrTypedError(t *testing.T) {
	algs := []Algorithm{AlgBaseline, AlgMaxMin, AlgJP, AlgSpeculative, AlgHybrid}
	recoveries := map[RecoveryLevel]int{}
	for name, g := range chaosSuite() {
		for _, rate := range []float64{1e-5, 1e-4, 1e-3} {
			for ai, alg := range algs {
				faultSeed := uint64(0xC0FFEE + ai)
				run := func() (*Outcome, error) {
					dev := faultTestDev(rate, faultSeed)
					return ColorContext(context.Background(), dev, g, alg, ResilientOptions{})
				}
				out, err := run()
				if err != nil {
					// A typed error is an acceptable outcome; an untyped one
					// is a bug in the ladder.
					var fe *FaultError
					if !errors.As(err, &fe) && !errors.Is(err, ErrMaxIterations) &&
						!errors.Is(err, ErrWatchdog) && !errors.Is(err, ErrBudgetExceeded) {
						t.Errorf("%s/%v@%g: untyped error %v", name, alg, rate, err)
					}
				} else {
					if verr := color.Verify(g, out.Colors); verr != nil {
						t.Errorf("%s/%v@%g: unverified coloring escaped: %v", name, alg, rate, verr)
					}
					recoveries[out.Recovery]++
				}

				// Determinism: identical fresh device + injector => identical
				// outcome, down to colors, attempt count, and fault counters.
				out2, err2 := run()
				if (err == nil) != (err2 == nil) {
					t.Errorf("%s/%v@%g: rerun flipped between error and success", name, alg, rate)
					continue
				}
				if err != nil {
					if err.Error() != err2.Error() {
						t.Errorf("%s/%v@%g: rerun error differs:\n  %v\n  %v", name, alg, rate, err, err2)
					}
					continue
				}
				if !slices.Equal(out.Colors, out2.Colors) || out.Cycles != out2.Cycles ||
					out.Attempts != out2.Attempts || out.Recovery != out2.Recovery ||
					out.Repaired != out2.Repaired || out.Faults != out2.Faults {
					t.Errorf("%s/%v@%g: rerun not bit-identical (attempts %d/%d recovery %v/%v faults %+v/%+v)",
						name, alg, rate, out.Attempts, out2.Attempts, out.Recovery, out2.Recovery,
						out.Faults, out2.Faults)
				}
			}
		}
	}
	t.Logf("recovery distribution: %v", fmtRecoveries(recoveries))
}

func fmtRecoveries(m map[RecoveryLevel]int) string {
	s := ""
	for _, l := range []RecoveryLevel{RecoveryNone, RecoveryRepair, RecoveryRetry, RecoveryCPU} {
		s += fmt.Sprintf("%v=%d ", l, m[l])
	}
	return s
}

// TestChaosHighRateStillSafe drives the rate an order of magnitude past the
// acceptance bar: outcomes may be errors far more often, but never an
// unverified coloring, an untyped error, or a panic.
func TestChaosHighRateStillSafe(t *testing.T) {
	g := gen.GNM(300, 1500, 4)
	for seed := uint64(1); seed <= 8; seed++ {
		dev := faultTestDev(1e-2, seed)
		out, err := ColorContext(context.Background(), dev, g, AlgBaseline, ResilientOptions{})
		if err != nil {
			var fe *FaultError
			if !errors.As(err, &fe) && !errors.Is(err, ErrMaxIterations) &&
				!errors.Is(err, ErrWatchdog) {
				t.Errorf("seed %d: untyped error %v", seed, err)
			}
			continue
		}
		if verr := color.Verify(g, out.Colors); verr != nil {
			t.Errorf("seed %d: unverified coloring escaped: %v", seed, verr)
		}
	}
}

func TestReseedKeepsAttemptZeroAndNeverZero(t *testing.T) {
	if got := reseed(7, 0); got != 7 {
		t.Errorf("attempt 0 reseed = %d, want caller's seed 7", got)
	}
	seen := map[uint32]bool{}
	for attempt := 0; attempt < 8; attempt++ {
		s := reseed(7, attempt)
		if s == 0 {
			t.Errorf("attempt %d: reseed produced 0", attempt)
		}
		if seen[s] {
			t.Errorf("attempt %d: reseed repeated %d", attempt, s)
		}
		seen[s] = true
	}
	if reseed(0x9e3779b9, 1) != 1 {
		t.Errorf("zero-colliding reseed must map to 1")
	}
}

func TestFaultErrorUnwrap(t *testing.T) {
	inner := fmt.Errorf("wrapped: %w", ErrWatchdog)
	fe := &FaultError{Stats: simt.FaultStats{BitFlips: 3}, Err: inner}
	if !errors.Is(fe, ErrWatchdog) {
		t.Error("FaultError does not unwrap to ErrWatchdog")
	}
	ice := &InvalidColoringError{Err: inner}
	if !errors.Is(ice, ErrWatchdog) {
		t.Error("InvalidColoringError does not unwrap")
	}
}
