package gpucolor

import (
	"fmt"

	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// Algorithm names one of the GPU coloring algorithms.
type Algorithm int

const (
	// AlgBaseline is the thread-per-vertex colorMax kernel pair.
	AlgBaseline Algorithm = iota
	// AlgMaxMin is colorMaxMin: two colors per iteration.
	AlgMaxMin
	// AlgSpeculative is speculative first-fit with conflict resolution.
	AlgSpeculative
	// AlgHybrid splits work by degree between thread-per-vertex and
	// workgroup-per-vertex kernels.
	AlgHybrid
	// AlgJP selects independent sets like the baseline but assigns winners
	// their smallest available color (Jones–Plassmann assignment).
	AlgJP
	// AlgHybridMaxMin combines the hybrid degree split with colorMaxMin
	// selection (two colors per iteration).
	AlgHybridMaxMin
	// AlgHybridJP combines the hybrid degree split with Jones–Plassmann
	// assignment.
	AlgHybridJP
)

// Algorithms lists every algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgBaseline, AlgMaxMin, AlgJP, AlgSpeculative,
		AlgHybrid, AlgHybridMaxMin, AlgHybridJP,
	}
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgBaseline:
		return "baseline"
	case AlgMaxMin:
		return "maxmin"
	case AlgSpeculative:
		return "speculative"
	case AlgHybrid:
		return "hybrid"
	case AlgJP:
		return "jp"
	case AlgHybridMaxMin:
		return "hybrid-maxmin"
	case AlgHybridJP:
		return "hybrid-jp"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name (as printed by String) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("gpucolor: unknown algorithm %q (want baseline, maxmin, jp, speculative or hybrid)", s)
}

// Color runs the named algorithm on dev with a transient runner: device
// buffers are drawn from dev's arena for the run and returned when it
// ends. Callers that color repeatedly should hold a Runner, which keeps
// the buffers bound across runs.
func Color(dev *simt.Device, g *graph.Graph, a Algorithm, opt Options) (*Result, error) {
	if err := checkAlgorithm(a); err != nil {
		return nil, err
	}
	r := newRunner(dev, g, opt)
	defer r.close()
	return r.color(a)
}

func checkAlgorithm(a Algorithm) error {
	if a < AlgBaseline || a > AlgHybridJP {
		return fmt.Errorf("gpucolor: unknown algorithm %d", int(a))
	}
	return nil
}

// color dispatches one run on an already-bound runner.
func (r *runner) color(a Algorithm) (*Result, error) {
	switch a {
	case AlgBaseline:
		return r.runIterative(modeMax)
	case AlgMaxMin:
		return r.runIterative(modeMaxMin)
	case AlgSpeculative:
		return r.runSpeculative()
	case AlgHybrid:
		return r.runHybrid(modeMax)
	case AlgJP:
		return r.runIterative(modeJP)
	case AlgHybridMaxMin:
		return r.runHybrid(modeMaxMin)
	case AlgHybridJP:
		return r.runHybrid(modeJP)
	default:
		return nil, fmt.Errorf("gpucolor: unknown algorithm %d", int(a))
	}
}
