package gpucolor

import (
	"fmt"

	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// Algorithm names one of the GPU coloring algorithms.
type Algorithm int

const (
	// AlgBaseline is the thread-per-vertex colorMax kernel pair.
	AlgBaseline Algorithm = iota
	// AlgMaxMin is colorMaxMin: two colors per iteration.
	AlgMaxMin
	// AlgSpeculative is speculative first-fit with conflict resolution.
	AlgSpeculative
	// AlgHybrid splits work by degree between thread-per-vertex and
	// workgroup-per-vertex kernels.
	AlgHybrid
	// AlgJP selects independent sets like the baseline but assigns winners
	// their smallest available color (Jones–Plassmann assignment).
	AlgJP
	// AlgHybridMaxMin combines the hybrid degree split with colorMaxMin
	// selection (two colors per iteration).
	AlgHybridMaxMin
	// AlgHybridJP combines the hybrid degree split with Jones–Plassmann
	// assignment.
	AlgHybridJP
)

// Algorithms lists every algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgBaseline, AlgMaxMin, AlgJP, AlgSpeculative,
		AlgHybrid, AlgHybridMaxMin, AlgHybridJP,
	}
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgBaseline:
		return "baseline"
	case AlgMaxMin:
		return "maxmin"
	case AlgSpeculative:
		return "speculative"
	case AlgHybrid:
		return "hybrid"
	case AlgJP:
		return "jp"
	case AlgHybridMaxMin:
		return "hybrid-maxmin"
	case AlgHybridJP:
		return "hybrid-jp"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a name (as printed by String) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("gpucolor: unknown algorithm %q (want baseline, maxmin, jp, speculative or hybrid)", s)
}

// Color runs the named algorithm on dev.
func Color(dev *simt.Device, g *graph.Graph, a Algorithm, opt Options) (*Result, error) {
	switch a {
	case AlgBaseline:
		return Baseline(dev, g, opt)
	case AlgMaxMin:
		return MaxMin(dev, g, opt)
	case AlgSpeculative:
		return Speculative(dev, g, opt)
	case AlgHybrid:
		return Hybrid(dev, g, opt)
	case AlgJP:
		return JPColor(dev, g, opt)
	case AlgHybridMaxMin:
		return HybridMaxMin(dev, g, opt)
	case AlgHybridJP:
		return HybridJP(dev, g, opt)
	default:
		return nil, fmt.Errorf("gpucolor: unknown algorithm %d", int(a))
	}
}
