package gpucolor

import (
	"gcolor/internal/color"
	"gcolor/internal/simt"
)

// Fused candidate+assign kernel (Options.Fused) for the iterative max and
// maxmin algorithms.
//
// The two-kernel formulation exists to give every lane a stable snapshot
// of the colors: kernel 1 decides winners against colors frozen across the
// launch, kernel 2 writes them. The fused kernel drops the snapshot and
// instead reconstructs each neighbour's *launch-time* activity from the
// live color array: a vertex is on this iteration's worklist iff its color
// is still Uncolored — and if a winner has already published mid-launch,
// its new color is exactly this iteration's (2*iter or 2*iter+1 for
// maxmin, iter for max), which is numerically distinct from every color
// any earlier iteration assigned. So
//
//	active(u) ⇔ col[u] ∈ {-1, curMax, curMin}
//
// holds at every instant of the launch regardless of interleaving, the
// priority comparison runs over exactly the set kernel 1 would have used,
// and the fused run's winners — hence colors, worklists, iteration counts
// — are bit-identical to the two-kernel run's. The cross-lane traffic on
// col goes through LdShared/StShared: well-defined relaxed atomics on the
// host, costed as the plain loads and stores they are on GCN-class
// hardware (a winner's store is to its own cell; there are no
// read-modify-write races to serialize).
//
// What fusion saves, per iteration: one kernel-launch overhead, the second
// kernel's reload of the worklist entry, and the win-flag round trip
// (kernel 1's store + kernel 2's load) — strictly fewer simulated cycles,
// with the win buffer bypassed entirely.

// fuseAndCompact runs the fused kernel and rebuilds the worklist under the
// configured compaction strategy, returning the surviving count.
func (r *runner) fuseAndCompact(cur, next *simt.BufInt32, count int, iter int32, mode iterMode) int {
	if r.opt.Compaction == CompactionAtomic {
		r.cnt.Data()[0] = 0
		r.launch(r.fusedKernel(cur, next, count, iter, mode), true)
		kept := clampCount(int(r.cnt.Data()[0]), next.Len())
		sortWorklist(next, kept)
		return kept
	}
	r.launch(r.fusedKernel(cur, nil, count, iter, mode), true)
	return r.compactInto(cur, next, count)
}

// fusedKernel is kernels 1+2 in one launch: one work-item per worklist
// entry resolves its max/min verdict against launch-time-active neighbours
// and immediately publishes its color or its survival. Survivors feed scan
// compaction via keep flags (next == nil) or an atomic cursor (next !=
// nil), exactly like assignKernel.
func (r *runner) fusedKernel(wl, next *simt.BufInt32, count int, iter int32, mode iterMode) *simt.RunResult {
	maxmin := mode == modeMaxMin
	curMax := iter
	curMin := int32(-2) // matches no color: modeMax assigns no min winners
	if maxmin {
		curMax, curMin = 2*iter, 2*iter+1
	}
	return r.dev.Run("fused"+mode.suffix(), count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		pv := uint32(c.Ld(r.prio, v))
		start := c.Ld(r.off, v)
		end := c.Ld(r.off, v+1)
		isMax, isMin := true, true
		for e := start; e < end; e++ {
			u := c.Ld(r.adj, e)
			cu := c.LdShared(r.col, u)
			if cu != uncoloredConst && cu != curMax && cu != curMin {
				continue // colored in an earlier iteration: inactive
			}
			pu := uint32(c.Ld(r.prio, u))
			c.Op(2) // two priority comparisons, as in candidateKernel
			if color.PriorityGreater(pu, u, pv, v) {
				isMax = false
			} else {
				isMin = false
			}
		}
		survived := int32(0)
		c.Op(3) // kernel 1's verdict resolution + kernel 2's branch
		switch {
		case isMax:
			c.StShared(r.col, v, curMax)
		case maxmin && isMin:
			c.StShared(r.col, v, curMin)
		default:
			survived = 1
			if next != nil {
				slot := c.AtomicAdd(r.cnt, 0, 1)
				c.St(next, slot, v)
			}
		}
		if next == nil {
			c.St(r.keep, c.Global, survived)
		}
	})
}
