package gpucolor

import (
	"fmt"

	"gcolor/internal/color"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// Baseline colors g with the thread-per-vertex iterative independent-set
// algorithm (Pannotia colorMax): per iteration, kernel 1 flags every
// uncolored vertex whose priority outranks all its uncolored neighbours, and
// kernel 2 gives flagged vertices the iteration number as their color while
// compacting the rest into the next worklist. The kernels are topology-
// driven and thread-per-vertex, so wavefronts containing high-degree
// vertices serialize on them — the load imbalance the paper characterizes.
func Baseline(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	return Color(dev, g, AlgBaseline, opt)
}

// MaxMin is the colorMaxMin variant: each iteration colors both the local
// priority maxima (color 2i) and the local minima (color 2i+1), roughly
// halving the iteration count at the price of a second comparison per
// neighbour.
func MaxMin(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	return Color(dev, g, AlgMaxMin, opt)
}

// JPColor is the Jones–Plassmann assignment variant: the independent set is
// selected exactly as in the baseline, but winners take their smallest
// *available* color (a first-fit scan over already-colored neighbours)
// instead of the iteration number. Same convergence profile as the
// baseline, first-fit color quality, and a costlier assign kernel.
func JPColor(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	return Color(dev, g, AlgJP, opt)
}

// iterMode selects the flavour of the iterative independent-set loop.
type iterMode int

const (
	modeMax iterMode = iota
	modeMaxMin
	modeJP
)

func (m iterMode) suffix() string {
	switch m {
	case modeMaxMin:
		return "-maxmin"
	case modeJP:
		return "-jp"
	default:
		return ""
	}
}

const (
	winNone = int32(0)
	winMax  = int32(1)
	winMin  = int32(2)
)

func (r *runner) runIterative(mode iterMode) (*Result, error) {
	// Jones–Plassmann cannot fuse: a first-fit color written mid-launch is
	// indistinguishable from a color assigned iterations ago, so readers
	// could not reconstruct the launch-time active set.
	fused := r.opt.Fused && mode != modeJP
	count := int(r.n)
	cur, next := r.wlA, r.wlB
	for iter := 0; count > 0; iter++ {
		if iter >= r.opt.maxIters(int(r.n)) {
			return nil, fmt.Errorf("gpucolor: no convergence after %d iterations: %w", iter, ErrMaxIterations)
		}
		if err := r.checkIter(iter, count); err != nil {
			return nil, err
		}
		r.res.ActivePerIter = append(r.res.ActivePerIter, count)
		r.res.Iterations++

		if fused {
			count = r.fuseAndCompact(cur, next, count, int32(iter), mode)
		} else {
			r.launch(r.candidateKernel("candidate"+mode.suffix(), cur, count, mode), true)
			count = r.assignAndCompact(cur, next, count, int32(iter), mode)
		}
		cur, next = next, cur
	}
	return r.finish()
}

// assignAndCompact runs kernel 2 and rebuilds the worklist under the
// configured compaction strategy, returning the surviving count.
func (r *runner) assignAndCompact(cur, next *simt.BufInt32, count int, iter int32, mode iterMode) int {
	if r.opt.Compaction == CompactionAtomic {
		r.cnt.Data()[0] = 0
		r.launch(r.assignKernel(cur, next, count, iter, mode), false)
		kept := clampCount(int(r.cnt.Data()[0]), next.Len())
		sortWorklist(next, kept)
		return kept
	}
	r.launch(r.assignKernel(cur, nil, count, iter, mode), false)
	return r.compactInto(cur, next, count)
}

// candidateKernel is kernel 1: one work-item per worklist entry, reducing
// the vertex's full neighbour list to decide local max (and for maxmin,
// min) status among uncolored vertices. Like the original colorMax kernel
// it scans the entire list every iteration — there is no early exit — which
// is exactly why a high-degree lane serializes its whole wavefront. It
// reads colors (stable within the launch) and writes only its own win flag.
func (r *runner) candidateKernel(name string, wl *simt.BufInt32, count int, mode iterMode) *simt.RunResult {
	maxmin := mode == modeMaxMin
	return r.dev.Run(name, count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		pv := uint32(c.Ld(r.prio, v))
		start := c.Ld(r.off, v)
		end := c.Ld(r.off, v+1)
		isMax, isMin := true, true
		for e := start; e < end; e++ {
			u := c.Ld(r.adj, e)
			if c.Ld(r.col, u) != uncoloredConst {
				continue
			}
			pu := uint32(c.Ld(r.prio, u))
			c.Op(2) // two priority comparisons
			if color.PriorityGreater(pu, u, pv, v) {
				isMax = false
			} else {
				isMin = false
			}
		}
		flag := winNone
		switch {
		case isMax:
			flag = winMax
		case maxmin && isMin:
			flag = winMin
		}
		c.Op(2)
		c.St(r.win, v, flag)
	})
}

// assignKernel is kernel 2: winners take their color; everyone else
// survives into the next worklist — via per-position keep flags consumed by
// scan compaction (next == nil), or via an atomic cursor (next != nil).
// For modeJP the winner's color is its smallest available one — a first-fit
// scan over the neighbour colors, which are stable in this launch because
// no two adjacent vertices can both be winners.
func (r *runner) assignKernel(wl, next *simt.BufInt32, count int, iter int32, mode iterMode) *simt.RunResult {
	return r.dev.Run("assign"+mode.suffix(), count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		survived := int32(0)
		switch c.Ld(r.win, v) {
		case winMax:
			switch mode {
			case modeMaxMin:
				c.St(r.col, v, 2*iter)
			case modeJP:
				c.St(r.col, v, r.firstFitColor(c, v))
			default:
				c.St(r.col, v, iter)
			}
		case winMin:
			c.St(r.col, v, 2*iter+1)
		default:
			survived = 1
			if next != nil {
				slot := c.AtomicAdd(r.cnt, 0, 1)
				c.St(next, slot, v)
			}
		}
		if next == nil {
			c.St(r.keep, c.Global, survived)
		}
		c.Op(1)
	})
}

// firstFitColor scans v's neighbour colors and returns the smallest color
// not in use (some color in [0, deg] is always free).
func (r *runner) firstFitColor(c *simt.Ctx, v int32) int32 {
	start := c.Ld(r.off, v)
	end := c.Ld(r.off, v+1)
	deg := end - start
	forbidden := make([]bool, deg+1)
	for e := start; e < end; e++ {
		u := c.Ld(r.adj, e)
		if cu := c.Ld(r.col, u); cu >= 0 && cu <= deg {
			forbidden[cu] = true
		}
	}
	pick := int32(0)
	for forbidden[pick] {
		pick++
	}
	c.Op(int(deg) + 1)
	return pick
}
