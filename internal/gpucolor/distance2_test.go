package gpucolor

import (
	"testing"
	"testing/quick"

	"gcolor/internal/color"
	"gcolor/internal/gen"
)

func TestSpeculativeD2Proper(t *testing.T) {
	for name, g := range suite() {
		if g.NumEdges() > 5000 {
			continue // two-hop scans on the dense suite graphs are slow
		}
		res, err := SpeculativeD2(testDev(), g, Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := color.VerifyD2(g, res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSpeculativeD2Star(t *testing.T) {
	n := 40
	g := gen.Star(n)
	res, err := SpeculativeD2(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != n {
		t.Errorf("star d2 colors = %d, want %d (all leaves mutually at distance 2)", res.NumColors, n)
	}
}

func TestSpeculativeD2MatchesCPUQualityClass(t *testing.T) {
	g := gen.Grid2D(10, 12)
	gpu, err := SpeculativeD2(testDev(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu := color.GreedyD2(g)
	// Same quality class: both first-fit within the two-hop bound.
	if gpu.NumColors > color.D2Bound(g) {
		t.Errorf("gpu d2 colors %d exceed bound %d", gpu.NumColors, color.D2Bound(g))
	}
	if cpuN := color.NumColors(cpu); gpu.NumColors > 2*cpuN {
		t.Errorf("gpu d2 colors %d far above cpu first-fit %d", gpu.NumColors, cpuN)
	}
}

func TestSpeculativeD2Deterministic(t *testing.T) {
	g := gen.GNM(150, 450, 3)
	a, err := SpeculativeD2(testDev(), g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpeculativeD2(testDev(), g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("nondeterministic at vertex %d", v)
		}
	}
}

// Property: SpeculativeD2 produces proper distance-2 colorings on arbitrary
// sparse random graphs.
func TestSpeculativeD2Property(t *testing.T) {
	dev := testDev()
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%50 + 1
		g := gen.GNM(n, 2*n, seed)
		res, err := SpeculativeD2(dev, g, Options{Seed: uint32(seed)})
		if err != nil {
			return false
		}
		return color.VerifyD2(g, res.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
