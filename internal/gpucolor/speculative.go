package gpucolor

import (
	"fmt"

	"gcolor/internal/color"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// Speculative colors g with GPU speculative first-fit (the
// Gebremedhin–Manne scheme the paper's discussion compares against): every
// active vertex takes the smallest color not used by its neighbours,
// conflicts (monochromatic edges; the lower-priority endpoint loses) are
// detected, and the losers retry. It typically uses noticeably fewer colors
// than the iteration-numbered independent-set kernels.
//
// The speculation reads each round from a snapshot of the colors taken at
// the start of the round — the synchronous formulation of the algorithm.
// On real hardware lanes race on the live array and the conflict set
// depends on warp timing; the snapshot makes the simulated conflict set the
// one a fully-concurrent machine would produce (every active neighbour
// still looks uncolored) and keeps runs deterministic. The snapshot copy is
// charged as a kernel.
func Speculative(dev *simt.Device, g *graph.Graph, opt Options) (*Result, error) {
	return Color(dev, g, AlgSpeculative, opt)
}

func (r *runner) runSpeculative() (*Result, error) {
	snap := r.snapBuf()
	count := int(r.n)
	cur, next := r.wlA, r.wlB
	for round := 0; count > 0; round++ {
		if round >= r.opt.maxIters(int(r.n)) {
			return nil, fmt.Errorf("gpucolor: speculative did not converge after %d rounds: %w", round, ErrMaxIterations)
		}
		if err := r.checkIter(round, count); err != nil {
			return nil, err
		}
		r.res.ActivePerIter = append(r.res.ActivePerIter, count)
		r.res.Iterations++

		r.launch(r.snapshotKernel(snap), false)
		r.launch(r.speculateKernel(cur, snap, count), true)

		count = r.flagAndCompact(cur, next, count, r.detectKernel)

		if count > 0 {
			r.launch(r.resetKernel(next, count), false)
		}
		cur, next = next, cur
	}
	return r.finish()
}

// snapshotKernel copies the live color array into the round's read view.
func (r *runner) snapshotKernel(snap *simt.BufInt32) *simt.RunResult {
	return r.dev.Run("snapshot", int(r.n), func(c *simt.Ctx) {
		c.St(snap, c.Global, c.Ld(r.col, c.Global))
	})
}

// speculateKernel assigns each active vertex the smallest color not used by
// any neighbour in the snapshot view. Writes go only to the vertex's own
// slot, so the kernel is race-free.
func (r *runner) speculateKernel(wl, snap *simt.BufInt32, count int) *simt.RunResult {
	return r.dev.Run("speculate", count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		start := c.Ld(r.off, v)
		end := c.Ld(r.off, v+1)
		deg := end - start
		// forbidden[i] marks color i in use by a neighbour; some color in
		// [0, deg] is always free. This is the kernel's private scratch.
		forbidden := make([]bool, deg+1)
		for e := start; e < end; e++ {
			u := c.Ld(r.adj, e)
			if cu := c.Ld(snap, u); cu >= 0 && cu <= deg {
				forbidden[cu] = true
			}
		}
		pick := int32(0)
		for forbidden[pick] {
			pick++
		}
		c.Op(int(deg) + 1)
		c.St(r.col, v, pick)
	})
}

// detectKernel finds speculation conflicts: of a monochromatic edge, the
// endpoint with the lower hashed priority loses and retries. Random-priority
// loser selection keeps conflict chains short — resolving by vertex id
// (lower id wins) degenerates to O(diameter) rounds on meshes, because the
// conflict frontier crawls one vertex per round along id order. Colors are
// stable within this launch; losers go to the next worklist.
func (r *runner) detectKernel(wl, next *simt.BufInt32, count int) *simt.RunResult {
	return r.dev.Run("detect", count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		cv := c.Ld(r.col, v)
		pv := uint32(c.Ld(r.prio, v))
		start := c.Ld(r.off, v)
		end := c.Ld(r.off, v+1)
		lost := int32(0)
		for e := start; e < end; e++ {
			u := c.Ld(r.adj, e)
			c.Op(2)
			if c.Ld(r.col, u) != cv {
				continue
			}
			pu := uint32(c.Ld(r.prio, u))
			c.Op(2)
			if color.PriorityGreater(pu, u, pv, v) {
				lost = 1
				break
			}
		}
		if next == nil {
			c.St(r.keep, c.Global, lost)
		} else if lost == 1 {
			slot := c.AtomicAdd(r.cnt, 0, 1)
			c.St(next, slot, v)
		}
	})
}

// resetKernel un-colors the conflict losers before their retry round.
func (r *runner) resetKernel(wl *simt.BufInt32, count int) *simt.RunResult {
	return r.dev.Run("reset", count, func(c *simt.Ctx) {
		v := c.Ld(wl, c.Global)
		c.St(r.col, v, uncoloredConst)
	})
}
