// Package gpucolor implements the paper's contribution: graph coloring on
// the (simulated) GPU. It provides the baseline iterative independent-set
// kernels (colorMax and colorMaxMin in Pannotia's terminology), a
// speculative first-fit variant, and the two load-imbalance techniques the
// paper evaluates — work-stealing workgroup scheduling and the hybrid
// algorithm that routes high-degree vertices to workgroup-per-vertex
// cooperative kernels.
//
// All algorithms run on an simt.Device; their Results carry both the
// coloring and the simulated performance evidence (cycles, per-kernel
// breakdown, wavefront work distribution, per-CU load, utilization, steals)
// that the experiment harness turns into the paper's tables and figures.
package gpucolor

import (
	"math"
	"slices"

	"gcolor/internal/color"
	"gcolor/internal/gpuprim"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
	"gcolor/internal/trace"
)

// CompactionMode selects how worklists are rebuilt between iterations.
type CompactionMode int

const (
	// CompactionScan (the default) rebuilds worklists with device-side
	// prefix-sum stream compaction (gpuprim): order-preserving,
	// deterministic, and costed as the three scan kernels it launches.
	CompactionScan CompactionMode = iota
	// CompactionAtomic uses the Pannotia-era idiom: an atomic cursor per
	// worklist. On real hardware the output order depends on timing; the
	// simulator normalizes it to ascending order after each launch so runs
	// stay reproducible.
	CompactionAtomic
)

// String implements fmt.Stringer.
func (m CompactionMode) String() string {
	if m == CompactionAtomic {
		return "atomic"
	}
	return "scan"
}

// Options configures a GPU coloring run.
type Options struct {
	// Seed selects the vertex priority hash (default 0 -> seed 1).
	Seed uint32
	// HybridThreshold is the degree at or above which Hybrid routes a vertex
	// to the cooperative kernel; 0 means the device's workgroup size.
	// Values outside the int32 domain are normalized, not truncated:
	// negative behaves like 0 and anything above MaxInt32 means "no vertex
	// is big" (see NormalizeHybridThreshold).
	HybridThreshold int
	// MaxIterations caps the outer loop as a safety net; 0 means the number
	// of vertices + 1 (iterative IS coloring colors >= 1 vertex per
	// iteration, so that bound is never hit by a correct run).
	MaxIterations int
	// Compaction selects the worklist rebuild strategy.
	Compaction CompactionMode
	// Fused merges each iteration's candidate and assign kernels into one
	// launch for the iterative max/maxmin algorithms: winners publish
	// their colors through relaxed-atomic stores and every lane resolves
	// its neighbours' launch-time activity locally, so the coloring is
	// bit-identical to the two-kernel run while spending strictly fewer
	// simulated cycles (one launch overhead and the second kernel's
	// redundant loads disappear). Jones–Plassmann assignment cannot fuse —
	// its first-fit colors are indistinguishable from earlier iterations'
	// colors mid-launch — and the hybrid big-vertex path keeps the
	// two-kernel snapshot semantics; both ignore the flag. Off by default.
	Fused bool
	// Trace records the per-launch timeline in Result.Timeline (for
	// chrome-trace export); off by default to keep memory flat.
	Trace bool

	// PrioritySegments, when non-empty, replaces the single-seed priority
	// fill for block-diagonal batched runs: vertices in [Start, End) get
	// exactly the priorities member graph i would have received in a solo
	// run with Seed — ids rebased to Start, the same 0->1 seed default
	// applied. Every coloring algorithm here is deterministic given the
	// priority array and touches only same-component state, so a batch
	// member's colors are bit-identical to its solo run (see
	// TestBatchedPrioritySegments). Segments must be disjoint, sorted, and
	// cover 0..n exactly; Options.Seed is ignored when set.
	PrioritySegments []PrioritySegment

	// guard, when set, is invoked at every outer-loop iteration boundary
	// with the iteration number, the active-vertex count entering it, and
	// the cycles simulated so far; a non-nil return aborts the run with
	// that error. It is package-private plumbing for the resilient driver
	// (ColorContext): cancellation, cycle budgets, and livelock detection
	// all hook in here, costing nothing when unset.
	guard func(iter, active int, cycles int64) error
}

// NormalizeHybridThreshold clamps a hybrid degree threshold into the
// int32 domain the kernels compare in. Vertex degrees are int32 in the
// CSR, so a threshold above MaxInt32 can never match a real degree and
// clamps to MaxInt32 ("no vertex is big"); a bare int32(...) conversion
// would instead wrap it into a negative (silently replaced by the device
// default) or a small positive (silently routing every vertex to the
// cooperative kernel). Negative thresholds normalize to 0, the documented
// "use the device default" value.
func NormalizeHybridThreshold(t int) int {
	if t < 0 {
		return 0
	}
	if t > math.MaxInt32 {
		return math.MaxInt32
	}
	return t
}

// PrioritySegment assigns an independent priority stream to the contiguous
// vertex range [Start, End) of a block-diagonal batch graph (see
// Options.PrioritySegments and graph.ConcatDisjoint).
type PrioritySegment struct {
	Start, End int32
	Seed       uint32
}

func (o Options) seed() uint32 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// fillSegmentPriorities writes per-segment solo-run priorities into dst.
func fillSegmentPriorities(segs []PrioritySegment, dst []int32) {
	for _, s := range segs {
		seed := s.Seed
		if seed == 0 {
			seed = 1 // mirror Options.seed(): solo runs map 0 to 1 too
		}
		for v := s.Start; v < s.End; v++ {
			dst[v] = int32(color.Priority(v-s.Start, seed))
		}
	}
}

func (o Options) maxIters(n int) int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return n + 1
}

// Result is the outcome of one GPU coloring run.
type Result struct {
	// Colors is the proper coloring produced; NumColors the count used.
	Colors    []int32
	NumColors int
	// Iterations is the number of outer-loop iterations; ActivePerIter the
	// uncolored-vertex count entering each iteration (convergence profile).
	Iterations    int
	ActivePerIter []int

	// Cycles is total simulated time over all kernel launches;
	// KernelCycles breaks it down by kernel name.
	Cycles       int64
	KernelCycles map[string]int64
	// WavefrontWork lists per-wavefront cycles of the candidate/assign
	// kernels — the paper's intra-kernel imbalance evidence.
	WavefrontWork []int64
	// CUBusy accumulates per-CU busy cycles over all launches (inter-CU
	// imbalance evidence); Steals counts work-stealing events.
	CUBusy []int64
	Steals int64
	// Aggregate operation counters over all launches.
	ALUOps          int64
	MemAccesses     int64
	MemTransactions int64
	Atomics         int64
	CacheHits       int64

	// Timeline lists every kernel launch in order (only when Options.Trace
	// was set); export it with the trace package.
	Timeline []trace.Span

	busySum, busyMaxSum int64
	width               int
}

// SIMDUtilization returns the lane-occupancy fraction aggregated over every
// kernel launch of the run.
func (r *Result) SIMDUtilization() float64 {
	if r.busyMaxSum == 0 {
		return 0
	}
	return float64(r.busySum) / float64(int64(r.width)*r.busyMaxSum)
}

// runner holds the device-resident state shared by all algorithms. A
// runner is either transient — built by one package-level call, its arena
// buffers handed back when the run ends — or pooled, owned by an exported
// Runner that rebinds it to a new graph per job via reset. Every buffer is
// held at exactly the length the current graph needs (pooled reuse at a
// stale length would change out-of-bounds behaviour under fault injection)
// and re-initialized to the state a fresh allocation would have, so a warm
// runner is bit-identical to a cold one.
type runner struct {
	dev  *simt.Device
	g    *graph.Graph
	opt  Options
	n    int32
	off  *simt.BufInt32 // CSR offsets (bound view, rebound per graph)
	adj  *simt.BufInt32 // CSR adjacency (bound view, rebound per graph)
	prio *simt.BufInt32 // vertex priorities (uint32 bit patterns)
	col  *simt.BufInt32 // colors; -1 = uncolored
	win  *simt.BufInt32 // per-vertex candidate flag
	wlA  *simt.BufInt32 // worklist ping
	wlB  *simt.BufInt32 // worklist pong
	cnt  *simt.BufInt32 // worklist append counters (atomic compaction mode)
	keep *simt.BufInt32 // per-position survivor flags (scan compaction mode)
	scr  *simt.BufInt32 // scan scratch (scan compaction mode)

	// Algorithm-specific temporaries, acquired on first use and retained
	// (pooled) or released with the rest (transient).
	snap *simt.BufInt32 // speculative round snapshot
	bigA *simt.BufInt32 // hybrid high-degree worklist ping
	bigB *simt.BufInt32 // hybrid high-degree worklist pong

	ss     *gpuprim.ScanScratch
	seen   []bool // countDistinct scratch, grown monotonically
	pooled bool   // owned by a Runner: buffers survive across jobs

	res *Result
}

func newRunner(dev *simt.Device, g *graph.Graph, opt Options) *runner {
	r := &runner{dev: dev, ss: gpuprim.NewScanScratch(dev)}
	r.reset(g, opt)
	return r
}

// fit returns *pb at exactly sz elements, releasing and re-acquiring from
// the device arena when the length differs. The returned buffer's contents
// are unspecified — reset and the temp getters re-initialize as needed.
func (r *runner) fit(pb **simt.BufInt32, sz int) *simt.BufInt32 {
	if b := *pb; b != nil {
		if b.Len() == sz {
			return b
		}
		r.dev.Release(b)
	}
	*pb = r.dev.AllocInt32(sz)
	return *pb
}

// reset rebinds the runner to a new graph and run configuration, reusing
// every buffer whose length still fits. After reset the device-visible
// state is indistinguishable from a freshly built runner's.
func (r *runner) reset(g *graph.Graph, opt Options) {
	n := g.NumVertices()
	r.g, r.opt, r.n = g, opt, int32(n)
	if r.off == nil {
		r.off = r.dev.BindInt32(g.Offsets())
		r.adj = r.dev.BindInt32(g.Adj())
	} else {
		r.dev.Rebind(r.off, g.Offsets())
		r.dev.Rebind(r.adj, g.Adj())
	}
	if len(opt.PrioritySegments) > 0 {
		fillSegmentPriorities(opt.PrioritySegments, r.fit(&r.prio, n).Data())
	} else {
		color.PrioritiesInto(g, opt.seed(), r.fit(&r.prio, n).Data())
	}
	r.fit(&r.col, n).Fill(color.Uncolored)
	r.fit(&r.win, n).Fill(0)
	wlA := r.fit(&r.wlA, n)
	for v := 0; v < n; v++ {
		wlA.Data()[v] = int32(v)
	}
	r.fit(&r.wlB, n).Fill(0)
	r.fit(&r.cnt, 4).Fill(0)
	r.fit(&r.keep, n).Fill(0)
	r.fit(&r.scr, n).Fill(0)
	r.res = &Result{
		KernelCycles: make(map[string]int64),
		CUBusy:       make([]int64, r.dev.NumCUs),
		width:        r.dev.WavefrontWidth,
	}
}

// snapBuf returns the speculative snapshot temp, zeroed as a fresh
// allocation would be.
func (r *runner) snapBuf() *simt.BufInt32 {
	b := r.fit(&r.snap, int(r.n))
	b.Fill(0)
	return b
}

// bigBufs returns the hybrid high-degree worklist pair, zeroed.
func (r *runner) bigBufs() (cur, next *simt.BufInt32) {
	cur = r.fit(&r.bigA, int(r.n))
	next = r.fit(&r.bigB, int(r.n))
	cur.Fill(0)
	next.Fill(0)
	return cur, next
}

// release hands b back to the device arena if held.
func (r *runner) release(pb **simt.BufInt32) {
	if *pb != nil {
		r.dev.Release(*pb)
		*pb = nil
	}
}

// close ends a transient run: every arena buffer except col goes back to
// the device pool. col stays out because the returned Result (including
// the partial Result inside an InvalidColoringError) aliases its backing
// array. Pooled runners keep everything — their owner releases via
// releaseAll when retiring the runner.
func (r *runner) close() {
	if r.pooled {
		return
	}
	r.release(&r.prio)
	r.release(&r.win)
	r.release(&r.wlA)
	r.release(&r.wlB)
	r.release(&r.cnt)
	r.release(&r.keep)
	r.release(&r.scr)
	r.release(&r.snap)
	r.release(&r.bigA)
	r.release(&r.bigB)
	r.ss.Release()
}

// releaseAll retires a pooled runner, returning every buffer — col
// included, which is safe because pooled runs copy colors out.
func (r *runner) releaseAll() {
	r.pooled = false
	r.close()
	r.release(&r.col)
}

// launch folds one kernel's results into the run totals. keepWavefronts
// marks kernels whose wavefront distribution feeds the imbalance figures.
func (r *runner) launch(rr *simt.RunResult, keepWavefronts bool) {
	r.res.Cycles += rr.Cycles()
	r.res.KernelCycles[rr.Stats.Name] += rr.Cycles()
	for i, b := range rr.Sched.CUBusy {
		r.res.CUBusy[i] += b
	}
	r.res.Steals += rr.Sched.Steals
	busy, busyMax := rr.Stats.BusyParts()
	r.res.busySum += busy
	r.res.busyMaxSum += busyMax
	r.res.ALUOps += rr.Stats.ALUOps
	r.res.MemAccesses += rr.Stats.MemAccesses
	r.res.MemTransactions += rr.Stats.MemTransactions
	r.res.Atomics += rr.Stats.Atomics
	r.res.CacheHits += rr.Stats.CacheHits
	if keepWavefronts {
		r.res.WavefrontWork = append(r.res.WavefrontWork, rr.Stats.WavefrontCost...)
	}
	if r.opt.Trace {
		busy := make([]int64, len(rr.Sched.CUBusy))
		copy(busy, rr.Sched.CUBusy)
		r.res.Timeline = append(r.res.Timeline, trace.Span{
			Name:   rr.Stats.Name,
			Cycles: rr.Cycles(),
			CUBusy: busy,
		})
	}
	// Everything above copied what it needed; the launch record goes back
	// to the device pools so steady-state kernels allocate nothing.
	r.dev.Recycle(rr)
}

// checkIter runs the iteration-boundary guard, if any (see Options.guard).
func (r *runner) checkIter(iter, active int) error {
	if r.opt.guard == nil {
		return nil
	}
	return r.opt.guard(iter, active, r.res.Cycles)
}

// sealColors publishes the coloring into the run's Result. Transient
// runners alias the device buffer — it is never released, exactly the
// pre-pooling behaviour. Pooled runners copy, because the col buffer will
// be re-initialized for the next job while the caller still holds the
// Result (and the repair pass may still be mutating it).
func (r *runner) sealColors() {
	if !r.pooled {
		r.res.Colors = r.col.Data()
		return
	}
	colors := make([]int32, r.n)
	copy(colors, r.col.Data())
	r.res.Colors = colors
}

// finish validates and seals the result. Colors are counted as distinct
// values because colorMaxMin can leave gaps in the color range (a final
// iteration may produce max winners but no min winners). A verification
// failure returns an *InvalidColoringError carrying the partial result so
// the resilient driver can hand it to the repair pass.
func (r *runner) finish() (*Result, error) {
	r.sealColors()
	if err := color.Verify(r.g, r.res.Colors); err != nil {
		return nil, &InvalidColoringError{Result: r.res, Err: err}
	}
	r.res.NumColors = r.countDistinct(r.res.Colors)
	return r.res, nil
}

// countDistinct counts the distinct colors in use against a runner-owned
// bitmap that grows to the largest color range seen and is reused across
// runs (it used to be allocated per finish).
func (r *runner) countDistinct(colors []int32) int {
	if len(colors) == 0 {
		return 0
	}
	need := color.NumColors(colors)
	if cap(r.seen) < need {
		r.seen = make([]bool, need)
	}
	seen := r.seen[:need]
	clear(seen)
	n := 0
	for _, c := range colors {
		if !seen[c] {
			seen[c] = true
			n++
		}
	}
	return n
}

// uncoloredConst mirrors color.Uncolored for use inside kernels.
const uncoloredConst = int32(-1)

// charger adapts launch accounting for gpuprim primitives.
func (r *runner) charger() gpuprim.Charger {
	return func(rr *simt.RunResult) { r.launch(rr, false) }
}

// clampCount bounds a device-reported worklist count to [0, max]. Fault-free
// runs never leave that range; under fault injection a corrupted scan total
// or append cursor must not drive the host loop out of its buffers.
func clampCount(k, max int) int {
	if k < 0 {
		return 0
	}
	if k > max {
		return max
	}
	return k
}

// compactInto rebuilds a worklist under scan compaction: src[0:count]
// entries whose r.keep flag is set move to dst, order preserved; returns
// the kept count. The scan's intermediate buffers come from the runner's
// retained scratch.
func (r *runner) compactInto(src, dst *simt.BufInt32, count int) int {
	return clampCount(gpuprim.CompactWith(r.dev, src, r.keep, dst, r.scr, count, r.ss, r.charger()), dst.Len())
}

// flagAndCompact runs a flag/append kernel (kern receives a nil next buffer
// in scan mode, meaning "write r.keep by position") and rebuilds the
// worklist under the configured compaction strategy.
func (r *runner) flagAndCompact(cur, next *simt.BufInt32, count int,
	kern func(wl, next *simt.BufInt32, count int) *simt.RunResult) int {
	if r.opt.Compaction == CompactionAtomic {
		r.cnt.Data()[0] = 0
		r.launch(kern(cur, next, count), false)
		kept := clampCount(int(r.cnt.Data()[0]), next.Len())
		sortWorklist(next, kept)
		return kept
	}
	r.launch(kern(cur, nil, count), false)
	return r.compactInto(cur, next, count)
}

// sortWorklist orders the first count worklist entries ascending. Real GPU
// implementations compact worklists with a stable prefix-sum scan, which
// preserves vertex order; the atomic-append idiom used in the kernels here
// produces the same *set* in an order that depends on execution
// interleaving. Sorting restores the scan order, which both matches the
// memory-access behaviour being modelled and makes every run bit-identical
// regardless of host parallelism.
func sortWorklist(wl *simt.BufInt32, count int) {
	if count <= 1 {
		return // already sorted; skip the sort machinery on the long tail
	}
	slices.Sort(wl.Data()[:count])
}
