package color

import (
	"testing"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
)

func benchGraph() *graph.Graph { return gen.RMAT(13, 16, gen.Graph500, 1) }

func BenchmarkGreedyNatural(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g, Natural, 0)
	}
}

func BenchmarkGreedySmallestLast(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g, SmallestLast, 0)
	}
}

func BenchmarkDSATUR(b *testing.B) {
	g := gen.RMAT(11, 8, gen.Graph500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DSATUR(g)
	}
}

func BenchmarkJonesPlassmann(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JonesPlassmann(g, 1, 0)
	}
}

func BenchmarkGebremedhinManne(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GebremedhinManne(g, 0)
	}
}

func BenchmarkVerify(b *testing.B) {
	g := benchGraph()
	colors := Greedy(g, Natural, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(g, colors); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyD2(b *testing.B) {
	g := gen.Grid2D(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyD2(g)
	}
}

func BenchmarkKempeReduce(b *testing.B) {
	g := gen.GNM(2000, 8000, 3)
	colors := Luby(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KempeReduce(g, colors, 2)
	}
}
