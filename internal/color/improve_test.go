package color

import (
	"testing"
	"testing/quick"

	"gcolor/internal/gen"
)

func TestNormalizeColors(t *testing.T) {
	colors := []int32{0, 4, 2, 4, 0}
	k := NormalizeColors(colors)
	if k != 3 {
		t.Errorf("k = %d, want 3", k)
	}
	want := []int32{0, 2, 1, 2, 0}
	for i := range want {
		if colors[i] != want[i] {
			t.Fatalf("normalized = %v, want %v", colors, want)
		}
	}
	// Uncolored entries survive untouched.
	c2 := []int32{-1, 5, 5}
	if k := NormalizeColors(c2); k != 1 || c2[0] != -1 || c2[1] != 0 {
		t.Errorf("NormalizeColors with uncolored = %v (k=%d)", c2, k)
	}
	if k := NormalizeColors(nil); k != 0 {
		t.Errorf("NormalizeColors(nil) = %d, want 0", k)
	}
}

func TestKempeReduceEvenCycle(t *testing.T) {
	// An even cycle colored wastefully with 3 colors reduces to 2.
	g := gen.Cycle(8)
	wasteful := []int32{0, 1, 0, 1, 0, 1, 0, 2}
	if err := Verify(g, wasteful); err != nil {
		t.Fatal(err)
	}
	improved, removed := KempeReduce(g, wasteful, 0)
	if err := Verify(g, improved); err != nil {
		t.Fatalf("KempeReduce broke the coloring: %v", err)
	}
	if NumColors(improved) != 2 || removed != 1 {
		t.Errorf("improved to %d colors (removed %d), want 2 colors", NumColors(improved), removed)
	}
	// Input untouched.
	if wasteful[7] != 2 {
		t.Error("KempeReduce mutated its input")
	}
}

func TestKempeReduceCompleteGraphIsTight(t *testing.T) {
	g := gen.Complete(6)
	colors := Greedy(g, Natural, 0)
	improved, removed := KempeReduce(g, colors, 0)
	if err := Verify(g, improved); err != nil {
		t.Fatal(err)
	}
	if removed != 0 || NumColors(improved) != 6 {
		t.Errorf("K6 cannot be reduced below 6 colors, got %d (removed %d)", NumColors(improved), removed)
	}
}

func TestKempeReduceImprovesIterativeIS(t *testing.T) {
	// Iteration-numbered colorings (what colorMax produces) are wasteful;
	// Kempe reduction must recover a meaningful share on a random graph.
	g := gen.GNM(300, 1200, 7)
	jp := JonesPlassmann(g, 1, 1)
	// Rebuild the wasteful variant: color = round index.
	wasteful := make([]int32, g.NumVertices())
	luby := Luby(g, 3)
	copy(wasteful, luby)
	before := NumColors(wasteful)
	improved, removed := KempeReduce(g, wasteful, 0)
	if err := Verify(g, improved); err != nil {
		t.Fatal(err)
	}
	after := NumColors(improved)
	if after > before {
		t.Errorf("KempeReduce increased colors: %d -> %d", before, after)
	}
	if after != before-removed {
		t.Errorf("color accounting: before=%d removed=%d after=%d", before, removed, after)
	}
	_ = jp
}

func TestKempeReduceMaxPasses(t *testing.T) {
	g := gen.Cycle(8)
	wasteful := []int32{0, 1, 0, 1, 0, 1, 2, 3}
	if err := Verify(g, wasteful); err != nil {
		t.Fatal(err)
	}
	_, removed := KempeReduce(g, wasteful, 1)
	if removed > 1 {
		t.Errorf("maxPasses=1 removed %d classes", removed)
	}
}

// Property: KempeReduce output is always proper, never uses more colors,
// and its accounting is exact.
func TestKempeReduceProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%40 + 2
		g := gen.GNM(n, 3*n, seed)
		colors := Luby(g, uint32(seed))
		before := NumColors(colors)
		improved, removed := KempeReduce(g, colors, 0)
		if Verify(g, improved) != nil {
			return false
		}
		after := NumColors(improved)
		return after <= before && after == before-removed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
