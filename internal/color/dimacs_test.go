package color

import (
	"os"
	"path/filepath"
	"testing"

	"gcolor/internal/graph"
)

// loadCol reads a DIMACS instance from testdata.
func loadCol(t *testing.T, name string) *graph.Graph {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.ReadDIMACS(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Classic instances with known chromatic numbers. Heuristics may exceed
// chi, but every algorithm must stay proper, never beat chi, and the best
// ones should reach it on these small instances.
func TestDIMACSInstances(t *testing.T) {
	cases := []struct {
		file string
		n, m int
		chi  int
	}{
		{"myciel3.col", 11, 20, 4},
		{"petersen.col", 10, 15, 3},
	}
	for _, c := range cases {
		g := loadCol(t, c.file)
		if g.NumVertices() != c.n || g.NumEdges() != c.m {
			t.Fatalf("%s: got n=%d m=%d, want %d/%d", c.file, g.NumVertices(), g.NumEdges(), c.n, c.m)
		}
		algorithms := map[string][]int32{
			"greedy-natural":  Greedy(g, Natural, 0),
			"greedy-sl":       Greedy(g, SmallestLast, 0),
			"dsatur":          DSATUR(g),
			"jones-plassmann": JonesPlassmann(g, 1, 2).Colors,
			"gm":              GebremedhinManne(g, 2).Colors,
			"luby":            Luby(g, 1),
		}
		for name, colors := range algorithms {
			if err := Verify(g, colors); err != nil {
				t.Errorf("%s/%s: %v", c.file, name, err)
				continue
			}
			if nc := NumColors(colors); nc < c.chi {
				t.Errorf("%s/%s: %d colors beats chromatic number %d — verifier or instance broken",
					c.file, name, nc, c.chi)
			}
		}
		// DSATUR achieves chi on these instances.
		if nc := NumColors(DSATUR(g)); nc != c.chi {
			t.Errorf("%s: DSATUR used %d colors, want chi = %d", c.file, nc, c.chi)
		}
		// Kempe reduction from a wasteful start also reaches chi here.
		reduced, _ := KempeReduce(g, Luby(g, 7), 0)
		if err := Verify(g, reduced); err != nil {
			t.Errorf("%s: kempe: %v", c.file, err)
		}
		if nc := NumColors(reduced); nc < c.chi {
			t.Errorf("%s: kempe reached %d < chi %d", c.file, nc, c.chi)
		}
	}
}
