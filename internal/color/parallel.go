package color

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gcolor/internal/graph"
)

// parallelFor splits [0, n) into contiguous ranges and runs body on each
// from its own goroutine. workers <= 0 means GOMAXPROCS.
func parallelFor(workers, n int, body func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			body(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// JPResult reports a parallel coloring together with its convergence
// profile.
type JPResult struct {
	Colors []int32
	Rounds int
	// ActivePerRound[i] is the number of still-uncolored vertices entering
	// round i — the paper's convergence characterization.
	ActivePerRound []int
}

// JonesPlassmann colors g with the parallel Jones–Plassmann algorithm:
// each round, every uncolored vertex whose priority is the maximum among its
// uncolored neighbours joins the independent set and takes its smallest
// available color. Rounds are two-phase (select, then color), so goroutines
// never race. workers <= 0 means GOMAXPROCS.
func JonesPlassmann(g *graph.Graph, seed uint32, workers int) JPResult {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	prio := make([]uint32, n)
	for v := range prio {
		prio[v] = Priority(int32(v), seed)
	}
	active := make([]int32, n)
	for i := range active {
		active[i] = int32(i)
	}
	selected := make([]bool, n)
	res := JPResult{Colors: colors}
	for len(active) > 0 {
		res.ActivePerRound = append(res.ActivePerRound, len(active))
		res.Rounds++
		// Phase 1: select local priority maxima among uncolored vertices.
		parallelFor(workers, len(active), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v := active[i]
				isMax := true
				for _, u := range g.Neighbors(v) {
					if colors[u] == Uncolored && PriorityGreater(prio[u], u, prio[v], v) {
						isMax = false
						break
					}
				}
				selected[v] = isMax
			}
		})
		// Phase 2: color the independent set. A selected vertex's neighbours
		// are all unselected, so reads of neighbour colors are race-free.
		parallelFor(workers, len(active), func(lo, hi int) {
			scratch := map[int32]bool{}
			for i := lo; i < hi; i++ {
				v := active[i]
				if !selected[v] {
					continue
				}
				clear(scratch)
				for _, u := range g.Neighbors(v) {
					if c := colors[u]; c >= 0 {
						scratch[c] = true
					}
				}
				c := int32(0)
				for scratch[c] {
					c++
				}
				colors[v] = c
			}
		})
		// Compact the active list.
		next := active[:0]
		for _, v := range active {
			if colors[v] == Uncolored {
				next = append(next, v)
			}
		}
		active = next
	}
	return res
}

// GMResult reports a speculative coloring with its convergence profile.
type GMResult struct {
	Colors []int32
	Rounds int
	// ConflictsPerRound[i] is the number of vertices that had to be
	// recolored after round i.
	ConflictsPerRound []int
}

// GebremedhinManne colors g with the speculative first-fit algorithm: every
// uncolored vertex speculatively takes its smallest available color in
// parallel (tolerating stale reads), then conflicts (monochromatic edges)
// are detected and the higher-id endpoint is sent back for recoloring.
// Communication goes through atomic loads/stores, so the algorithm is
// race-free in the Go memory-model sense while still exhibiting the
// speculation the paper's comparison point relies on. workers <= 0 means
// GOMAXPROCS.
func GebremedhinManne(g *graph.Graph, workers int) GMResult {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	work := make([]int32, n)
	for i := range work {
		work[i] = int32(i)
	}
	res := GMResult{Colors: colors}
	conflicted := make([]int32, 0, n)
	var mu sync.Mutex
	for len(work) > 0 {
		res.Rounds++
		// Phase 1: speculative coloring.
		parallelFor(workers, len(work), func(lo, hi int) {
			var seen []bool
			for i := lo; i < hi; i++ {
				v := work[i]
				nbr := g.Neighbors(v)
				limit := len(nbr) + 1
				if cap(seen) < limit {
					seen = make([]bool, limit)
				}
				seen = seen[:limit]
				for j := range seen {
					seen[j] = false
				}
				for _, u := range nbr {
					if c := atomic.LoadInt32(&colors[u]); c >= 0 && int(c) < limit {
						seen[c] = true
					}
				}
				c := int32(0)
				for seen[c] {
					c++
				}
				atomic.StoreInt32(&colors[v], c)
			}
		})
		// Phase 2: conflict detection; the higher id loses.
		conflicted = conflicted[:0]
		parallelFor(workers, len(work), func(lo, hi int) {
			var local []int32
			for i := lo; i < hi; i++ {
				v := work[i]
				cv := atomic.LoadInt32(&colors[v])
				for _, u := range g.Neighbors(v) {
					if atomic.LoadInt32(&colors[u]) == cv && u < v {
						local = append(local, v)
						break
					}
				}
			}
			if len(local) > 0 {
				mu.Lock()
				conflicted = append(conflicted, local...)
				mu.Unlock()
			}
		})
		// Phase 3: reset losers for the next round.
		for _, v := range conflicted {
			colors[v] = Uncolored
		}
		res.ConflictsPerRound = append(res.ConflictsPerRound, len(conflicted))
		work = append(work[:0], conflicted...)
	}
	return res
}

// IterativeMax is the sequential reference implementation of the GPU
// baseline's exact semantics (Pannotia colorMax): per iteration, every
// uncolored vertex whose priority outranks all its uncolored neighbours
// takes the iteration number as its color. The GPU baseline must produce a
// bit-identical coloring — this function exists to cross-validate it.
func IterativeMax(g *graph.Graph, seed uint32) []int32 {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	prio := make([]uint32, n)
	for v := range prio {
		prio[v] = Priority(int32(v), seed)
	}
	remaining := n
	for iter := int32(0); remaining > 0; iter++ {
		var winners []int32
		for v := 0; v < n; v++ {
			if colors[v] != Uncolored {
				continue
			}
			isMax := true
			for _, u := range g.Neighbors(int32(v)) {
				if colors[u] == Uncolored && PriorityGreater(prio[u], u, prio[int32(v)], int32(v)) {
					isMax = false
					break
				}
			}
			if isMax {
				winners = append(winners, int32(v))
			}
		}
		for _, v := range winners {
			colors[v] = iter
		}
		remaining -= len(winners)
	}
	return colors
}

// Luby colors g by repeatedly extracting a maximal independent set with
// Luby's algorithm (fresh random priorities per attempt round) and assigning
// it the next color. It is the sequential reference for MIS-based coloring.
func Luby(g *graph.Graph, seed uint32) []int32 {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	remaining := n
	var class int32
	round := uint32(0)
	inMIS := make([]bool, n)
	candidate := make([]bool, n)
	for remaining > 0 {
		// Build a maximal independent set over uncolored vertices.
		for v := 0; v < n; v++ {
			candidate[v] = colors[v] == Uncolored
			inMIS[v] = false
		}
		anyCandidate := true
		for anyCandidate {
			round++
			// Select local maxima among candidates.
			winners := winnersOf(g, candidate, seed+round)
			for _, v := range winners {
				inMIS[v] = true
				candidate[v] = false
				for _, u := range g.Neighbors(v) {
					candidate[u] = false
				}
			}
			anyCandidate = false
			for v := 0; v < n; v++ {
				if candidate[v] {
					anyCandidate = true
					break
				}
			}
		}
		for v := 0; v < n; v++ {
			if inMIS[v] {
				colors[v] = class
				remaining--
			}
		}
		class++
	}
	return colors
}

func winnersOf(g *graph.Graph, candidate []bool, seed uint32) []int32 {
	var winners []int32
	for v := 0; v < g.NumVertices(); v++ {
		if !candidate[v] {
			continue
		}
		pv := Priority(int32(v), seed)
		isMax := true
		for _, u := range g.Neighbors(int32(v)) {
			if candidate[u] && PriorityGreater(Priority(u, seed), u, pv, int32(v)) {
				isMax = false
				break
			}
		}
		if isMax {
			winners = append(winners, int32(v))
		}
	}
	return winners
}
