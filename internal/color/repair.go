package color

import "gcolor/internal/graph"

// Scratch holds the reusable buffers of the repair/recolor family. The
// zero value is ready to use; buffers are allocated on first damage and
// grow as needed, so a Scratch kept warm across calls makes RepairScratch
// and RecolorFrontier allocation-free in steady state (the serving hot
// path's zero-alloc budget). A Scratch is not safe for concurrent use.
type Scratch struct {
	// bad marks damaged/frontier vertices by epoch: bad[v] == badEpoch
	// means marked in the current call, so the array never needs clearing.
	bad      []int32
	badEpoch int32
	// marks is the firstFit color-occupancy array, also epoch-stamped.
	marks     []int32
	markEpoch int32
}

// ensureBad sizes the vertex-mark array and opens a fresh epoch.
func (s *Scratch) ensureBad(n int) {
	if len(s.bad) < n {
		s.bad = make([]int32, n)
		s.badEpoch = 0
	}
	s.badEpoch++
	if s.badEpoch <= 0 { // wrapped: stale marks could alias, reset
		for i := range s.bad {
			s.bad[i] = 0
		}
		s.badEpoch = 1
	}
}

// ensureMarks sizes the firstFit scratch for a max degree of deg.
func (s *Scratch) ensureMarks(deg int) {
	if len(s.marks) < deg+2 {
		s.marks = make([]int32, deg+2)
		s.markEpoch = 0
	}
}

// nextMarkEpoch opens a fresh firstFit epoch, resetting on wrap.
func (s *Scratch) nextMarkEpoch() int32 {
	s.markEpoch++
	if s.markEpoch <= 0 {
		for i := range s.marks {
			s.marks[i] = 0
		}
		s.markEpoch = 1
	}
	return s.markEpoch
}

// Repair turns a damaged coloring back into a proper one by recoloring
// only the offending vertices, in the spirit of the detect-and-recolor
// repair phases of Rokos et al. and the conflict-resolve loops of
// speculative GPU coloring: vertices that are uncolored (or carry a
// negative sentinel) and, for every monochromatic edge, the endpoint with
// the lower hashed priority (the same tie-break the GPU kernels use) are
// reset and then first-fit recolored in ascending id order. Untouched
// vertices keep their colors, so a mostly-correct coloring is fixed at the
// cost of the damage, not of a full re-run.
//
// It returns the number of vertices recolored (0 when colors was already
// proper). The result always verifies; the palette may grow past the
// input's, but never past MaxDegree+1 for the repaired vertices.
func Repair(g *graph.Graph, colors []int32, seed uint32) int {
	var sc Scratch
	return RepairScratch(g, colors, seed, &sc)
}

// RepairScratch is Repair with caller-owned scratch buffers. A clean
// coloring is detected and reported with zero allocations regardless of
// sc's state; a damaged one allocates only what sc does not already hold,
// so a warm Scratch makes every call allocation-free.
func RepairScratch(g *graph.Graph, colors []int32, seed uint32, sc *Scratch) int {
	n := g.NumVertices()
	if len(colors) != n {
		// A length mismatch cannot be repaired in place; the caller holds
		// the wrong buffer. Treat as programmer error.
		panic("color: Repair: colors length does not match vertex count")
	}
	if !hasDamage(g, colors) {
		return 0
	}
	sc.ensureBad(n)
	epoch := sc.badEpoch
	nBad := 0
	for v := int32(0); int(v) < n; v++ {
		if colors[v] < 0 {
			if sc.bad[v] != epoch {
				sc.bad[v] = epoch
				nBad++
			}
			continue
		}
		for _, u := range g.Neighbors(v) {
			if u <= v || colors[u] != colors[v] {
				continue
			}
			// Monochromatic edge: the lower-priority endpoint retries,
			// exactly as in the GPU conflict-detect kernel.
			w := v
			if !PriorityGreater(Priority(u, seed), u, Priority(v, seed), v) {
				w = u
			}
			if sc.bad[w] != epoch {
				sc.bad[w] = epoch
				nBad++
			}
		}
	}
	resetAndRecolor(g, colors, sc, epoch)
	return nBad
}

// hasDamage reports whether colors holds any uncolored vertex or
// monochromatic edge. It allocates nothing and stops at the first
// violation, so the common verify-clean path costs one bounded scan.
func hasDamage(g *graph.Graph, colors []int32) bool {
	n := g.NumVertices()
	for v := int32(0); int(v) < n; v++ {
		c := colors[v]
		if c < 0 {
			return true
		}
		for _, u := range g.Neighbors(v) {
			if u > v && colors[u] == c {
				return true
			}
		}
	}
	return false
}

// RecolorFrontier resets exactly the frontier vertices to Uncolored and
// first-fit recolors them in ascending id order, leaving every other
// vertex untouched. It is the incremental-delta recolor step: after a
// graph mutation, any new conflict or uncolored vertex involves a frontier
// vertex (graph.ApplyDelta's contract), so if colors is proper on the
// non-frontier part of g, the result is a proper coloring of all of g.
// Frontier entries out of range are ignored; duplicates collapse. Returns
// the number of vertices recolored. Allocation-free with a warm Scratch.
func RecolorFrontier(g *graph.Graph, colors []int32, frontier []int32, sc *Scratch) int {
	n := g.NumVertices()
	if len(colors) != n {
		panic("color: RecolorFrontier: colors length does not match vertex count")
	}
	if len(frontier) == 0 {
		return 0
	}
	sc.ensureBad(n)
	epoch := sc.badEpoch
	cnt := 0
	for _, v := range frontier {
		if v < 0 || int(v) >= n || sc.bad[v] == epoch {
			continue
		}
		sc.bad[v] = epoch
		cnt++
	}
	resetAndRecolor(g, colors, sc, epoch)
	return cnt
}

// resetAndRecolor clears every epoch-marked vertex and first-fit recolors
// the marked set in ascending id order.
func resetAndRecolor(g *graph.Graph, colors []int32, sc *Scratch, epoch int32) {
	n := g.NumVertices()
	maxDeg := 0
	for v := int32(0); int(v) < n; v++ {
		if sc.bad[v] != epoch {
			continue
		}
		colors[v] = Uncolored
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	sc.ensureMarks(maxDeg)
	for v := int32(0); int(v) < n; v++ {
		if sc.bad[v] == epoch {
			colors[v] = firstFit(g, v, colors, sc.marks, sc.nextMarkEpoch())
		}
	}
}
