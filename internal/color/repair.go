package color

import "gcolor/internal/graph"

// Repair turns a damaged coloring back into a proper one by recoloring
// only the offending vertices, in the spirit of the detect-and-recolor
// repair phases of Rokos et al. and the conflict-resolve loops of
// speculative GPU coloring: vertices that are uncolored (or carry a
// negative sentinel) and, for every monochromatic edge, the endpoint with
// the lower hashed priority (the same tie-break the GPU kernels use) are
// reset and then first-fit recolored in ascending id order. Untouched
// vertices keep their colors, so a mostly-correct coloring is fixed at the
// cost of the damage, not of a full re-run.
//
// It returns the number of vertices recolored (0 when colors was already
// proper). The result always verifies; the palette may grow past the
// input's, but never past MaxDegree+1 for the repaired vertices.
func Repair(g *graph.Graph, colors []int32, seed uint32) int {
	n := g.NumVertices()
	if len(colors) != n {
		// A length mismatch cannot be repaired in place; the caller holds
		// the wrong buffer. Treat as programmer error.
		panic("color: Repair: colors length does not match vertex count")
	}
	bad := make([]bool, n)
	nBad := 0
	mark := func(v int32) {
		if !bad[v] {
			bad[v] = true
			nBad++
		}
	}
	for v := int32(0); int(v) < n; v++ {
		if colors[v] < 0 {
			mark(v)
			continue
		}
		for _, u := range g.Neighbors(v) {
			if u <= v || colors[u] != colors[v] {
				continue
			}
			// Monochromatic edge: the lower-priority endpoint retries,
			// exactly as in the GPU conflict-detect kernel.
			pu, pv := Priority(u, seed), Priority(v, seed)
			if PriorityGreater(pu, u, pv, v) {
				mark(v)
			} else {
				mark(u)
			}
		}
	}
	if nBad == 0 {
		return 0
	}
	for v := int32(0); int(v) < n; v++ {
		if bad[v] {
			colors[v] = Uncolored
		}
	}
	scratch := make([]int32, g.MaxDegree()+2)
	for i := range scratch {
		scratch[i] = -1
	}
	epoch := int32(0)
	for v := int32(0); int(v) < n; v++ {
		if bad[v] {
			colors[v] = firstFit(g, v, colors, scratch, epoch)
			epoch++
		}
	}
	return nBad
}
