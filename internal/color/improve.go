package color

import (
	"sort"

	"gcolor/internal/graph"
)

// Post-optimization of proper colorings: color-class elimination via Kempe
// chains, and color normalization for algorithms (colorMaxMin) that can
// leave gaps in the color range.

// NormalizeColors remaps a proper coloring onto the dense range 0..k-1,
// preserving the relative order of color values, and returns k. It mutates
// colors in place. Uncolored entries are left untouched.
func NormalizeColors(colors []int32) int {
	present := map[int32]bool{}
	for _, c := range colors {
		if c >= 0 {
			present[c] = true
		}
	}
	used := make([]int32, 0, len(present))
	for c := range present {
		used = append(used, c)
	}
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	remap := make(map[int32]int32, len(used))
	for i, c := range used {
		remap[c] = int32(i)
	}
	for i, c := range colors {
		if c >= 0 {
			colors[i] = remap[c]
		}
	}
	return len(used)
}

// KempeReduce tries to reduce the number of colors of a proper coloring by
// emptying the highest color class with Kempe-chain interchanges: a vertex
// of the top class moves to a lower color a, flipping the connected
// (a,b)-bicolored components that block it when necessary. It repeats while
// classes keep emptying (at most maxPasses times; maxPasses <= 0 means no
// limit) and returns the improved coloring (a fresh slice) and the number
// of color classes removed. The result is always proper and never uses more
// colors than the input.
func KempeReduce(g *graph.Graph, colors []int32, maxPasses int) ([]int32, int) {
	out := make([]int32, len(colors))
	copy(out, colors)
	NormalizeColors(out)
	removed := 0
	for pass := 0; maxPasses <= 0 || pass < maxPasses; pass++ {
		k := NumColors(out)
		if k <= 1 {
			break
		}
		top := int32(k - 1)
		if !emptyClass(g, out, top) {
			break
		}
		removed++
	}
	return out, removed
}

// emptyClass attempts to recolor every vertex of color class c to a lower
// color; it reports whether the class was completely emptied (on failure
// the coloring remains proper but may be partially recolored).
func emptyClass(g *graph.Graph, colors []int32, c int32) bool {
	ok := true
	for v := 0; v < g.NumVertices(); v++ {
		if colors[v] != c {
			continue
		}
		if !recolorBelow(g, colors, int32(v), c) {
			ok = false
		}
	}
	return ok
}

// recolorBelow tries to give v a color below limit, directly or through one
// Kempe-chain interchange, and reports success.
func recolorBelow(g *graph.Graph, colors []int32, v, limit int32) bool {
	// Direct move: a color < limit absent from the neighbourhood.
	used := map[int32]bool{}
	for _, u := range g.Neighbors(v) {
		used[colors[u]] = true
	}
	for a := int32(0); a < limit; a++ {
		if !used[a] {
			colors[v] = a
			return true
		}
	}
	// Kempe interchange: for a pair (a, b), flip the (a,b)-components
	// containing v's a-colored neighbours; if none of those components
	// reaches a b-colored neighbour of v, color a becomes free for v.
	for a := int32(0); a < limit; a++ {
		for b := int32(0); b < limit; b++ {
			if a == b {
				continue
			}
			if tryKempe(g, colors, v, a, b) {
				colors[v] = a
				return true
			}
		}
	}
	return false
}

// tryKempe flips the (a,b)-bicolored components adjacent to v through its
// a-colored neighbours, unless one of them contains a b-colored neighbour
// of v (which would re-block color a). Returns whether the flip happened.
func tryKempe(g *graph.Graph, colors []int32, v, a, b int32) bool {
	// Gather the component (over colors {a, b}) reachable from v's
	// a-colored neighbours.
	var stack []int32
	inComp := map[int32]bool{}
	for _, u := range g.Neighbors(v) {
		if colors[u] == a && !inComp[u] {
			inComp[u] = true
			stack = append(stack, u)
		}
	}
	if len(stack) == 0 {
		return false // direct move would have handled this
	}
	bNbr := map[int32]bool{}
	for _, u := range g.Neighbors(v) {
		if colors[u] == b {
			bNbr[u] = true
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if bNbr[u] {
			return false // chain loops back to v: interchange cannot free a
		}
		for _, w := range g.Neighbors(u) {
			if w == v {
				continue
			}
			if (colors[w] == a || colors[w] == b) && !inComp[w] {
				inComp[w] = true
				stack = append(stack, w)
			}
		}
	}
	// Flip the component: a <-> b.
	for u := range inComp {
		if colors[u] == a {
			colors[u] = b
		} else {
			colors[u] = a
		}
	}
	return true
}
