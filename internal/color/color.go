// Package color implements CPU graph-coloring algorithms: the sequential
// greedy baselines with classic vertex orderings, and the parallel
// Jones–Plassmann and Gebremedhin–Manne algorithms the GPU variants are
// measured against. It also provides the shared vertex-priority hash and the
// coloring verifier used by every implementation in the repository.
package color

import (
	"fmt"

	"gcolor/internal/graph"
)

// Uncolored is the sentinel color of a vertex that has not been assigned.
const Uncolored int32 = -1

// Priority returns the deterministic pseudo-random priority of vertex v
// under the given seed. Independent-set algorithms (Jones–Plassmann, the
// GPU colorMax/MaxMin kernels, Luby) all share this hash so CPU and GPU
// results are comparable. Comparisons are on the returned uint32; ties are
// broken by vertex id.
func Priority(v int32, seed uint32) uint32 {
	x := uint32(v) ^ 0x9e3779b9
	x += seed * 0x85ebca6b
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// PriorityGreater reports whether vertex u (with priority pu) outranks
// vertex v (with priority pv), breaking ties by id.
func PriorityGreater(pu uint32, u int32, pv uint32, v int32) bool {
	if pu != pv {
		return pu > pv
	}
	return u > v
}

// Priorities returns the priority of every vertex of g under seed, stored
// as int32 bit patterns so the slice can be bound directly as a GPU buffer.
func Priorities(g *graph.Graph, seed uint32) []int32 {
	p := make([]int32, g.NumVertices())
	PrioritiesInto(g, seed, p)
	return p
}

// PrioritiesInto fills dst[0:NumVertices] with the vertex priorities under
// seed — Priorities without the allocation, for callers that reuse a
// buffer across runs.
func PrioritiesInto(g *graph.Graph, seed uint32, dst []int32) {
	for v := range dst[:g.NumVertices()] {
		dst[v] = int32(Priority(int32(v), seed))
	}
}

// Verify checks that colors is a proper coloring of g: every vertex is
// colored (>= 0) and no edge is monochromatic. It returns nil on success
// and a descriptive error naming the first violation otherwise.
func Verify(g *graph.Graph, colors []int32) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("color: %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("color: vertex %d uncolored", v)
		}
		for _, u := range g.Neighbors(int32(v)) {
			if colors[u] == colors[int32(v)] {
				return fmt.Errorf("color: edge %d-%d monochromatic (color %d)", v, u, colors[v])
			}
		}
	}
	return nil
}

// NumColors returns the number of distinct colors used, assuming colors form
// the dense range 0..max (which every algorithm here produces).
func NumColors(colors []int32) int {
	max := int32(-1)
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	return int(max) + 1
}

// firstFit returns the smallest color not present among v's already-colored
// neighbours, using scratch as a mark array (ideally of length >= deg(v)+1;
// a shorter one only costs a slower fallback scan, never a wrong answer).
func firstFit(g *graph.Graph, v int32, colors []int32, scratch []int32, epoch int32) int32 {
	nbr := g.Neighbors(v)
	limit := int32(len(nbr)) + 1 // some color in [0, deg] is always free
	if m := int32(len(scratch)); limit > m {
		limit = m
	}
	for _, u := range nbr {
		if c := colors[u]; c >= 0 && c < limit {
			scratch[c] = epoch
		}
	}
	for c := int32(0); c < limit; c++ {
		if scratch[c] != epoch {
			return c
		}
	}
	// Every color in [0, limit) is taken. With a full-size scratch deg(v)
	// neighbours cannot occupy deg(v)+1 colors, so this is reachable only
	// when scratch is shorter than the degree demands; grow the palette —
	// one past the largest neighbour color is always free.
	max := int32(-1)
	for _, u := range nbr {
		if colors[u] > max {
			max = colors[u]
		}
	}
	return max + 1
}
