package color

import (
	"container/heap"
	"math/rand"
	"sort"

	"gcolor/internal/graph"
)

// Ordering selects the vertex visitation order of the sequential greedy
// algorithm.
type Ordering int

const (
	// Natural visits vertices in id order.
	Natural Ordering = iota
	// LargestFirst visits vertices by descending degree (Welsh–Powell).
	LargestFirst
	// SmallestLast uses the degeneracy ordering: repeatedly remove a
	// minimum-degree vertex and color in reverse removal order, which
	// guarantees at most degeneracy+1 colors.
	SmallestLast
	// RandomOrder visits vertices in a seeded random permutation.
	RandomOrder
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Natural:
		return "natural"
	case LargestFirst:
		return "largest-first"
	case SmallestLast:
		return "smallest-last"
	case RandomOrder:
		return "random"
	default:
		return "ordering(?)"
	}
}

// Greedy colors g sequentially with first-fit under the given ordering and
// returns the color array. Seed only affects RandomOrder. Greedy uses at
// most MaxDegree+1 colors for any ordering.
func Greedy(g *graph.Graph, o Ordering, seed int64) []int32 {
	n := g.NumVertices()
	order := greedyOrder(g, o, seed)
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	scratch := make([]int32, g.MaxDegree()+2)
	for i := range scratch {
		scratch[i] = -1
	}
	for epoch, v := range order {
		colors[v] = firstFit(g, v, colors, scratch, int32(epoch))
	}
	return colors
}

func greedyOrder(g *graph.Graph, o Ordering, seed int64) []int32 {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	switch o {
	case Natural:
	case LargestFirst:
		sort.SliceStable(order, func(i, j int) bool {
			return g.Degree(order[i]) > g.Degree(order[j])
		})
	case SmallestLast:
		return smallestLastOrder(g)
	case RandomOrder:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	return order
}

// smallestLastOrder computes the degeneracy (smallest-last) ordering with a
// bucket queue in O(n + m).
func smallestLastOrder(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(int32(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// buckets[d] holds vertices of current degree d; pos/where support O(1)
	// removal by swap.
	buckets := make([][]int32, maxDeg+1)
	where := make([]int, n) // index of v within its bucket
	for v := 0; v < n; v++ {
		where[v] = len(buckets[deg[v]])
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	removed := make([]bool, n)
	removal := make([]int32, 0, n)
	cur := 0
	for len(removal) < n {
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] {
			continue
		}
		removed[v] = true
		removal = append(removal, v)
		for _, u := range g.Neighbors(v) {
			if removed[u] {
				continue
			}
			// Move u down one bucket.
			d := deg[u]
			bu := buckets[d]
			i := where[u]
			last := bu[len(bu)-1]
			bu[i] = last
			where[last] = i
			buckets[d] = bu[:len(bu)-1]
			deg[u] = d - 1
			where[u] = len(buckets[d-1])
			buckets[d-1] = append(buckets[d-1], u)
			if d-1 < cur {
				cur = d - 1
			}
		}
	}
	// Color in reverse removal order.
	for i, j := 0, len(removal)-1; i < j; i, j = i+1, j-1 {
		removal[i], removal[j] = removal[j], removal[i]
	}
	return removal
}

// DSATUR colors g with the saturation-degree heuristic: always color next
// the vertex adjacent to the most distinct colors (ties by degree, then id).
// It typically uses fewer colors than first-fit orderings at higher cost.
func DSATUR(g *graph.Graph) []int32 {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	if n == 0 {
		return colors
	}
	sat := make([]map[int32]struct{}, n)
	h := &satHeap{}
	heap.Init(h)
	stale := make([]int, n) // version counter for lazy heap entries
	for v := 0; v < n; v++ {
		heap.Push(h, satEntry{v: int32(v), sat: 0, deg: g.Degree(int32(v)), ver: 0})
	}
	scratch := make([]int32, g.MaxDegree()+2)
	for i := range scratch {
		scratch[i] = -1
	}
	epoch := int32(0)
	for h.Len() > 0 {
		e := heap.Pop(h).(satEntry)
		if colors[e.v] != Uncolored || e.ver != stale[e.v] {
			continue // already colored or outdated entry
		}
		c := firstFit(g, e.v, colors, scratch, epoch)
		epoch++
		colors[e.v] = c
		for _, u := range g.Neighbors(e.v) {
			if colors[u] != Uncolored {
				continue
			}
			if sat[u] == nil {
				sat[u] = make(map[int32]struct{})
			}
			if _, ok := sat[u][c]; !ok {
				sat[u][c] = struct{}{}
				stale[u]++
				heap.Push(h, satEntry{v: u, sat: len(sat[u]), deg: g.Degree(u), ver: stale[u]})
			}
		}
	}
	return colors
}

type satEntry struct {
	v   int32
	sat int
	deg int
	ver int
}

type satHeap []satEntry

func (h satHeap) Len() int { return len(h) }
func (h satHeap) Less(i, j int) bool {
	if h[i].sat != h[j].sat {
		return h[i].sat > h[j].sat
	}
	if h[i].deg != h[j].deg {
		return h[i].deg > h[j].deg
	}
	return h[i].v < h[j].v
}
func (h satHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *satHeap) Push(x any)   { *h = append(*h, x.(satEntry)) }
func (h *satHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
