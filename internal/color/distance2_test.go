package color

import (
	"testing"
	"testing/quick"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
)

func TestVerifyD2(t *testing.T) {
	p := gen.Path(4) // 0-1-2-3
	// Distance-2 proper: 0,1,2,0 (vertices 0 and 3 are 3 apart).
	if err := VerifyD2(p, []int32{0, 1, 2, 0}); err != nil {
		t.Errorf("VerifyD2 rejected proper d2 coloring: %v", err)
	}
	// 0 and 2 share a color at distance 2.
	if err := VerifyD2(p, []int32{0, 1, 0, 1}); err == nil {
		t.Error("VerifyD2 accepted a distance-2 conflict")
	}
	// Distance-1 conflict.
	if err := VerifyD2(p, []int32{0, 0, 1, 2}); err == nil {
		t.Error("VerifyD2 accepted a distance-1 conflict")
	}
	// Uncolored and wrong length.
	if err := VerifyD2(p, []int32{0, 1, 2, -1}); err == nil {
		t.Error("VerifyD2 accepted uncolored vertex")
	}
	if err := VerifyD2(p, []int32{0, 1}); err == nil {
		t.Error("VerifyD2 accepted wrong length")
	}
}

func TestGreedyD2Star(t *testing.T) {
	// In a star every leaf is at distance 2 from every other leaf: all n
	// vertices need distinct colors.
	n := 30
	g := gen.Star(n)
	colors := GreedyD2(g)
	if err := VerifyD2(g, colors); err != nil {
		t.Fatal(err)
	}
	if NumColors(colors) != n {
		t.Errorf("star d2 colors = %d, want %d", NumColors(colors), n)
	}
}

func TestGreedyD2Grid(t *testing.T) {
	g := gen.Grid2D(12, 15)
	colors := GreedyD2(g)
	if err := VerifyD2(g, colors); err != nil {
		t.Fatal(err)
	}
	// A 4-point grid's two-hop neighbourhood has at most 12 vertices, so
	// greedy needs at most 13 colors; the distance-2 chromatic number of the
	// infinite grid is well below that but >= 5.
	nc := NumColors(colors)
	if nc < 5 || nc > 13 {
		t.Errorf("grid d2 colors = %d, want within [5, 13]", nc)
	}
}

func TestGreedyD2Path(t *testing.T) {
	g := gen.Path(20)
	colors := GreedyD2(g)
	if err := VerifyD2(g, colors); err != nil {
		t.Fatal(err)
	}
	if nc := NumColors(colors); nc != 3 {
		t.Errorf("path d2 colors = %d, want 3", nc)
	}
}

func TestD2Bound(t *testing.T) {
	// Star: hub sees all n-1 leaves; leaf sees hub + n-2 other leaves.
	g := gen.Star(10)
	if got := D2Bound(g); got != 10 {
		t.Errorf("star D2Bound = %d, want 10", got)
	}
	if got := D2Bound(graph.FromEdges(3, nil)); got != 1 {
		t.Errorf("empty D2Bound = %d, want 1", got)
	}
}

func TestGreedyD2EmptyAndIsolated(t *testing.T) {
	if len(GreedyD2(graph.FromEdges(0, nil))) != 0 {
		t.Error("empty graph d2 coloring not empty")
	}
	colors := GreedyD2(graph.FromEdges(4, nil))
	for _, c := range colors {
		if c != 0 {
			t.Error("isolated vertices should all take color 0")
		}
	}
}

// Property: GreedyD2 is always a proper distance-2 coloring within the
// two-hop bound.
func TestGreedyD2Property(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%40 + 1
		g := gen.GNM(n, 3*n, seed)
		colors := GreedyD2(g)
		if VerifyD2(g, colors) != nil {
			return false
		}
		return NumColors(colors) <= D2Bound(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
