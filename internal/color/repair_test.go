package color

import (
	"slices"
	"testing"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
)

func TestRepairProperColoringUntouched(t *testing.T) {
	g := gen.GNM(200, 1000, 3)
	colors := Greedy(g, Natural, 0)
	want := slices.Clone(colors)
	if n := Repair(g, colors, 1); n != 0 {
		t.Fatalf("Repair recolored %d vertices of a proper coloring", n)
	}
	if !slices.Equal(colors, want) {
		t.Fatal("Repair mutated a proper coloring")
	}
}

func TestRepairFixesDamage(t *testing.T) {
	g := gen.RMAT(8, 8, gen.Graph500, 5)
	colors := Greedy(g, Natural, 0)
	// Damage: uncolor some vertices, clone colors across some edges, and
	// plant an absurd (but conflict-free only by luck) value.
	damaged := map[int32]bool{}
	for v := int32(0); v < 40; v += 4 {
		colors[v] = Uncolored
		damaged[v] = true
	}
	for v := int32(0); int(v) < g.NumVertices(); v += 17 {
		if nbr := g.Neighbors(v); len(nbr) > 0 {
			colors[nbr[0]] = colors[v]
			damaged[nbr[0]] = true
			damaged[v] = true
		}
	}
	before := slices.Clone(colors)
	n := Repair(g, colors, 1)
	if n == 0 {
		t.Fatal("Repair found nothing to do on a damaged coloring")
	}
	if err := Verify(g, colors); err != nil {
		t.Fatalf("coloring still improper after Repair: %v", err)
	}
	// Locality: vertices not implicated in any damage keep their colors.
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if !damaged[v] && colors[v] != before[v] {
			// v may still have been the losing endpoint of a planted
			// conflict edge; only flag truly uninvolved vertices.
			involved := false
			for _, u := range g.Neighbors(v) {
				if damaged[u] {
					involved = true
					break
				}
			}
			if !involved {
				t.Errorf("vertex %d recolored %d->%d without being damaged",
					v, before[v], colors[v])
			}
		}
	}
}

func TestRepairLoserMatchesGPUTieBreak(t *testing.T) {
	// Two adjacent vertices share a color: the lower-priority endpoint must
	// be the one recolored, mirroring the GPU detect kernel.
	g := graph.FromEdges(2, [][2]int32{{0, 1}})
	const seed = 7
	colors := []int32{0, 0}
	if n := Repair(g, colors, seed); n != 1 {
		t.Fatalf("recolored %d vertices, want 1", n)
	}
	p0, p1 := Priority(0, seed), Priority(1, seed)
	winner := int32(0)
	if PriorityGreater(p1, 1, p0, 0) {
		winner = 1
	}
	if colors[winner] != 0 {
		t.Errorf("winner %d lost its color", winner)
	}
	if colors[1-winner] == 0 {
		t.Errorf("loser %d kept the conflicting color", 1-winner)
	}
}

func TestRepairAllUncolored(t *testing.T) {
	g := gen.Complete(9)
	colors := make([]int32, g.NumVertices())
	for i := range colors {
		colors[i] = Uncolored
	}
	if n := Repair(g, colors, 1); n != g.NumVertices() {
		t.Fatalf("recolored %d, want all %d", n, g.NumVertices())
	}
	if err := Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	if NumColors(colors) != g.NumVertices() {
		t.Errorf("complete graph repaired with %d colors, want %d", NumColors(colors), g.NumVertices())
	}
}

func TestRepairGarbageColors(t *testing.T) {
	// Wildly out-of-range colors (as bit flips produce) must not crash the
	// first-fit scratch indexing and must end in a proper coloring.
	g := gen.Grid2D(8, 8)
	colors := Greedy(g, Natural, 0)
	colors[0] = 1 << 28
	colors[10] = -12345
	colors[20] = colors[21]
	Repair(g, colors, 3)
	if err := Verify(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestRepairDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(150, 4, 2)
	mk := func() []int32 {
		colors := Greedy(g, Natural, 0)
		for v := int32(0); v < 30; v += 3 {
			colors[v] = Uncolored
		}
		return colors
	}
	a, b := mk(), mk()
	na, nb := Repair(g, a, 9), Repair(g, b, 9)
	if na != nb || !slices.Equal(a, b) {
		t.Fatalf("Repair not deterministic: %d vs %d recolored", na, nb)
	}
}

func TestRepairLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Repair(gen.Cycle(5), make([]int32, 3), 1)
}

// TestFirstFitGrowsPastTinyScratch covers the palette-growth fallback that
// replaced the "no free color" panic: a scratch array shorter than deg+1
// must still yield a free color.
func TestFirstFitGrowsPastTinyScratch(t *testing.T) {
	g := gen.Complete(6)
	colors := []int32{0, 1, 2, 3, 4, Uncolored}
	scratch := []int32{-1, -1, -1} // deg(5) = 5 needs 6 slots; give it 3
	c := firstFit(g, 5, colors, scratch, 0)
	for _, u := range g.Neighbors(5) {
		if colors[u] == c {
			t.Fatalf("firstFit returned occupied color %d", c)
		}
	}
	if c != 5 {
		t.Errorf("fallback color = %d, want 5 (one past max neighbour)", c)
	}
}

func TestRepairScratchMatchesRepair(t *testing.T) {
	g := gen.RMAT(9, 8, gen.Graph500, 11)
	mk := func() []int32 {
		colors := Greedy(g, Natural, 0)
		for v := int32(0); int(v) < g.NumVertices(); v += 13 {
			colors[v] = Uncolored
		}
		for v := int32(0); int(v) < g.NumVertices(); v += 29 {
			if nbr := g.Neighbors(v); len(nbr) > 0 {
				colors[nbr[0]] = colors[v]
			}
		}
		return colors
	}
	a, b := mk(), mk()
	var sc Scratch
	na := Repair(g, a, 5)
	nb := RepairScratch(g, b, 5, &sc)
	if na != nb || !slices.Equal(a, b) {
		t.Fatalf("RepairScratch diverges from Repair: %d vs %d recolored", na, nb)
	}
	// Reusing the same scratch on a second damaged coloring must still agree.
	c := mk()
	if nc := RepairScratch(g, c, 5, &sc); nc != na || !slices.Equal(c, a) {
		t.Fatalf("warm-scratch RepairScratch diverges: %d vs %d recolored", nc, na)
	}
}

func TestRepairScratchCleanZeroAllocs(t *testing.T) {
	g := gen.GNM(300, 1500, 4)
	colors := Greedy(g, Natural, 0)
	var sc Scratch
	allocs := testing.AllocsPerRun(50, func() {
		if n := RepairScratch(g, colors, 1, &sc); n != 0 {
			t.Fatalf("recolored %d vertices of a proper coloring", n)
		}
	})
	if allocs != 0 {
		t.Errorf("clean-path RepairScratch allocates %.1f per call, want 0", allocs)
	}
}

func TestRepairScratchWarmZeroAllocs(t *testing.T) {
	g := gen.GNM(300, 1500, 4)
	base := Greedy(g, Natural, 0)
	colors := make([]int32, len(base))
	var sc Scratch
	// Prime the buffers with one damaged repair, then measure steady state.
	copy(colors, base)
	colors[7] = Uncolored
	RepairScratch(g, colors, 1, &sc)
	allocs := testing.AllocsPerRun(50, func() {
		copy(colors, base)
		colors[7] = Uncolored
		colors[31] = Uncolored
		if n := RepairScratch(g, colors, 1, &sc); n == 0 {
			t.Fatal("damage not detected")
		}
		if err := Verify(g, colors); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm RepairScratch allocates %.1f per call, want 0", allocs)
	}
}

func TestRecolorFrontierProper(t *testing.T) {
	g := gen.BarabasiAlbert(400, 5, 8)
	colors := Greedy(g, Natural, 0)
	// A frontier with duplicates and out-of-range ids: recolor must ignore
	// the junk, touch only the frontier, and end proper.
	frontier := []int32{3, 3, 17, 90, 91, 92, -1, int32(g.NumVertices() + 5)}
	before := slices.Clone(colors)
	var sc Scratch
	n := RecolorFrontier(g, colors, frontier, &sc)
	if n != 5 {
		t.Fatalf("recolored %d vertices, want 5 distinct in-range", n)
	}
	if err := Verify(g, colors); err != nil {
		t.Fatalf("improper after frontier recolor: %v", err)
	}
	inFrontier := map[int32]bool{3: true, 17: true, 90: true, 91: true, 92: true}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if !inFrontier[v] && colors[v] != before[v] {
			t.Errorf("non-frontier vertex %d recolored %d->%d", v, before[v], colors[v])
		}
	}
}

func TestRecolorFrontierFixesDeltaDamage(t *testing.T) {
	// Simulate the incremental-delta contract: start from a proper coloring
	// of a base graph, mutate the graph, and recolor only the frontier that
	// graph.ApplyDelta reports. The result must verify on the new graph.
	base := gen.GNM(250, 900, 6)
	colors := Greedy(base, Natural, 0)
	d := &graph.Delta{
		AddVertices: 3,
		AddEdges:    [][2]int32{{0, 5}, {1, 9}, {250, 0}, {251, 252}, {40, 41}},
		RemoveEdges: [][2]int32{{2, 3}},
	}
	ng, _, frontier, err := graph.ApplyDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	grown := make([]int32, ng.NumVertices())
	copy(grown, colors)
	for i := len(colors); i < len(grown); i++ {
		grown[i] = Uncolored
	}
	var sc Scratch
	RecolorFrontier(ng, grown, frontier, &sc)
	if err := Verify(ng, grown); err != nil {
		t.Fatalf("delta frontier recolor left an improper coloring: %v", err)
	}
}

func TestRecolorFrontierWarmZeroAllocs(t *testing.T) {
	g := gen.GNM(300, 1500, 4)
	base := Greedy(g, Natural, 0)
	colors := make([]int32, len(base))
	frontier := []int32{1, 2, 3, 50, 51}
	var sc Scratch
	copy(colors, base)
	RecolorFrontier(g, colors, frontier, &sc)
	allocs := testing.AllocsPerRun(50, func() {
		copy(colors, base)
		RecolorFrontier(g, colors, frontier, &sc)
	})
	if allocs != 0 {
		t.Errorf("warm RecolorFrontier allocates %.1f per call, want 0", allocs)
	}
}
