package color

import (
	"testing"
	"testing/quick"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
)

func TestVerifyAcceptsProper(t *testing.T) {
	g := gen.Path(4)
	if err := Verify(g, []int32{0, 1, 0, 1}); err != nil {
		t.Errorf("Verify rejected proper coloring: %v", err)
	}
}

func TestVerifyRejectsBad(t *testing.T) {
	g := gen.Path(3)
	cases := [][]int32{
		{0, 0, 1},  // monochromatic edge
		{0, -1, 0}, // uncolored vertex
		{0, 1},     // wrong length
	}
	for _, c := range cases {
		if err := Verify(g, c); err == nil {
			t.Errorf("Verify accepted bad coloring %v", c)
		}
	}
}

func TestNumColors(t *testing.T) {
	if got := NumColors([]int32{0, 2, 1, 2}); got != 3 {
		t.Errorf("NumColors = %d, want 3", got)
	}
	if got := NumColors(nil); got != 0 {
		t.Errorf("NumColors(nil) = %d, want 0", got)
	}
}

func TestPriorityDeterministicAndSpread(t *testing.T) {
	if Priority(5, 1) != Priority(5, 1) {
		t.Error("Priority not deterministic")
	}
	if Priority(5, 1) == Priority(5, 2) {
		t.Error("Priority ignores seed")
	}
	// Priorities should be reasonably spread: no more than a few collisions
	// among 10k vertices.
	seen := make(map[uint32]int)
	for v := int32(0); v < 10000; v++ {
		seen[Priority(v, 7)]++
	}
	if len(seen) < 9990 {
		t.Errorf("only %d distinct priorities among 10000", len(seen))
	}
}

func TestPriorityGreaterTieBreak(t *testing.T) {
	if !PriorityGreater(5, 2, 5, 1) {
		t.Error("equal priorities: higher id must win")
	}
	if PriorityGreater(5, 1, 5, 2) {
		t.Error("equal priorities: lower id must lose")
	}
	if !PriorityGreater(9, 1, 5, 2) {
		t.Error("higher priority must win regardless of id")
	}
}

func TestPrioritiesMatchesPriority(t *testing.T) {
	g := gen.Path(10)
	p := Priorities(g, 3)
	for v := int32(0); v < 10; v++ {
		if uint32(p[v]) != Priority(v, 3) {
			t.Fatalf("Priorities[%d] mismatch", v)
		}
	}
}

// suite returns the family of test graphs every algorithm must color.
func suite() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":     graph.FromEdges(0, nil),
		"isolated":  graph.FromEdges(5, nil),
		"path":      gen.Path(17),
		"evencycle": gen.Cycle(10),
		"oddcycle":  gen.Cycle(11),
		"star":      gen.Star(50),
		"complete":  gen.Complete(9),
		"grid":      gen.Grid2D(8, 9),
		"rmat":      gen.RMAT(8, 8, gen.Graph500, 3),
		"gnm":       gen.GNM(200, 800, 4),
		"ba":        gen.BarabasiAlbert(150, 3, 5),
	}
}

func TestGreedyAllOrderingsProper(t *testing.T) {
	for name, g := range suite() {
		for _, o := range []Ordering{Natural, LargestFirst, SmallestLast, RandomOrder} {
			colors := Greedy(g, o, 42)
			if err := Verify(g, colors); err != nil {
				t.Errorf("%s/%v: %v", name, o, err)
				continue
			}
			if nc := NumColors(colors); nc > g.MaxDegree()+1 {
				t.Errorf("%s/%v: %d colors > maxdeg+1 = %d", name, o, nc, g.MaxDegree()+1)
			}
		}
	}
}

func TestGreedyKnownChromatic(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", gen.Path(10), 2},
		{"evencycle", gen.Cycle(8), 2},
		{"star", gen.Star(20), 2},
		{"complete", gen.Complete(7), 7},
	}
	for _, c := range cases {
		colors := Greedy(c.g, Natural, 0)
		if got := NumColors(colors); got != c.want {
			t.Errorf("%s: greedy used %d colors, want %d", c.name, got, c.want)
		}
	}
	// Odd cycle needs 3.
	colors := Greedy(gen.Cycle(9), Natural, 0)
	if got := NumColors(colors); got != 3 {
		t.Errorf("odd cycle: %d colors, want 3", got)
	}
}

func TestSmallestLastDegeneracyBound(t *testing.T) {
	// A star has degeneracy 1: smallest-last must 2-color it even though
	// largest-first would too; the stronger case is a BA graph with
	// degeneracy m: at most m+1 colors.
	g := gen.BarabasiAlbert(300, 3, 11)
	colors := Greedy(g, SmallestLast, 0)
	if err := Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	if nc := NumColors(colors); nc > 3+1 {
		t.Errorf("smallest-last used %d colors on degeneracy-3 graph, want <= 4", nc)
	}
}

func TestDSATUR(t *testing.T) {
	for name, g := range suite() {
		colors := DSATUR(g)
		if err := Verify(g, colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// DSATUR is exact on bipartite graphs.
	for _, g := range []*graph.Graph{gen.Path(30), gen.Cycle(12), gen.Star(40), gen.Grid2D(6, 7)} {
		if nc := NumColors(DSATUR(g)); nc != 2 {
			t.Errorf("DSATUR used %d colors on a bipartite graph, want 2", nc)
		}
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Natural: "natural", LargestFirst: "largest-first",
		SmallestLast: "smallest-last", RandomOrder: "random", Ordering(9): "ordering(?)",
	} {
		if o.String() != want {
			t.Errorf("Ordering(%d).String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

// Property: greedy is proper and within the maxdeg+1 bound on arbitrary
// random graphs, all orderings.
func TestGreedyProperProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN)%50 + 1
		g := gen.GNM(n, 4*n, seed)
		for _, o := range []Ordering{Natural, LargestFirst, SmallestLast, RandomOrder} {
			colors := Greedy(g, o, seed)
			if Verify(g, colors) != nil {
				return false
			}
			if NumColors(colors) > g.MaxDegree()+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
