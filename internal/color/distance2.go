package color

import (
	"fmt"

	"gcolor/internal/graph"
)

// Distance-2 coloring: no two vertices within two hops share a color. It is
// the variant used for Jacobian/Hessian compression (Gebremedhin, Manne &
// Pothen) and a natural extension of the paper's kernels: the neighbour
// scans become two-hop, so per-vertex work grows with the *sum of
// neighbours' degrees* and the load-imbalance effects get quadratically
// sharper.

// VerifyD2 checks that colors is a proper distance-2 coloring of g.
func VerifyD2(g *graph.Graph, colors []int32) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("color: %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("color: vertex %d uncolored", v)
		}
		for _, u := range g.Neighbors(int32(v)) {
			if colors[u] == colors[v] {
				return fmt.Errorf("color: edge %d-%d monochromatic (color %d)", v, u, colors[v])
			}
			for _, w := range g.Neighbors(u) {
				if w != int32(v) && colors[w] == colors[v] {
					return fmt.Errorf("color: distance-2 pair %d-%d via %d monochromatic (color %d)",
						v, w, u, colors[v])
				}
			}
		}
	}
	return nil
}

// D2Bound returns an upper bound on the colors sequential greedy needs for a
// distance-2 coloring: the maximum two-hop neighbourhood size plus one
// (bounded by maxdeg^2 + 1).
func D2Bound(g *graph.Graph) int {
	bound := 0
	for v := 0; v < g.NumVertices(); v++ {
		size := g.Degree(int32(v))
		for _, u := range g.Neighbors(int32(v)) {
			size += g.Degree(u) - 1
		}
		if size > bound {
			bound = size
		}
	}
	return bound + 1
}

// GreedyD2 colors g distance-2 sequentially with first-fit in natural
// order.
func GreedyD2(g *graph.Graph) []int32 {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = Uncolored
	}
	// Epoch-marked scratch sized by the worst-case two-hop bound.
	scratch := make([]int32, D2Bound(g)+1)
	for i := range scratch {
		scratch[i] = -1
	}
	for v := 0; v < n; v++ {
		epoch := int32(v)
		mark := func(c int32) {
			if c >= 0 && int(c) < len(scratch) {
				scratch[c] = epoch
			}
		}
		for _, u := range g.Neighbors(int32(v)) {
			mark(colors[u])
			for _, w := range g.Neighbors(u) {
				if w != int32(v) {
					mark(colors[w])
				}
			}
		}
		c := int32(0)
		for scratch[c] == epoch {
			c++
		}
		colors[v] = c
	}
	return colors
}
