package color

import (
	"testing"
	"testing/quick"

	"gcolor/internal/gen"
)

func TestJonesPlassmannProper(t *testing.T) {
	for name, g := range suite() {
		res := JonesPlassmann(g, 1, 4)
		if err := Verify(g, res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.NumVertices() > 0 && res.Rounds == 0 {
			t.Errorf("%s: zero rounds for non-empty graph", name)
		}
		if nc := NumColors(res.Colors); nc > g.MaxDegree()+1 {
			t.Errorf("%s: JP used %d colors > maxdeg+1", name, nc)
		}
	}
}

func TestJonesPlassmannDeterministic(t *testing.T) {
	g := gen.RMAT(9, 8, gen.Graph500, 2)
	a := JonesPlassmann(g, 7, 1)
	b := JonesPlassmann(g, 7, 8)
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("JP result depends on worker count at vertex %d", v)
		}
	}
	c := JonesPlassmann(g, 8, 4)
	same := true
	for v := range a.Colors {
		if a.Colors[v] != c.Colors[v] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical JP colorings (suspicious)")
	}
}

func TestJonesPlassmannConvergenceProfile(t *testing.T) {
	g := gen.GNM(500, 3000, 3)
	res := JonesPlassmann(g, 1, 0)
	if len(res.ActivePerRound) != res.Rounds {
		t.Fatalf("profile length %d != rounds %d", len(res.ActivePerRound), res.Rounds)
	}
	if res.ActivePerRound[0] != 500 {
		t.Errorf("round 0 active = %d, want 500", res.ActivePerRound[0])
	}
	for i := 1; i < len(res.ActivePerRound); i++ {
		if res.ActivePerRound[i] >= res.ActivePerRound[i-1] {
			t.Errorf("active count not strictly decreasing at round %d: %v", i, res.ActivePerRound)
			break
		}
	}
}

func TestGebremedhinManneProper(t *testing.T) {
	for name, g := range suite() {
		res := GebremedhinManne(g, 4)
		if err := Verify(g, res.Colors); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if nc := NumColors(res.Colors); nc > g.MaxDegree()+1 {
			t.Errorf("%s: GM used %d colors > maxdeg+1", name, nc)
		}
		if len(res.ConflictsPerRound) != res.Rounds {
			t.Errorf("%s: conflict profile length mismatch", name)
		}
	}
}

func TestGebremedhinManneSequentialMatchesFirstFit(t *testing.T) {
	// With one worker there are no stale reads, so round one succeeds with
	// zero conflicts and the result equals sequential first-fit.
	g := gen.GNM(300, 1500, 9)
	res := GebremedhinManne(g, 1)
	if res.Rounds != 1 || res.ConflictsPerRound[0] != 0 {
		t.Errorf("single-worker GM: rounds=%d conflicts=%v, want 1 round, 0 conflicts",
			res.Rounds, res.ConflictsPerRound)
	}
	want := Greedy(g, Natural, 0)
	for v := range want {
		if res.Colors[v] != want[v] {
			t.Fatalf("single-worker GM differs from greedy at vertex %d", v)
		}
	}
}

func TestIterativeMaxProper(t *testing.T) {
	for name, g := range suite() {
		colors := IterativeMax(g, 1)
		if err := Verify(g, colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestIterativeMaxMatchesJPSelection(t *testing.T) {
	// IterativeMax and JonesPlassmann select identical independent sets per
	// round (same priorities, same rule); they differ only in the color
	// assigned. So for every vertex, the round in which it is colored must
	// match: JP's color value has no such guarantee, but IterativeMax's
	// color IS the round, and JP colors a vertex in the round it wins.
	g := gen.GNM(200, 900, 4)
	im := IterativeMax(g, 9)
	jp := JonesPlassmann(g, 9, 1)
	if NumColors(im) != jp.Rounds {
		t.Errorf("IterativeMax used %d colors, JP took %d rounds; selection rules diverged",
			NumColors(im), jp.Rounds)
	}
}

func TestLubyProper(t *testing.T) {
	for name, g := range suite() {
		colors := Luby(g, 5)
		if err := Verify(g, colors); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLubyColorClassesAreMaximalIS(t *testing.T) {
	// Every color class of Luby must be a *maximal* independent set of the
	// graph induced by vertices not colored earlier: no vertex of a later
	// class could join an earlier class.
	g := gen.GNM(120, 500, 2)
	colors := Luby(g, 5)
	nc := NumColors(colors)
	for c := int32(0); c < int32(nc); c++ {
		for v := 0; v < g.NumVertices(); v++ {
			if colors[v] <= c {
				continue // colored at or before class c
			}
			// v was available when class c formed; maximality requires a
			// neighbour in class c or earlier... precisely: a neighbour in
			// class exactly c.
			hasNeighborInC := false
			for _, u := range g.Neighbors(int32(v)) {
				if colors[u] == c {
					hasNeighborInC = true
					break
				}
			}
			if !hasNeighborInC {
				t.Fatalf("vertex %d (class %d) has no neighbour in class %d: class %d not maximal",
					v, colors[v], c, c)
			}
		}
	}
}

func TestParallelForCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		hits := make([]int, 100)
		parallelFor(workers, 100, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++ // ranges are disjoint, no race
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	parallelFor(4, 0, func(lo, hi int) { t.Error("body ran for n=0") })
}

// Property: JP and GM agree with the verifier on arbitrary graphs and any
// worker count.
func TestParallelAlgorithmsProperProperty(t *testing.T) {
	f := func(seed int64, rawN, rawW uint8) bool {
		n := int(rawN)%60 + 1
		workers := int(rawW)%8 + 1
		g := gen.GNM(n, 5*n, seed)
		jp := JonesPlassmann(g, uint32(seed), workers)
		if Verify(g, jp.Colors) != nil {
			return false
		}
		gm := GebremedhinManne(g, workers)
		return Verify(g, gm.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
