package exp

import (
	"context"
	"fmt"

	"gcolor/internal/gpucolor"
	"gcolor/internal/simt"
)

// FigResilience produces X5: recovery behaviour and overhead of the
// resilient driver under fault injection. For each graph and fault rate a
// few independently seeded injectors drive ColorContext; the table records
// how often a verified coloring came back, which recovery rung produced it,
// and what the detour cost relative to the fault-free run. The rate-0 row
// doubles as the zero-overhead check: one attempt, no recovery, cycles
// identical to the plain run.
func FigResilience(cfg Config) ([]*Table, error) {
	const trials = 3
	rates := []float64{0, 1e-5, 1e-4, 1e-3}
	t := &Table{
		ID:    "X5",
		Title: "Extension: fault injection and recovery (baseline, resilient driver)",
		Note: fmt.Sprintf("%d injector seeds per rate; rungs = clean/repair/retry/cpu; overhead vs fault-free cycles (GPU outcomes only)",
			trials),
		Header: []string{"graph", "rate", "recovered", "rungs c/r/t/f", "attempts", "faults", "overhead%"},
	}
	for _, name := range []string{"rmat", "random", "grid2d"} {
		d, _ := DatasetByName(name)
		g := d.Build(cfg.Scale)
		clean, err := gpucolor.Baseline(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			var recovered, attempts int
			var rungs [4]int
			var faults, gpuCycles int64
			gpuRuns := 0
			for trial := 0; trial < trials; trial++ {
				dev := device(coarseWG, simt.Static)
				if rate > 0 {
					dev.Fault = simt.NewFaultInjector(uint64(trial)*0x9E3779B97F4A7C15+1, rate)
				}
				out, err := gpucolor.ColorContext(context.Background(), dev, g,
					gpucolor.AlgBaseline, gpucolor.ResilientOptions{Options: gpucolor.Options{Seed: cfg.Seed}})
				if err != nil {
					continue // a typed error counts as not recovered
				}
				recovered++
				attempts += out.Attempts
				faults += out.Faults.Injected()
				rungs[int(out.Recovery)]++
				if out.Recovery != gpucolor.RecoveryCPU {
					gpuCycles += out.Cycles
					gpuRuns++
				}
			}
			overhead := "-"
			if gpuRuns > 0 && clean.Cycles > 0 {
				avg := float64(gpuCycles) / float64(gpuRuns)
				overhead = fmt.Sprintf("%+.1f", 100*(avg-float64(clean.Cycles))/float64(clean.Cycles))
			}
			t.Add(d.Name,
				fmt.Sprintf("%.0e", rate),
				fmt.Sprintf("%d/%d", recovered, trials),
				fmt.Sprintf("%d/%d/%d/%d", rungs[0], rungs[1], rungs[2], rungs[3]),
				fmt.Sprintf("%.1f", float64(attempts)/float64(trials)),
				fmt.Sprintf("%d", faults/trials),
				overhead,
			)
		}
	}
	return []*Table{t}, nil
}
