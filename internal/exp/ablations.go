package exp

import (
	"fmt"
	"math/rand"

	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/metrics"
	"gcolor/internal/simt"
)

// Ablations probe the design choices DESIGN.md calls out: where the hubs
// sit in the id space (A1), sensitivity to the priority seed (A2), the cost
// of a steal (A3), and the memory-coalescing model itself (A4).

// AblationLabeling produces A1: the same scale-free graph relabeled three
// ways — natural (R-MAT hubs clustered at low ids), random permutation
// (hubs spread), and degree-sorted (hubs maximally clustered) — under
// static and stealing schedules. Hub placement, not hub existence, is what
// breaks static scheduling.
func AblationLabeling(cfg Config) ([]*Table, error) {
	d, _ := DatasetByName("rmat")
	base := d.Build(cfg.Scale)

	rng := rand.New(rand.NewSource(99))
	randPerm := make([]int32, base.NumVertices())
	for i := range randPerm {
		randPerm[i] = int32(i)
	}
	rng.Shuffle(len(randPerm), func(i, j int) { randPerm[i], randPerm[j] = randPerm[j], randPerm[i] })
	shuffled, err := graph.Relabel(base, randPerm)
	if err != nil {
		return nil, err
	}
	sorted, err := graph.Relabel(base, graph.DegreeOrder(base))
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "A1",
		Title:  "Vertex labeling vs static scheduling (rmat)",
		Note:   "CU-imb = max/mean per-CU busy cycles under static; stealing recovers what bad placement loses",
		Header: []string{"labeling", "CU-imb", "static", "stealing", "ws-gain%", "steals"},
	}
	for _, c := range []struct {
		name string
		g    *graph.Graph
	}{
		{"natural (hubs low)", base},
		{"random (hubs spread)", shuffled},
		{"degree-sorted (hubs packed)", sorted},
	} {
		opt := gpucolor.Options{Seed: cfg.Seed}
		st, err := gpucolor.Baseline(device(fineWG, simt.Static), c.g, opt)
		if err != nil {
			return nil, err
		}
		ws, err := gpucolor.Baseline(device(fineWG, simt.Stealing), c.g, opt)
		if err != nil {
			return nil, err
		}
		cu := metrics.SummarizeInt64(st.CUBusy)
		t.Add(c.name,
			fmt.Sprintf("%.2f", cu.MaxOverMean),
			fmt.Sprintf("%d", st.Cycles),
			fmt.Sprintf("%d", ws.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(st.Cycles), float64(ws.Cycles))),
			fmt.Sprintf("%d", ws.Steals),
		)
	}
	return []*Table{t}, nil
}

// AblationSeeds produces A2: run-to-run spread of the baseline and hybrid
// over five priority seeds. The techniques' gains must dwarf seed noise for
// the headline comparison to mean anything.
func AblationSeeds(cfg Config) ([]*Table, error) {
	d, _ := DatasetByName("rmat")
	g := d.Build(cfg.Scale)
	t := &Table{
		ID:     "A2",
		Title:  "Priority-seed variance (rmat, 5 seeds)",
		Note:   "min/mean/max over seeds 1..5",
		Header: []string{"algorithm", "cycles min", "cycles mean", "cycles max", "colors min", "colors max"},
	}
	for _, alg := range []gpucolor.Algorithm{gpucolor.AlgBaseline, gpucolor.AlgHybrid} {
		var cycles []float64
		minC, maxC := 1<<31, 0
		for seed := uint32(1); seed <= 5; seed++ {
			res, err := gpucolor.Color(device(fineWG, simt.Static), g, alg, gpucolor.Options{Seed: seed})
			if err != nil {
				return nil, err
			}
			cycles = append(cycles, float64(res.Cycles))
			if res.NumColors < minC {
				minC = res.NumColors
			}
			if res.NumColors > maxC {
				maxC = res.NumColors
			}
		}
		s := metrics.Summarize(cycles)
		t.Add("gpu-"+alg.String(),
			fmt.Sprintf("%.0f", s.Min),
			fmt.Sprintf("%.0f", s.Mean),
			fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%d", minC),
			fmt.Sprintf("%d", maxC),
		)
	}
	return []*Table{t}, nil
}

// AblationStealCost produces A3: sensitivity of the stealing schedule to the
// per-steal charge.
func AblationStealCost(cfg Config) ([]*Table, error) {
	d, _ := DatasetByName("rmat")
	g := d.Build(cfg.Scale)
	opt := gpucolor.Options{Seed: cfg.Seed}
	staticRes, err := gpucolor.Baseline(device(fineWG, simt.Static), g, opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "A3",
		Title:  "Steal-cost sensitivity (baseline on rmat, workgroup size 64)",
		Note:   fmt.Sprintf("static reference: %d cycles", staticRes.Cycles),
		Header: []string{"steal cost", "cycles", "gain%", "steals"},
	}
	for _, sc := range []int64{0, 100, 400, 1600, 6400, 25600} {
		dev := device(fineWG, simt.Stealing)
		dev.Cost.StealCost = sc
		res, err := gpucolor.Baseline(dev, g, opt)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", sc),
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(staticRes.Cycles), float64(res.Cycles))),
			fmt.Sprintf("%d", res.Steals),
		)
	}
	return []*Table{t}, nil
}

// AblationCompaction produces A5: worklist-rebuild strategies — prefix-sum
// scan compaction (deterministic, three extra kernels per rebuild) versus
// the Pannotia-era atomic cursor (single kernel, serialized atomics). The
// colorings are identical; only where the compaction cycles go differs.
func AblationCompaction(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "Worklist compaction strategy (baseline)",
		Note:   "same coloring either way; scan pays launches, atomic pays serialized cursor updates",
		Header: []string{"graph", "scan", "atomic", "atomic-gain%"},
	}
	for _, name := range []string{"rmat", "random", "grid2d"} {
		d, _ := DatasetByName(name)
		g := d.Build(cfg.Scale)
		scan, err := gpucolor.Baseline(device(coarseWG, simt.Static), g,
			gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		atomic, err := gpucolor.Baseline(device(coarseWG, simt.Static), g,
			gpucolor.Options{Seed: cfg.Seed, Compaction: gpucolor.CompactionAtomic})
		if err != nil {
			return nil, err
		}
		t.Add(d.Name,
			fmt.Sprintf("%d", scan.Cycles),
			fmt.Sprintf("%d", atomic.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(scan.Cycles), float64(atomic.Cycles))),
		)
	}
	return []*Table{t}, nil
}

// AblationCache produces A6: the per-workgroup read-cache model. Caching
// softens the scattered color/priority gathers (hubs are re-read
// constantly), shrinking absolute cycles — the question is whether the
// hybrid's advantage survives, i.e. whether the paper's conclusion is
// robust to the memory model's sharpest simplification.
func AblationCache(cfg Config) ([]*Table, error) {
	d, _ := DatasetByName("rmat")
	g := d.Build(cfg.Scale)
	opt := gpucolor.Options{Seed: cfg.Seed}
	t := &Table{
		ID:     "A6",
		Title:  "Read-cache ablation (rmat)",
		Note:   "cache = segments cached per workgroup; hit% over all transactions",
		Header: []string{"cache", "baseline", "hit%", "hybrid", "hit%", "hybrid-gain%"},
	}
	for _, segs := range []int{0, 128, 512, 2048} {
		devB := device(coarseWG, simt.Static)
		devB.Cost.CacheSegments = segs
		base, err := gpucolor.Baseline(devB, g, opt)
		if err != nil {
			return nil, err
		}
		devH := device(coarseWG, simt.Static)
		devH.Cost.CacheSegments = segs
		hyb, err := gpucolor.Hybrid(devH, g, opt)
		if err != nil {
			return nil, err
		}
		hitPct := func(r *gpucolor.Result) string {
			if r.MemTransactions == 0 {
				return "0.0"
			}
			return fmt.Sprintf("%.1f", 100*float64(r.CacheHits)/float64(r.MemTransactions))
		}
		t.Add(fmt.Sprintf("%d", segs),
			fmt.Sprintf("%d", base.Cycles), hitPct(base),
			fmt.Sprintf("%d", hyb.Cycles), hitPct(hyb),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(base.Cycles), float64(hyb.Cycles))),
		)
	}
	return []*Table{t}, nil
}

// AblationCoalescing produces A4: what happens to the baseline and the
// hybrid when the memory model's coalescing granularity changes. With
// 1-element segments every access is its own transaction (no coalescing to
// win), so the hybrid's coalesced neighbour scans lose part of their edge —
// evidence that the reproduction's conclusions rest on the mechanism the
// paper identifies rather than on an artifact.
func AblationCoalescing(cfg Config) ([]*Table, error) {
	d, _ := DatasetByName("rmat")
	g := d.Build(cfg.Scale)
	opt := gpucolor.Options{Seed: cfg.Seed}
	t := &Table{
		ID:     "A4",
		Title:  "Coalescing-granularity ablation (rmat)",
		Note:   "segment = elements per memory transaction; hybrid gain is vs baseline at the same granularity",
		Header: []string{"segment", "baseline", "hybrid", "hybrid-gain%"},
	}
	for _, seg := range []int32{1, 4, 16, 64} {
		devB := device(coarseWG, simt.Static)
		devB.Cost.SegmentElems = seg
		base, err := gpucolor.Baseline(devB, g, opt)
		if err != nil {
			return nil, err
		}
		devH := device(coarseWG, simt.Static)
		devH.Cost.SegmentElems = seg
		hyb, err := gpucolor.Hybrid(devH, g, opt)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", seg),
			fmt.Sprintf("%d", base.Cycles),
			fmt.Sprintf("%d", hyb.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(base.Cycles), float64(hyb.Cycles))),
		)
	}
	return []*Table{t}, nil
}
