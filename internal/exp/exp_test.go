package exp

import (
	"strconv"
	"strings"
	"testing"
)

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) < 5 {
		t.Fatalf("only %d datasets registered", len(ds))
	}
	seen := map[string]bool{}
	for _, d := range ds {
		if seen[d.Name] {
			t.Errorf("duplicate dataset name %q", d.Name)
		}
		seen[d.Name] = true
		g := d.Build(Small)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if g.NumVertices() == 0 {
			t.Errorf("%s: empty graph", d.Name)
		}
		big := d.Build(Full)
		if big.NumVertices() <= g.NumVertices() {
			t.Errorf("%s: Full (%d vertices) not larger than Small (%d)",
				d.Name, big.NumVertices(), g.NumVertices())
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, ok := DatasetByName("rmat"); !ok {
		t.Error("rmat dataset missing")
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Error("unknown dataset found")
	}
}

func TestDatasetStructuralContrast(t *testing.T) {
	// The registry must span the degree-variance axis: rmat skewed, grid
	// uniform. This contrast is what every figure relies on.
	rmat, _ := DatasetByName("rmat")
	grid, _ := DatasetByName("grid2d")
	rs := rmat.Build(Small).Stats()
	gs := grid.Build(Small).Stats()
	if rs.CV < 3*gs.CV {
		t.Errorf("rmat CV %.2f not clearly above grid CV %.2f", rs.CV, gs.CV)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "TX",
		Title:  "demo",
		Note:   "a note",
		Header: []string{"name", "value"},
	}
	tb.Add("alpha", "1")
	tb.Add("b", "22")
	s := tb.String()
	for _, want := range []string{"== TX: demo ==", "(a note)", "name", "alpha", "22"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	// Numeric column right-aligned: "22" should line up at the right edge.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(last, "22") {
		t.Errorf("numeric column not right-aligned: %q", last)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "TX", Title: "demo", Header: []string{"a", "b"}}
	tb.Add("x", "1")
	tb.Add("y,z", "2") // comma must be quoted
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"# TX: demo\n", "a,b\n", "x,1\n", "\"y,z\",2\n"} {
		if !strings.Contains(got, want) {
			t.Errorf("CSV missing %q:\n%s", want, got)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("F99", Config{Scale: Small}); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment entry %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
}

// TestAllExperimentsRunAtSmallScale executes the complete harness at Small
// scale and sanity-checks each table's shape. This is the integration test
// of the whole stack: generators -> simulator -> algorithms -> metrics.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	for _, e := range Experiments() {
		tables, err := e.Run(Config{Scale: Small})
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if len(tables) == 0 {
			t.Errorf("%s: no tables produced", e.ID)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s: empty table %q", e.ID, tb.Title)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tb.Header))
					break
				}
			}
		}
	}
}

func TestRunAllWrites(t *testing.T) {
	var sb strings.Builder
	if err := RunAll(Config{Scale: Small}, &sb); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := sb.String()
	for _, id := range []string{"T1", "F1", "F5", "F7", "F9"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("RunAll output missing experiment %s", id)
		}
	}
}

// TestHeadlineShapeSmall asserts the reproduction's core claims hold even at
// Small scale: the hybrid clearly beats the baseline on the scale-free
// input and is not catastrophically worse on the mesh.
func TestHeadlineShapeSmall(t *testing.T) {
	tables, err := FigHeadline(Config{Scale: Small})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var rmatGain, gridGain float64
	for _, row := range tb.Rows {
		g, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad gain cell %q: %v", row[5], err)
		}
		switch row[0] {
		case "rmat":
			rmatGain = g
		case "grid2d":
			gridGain = g
		}
	}
	// Small-scale gains are muted (the per-workgroup cache absorbs much of
	// the hub traffic on a 1k-vertex graph); the Full-scale gains recorded
	// in EXPERIMENTS.md are the real comparison.
	if rmatGain < 8 {
		t.Errorf("hybrid gain on rmat = %.1f%%, want >= 8%%", rmatGain)
	}
	if gridGain < -15 {
		t.Errorf("hybrid gain on grid2d = %.1f%%, want > -15%%", gridGain)
	}
}
