package exp

import (
	"fmt"

	"gcolor/internal/color"
	"gcolor/internal/gpuapps"
	"gcolor/internal/gpucolor"
	"gcolor/internal/metrics"
	"gcolor/internal/simt"
)

// FigApps produces X2: the load-imbalance fingerprint across the companion
// irregular workloads (BFS, PageRank, connected components) next to the
// coloring baseline, on the structural extremes. The paper frames coloring
// as one of a family of irregular applications; this shows the family trait.
func FigApps(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "X2",
		Title:  "Extension: imbalance across irregular graph workloads",
		Note:   "wf-imb = max/mean per-wavefront cycles; the hub effect is a family trait, not a coloring quirk",
		Header: []string{"graph", "workload", "cycles", "iterations", "SIMD util", "wf-imb"},
	}
	for _, name := range []string{"rmat", "random", "grid2d"} {
		d, _ := DatasetByName(name)
		g := d.Build(cfg.Scale)

		col, err := gpucolor.Baseline(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		t.Add(d.Name, "coloring",
			fmt.Sprintf("%d", col.Cycles), fmt.Sprintf("%d", col.Iterations),
			fmt.Sprintf("%.3f", col.SIMDUtilization()),
			fmt.Sprintf("%.1f", metrics.SummarizeInt64(col.WavefrontWork).MaxOverMean))

		bfs, err := gpuapps.BFS(device(coarseWG, simt.Static), g, 0)
		if err != nil {
			return nil, err
		}
		t.Add(d.Name, "bfs",
			fmt.Sprintf("%d", bfs.Stats.Cycles), fmt.Sprintf("%d", bfs.Stats.Iterations),
			fmt.Sprintf("%.3f", bfs.Stats.SIMDUtilization()),
			fmt.Sprintf("%.1f", bfs.Stats.WavefrontImbalance()))

		pr := gpuapps.PageRank(device(coarseWG, simt.Static), g, gpuapps.PageRankOptions{MaxIters: 30})
		t.Add(d.Name, "pagerank",
			fmt.Sprintf("%d", pr.Stats.Cycles), fmt.Sprintf("%d", pr.Stats.Iterations),
			fmt.Sprintf("%.3f", pr.Stats.SIMDUtilization()),
			fmt.Sprintf("%.1f", pr.Stats.WavefrontImbalance()))

		cc := gpuapps.ConnectedComponents(device(coarseWG, simt.Static), g)
		t.Add(d.Name, "components",
			fmt.Sprintf("%d", cc.Stats.Cycles), fmt.Sprintf("%d", cc.Stats.Iterations),
			fmt.Sprintf("%.3f", cc.Stats.SIMDUtilization()),
			fmt.Sprintf("%.1f", cc.Stats.WavefrontImbalance()))
	}
	return []*Table{t}, nil
}

// FigHybridBFS produces X4: the hybrid technique transplanted onto BFS.
// The paper's remedies are framed as general tools for irregular kernels;
// here the degree-split expand shows the same signature — wins scale with
// hub prevalence, costs nothing on meshes (the short-circuit kicks in).
func FigHybridBFS(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "X4",
		Title:  "Extension: hybrid technique applied to BFS",
		Note:   "same levels either way; gain% relative to thread-per-vertex expand",
		Header: []string{"graph", "bfs", "hybrid-bfs", "gain%", "bfs util", "hybrid util"},
	}
	for _, name := range []string{"rmat", "powerlaw", "random", "grid2d", "road"} {
		d, _ := DatasetByName(name)
		g := d.Build(cfg.Scale)
		base, err := gpuapps.BFS(device(coarseWG, simt.Static), g, 0)
		if err != nil {
			return nil, err
		}
		hyb, err := gpuapps.BFSHybrid(device(coarseWG, simt.Static), g, 0, 0)
		if err != nil {
			return nil, err
		}
		t.Add(d.Name,
			fmt.Sprintf("%d", base.Stats.Cycles),
			fmt.Sprintf("%d", hyb.Stats.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(base.Stats.Cycles), float64(hyb.Stats.Cycles))),
			fmt.Sprintf("%.3f", base.Stats.SIMDUtilization()),
			fmt.Sprintf("%.3f", hyb.Stats.SIMDUtilization()),
		)
	}
	return []*Table{t}, nil
}

// FigScalability produces X3: how the baseline and its remedies scale with
// compute-unit count on the skewed input. Static scheduling stops scaling
// once per-CU chunks shrink to the hub groups; stealing keeps scaling until
// intra-wavefront serialization (which only the hybrid removes) dominates.
func FigScalability(cfg Config) ([]*Table, error) {
	d, _ := DatasetByName("rmat")
	g := d.Build(cfg.Scale)
	opt := gpucolor.Options{Seed: cfg.Seed}
	t := &Table{
		ID:     "X3",
		Title:  "Extension: compute-unit scaling (baseline on rmat, workgroup size 64)",
		Note:   "speedup is each configuration vs itself at 7 CUs",
		Header: []string{"CUs", "static", "speedup", "stealing", "speedup", "hybrid+steal", "speedup"},
	}
	var base [3]float64
	for i, cus := range []int{7, 14, 28, 56} {
		mk := func(p simt.Policy) *simt.Device {
			dev := device(fineWG, p)
			dev.NumCUs = cus
			return dev
		}
		st, err := gpucolor.Baseline(mk(simt.Static), g, opt)
		if err != nil {
			return nil, err
		}
		ws, err := gpucolor.Baseline(mk(simt.Stealing), g, opt)
		if err != nil {
			return nil, err
		}
		hy, err := gpucolor.Hybrid(mk(simt.Stealing), g, opt)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = [3]float64{float64(st.Cycles), float64(ws.Cycles), float64(hy.Cycles)}
		}
		t.Add(fmt.Sprintf("%d", cus),
			fmt.Sprintf("%d", st.Cycles), fmt.Sprintf("%.2fx", base[0]/float64(st.Cycles)),
			fmt.Sprintf("%d", ws.Cycles), fmt.Sprintf("%.2fx", base[1]/float64(ws.Cycles)),
			fmt.Sprintf("%d", hy.Cycles), fmt.Sprintf("%.2fx", base[2]/float64(hy.Cycles)),
		)
	}
	return []*Table{t}, nil
}

// FigDistance2 produces X1: the distance-2 coloring extension. Two-hop
// neighbour scans square the per-vertex work spread, so the wavefront
// imbalance seen in F-R3 reappears amplified; the CPU greedy column fixes
// the quality reference. The extreme R-MAT input is excluded at Full scale
// (its hubs make two-hop scans quadratically expensive); the power-law
// dataset carries the skew story.
func FigDistance2(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "X1",
		Title:  "Extension: distance-2 coloring (GPU speculative vs CPU greedy)",
		Note:   "wf-imb = max/mean per-wavefront cycles of the speculate kernels",
		Header: []string{"graph", "cycles", "rounds", "gpu colors", "cpu colors", "wf-imb", "SIMD util"},
	}
	for _, d := range Datasets() {
		if d.Name == "rmat" && cfg.Scale == Full {
			t.Add(d.Name, "(skipped: two-hop scans on the extreme R-MAT exceed the simulation budget)", "-", "-", "-", "-", "-")
			continue
		}
		g := d.Build(cfg.Scale)
		res, err := gpucolor.SpeculativeD2(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		cpu := color.GreedyD2(g)
		wf := metrics.SummarizeInt64(res.WavefrontWork)
		t.Add(d.Name,
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%d", res.NumColors),
			fmt.Sprintf("%d", color.NumColors(cpu)),
			fmt.Sprintf("%.1f", wf.MaxOverMean),
			fmt.Sprintf("%.3f", res.SIMDUtilization()),
		)
	}
	return []*Table{t}, nil
}
