package exp

import (
	"fmt"

	"gcolor/internal/color"
	"gcolor/internal/gpucolor"
	"gcolor/internal/metrics"
	"gcolor/internal/simt"
)

// FigScheduling produces F-R5: static vs round-robin vs work-stealing
// workgroup scheduling on the baseline algorithm. Workgroups of 64 items
// keep tasks migratable (see F-R8 for the granularity sweep). It also
// reports the inter-CU imbalance of the static schedule, which predicts how
// much the dynamic policies can recover.
func FigScheduling(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "F5",
		Title:  "Workgroup scheduling policies (baseline, workgroup size 64)",
		Note:   "improvement is relative to static; CU-imb = max/mean of per-CU busy cycles under static",
		Header: []string{"graph", "CU-imb", "static", "round-robin", "rr-gain%", "stealing", "ws-gain%", "steals"},
	}
	for _, d := range Datasets() {
		g := d.Build(cfg.Scale)
		opt := gpucolor.Options{Seed: cfg.Seed}
		static, err := gpucolor.Baseline(device(fineWG, simt.Static), g, opt)
		if err != nil {
			return nil, err
		}
		rr, err := gpucolor.Baseline(device(fineWG, simt.RoundRobin), g, opt)
		if err != nil {
			return nil, err
		}
		ws, err := gpucolor.Baseline(device(fineWG, simt.Stealing), g, opt)
		if err != nil {
			return nil, err
		}
		cu := metrics.SummarizeInt64(static.CUBusy)
		t.Add(d.Name,
			fmt.Sprintf("%.2f", cu.MaxOverMean),
			fmt.Sprintf("%d", static.Cycles),
			fmt.Sprintf("%d", rr.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(static.Cycles), float64(rr.Cycles))),
			fmt.Sprintf("%d", ws.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(static.Cycles), float64(ws.Cycles))),
			fmt.Sprintf("%d", ws.Steals),
		)
	}
	return []*Table{t}, nil
}

// FigHybridThreshold produces F-R6: the hybrid's degree-threshold sweep on a
// scale-free input and a mesh, showing the U-shaped sensitivity curve and
// that meshes are indifferent (no vertex crosses any threshold).
func FigHybridThreshold(cfg Config) ([]*Table, error) {
	thresholds := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}
	var tables []*Table
	for _, name := range []string{"rmat", "grid2d"} {
		d, _ := DatasetByName(name)
		g := d.Build(cfg.Scale)
		opt := gpucolor.Options{Seed: cfg.Seed}
		base, err := gpucolor.Baseline(device(coarseWG, simt.Static), g, opt)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     "F6",
			Title:  fmt.Sprintf("Hybrid degree-threshold sensitivity (%s)", name),
			Note:   fmt.Sprintf("baseline: %d cycles; vertices with degree >= threshold run workgroup-per-vertex", base.Cycles),
			Header: []string{"threshold", "coop vertices", "cycles", "gain%"},
		}
		for _, th := range thresholds {
			coop := 0
			for v := 0; v < g.NumVertices(); v++ {
				if g.Degree(int32(v)) >= th {
					coop++
				}
			}
			hyb, err := gpucolor.Hybrid(device(coarseWG, simt.Static), g,
				gpucolor.Options{Seed: cfg.Seed, HybridThreshold: th})
			if err != nil {
				return nil, err
			}
			t.Add(fmt.Sprintf("%d", th),
				fmt.Sprintf("%d", coop),
				fmt.Sprintf("%d", hyb.Cycles),
				fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(base.Cycles), float64(hyb.Cycles))),
			)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// FigHeadline produces F-R7: the paper's summary comparison — baseline,
// baseline+stealing, hybrid, and hybrid+stealing on every graph.
func FigHeadline(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "F7",
		Title:  "Headline: work stealing and hybrid vs baseline (workgroup size 64)",
		Note:   "gain% relative to the static baseline; the paper reports ~25% from these techniques",
		Header: []string{"graph", "baseline", "+stealing", "gain%", "hybrid", "gain%", "hybrid+steal", "gain%"},
	}
	for _, d := range Datasets() {
		g := d.Build(cfg.Scale)
		opt := gpucolor.Options{Seed: cfg.Seed}
		base, err := gpucolor.Baseline(device(fineWG, simt.Static), g, opt)
		if err != nil {
			return nil, err
		}
		ws, err := gpucolor.Baseline(device(fineWG, simt.Stealing), g, opt)
		if err != nil {
			return nil, err
		}
		hyb, err := gpucolor.Hybrid(device(fineWG, simt.Static), g, opt)
		if err != nil {
			return nil, err
		}
		both, err := gpucolor.Hybrid(device(fineWG, simt.Stealing), g, opt)
		if err != nil {
			return nil, err
		}
		gain := func(r *gpucolor.Result) string {
			return fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(base.Cycles), float64(r.Cycles)))
		}
		t.Add(d.Name,
			fmt.Sprintf("%d", base.Cycles),
			fmt.Sprintf("%d", ws.Cycles), gain(ws),
			fmt.Sprintf("%d", hyb.Cycles), gain(hyb),
			fmt.Sprintf("%d", both.Cycles), gain(both),
		)
	}
	return []*Table{t}, nil
}

// FigWorkgroupSize produces F-R8: sensitivity of the static and stealing
// schedules to workgroup size on the scale-free input. Small workgroups
// create migratable tasks (stealing helps); large workgroups fuse hubs into
// monolithic groups nothing can split.
func FigWorkgroupSize(cfg Config) ([]*Table, error) {
	d, _ := DatasetByName("rmat")
	g := d.Build(cfg.Scale)
	opt := gpucolor.Options{Seed: cfg.Seed}
	t := &Table{
		ID:     "F8",
		Title:  "Workgroup-size sensitivity (baseline on rmat)",
		Note:   "stealing needs fine-grained tasks: its edge over static shrinks as workgroups grow",
		Header: []string{"workgroup", "static", "stealing", "ws-gain%", "steals"},
	}
	for _, wg := range []int{64, 128, 256, 512} {
		static, err := gpucolor.Baseline(device(wg, simt.Static), g, opt)
		if err != nil {
			return nil, err
		}
		ws, err := gpucolor.Baseline(device(wg, simt.Stealing), g, opt)
		if err != nil {
			return nil, err
		}
		t.Add(fmt.Sprintf("%d", wg),
			fmt.Sprintf("%d", static.Cycles),
			fmt.Sprintf("%d", ws.Cycles),
			fmt.Sprintf("%.1f", metrics.PercentImprovement(float64(static.Cycles), float64(ws.Cycles))),
			fmt.Sprintf("%d", ws.Steals),
		)
	}
	return []*Table{t}, nil
}

// FigAlgorithms produces F-R9: every GPU algorithm (cycles, iterations,
// colors) plus CPU references (colors only — the CPU path is not simulated)
// on every graph.
func FigAlgorithms(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "F9",
		Title:  "Algorithm comparison",
		Note:   "GPU rows report simulated cycles; CPU references report coloring quality only",
		Header: []string{"graph", "algorithm", "cycles", "iterations", "colors"},
	}
	for _, d := range Datasets() {
		g := d.Build(cfg.Scale)
		for _, alg := range gpucolor.Algorithms() {
			res, err := gpucolor.Color(device(coarseWG, simt.Static), g, alg, gpucolor.Options{Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			t.Add(d.Name, "gpu-"+alg.String(),
				fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%d", res.Iterations),
				fmt.Sprintf("%d", res.NumColors),
			)
		}
		ff := color.Greedy(g, color.Natural, 0)
		t.Add(d.Name, "cpu-firstfit", "-", "1", fmt.Sprintf("%d", color.NumColors(ff)))
		sl := color.Greedy(g, color.SmallestLast, 0)
		t.Add(d.Name, "cpu-smallest-last", "-", "1", fmt.Sprintf("%d", color.NumColors(sl)))
		jp := color.JonesPlassmann(g, cfg.Seed+1, 0)
		t.Add(d.Name, "cpu-jones-plassmann", "-",
			fmt.Sprintf("%d", jp.Rounds), fmt.Sprintf("%d", color.NumColors(jp.Colors)))
	}
	return []*Table{t}, nil
}
