package exp

import (
	"fmt"
	"io"

	"gcolor/internal/gpucolor"
	"gcolor/internal/metrics"
	"gcolor/internal/simt"
)

// Config parameterizes an experiment run.
type Config struct {
	Scale Scale
	Seed  uint32 // vertex-priority seed; 0 means the default
}

// device returns a fresh device in the experiment's standard configuration:
// HD 7950-like geometry with the given workgroup size and policy.
func device(wg int, p simt.Policy) *simt.Device {
	d := simt.NewDevice()
	d.WorkgroupSize = wg
	d.Policy = p
	return d
}

const (
	coarseWG = 256 // the device default, used for characterization figures
	fineWG   = 64  // fine-grained tasks, used for the scheduling figures
)

// Experiment couples an id ("T1", "F1".."F9") with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) ([]*Table, error)
}

// Experiments returns every experiment in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"T1", "Datasets and degree statistics", TableDatasets},
		{"F1", "Baseline GPU coloring time per graph", FigBaselineTime},
		{"F2", "Convergence: active vertices per iteration", FigConvergence},
		{"F3", "Intra-wavefront load imbalance", FigWavefrontImbalance},
		{"F4", "SIMD utilization and memory behaviour", FigUtilization},
		{"F5", "Workgroup scheduling policies", FigScheduling},
		{"F6", "Hybrid degree-threshold sensitivity", FigHybridThreshold},
		{"F7", "Headline: stealing and hybrid vs baseline", FigHeadline},
		{"F8", "Workgroup-size sensitivity", FigWorkgroupSize},
		{"F9", "Algorithm comparison (GPU and CPU)", FigAlgorithms},
		{"A1", "Ablation: vertex labeling vs static scheduling", AblationLabeling},
		{"A2", "Ablation: priority-seed variance", AblationSeeds},
		{"A3", "Ablation: steal-cost sensitivity", AblationStealCost},
		{"A4", "Ablation: coalescing granularity", AblationCoalescing},
		{"A5", "Ablation: worklist compaction strategy", AblationCompaction},
		{"A6", "Ablation: per-workgroup read cache", AblationCache},
		{"X1", "Extension: distance-2 coloring", FigDistance2},
		{"X2", "Extension: imbalance across irregular workloads", FigApps},
		{"X3", "Extension: compute-unit scaling", FigScalability},
		{"X4", "Extension: hybrid technique on BFS", FigHybridBFS},
		{"X5", "Extension: fault injection and recovery", FigResilience},
	}
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) ([]*Table, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q", id)
}

// RunAll executes every experiment, writing each table to w as it finishes.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range Experiments() {
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("exp %s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Fprint(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// TableDatasets produces T-R1: the dataset inventory with the degree
// statistics that predict SIMT behaviour.
func TableDatasets(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "Datasets and degree statistics",
		Note:   "degree CV and max/avg predict intra-wavefront imbalance",
		Header: []string{"graph", "kind", "vertices", "edges", "deg-min", "deg-avg", "deg-max", "deg-p99", "deg-CV", "max/avg"},
	}
	for _, d := range Datasets() {
		g := d.Build(cfg.Scale)
		st := g.Stats()
		t.Add(d.Name, d.Kind,
			fmt.Sprintf("%d", g.NumVertices()),
			fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%d", st.Min),
			fmt.Sprintf("%.1f", st.Mean),
			fmt.Sprintf("%d", st.Max),
			fmt.Sprintf("%d", st.P99),
			fmt.Sprintf("%.2f", st.CV),
			fmt.Sprintf("%.1f", st.MaxOverAvg),
		)
	}
	return []*Table{t}, nil
}

// FigBaselineTime produces F-R1: end-to-end simulated time of the baseline
// colorMax implementation on every graph.
func FigBaselineTime(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "F1",
		Title:  "Baseline GPU coloring time per graph",
		Note:   "colorMax, thread-per-vertex, static scheduling, workgroup size 256",
		Header: []string{"graph", "cycles", "iterations", "colors", "cycles/edge"},
	}
	for _, d := range Datasets() {
		g := d.Build(cfg.Scale)
		res, err := gpucolor.Baseline(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		t.Add(d.Name,
			fmt.Sprintf("%d", res.Cycles),
			fmt.Sprintf("%d", res.Iterations),
			fmt.Sprintf("%d", res.NumColors),
			fmt.Sprintf("%.1f", float64(res.Cycles)/float64(g.NumEdges())),
		)
	}
	return []*Table{t}, nil
}

// FigConvergence produces F-R2: the active-vertex series per iteration for
// colorMax versus colorMaxMin on a scale-free and a mesh input.
func FigConvergence(cfg Config) ([]*Table, error) {
	var tables []*Table
	for _, name := range []string{"rmat", "grid2d"} {
		d, _ := DatasetByName(name)
		g := d.Build(cfg.Scale)
		base, err := gpucolor.Baseline(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		mm, err := gpucolor.MaxMin(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     "F2",
			Title:  fmt.Sprintf("Active vertices per iteration (%s)", name),
			Note:   fmt.Sprintf("colorMax: %d iterations, colorMaxMin: %d", base.Iterations, mm.Iterations),
			Header: []string{"iteration", "colorMax active", "colorMaxMin active"},
		}
		rows := base.Iterations
		if mm.Iterations > rows {
			rows = mm.Iterations
		}
		step := 1
		if rows > 16 {
			step = rows / 16
		}
		for i := 0; i < rows; i += step {
			bs, ms := "-", "-"
			if i < len(base.ActivePerIter) {
				bs = fmt.Sprintf("%d", base.ActivePerIter[i])
			}
			if i < len(mm.ActivePerIter) {
				ms = fmt.Sprintf("%d", mm.ActivePerIter[i])
			}
			t.Add(fmt.Sprintf("%d", i), bs, ms)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// FigWavefrontImbalance produces F-R3: the distribution of per-wavefront
// work in the baseline candidate kernels — the paper's intra-wavefront
// imbalance evidence.
func FigWavefrontImbalance(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "F3",
		Title:  "Intra-wavefront load imbalance (baseline candidate kernels)",
		Note:   "per-wavefront cycles; max/mean >> 1 means a few hub wavefronts dominate",
		Header: []string{"graph", "wavefronts", "mean", "p-max", "CV", "max/mean", "gini"},
	}
	for _, d := range Datasets() {
		g := d.Build(cfg.Scale)
		res, err := gpucolor.Baseline(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		s := metrics.SummarizeInt64(res.WavefrontWork)
		t.Add(d.Name,
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%.0f", s.Mean),
			fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%.2f", s.CV),
			fmt.Sprintf("%.1f", s.MaxOverMean),
			fmt.Sprintf("%.2f", s.Gini),
		)
	}
	return []*Table{t}, nil
}

// FigUtilization produces F-R4: SIMD lane occupancy and memory coalescing
// behaviour of the baseline per graph.
func FigUtilization(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "F4",
		Title:  "SIMD utilization and memory behaviour (baseline)",
		Note:   "util = busy lane slots / issued lane slots; txn/access = coalescing quality (1/16 is perfect)",
		Header: []string{"graph", "SIMD util", "mem accesses", "transactions", "txn/access", "atomics"},
	}
	for _, d := range Datasets() {
		g := d.Build(cfg.Scale)
		res, err := gpucolor.Baseline(device(coarseWG, simt.Static), g, gpucolor.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		t.Add(d.Name,
			fmt.Sprintf("%.3f", res.SIMDUtilization()),
			fmt.Sprintf("%d", res.MemAccesses),
			fmt.Sprintf("%d", res.MemTransactions),
			fmt.Sprintf("%.3f", float64(res.MemTransactions)/float64(res.MemAccesses)),
			fmt.Sprintf("%d", res.Atomics),
		)
	}
	return []*Table{t}, nil
}
