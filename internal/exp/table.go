package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a monospace-rendered result table: the textual equivalent of one
// of the paper's tables or figure series.
type Table struct {
	ID     string // experiment id, e.g. "F7"
	Title  string
	Note   string // one-line reading aid printed under the title
	Header []string
	Rows   [][]string
}

// Add appends one row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   (%s)\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				sb.WriteString(pad(c, widths[i], i > 0))
			} else {
				sb.WriteString(c)
			}
		}
		return sb.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// pad right-aligns numeric-ish columns (every column but the first) and
// left-aligns labels.
func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

// String renders the table to a string (for tests and logs).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Fprint(&sb)
	return sb.String()
}

// WriteCSV emits the table as CSV for downstream plotting: a comment line
// with the id and title, the header row, then the data rows.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
