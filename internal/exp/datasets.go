// Package exp is the experiment harness: it defines the dataset registry
// (Table R1) and one runner per reconstructed figure (F-R1..F-R9), each
// producing the table/series the paper's evaluation reports. See DESIGN.md
// for the per-experiment index and EXPERIMENTS.md for recorded results.
package exp

import (
	"math"

	"gcolor/internal/gen"
	"gcolor/internal/graph"
)

// Scale selects dataset sizes: Small keeps unit tests fast; Full is the
// benchmark scale used for the recorded experiments.
type Scale int

const (
	// Small datasets run the whole suite in seconds (for go test).
	Small Scale = iota
	// Full datasets are the experiment scale reported in EXPERIMENTS.md.
	Full
)

// Dataset is a named synthetic workload standing in for one of the paper's
// input graphs (see the substitution table in DESIGN.md).
type Dataset struct {
	Name  string
	Kind  string // structural class: scale-free, power-law, uniform, mesh, road, small-world
	Build func(s Scale) *graph.Graph
}

// Datasets returns the registry in presentation order. Builds are
// deterministic (fixed seeds).
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "rmat",
			Kind: "scale-free",
			Build: func(s Scale) *graph.Graph {
				if s == Small {
					return gen.RMAT(10, 16, gen.Graph500, 1)
				}
				return gen.RMAT(14, 16, gen.Graph500, 1)
			},
		},
		{
			Name: "powerlaw",
			Kind: "power-law",
			Build: func(s Scale) *graph.Graph {
				if s == Small {
					return gen.BarabasiAlbert(1024, 8, 2)
				}
				return gen.BarabasiAlbert(16384, 8, 2)
			},
		},
		{
			Name: "random",
			Kind: "uniform",
			Build: func(s Scale) *graph.Graph {
				if s == Small {
					return gen.GNM(1024, 12*1024, 3)
				}
				return gen.GNM(16384, 12*16384, 3)
			},
		},
		{
			Name: "grid2d",
			Kind: "mesh",
			Build: func(s Scale) *graph.Graph {
				if s == Small {
					return gen.Grid2D(32, 32)
				}
				return gen.Grid2D(128, 128)
			},
		},
		{
			Name: "grid3d",
			Kind: "mesh",
			Build: func(s Scale) *graph.Graph {
				if s == Small {
					return gen.Grid3D(10, 10, 10)
				}
				return gen.Grid3D(25, 25, 25)
			},
		},
		{
			Name: "road",
			Kind: "road",
			Build: func(s Scale) *graph.Graph {
				n := 16384
				if s == Small {
					n = 1024
				}
				// Radius for an expected average degree of ~10.
				r := math.Sqrt(10 / (math.Pi * float64(n)))
				return gen.RandomGeometric(n, r, 4)
			},
		},
		{
			Name: "smallworld",
			Kind: "small-world",
			Build: func(s Scale) *graph.Graph {
				if s == Small {
					return gen.WattsStrogatz(1024, 12, 0.05, 5)
				}
				return gen.WattsStrogatz(16384, 12, 0.05, 5)
			},
		},
	}
}

// DatasetByName looks a dataset up; ok is false if the name is unknown.
func DatasetByName(name string) (Dataset, bool) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}
