package serve

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// EpochHeader carries the coordinator's fencing epoch on every
// coordinator→worker call. Workers ratchet a high-water mark and refuse
// calls from older epochs, so a deposed primary that is merely partitioned
// (not dead) cannot keep dispatching after the standby took over.
const EpochHeader = "X-GC-Epoch"

// EpochGuard is a worker's monotonic view of the highest coordinator
// epoch it has served. The zero value accepts any epoch; it only rejects
// once a higher epoch has been observed. Safe for concurrent use.
type EpochGuard struct {
	hw atomic.Uint64
}

// Observe ratchets the guard to epoch and reports whether the call is
// current: false means epoch is strictly below the high-water mark and the
// caller is a fenced, stale coordinator. Epoch 0 (no header / pre-epoch
// coordinator) is always accepted and never ratchets.
func (g *EpochGuard) Observe(epoch uint64) bool {
	if epoch == 0 {
		return true
	}
	for {
		cur := g.hw.Load()
		if epoch < cur {
			return false
		}
		if epoch == cur || g.hw.CompareAndSwap(cur, epoch) {
			return true
		}
	}
}

// Current returns the high-water epoch.
func (g *EpochGuard) Current() uint64 { return g.hw.Load() }

// ParseEpoch parses an EpochHeader value. Empty means "no epoch" (0, ok).
func ParseEpoch(h string) (uint64, error) {
	if h == "" {
		return 0, nil
	}
	e, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s header %q", EpochHeader, h)
	}
	return e, nil
}
