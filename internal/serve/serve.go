// Package serve is the concurrent graph-coloring service: the layer that
// turns the single-request resilient driver (gpucolor.ColorContext) into a
// daemon that serves many callers from a fixed pool of simulated devices.
//
// The paper's theme — scheduling irregular work onto compute units without
// letting one hot spot starve the rest — recurs here one level up. The
// pieces, in request order:
//
//   - result cache: completed colorings are kept in an LRU keyed by the
//     graph's content fingerprint plus the policy knobs that affect the
//     coloring; a hit answers without touching queue or devices.
//   - coalescing: duplicate in-flight requests (same key) attach to the
//     execution already running instead of enqueueing again.
//   - admission control: a bounded priority queue rejects work outright
//     when full (ErrQueueFull) and sheds low-priority work early when
//     occupancy crosses the shed threshold (ErrShedding), so overload
//     degrades by policy rather than by luck.
//   - device pool: N independently configured simt devices, leased to one
//     job at a time; workers dequeue (skipping jobs whose deadline already
//     passed — they never reach a device), lease, run the full resilient
//     ladder, and publish the result to every coalesced waiter.
//   - self-healing (health.go, breaker.go, hedge.go): every job outcome
//     feeds a per-device EWMA health score; leases are weighted by it, a
//     per-device circuit breaker quarantines sick devices and re-admits
//     them through half-open probe jobs, and jobs running past the P99 of
//     recent successes are hedged onto a second healthy device, first
//     result winning.
//   - graceful drain: Drain stops admission, lets queued and in-flight
//     jobs finish (or hands them back at the deadline), and reports a
//     typed summary — the gcolord SIGTERM path.
//
// Server is the in-process API; http.go wraps it for cmd/gcolord.
package serve

import (
	"encoding/json"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/simt"
)

// Priority orders jobs in the admission queue. Higher runs first; within a
// priority level the queue is FIFO.
type Priority int

// Priority levels. Under shed pressure (queue occupancy at or above the
// shed threshold) only PriorityHigh work is admitted.
const (
	PriorityLow    Priority = -1
	PriorityNormal Priority = 0
	PriorityHigh   Priority = 1
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	default:
		return "unknown"
	}
}

// ParsePriority converts a name as printed by String.
func ParsePriority(s string) (Priority, bool) {
	switch s {
	case "low":
		return PriorityLow, true
	case "normal", "":
		return PriorityNormal, true
	case "high":
		return PriorityHigh, true
	}
	return PriorityNormal, false
}

// Request is one coloring job.
type Request struct {
	// Graph is the graph to color. Required.
	Graph *graph.Graph

	// Algorithm selects the GPU coloring algorithm (default AlgBaseline).
	Algorithm gpucolor.Algorithm
	// Seed is the vertex priority seed (0 means 1, as in gpucolor.Options).
	Seed uint32
	// HybridThreshold is the hybrid degree split (0 = device workgroup size).
	HybridThreshold int
	// Fused runs the iterative algorithms with the fused assign+flag
	// kernel: bit-identical colorings in strictly fewer simulated cycles
	// (see gpucolor.Options.Fused).
	Fused bool
	// Policy selects the workgroup scheduling policy on the leased device.
	Policy simt.Policy

	// Priority places the job in the admission queue.
	Priority Priority

	// Shards selects sharded scatter-gather execution: the graph is split
	// into K edge-balanced shards colored in parallel on separate pool
	// devices, then reconciled with the bounded boundary repair loop.
	// 0 means auto (shard when the graph crosses the server's configured
	// size thresholds), 1 forces single-device execution, and K >= 2
	// forces K shards (clamped to the server's MaxShards). Negative values
	// behave like 1.
	Shards int

	// CycleBudget, MaxRetries, NoCPUFallback configure the resilient
	// ladder per job; see gpucolor.ResilientOptions.
	CycleBudget   int64
	MaxRetries    int
	NoCPUFallback bool

	// NoCache bypasses both the result cache and request coalescing:
	// the job always executes on a device.
	NoCache bool

	// RequestID is the per-request correlation ID (the HTTP layer honors
	// an inbound X-Request-ID or generates one). It pairs journal accept
	// and completion records; empty for callers that opt out of both.
	RequestID string
	// IdemKey is the client's Idempotency-Key: retries carrying the same
	// key — including retries across a server restart — are answered from
	// the journal-backed idempotency map instead of recoloring.
	IdemKey string
	// Fingerprint, when non-zero, is the graph's precomputed content
	// fingerprint (graph.Fingerprint). The binary CSR ingest path computes
	// it streaming while decoding the upload and passes it here so Submit
	// does not hash the graph a second time; zero means compute.
	Fingerprint uint64

	// Delta, when set, makes this a delta request: the mutation is applied
	// to the resident version identified by BaseFingerprint and only the
	// affected frontier is recolored (falling back to a full recolor of the
	// successor when the frontier exceeds the budget). Graph must be nil.
	Delta *graph.Delta
	// BaseFingerprint identifies the resident base version a Delta applies
	// to. An unknown base fails with *UnknownBaseError.
	BaseFingerprint uint64
	// Resident pins the result (graph + coloring) in the versioned graph
	// store so later delta requests can use it as a base. Delta requests
	// are implicitly resident: every successor extends the chain.
	Resident bool
	// Wire is the request's own wire form (ColorRequest JSON). A request
	// carrying it is replayable: the server journals its acceptance and
	// can rebuild and re-run it after a crash. Requests without Wire are
	// served normally but cannot be replayed.
	Wire json.RawMessage
}

// policyKey folds every request knob that can change the *coloring* (not
// just the simulated statistics) into the cache/coalescing key. Device
// geometry is deliberately excluded: a verified proper coloring of the
// fingerprinted graph is valid regardless of which pool device produced it.
func (r *Request) policyKey() uint64 {
	k := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		k ^= v
		k *= 0x100000001b3
	}
	mix(uint64(r.Algorithm))
	mix(uint64(r.Seed))
	// Mix the threshold as the kernels will see it: two raw values that
	// normalize to the same effective threshold produce the same coloring
	// and must share a key, and two that normalize differently (e.g. 5 vs
	// 2^32+5, which a bare uint32 truncation would conflate) must not.
	mix(uint64(gpucolor.NormalizeHybridThreshold(r.HybridThreshold)))
	// Fused is deliberately excluded: fused and unfused runs produce
	// bit-identical colorings, so their results are interchangeable in the
	// cache and coalescable with each other.
	return k
}

// Response is the outcome of a served request.
type Response struct {
	// Fingerprint identifies the graph content (graph.Fingerprint).
	Fingerprint uint64
	// Colors is the verified proper coloring; NumColors the count used.
	Colors    []int32
	NumColors int

	// Cycles and Iterations are the simulated-device evidence of the run
	// that produced the coloring (zero for RecoveryCPU and for cache hits
	// whose producing run degraded to the CPU).
	Cycles     int64
	Iterations int

	// Recovery, Attempts, Repaired echo the resilient driver's Outcome.
	Recovery gpucolor.RecoveryLevel
	Attempts int
	Repaired int

	// Cached reports a result-cache hit (no queue, no device).
	// Coalesced reports that this request attached to another request's
	// in-flight execution.
	Cached    bool
	Coalesced bool
	// IdempotentReplay reports that the request's Idempotency-Key matched
	// a previously journaled completion: the stored result was returned
	// without re-execution (possibly across a server restart).
	IdempotentReplay bool
	// RequestID echoes the request's correlation ID.
	RequestID string
	// Hedged reports that the job ran long enough to be speculatively
	// re-dispatched to a second device (whichever attempt won, exactly one
	// result was returned and the loser was canceled).
	Hedged bool

	// Batched reports that the job ran as one member of a block-diagonal
	// batch: BatchSize compatible small graphs fused into a single kernel
	// launch on one device. Colors are bit-identical to a solo run of this
	// graph with the same seed; Cycles, Iterations, and Exec are the whole
	// batch's (the members shared one launch, so per-member device cost is
	// not separable).
	Batched   bool
	BatchSize int

	// Delta reports that the request was served through the incremental
	// engine: FrontierSize is the number of vertices whose neighbourhood
	// the mutation changed, and DeltaFallback reports that the successor
	// was recolored from scratch (frontier over budget) rather than
	// frontier-repaired. Vertices and Edges describe the successor graph —
	// delta callers have no Graph of their own to measure.
	Delta         bool
	FrontierSize  int
	DeltaFallback bool
	Vertices      int
	Edges         int

	// Shards is the number of shards the job ran as (1 for single-device
	// execution). The remaining Shard* fields are zero unless Shards > 1:
	// ShardConflicts counts the cut edges that were monochromatic after
	// the merge barrier, ShardRepairRounds the boundary repair rounds run,
	// and ShardRecolored the vertices recolored to reconcile the shards.
	Shards            int
	ShardConflicts    int
	ShardRepairRounds int
	ShardRecolored    int

	// Device is the pool index of the device that ran the job (-1 for
	// cache hits and sharded runs, which span several devices).
	Device int
	// Wait is the time the job spent queued; Exec the device execution
	// time. Both zero for cache hits.
	Wait time.Duration
	Exec time.Duration
}
