package serve

import (
	"time"
)

// This file is the exported face of the self-healing machinery
// (health.go, breaker.go) for layers above the device pool. The cluster
// coordinator (internal/cluster) scores and quarantines whole worker
// nodes with exactly the mechanism the pool applies to devices — a worker
// is just a bigger device — so the EWMA health tracker and the circuit
// breaker state machine are re-exported here as thin wrappers instead of
// being re-implemented one package up.

// BreakerConfig tunes an exported circuit breaker. Zero values take the
// same defaults as SelfHealConfig: FailureThreshold 5, OpenBelow 0.25,
// Cooldown 2s, MaxCooldown 8x, ProbeSuccesses 3.
type BreakerConfig struct {
	// FailureThreshold trips closed -> open after this many consecutive
	// failures regardless of score.
	FailureThreshold int
	// OpenBelow trips closed -> open when the member's health score falls
	// below it.
	OpenBelow float64
	// Cooldown is the quarantine time before the breaker goes half-open;
	// repeated probe failures double it up to MaxCooldown.
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// ProbeSuccesses is the number of consecutive clean probes a half-open
	// member needs for re-admission.
	ProbeSuccesses int
}

// Breaker is the per-member circuit breaker: the same
// closed -> open -> half-open state machine the device pool runs (see
// breaker.go for the transition rules), exported for the cluster layer.
// All methods are safe for concurrent use.
type Breaker struct{ b *breaker }

// NewBreaker builds a breaker with the wall clock.
func NewBreaker(cfg BreakerConfig) *Breaker { return NewBreakerAt(cfg, nil) }

// NewBreakerAt is NewBreaker with an injectable clock for tests.
func NewBreakerAt(cfg BreakerConfig, now func() time.Time) *Breaker {
	return &Breaker{b: newBreaker(breakerConfig{
		failureThreshold: cfg.FailureThreshold,
		openBelow:        cfg.OpenBelow,
		cooldown:         cfg.Cooldown,
		maxCooldown:      cfg.MaxCooldown,
		probeSuccesses:   cfg.ProbeSuccesses,
	}, now)}
}

// State returns the current state, applying the time-based
// open -> half-open transition lazily.
func (br *Breaker) State() BreakerState { return br.b.State() }

// Allow reports whether the member may take a regular (non-probe) job.
func (br *Breaker) Allow() bool { return br.b.allowNormal() }

// TryProbe reserves the single probe slot of a half-open member. The
// reservation is released by RecordProbe or ReleaseProbe.
func (br *Breaker) TryProbe() bool { return br.b.tryProbe() }

// ReleaseProbe frees the probe slot without judging the member.
func (br *Breaker) ReleaseProbe() { br.b.releaseProbe() }

// Record folds one normal job outcome into the breaker; score is the
// member's post-observation health score. It reports whether the outcome
// tripped the breaker open.
func (br *Breaker) Record(good bool, score float64) (tripped bool) {
	return br.b.record(good, score) == breakerTripped
}

// RecordProbe folds one probe outcome into a half-open breaker and
// reports the transition it caused: re-opened (tripped) or re-admitted.
func (br *Breaker) RecordProbe(good bool) (tripped, readmitted bool) {
	switch br.b.recordProbe(good) {
	case breakerTripped:
		return true, false
	case breakerReadmitted:
		return false, true
	}
	return false, false
}

// FleetHealth is the exported per-member EWMA health tracker: one score
// in [0, 1] per member plus a shared recent-latency ring from which the
// fleet-median latency penalty is derived (see health.go). Unlike the
// pool's fixed-size fleet, cluster membership grows at runtime, so
// members are added with AddMember. All methods are safe for concurrent
// use.
type FleetHealth struct{ h *fleetHealth }

// NewFleetHealth builds a tracker for n initial members (all scored 1.0).
// alpha is the EWMA weight of the newest observation (<= 0 means the 0.2
// default); slack the multiples of the fleet-median latency before a
// success's reward is cut (< 1 means the default 4).
func NewFleetHealth(n int, alpha, slack float64) *FleetHealth {
	return &FleetHealth{h: newFleetHealth(n, alpha, slack)}
}

// AddMember appends one member at full health and returns its index.
func (f *FleetHealth) AddMember() int { return f.h.add() }

// Len returns the number of tracked members.
func (f *FleetHealth) Len() int { return f.h.len() }

// Observe folds one finished job into member idx's score and returns the
// updated value; exec == 0 skips the latency signal.
func (f *FleetHealth) Observe(idx int, reward float64, exec time.Duration) float64 {
	return f.h.observe(idx, reward, exec)
}

// Score returns member idx's current health score.
func (f *FleetHealth) Score(idx int) float64 { return f.h.score(idx) }

// Boost raises member idx's score to at least floor (the probation reset
// applied on breaker re-admission).
func (f *FleetHealth) Boost(idx int, floor float64) { f.h.boost(idx, floor) }
