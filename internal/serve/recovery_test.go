package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcolor/internal/journal"
)

func openTestJournal(t *testing.T, dir string) (*journal.Journal, *journal.Recovery) {
	t.Helper()
	j, rec, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncNone})
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	return j, rec
}

func postColorHeaders(t *testing.T, ts *httptest.Server, body ColorRequest, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/color", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestWarmStartAcrossRestart serves requests through a journaled server,
// restarts onto the same journal directory, and checks the second
// generation answers from a warm cache and honors idempotency keys
// without re-executing.
func TestWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	j1, rec1 := openTestJournal(t, dir)
	s1 := NewServer(Config{Devices: 2, Journal: j1, Recovery: rec1})
	ts1 := httptest.NewServer(Handler(s1))

	resp, body := postColorHeaders(t, ts1, ColorRequest{Gen: "grid:6:6"},
		map[string]string{"Idempotency-Key": "retry-me"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gen 1 status %d: %s", resp.StatusCode, body)
	}
	var first ColorResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	resp, body = postColorHeaders(t, ts1, ColorRequest{Gen: "grid:5:5"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gen 1 status %d: %s", resp.StatusCode, body)
	}
	ts1.Close()
	s1.Stop()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: same journal dir; completions must warm the cache and
	// the idempotency map before any request is served.
	j2, rec2 := openTestJournal(t, dir)
	if len(rec2.Completions) < 2 {
		t.Fatalf("recovered %d completions, want >= 2", len(rec2.Completions))
	}
	s2 := NewServer(Config{Devices: 2, Journal: j2, Recovery: rec2})
	defer func() { s2.Stop(); j2.Close() }()
	ts2 := httptest.NewServer(Handler(s2))
	defer ts2.Close()

	ri := s2.RecoveryInfo()
	if !ri.Enabled || ri.WarmedCache < 2 {
		t.Fatalf("recovery info after warm start: %+v", ri)
	}

	resp, body = postColorHeaders(t, ts2, ColorRequest{Gen: "grid:6:6"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gen 2 status %d: %s", resp.StatusCode, body)
	}
	var warm ColorResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatalf("restarted server missed its warm cache: %+v", warm)
	}
	if warm.Fingerprint != first.Fingerprint || warm.NumColors != first.NumColors {
		t.Fatalf("warm result differs: %+v vs %+v", warm, first)
	}

	// A client retry with the pre-crash idempotency key gets the stored
	// answer, flagged as an idempotent replay.
	resp, body = postColorHeaders(t, ts2, ColorRequest{Gen: "grid:6:6"},
		map[string]string{"Idempotency-Key": "retry-me"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idem retry status %d: %s", resp.StatusCode, body)
	}
	var idem ColorResponse
	if err := json.Unmarshal(body, &idem); err != nil {
		t.Fatal(err)
	}
	if !idem.IdempotentReplay {
		t.Fatalf("retry with pre-crash Idempotency-Key not replayed: %+v", idem)
	}
}

// TestReplayPendingAfterCrash fabricates a crash: accept records with no
// completions land in the journal, the "restarted" server must re-run the
// live one, expire the dead one, and settle both so a third generation
// finds nothing pending.
func TestReplayPendingAfterCrash(t *testing.T) {
	dir := t.TempDir()
	j1, _ := openTestJournal(t, dir)
	wire := func(gen string) []byte {
		b, _ := json.Marshal(ColorRequest{Gen: gen})
		return b
	}
	// Live job: no deadline, must replay to completion.
	if err := j1.AppendAccept(journal.AcceptRecord{
		ID: "crash-live", IdemKey: "crash-idem", Wire: wire("grid:7:7"),
		AcceptedUnixMS: time.Now().UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	// Dead job: deadline already passed, must be expired explicitly.
	if err := j1.AppendAccept(journal.AcceptRecord{
		ID: "crash-dead", Wire: wire("grid:8:8"),
		AcceptedUnixMS: time.Now().Add(-time.Minute).UnixMilli(),
		DeadlineUnixMS: time.Now().Add(-30 * time.Second).UnixMilli(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec := openTestJournal(t, dir)
	if len(rec.Pending) != 2 {
		t.Fatalf("recovered %d pending, want 2", len(rec.Pending))
	}
	s := NewServer(Config{Devices: 2, Journal: j2, Recovery: rec})

	select {
	case <-s.RecoveryDone():
	case <-time.After(10 * time.Second):
		t.Fatal("recovery did not settle")
	}
	ri := s.RecoveryInfo()
	if !ri.Done || ri.PendingRecovered != 2 {
		t.Fatalf("recovery info: %+v", ri)
	}
	if ri.ReplayCompleted != 1 || ri.ReplayExpired != 1 || ri.ReplayFailed != 0 {
		t.Fatalf("replay verdict completed=%d expired=%d failed=%d, want 1/1/0",
			ri.ReplayCompleted, ri.ReplayExpired, ri.ReplayFailed)
	}

	// The replayed result is servable: same request hits the cache, and
	// the idempotency key recorded pre-crash answers retries.
	req, g, err := buildRequest(&ColorRequest{Gen: "grid:7:7"}, newSpecCache(4))
	if err != nil || g == nil {
		t.Fatal(err)
	}
	res, err := s.Submit(t.Context(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatalf("replayed job's result not cached: %+v", res)
	}
	req2, _, _ := buildRequest(&ColorRequest{Gen: "grid:7:7"}, newSpecCache(4))
	req2.IdemKey = "crash-idem"
	res2, err := s.Submit(t.Context(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.IdempotentReplay {
		t.Fatalf("pre-crash idem key not replayed: %+v", res2)
	}

	s.Stop()
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 3: every accept must be settled.
	j3, rec3 := openTestJournal(t, dir)
	defer j3.Close()
	if len(rec3.Pending) != 0 {
		t.Fatalf("generation 3 still sees %d pending: %+v", len(rec3.Pending), rec3.Pending)
	}
}

// TestRecoveryzEndpoint checks the /recoveryz surface end to end.
func TestRecoveryzEndpoint(t *testing.T) {
	dir := t.TempDir()
	j, rec := openTestJournal(t, dir)
	s := NewServer(Config{Devices: 1, Journal: j, Recovery: rec})
	defer func() { s.Stop(); j.Close() }()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/recoveryz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ri RecoveryInfo
	if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
		t.Fatal(err)
	}
	if !ri.Enabled || !ri.Done || ri.Journal == nil {
		t.Fatalf("recoveryz: %+v", ri)
	}
}

// TestRequestIDs checks the satellite contract: inbound X-Request-ID
// honored and echoed (header, success body, error body), generated when
// absent, and unsafe inbound IDs replaced.
func TestRequestIDs(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	// Honored and echoed on success.
	resp, body := postColorHeaders(t, ts, ColorRequest{Gen: "grid:4:4"},
		map[string]string{"X-Request-ID": "my-trace-42"})
	if resp.Header.Get("X-Request-ID") != "my-trace-42" {
		t.Fatalf("header not echoed: %q", resp.Header.Get("X-Request-ID"))
	}
	var cr ColorResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.RequestID != "my-trace-42" {
		t.Fatalf("body request_id = %q", cr.RequestID)
	}

	// Present in error bodies.
	resp, body = postColorHeaders(t, ts, ColorRequest{},
		map[string]string{"X-Request-ID": "bad-req-7"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != "bad-req-7" || er.Kind != "bad_request" {
		t.Fatalf("error body: %+v", er)
	}

	// Generated when absent; never empty.
	resp, body = postColorHeaders(t, ts, ColorRequest{Gen: "grid:4:4"}, nil)
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.RequestID == "" || resp.Header.Get("X-Request-ID") != cr.RequestID {
		t.Fatalf("generated id missing or mismatched: body %q header %q",
			cr.RequestID, resp.Header.Get("X-Request-ID"))
	}

	// Unsafe inbound IDs (header injection, control chars) are replaced.
	resp, _ = postColorHeaders(t, ts, ColorRequest{Gen: "grid:4:4"},
		map[string]string{"X-Request-ID": "evil;id"})
	if got := resp.Header.Get("X-Request-ID"); got == "evil;id" || got == "" {
		t.Fatalf("unsafe id echoed verbatim or dropped: %q", got)
	}
}

// TestCacheMetricsExported drives the result LRU past capacity and
// checks size/hit/miss/eviction surface in Stats and /metricsz.
func TestCacheMetricsExported(t *testing.T) {
	s := NewServer(Config{Devices: 1, CacheEntries: 2})
	defer s.Stop()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()

	for _, gen := range []string{"grid:4:4", "grid:4:5", "grid:4:6"} {
		if resp, body := postColor(t, ts, ColorRequest{Gen: gen}); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", gen, resp.StatusCode, body)
		}
	}
	// One hit to light the hit counter.
	if resp, _ := postColor(t, ts, ColorRequest{Gen: "grid:4:6"}); resp.StatusCode != http.StatusOK {
		t.Fatal("hit request failed")
	}

	st := s.Stats()
	if st.CacheEntries != 2 {
		t.Fatalf("CacheEntries = %d, want 2 (capacity)", st.CacheEntries)
	}
	if st.CacheEvictions != 1 {
		t.Fatalf("CacheEvictions = %d, want 1", st.CacheEvictions)
	}
	if st.CacheHits < 1 || st.CacheMisses < 3 {
		t.Fatalf("hits/misses = %d/%d", st.CacheHits, st.CacheMisses)
	}

	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, line := range []string{"cache_entries 2", "cache_evictions_total 1", "cache_hits ", "cache_misses ", "idem_entries "} {
		if !strings.Contains(text, line) {
			t.Errorf("metricsz missing %q", line)
		}
	}
}
