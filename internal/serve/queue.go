package serve

import (
	"container/heap"
	"context"
	"errors"
	"math"
	"sort"
	"sync"
	"time"
)

// Typed admission failures, usable with errors.Is.
var (
	// ErrQueueFull reports that the job queue was at capacity.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrShedding reports that admission control rejected a sub-high
	// priority job because queue occupancy crossed the shed threshold.
	ErrShedding = errors.New("serve: shedding load")
	// ErrClosed reports a submission to a stopped server.
	ErrClosed = errors.New("serve: server closed")
	// ErrDeadlineInQueue reports that a job's deadline expired while it
	// was still queued: it never reached a device. The job's context error
	// is wrapped alongside, so errors.Is matches both this sentinel and
	// context.Canceled / context.DeadlineExceeded.
	ErrDeadlineInQueue = errors.New("serve: deadline expired in queue")
)

// job is one queued execution. It is created by Submit for the first
// requester of a key; coalesced duplicates wait on the flight, not the
// queue.
type job struct {
	ctx       context.Context
	req       *Request
	fp        uint64
	key       cacheKey
	shards    int  // effective shard count resolved at admission (>= 1)
	journaled bool // an accept record was journaled; completion must be too
	enqueued  time.Time
	seq       uint64
	fl        *flight
}

// jobQueue is a bounded priority queue: higher Priority first, FIFO within
// a level (heap ordered by (-priority, seq)). Admission control lives at
// push: a full queue returns ErrQueueFull, and occupancy at or above
// shedAt admits only PriorityHigh, returning ErrShedding otherwise.
// Dequeue is deadline-aware — pop discards jobs whose context has already
// expired so they never reach a device; the discard is reported through the
// expired callback so the server can fail their waiters.
type jobQueue struct {
	mu       sync.Mutex
	items    jobHeap
	cap      int
	shedAt   int // occupancy (items) at which sub-high work is shed
	seq      uint64
	closed   bool
	nonEmpty chan struct{} // capacity 1; signaled on push and close
}

// defaultShedFraction is the queue occupancy fraction at which sub-high
// work is shed when the caller supplies no usable fraction.
const defaultShedFraction = 0.75

func newJobQueue(capacity int, shedFraction float64) *jobQueue {
	if capacity < 1 {
		capacity = 1
	}
	// Normalize the fraction before sizing the threshold: NaN and negative
	// values are nonsense, not a request to disable shedding, so they fall
	// back to the default rather than silently admitting sub-high work all
	// the way to ErrQueueFull. Only fraction >= 1 — the documented opt-out
	// — disables early shedding.
	if math.IsNaN(shedFraction) || shedFraction <= 0 {
		shedFraction = defaultShedFraction
	}
	shedAt := capacity
	if shedFraction < 1 {
		shedAt = int(shedFraction * float64(capacity))
		if shedAt < 1 {
			shedAt = 1
		}
	}
	return &jobQueue{
		cap:      capacity,
		shedAt:   shedAt,
		nonEmpty: make(chan struct{}, 1),
	}
}

// push admits j or returns a typed admission error.
func (q *jobQueue) push(j *job) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	n := len(q.items)
	if n >= q.cap {
		q.mu.Unlock()
		return ErrQueueFull
	}
	if n >= q.shedAt && j.req.Priority < PriorityHigh {
		q.mu.Unlock()
		return ErrShedding
	}
	j.seq = q.seq
	q.seq++
	j.enqueued = time.Now()
	heap.Push(&q.items, j)
	q.mu.Unlock()
	q.signal()
	return nil
}

func (q *jobQueue) signal() {
	select {
	case q.nonEmpty <- struct{}{}:
	default:
	}
}

// pop blocks until a live job is available, the queue is closed and
// drained (ErrClosed), or ctx is done. Jobs whose own context expired
// while queued are handed to expired and never returned.
//
// Exactly-once audit: a job leaves the queue exactly one way — returned
// from one worker's pop (heap.Pop under q.mu is exclusive), diverted to
// the expired callback by that same pop, or drained by flush (which also
// pops under q.mu). The expired callback runs outside the lock, but by
// then the job is no longer in q.items, so no second worker and no flush
// can see it again; flight.complete's once-guard is defense in depth, not
// the mechanism.
func (q *jobQueue) pop(ctx context.Context, expired func(*job)) (*job, error) {
	for {
		q.mu.Lock()
		for len(q.items) > 0 {
			j := heap.Pop(&q.items).(*job)
			if j.ctx.Err() != nil {
				q.mu.Unlock()
				expired(j)
				q.mu.Lock()
				continue
			}
			// More items may remain; wake the next worker.
			if len(q.items) > 0 {
				q.signal()
			}
			q.mu.Unlock()
			return j, nil
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			// Cascade the wake-up: close() sends a single token, but any
			// number of workers may be blocked below.
			q.signal()
			return nil, ErrClosed
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-q.nonEmpty:
		}
	}
}

// gather removes queued jobs for batching. Candidates are examined in
// dequeue order (priority descending, FIFO within a level) so batching
// never reorders work relative to a plain pop; accept is called under the
// queue lock for each live candidate and returns true to claim it (the
// callback tracks its own batch caps). Jobs whose context already expired
// are removed and returned in expired regardless of accept — they would
// be discarded at their own pop anyway — and the caller must fail them
// exactly as pop's expired callback would. Every returned job has left
// the queue: the caller owns its completion (the exactly-once audit in
// pop's comment gains this third exit).
func (q *jobQueue) gather(accept func(*job) bool) (got, expired []*job) {
	q.mu.Lock()
	if len(q.items) == 0 {
		q.mu.Unlock()
		return nil, nil
	}
	order := make([]*job, len(q.items))
	copy(order, q.items)
	sort.Slice(order, func(i, j int) bool {
		if order[i].req.Priority != order[j].req.Priority {
			return order[i].req.Priority > order[j].req.Priority
		}
		return order[i].seq < order[j].seq
	})
	taken := make(map[*job]bool)
	for _, j := range order {
		if j.ctx.Err() != nil {
			expired = append(expired, j)
			taken[j] = true
			continue
		}
		if accept(j) {
			got = append(got, j)
			taken[j] = true
		}
	}
	if len(taken) > 0 {
		kept := q.items[:0]
		for _, j := range q.items {
			if !taken[j] {
				kept = append(kept, j)
			}
		}
		for i := len(kept); i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = kept
		heap.Init(&q.items)
	}
	q.mu.Unlock()
	return got, expired
}

// close marks the queue closed; queued jobs continue to drain, new pushes
// fail with ErrClosed, and blocked pops return ErrClosed once drained.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.signal()
}

// flush removes every queued job and hands each to fn, returning the
// count. Used by the drain-timeout path to hand still-queued work back to
// its callers; the queue must already be closed so it cannot refill — an
// open-queue flush would race concurrent pushes and strand jobs, so it
// panics rather than corrupting the exactly-once audit.
func (q *jobQueue) flush(fn func(*job)) int {
	q.mu.Lock()
	if !q.closed {
		q.mu.Unlock()
		panic("serve: jobQueue.flush called before close")
	}
	items := q.items
	q.items = nil
	q.mu.Unlock()
	for _, j := range items {
		fn(j)
	}
	q.signal()
	return len(items)
}

// depth returns the current occupancy.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// jobHeap implements container/heap: max priority first, then FIFO.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority > h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
