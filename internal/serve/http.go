package serve

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
)

// ColorRequest is the JSON body of POST /color. Exactly one of Graph
// (inline edge-list text), Gen (generator spec, see ParseGraphSpec), or
// GraphCSRB64 (base64 binary CSR frame, see graph.EncodeWireCSR) must be
// set.
type ColorRequest struct {
	Graph string `json:"graph,omitempty"` // edge-list text, one "u v" per line
	Gen   string `json:"gen,omitempty"`   // generator spec, e.g. "rmat:10:8:1"
	// GraphCSRB64 is a base64-encoded binary CSR wire frame. It is how a
	// binary upload round-trips through JSON contexts: the journal replay
	// envelope for ContentTypeBinaryCSR requests, and cluster shard
	// dispatch (no edge-list re-parse on the worker).
	GraphCSRB64 string `json:"graph_csr_b64,omitempty"`

	Alg       string `json:"alg,omitempty"`       // algorithm name (default baseline)
	Seed      uint32 `json:"seed,omitempty"`      // vertex priority seed
	Threshold int    `json:"threshold,omitempty"` // hybrid degree threshold
	Fused     bool   `json:"fused,omitempty"`     // fused assign+flag kernels
	Policy    string `json:"policy,omitempty"`    // static | roundrobin | stealing
	Priority  string `json:"priority,omitempty"`  // low | normal | high

	CycleBudget   int64 `json:"cycle_budget,omitempty"`
	MaxRetries    int   `json:"max_retries,omitempty"`
	NoCPUFallback bool  `json:"no_cpu_fallback,omitempty"`
	NoCache       bool  `json:"no_cache,omitempty"`

	// Shards selects sharded scatter-gather execution: 0 auto, 1 pinned
	// single-device, >= 2 pinned K shards (see serve.Request.Shards).
	Shards int `json:"shards,omitempty"`

	TimeoutMS     int64 `json:"timeout_ms,omitempty"`     // per-request deadline
	IncludeColors bool  `json:"include_colors,omitempty"` // echo the full coloring

	// Resident pins the result (graph + coloring) in the versioned graph
	// store, making it usable as the base of later delta requests.
	Resident bool `json:"resident,omitempty"`

	// Delta mode: BaseFingerprint (the fingerprint string a previous
	// response returned) selects the resident base version; the request
	// must then carry none of graph/gen/graph_csr_b64 — the mutation lists
	// below ARE the graph. AddVertices appends that many isolated vertices
	// (ids n..n+k-1); AddEdges/RemoveEdges are undirected endpoint pairs,
	// applied removals-first (an edge in both lists survives). The reply is
	// a coloring of the successor graph under its own fingerprint.
	BaseFingerprint string     `json:"base_fingerprint,omitempty"`
	AddVertices     int        `json:"add_vertices,omitempty"`
	AddEdges        [][2]int32 `json:"add_edges,omitempty"`
	RemoveEdges     [][2]int32 `json:"remove_edges,omitempty"`
}

// ColorResponse is the JSON body of a successful POST /color.
type ColorResponse struct {
	Fingerprint string  `json:"fingerprint"`
	NumColors   int     `json:"num_colors"`
	Colors      []int32 `json:"colors,omitempty"`
	Vertices    int     `json:"vertices"`
	Edges       int     `json:"edges"`

	Cycles     int64  `json:"cycles"`
	Iterations int    `json:"iterations"`
	Recovery   string `json:"recovery"`
	Attempts   int    `json:"attempts"`
	Repaired   int    `json:"repaired,omitempty"`

	Cached    bool  `json:"cached"`
	Coalesced bool  `json:"coalesced"`
	Hedged    bool  `json:"hedged,omitempty"`
	Batched   bool  `json:"batched,omitempty"`
	BatchSize int   `json:"batch_size,omitempty"`
	Device    int   `json:"device"`
	WaitUS    int64 `json:"wait_us"`
	ExecUS    int64 `json:"exec_us"`

	Shards            int `json:"shards,omitempty"`
	ShardConflicts    int `json:"shard_conflicts,omitempty"`
	ShardRepairRounds int `json:"shard_repair_rounds,omitempty"`
	ShardRecolored    int `json:"shard_recolored,omitempty"`

	// Delta evidence: Delta reports the request was served through the
	// incremental engine, FrontierSize how many vertices the mutation
	// touched, DeltaFallback that the successor was recolored from scratch
	// (frontier over budget), and BaseFingerprint echoes the base version.
	Delta           bool   `json:"delta,omitempty"`
	FrontierSize    int    `json:"frontier_size,omitempty"`
	DeltaFallback   bool   `json:"delta_fallback,omitempty"`
	BaseFingerprint string `json:"base_fingerprint,omitempty"`

	// RequestID is the per-request correlation ID (inbound X-Request-ID,
	// or server-generated), also echoed in the X-Request-ID response
	// header. IdempotentReplay reports that an Idempotency-Key matched a
	// journaled completion and the stored result was returned.
	RequestID        string `json:"request_id"`
	IdempotentReplay bool   `json:"idempotent_replay,omitempty"`

	// Cluster evidence, set only by a coordinator (internal/cluster):
	// Worker is the node that executed a routed job ("" for locally
	// answered and scattered jobs), Scattered reports the job ran as a
	// cross-worker scatter-gather, and Redispatched counts shard or route
	// attempts that were re-dispatched to another worker after a failure.
	Worker       string `json:"worker,omitempty"`
	Scattered    bool   `json:"scattered,omitempty"`
	Redispatched int    `json:"redispatched,omitempty"`
}

// errorResponse is the JSON body of any non-2xx /color reply.
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"` // bad_request | bad_delta | unknown_base | too_large | queue_full | shedding | deadline | draining | closed | failed
	// RequestID correlates the failure with server logs, journal records,
	// and crash-drill traces.
	RequestID string `json:"request_id,omitempty"`
}

// requestID returns the request's correlation ID: an inbound
// X-Request-ID (sanitized — header-safe characters only, bounded length)
// or a freshly generated one.
func requestID(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-ID")); id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-fallback"
	}
	return "req-" + hex.EncodeToString(b[:])
}

// RequestIDFor is the exported form of requestID for layers that front
// this package over their own HTTP surface (the cluster coordinator must
// mint and sanitize IDs by exactly the same rules so IDs survive the
// coordinator -> worker hop into the worker's journal).
func RequestIDFor(r *http.Request) string { return requestID(r) }

// SanitizeRequestID is the exported form of sanitizeRequestID.
func SanitizeRequestID(id string) string { return sanitizeRequestID(id) }

// sanitizeRequestID keeps a client-supplied ID only when it is safe to
// echo into headers and journal records: printable ASCII, no separators
// that could split a header, at most 128 bytes.
func sanitizeRequestID(id string) string {
	if len(id) > 128 {
		id = id[:128]
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == ',' || c == ';' {
			return ""
		}
	}
	return id
}

// specCache memoizes generator-spec graphs so a hot spec ("rmat:12:8:1"
// requested by every gcload worker) is generated once, not per request.
// Inline-uploaded graphs are not memoized — their parse cost is the upload
// cost.
type specCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	byKey map[string]*list.Element
}

type specEntry struct {
	key string
	g   *graph.Graph
}

func newSpecCache(capacity int) *specCache {
	return &specCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *specCache) get(spec string) (*graph.Graph, error) {
	c.mu.Lock()
	if el, ok := c.byKey[spec]; ok {
		c.order.MoveToFront(el)
		g := el.Value.(*specEntry).g
		c.mu.Unlock()
		return g, nil
	}
	c.mu.Unlock()
	// Generate outside the lock; duplicate generation on a race is
	// harmless (same deterministic graph) and rarer than lock contention.
	g, err := ParseGraphSpec(spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if _, ok := c.byKey[spec]; !ok {
		c.byKey[spec] = c.order.PushFront(&specEntry{key: spec, g: g})
		for c.order.Len() > c.cap {
			el := c.order.Back()
			c.order.Remove(el)
			delete(c.byKey, el.Value.(*specEntry).key)
		}
	}
	c.mu.Unlock()
	return g, nil
}

// DefaultMaxBodyBytes caps a POST /color body when HandlerConfig leaves
// MaxBodyBytes zero: large enough for any seed-dataset edge list, small
// enough that one rogue upload cannot OOM the daemon before graph-level
// caps run.
const DefaultMaxBodyBytes = 64 << 20

// HandlerConfig tunes the HTTP surface.
type HandlerConfig struct {
	// MaxBodyBytes caps the POST /color request body; an oversized upload
	// is refused with 413 and a typed "too_large" error body. 0 means
	// DefaultMaxBodyBytes; negative disables the cap.
	MaxBodyBytes int64

	// Epoch, when set, fences coordinator calls: a request whose
	// X-GC-Epoch header is below the guard's high-water mark is refused
	// with 409 and kind "stale_epoch" — the sender is a deposed primary
	// that must stop dispatching. Requests without the header pass (direct
	// clients are not fenced).
	Epoch *EpochGuard
}

// Handler wraps a Server with the gcolord HTTP API under the default
// handler configuration:
//
//	POST /color     submit a coloring job (ColorRequest -> ColorResponse)
//	GET  /healthz   liveness + pool size
//	GET  /metricsz  flat text metrics (counters, gauges, histograms,
//	                derived cache_hit_rate / device_utilization, per-device
//	                health and breaker state)
//	GET  /recoveryz journal recovery status (replay stats, warm-start
//	                counts, pending-job replay progress, journal counters)
//	GET  /drainz    drain status (draining flag, queue depth, per-device
//	                breaker states)
//	POST /drainz    request a graceful drain; the daemon observes
//	                Server.DrainRequested and shuts down as if SIGTERMed
func Handler(s *Server) http.Handler { return HandlerWith(s, HandlerConfig{}) }

// HandlerWith is Handler with an explicit configuration.
func HandlerWith(s *Server, hc HandlerConfig) http.Handler {
	if hc.MaxBodyBytes == 0 {
		hc.MaxBodyBytes = DefaultMaxBodyBytes
	}
	mux := http.NewServeMux()
	specs := newSpecCache(64)
	mux.HandleFunc("POST /color", func(w http.ResponseWriter, r *http.Request) {
		handleColor(s, specs, hc, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// queue_depth and exec_p50_us ride on the health probe so a
		// coordinator's heartbeat doubles as the backpressure signal: the
		// fleet's Retry-After is computed from what the workers report here.
		var epoch uint64
		if hc.Epoch != nil {
			epoch = hc.Epoch.Current()
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","devices":%d,"uptime_ms":%d,"queue_depth":%d,"exec_p50_us":%d,"epoch":%d}`+"\n",
			s.pool.Size(), s.Uptime().Milliseconds(),
			s.queue.depth(), s.reg.Histogram("exec_us").Quantile(0.50), epoch)
	})
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		var sb strings.Builder
		s.Metrics().WriteText(&sb)
		fmt.Fprintf(&sb, "cache_hit_rate %.4f\n", st.CacheHitRate)
		fmt.Fprintf(&sb, "device_utilization %.4f\n", st.Utilization)
		fmt.Fprintf(&sb, "uptime_ms %d\n", st.Uptime.Milliseconds())
		ar := s.pool.ArenaStats()
		fmt.Fprintf(&sb, "arena_allocs %d\n", ar.Allocs)
		fmt.Fprintf(&sb, "arena_reuses %d\n", ar.Reuses)
		fmt.Fprintf(&sb, "arena_releases %d\n", ar.Releases)
		fmt.Fprintf(&sb, "arena_pooled_bufs %d\n", ar.PooledBufs)
		fmt.Fprintf(&sb, "arena_pooled_bytes %d\n", ar.PooledBytes)
		// Self-healing: fleet counters, then one health/breaker pair per
		// device (breaker state encoded 0=closed 1=open 2=half-open so the
		// text stays machine-parsable).
		fmt.Fprintf(&sb, "quarantines_total %d\n", st.Quarantines)
		fmt.Fprintf(&sb, "readmitted_total %d\n", st.Readmitted)
		fmt.Fprintf(&sb, "probes_total %d\n", st.Probes)
		fmt.Fprintf(&sb, "probe_failures_total %d\n", st.ProbeFailures)
		fmt.Fprintf(&sb, "quarantined %d\n", st.Quarantined)
		fmt.Fprintf(&sb, "draining %d\n", boolToInt(st.Draining))
		// Result cache and idempotency map residency (the hit/miss/evict
		// counters live in the registry lines above).
		fmt.Fprintf(&sb, "cache_entries %d\n", st.CacheEntries)
		fmt.Fprintf(&sb, "cache_evictions_total %d\n", st.CacheEvictions)
		fmt.Fprintf(&sb, "idem_entries %d\n", st.IdemEntries)
		// Incremental engine residency (the delta_* counters and the
		// delta_frontier_size histogram live in the registry lines above).
		fmt.Fprintf(&sb, "versions_resident %d\n", st.VersionsResident)
		// Durability: journal counters plus the startup recovery verdict.
		ri := s.RecoveryInfo()
		fmt.Fprintf(&sb, "recovery_enabled %d\n", boolToInt(ri.Enabled))
		fmt.Fprintf(&sb, "recovery_done %d\n", boolToInt(ri.Done))
		fmt.Fprintf(&sb, "recovery_warmed_cache %d\n", ri.WarmedCache)
		fmt.Fprintf(&sb, "recovery_warmed_idem %d\n", ri.WarmedIdem)
		fmt.Fprintf(&sb, "recovery_warmed_versions %d\n", ri.WarmedVersions)
		fmt.Fprintf(&sb, "recovery_pending_recovered %d\n", ri.PendingRecovered)
		fmt.Fprintf(&sb, "recovery_torn_tails %d\n", ri.Replay.TornTails)
		fmt.Fprintf(&sb, "recovery_corrupt_segments %d\n", ri.Replay.CorruptSegments)
		if ri.Journal != nil {
			fmt.Fprintf(&sb, "journal_appends_total %d\n", ri.Journal.Appends)
			fmt.Fprintf(&sb, "journal_append_bytes_total %d\n", ri.Journal.AppendBytes)
			fmt.Fprintf(&sb, "journal_fsyncs_total %d\n", ri.Journal.Fsyncs)
			fmt.Fprintf(&sb, "journal_rotations_total %d\n", ri.Journal.Rotations)
			fmt.Fprintf(&sb, "journal_compactions_total %d\n", ri.Journal.Compactions)
			fmt.Fprintf(&sb, "journal_live_segments %d\n", ri.Journal.LiveSegments)
		}
		for i, d := range st.PerDevice {
			fmt.Fprintf(&sb, "device_health_%d %.4f\n", i, d.Health)
			fmt.Fprintf(&sb, "device_breaker_%d %d\n", i, int(s.pool.BreakerState(i)))
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, sb.String())
	})
	drainStatus := func(w http.ResponseWriter) {
		st := s.Stats()
		states := make([]string, len(st.PerDevice))
		for i, d := range st.PerDevice {
			states[i] = d.Breaker
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"draining":    st.Draining,
			"queue_depth": st.QueueDepth,
			"quarantined": st.Quarantined,
			"breakers":    states,
		})
	}
	mux.HandleFunc("GET /recoveryz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.RecoveryInfo())
	})
	mux.HandleFunc("GET /drainz", func(w http.ResponseWriter, r *http.Request) {
		drainStatus(w)
	})
	mux.HandleFunc("POST /drainz", func(w http.ResponseWriter, r *http.Request) {
		s.RequestDrain()
		w.WriteHeader(http.StatusAccepted)
		drainStatus(w)
	})
	return mux
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func handleColor(s *Server, specs *specCache, hc HandlerConfig, w http.ResponseWriter, r *http.Request) {
	rid := requestID(r)
	w.Header().Set("X-Request-ID", rid)
	if hc.Epoch != nil {
		epoch, err := ParseEpoch(r.Header.Get(EpochHeader))
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), rid)
			return
		}
		if !hc.Epoch.Observe(epoch) {
			// 409, not 5xx: retrying the same call from the same stale
			// coordinator can never succeed, and the coordinator-side error
			// judge must treat this as "stop", not "fail over".
			writeErr(w, http.StatusConflict, "stale_epoch",
				fmt.Sprintf("epoch %d is stale (worker has seen %d)", epoch, hc.Epoch.Current()), rid)
			return
		}
	}
	var cr ColorRequest
	body := r.Body
	if hc.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, hc.MaxBodyBytes)
	}
	// The body is kept in its wire form: it becomes the journal accept
	// record's replay payload.
	raw, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit), rid)
			return
		}
		writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("read: %v", err), rid)
		return
	}
	var req *Request
	var g *graph.Graph
	if isBinaryCSR(r.Header.Get("Content-Type")) {
		// Binary CSR fast path: the body IS the graph — no JSON envelope,
		// no edge-list text, no intermediate representation. The frame
		// decodes into arena-style contiguous buffers with the content
		// fingerprint computed streaming during the same pass, and the
		// coloring options ride in the query string.
		s.reg.Counter("wire_binary_requests_total").Inc()
		if err := colorRequestFromQuery(&cr, r.URL.Query()); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), rid)
			return
		}
		if graph.IsWireDelta(raw) {
			// Binary delta frame (GCSD): same media type, sniffed by magic.
			// The body carries the base fingerprint and the edit lists; no
			// graph decodes here at all.
			baseFp, d, derr := graph.DecodeWireDelta(raw)
			if derr != nil {
				writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("delta frame: %v", derr), rid)
				return
			}
			req, err = requestFromOptions(&cr, nil, 0)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), rid)
				return
			}
			req.BaseFingerprint = baseFp
			req.Delta = d
			if s.jrnl != nil {
				env := cr
				env.BaseFingerprint = graph.FingerprintString(baseFp)
				env.AddVertices = d.AddVertices
				env.AddEdges = d.AddEdges
				env.RemoveEdges = d.RemoveEdges
				if wire, jerr := json.Marshal(&env); jerr == nil {
					req.Wire = wire
				}
			}
		} else {
			var fp uint64
			g, fp, err = graph.DecodeWireCSR(raw)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("csr frame: %v", err), rid)
				return
			}
			req, err = requestFromOptions(&cr, g, fp)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), rid)
				return
			}
			if s.jrnl != nil {
				// Journal replay rebuilds requests from JSON, so a binary
				// request journals a synthesized envelope with the frame
				// base64-wrapped. The cost is paid only when journaling is on.
				env := cr
				env.GraphCSRB64 = base64.StdEncoding.EncodeToString(raw)
				if wire, jerr := json.Marshal(&env); jerr == nil {
					req.Wire = wire
				}
			}
		}
	} else {
		if err := json.Unmarshal(raw, &cr); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("decode: %v", err), rid)
			return
		}
		req, g, err = buildRequest(&cr, specs)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err.Error(), rid)
			return
		}
		req.Wire = raw
	}
	req.RequestID = rid
	req.IdemKey = sanitizeRequestID(r.Header.Get("Idempotency-Key"))
	ctx := r.Context()
	if cr.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(cr.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := s.Submit(ctx, req)
	if err != nil {
		status, kind := classifyErr(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.RetryAfterHint(kind)))
		}
		writeErr(w, status, kind, err.Error(), rid)
		return
	}
	// Delta requests have no graph of their own; the successor's size
	// comes back in the response.
	vertices, edges := res.Vertices, res.Edges
	if g != nil {
		vertices, edges = g.NumVertices(), g.NumEdges()
	}
	out := ColorResponse{
		Fingerprint: graph.FingerprintString(res.Fingerprint),
		NumColors:   res.NumColors,
		Vertices:    vertices,
		Edges:       edges,
		Cycles:      res.Cycles,
		Iterations:  res.Iterations,
		Recovery:    res.Recovery.String(),
		Attempts:    res.Attempts,
		Repaired:    res.Repaired,
		Cached:      res.Cached,
		Coalesced:   res.Coalesced,
		Hedged:      res.Hedged,
		Batched:     res.Batched,
		BatchSize:   res.BatchSize,
		Device:      res.Device,
		WaitUS:      res.Wait.Microseconds(),
		ExecUS:      res.Exec.Microseconds(),

		RequestID:        rid,
		IdempotentReplay: res.IdempotentReplay,
	}
	if res.Shards > 1 {
		out.Shards = res.Shards
		out.ShardConflicts = res.ShardConflicts
		out.ShardRepairRounds = res.ShardRepairRounds
		out.ShardRecolored = res.ShardRecolored
	}
	if res.Delta {
		out.Delta = true
		out.FrontierSize = res.FrontierSize
		out.DeltaFallback = res.DeltaFallback
	}
	if req.BaseFingerprint != 0 {
		out.BaseFingerprint = graph.FingerprintString(req.BaseFingerprint)
	}
	if cr.IncludeColors {
		out.Colors = res.Colors
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(&out); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// ContentTypeBinaryCSR is the POST /color media type for the binary CSR
// wire format (graph.EncodeWireCSR frames). Bodies of this type carry the
// graph alone; coloring options ride in the query string (same names as
// the ColorRequest JSON fields).
const ContentTypeBinaryCSR = "application/x-gcolor-csr"

// isBinaryCSR matches the binary CSR media type, ignoring parameters.
func isBinaryCSR(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == ContentTypeBinaryCSR
}

// colorRequestFromQuery fills cr's option fields from URL query
// parameters — the option channel for binary-body uploads, which have no
// JSON envelope to carry them. Parameter names match the JSON field names.
func colorRequestFromQuery(cr *ColorRequest, q url.Values) error {
	cr.Alg = q.Get("alg")
	cr.Policy = q.Get("policy")
	cr.Priority = q.Get("priority")
	for _, p := range []struct {
		name string
		dst  any
	}{
		{"seed", &cr.Seed},
		{"threshold", &cr.Threshold},
		{"fused", &cr.Fused},
		{"cycle_budget", &cr.CycleBudget},
		{"max_retries", &cr.MaxRetries},
		{"no_cpu_fallback", &cr.NoCPUFallback},
		{"no_cache", &cr.NoCache},
		{"shards", &cr.Shards},
		{"timeout_ms", &cr.TimeoutMS},
		{"include_colors", &cr.IncludeColors},
		{"resident", &cr.Resident},
	} {
		v := q.Get(p.name)
		if v == "" {
			continue
		}
		var err error
		switch dst := p.dst.(type) {
		case *uint32:
			var u uint64
			u, err = strconv.ParseUint(v, 10, 32)
			*dst = uint32(u)
		case *int:
			*dst, err = strconv.Atoi(v)
		case *int64:
			*dst, err = strconv.ParseInt(v, 10, 64)
		case *bool:
			*dst, err = strconv.ParseBool(v)
		}
		if err != nil {
			return fmt.Errorf("query param %s: %v", p.name, err)
		}
	}
	return nil
}

// buildRequest converts the wire request to a serve.Request. Delta
// requests (base_fingerprint set) return a nil graph: the server resolves
// the base version and builds the successor itself.
func buildRequest(cr *ColorRequest, specs *specCache) (*Request, *graph.Graph, error) {
	var g *graph.Graph
	var fp uint64
	var err error
	set := 0
	for _, s := range []string{cr.Gen, cr.Graph, cr.GraphCSRB64} {
		if s != "" {
			set++
		}
	}
	if cr.BaseFingerprint != "" {
		if set != 0 {
			return nil, nil, errors.New("a delta request (base_fingerprint) must not also carry graph, gen, or graph_csr_b64")
		}
		baseFp, err := ParseFingerprint(cr.BaseFingerprint)
		if err != nil {
			return nil, nil, err
		}
		req, err := requestFromOptions(cr, nil, 0)
		if err != nil {
			return nil, nil, err
		}
		req.BaseFingerprint = baseFp
		req.Delta = &graph.Delta{
			AddVertices: cr.AddVertices,
			AddEdges:    cr.AddEdges,
			RemoveEdges: cr.RemoveEdges,
		}
		return req, nil, nil
	}
	if set != 1 {
		return nil, nil, errors.New("set exactly one of graph, gen, and graph_csr_b64")
	}
	switch {
	case cr.Gen != "":
		g, err = specs.get(cr.Gen)
	case cr.Graph != "":
		g, err = graph.ReadEdgeList(strings.NewReader(cr.Graph))
	default:
		var frame []byte
		frame, err = base64.StdEncoding.DecodeString(cr.GraphCSRB64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph_csr_b64: %v", err)
		}
		g, fp, err = graph.DecodeWireCSR(frame)
	}
	if err != nil {
		return nil, nil, err
	}
	req, err := requestFromOptions(cr, g, fp)
	if err != nil {
		return nil, nil, err
	}
	return req, g, nil
}

// requestFromOptions builds a serve.Request from a resolved graph and the
// wire request's option fields. fp may be the frame-streaming fingerprint
// (binary ingest) or zero (Submit computes it).
func requestFromOptions(cr *ColorRequest, g *graph.Graph, fp uint64) (*Request, error) {
	alg := gpucolor.AlgBaseline
	var err error
	if cr.Alg != "" {
		alg, err = gpucolor.ParseAlgorithm(cr.Alg)
		if err != nil {
			return nil, err
		}
	}
	pol, err := ParseSchedPolicy(cr.Policy)
	if err != nil {
		return nil, err
	}
	prio, ok := ParsePriority(cr.Priority)
	if !ok {
		return nil, fmt.Errorf("unknown priority %q", cr.Priority)
	}
	return &Request{
		Graph:           g,
		Fingerprint:     fp,
		Resident:        cr.Resident,
		Algorithm:       alg,
		Seed:            cr.Seed,
		HybridThreshold: cr.Threshold,
		Fused:           cr.Fused,
		Policy:          pol,
		Priority:        prio,
		CycleBudget:     cr.CycleBudget,
		MaxRetries:      cr.MaxRetries,
		NoCPUFallback:   cr.NoCPUFallback,
		NoCache:         cr.NoCache,
		Shards:          cr.Shards,
	}, nil
}

// classifyErr maps serve/gpucolor failures to HTTP status + error kind.
func classifyErr(err error) (int, string) {
	var ube *UnknownBaseError
	var bde *BadDeltaError
	switch {
	case errors.As(err, &ube):
		// 404: the base version is not resident here. The client's recovery
		// is to re-upload the full graph as resident and resume the stream.
		return http.StatusNotFound, "unknown_base"
	case errors.As(err, &bde):
		return http.StatusBadRequest, "bad_delta"
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, ErrShedding):
		return http.StatusTooManyRequests, "shedding"
	case errors.Is(err, ErrDeadlineInQueue):
		// Expired while queued: to the caller it is the same deadline
		// failure as expiring mid-execution. Checked before ErrClosed
		// because the wrapped context error never matches it, and before
		// isDeadline only for clarity — both land on the same reply.
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, ErrDraining):
		// Before ErrClosed: ErrDraining wraps it, and "retry elsewhere,
		// this instance is going away" is the more useful signal.
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	case isDeadline(err):
		return http.StatusGatewayTimeout, "deadline"
	default:
		return http.StatusInternalServerError, "failed"
	}
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func writeErr(w http.ResponseWriter, status int, kind, msg, rid string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg, Kind: kind, RequestID: rid})
}
