package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"sort"
	"sync"
	"time"

	"gcolor/internal/color"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/journal"
)

// This file is the server's side of the durability contract with
// internal/journal: journaling hooks on the accept/complete paths, the
// snapshot compaction source, and the startup recovery driver that
// warm-starts caches and re-submits crash-interrupted work.

// journalAccept journals an admitted replayable job before it is pushed,
// and mirrors the accept into pendAccepts for the compaction source. A
// journal write failure is counted, not fatal: the server keeps serving,
// it just cannot promise replay for this job.
func (s *Server) journalAccept(ctx context.Context, req *Request, key cacheKey) {
	rec := journal.AcceptRecord{
		ID:             req.RequestID,
		IdemKey:        req.IdemKey,
		Fingerprint:    key.fp,
		PolicyKey:      key.policy,
		Priority:       int(req.Priority),
		AcceptedUnixMS: time.Now().UnixMilli(),
		Resident:       req.Resident,
		Wire:           req.Wire,
	}
	if dl, ok := ctx.Deadline(); ok {
		rec.DeadlineUnixMS = dl.UnixMilli()
	}
	s.pendMu.Lock()
	s.pendAccepts[rec.ID] = rec
	s.pendMu.Unlock()
	if err := s.jrnl.AppendAccept(rec); err != nil {
		s.reg.Counter("journal_append_errors_total").Inc()
	}
}

// journalFinish journals a completion record for a journaled job and
// clears its pendAccepts mirror. Every disposition is journaled — replay
// must know the job is settled even when the caller saw an error.
func (s *Server) journalFinish(j *job, res *Response, err error) {
	s.pendMu.Lock()
	delete(s.pendAccepts, j.req.RequestID)
	s.pendMu.Unlock()
	rec := completionRecord(j.req.RequestID, j.req.IdemKey, j.key, res, err, j.req.NoCache)
	if aerr := s.jrnl.AppendComplete(rec); aerr != nil {
		s.reg.Counter("journal_append_errors_total").Inc()
	}
}

// completionRecord builds the journal completion for one finished job.
func completionRecord(id, idem string, key cacheKey, res *Response, err error, noCache bool) journal.CompleteRecord {
	rec := journal.CompleteRecord{
		ID:              id,
		IdemKey:         idem,
		Fingerprint:     key.fp,
		PolicyKey:       key.policy,
		Disposition:     dispositionFor(err),
		NoCache:         noCache,
		CompletedUnixMS: time.Now().UnixMilli(),
	}
	if err != nil {
		_, rec.ErrKind = classifyErr(err)
		return rec
	}
	rec.NumColors = res.NumColors
	rec.ColorsB64 = journal.EncodeColors(res.Colors)
	rec.Cycles = res.Cycles
	rec.Iterations = res.Iterations
	rec.Recovery = int(res.Recovery)
	rec.Shards = res.Shards
	return rec
}

// dispositionFor maps a completion error to its journal disposition.
func dispositionFor(err error) string {
	switch {
	case err == nil:
		return journal.DispOK
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShedding):
		return journal.DispRejected
	case errors.Is(err, ErrClosed):
		// Covers ErrDraining (which wraps it): the caller was handed the
		// job back with a typed error and owns the retry.
		return journal.DispHandedOff
	case errors.Is(err, ErrDeadlineInQueue), isDeadline(err):
		return journal.DispExpired
	default:
		return journal.DispFailed
	}
}

// snapshotSource is the journal's compaction source: the live state worth
// carrying across a compaction — still-pending accepts plus the result
// cache and idempotency map contents as synthetic completion records
// (least recently used first, so replaying them in order reproduces LRU
// recency).
func (s *Server) snapshotSource() ([]journal.AcceptRecord, []journal.CompleteRecord) {
	s.pendMu.Lock()
	pending := make([]journal.AcceptRecord, 0, len(s.pendAccepts))
	for _, a := range s.pendAccepts {
		pending = append(pending, a)
	}
	s.pendMu.Unlock()
	sort.Slice(pending, func(i, k int) bool { return pending[i].AcceptedUnixMS < pending[k].AcceptedUnixMS })

	var comps []journal.CompleteRecord
	now := time.Now().UnixMilli()
	for _, e := range s.cache.export() {
		rec := completionRecord("", "", e.key, e.res, nil, false)
		rec.CompletedUnixMS = now
		comps = append(comps, rec)
	}
	for _, e := range s.idem.export() {
		if e.res == nil || e.key == "" {
			continue
		}
		rec := completionRecord("", e.key, cacheKey{fp: e.res.Fingerprint, policy: e.pk}, e.res, nil, e.noCache)
		rec.CompletedUnixMS = now
		comps = append(comps, rec)
	}

	// Resident graph versions ride along as self-contained synthetic
	// accept+completion pairs: the accept's wire form carries the full
	// graph (not the delta that produced it), so each version rebuilds on
	// replay without needing its predecessors. Least recently used first,
	// so re-pinning them in order reproduces the store's recency.
	for _, v := range s.versions.export() {
		env := ColorRequest{
			GraphCSRB64: base64.StdEncoding.EncodeToString(graph.EncodeWireCSR(v.g)),
			Resident:    true,
			NoCache:     true,
		}
		wire, err := json.Marshal(&env)
		if err != nil {
			continue
		}
		id := "ver-" + graph.FingerprintString(v.fp)
		pending = append(pending, journal.AcceptRecord{
			ID:             id,
			Fingerprint:    v.fp,
			AcceptedUnixMS: now,
			Resident:       true,
			Wire:           wire,
		})
		comps = append(comps, journal.CompleteRecord{
			ID:              id,
			Fingerprint:     v.fp,
			Disposition:     journal.DispOK,
			NumColors:       color.NumColors(v.colors),
			ColorsB64:       journal.EncodeColors(v.colors),
			NoCache:         true,
			CompletedUnixMS: now,
		})
	}
	return pending, comps
}

// applyRecovery warm-starts the caches from replayed completions
// (synchronously — NewServer returns with the cache warm) and re-submits
// pending accepts in the background. With no recovery state it just
// closes RecoveryDone.
func (s *Server) applyRecovery(rec *journal.Recovery) {
	if rec == nil {
		close(s.recDone)
		return
	}
	s.recEnabled = true
	s.recReplay = rec.Stats
	for i := range rec.Completions {
		c := &rec.Completions[i]
		colors, err := journal.DecodeColors(c.ColorsB64)
		if err != nil {
			continue
		}
		res := &Response{
			Fingerprint: c.Fingerprint,
			Colors:      colors,
			NumColors:   c.NumColors,
			Cycles:      c.Cycles,
			Iterations:  c.Iterations,
			Recovery:    gpucolor.RecoveryLevel(c.Recovery),
			Shards:      c.Shards,
			Device:      -1,
		}
		if !c.NoCache {
			s.cache.put(cacheKey{fp: c.Fingerprint, policy: c.PolicyKey}, res)
			s.warmCache++
		}
		if c.IdemKey != "" {
			s.idem.put(c.IdemKey, res, c.NoCache, c.PolicyKey)
			s.warmIdem++
		}
	}
	// Rebuild the versioned graph store from the settled resident pairs, in
	// journal order: snapshot-exported versions are self-contained (full
	// graph in the accept's wire form), and a live delta record replays
	// against the base version the records before it already rebuilt.
	specs := newSpecCache(8)
	for i := range rec.Settled {
		if s.warmVersion(&rec.Settled[i], specs) {
			s.warmVersions++
		}
	}

	s.recPending = int64(len(rec.Pending))
	pending := rec.Pending
	go func() {
		defer close(s.recDone)
		sem := make(chan struct{}, s.cfg.ReplayParallelism)
		var wg sync.WaitGroup
		for i := range pending {
			wg.Add(1)
			sem <- struct{}{}
			go func(a *journal.AcceptRecord) {
				defer func() { <-sem; wg.Done() }()
				s.replayOne(a)
			}(&pending[i])
		}
		wg.Wait()
	}()
}

// warmVersion rebuilds one resident graph version from its settled
// accept+completion pair: the coloring comes from the completion, the
// graph from the accept's wire form — a full graph spec for snapshot
// exports and resident uploads, or a delta applied to an already-rebuilt
// base for live records. Failures (undecodable wire, evicted base, length
// mismatch) skip the version; a later delta against it will report
// unknown base and the client re-uploads.
func (s *Server) warmVersion(sv *journal.SettledVersion, specs *specCache) bool {
	colors, err := journal.DecodeColors(sv.Complete.ColorsB64)
	if err != nil || len(colors) == 0 {
		return false
	}
	var cr ColorRequest
	if len(sv.Accept.Wire) == 0 || json.Unmarshal(sv.Accept.Wire, &cr) != nil {
		return false
	}
	var g *graph.Graph
	if cr.BaseFingerprint != "" {
		baseFp, err := ParseFingerprint(cr.BaseFingerprint)
		if err != nil {
			return false
		}
		base, ok := s.versions.get(baseFp)
		if !ok {
			return false
		}
		ng, fp, _, err := graph.ApplyDelta(base.g, &graph.Delta{
			AddVertices: cr.AddVertices,
			AddEdges:    cr.AddEdges,
			RemoveEdges: cr.RemoveEdges,
		})
		if err != nil || fp != sv.Complete.Fingerprint {
			return false
		}
		g = ng
	} else {
		_, rg, err := buildRequest(&cr, specs)
		if err != nil || rg == nil {
			return false
		}
		g = rg
	}
	if g.NumVertices() != len(colors) {
		return false
	}
	s.versions.put(sv.Complete.Fingerprint, g, colors)
	return true
}

// replayOne re-executes one crash-interrupted accepted job. Every path
// journals a completion for the record's ID — possibly a duplicate of the
// one finishJob wrote, which replay dedupes — so the accept can never
// stay pending across another restart.
func (s *Server) replayOne(a *journal.AcceptRecord) {
	key := cacheKey{fp: a.Fingerprint, policy: a.PolicyKey}
	settle := func(res *Response, err error, noCache bool) {
		rec := completionRecord(a.ID, a.IdemKey, key, res, err, noCache)
		if aerr := s.jrnl.AppendComplete(rec); aerr != nil {
			s.reg.Counter("journal_append_errors_total").Inc()
		}
	}
	if a.DeadlineUnixMS > 0 && time.Now().UnixMilli() >= a.DeadlineUnixMS {
		s.reg.Counter("replay_expired_total").Inc()
		rec := completionRecord(a.ID, a.IdemKey, key, nil, context.DeadlineExceeded, true)
		rec.Disposition = journal.DispReplayExpired
		if aerr := s.jrnl.AppendComplete(rec); aerr != nil {
			s.reg.Counter("journal_append_errors_total").Inc()
		}
		return
	}
	var cr ColorRequest
	if len(a.Wire) == 0 || json.Unmarshal(a.Wire, &cr) != nil {
		s.reg.Counter("replay_failed_total").Inc()
		settle(nil, errors.New("serve: replay: unreplayable accept record"), true)
		return
	}
	req, _, err := buildRequest(&cr, newSpecCache(8))
	if err != nil {
		s.reg.Counter("replay_failed_total").Inc()
		settle(nil, err, true)
		return
	}
	req.RequestID = a.ID
	req.IdemKey = a.IdemKey
	req.Wire = a.Wire
	ctx := s.baseCtx
	if a.DeadlineUnixMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.UnixMilli(a.DeadlineUnixMS))
		defer cancel()
	}
	s.reg.Counter("replay_enqueued_total").Inc()
	res, err := s.Submit(ctx, req)
	switch {
	case err == nil:
		s.reg.Counter("replay_completed_total").Inc()
		// The executed path journaled its own completion; cache, idem, and
		// coalesced answers did not. Settle unconditionally — duplicates
		// are idempotent under replay — so the accept is always paired.
		settle(res, nil, cr.NoCache)
	case errors.Is(err, ErrDeadlineInQueue), isDeadline(err):
		s.reg.Counter("replay_expired_total").Inc()
		settle(nil, err, cr.NoCache)
	default:
		s.reg.Counter("replay_failed_total").Inc()
		settle(nil, err, cr.NoCache)
	}
}

// RecoveryDone is closed once startup replay has settled every pending
// job recovered from the journal (immediately when there was nothing to
// recover).
func (s *Server) RecoveryDone() <-chan struct{} { return s.recDone }

// RecoveryInfo is the programmatic form of GET /recoveryz: what the
// journal replay found, what was warmed, and how the pending re-submits
// went.
type RecoveryInfo struct {
	// Enabled reports that the server was built with journal recovery.
	Enabled bool `json:"enabled"`
	// Done reports that every recovered pending job has settled.
	Done bool `json:"done"`
	// Replay describes the journal scan (segments, torn tails, corrupt
	// segments, record counts).
	Replay journal.ReplayStats `json:"replay"`
	// WarmedCache / WarmedIdem count completion records loaded into the
	// result cache and idempotency map at startup; WarmedVersions the
	// resident graph versions rebuilt from settled journal pairs.
	WarmedCache    int64 `json:"warmed_cache"`
	WarmedIdem     int64 `json:"warmed_idem"`
	WarmedVersions int64 `json:"warmed_versions"`
	// PendingRecovered is the number of accepted-but-unfinished jobs the
	// journal held; the Replay* counters say how their re-submission went
	// (completed + expired + failed = settled).
	PendingRecovered int64 `json:"pending_recovered"`
	ReplayEnqueued   int64 `json:"replay_enqueued"`
	ReplayCompleted  int64 `json:"replay_completed"`
	ReplayExpired    int64 `json:"replay_expired"`
	ReplayFailed     int64 `json:"replay_failed"`
	// Journal is the live journal's counters (nil when journaling is off).
	Journal *journal.Stats `json:"journal,omitempty"`
}

// RecoveryInfo snapshots the recovery state.
func (s *Server) RecoveryInfo() RecoveryInfo {
	info := RecoveryInfo{
		Enabled:          s.recEnabled,
		Replay:           s.recReplay,
		WarmedCache:      s.warmCache,
		WarmedIdem:       s.warmIdem,
		WarmedVersions:   s.warmVersions,
		PendingRecovered: s.recPending,
		ReplayEnqueued:   s.reg.Counter("replay_enqueued_total").Value(),
		ReplayCompleted:  s.reg.Counter("replay_completed_total").Value(),
		ReplayExpired:    s.reg.Counter("replay_expired_total").Value(),
		ReplayFailed:     s.reg.Counter("replay_failed_total").Value(),
	}
	select {
	case <-s.recDone:
		info.Done = true
	default:
	}
	if s.jrnl != nil {
		st := s.jrnl.Stats()
		info.Journal = &st
	}
	return info
}
