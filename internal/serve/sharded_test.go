package serve

import (
	"context"
	"errors"
	"testing"

	"gcolor/internal/color"
	"gcolor/internal/gen"
	"gcolor/internal/gpucolor"
)

// TestShardedSubmit pins the scatter-gather path end to end: a pinned
// Shards=K request fans out, merges, repairs, and returns one verified
// coloring with the shard evidence filled in.
func TestShardedSubmit(t *testing.T) {
	s := NewServer(Config{Devices: 4, Device: DeviceConfig{Workers: 1}})
	defer s.Stop()
	g := gen.RMAT(11, 8, gen.Graph500, 1)
	res, err := s.Submit(context.Background(), &Request{
		Graph:     g,
		Algorithm: gpucolor.AlgBaseline,
		Shards:    4,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := color.Verify(g, res.Colors); err != nil {
		t.Fatalf("sharded coloring invalid: %v", err)
	}
	if res.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", res.Shards)
	}
	if res.Device != -1 {
		t.Fatalf("Device = %d, want -1 for a multi-device job", res.Device)
	}
	if res.NumColors != color.NumColors(res.Colors) {
		t.Fatalf("NumColors %d does not match coloring (%d)", res.NumColors, color.NumColors(res.Colors))
	}
	if st := s.Stats(); st.ShardJobs != 1 {
		t.Fatalf("ShardJobs = %d, want 1", st.ShardJobs)
	}
}

// TestShardedAutoThreshold pins the auto knob: a graph at or above the
// configured vertex threshold shards without the request asking, a small
// one stays single-device, and Shards=1 pins single-device regardless.
func TestShardedAutoThreshold(t *testing.T) {
	s := NewServer(Config{
		Devices: 2,
		Device:  DeviceConfig{Workers: 1},
		Shard:   ShardConfig{AutoVertices: 1024, AutoEdges: -1},
	})
	defer s.Stop()

	big := gen.RMAT(10, 8, gen.Graph500, 1) // 1024 vertices: at threshold
	res, err := s.Submit(context.Background(), &Request{Graph: big})
	if err != nil {
		t.Fatalf("auto submit: %v", err)
	}
	if res.Shards != 2 {
		t.Fatalf("auto Shards = %d, want 2", res.Shards)
	}

	small := smallGraph() // 64 vertices: below threshold
	res, err = s.Submit(context.Background(), &Request{Graph: small})
	if err != nil {
		t.Fatalf("small submit: %v", err)
	}
	if res.Shards != 1 {
		t.Fatalf("small-graph Shards = %d, want 1", res.Shards)
	}

	res, err = s.Submit(context.Background(), &Request{Graph: big, Shards: 1, Seed: 9})
	if err != nil {
		t.Fatalf("pinned submit: %v", err)
	}
	if res.Shards != 1 {
		t.Fatalf("pinned Shards = %d, want 1", res.Shards)
	}
}

// TestShardedCacheKeyed pins that shard count is part of the cache key —
// a single-device result must not answer a pinned K-shard request — and
// that a repeated sharded request is served from cache.
func TestShardedCacheKeyed(t *testing.T) {
	s := NewServer(Config{Devices: 2, Device: DeviceConfig{Workers: 1}})
	defer s.Stop()
	g := gen.RMAT(10, 8, gen.Graph500, 1)
	ctx := context.Background()

	single, err := s.Submit(ctx, &Request{Graph: g, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := s.Submit(ctx, &Request{Graph: g, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Cached {
		t.Fatal("sharded request answered from the single-device cache entry")
	}
	if single.Shards != 1 || sharded.Shards != 2 {
		t.Fatalf("Shards = %d/%d, want 1/2", single.Shards, sharded.Shards)
	}
	again, err := s.Submit(ctx, &Request{Graph: g, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeated sharded request missed the cache")
	}
	if again.Shards != 2 {
		t.Fatalf("cached Shards = %d, want 2", again.Shards)
	}
}

// TestShardedUnderChaos faults one pool device and asserts a sharded job
// still completes with a verified coloring: the per-shard resilient
// ladder and the shard-level re-dispatch absorb the damage.
func TestShardedUnderChaos(t *testing.T) {
	s := NewServer(Config{DeviceConfigs: []DeviceConfig{
		{Workers: 1},
		{Workers: 1, FaultRate: 0.05, FaultSeed: 7},
		{Workers: 1},
	}})
	defer s.Stop()
	g := gen.RMAT(10, 8, gen.Graph500, 2)
	res, err := s.Submit(context.Background(), &Request{Graph: g, Shards: 3})
	if err != nil {
		t.Fatalf("sharded submit under chaos: %v", err)
	}
	if err := color.Verify(g, res.Colors); err != nil {
		t.Fatalf("coloring under chaos invalid: %v", err)
	}
	if res.Shards != 3 {
		t.Fatalf("Shards = %d, want 3", res.Shards)
	}
}

// TestShardedRetryOnDeviceFailure forces every device attempt to fail
// (cycle budget 1, no ladder retries, no CPU fallback) and asserts the
// shard layer retried on another device before surfacing the typed error.
func TestShardedRetryOnDeviceFailure(t *testing.T) {
	s := NewServer(Config{Devices: 2, Device: DeviceConfig{Workers: 1}})
	defer s.Stop()
	g := gen.RMAT(10, 8, gen.Graph500, 1)
	_, err := s.Submit(context.Background(), &Request{
		Graph:         g,
		Shards:        2,
		CycleBudget:   1,
		MaxRetries:    -1,
		NoCPUFallback: true,
		NoCache:       true,
	})
	if err == nil {
		t.Fatal("expected failure with an impossible cycle budget")
	}
	if !errors.Is(err, gpucolor.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if st := s.Stats(); st.ShardRetries < 1 {
		t.Fatalf("ShardRetries = %d, want >= 1", st.ShardRetries)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", st.Failed)
	}
}

// TestShardedMatchesUnshardedQuality bounds the color-count cost of
// sharding through the serving path.
func TestShardedMatchesUnshardedQuality(t *testing.T) {
	s := NewServer(Config{Devices: 4, Device: DeviceConfig{Workers: 1}})
	defer s.Stop()
	g := gen.RMAT(11, 8, gen.Graph500, 3)
	ctx := context.Background()
	single, err := s.Submit(ctx, &Request{Graph: g, Shards: 1, Algorithm: gpucolor.AlgHybrid})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := s.Submit(ctx, &Request{Graph: g, Shards: 4, Algorithm: gpucolor.AlgHybrid})
	if err != nil {
		t.Fatal(err)
	}
	if limit := single.NumColors*13/10 + 1; sharded.NumColors > limit {
		t.Fatalf("sharded used %d colors vs single-device %d (limit %d)",
			sharded.NumColors, single.NumColors, limit)
	}
}
