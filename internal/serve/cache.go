package serve

import (
	"container/list"
	"sync"
)

// cacheKey identifies a (graph content, coloring policy) pair: the graph
// fingerprint plus the folded request knobs that can change the coloring.
// The effective shard count is part of the policy fold — a K-shard run and
// a single-device run of the same graph produce different (both proper)
// colorings, and callers pinning Shards expect the one they asked for.
type cacheKey struct {
	fp     uint64
	policy uint64
}

func keyOf(req *Request, fp uint64, shards int) cacheKey {
	k := req.policyKey()
	k ^= uint64(uint32(shards))
	k *= 0x100000001b3
	return cacheKey{fp: fp, policy: k}
}

// resultCache is a fixed-capacity LRU of completed responses. Stored
// responses are treated as immutable: lookups return the same *Response to
// every hit, so callers must not mutate the Colors slice.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *Response
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key cacheKey) (*Response, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) put(key cacheKey, res *Response) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight is one in-flight execution that any number of duplicate requests
// wait on. done is closed exactly once, after res/err are set; the once
// guard makes completion idempotent, so the several paths that can end a
// job (worker, queue expiry, drain hand-off, hedged attempts) never race
// a double close.
type flight struct {
	once sync.Once
	done chan struct{}
	res  *Response
	err  error
}

// complete publishes the outcome and releases every waiter. Only the
// first call takes effect.
func (f *flight) complete(res *Response, err error) {
	f.once.Do(func() {
		f.res = res
		f.err = err
		close(f.done)
	})
}
