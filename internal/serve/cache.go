package serve

import (
	"container/list"
	"sync"
)

// cacheKey identifies a (graph content, coloring policy) pair: the graph
// fingerprint plus the folded request knobs that can change the coloring.
// The effective shard count is part of the policy fold — a K-shard run and
// a single-device run of the same graph produce different (both proper)
// colorings, and callers pinning Shards expect the one they asked for.
type cacheKey struct {
	fp     uint64
	policy uint64
}

func keyOf(req *Request, fp uint64, shards int) cacheKey {
	k := req.policyKey()
	k ^= uint64(uint32(shards))
	k *= 0x100000001b3
	return cacheKey{fp: fp, policy: k}
}

// resultCache is a fixed-capacity LRU of completed responses. Stored
// responses are treated as immutable: lookups return the same *Response to
// every hit, so callers must not mutate the Colors slice. Evictions are
// counted (they used to be silent) so /metricsz can report churn.
type resultCache struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recent; values are *cacheEntry
	byKey  map[cacheKey]*list.Element
	evicts int64
}

type cacheEntry struct {
	key cacheKey
	res *Response
}

func newResultCache(capacity int) *resultCache {
	if capacity < 0 {
		capacity = 0
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key cacheKey) (*Response, bool) {
	if c.cap == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put inserts or refreshes key, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) put(key cacheKey, res *Response) {
	if c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*cacheEntry).key)
		c.evicts++
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// evictions returns the lifetime eviction count.
func (c *resultCache) evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicts
}

// export snapshots every entry, least recently used first, so replaying
// the exported list through put reproduces the recency order. Used by
// journal snapshot compaction.
func (c *resultCache) export() []cacheExport {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheExport, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		out = append(out, cacheExport{key: e.key, res: e.res})
	}
	return out
}

// cacheExport is one exported result-cache entry.
type cacheExport struct {
	key cacheKey
	res *Response
}

// idemCache is a fixed-capacity LRU from client Idempotency-Key to the
// completed response that key produced. It is consulted before the result
// cache — even for NoCache requests, since an idempotent retry explicitly
// asks for the stored answer — and is warm-started from journal
// completion records, which is what makes retries safe across restarts.
type idemCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *idemEntry
	byKey map[string]*list.Element
}

type idemEntry struct {
	key     string
	res     *Response
	noCache bool   // the producing request bypassed the result cache
	pk      uint64 // the producing request's policy key (journal snapshots)
}

func newIdemCache(capacity int) *idemCache {
	if capacity < 0 {
		capacity = 0
	}
	return &idemCache{cap: capacity, order: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *idemCache) get(key string) (*Response, bool) {
	if c.cap == 0 || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*idemEntry).res, true
}

func (c *idemCache) put(key string, res *Response, noCache bool, pk uint64) {
	if c.cap == 0 || key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*idemEntry)
		e.res, e.noCache, e.pk = res, noCache, pk
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&idemEntry{key: key, res: res, noCache: noCache, pk: pk})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.byKey, el.Value.(*idemEntry).key)
	}
}

func (c *idemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// export snapshots every entry, least recently used first.
func (c *idemCache) export() []idemEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]idemEntry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*idemEntry))
	}
	return out
}

// flight is one in-flight execution that any number of duplicate requests
// wait on. done is closed exactly once, after res/err are set; the once
// guard makes completion idempotent, so the several paths that can end a
// job (worker, queue expiry, drain hand-off, hedged attempts) never race
// a double close.
type flight struct {
	once sync.Once
	done chan struct{}
	res  *Response
	err  error
}

// complete publishes the outcome and releases every waiter. Only the
// first call takes effect.
func (f *flight) complete(res *Response, err error) {
	f.once.Do(func() {
		f.res = res
		f.err = err
		close(f.done)
	})
}
