package serve

// Retry-After computation for 429/503 replies. The old handler sent a
// hardcoded "1", which under sustained overload synchronizes every
// client's retry into the exact second the queue is still full. The hint
// is now derived from how long the backlog actually takes to drain.

const (
	// retryAfterMin / retryAfterMax clamp the hint: at least a second (the
	// header's resolution), at most 30 so a deep backlog does not tell
	// clients to go away for minutes of queue state that will be stale.
	retryAfterMin = 1
	retryAfterMax = 30
	// retryAfterDrain is the hint while draining or closed: long enough
	// for the replacement process to come up, bounded because the load
	// balancer should have moved the client off this instance anyway.
	retryAfterDrain = 5
	// retryAfterDefaultExecUS stands in for the P50 before any job has
	// completed (50ms): better to overestimate an empty server's drain
	// rate than to stampede a cold one.
	retryAfterDefaultExecUS = 50_000
)

// computeRetryAfter derives the Retry-After seconds for a rejected
// request. kind is the classifyErr kind; queueDepth the jobs currently
// queued, devices the executor count, execP50us the median execution
// time. Pure, so the policy is table-testable.
//
// The estimate is the backlog's drain time: depth × P50 / devices. A
// queue_full rejection waits the whole estimate — the queue must make
// real room. A shedding rejection halves it: shedding starts while
// capacity remains, and only sub-high priority work is turned away, so
// the door reopens sooner. Draining instances return a flat hint — their
// queue will never accept this client again, the wait is for a
// replacement process.
func computeRetryAfter(kind string, queueDepth, devices int, execP50us int64, draining bool) int {
	if draining || kind == "draining" || kind == "closed" {
		return retryAfterDrain
	}
	if devices < 1 {
		devices = 1
	}
	if execP50us <= 0 {
		execP50us = retryAfterDefaultExecUS
	}
	drainUS := int64(queueDepth) * execP50us / int64(devices)
	if kind == "shedding" {
		drainUS /= 2
	}
	secs := int((drainUS + 999_999) / 1_000_000) // ceil to whole seconds
	if secs < retryAfterMin {
		return retryAfterMin
	}
	if secs > retryAfterMax {
		return retryAfterMax
	}
	return secs
}

// ComputeRetryAfter is the exported form of computeRetryAfter, for layers
// that front this package over their own HTTP surface: the cluster
// coordinator computes a fleet-level Retry-After from the queue depths its
// workers report on heartbeats, using exactly this policy so clients see
// one backpressure contract whether they hit a worker or the fleet.
func ComputeRetryAfter(kind string, queueDepth, devices int, execP50us int64, draining bool) int {
	return computeRetryAfter(kind, queueDepth, devices, execP50us, draining)
}

// RetryAfterHint computes the Retry-After seconds a client should wait
// before retrying a request rejected with the given error kind, from the
// server's live queue and execution state.
func (s *Server) RetryAfterHint(kind string) int {
	return computeRetryAfter(kind, s.queue.depth(), s.pool.Size(),
		s.reg.Histogram("exec_us").Quantile(0.50), s.Draining())
}
