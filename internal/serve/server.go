package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
	"gcolor/internal/journal"
	"gcolor/internal/metrics"
	"gcolor/internal/shard"
)

// ErrDraining reports a submission to a server that is draining. It wraps
// ErrClosed, so callers that only distinguish "up" from "going away" keep
// working with errors.Is(err, ErrClosed).
var ErrDraining = fmt.Errorf("serve: draining: %w", ErrClosed)

// SelfHealConfig tunes the self-healing layer: health scoring, circuit
// breakers, and hedged re-dispatch. Zero values take the documented
// defaults; the zero struct is the production configuration.
type SelfHealConfig struct {
	// Disabled turns the whole layer off: uniform lease selection, inert
	// breakers, no hedging — the pre-self-healing server.
	Disabled bool

	// Alpha is the EWMA weight of the newest health observation
	// (default 0.2).
	Alpha float64
	// LatencySlack is how many multiples of the fleet-median execution
	// time a job may take before its reward is cut by latency (default 4).
	LatencySlack float64

	// OpenBelow trips a closed breaker when the device's health score
	// falls below it (default 0.25).
	OpenBelow float64
	// FailureThreshold trips a closed breaker after this many consecutive
	// failed jobs regardless of score (default 5).
	FailureThreshold int
	// Cooldown is the quarantine time before a breaker goes half-open
	// (default 2s); repeated probe failures double it up to MaxCooldown
	// (default 8×Cooldown).
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// ProbeSuccesses is the number of consecutive clean probe jobs a
	// half-open device needs for re-admission (default 3).
	ProbeSuccesses int
	// ProbationScore is the health score a re-admitted device restarts at
	// (default 0.6): high enough not to instantly re-trip on the stale
	// quarantine-era EWMA, low enough to keep its share of load small
	// until it proves itself.
	ProbationScore float64

	// NoHedge disables hedged re-dispatch.
	NoHedge bool
	// HedgeMinSamples is the number of successful executions observed
	// before hedging activates (default 64).
	HedgeMinSamples int
	// HedgeFloor is the minimum hedge threshold (default 2ms), so a fleet
	// of microsecond jobs does not hedge on scheduler noise.
	HedgeFloor time.Duration
	// HedgeMultiple scales the P99 into the hedge threshold (default 1).
	HedgeMultiple float64
}

func (c SelfHealConfig) withDefaults() SelfHealConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.LatencySlack < 1 {
		c.LatencySlack = 4
	}
	if c.OpenBelow <= 0 {
		c.OpenBelow = 0.25
	}
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.MaxCooldown < c.Cooldown {
		c.MaxCooldown = 8 * c.Cooldown
	}
	if c.ProbeSuccesses < 1 {
		c.ProbeSuccesses = 3
	}
	if c.ProbationScore <= 0 || c.ProbationScore > 1 {
		c.ProbationScore = 0.6
	}
	if c.HedgeMinSamples < 1 {
		c.HedgeMinSamples = 64
	}
	if c.HedgeFloor <= 0 {
		c.HedgeFloor = 2 * time.Millisecond
	}
	if c.HedgeMultiple <= 0 {
		c.HedgeMultiple = 1
	}
	return c
}

// ShardConfig tunes sharded scatter-gather execution: one request split
// into K edge-balanced shards colored in parallel on separate pool
// devices, reconciled by the bounded boundary repair loop
// (internal/shard). Zero values take the documented defaults.
type ShardConfig struct {
	// Disabled turns sharding off entirely; Request.Shards is ignored.
	Disabled bool
	// K is the shard count used when a request auto-shards (default: pool
	// size, clamped to MaxShards).
	K int
	// AutoVertices and AutoEdges are the graph-size thresholds at or above
	// which a Shards=0 request auto-shards (defaults 8192 vertices /
	// 262144 edges; negative disables that trigger).
	AutoVertices int
	AutoEdges    int
	// MaxRepairRounds bounds the boundary repair loop (default
	// shard.DefaultRepairRounds); on exhaustion the job degrades to the
	// CPU greedy fallback unless the request set NoCPUFallback.
	MaxRepairRounds int
	// MaxShards caps the per-request shard count (default 16).
	MaxShards int
}

func (c ShardConfig) withDefaults(devices int) ShardConfig {
	if c.MaxShards < 1 {
		c.MaxShards = 16
	}
	if c.K < 1 {
		c.K = devices
	}
	if c.K > c.MaxShards {
		c.K = c.MaxShards
	}
	if c.AutoVertices == 0 {
		c.AutoVertices = 8192
	}
	if c.AutoEdges == 0 {
		c.AutoEdges = 1 << 18
	}
	return c
}

// BatchConfig tunes block-diagonal kernel batching: compatible small
// graphs (below the shard auto thresholds) dequeued together are fused
// into one disjoint-union CSR and colored in a single launch through one
// pooled runner, with per-graph result splitting. Per-member colorings are
// bit-identical to solo runs (gpucolor.PrioritySegments carries each
// member's seed), so batching is invisible except in the evidence fields.
// Zero values take the documented defaults.
type BatchConfig struct {
	// Disabled turns batching off entirely.
	Disabled bool
	// MaxJobs caps the members fused into one launch (default 16; values
	// below 2 disable batching, since a batch of one is a solo run).
	MaxJobs int
	// MaxVertices and MaxEdges cap the union CSR: a member only joins
	// while the running totals stay at or below these (defaults 16384
	// vertices / 262144 arcs). Members above the caps run solo.
	MaxVertices int
	MaxEdges    int
	// Linger is how long a worker holding a single batch-eligible job
	// waits for company before running it solo (default 0: batches form
	// only from jobs already queued at dequeue time — under load the queue
	// has depth and lingering just adds latency).
	Linger time.Duration
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxJobs == 0 {
		c.MaxJobs = 16
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 16384
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = 1 << 18
	}
	if c.Linger < 0 {
		c.Linger = 0
	}
	return c
}

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// Devices is the pool size (default 4). Ignored when DeviceConfigs is
	// set.
	Devices int
	// Device is the config template applied to every pool device.
	Device DeviceConfig
	// DeviceConfigs, when non-empty, builds a heterogeneous pool with one
	// device per entry, overriding Devices/Device.
	DeviceConfigs []DeviceConfig
	// QueueCapacity bounds the admission queue (default 256).
	QueueCapacity int
	// ShedFraction is the queue occupancy fraction at which sub-high
	// priority work is shed (default 0.75; >= 1 disables early shedding).
	ShedFraction float64
	// CacheEntries sizes the result LRU (default 512; negative disables
	// caching).
	CacheEntries int
	// Workers is the number of executor goroutines (default: pool size).
	// More workers than devices lets dequeue/deadline triage overlap with
	// execution; jobs still serialize on device leases.
	Workers int
	// SelfHeal tunes health scoring, circuit breakers, and hedging.
	SelfHeal SelfHealConfig
	// Shard tunes sharded scatter-gather execution.
	Shard ShardConfig
	// Batch tunes block-diagonal kernel batching of small graphs.
	Batch BatchConfig
	// Delta tunes the incremental coloring engine (versioned resident
	// graphs + frontier recolor of mutations).
	Delta DeltaConfig

	// Journal, when set, makes the server crash-safe: every replayable
	// request is journaled before enqueue and every finished job journals
	// a completion record. The server registers itself as the journal's
	// compaction source; the caller owns journal.Close (after Drain).
	Journal *journal.Journal
	// Recovery, when set, is the replayed state from journal.Open: DispOK
	// completions warm-start the result cache and idempotency map
	// synchronously in NewServer, and pending accepts are re-submitted in
	// the background (RecoveryDone closes when the replay settles).
	Recovery *journal.Recovery
	// IdemEntries sizes the Idempotency-Key LRU (default 4096; negative
	// disables idempotent replay).
	IdemEntries int
	// ReplayParallelism bounds concurrent recovery re-submissions
	// (default 4): recovery shares the queue with live traffic and must
	// not monopolize it.
	ReplayParallelism int
}

func (c Config) withDefaults() Config {
	if len(c.DeviceConfigs) == 0 {
		if c.Devices < 1 {
			c.Devices = 4
		}
	} else {
		c.Devices = len(c.DeviceConfigs)
	}
	if c.QueueCapacity < 1 {
		c.QueueCapacity = 256
	}
	if c.ShedFraction == 0 {
		c.ShedFraction = 0.75
	}
	switch {
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	case c.CacheEntries == 0:
		c.CacheEntries = 512
	}
	if c.Workers < 1 {
		c.Workers = c.Devices
	}
	switch {
	case c.IdemEntries < 0:
		c.IdemEntries = 0
	case c.IdemEntries == 0:
		c.IdemEntries = 4096
	}
	if c.ReplayParallelism < 1 {
		c.ReplayParallelism = 4
	}
	c.SelfHeal = c.SelfHeal.withDefaults()
	c.Shard = c.Shard.withDefaults(c.Devices)
	c.Batch = c.Batch.withDefaults()
	c.Delta = c.Delta.withDefaults()
	return c
}

// Server is the concurrent coloring service: admission queue in front,
// device pool behind, result cache and request coalescing on the side,
// and the self-healing layer (health-weighted leases, circuit breakers,
// hedged re-dispatch, graceful drain) wrapped around the lot. Create with
// NewServer; it is immediately serving. All methods are safe for
// concurrent use.
type Server struct {
	cfg      Config
	pool     *DevicePool
	queue    *jobQueue
	cache    *resultCache
	idem     *idemCache
	versions *versionStore
	reg      *metrics.Registry
	hedge    *hedgeTracker

	jrnl *journal.Journal

	// pendAccepts mirrors the journaled accepts that have no completion
	// yet; it is the pending half of the snapshot compaction source.
	pendMu      sync.Mutex
	pendAccepts map[string]journal.AcceptRecord

	// Recovery bookkeeping (see recovery.go).
	recReplay    journal.ReplayStats
	recEnabled   bool
	warmCache    int64
	warmIdem     int64
	warmVersions int64
	recPending   int64
	recDone      chan struct{}

	mu       sync.Mutex
	inflight map[cacheKey]*flight

	// batchRunHook, when set (tests only), intercepts the fused batch
	// run's raw result so a test can fault individual members and exercise
	// the per-member salvage/solo-retry path.
	batchRunHook func(union *graph.Graph, starts []int32, res *gpucolor.Result, err error) (*gpucolor.Result, error)

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started time.Time

	draining     atomic.Bool
	drainOnce    sync.Once
	drainDone    chan struct{}
	drainSum     DrainSummary
	drainReqOnce sync.Once
	drainReq     chan struct{}
}

// NewServer builds a serving stack from cfg and starts its workers.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var pool *DevicePool
	if len(cfg.DeviceConfigs) > 0 {
		pool = NewDevicePool(cfg.DeviceConfigs)
	} else {
		pool = UniformPool(cfg.Devices, cfg.Device)
	}
	pool.configureSelfHeal(cfg.SelfHeal)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		pool:        pool,
		queue:       newJobQueue(cfg.QueueCapacity, cfg.ShedFraction),
		cache:       newResultCache(cfg.CacheEntries),
		idem:        newIdemCache(cfg.IdemEntries),
		versions:    newVersionStore(cfg.Delta.Entries),
		reg:         metrics.NewRegistry(),
		hedge:       newHedgeTracker(cfg.SelfHeal.HedgeMinSamples, cfg.SelfHeal.HedgeFloor, cfg.SelfHeal.HedgeMultiple),
		jrnl:        cfg.Journal,
		pendAccepts: make(map[string]journal.AcceptRecord),
		recDone:     make(chan struct{}),
		inflight:    make(map[cacheKey]*flight),
		baseCtx:     ctx,
		cancel:      cancel,
		started:     time.Now(),
		drainDone:   make(chan struct{}),
		drainReq:    make(chan struct{}),
	}
	// Pre-register every metric so /metricsz reports zeros rather than
	// omitting counters that have not fired yet.
	for _, name := range []string{
		"requests_total", "completed_total", "failed_total", "recovered_total",
		"cache_hits", "cache_misses", "coalesced_total",
		"shed_total", "queue_full_total", "deadline_expired_total", "shed_expired",
		"hedges_total", "hedge_wins_total", "hedge_losses_total", "hedge_skipped_total",
		"attempts_canceled_total", "drain_handoff_total",
		"shard_jobs_total", "shard_retries_total", "shard_conflicts_total",
		"shard_repair_rounds_total", "shard_recolored_total", "shard_fallback_total",
		"idem_hits_total", "journal_append_errors_total",
		"replay_enqueued_total", "replay_completed_total",
		"replay_expired_total", "replay_failed_total",
		"batches_total", "batched_jobs_total", "batch_member_retries_total",
		"wire_binary_requests_total",
		"delta_requests_total", "delta_hits", "delta_fallbacks_total",
		"delta_unknown_base_total",
	} {
		s.reg.Counter(name)
	}
	s.reg.Gauge("queue_depth")
	s.reg.Gauge("devices_busy")
	s.reg.Histogram("wait_us")
	s.reg.Histogram("exec_us")
	s.reg.Histogram("batch_size")
	s.reg.Histogram("batch_linger_us")
	s.reg.Histogram("delta_frontier_size")
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.jrnl != nil {
		s.jrnl.SetSource(s.snapshotSource)
	}
	// Warm-start happens synchronously (cheap, and callers expect a warm
	// cache from the moment NewServer returns); pending-job replay runs in
	// the background behind RecoveryDone.
	s.applyRecovery(cfg.Recovery)
	return s
}

// Metrics returns the server's registry (shared, live).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Pool returns the device pool (for inspection; devices remain owned by
// the server's leases).
func (s *Server) Pool() *DevicePool { return s.pool }

// Uptime returns the time since the server started.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }

// Stop drains the queue and shuts the workers down with no deadline.
// In-flight and queued jobs complete; new Submit calls fail with a
// closed/draining error.
func (s *Server) Stop() { _, _ = s.Drain(0) }

// DrainSummary reports what happened to the server's work during a drain.
type DrainSummary struct {
	// Finished is the number of jobs that completed successfully during
	// the drain; Failed the jobs that finished with an error (including
	// in-flight jobs canceled at the drain deadline).
	Finished int64 `json:"finished"`
	Failed   int64 `json:"failed"`
	// HandedOff is the number of still-queued jobs returned to their
	// callers unrun (ErrDraining) when the drain deadline expired.
	HandedOff int64 `json:"handed_off"`
	// TimedOut reports that the drain deadline expired before the queue
	// and devices went idle.
	TimedOut bool `json:"timed_out"`
	// Elapsed is the wall time the drain took.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// DrainTimeoutError is the typed failure of a drain that exceeded its
// deadline; it carries the summary of what did and did not finish.
type DrainTimeoutError struct {
	Timeout time.Duration
	Summary DrainSummary
}

func (e *DrainTimeoutError) Error() string {
	return fmt.Sprintf("serve: drain exceeded %v (finished %d, handed off %d, failed %d)",
		e.Timeout, e.Summary.Finished, e.Summary.HandedOff, e.Summary.Failed)
}

// RequestDrain records an external drain request (the POST /drainz path).
// It does not itself drain: the daemon owning the process observes
// DrainRequested and runs Drain with its configured timeout.
func (s *Server) RequestDrain() {
	s.drainReqOnce.Do(func() { close(s.drainReq) })
}

// DrainRequested is closed once a drain has been requested via
// RequestDrain.
func (s *Server) DrainRequested() <-chan struct{} { return s.drainReq }

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the server down: admission stops immediately
// (Submit fails with ErrDraining), queued and in-flight jobs run to
// completion, and the summary reports what finished. With timeout > 0, a
// drain still busy at the deadline hands queued jobs back to their
// callers (ErrDraining — never silently dropped), cancels in-flight work
// at the next iteration boundary, and returns a *DrainTimeoutError.
// Subsequent calls wait for the first drain and return its summary.
func (s *Server) Drain(timeout time.Duration) (DrainSummary, error) {
	s.drainOnce.Do(func() {
		defer close(s.drainDone)
		s.draining.Store(true)
		start := time.Now()
		completed0 := s.reg.Counter("completed_total").Value()
		failed0 := s.reg.Counter("failed_total").Value()
		s.queue.close()
		done := make(chan struct{})
		go func() { s.wg.Wait(); close(done) }()
		var timedOut bool
		var handed int64
		if timeout > 0 {
			t := time.NewTimer(timeout)
			select {
			case <-done:
				t.Stop()
			case <-t.C:
				timedOut = true
				// Hand still-queued jobs back to their callers unrun, then
				// cancel in-flight attempts; the resilient driver honours
				// the context at iteration boundaries, so the workers
				// finish promptly and wg drains.
				handed = int64(s.queue.flush(func(j *job) {
					s.reg.Counter("drain_handoff_total").Inc()
					s.finishJob(j, nil, fmt.Errorf("serve: handed off during drain: %w", ErrDraining))
				}))
				s.cancel()
				<-done
			}
		} else {
			<-done
		}
		s.cancel()
		s.drainSum = DrainSummary{
			Finished:  s.reg.Counter("completed_total").Value() - completed0,
			Failed:    s.reg.Counter("failed_total").Value() - failed0,
			HandedOff: handed,
			TimedOut:  timedOut,
			Elapsed:   time.Since(start),
		}
	})
	<-s.drainDone
	if s.drainSum.TimedOut {
		return s.drainSum, &DrainTimeoutError{Timeout: timeout, Summary: s.drainSum}
	}
	return s.drainSum, nil
}

// cloneHit returns a defensive copy of a cached response: Colors is
// copied, so a caller mutating the slice it was handed cannot corrupt the
// cached entry (and with it every later hit). The shallow copy alone used
// to alias the cache's backing array — the classic "poison one hit, serve
// bad colorings forever" bug.
func cloneHit(res *Response) *Response {
	hit := *res
	if hit.Colors != nil {
		hit.Colors = append([]int32(nil), hit.Colors...)
	}
	return &hit
}

// Submit serves one request: idempotent replay, then the result cache,
// then coalescing, then the admission queue and a pooled device. It
// returns a verified coloring or a typed error (ErrQueueFull, ErrShedding,
// ErrClosed, ErrDraining, *UnknownBaseError, a context error, or a
// gpucolor failure).
//
// The draining check deliberately sits *after* the idempotency and cache
// lookups: replays and hits never touch a device, and refusing them during
// drain turned every rolling restart into a spurious client-visible error
// for retries the server could have answered from memory. Only work that
// would need the queue is refused while draining.
func (s *Server) Submit(ctx context.Context, req *Request) (*Response, error) {
	if req == nil {
		return nil, errors.New("serve: request has no graph")
	}
	if req.Delta != nil || req.BaseFingerprint != 0 {
		return s.submitDelta(ctx, req)
	}
	if req.Graph == nil {
		return nil, errors.New("serve: request has no graph")
	}
	s.reg.Counter("requests_total").Inc()
	fp := req.Fingerprint
	if fp == 0 {
		fp = req.Graph.Fingerprint()
	}
	shards := s.effectiveShards(req)
	key := keyOf(req, fp, shards)

	// Idempotent replay comes before everything — even NoCache — because
	// a retry carrying an Idempotency-Key is explicitly asking for the
	// answer its original request produced, wherever it now lives.
	if res, ok := s.idem.get(req.IdemKey); ok {
		s.reg.Counter("idem_hits_total").Inc()
		hit := cloneHit(res)
		hit.Cached = true
		hit.IdempotentReplay = true
		hit.Device = -1
		hit.Wait, hit.Exec = 0, 0
		hit.RequestID = req.RequestID
		return hit, nil
	}

	if !req.NoCache {
		if res, ok := s.cache.get(key); ok {
			s.reg.Counter("cache_hits").Inc()
			if req.Resident {
				s.versions.put(fp, req.Graph, res.Colors)
			}
			hit := cloneHit(res)
			hit.Cached = true
			hit.Device = -1
			hit.Wait, hit.Exec = 0, 0
			hit.RequestID = req.RequestID
			return hit, nil
		}
	}

	if s.draining.Load() {
		return nil, ErrDraining
	}
	res, err := s.admit(ctx, req, fp, key, shards)
	if err == nil && req.Resident {
		s.versions.put(fp, req.Graph, res.Colors)
	}
	return res, err
}

// admit runs the miss path: coalesce onto an in-flight execution of the
// same key, or register a flight and enqueue. Factored out of Submit so
// the delta fallback can reuse it after its own admission checks.
func (s *Server) admit(ctx context.Context, req *Request, fp uint64, key cacheKey, shards int) (*Response, error) {
	if !req.NoCache {
		s.reg.Counter("cache_misses").Inc()

		s.mu.Lock()
		if fl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			s.reg.Counter("coalesced_total").Inc()
			res, err := s.wait(ctx, fl, true)
			if res != nil {
				res.RequestID = req.RequestID
			}
			return res, err
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()
		return s.enqueue(ctx, req, fp, key, shards, fl, true)
	}

	// NoCache: always execute; nothing to coalesce with and nothing cached.
	fl := &flight{done: make(chan struct{})}
	return s.enqueue(ctx, req, fp, key, shards, fl, false)
}

// effectiveShards resolves a request's Shards knob against the server's
// shard policy: 1 when sharding is off, the pool is a single device, or
// the request pinned single-device; the request's K (clamped) when
// pinned; the configured K when the graph crosses an auto threshold.
func (s *Server) effectiveShards(req *Request) int {
	c := s.cfg.Shard
	if c.Disabled || s.pool.Size() < 2 || req.Shards == 1 || req.Shards < 0 {
		return 1
	}
	k := req.Shards
	if k == 0 {
		auto := c.AutoVertices > 0 && req.Graph.NumVertices() >= c.AutoVertices ||
			c.AutoEdges > 0 && req.Graph.NumEdges() >= c.AutoEdges
		if !auto {
			return 1
		}
		k = c.K
	}
	if k > c.MaxShards {
		k = c.MaxShards
	}
	if n := req.Graph.NumVertices(); k > n {
		k = n
	}
	if k < 2 {
		return 1
	}
	return k
}

// enqueue admits the job (or fails with a typed admission error) and waits
// for its flight. Replayable requests are journaled before the push — the
// write-ahead invariant: a crash can never hold work the journal never
// saw — and a rejected push journals a DispRejected completion so replay
// does not resurrect work the caller was told to retry.
func (s *Server) enqueue(ctx context.Context, req *Request, fp uint64, key cacheKey, shards int, fl *flight, tracked bool) (*Response, error) {
	j := &job{ctx: ctx, req: req, fp: fp, key: key, shards: shards, fl: fl}
	if s.jrnl != nil && req.RequestID != "" && len(req.Wire) > 0 {
		j.journaled = true
		s.journalAccept(ctx, req, key)
	}
	if err := s.queue.push(j); err != nil {
		if tracked {
			s.dropInflight(key)
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			s.reg.Counter("queue_full_total").Inc()
		case errors.Is(err, ErrShedding):
			s.reg.Counter("shed_total").Inc()
		}
		if j.journaled {
			s.journalFinish(j, nil, err)
		}
		fl.complete(nil, err)
		return nil, err
	}
	s.reg.Gauge("queue_depth").Set(int64(s.queue.depth()))
	res, err := s.wait(ctx, fl, false)
	if res != nil {
		res.RequestID = req.RequestID
	}
	return res, err
}

// wait blocks on a flight, honouring the waiter's own context.
func (s *Server) wait(ctx context.Context, fl *flight, coalesced bool) (*Response, error) {
	select {
	case <-fl.done:
		if fl.err != nil {
			return nil, fl.err
		}
		// Each waiter gets its own Colors copy: the flight's result is also
		// the cache entry, and waiters are free to mutate what they receive.
		res := cloneHit(fl.res)
		res.Coalesced = coalesced
		return res, nil
	case <-ctx.Done():
		// The execution (if any) continues for other waiters; this caller
		// alone gives up.
		return nil, fmt.Errorf("serve: abandoned wait: %w", ctx.Err())
	}
}

func (s *Server) dropInflight(key cacheKey) {
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
}

// worker is one executor: pop a live job, lease a device, run the
// resilient driver (hedging when the run crosses the tail threshold), and
// publish to cache and flight.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, err := s.queue.pop(s.baseCtx, s.expireJob)
		if err != nil {
			return
		}
		s.reg.Gauge("queue_depth").Set(int64(s.queue.depth()))
		if members := s.gatherBatch(j); len(members) > 1 {
			s.runBatch(members)
			continue
		}
		wait := time.Since(j.enqueued)
		s.reg.Histogram("wait_us").Add(wait.Microseconds())
		s.runJob(j, wait)
	}
}

// expireJob fails a job whose deadline passed while it was queued; it is
// called from pop, before any device is involved, and completes the job
// with ErrDeadlineInQueue exactly once (the flight's once-guard backs the
// queue's single-exit invariant).
func (s *Server) expireJob(j *job) {
	s.reg.Counter("deadline_expired_total").Inc()
	s.reg.Counter("shed_expired").Inc()
	s.finishJob(j, nil, fmt.Errorf("%w: %w", ErrDeadlineInQueue, j.ctx.Err()))
}

// attemptResult is the outcome of one device attempt (primary or hedge).
type attemptResult struct {
	out    *gpucolor.Outcome
	err    error
	device int
	exec   time.Duration
	hedge  bool
}

// acquireError marks a dispatch that failed before any device attempt ran:
// the pool acquire itself gave up (deadline, cancellation, shutdown). It
// unwraps to the pool's error so errors.Is keeps matching, and it lets the
// metrics layer keep its historical distinction — acquire failures count
// as deadline expiry, not device failure.
type acquireError struct{ err error }

func (e *acquireError) Error() string { return e.err.Error() }
func (e *acquireError) Unwrap() error { return e.err }

// attemptFailure marks a dispatch whose device attempts all failed; it
// carries the primary's device index so a sharded retry can exclude it.
type attemptFailure struct {
	device int
	err    error
}

func (e *attemptFailure) Error() string { return e.err.Error() }
func (e *attemptFailure) Unwrap() error { return e.err }

// dispatchResult is a winning dispatch: the verified outcome plus the
// device and timing evidence.
type dispatchResult struct {
	out    *gpucolor.Outcome
	device int
	exec   time.Duration
	hedged bool
}

// dispatch runs one graph on one leased device: a primary attempt on a
// health-weighted lease (never the excluded device, when exclude >= 0),
// plus — if the run crosses the P99-derived hedge threshold — a
// speculative second attempt on another healthy device. The first
// successful attempt wins; the loser is canceled through its context and
// its lease is released by its own goroutine. If every launched attempt
// fails, the primary's error is returned as an *attemptFailure.
func (s *Server) dispatch(ctx context.Context, j *job, g *graph.Graph, seed uint32, exclude int) (*dispatchResult, error) {
	lease, err := s.pool.acquire(ctx, exclude)
	if err != nil {
		return nil, &acquireError{err: err}
	}

	resCh := make(chan attemptResult, 2)
	primCtx, cancelPrim := context.WithCancel(ctx)
	defer cancelPrim()
	s.wg.Add(1)
	go s.attempt(primCtx, j, g, seed, lease, false, resCh)

	// Arm the hedge timer only when hedging is on, a second device exists,
	// and the tail estimate has warmed up. Probe leases are never hedged:
	// the probe must answer for itself.
	var hedgeC <-chan time.Time
	if !s.cfg.SelfHeal.NoHedge && !s.cfg.SelfHeal.Disabled && s.pool.Size() > 1 && !lease.Probe() {
		if thr, ok := s.hedge.threshold(); ok {
			t := time.NewTimer(thr)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	var cancelHedge context.CancelFunc
	launched := 1
	hedged := false
	var winner *attemptResult
	var firstErr *attemptResult
	for winner == nil {
		select {
		case r := <-resCh:
			if r.err == nil {
				winner = &r
			} else {
				if firstErr == nil || !r.hedge {
					firstErr = &r
				}
				launched--
				if launched == 0 {
					// Every attempt failed; report the primary's error.
					goto decided
				}
			}
		case <-hedgeC:
			hedgeC = nil
			hl, ok := s.pool.TryAcquireHealthy(lease.Index())
			if !ok {
				s.reg.Counter("hedge_skipped_total").Inc()
				continue
			}
			hedged = true
			s.reg.Counter("hedges_total").Inc()
			hctx, hcancel := context.WithCancel(ctx)
			cancelHedge = hcancel
			launched++
			s.wg.Add(1)
			go s.attempt(hctx, j, g, seed, hl, true, resCh)
		}
	}
decided:
	if winner != nil && hedged {
		// Cancel the loser; its goroutine observes the cancellation as a
		// neutral outcome, releases its lease, and drains into the
		// buffered channel.
		if winner.hedge {
			s.reg.Counter("hedge_wins_total").Inc()
			cancelPrim()
		} else {
			s.reg.Counter("hedge_losses_total").Inc()
			if cancelHedge != nil {
				cancelHedge()
			}
		}
	}
	if cancelHedge != nil {
		defer cancelHedge()
	}

	if winner == nil {
		return nil, &attemptFailure{device: firstErr.device, err: firstErr.err}
	}
	return &dispatchResult{out: winner.out, device: winner.device, exec: winner.exec, hedged: hedged}, nil
}

// failJob finishes a job with an error, counting it under the historical
// metric split: acquire failures (no device ever ran) land on
// deadline_expired_total, device failures on failed_total.
func (s *Server) failJob(j *job, err error) {
	var aq *acquireError
	if errors.As(err, &aq) {
		s.reg.Counter("deadline_expired_total").Inc()
	} else {
		s.reg.Counter("failed_total").Inc()
	}
	s.finishJob(j, nil, err)
}

// runJob executes one admitted job: single-device dispatch, or — for jobs
// admitted with an effective shard count above one — the scatter-gather
// sharded path.
func (s *Server) runJob(j *job, wait time.Duration) {
	// Attempts answer to the request's context and to server shutdown:
	// the drain-deadline path cancels baseCtx to reel in-flight work in.
	ctx, cancelAll := context.WithCancel(j.ctx)
	defer cancelAll()
	stopAfter := context.AfterFunc(s.baseCtx, cancelAll)
	defer stopAfter()

	if j.shards > 1 {
		s.runSharded(ctx, j, wait)
		return
	}

	d, err := s.dispatch(ctx, j, j.req.Graph, j.req.Seed, -1)
	if err != nil {
		s.failJob(j, err)
		return
	}
	out := d.out
	res := &Response{
		Fingerprint: j.fp,
		Colors:      out.Colors,
		NumColors:   out.NumColors,
		Cycles:      out.Cycles,
		Iterations:  out.Iterations,
		Recovery:    out.Recovery,
		Attempts:    out.Attempts,
		Repaired:    out.Repaired,
		Hedged:      d.hedged,
		Shards:      1,
		Device:      d.device,
		Wait:        wait,
		Exec:        d.exec,
	}
	s.reg.Counter("completed_total").Inc()
	if out.Recovery != gpucolor.RecoveryNone {
		s.reg.Counter("recovered_total").Inc()
	}
	if !j.req.NoCache {
		// Publish to the cache before releasing the flight so a request
		// arriving between the two sees either the flight or the cache.
		s.cache.put(j.key, res)
	}
	s.finishJob(j, res, nil)
}

// dispatchShard colors one shard's subgraph, retrying once on a different
// device when the first dispatch failed on-device — the shard-level
// re-dispatch that lets a sharded job survive one sick device without
// burning the whole merge.
func (s *Server) dispatchShard(ctx context.Context, j *job, i int, sub *graph.Graph) (*dispatchResult, error) {
	seed := j.req.Seed + uint32(i) // decorrelate per-shard priorities
	d, err := s.dispatch(ctx, j, sub, seed, -1)
	if err == nil {
		return d, nil
	}
	var af *attemptFailure
	if ctx.Err() == nil && errors.As(err, &af) && s.pool.Size() > 1 {
		s.reg.Counter("shard_retries_total").Inc()
		return s.dispatch(ctx, j, sub, seed, af.device)
	}
	return nil, err
}

// runSharded executes one job as a scatter-gather: partition, fan out one
// dispatch per shard (each with its own lease, hedging, and health
// accounting), barrier on the merge, reconcile cross-shard conflicts with
// the bounded boundary repair loop, and publish one aggregated response.
func (s *Server) runSharded(ctx context.Context, j *job, wait time.Duration) {
	plan, err := shard.Partition(j.req.Graph, j.shards, true)
	if err != nil {
		s.reg.Counter("failed_total").Inc()
		s.finishJob(j, nil, err)
		return
	}
	s.reg.Counter("shard_jobs_total").Inc()

	type shardOut struct {
		d   *dispatchResult
		err error
	}
	outs := make([]shardOut, plan.K)
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i := range plan.Subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := s.dispatchShard(sctx, j, i, plan.Subs[i])
			if err != nil {
				outs[i].err = fmt.Errorf("serve: shard %d/%d: %w", i, plan.K, err)
				cancel() // a lost shard fails the merge; reel the siblings in
				return
			}
			outs[i].d = d
		}(i)
	}
	wg.Wait() // merge barrier: every shard decided, every lease released

	// Prefer the error of the shard that actually failed over siblings
	// that merely observed the cancellation.
	var firstErr error
	for _, o := range outs {
		if o.err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(o.err, context.Canceled)) {
			firstErr = o.err
		}
	}
	if firstErr != nil {
		s.failJob(j, firstErr)
		return
	}

	parts := make([][]int32, plan.K)
	for i, o := range outs {
		parts[i] = o.d.out.Colors
	}
	colors, st, err := shard.MergeRepair(j.req.Graph, plan, parts, j.req.Seed,
		s.cfg.Shard.MaxRepairRounds, j.req.NoCPUFallback)
	if err != nil {
		s.reg.Counter("failed_total").Inc()
		s.finishJob(j, nil, err)
		return
	}
	s.reg.Counter("shard_conflicts_total").Add(int64(st.Conflicts))
	s.reg.Counter("shard_repair_rounds_total").Add(int64(st.Rounds))
	s.reg.Counter("shard_recolored_total").Add(int64(st.Recolored))
	if st.Fallback {
		s.reg.Counter("shard_fallback_total").Inc()
	}

	res := &Response{
		Fingerprint:       j.fp,
		Colors:            colors,
		NumColors:         st.NumColors,
		Shards:            plan.K,
		ShardConflicts:    st.Conflicts,
		ShardRepairRounds: st.Rounds,
		ShardRecolored:    st.Recolored,
		Device:            -1, // the job spanned several devices
		Wait:              wait,
	}
	for _, o := range outs {
		out := o.d.out
		res.Cycles += out.Cycles // serial-equivalent device work
		if out.Iterations > res.Iterations {
			res.Iterations = out.Iterations
		}
		res.Attempts += out.Attempts
		res.Repaired += out.Repaired
		if out.Recovery > res.Recovery {
			res.Recovery = out.Recovery // worst rung any shard needed
		}
		if o.d.hedged {
			res.Hedged = true
		}
		if o.d.exec > res.Exec {
			res.Exec = o.d.exec // parallel makespan
		}
	}
	if st.Fallback {
		res.Recovery = gpucolor.RecoveryCPU
	}
	s.reg.Counter("completed_total").Inc()
	if res.Recovery != gpucolor.RecoveryNone {
		s.reg.Counter("recovered_total").Inc()
	}
	if !j.req.NoCache {
		s.cache.put(j.key, res)
	}
	s.finishJob(j, res, nil)
}

// attempt runs one device attempt: execute the resilient ladder on the
// lease's runner, feed the typed outcome into the device's health score
// and breaker, release the lease, and report back. The lease is owned by
// this goroutine from the moment attempt is launched.
func (s *Server) attempt(ctx context.Context, j *job, g *graph.Graph, seed uint32, lease *Lease, hedge bool, resCh chan<- attemptResult) {
	defer s.wg.Done()
	busy := s.reg.Gauge("devices_busy")
	busy.Add(1)
	dev := lease.Device()
	dev.Policy = j.req.Policy
	var faultsBefore int64
	if dev.Fault != nil {
		faultsBefore = dev.Fault.Stats().Injected()
	}
	opt := gpucolor.ResilientOptions{
		Options: gpucolor.Options{
			Seed:            seed,
			HybridThreshold: j.req.HybridThreshold,
			Fused:           j.req.Fused,
		},
		CycleBudget:   j.req.CycleBudget,
		MaxRetries:    j.req.MaxRetries,
		NoCPUFallback: j.req.NoCPUFallback,
	}
	start := time.Now()
	// The lease's persistent runner keeps the device-arena buffers bound
	// across jobs: same results as the transient path, no per-request
	// allocations on the device side.
	out, err := lease.Runner().ColorContext(ctx, g, j.req.Algorithm, opt)
	exec := time.Since(start)
	var faultsDelta int64
	if dev.Fault != nil {
		faultsDelta = dev.Fault.Stats().Injected() - faultsBefore
	}
	kind := gpucolor.Classify(out, err)
	lease.Observe(kind, exec, faultsDelta)
	busy.Add(-1)
	lease.Release()
	s.reg.Histogram("exec_us").Add(exec.Microseconds())
	if err == nil {
		s.hedge.observe(exec)
	}
	if kind == gpucolor.OutcomeCanceled {
		s.reg.Counter("attempts_canceled_total").Inc()
	}
	resCh <- attemptResult{out: out, err: err, device: lease.Index(), exec: exec, hedge: hedge}
}

// finishJob is the single completion choke point: journal the outcome
// (when the job was journaled), publish an idempotent result, remove the
// job's flight from the coalescing map (when tracked), and release every
// waiter.
func (s *Server) finishJob(j *job, res *Response, err error) {
	if j.journaled {
		s.journalFinish(j, res, err)
	}
	if err == nil && res != nil {
		s.idem.put(j.req.IdemKey, res, j.req.NoCache, j.key.policy)
	}
	if !j.req.NoCache {
		s.dropInflight(j.key)
	}
	j.fl.complete(res, err)
}

// DeviceStat is the per-device slice of Stats: health score, breaker
// state, and lifetime job count.
type DeviceStat struct {
	Health  float64
	Breaker string
	Jobs    int64
}

// Stats is a point-in-time serving summary, the programmatic form of
// /metricsz.
type Stats struct {
	Uptime          time.Duration
	Requests        int64
	Completed       int64
	Failed          int64
	CacheHits       int64
	CacheMisses     int64
	CacheHitRate    float64 // hits / (hits + misses); 0 when no lookups
	CacheEntries    int     // results currently resident in the LRU
	CacheEvictions  int64   // entries pushed out by capacity since start
	IdemHits        int64   // requests answered from the idempotency map
	IdemEntries     int     // idempotency keys currently resident
	Coalesced       int64
	Shed            int64 // ErrShedding rejections
	QueueFull       int64 // ErrQueueFull rejections
	DeadlineExpired int64
	ShedExpired     int64 // deadline expired while still queued
	QueueDepth      int64
	Devices         int
	Utilization     float64 // fraction of device-time leased since start
	WaitP50us       int64
	WaitP99us       int64
	ExecP50us       int64
	ExecP99us       int64

	// Sharded scatter-gather.
	ShardJobs      int64 // jobs executed as K-shard scatter-gathers
	ShardRetries   int64 // shard dispatches retried on another device
	ShardConflicts int64 // monochromatic cut edges found at merge barriers
	ShardRecolored int64 // vertices recolored by boundary repair
	ShardFallbacks int64 // sharded jobs that degraded to the CPU greedy

	// Block-diagonal kernel batching.
	Batches            int64 // fused multi-graph launches executed
	BatchedJobs        int64 // jobs that rode in a fused launch
	BatchMemberRetries int64 // batch members re-run solo after a batch failure
	WireBinaryRequests int64 // POST /color bodies in the binary CSR wire format

	// Incremental (delta) coloring.
	DeltaRequests    int64 // delta requests received
	DeltaHits        int64 // deltas served by frontier recolor alone
	DeltaFallbacks   int64 // deltas recolored from scratch (frontier over budget)
	DeltaUnknownBase int64 // deltas refused: base version not resident
	VersionsResident int   // graph versions currently pinned

	// Self-healing.
	Hedges        int64 // hedged re-dispatches launched
	HedgeWins     int64 // hedge attempt beat the primary
	HedgeLosses   int64 // primary finished first after a hedge launched
	Quarantines   int64 // breaker trips since start
	Readmitted    int64 // completed probations
	Probes        int64 // probe leases issued
	ProbeFailures int64 // probes that re-opened a breaker
	Quarantined   int   // devices currently not breaker-closed
	Draining      bool
	DrainHandoff  int64 // jobs handed back to callers at a drain deadline
	PerDevice     []DeviceStat
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	snap := s.reg.Snapshot()
	st := Stats{
		Uptime:          s.Uptime(),
		Requests:        snap["requests_total"],
		Completed:       snap["completed_total"],
		Failed:          snap["failed_total"],
		CacheHits:       snap["cache_hits"],
		CacheMisses:     snap["cache_misses"],
		CacheEntries:    s.cache.len(),
		CacheEvictions:  s.cache.evictions(),
		IdemHits:        snap["idem_hits_total"],
		IdemEntries:     s.idem.len(),
		Coalesced:       snap["coalesced_total"],
		Shed:            snap["shed_total"],
		QueueFull:       snap["queue_full_total"],
		DeadlineExpired: snap["deadline_expired_total"],
		ShedExpired:     snap["shed_expired"],
		QueueDepth:      snap["queue_depth"],
		Devices:         s.pool.Size(),
		Utilization:     s.pool.Utilization(s.Uptime()),
		WaitP50us:       s.reg.Histogram("wait_us").Quantile(0.50),
		WaitP99us:       s.reg.Histogram("wait_us").Quantile(0.99),
		ExecP50us:       s.reg.Histogram("exec_us").Quantile(0.50),
		ExecP99us:       s.reg.Histogram("exec_us").Quantile(0.99),
		ShardJobs:       snap["shard_jobs_total"],
		ShardRetries:    snap["shard_retries_total"],
		ShardConflicts:  snap["shard_conflicts_total"],
		ShardRecolored:  snap["shard_recolored_total"],
		ShardFallbacks:  snap["shard_fallback_total"],

		Batches:            snap["batches_total"],
		BatchedJobs:        snap["batched_jobs_total"],
		BatchMemberRetries: snap["batch_member_retries_total"],
		WireBinaryRequests: snap["wire_binary_requests_total"],
		DeltaRequests:      snap["delta_requests_total"],
		DeltaHits:          snap["delta_hits"],
		DeltaFallbacks:     snap["delta_fallbacks_total"],
		DeltaUnknownBase:   snap["delta_unknown_base_total"],
		VersionsResident:   s.versions.len(),
		Hedges:          snap["hedges_total"],
		HedgeWins:       snap["hedge_wins_total"],
		HedgeLosses:     snap["hedge_losses_total"],
		Quarantines:     s.pool.QuarantineCount(),
		Readmitted:      s.pool.ReadmitCount(),
		Probes:          s.pool.ProbeCount(),
		ProbeFailures:   s.pool.ProbeFailCount(),
		Quarantined:     s.pool.Quarantined(),
		Draining:        s.Draining(),
		DrainHandoff:    snap["drain_handoff_total"],
	}
	st.PerDevice = make([]DeviceStat, s.pool.Size())
	for i := range st.PerDevice {
		st.PerDevice[i] = DeviceStat{
			Health:  s.pool.HealthScore(i),
			Breaker: s.pool.BreakerState(i).String(),
			Jobs:    s.pool.Jobs(i),
		}
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return st
}
