package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/metrics"
)

// Config sizes a Server. Zero values take the documented defaults.
type Config struct {
	// Devices is the pool size (default 4). Ignored when DeviceConfigs is
	// set.
	Devices int
	// Device is the config template applied to every pool device.
	Device DeviceConfig
	// DeviceConfigs, when non-empty, builds a heterogeneous pool with one
	// device per entry, overriding Devices/Device.
	DeviceConfigs []DeviceConfig
	// QueueCapacity bounds the admission queue (default 256).
	QueueCapacity int
	// ShedFraction is the queue occupancy fraction at which sub-high
	// priority work is shed (default 0.75; >= 1 disables early shedding).
	ShedFraction float64
	// CacheEntries sizes the result LRU (default 512; negative disables
	// caching).
	CacheEntries int
	// Workers is the number of executor goroutines (default: pool size).
	// More workers than devices lets dequeue/deadline triage overlap with
	// execution; jobs still serialize on device leases.
	Workers int
}

func (c Config) withDefaults() Config {
	if len(c.DeviceConfigs) == 0 {
		if c.Devices < 1 {
			c.Devices = 4
		}
	} else {
		c.Devices = len(c.DeviceConfigs)
	}
	if c.QueueCapacity < 1 {
		c.QueueCapacity = 256
	}
	if c.ShedFraction == 0 {
		c.ShedFraction = 0.75
	}
	switch {
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	case c.CacheEntries == 0:
		c.CacheEntries = 512
	}
	if c.Workers < 1 {
		c.Workers = c.Devices
	}
	return c
}

// Server is the concurrent coloring service: admission queue in front,
// device pool behind, result cache and request coalescing on the side.
// Create with NewServer; it is immediately serving. All methods are safe
// for concurrent use.
type Server struct {
	cfg   Config
	pool  *DevicePool
	queue *jobQueue
	cache *resultCache
	reg   *metrics.Registry

	mu       sync.Mutex
	inflight map[cacheKey]*flight

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started time.Time
}

// NewServer builds a serving stack from cfg and starts its workers.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var pool *DevicePool
	if len(cfg.DeviceConfigs) > 0 {
		pool = NewDevicePool(cfg.DeviceConfigs)
	} else {
		pool = UniformPool(cfg.Devices, cfg.Device)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		pool:     pool,
		queue:    newJobQueue(cfg.QueueCapacity, cfg.ShedFraction),
		cache:    newResultCache(cfg.CacheEntries),
		reg:      metrics.NewRegistry(),
		inflight: make(map[cacheKey]*flight),
		baseCtx:  ctx,
		cancel:   cancel,
		started:  time.Now(),
	}
	// Pre-register every metric so /metricsz reports zeros rather than
	// omitting counters that have not fired yet.
	for _, name := range []string{
		"requests_total", "completed_total", "failed_total", "recovered_total",
		"cache_hits", "cache_misses", "coalesced_total",
		"shed_total", "queue_full_total", "deadline_expired_total",
	} {
		s.reg.Counter(name)
	}
	s.reg.Gauge("queue_depth")
	s.reg.Gauge("devices_busy")
	s.reg.Histogram("wait_us")
	s.reg.Histogram("exec_us")
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the server's registry (shared, live).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Pool returns the device pool (for inspection; devices remain owned by
// the server's leases).
func (s *Server) Pool() *DevicePool { return s.pool }

// Uptime returns the time since the server started.
func (s *Server) Uptime() time.Duration { return time.Since(s.started) }

// Stop drains the queue and shuts the workers down. In-flight and queued
// jobs complete; new Submit calls fail with ErrClosed.
func (s *Server) Stop() {
	s.queue.close()
	s.wg.Wait()
	s.cancel()
}

// Submit serves one request: result cache, then coalescing, then the
// admission queue and a pooled device. It returns a verified coloring or a
// typed error (ErrQueueFull, ErrShedding, ErrClosed, a context error, or a
// gpucolor failure).
func (s *Server) Submit(ctx context.Context, req *Request) (*Response, error) {
	if req == nil || req.Graph == nil {
		return nil, errors.New("serve: request has no graph")
	}
	s.reg.Counter("requests_total").Inc()
	fp := req.Graph.Fingerprint()
	key := keyOf(req, fp)

	if !req.NoCache {
		if res, ok := s.cache.get(key); ok {
			s.reg.Counter("cache_hits").Inc()
			hit := *res
			hit.Cached = true
			hit.Device = -1
			hit.Wait, hit.Exec = 0, 0
			return &hit, nil
		}
		s.reg.Counter("cache_misses").Inc()

		s.mu.Lock()
		if fl, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			s.reg.Counter("coalesced_total").Inc()
			return s.wait(ctx, fl, true)
		}
		fl := &flight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()
		return s.enqueue(ctx, req, fp, key, fl, true)
	}

	// NoCache: always execute; nothing to coalesce with and nothing cached.
	fl := &flight{done: make(chan struct{})}
	return s.enqueue(ctx, req, fp, key, fl, false)
}

// enqueue admits the job (or fails with a typed admission error) and waits
// for its flight.
func (s *Server) enqueue(ctx context.Context, req *Request, fp uint64, key cacheKey, fl *flight, tracked bool) (*Response, error) {
	j := &job{ctx: ctx, req: req, fp: fp, key: key, fl: fl}
	if err := s.queue.push(j); err != nil {
		if tracked {
			s.dropInflight(key)
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			s.reg.Counter("queue_full_total").Inc()
		case errors.Is(err, ErrShedding):
			s.reg.Counter("shed_total").Inc()
		}
		fl.complete(nil, err)
		return nil, err
	}
	s.reg.Gauge("queue_depth").Set(int64(s.queue.depth()))
	return s.wait(ctx, fl, false)
}

// wait blocks on a flight, honouring the waiter's own context.
func (s *Server) wait(ctx context.Context, fl *flight, coalesced bool) (*Response, error) {
	select {
	case <-fl.done:
		if fl.err != nil {
			return nil, fl.err
		}
		res := *fl.res
		res.Coalesced = coalesced
		return &res, nil
	case <-ctx.Done():
		// The execution (if any) continues for other waiters; this caller
		// alone gives up.
		return nil, fmt.Errorf("serve: abandoned wait: %w", ctx.Err())
	}
}

func (s *Server) dropInflight(key cacheKey) {
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
}

// worker is one executor: pop a live job, lease a device, run the
// resilient driver, publish to cache and flight.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, err := s.queue.pop(s.baseCtx, s.expireJob)
		if err != nil {
			return
		}
		s.reg.Gauge("queue_depth").Set(int64(s.queue.depth()))
		wait := time.Since(j.enqueued)
		s.reg.Histogram("wait_us").Add(wait.Microseconds())
		s.runJob(j, wait)
	}
}

// expireJob fails a job whose deadline passed while it was queued; it is
// called from pop, before any device is involved.
func (s *Server) expireJob(j *job) {
	s.reg.Counter("deadline_expired_total").Inc()
	s.finishJob(j, nil, fmt.Errorf("serve: expired in queue: %w", j.ctx.Err()))
}

// runJob executes one admitted job on a leased device.
func (s *Server) runJob(j *job, wait time.Duration) {
	lease, err := s.pool.Acquire(j.ctx)
	if err != nil {
		s.reg.Counter("deadline_expired_total").Inc()
		s.finishJob(j, nil, err)
		return
	}
	s.reg.Gauge("devices_busy").Add(1)
	lease.Device().Policy = j.req.Policy
	opt := gpucolor.ResilientOptions{
		Options: gpucolor.Options{
			Seed:            j.req.Seed,
			HybridThreshold: j.req.HybridThreshold,
			Fused:           j.req.Fused,
		},
		CycleBudget:   j.req.CycleBudget,
		MaxRetries:    j.req.MaxRetries,
		NoCPUFallback: j.req.NoCPUFallback,
	}
	start := time.Now()
	// The lease's persistent runner keeps the device-arena buffers bound
	// across jobs: same results as the transient path, no per-request
	// allocations on the device side.
	out, err := lease.Runner().ColorContext(j.ctx, j.req.Graph, j.req.Algorithm, opt)
	exec := time.Since(start)
	devIdx := lease.Index()
	s.reg.Gauge("devices_busy").Add(-1)
	lease.Release()
	s.reg.Histogram("exec_us").Add(exec.Microseconds())

	if err != nil {
		s.reg.Counter("failed_total").Inc()
		s.finishJob(j, nil, err)
		return
	}
	res := &Response{
		Fingerprint: j.fp,
		Colors:      out.Colors,
		NumColors:   out.NumColors,
		Cycles:      out.Cycles,
		Iterations:  out.Iterations,
		Recovery:    out.Recovery,
		Attempts:    out.Attempts,
		Repaired:    out.Repaired,
		Device:      devIdx,
		Wait:        wait,
		Exec:        exec,
	}
	s.reg.Counter("completed_total").Inc()
	if out.Recovery != gpucolor.RecoveryNone {
		s.reg.Counter("recovered_total").Inc()
	}
	if !j.req.NoCache {
		// Publish to the cache before releasing the flight so a request
		// arriving between the two sees either the flight or the cache.
		s.cache.put(j.key, res)
	}
	s.finishJob(j, res, nil)
}

// finishJob removes the job's flight from the coalescing map (when
// tracked) and releases every waiter.
func (s *Server) finishJob(j *job, res *Response, err error) {
	if !j.req.NoCache {
		s.dropInflight(j.key)
	}
	j.fl.complete(res, err)
}

// Stats is a point-in-time serving summary, the programmatic form of
// /metricsz.
type Stats struct {
	Uptime          time.Duration
	Requests        int64
	Completed       int64
	Failed          int64
	CacheHits       int64
	CacheMisses     int64
	CacheHitRate    float64 // hits / (hits + misses); 0 when no lookups
	Coalesced       int64
	Shed            int64 // ErrShedding rejections
	QueueFull       int64 // ErrQueueFull rejections
	DeadlineExpired int64
	QueueDepth      int64
	Devices         int
	Utilization     float64 // fraction of device-time leased since start
	WaitP50us       int64
	WaitP99us       int64
	ExecP50us       int64
	ExecP99us       int64
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	snap := s.reg.Snapshot()
	st := Stats{
		Uptime:          s.Uptime(),
		Requests:        snap["requests_total"],
		Completed:       snap["completed_total"],
		Failed:          snap["failed_total"],
		CacheHits:       snap["cache_hits"],
		CacheMisses:     snap["cache_misses"],
		Coalesced:       snap["coalesced_total"],
		Shed:            snap["shed_total"],
		QueueFull:       snap["queue_full_total"],
		DeadlineExpired: snap["deadline_expired_total"],
		QueueDepth:      snap["queue_depth"],
		Devices:         s.pool.Size(),
		Utilization:     s.pool.Utilization(s.Uptime()),
		WaitP50us:       s.reg.Histogram("wait_us").Quantile(0.50),
		WaitP99us:       s.reg.Histogram("wait_us").Quantile(0.99),
		ExecP50us:       s.reg.Histogram("exec_us").Quantile(0.50),
		ExecP99us:       s.reg.Histogram("exec_us").Quantile(0.99),
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return st
}
