package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/simt"
)

// DeviceConfig describes one pool device. The zero value means "HD 7950
// defaults" for every field.
type DeviceConfig struct {
	// NumCUs, WavefrontWidth, WorkgroupSize mirror simt.Device; zero keeps
	// the simt.NewDevice default.
	NumCUs         int
	WavefrontWidth int
	WorkgroupSize  int
	// Workers bounds the host goroutines simulating the device. The pool
	// default divides GOMAXPROCS across devices so a fully busy pool does
	// not oversubscribe the host; set explicitly to override.
	Workers int
	// FaultRate > 0 arms a deterministic fault injector on the device with
	// the given per-event probability and FaultSeed (chaos serving).
	FaultRate float64
	FaultSeed uint64
}

func (c DeviceConfig) build() *simt.Device {
	dev := simt.NewDevice()
	if c.NumCUs > 0 {
		dev.NumCUs = c.NumCUs
	}
	if c.WavefrontWidth > 0 {
		dev.WavefrontWidth = c.WavefrontWidth
	}
	if c.WorkgroupSize > 0 {
		dev.WorkgroupSize = c.WorkgroupSize
	}
	if c.Workers > 0 {
		dev.Workers = c.Workers
	}
	if c.FaultRate > 0 {
		seed := c.FaultSeed
		if seed == 0 {
			seed = 1
		}
		dev.Fault = simt.NewFaultInjector(seed, c.FaultRate)
	}
	return dev
}

// DevicePool owns a fixed set of simulated devices and leases each to one
// job at a time. Leases are handed out in LIFO order (a recently released
// device is re-leased first, keeping its host-side caches warm) and the
// pool tracks per-device busy time for the utilization metric.
//
// Each device carries a persistent gpucolor.Runner: the lease holder runs
// jobs on Runner(), which keeps the device-arena buffers bound across
// jobs so steady-state serving does not allocate per request. Release
// scrubs the runner (poison over every held buffer) before the device
// goes back on the free list, so no job data survives into the next
// tenant's lease.
type DevicePool struct {
	devices []*simt.Device
	runners []*gpucolor.Runner
	free    chan int
	busyNS  []atomic.Int64
	jobs    []atomic.Int64
}

// NewDevicePool builds a pool from per-device configs (one device per
// entry). It panics on an empty config list: a pool with no devices is a
// programming error, not a runtime condition.
func NewDevicePool(cfgs []DeviceConfig) *DevicePool {
	if len(cfgs) == 0 {
		panic("serve: NewDevicePool with no device configs")
	}
	p := &DevicePool{
		devices: make([]*simt.Device, len(cfgs)),
		runners: make([]*gpucolor.Runner, len(cfgs)),
		free:    make(chan int, len(cfgs)),
		busyNS:  make([]atomic.Int64, len(cfgs)),
		jobs:    make([]atomic.Int64, len(cfgs)),
	}
	for i, cfg := range cfgs {
		p.devices[i] = cfg.build()
		p.runners[i] = gpucolor.NewRunner(p.devices[i])
		p.free <- i
	}
	return p
}

// UniformPool builds a pool of n identical devices from one config,
// defaulting each device's simulation workers so the whole pool together
// uses about GOMAXPROCS host goroutines.
func UniformPool(n int, cfg DeviceConfig) *DevicePool {
	if n < 1 {
		n = 1
	}
	if cfg.Workers == 0 {
		w := runtime.GOMAXPROCS(0) / n
		if w < 1 {
			w = 1
		}
		cfg.Workers = w
	}
	cfgs := make([]DeviceConfig, n)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	return NewDevicePool(cfgs)
}

// Size returns the number of devices.
func (p *DevicePool) Size() int { return len(p.devices) }

// Lease is an exclusive claim on one pool device.
type Lease struct {
	pool    *DevicePool
	idx     int
	start   time.Time
	release func()
}

// Device returns the leased device. The holder has exclusive use until
// Release.
func (l *Lease) Device() *simt.Device { return l.pool.devices[l.idx] }

// Runner returns the device's persistent coloring runner. The holder has
// exclusive use until Release; results are bit-identical to a transient
// gpucolor run but the warm arena makes them allocation-free.
func (l *Lease) Runner() *gpucolor.Runner { return l.pool.runners[l.idx] }

// Index returns the pool index of the leased device.
func (l *Lease) Index() int { return l.idx }

// Release returns the device to the pool and records its busy time.
// Release is idempotent.
func (l *Lease) Release() {
	if l.release != nil {
		l.release()
		l.release = nil
	}
}

// lease wraps a claimed device index in a Lease whose release scrubs the
// runner (still under exclusive use) before the device rejoins the free
// list.
func (p *DevicePool) lease(idx int) *Lease {
	l := &Lease{pool: p, idx: idx, start: time.Now()}
	l.release = func() {
		p.runners[idx].Scrub()
		p.busyNS[idx].Add(int64(time.Since(l.start)))
		p.jobs[idx].Add(1)
		p.free <- idx
	}
	return l
}

// Acquire leases a free device, blocking until one is available or ctx is
// done.
func (p *DevicePool) Acquire(ctx context.Context) (*Lease, error) {
	select {
	case idx := <-p.free:
		return p.lease(idx), nil
	case <-ctx.Done():
		return nil, fmt.Errorf("serve: device acquire: %w", ctx.Err())
	}
}

// TryAcquire leases a free device without blocking; ok is false when every
// device is busy.
func (p *DevicePool) TryAcquire() (*Lease, bool) {
	select {
	case idx := <-p.free:
		return p.lease(idx), true
	default:
		return nil, false
	}
}

// ArenaStats sums the device arenas' counters across the pool: the
// steady-state serving evidence (Reuses growing, Allocs flat) for
// /metricsz.
func (p *DevicePool) ArenaStats() simt.ArenaStats {
	var total simt.ArenaStats
	for _, dev := range p.devices {
		st := dev.ArenaStats()
		total.Allocs += st.Allocs
		total.Reuses += st.Reuses
		total.Releases += st.Releases
		total.PooledBufs += st.PooledBufs
		total.PooledBytes += st.PooledBytes
	}
	return total
}

// BusyNanos returns the cumulative leased time of device i in nanoseconds
// (completed leases only).
func (p *DevicePool) BusyNanos(i int) int64 { return p.busyNS[i].Load() }

// Jobs returns the number of completed leases of device i.
func (p *DevicePool) Jobs(i int) int64 { return p.jobs[i].Load() }

// Utilization returns the pool-wide fraction of elapsed wall time the
// devices spent leased, given the pool's age.
func (p *DevicePool) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	var busy int64
	for i := range p.busyNS {
		busy += p.busyNS[i].Load()
	}
	return float64(busy) / (float64(len(p.devices)) * float64(elapsed))
}
