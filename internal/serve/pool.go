package serve

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gcolor/internal/gpucolor"
	"gcolor/internal/simt"
)

// DeviceConfig describes one pool device. The zero value means "HD 7950
// defaults" for every field.
type DeviceConfig struct {
	// NumCUs, WavefrontWidth, WorkgroupSize mirror simt.Device; zero keeps
	// the simt.NewDevice default.
	NumCUs         int
	WavefrontWidth int
	WorkgroupSize  int
	// Workers bounds the host goroutines simulating the device. The pool
	// default divides GOMAXPROCS across devices so a fully busy pool does
	// not oversubscribe the host; set explicitly to override.
	Workers int
	// FaultRate > 0 arms a deterministic fault injector on the device with
	// the given per-event probability and FaultSeed (chaos serving).
	FaultRate float64
	FaultSeed uint64
	// FaultDisarmed attaches the injector disarmed: the device behaves as
	// fault-free until FaultInjector.Arm is called. The chaos soak uses
	// this to sicken a chosen device mid-run.
	FaultDisarmed bool
}

func (c DeviceConfig) build() *simt.Device {
	dev := simt.NewDevice()
	if c.NumCUs > 0 {
		dev.NumCUs = c.NumCUs
	}
	if c.WavefrontWidth > 0 {
		dev.WavefrontWidth = c.WavefrontWidth
	}
	if c.WorkgroupSize > 0 {
		dev.WorkgroupSize = c.WorkgroupSize
	}
	if c.Workers > 0 {
		dev.Workers = c.Workers
	}
	if c.FaultRate > 0 {
		seed := c.FaultSeed
		if seed == 0 {
			seed = 1
		}
		dev.Fault = simt.NewFaultInjector(seed, c.FaultRate)
		if c.FaultDisarmed {
			dev.Fault.Disarm()
		}
	}
	return dev
}

// DevicePool owns a fixed set of simulated devices and leases each to one
// job at a time. Lease selection is the pool's contribution to
// self-healing: among free devices whose circuit breaker is closed, the
// pool picks randomly weighted by health score, so a degraded-but-alive
// device sheds load in proportion to how sick it looks instead of flapping
// between fully-in and fully-out. Quarantined (breaker-open) devices are
// skipped entirely; half-open devices receive only sequential probe
// leases, which is how they earn re-admission. If every device in the pool
// is quarantined at once the pool fails open — the best-scored free device
// is leased anyway — because a self-inflicted total outage is strictly
// worse than serving from the least-bad device.
//
// Each device carries a persistent gpucolor.Runner: the lease holder runs
// jobs on Runner(), which keeps the device-arena buffers bound across
// jobs so steady-state serving does not allocate per request. Release
// scrubs the runner (poison over every held buffer) before the device
// goes back on the free list, so no job data survives into the next
// tenant's lease.
type DevicePool struct {
	devices []*simt.Device
	runners []*gpucolor.Runner
	busyNS  []atomic.Int64
	jobs    []atomic.Int64

	health         *fleetHealth
	breakers       []*breaker
	probationScore float64
	disabled       bool // self-healing off: uniform selection, breakers inert

	quarantines atomic.Int64 // breaker trips (entries into open)
	readmits    atomic.Int64 // probation completions (half-open → closed)
	probes      atomic.Int64 // probe leases issued
	probeFails  atomic.Int64 // probes that failed and re-opened the breaker

	mu     sync.Mutex
	free   []bool
	nfree  int
	rng    *rand.Rand
	notify chan struct{} // capacity 1; signaled on release
}

// NewDevicePool builds a pool from per-device configs (one device per
// entry) with default self-healing parameters (see SelfHealConfig). It
// panics on an empty config list: a pool with no devices is a programming
// error, not a runtime condition.
func NewDevicePool(cfgs []DeviceConfig) *DevicePool {
	if len(cfgs) == 0 {
		panic("serve: NewDevicePool with no device configs")
	}
	p := &DevicePool{
		devices: make([]*simt.Device, len(cfgs)),
		runners: make([]*gpucolor.Runner, len(cfgs)),
		busyNS:  make([]atomic.Int64, len(cfgs)),
		jobs:    make([]atomic.Int64, len(cfgs)),
		free:    make([]bool, len(cfgs)),
		nfree:   len(cfgs),
		rng:     rand.New(rand.NewSource(1)),
		notify:  make(chan struct{}, 1),
	}
	for i, cfg := range cfgs {
		p.devices[i] = cfg.build()
		p.runners[i] = gpucolor.NewRunner(p.devices[i])
		p.free[i] = true
	}
	p.configureSelfHeal(SelfHealConfig{})
	return p
}

// configureSelfHeal (re)builds the health tracker and breakers from cfg.
// Called by NewServer before any traffic; not safe once leases exist.
func (p *DevicePool) configureSelfHeal(cfg SelfHealConfig) {
	cfg = cfg.withDefaults()
	p.disabled = cfg.Disabled
	p.probationScore = cfg.ProbationScore
	p.health = newFleetHealth(len(p.devices), cfg.Alpha, cfg.LatencySlack)
	p.breakers = make([]*breaker, len(p.devices))
	bc := breakerConfig{
		failureThreshold: cfg.FailureThreshold,
		openBelow:        cfg.OpenBelow,
		cooldown:         cfg.Cooldown,
		maxCooldown:      cfg.MaxCooldown,
		probeSuccesses:   cfg.ProbeSuccesses,
	}
	for i := range p.breakers {
		p.breakers[i] = newBreaker(bc, nil)
	}
}

// UniformPool builds a pool of n identical devices from one config,
// defaulting each device's simulation workers so the whole pool together
// uses about GOMAXPROCS host goroutines.
func UniformPool(n int, cfg DeviceConfig) *DevicePool {
	if n < 1 {
		n = 1
	}
	if cfg.Workers == 0 {
		w := runtime.GOMAXPROCS(0) / n
		if w < 1 {
			w = 1
		}
		cfg.Workers = w
	}
	cfgs := make([]DeviceConfig, n)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	return NewDevicePool(cfgs)
}

// Size returns the number of devices.
func (p *DevicePool) Size() int { return len(p.devices) }

// Lease is an exclusive claim on one pool device.
type Lease struct {
	pool     *DevicePool
	idx      int
	start    time.Time
	probe    bool
	observed atomic.Bool
	released atomic.Bool
}

// Device returns the leased device. The holder has exclusive use until
// Release.
func (l *Lease) Device() *simt.Device { return l.pool.devices[l.idx] }

// Runner returns the device's persistent coloring runner. The holder has
// exclusive use until Release; results are bit-identical to a transient
// gpucolor run but the warm arena makes them allocation-free.
func (l *Lease) Runner() *gpucolor.Runner { return l.pool.runners[l.idx] }

// Index returns the pool index of the leased device.
func (l *Lease) Index() int { return l.idx }

// Probe reports whether this is a probe lease on a half-open device.
func (l *Lease) Probe() bool { return l.probe }

// Observe folds the leased job's outcome into the device's health score
// and circuit breaker: the typed resilient outcome, the execution time
// (compared against the fleet median), and how many faults the device's
// injector fired during the run. Call before Release; at most one
// observation per lease is recorded.
func (l *Lease) Observe(kind gpucolor.OutcomeKind, exec time.Duration, faultsDelta int64) {
	if !l.observed.CompareAndSwap(false, true) {
		return
	}
	l.pool.observe(l.idx, l.probe, kind, exec, faultsDelta)
}

// Release returns the device to the pool and records its busy time.
// Release is idempotent. A probe lease released without an observation
// frees the breaker's probe slot without judging the device.
func (l *Lease) Release() {
	if !l.released.CompareAndSwap(false, true) {
		return
	}
	p := l.pool
	if l.probe && !l.observed.Load() {
		p.breakers[l.idx].releaseProbe()
	}
	p.runners[l.idx].Scrub()
	p.busyNS[l.idx].Add(int64(time.Since(l.start)))
	p.jobs[l.idx].Add(1)
	p.mu.Lock()
	p.free[l.idx] = true
	p.nfree++
	p.mu.Unlock()
	p.signal()
}

func (p *DevicePool) signal() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// observe implements Lease.Observe (see there).
func (p *DevicePool) observe(idx int, probe bool, kind gpucolor.OutcomeKind, exec time.Duration, faultsDelta int64) {
	reward, counts := outcomeReward(kind, faultsDelta)
	if probe {
		p.probes.Add(1)
		if !counts {
			// Canceled probe: neutral, just free the slot.
			p.breakers[idx].releaseProbe()
			return
		}
		p.health.observe(idx, reward, exec)
		// A clean probe is one where the device itself produced a good
		// coloring; CPU fallback or any failure flunks probation.
		good := kind == gpucolor.OutcomeSuccess || kind == gpucolor.OutcomeRepaired
		switch p.breakers[idx].recordProbe(good) {
		case breakerTripped:
			p.probeFails.Add(1)
			p.quarantines.Add(1)
		case breakerReadmitted:
			p.readmits.Add(1)
			p.health.boost(idx, p.probationScore)
		}
		return
	}
	if !counts {
		return
	}
	score := p.health.observe(idx, reward, exec)
	if p.disabled {
		return
	}
	good := reward > rewardFailure
	if p.breakers[idx].record(good, score) == breakerTripped {
		p.quarantines.Add(1)
	}
}

// lease wraps a claimed device index (already marked busy) in a Lease.
func (p *DevicePool) lease(idx int, probe bool) *Lease {
	return &Lease{pool: p, idx: idx, start: time.Now(), probe: probe}
}

// pickLocked selects a free device, marking it busy. Returns idx == -1
// when nothing is currently leasable (caller waits). Called with p.mu
// held. Selection order:
//
//  1. a half-open device with a free probe slot (probation traffic has
//     priority: re-admission needs a trickle of real jobs);
//  2. weighted-random among free closed-breaker devices, weight = health
//     score (floored so a sick-but-closed device is never starved into an
//     unfalsifiable zero);
//  3. fail-open: if *every* device in the pool is breaker-open, the
//     best-scored free device — total self-quarantine must not become a
//     total outage.
func (p *DevicePool) pickLocked(exclude int, probeOK bool) (idx int, probe bool) {
	if p.nfree == 0 {
		return -1, false
	}
	if p.disabled {
		// Uniform random among free devices: the pre-self-healing pool.
		n := 0
		pick := -1
		for i := range p.free {
			if !p.free[i] || i == exclude {
				continue
			}
			n++
			if p.rng.Intn(n) == 0 {
				pick = i
			}
		}
		if pick >= 0 {
			p.claimLocked(pick)
		}
		return pick, false
	}

	if probeOK {
		for i := range p.free {
			if !p.free[i] || i == exclude {
				continue
			}
			if p.breakers[i].State() != BreakerClosed && p.breakers[i].tryProbe() {
				p.claimLocked(i)
				return i, true
			}
		}
	}

	var total float64
	weights := make([]float64, len(p.free))
	for i := range p.free {
		if !p.free[i] || i == exclude {
			continue
		}
		if !p.breakers[i].allowNormal() {
			continue
		}
		w := p.health.score(i)
		if w < 0.02 {
			w = 0.02
		}
		weights[i] = w
		total += w
	}
	if total > 0 {
		r := p.rng.Float64() * total
		for i, w := range weights {
			if w == 0 {
				continue
			}
			r -= w
			if r <= 0 {
				p.claimLocked(i)
				return i, false
			}
		}
	}

	// Fail-open only when the whole pool is dark: every device (free or
	// busy) has an open breaker and no probe slot was available.
	allOpen := true
	for i := range p.devices {
		if p.breakers[i].State() == BreakerClosed {
			allOpen = false
			break
		}
	}
	if allOpen {
		best := -1
		bestScore := -1.0
		for i := range p.free {
			if !p.free[i] || i == exclude {
				continue
			}
			if s := p.health.score(i); s > bestScore {
				best, bestScore = i, s
			}
		}
		if best >= 0 {
			p.claimLocked(best)
			return best, false
		}
	}
	return -1, false
}

func (p *DevicePool) claimLocked(i int) {
	p.free[i] = false
	p.nfree--
	if p.nfree > 0 {
		// Other waiters may still have something to pick; cascade the wake.
		p.signal()
	}
}

// Acquire leases a free device, blocking until one is available or ctx is
// done. Selection is health-weighted and breaker-aware (see pickLocked).
func (p *DevicePool) Acquire(ctx context.Context) (*Lease, error) {
	return p.acquire(ctx, -1)
}

func (p *DevicePool) acquire(ctx context.Context, exclude int) (*Lease, error) {
	for {
		p.mu.Lock()
		idx, probe := p.pickLocked(exclude, true)
		p.mu.Unlock()
		if idx >= 0 {
			return p.lease(idx, probe), nil
		}
		// The open → half-open transition is time-based, so a waiter must
		// re-check periodically even without a release event.
		t := time.NewTimer(20 * time.Millisecond)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("serve: device acquire: %w", ctx.Err())
		case <-p.notify:
			t.Stop()
		case <-t.C:
		}
	}
}

// TryAcquire leases a free device without blocking; ok is false when no
// device is currently leasable.
func (p *DevicePool) TryAcquire() (*Lease, bool) {
	p.mu.Lock()
	idx, probe := p.pickLocked(-1, true)
	p.mu.Unlock()
	if idx < 0 {
		return nil, false
	}
	return p.lease(idx, probe), true
}

// TryAcquireHealthy leases, without blocking, a free device other than
// exclude whose breaker is closed — the hedge path's requirement: a
// speculative re-dispatch onto a sick or probationary device would hedge
// the risk right back in.
func (p *DevicePool) TryAcquireHealthy(exclude int) (*Lease, bool) {
	p.mu.Lock()
	idx, _ := p.pickLocked(exclude, false)
	p.mu.Unlock()
	if idx < 0 {
		return nil, false
	}
	return p.lease(idx, false), true
}

// HealthScore returns device i's current EWMA health score in [0, 1].
func (p *DevicePool) HealthScore(i int) float64 { return p.health.score(i) }

// BreakerState returns device i's circuit state.
func (p *DevicePool) BreakerState(i int) BreakerState { return p.breakers[i].State() }

// Quarantined returns the number of devices currently not closed
// (breaker open or half-open).
func (p *DevicePool) Quarantined() int {
	n := 0
	for i := range p.breakers {
		if p.breakers[i].State() != BreakerClosed {
			n++
		}
	}
	return n
}

// QuarantineCount returns the total number of breaker trips (entries into
// the open state) since the pool was built.
func (p *DevicePool) QuarantineCount() int64 { return p.quarantines.Load() }

// ReadmitCount returns the number of completed probations (half-open →
// closed re-admissions).
func (p *DevicePool) ReadmitCount() int64 { return p.readmits.Load() }

// ProbeCount returns the number of probe leases issued; ProbeFailCount the
// probes that failed and re-opened a breaker.
func (p *DevicePool) ProbeCount() int64     { return p.probes.Load() }
func (p *DevicePool) ProbeFailCount() int64 { return p.probeFails.Load() }

// FaultInjector returns device i's injector (nil when none is attached).
// Arm/Disarm on it are safe mid-run; everything else on the device remains
// owned by the pool's leases.
func (p *DevicePool) FaultInjector(i int) *simt.FaultInjector { return p.devices[i].Fault }

// ArenaStats sums the device arenas' counters across the pool: the
// steady-state serving evidence (Reuses growing, Allocs flat) for
// /metricsz.
func (p *DevicePool) ArenaStats() simt.ArenaStats {
	var total simt.ArenaStats
	for _, dev := range p.devices {
		st := dev.ArenaStats()
		total.Allocs += st.Allocs
		total.Reuses += st.Reuses
		total.Releases += st.Releases
		total.PooledBufs += st.PooledBufs
		total.PooledBytes += st.PooledBytes
	}
	return total
}

// BusyNanos returns the cumulative leased time of device i in nanoseconds
// (completed leases only).
func (p *DevicePool) BusyNanos(i int) int64 { return p.busyNS[i].Load() }

// Jobs returns the number of completed leases of device i.
func (p *DevicePool) Jobs(i int) int64 { return p.jobs[i].Load() }

// Utilization returns the pool-wide fraction of elapsed wall time the
// devices spent leased, given the pool's age.
func (p *DevicePool) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	var busy int64
	for i := range p.busyNS {
		busy += p.busyNS[i].Load()
	}
	return float64(busy) / (float64(len(p.devices)) * float64(elapsed))
}
