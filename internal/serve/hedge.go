package serve

import (
	"sort"
	"sync"
	"time"
)

// Hedged re-dispatch threshold. The classic tail-tolerance move: a job
// still running past the P99 of recent successful executions is probably
// stuck on a sick or stalled device, so the server speculatively
// re-dispatches it to a second, healthy device; first result wins and the
// loser is canceled through the resilient driver's context plumbing.
//
// Only successful executions feed the estimate — failures are what hedging
// routes around, and folding their (often watchdog-bounded) latencies into
// the threshold would raise it exactly when it most needs to stay low.
// Hedging stays off until minSamples observations exist, so cold servers
// and tests with two requests never speculate.

// hedgeWindow is the number of recent successful exec times retained.
const hedgeWindow = 512

// hedgeRecompute is how many observations between P99 recomputations.
const hedgeRecompute = 32

type hedgeTracker struct {
	minSamples int
	floor      time.Duration
	multiple   float64 // threshold = multiple × P99

	mu        sync.Mutex
	ring      [hedgeWindow]int64
	n, idx    int
	sinceCalc int
	cachedP99 int64
	scratch   [hedgeWindow]int64
}

func newHedgeTracker(minSamples int, floor time.Duration, multiple float64) *hedgeTracker {
	if minSamples < 1 {
		minSamples = 64
	}
	if floor <= 0 {
		floor = 2 * time.Millisecond
	}
	if multiple <= 0 {
		multiple = 1
	}
	return &hedgeTracker{minSamples: minSamples, floor: floor, multiple: multiple}
}

// observe records one successful execution time.
func (h *hedgeTracker) observe(exec time.Duration) {
	if exec <= 0 {
		return
	}
	h.mu.Lock()
	h.ring[h.idx] = int64(exec)
	h.idx = (h.idx + 1) % hedgeWindow
	if h.n < hedgeWindow {
		h.n++
	}
	h.sinceCalc++
	if h.cachedP99 == 0 || h.sinceCalc >= hedgeRecompute {
		h.sinceCalc = 0
		h.cachedP99 = h.p99Locked()
	}
	h.mu.Unlock()
}

// p99Locked computes the P99 of the ring. Called with h.mu held.
func (h *hedgeTracker) p99Locked() int64 {
	if h.n == 0 {
		return 0
	}
	xs := h.scratch[:h.n]
	copy(xs, h.ring[:h.n])
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[(h.n-1)*99/100]
}

// threshold returns the current hedge trigger and whether hedging is
// active (enough samples recorded).
func (h *hedgeTracker) threshold() (time.Duration, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n < h.minSamples {
		return 0, false
	}
	thr := time.Duration(h.multiple * float64(h.cachedP99))
	if thr < h.floor {
		thr = h.floor
	}
	return thr, true
}

// samples returns the number of observations recorded so far.
func (h *hedgeTracker) samples() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}
