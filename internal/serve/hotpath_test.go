package serve

import (
	"context"
	"runtime"
	"slices"
	"testing"

	"gcolor/internal/gen"
	"gcolor/internal/gpucolor"
	"gcolor/internal/graph"
)

// maxServeAllocsPerRequest is the steady-state allocation budget of one
// served request (device execution included, cache bypassed). Before the
// arena/runner work a request cost ~78k allocations; the pooled hot path
// measures ~500. The bound is deliberately loose so scheduler jitter
// cannot flake it while still catching any order-of-magnitude regression.
const maxServeAllocsPerRequest = 5000

// TestServedResultsMatchTransient: responses produced by the pooled
// serving path are bit-identical (colors, cycles) to a direct transient
// gpucolor run with the same options, across algorithms and the fused
// flag, interleaved on one device so every job inherits a dirty runner.
func TestServedResultsMatchTransient(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()

	jobs := []struct {
		g     *graph.Graph
		alg   gpucolor.Algorithm
		fused bool
	}{
		{gen.GNM(300, 1500, 4), gpucolor.AlgBaseline, false},
		{gen.Grid2D(12, 11), gpucolor.AlgMaxMin, true},
		{gen.RMAT(8, 8, gen.Graph500, 3), gpucolor.AlgHybrid, false},
		{gen.Star(200), gpucolor.AlgJP, false},
		{gen.GNM(300, 1500, 4), gpucolor.AlgBaseline, true},
		{gen.BarabasiAlbert(400, 3, 2), gpucolor.AlgSpeculative, false},
	}
	for i, job := range jobs {
		res, err := s.Submit(context.Background(), &Request{
			Graph: job.g, Algorithm: job.alg, Fused: job.fused, NoCache: true,
		})
		if err != nil {
			t.Fatalf("job %d: Submit: %v", i, err)
		}
		want, err := gpucolor.Color(DeviceConfig{}.build(), job.g, job.alg,
			gpucolor.Options{Fused: job.fused})
		if err != nil {
			t.Fatalf("job %d: transient: %v", i, err)
		}
		if !slices.Equal(res.Colors, want.Colors) {
			t.Errorf("job %d (%v fused=%v): served colors differ from transient", i, job.alg, job.fused)
		}
		if res.Cycles != want.Cycles {
			t.Errorf("job %d (%v fused=%v): served cycles %d, transient %d",
				i, job.alg, job.fused, res.Cycles, want.Cycles)
		}
	}
}

// TestFusedSharesCacheWithUnfused: Fused is excluded from the policy key —
// fused and unfused runs color identically, so a fused request must hit
// the cache entry a plain request populated.
func TestFusedSharesCacheWithUnfused(t *testing.T) {
	s := NewServer(Config{Devices: 1})
	defer s.Stop()
	g := gen.Grid2D(8, 8)
	if _, err := s.Submit(context.Background(), &Request{Graph: g}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Submit(context.Background(), &Request{Graph: g, Fused: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("fused request missed the cache entry of its unfused twin")
	}
}

// TestSteadyStateServeAllocs is the hot-path regression gate: once the
// server is warm, a served request (queue, lease, pooled coloring, scrub)
// must stay within maxServeAllocsPerRequest heap allocations.
func TestSteadyStateServeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; budget only holds without it")
	}
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	g := gen.RMAT(9, 8, gen.Graph500, 3)
	req := func() *Request { return &Request{Graph: g, NoCache: true} }

	// Warm every pool: device arena, runner buffers, launch scratch.
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), req()); err != nil {
			t.Fatal(err)
		}
	}

	const runs = 10
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if _, err := s.Submit(context.Background(), req()); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perReq := (after.Mallocs - before.Mallocs) / runs
	t.Logf("steady-state serve allocations: %d per request", perReq)
	if perReq > maxServeAllocsPerRequest {
		t.Fatalf("steady-state served request allocates %d objects, budget %d",
			perReq, maxServeAllocsPerRequest)
	}
}

// TestArenaStatsExposed: the pool aggregates device arena counters (the
// /metricsz evidence), and a warm server allocates no new device buffers —
// the runner holds them across jobs, so Allocs stays flat.
func TestArenaStatsExposed(t *testing.T) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	g := gen.Grid2D(10, 10)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	warm := s.Pool().ArenaStats()
	if warm.Allocs == 0 {
		t.Fatal("arena stats show no allocations after serving")
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Pool().ArenaStats(); st.Allocs != warm.Allocs {
		t.Fatalf("warm serving allocated new device buffers: %d -> %d", warm.Allocs, st.Allocs)
	}
}

// BenchmarkServeSteadyState measures the full served-request hot path on a
// warm single-device server.
func BenchmarkServeSteadyState(b *testing.B) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	g := gen.RMAT(9, 8, gen.Graph500, 3)
	if _, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSteadyStateFused is BenchmarkServeSteadyState with the
// fused kernels.
func BenchmarkServeSteadyStateFused(b *testing.B) {
	s := NewServer(Config{Devices: 1, Workers: 1})
	defer s.Stop()
	g := gen.RMAT(9, 8, gen.Graph500, 3)
	if _, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true, Fused: true}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(context.Background(), &Request{Graph: g, NoCache: true, Fused: true}); err != nil {
			b.Fatal(err)
		}
	}
}
