package serve

import (
	"sync"
	"time"

	"gcolor/internal/gpucolor"
)

// Device health scoring. Every job outcome folds into a per-device EWMA
// score in [0, 1]: 1 is a device whose recent jobs all verified clean on
// the first attempt at fleet-typical latency, 0 is a device whose recent
// jobs all burned the resilience ladder. The score is what the lease path
// weights selection by (a degraded-but-alive device sheds load smoothly
// instead of flapping between "in" and "out") and what the circuit breaker
// consults to decide quarantine.
//
// Two signals feed each observation:
//
//   - the typed outcome of the resilient run (gpucolor.Classify): how far
//     down the recovery ladder the job had to go, with a haircut when the
//     device's fault injector fired even though the job recovered
//     ("fault-absorbed" — the device is lying about being fine);
//   - execution latency versus the fleet median: a device whose successes
//     take many multiples of what its peers need (stalled workgroups, CAS
//     storms) is degraded even if every run eventually verifies.

// Outcome rewards: the EWMA input for each rung of the recovery ladder.
// Cheaper recoveries still signal partial sickness; structural failures
// score zero.
const (
	rewardSuccess     = 1.0
	rewardFaultMasked = 0.8 // clean result, but the injector fired during the run
	rewardRepaired    = 0.7
	rewardRetried     = 0.5
	rewardCPUFallback = 0.25
	rewardFailure     = 0.0
)

// outcomeReward maps a typed outcome (plus the run's injected-fault delta)
// to its EWMA reward. The bool is false for outcomes that must not move
// the score at all (cancellation: hedge losers and abandoned waiters say
// nothing about device health).
func outcomeReward(kind gpucolor.OutcomeKind, faultsDelta int64) (float64, bool) {
	switch kind {
	case gpucolor.OutcomeSuccess:
		if faultsDelta > 0 {
			return rewardFaultMasked, true
		}
		return rewardSuccess, true
	case gpucolor.OutcomeRepaired:
		return rewardRepaired, true
	case gpucolor.OutcomeRetried:
		return rewardRetried, true
	case gpucolor.OutcomeCPUFallback:
		return rewardCPUFallback, true
	case gpucolor.OutcomeCanceled:
		return 0, false
	default: // watchdog, budget-exhausted, failed
		return rewardFailure, true
	}
}

// healthLatWindow is the shared ring of recent execution times from which
// the fleet median is derived. Small and fixed: the median only needs to
// track the current workload mix, not history.
const healthLatWindow = 128

// fleetHealth tracks one EWMA score per pooled device plus the shared
// recent-latency ring. All methods are safe for concurrent use.
type fleetHealth struct {
	alpha float64 // EWMA weight of the newest observation
	slack float64 // multiples of the fleet median before latency penalises

	mu      sync.Mutex
	scores  []float64
	ring    [healthLatWindow]int64 // exec ns of recent finished jobs, fleet-wide
	ringN   int                    // observations recorded (caps at window)
	ringI   int                    // next write position
	scratch [healthLatWindow]int64
}

func newFleetHealth(n int, alpha, slack float64) *fleetHealth {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	if slack < 1 {
		slack = 4
	}
	h := &fleetHealth{alpha: alpha, slack: slack, scores: make([]float64, n)}
	for i := range h.scores {
		h.scores[i] = 1
	}
	return h
}

// add appends one device/member at full health and returns its index.
// The pool's fleet is fixed-size; the cluster layer's membership grows at
// runtime (workers join), which is the only caller.
func (h *fleetHealth) add() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.scores = append(h.scores, 1)
	return len(h.scores) - 1
}

// len returns the number of tracked scores.
func (h *fleetHealth) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.scores)
}

// observe folds one finished job into device idx's score and returns the
// updated value. exec == 0 skips the latency signal (CPU-fallback runs
// and tests).
func (h *fleetHealth) observe(idx int, reward float64, exec time.Duration) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if exec > 0 {
		med := h.medianLocked()
		h.ring[h.ringI] = int64(exec)
		h.ringI = (h.ringI + 1) % healthLatWindow
		if h.ringN < healthLatWindow {
			h.ringN++
		}
		// Latency-vs-fleet penalty: beyond slack× the median, the reward
		// shrinks proportionally (a 4×-slack run at 8× median keeps half
		// its reward), floored so one glacial success cannot zero a score
		// by itself.
		if med > 0 && float64(exec) > h.slack*float64(med) {
			factor := h.slack * float64(med) / float64(exec)
			if factor < 0.1 {
				factor = 0.1
			}
			reward *= factor
		}
	}
	h.scores[idx] = (1-h.alpha)*h.scores[idx] + h.alpha*reward
	return h.scores[idx]
}

// score returns device idx's current health score.
func (h *fleetHealth) score(idx int) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.scores[idx]
}

// boost raises device idx's score to at least floor. Called on breaker
// re-admission: a quarantined device's EWMA is frozen at its sick value,
// and without the probation reset the breaker would re-trip on the stale
// score before the first post-readmission job could move it.
func (h *fleetHealth) boost(idx int, floor float64) {
	h.mu.Lock()
	if h.scores[idx] < floor {
		h.scores[idx] = floor
	}
	h.mu.Unlock()
}

// medianLocked returns the median of the recent-latency ring (0 when
// empty). Called with h.mu held.
func (h *fleetHealth) medianLocked() int64 {
	if h.ringN == 0 {
		return 0
	}
	xs := h.scratch[:h.ringN]
	copy(xs, h.ring[:h.ringN])
	// Insertion sort: the window is tiny and usually nearly sorted.
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
	return xs[len(xs)/2]
}

// medianExec returns the current fleet-median execution time.
func (h *fleetHealth) medianExec() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.medianLocked())
}
